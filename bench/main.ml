(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md, "Experiment index").

   Usage:
     bench/main.exe                 run every experiment
     bench/main.exe fig9 fig11      run a subset
     bench/main.exe perf            Bechamel micro-benchmarks (one
                                    Test.make per table/figure)

   Absolute numbers come from this repository's analytical models; the
   paper-facing claim is the *shape* (who wins, by what factor) —
   EXPERIMENTS.md records paper-vs-measured for each experiment. *)

open Iced_arch
module Design = Iced.Design
module Kernel = Iced_kernels.Kernel
module Registry = Iced_kernels.Registry
module Table = Iced_util.Table
module Stats = Iced_util.Stats

let kernels = Registry.standalone

let fmt = Table.fmt_float

(* ------------------------------------------------------------------ *)
(* Shared evaluation cache: figures 9, 10, 11 and 12 reuse mappings.   *)

let eval_cache : (string, Design.evaluation option) Hashtbl.t = Hashtbl.create 64

let evaluate ?(cgra = Cgra.iced_6x6) ~unroll point kernel =
  let key =
    Printf.sprintf "%s/%d/%s/%dx%d" (kernel : Kernel.t).name unroll
      (Design.point_to_string point) cgra.Cgra.rows cgra.Cgra.cols
  in
  match Hashtbl.find_opt eval_cache key with
  | Some v -> v
  | None ->
    let v =
      match Design.evaluate ~cgra ~unroll point kernel with
      | Ok e -> Some e
      | Error _ -> None
    in
    Hashtbl.replace eval_cache key v;
    v

(* ------------------------------------------------------------------ *)
(* Table I: kernel statistics at unroll factors 1 and 2.               *)

let table1 () =
  let t =
    Table.create ~title:"Table I: workload statistics (measured vs paper)"
      ~columns:
        [ "kernel"; "domain"; "data";
          "n1"; "e1"; "mii1"; "paper(1)";
          "n2"; "e2"; "mii2"; "paper(2)" ]
  in
  List.iter
    (fun (k : Kernel.t) ->
      let n1, e1, r1 = Kernel.stats k.dfg in
      let n2, e2, r2 = Kernel.stats (Kernel.dfg_at k ~factor:2) in
      let p = k.table in
      Table.add_row t
        [ k.name; Kernel.domain_to_string k.domain; k.data;
          string_of_int n1; string_of_int e1; string_of_int r1;
          Printf.sprintf "%d/%d/%d" p.nodes1 p.edges1 p.rec_mii1;
          string_of_int n2; string_of_int e2; string_of_int r2;
          Printf.sprintf "%d/%d/%d" p.nodes2 p.edges2 p.rec_mii2 ])
    Registry.all;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 2: baseline utilization vs CGRA size and unroll factor.      *)

let fig2 () =
  let sizes = [ 4; 6; 8 ] in
  let t =
    Table.create ~title:"Figure 2: average tile utilization, conventional CGRA (no DVFS)"
      ~columns:
        ("kernel"
        :: List.concat_map
             (fun n -> [ Printf.sprintf "%dx%d uf1" n n; Printf.sprintf "%dx%d uf2" n n ])
             sizes)
  in
  let per_config = Hashtbl.create 16 in
  List.iter
    (fun (k : Kernel.t) ->
      let cells =
        List.concat_map
          (fun n ->
            let cgra = Cgra.make ~rows:n ~cols:n () in
            List.map
              (fun unroll ->
                match evaluate ~cgra ~unroll Design.Baseline k with
                | Some e ->
                  Hashtbl.add per_config (n, unroll) e.Design.avg_utilization;
                  fmt e.Design.avg_utilization
                | None -> "-")
              [ 1; 2 ])
          sizes
      in
      Table.add_row t (k.name :: cells))
    kernels;
  let means =
    List.concat_map
      (fun n ->
        List.map
          (fun unroll -> fmt (Stats.mean (Hashtbl.find_all per_config (n, unroll))))
          [ 1; 2 ])
      sizes
  in
  Table.add_row t ("MEAN" :: means);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 4: normalized performance vs DVFS island size (8x8 fabric,   *)
(* committed-island mapping).                                          *)

let fig4 () =
  let base = Cgra.make ~rows:8 ~cols:8 () in
  let sizes = [ (1, 1); (2, 2); (3, 3); (4, 4) ] in
  let t =
    Table.create
      ~title:
        "Figure 4: normalized performance vs island size (8x8, islands committed to \
         labeled levels)"
      ~columns:("kernel" :: List.map (fun (r, c) -> Printf.sprintf "%dx%d" r c) sizes)
  in
  let columns = Hashtbl.create 8 in
  List.iter
    (fun (k : Kernel.t) ->
      let conv =
        Iced_mapper.Mapper.map
          (Iced_mapper.Mapper.request ~strategy:Iced_mapper.Mapper.Conventional base)
          k.dfg
      in
      match conv with
      | Error _ -> Table.add_row t (k.name :: List.map (fun _ -> "-") sizes)
      | Ok conv ->
        let cells =
          List.map
            (fun island ->
              let cgra = Cgra.with_island base island in
              let req =
                Iced_mapper.Mapper.request ~strategy:Iced_mapper.Mapper.Dvfs_aware
                  ~commit_islands:true cgra
              in
              match Iced_mapper.Mapper.map req k.dfg with
              | Error _ -> "-"
              | Ok m ->
                let perf =
                  float_of_int conv.Iced_mapper.Mapping.ii
                  /. float_of_int m.Iced_mapper.Mapping.ii
                in
                Hashtbl.add columns island perf;
                fmt perf)
            sizes
        in
        Table.add_row t (k.name :: cells))
    kernels;
  Table.add_row t
    ("MEAN" :: List.map (fun isl -> fmt (Stats.mean (Hashtbl.find_all columns isl))) sizes);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 8: area and power breakdown of the 6x6 ICED.                 *)

let fig8 () =
  let params = Iced_power.Params.default in
  let cgra = Cgra.iced_6x6 in
  let designs = Iced_power.Model.[ Baseline; Per_tile_dvfs; Iced ] in
  let area =
    Table.create
      ~title:"Figure 8: area breakdown, 6x6 (mm^2; paper: 6.63 + SRAM 0.559 for iced)"
      ~columns:[ "component"; "baseline"; "per-tile dvfs"; "iced" ]
  in
  let area_tables = List.map (fun d -> Iced_power.Model.area_mm2 params d cgra) designs in
  List.iter
    (fun component ->
      Table.add_row area
        (component :: List.map (fun table -> fmt (List.assoc component table)) area_tables))
    [ "tiles"; "dvfs support"; "sram"; "total" ];
  Table.print area;
  let power =
    Table.create
      ~title:
        "Figure 8: power breakdown at 0.7V/434MHz, ~60% activity (mW; paper: 113.95 + \
         SRAM up to 62.653 for iced)"
      ~columns:[ "component"; "baseline"; "per-tile dvfs"; "iced" ]
  in
  let tiles =
    List.init (Cgra.tile_count cgra) (fun _ ->
        { Iced_power.Model.level = Dvfs.Normal; activity = 0.6 })
  in
  let power_tables =
    List.map
      (fun d -> Iced_power.Model.power_breakdown_mw params d cgra ~tiles ~sram_activity:0.5)
      designs
  in
  List.iter
    (fun component ->
      Table.add_row power
        (component :: List.map (fun table -> fmt (List.assoc component table)) power_tables))
    [ "tiles"; "dvfs support"; "sram"; "total" ];
  Table.print power

(* ------------------------------------------------------------------ *)
(* Figures 9-11: utilization, average DVFS level, and power on the     *)
(* 6x6 prototype across the design points.                             *)

let metric_figure ~title ~metric ~points () =
  let t =
    Table.create ~title
      ~columns:
        ("kernel"
        :: List.concat_map
             (fun p ->
               [ Design.point_to_string p ^ " uf1"; Design.point_to_string p ^ " uf2" ])
             points)
  in
  let sums = Hashtbl.create 16 in
  List.iter
    (fun (k : Kernel.t) ->
      let cells =
        List.concat_map
          (fun p ->
            List.map
              (fun unroll ->
                match evaluate ~unroll p k with
                | Some e ->
                  Hashtbl.add sums (p, unroll) (metric e);
                  fmt (metric e)
                | None -> "-")
              [ 1; 2 ])
          points
      in
      Table.add_row t (k.name :: cells))
    kernels;
  Table.add_row t
    ("MEAN"
    :: List.concat_map
         (fun p ->
           List.map
             (fun unroll -> fmt (Stats.mean (Hashtbl.find_all sums (p, unroll))))
             [ 1; 2 ])
         points);
  Table.print t

let fig9 () =
  metric_figure
    ~title:
      "Figure 9: average tile utilization (paper: baseline 0.33 -> iced 0.76 at uf1, \
       0.44 -> 0.71 at uf2)"
    ~metric:(fun e -> e.Design.avg_utilization)
    ~points:Design.[ Baseline; Per_tile; Iced ]
    ()

let fig10 () =
  metric_figure
    ~title:
      "Figure 10: average DVFS level, gated=0 (paper: per-tile 0.26 vs iced 0.35 at uf1, \
       0.37 vs 0.53 at uf2)"
    ~metric:(fun e -> e.Design.avg_dvfs)
    ~points:Design.[ Per_tile; Iced ]
    ()

let fig11 () =
  metric_figure
    ~title:
      "Figure 11: average power, mW (paper uf2: baseline 160.4, baseline+pg 143.8, \
       per-tile 193.9, iced 121.3)"
    ~metric:(fun e -> e.Design.power_mw)
    ~points:Design.[ Baseline; Baseline_gated; Per_tile; Iced ]
    ()

(* ------------------------------------------------------------------ *)
(* Figure 12: scalability across fabric sizes.                         *)

let fig12 () =
  let sizes = [ 2; 4; 6; 8 ] in
  let t =
    Table.create
      ~title:"Figure 12: average DVFS level vs fabric size, uf1 (per-tile vs iced)"
      ~columns:
        ("kernel"
        :: List.concat_map
             (fun n -> [ Printf.sprintf "pt %dx%d" n n; Printf.sprintf "iced %dx%d" n n ])
             sizes)
  in
  let sums = Hashtbl.create 16 in
  List.iter
    (fun (k : Kernel.t) ->
      let cells =
        List.concat_map
          (fun n ->
            let cgra = Cgra.make ~rows:n ~cols:n () in
            List.map
              (fun p ->
                match evaluate ~cgra ~unroll:1 p k with
                | Some e ->
                  Hashtbl.add sums (p, n) e.Design.avg_dvfs;
                  fmt e.Design.avg_dvfs
                | None -> "-")
              Design.[ Per_tile; Iced ])
          sizes
      in
      Table.add_row t (k.name :: cells))
    kernels;
  Table.add_row t
    ("MEAN"
    :: List.concat_map
         (fun n ->
           List.map
             (fun p -> fmt (Stats.mean (Hashtbl.find_all sums (p, n))))
             Design.[ Per_tile; Iced ])
         sizes);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 13: streaming energy-efficiency, ICED vs DRIPS.              *)

let stream_setup name =
  let cgra = Cgra.iced_6x6 in
  let pipeline, inputs =
    match name with
    | "gcn" ->
      ( Iced_stream.Pipeline.gcn (),
        List.map Iced_stream.Pipeline.of_gcn_graph
          (Iced_stream.Workload.enzyme_graphs ~seed:42 ()) )
    | "lu" ->
      ( Iced_stream.Pipeline.lu (),
        List.map Iced_stream.Pipeline.of_lu_matrix
          (Iced_stream.Workload.ufl_matrices ~seed:7 ()) )
    | _ -> invalid_arg "stream_setup"
  in
  (* the paper randomly picks 50 instances from the whole dataset; a
     stratified sample is the deterministic equivalent *)
  let profile =
    let step = max 1 (List.length inputs / 50) in
    List.filteri (fun i _ -> i mod step = 0) inputs
  in
  match Iced_stream.Partition.prepare cgra pipeline ~profile with
  | Ok p -> (p, inputs)
  | Error msg -> failwith (Printf.sprintf "fig13 %s: %s" name msg)

let fig13 () =
  List.iter
    (fun app ->
      let partition, inputs = stream_setup app in
      let alloc =
        String.concat " "
          (List.map
             (fun (l, c) -> Printf.sprintf "%s=%d" l c)
             partition.Iced_stream.Partition.allocation)
      in
      Printf.printf "[fig13:%s] partition: %s\n" app alloc;
      let iced = Iced_stream.Runner.run partition Iced_stream.Runner.Iced_dvfs inputs in
      let drips = Iced_stream.Runner.run partition Iced_stream.Runner.Drips inputs in
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Figure 13 (%s): per-window energy-efficiency, ICED vs DRIPS (paper \
                averages: gcn 1.12x, lu 1.26x)"
               app)
          ~columns:[ "window"; "iced eff"; "drips eff"; "iced/drips" ]
      in
      List.iter2
        (fun (a : Iced_stream.Runner.window_report) (b : Iced_stream.Runner.window_report) ->
          Table.add_row t
            [ string_of_int a.index; fmt a.efficiency; fmt b.efficiency;
              fmt (a.efficiency /. b.efficiency) ])
        iced drips;
      let ti = Iced_stream.Runner.aggregate iced in
      let td = Iced_stream.Runner.aggregate drips in
      Table.add_row t
        [ "OVERALL";
          fmt ti.Iced_stream.Runner.overall_efficiency;
          fmt td.Iced_stream.Runner.overall_efficiency;
          fmt
            (ti.Iced_stream.Runner.overall_efficiency
            /. td.Iced_stream.Runner.overall_efficiency) ];
      Table.print t)
    [ "gcn"; "lu" ]

(* ------------------------------------------------------------------ *)
(* Figure 14: FFT performance/power across architectures.  Literature  *)
(* rows are quoted from the cited papers (as the paper itself does);   *)
(* ICED's row comes from this repository's model.                      *)

let fig14 () =
  let t =
    Table.create
      ~title:"Figure 14: FFT kernel across architectures (literature rows quoted)"
      ~columns:[ "architecture"; "tech"; "power mW"; "perf MOPS"; "MOPS/mW" ]
  in
  List.iter
    (fun (name, tech, p, perf, eff) ->
      Table.add_row t [ name; tech; fmt p; fmt perf; fmt eff ])
    [ ("HyCUBE (A-SSCC'19)", "40nm", 42.0, 1109.0, 26.4);
      ("RipTide (MICRO'22)", "22nm", 0.36, 110.0, 305.0);
      ("SNAFU (ISCA'21)", "28nm", 0.31, 68.0, 220.0) ];
  (match Registry.by_name "fft" with
  | None -> ()
  | Some fft -> (
    match evaluate ~unroll:1 Design.Iced fft with
    | None -> ()
    | Some e ->
      let params = Iced_power.Params.default in
      let ops_per_cycle =
        float_of_int (Iced_dfg.Graph.node_count fft.dfg) /. float_of_int e.Design.ii
      in
      let mops = ops_per_cycle *. params.Iced_power.Params.f_normal_mhz in
      Table.add_row t
        [ "ICED (this repo)"; "7nm (model)"; fmt e.Design.power_mw; fmt mops;
          fmt (mops /. e.Design.power_mw) ]));
  Table.print t

(* ------------------------------------------------------------------ *)
(* Ablation: disable one DVFS-aware mapping feature at a time and      *)
(* measure what it buys (DESIGN.md design-choice index).               *)

let ablation () =
  let variants =
    [ ("full iced", Iced_mapper.Mapper.all_knobs);
      ("no island affinity",
       { Iced_mapper.Mapper.all_knobs with Iced_mapper.Mapper.island_affinity = false });
      ("no packing", { Iced_mapper.Mapper.all_knobs with Iced_mapper.Mapper.packing = false });
      ("no phase alignment",
       { Iced_mapper.Mapper.all_knobs with Iced_mapper.Mapper.phase_alignment = false });
      ("no conventional fallback",
       { Iced_mapper.Mapper.all_knobs with
         Iced_mapper.Mapper.conventional_fallback = false }) ]
  in
  let t =
    Table.create ~title:"Ablation: ICED mapping features (means over 10 kernels, uf1, 6x6)"
      ~columns:[ "variant"; "mean II"; "avg util"; "avg dvfs"; "power mW" ]
  in
  let params = Iced_power.Params.default in
  List.iter
    (fun (name, knobs) ->
      let evals =
        List.filter_map
          (fun (k : Kernel.t) ->
            let req =
              Iced_mapper.Mapper.request ~strategy:Iced_mapper.Mapper.Dvfs_aware ~knobs
                Cgra.iced_6x6
            in
            match Iced_mapper.Mapper.map req k.dfg with
            | Error _ -> None
            | Ok m ->
              let m = Iced_mapper.Levels.assign m in
              let tiles = Iced_sim.Metrics.tile_states m in
              let power =
                Iced_power.Model.total_power_mw params Iced_power.Model.Iced Cgra.iced_6x6
                  ~tiles
                  ~sram_activity:(Iced_sim.Metrics.sram_activity m)
              in
              Some
                ( float_of_int m.Iced_mapper.Mapping.ii,
                  Iced_sim.Metrics.average_utilization m,
                  Iced_sim.Metrics.average_dvfs_fraction m,
                  power ))
          kernels
      in
      let mean f = Stats.mean (List.map f evals) in
      Table.add_row t
        [ name;
          fmt (mean (fun (ii, _, _, _) -> ii));
          fmt (mean (fun (_, u, _, _) -> u));
          fmt (mean (fun (_, _, d, _) -> d));
          fmt (mean (fun (_, _, _, p) -> p)) ])
    variants;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Island-granularity design-space exploration: sweep every island    *)
(* shape tiling the 6x6 fabric — 1x1 per-tile DVFS through the single  *)
(* whole-fabric island — over the standalone kernels, and report the   *)
(* (throughput, energy, EDP) Pareto frontier.  The paper fixes 2x2     *)
(* islands (Section V-A) and argues per-tile DVFS overprovisions       *)
(* controllers; this experiment makes that comparison a frontier.      *)

let explore () =
  let module Space = Iced_explore.Space in
  let module Sweep = Iced_explore.Sweep in
  let module Outcome = Iced_explore.Outcome in
  let module Report = Iced_explore.Report in
  let spec = { Space.default_spec with Space.floors = [ Dvfs.Rest ] } in
  let points = Space.enumerate spec in
  let cache = Iced_explore.Cache.in_memory () in
  let config =
    { Sweep.default_config with
      Sweep.workers = min 4 (Domain.recommended_domain_count ()) }
  in
  let outcomes, stats = Sweep.run ~config ~cache points kernels in
  let frontier = Report.frontier_summaries outcomes in
  let on_frontier (s : Outcome.summary) =
    List.exists (fun (f : Outcome.summary) -> f.Outcome.point = s.Outcome.point) frontier
  in
  let t =
    Table.create
      ~title:
        "Exploration: island granularity on 6x6 (floor rest, uf1, means over 10 kernels)"
      ~columns:
        [ "island"; "ctrls"; "mapped"; "geo thpt Mi/s"; "mean energy nJ";
          "mean EDP nJ*us"; "mean power mW"; "pareto" ]
  in
  List.iter
    (fun (r : Outcome.point_result) ->
      let s = Outcome.summarize r in
      let p = r.Outcome.point in
      Table.add_row t
        [ Printf.sprintf "%dx%d" p.Space.island_rows p.Space.island_cols;
          string_of_int (Cgra.island_count (Space.cgra p));
          Printf.sprintf "%d/%d" s.Outcome.mapped s.Outcome.total;
          fmt s.Outcome.geo_throughput_mips;
          fmt s.Outcome.mean_energy_nj;
          fmt s.Outcome.mean_edp;
          fmt s.Outcome.mean_power_mw;
          (if on_frontier s then "*" else "") ])
    outcomes;
  Table.print t;
  Table.print (Report.best_per_kernel_table outcomes);
  Printf.printf "explored %d points (%d pairs, %d failed)\n" stats.Sweep.points
    stats.Sweep.pairs stats.Sweep.failed

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure, timing   *)
(* each experiment's core computation.                                 *)

let perf () =
  let open Bechamel in
  let fir = Option.get (Registry.by_name "fir") in
  let fft = Option.get (Registry.by_name "fft") in
  let map_kernel strategy (k : Kernel.t) () =
    let req = Iced_mapper.Mapper.request ~strategy Cgra.iced_6x6 in
    ignore (Iced_mapper.Mapper.map req k.dfg)
  in
  let gcn_partition, gcn_inputs = stream_setup "gcn" in
  let gcn_window = List.filteri (fun i _ -> i < 20) gcn_inputs in
  let cases =
    [ ( "table1_stats",
        fun () -> List.iter (fun (k : Kernel.t) -> ignore (Kernel.stats k.dfg)) Registry.all );
      ("fig2_map_baseline", map_kernel Iced_mapper.Mapper.Conventional fir);
      ( "fig4_committed_map",
        fun () ->
          let cgra = Cgra.make ~rows:8 ~cols:8 () in
          let req =
            Iced_mapper.Mapper.request ~strategy:Iced_mapper.Mapper.Dvfs_aware
              ~commit_islands:true cgra
          in
          ignore (Iced_mapper.Mapper.map req fir.dfg) );
      ( "fig8_power_model",
        fun () ->
          let params = Iced_power.Params.default in
          ignore (Iced_power.Model.area_mm2 params Iced_power.Model.Iced Cgra.iced_6x6) );
      ("fig9_map_iced", map_kernel Iced_mapper.Mapper.Dvfs_aware fir);
      ( "fig10_levels_assign",
        fun () ->
          match
            Iced_mapper.Mapper.map (Iced_mapper.Mapper.request Cgra.iced_6x6) fir.dfg
          with
          | Ok m -> ignore (Iced_mapper.Levels.assign m)
          | Error _ -> () );
      ("fig11_full_evaluation", fun () -> ignore (Design.evaluate Design.Iced fir));
      ( "fig12_map_large_fabric",
        fun () ->
          let cgra = Cgra.make ~rows:8 ~cols:8 () in
          ignore (Iced_mapper.Mapper.map (Iced_mapper.Mapper.request cgra) fft.dfg) );
      ( "fig13_stream_window",
        fun () ->
          ignore (Iced_stream.Runner.run gcn_partition Iced_stream.Runner.Iced_dvfs gcn_window)
      );
      ("fig14_fft_eval", fun () -> ignore (Design.evaluate Design.Iced fft)) ]
  in
  let tests =
    Test.make_grouped ~name:"iced"
      (List.map (fun (name, fn) -> Test.make ~name (Staged.stage fn)) cases)
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let t =
    Table.create ~title:"Bechamel: experiment core computations" ~columns:[ "test"; "time" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let time =
        match Analyze.OLS.estimates ols with
        | Some (est :: _) ->
          if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
          else Printf.sprintf "%.0f ns" est
        | _ -> "-"
      in
      rows := (name, time) :: !rows)
    results;
  List.iter (fun (name, time) -> Table.add_row t [ name; time ]) (List.sort compare !rows);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Mapper engine benchmark: per-kernel mapping telemetry and the       *)
(* router's steady-path allocation, written to BENCH_mapper.json (the  *)
(* CI smoke job parses it).  ICED_BENCH_KERNELS=fir,fft filters the    *)
(* kernel list.                                                        *)

let mapper_bench () =
  let module Mapper = Iced_mapper.Mapper in
  let module Router = Iced_mapper.Router in
  let selected =
    match Sys.getenv_opt "ICED_BENCH_KERNELS" with
    | None | Some "" -> kernels
    | Some spec ->
      let wanted = String.split_on_char ',' spec in
      List.filter (fun (k : Kernel.t) -> List.mem k.name wanted) kernels
  in
  (* Steady-path router allocation: route and release the same edge
     repeatedly through an otherwise-empty MRRG, once with a private
     arena per call (the pre-arena engine's behavior) and once with a
     shared arena.  Per-iteration byte delta isolates what one route
     costs. *)
  let bytes_per_route ~shared iterations =
    let mrrg = Iced_mrrg.Mrrg.create Cgra.iced_6x6 ~ii:8 in
    let edge = { Iced_dfg.Graph.src = 0; dst = 1; distance = 0 } in
    let scratch = if shared then Some (Router.create_scratch ()) else None in
    let route () =
      Router.route ?scratch mrrg ~edge ~src_tile:0 ~src_time:0 ~dst_tile:14 ~deadline:12
    in
    (* warm up so the shared arena's buffers are grown before measuring *)
    (match route () with Ok (hops, _) -> Router.release mrrg hops edge | Error _ -> ());
    let before = Gc.allocated_bytes () in
    for _ = 1 to iterations do
      match route () with
      | Ok (hops, _) -> Router.release mrrg hops edge
      | Error _ -> ()
    done;
    (Gc.allocated_bytes () -. before) /. float_of_int iterations
  in
  let iterations = 1000 in
  let fresh_bytes = bytes_per_route ~shared:false iterations in
  let shared_bytes = bytes_per_route ~shared:true iterations in
  let reduction = fresh_bytes /. Float.max shared_bytes 1.0 in
  let t =
    Table.create ~title:"Mapper engine: per-kernel mapping cost (iced point, uf1, 6x6)"
      ~columns:
        [ "kernel"; "ii"; "wall ms"; "alloc MB"; "routes"; "KB/route"; "expansions";
          "placements" ]
  in
  let kernel_rows =
    List.filter_map
      (fun (k : Kernel.t) ->
        let stats = Mapper.create_stats () in
        let req = Mapper.request ~strategy:Mapper.Dvfs_aware Cgra.iced_6x6 in
        let before = Gc.allocated_bytes () in
        match Mapper.map ~stats req k.dfg with
        | Error _ ->
          Table.add_row t (k.name :: List.map (fun _ -> "-") [ 1; 2; 3; 4; 5; 6; 7 ]);
          None
        | Ok m ->
          let alloc = Gc.allocated_bytes () -. before in
          let routes = max 1 stats.Mapper.route_calls in
          Table.add_row t
            [ k.name;
              string_of_int m.Iced_mapper.Mapping.ii;
              Printf.sprintf "%.2f" (stats.Mapper.wall_s *. 1e3);
              Printf.sprintf "%.2f" (alloc /. 1048576.0);
              string_of_int stats.Mapper.route_calls;
              Printf.sprintf "%.1f" (alloc /. float_of_int routes /. 1024.0);
              string_of_int stats.Mapper.expansions;
              string_of_int stats.Mapper.placements_tried ];
          Some
            (Printf.sprintf
               "{\"kernel\":%S,\"ii\":%d,\"wall_s\":%.6f,\"alloc_bytes\":%.0f,\
                \"route_calls\":%d,\"alloc_per_route\":%.1f,\"expansions\":%d,\
                \"placements_tried\":%d,\"attempts\":%d,\"ii_bumps\":%d}"
               k.name m.Iced_mapper.Mapping.ii stats.Mapper.wall_s alloc
               stats.Mapper.route_calls
               (alloc /. float_of_int routes)
               stats.Mapper.expansions stats.Mapper.placements_tried stats.Mapper.attempts
               stats.Mapper.ii_bumps))
      selected
  in
  Table.print t;
  Printf.printf
    "router steady path: %.0f B/route with a fresh arena vs %.0f B/route shared \
     (%.1fx less allocation)\n"
    fresh_bytes shared_bytes reduction;
  (* Backend shoot-out: the three placement/routing pairs on large
     seeded synthetic kernels over a 16x16 fabric, where greedy
     placement leaves II on the table.  Non-default backends are mapped
     twice to pin same-seed determinism. *)
  let shoot_fabric = Cgra.make ~rows:16 ~cols:16 () in
  let shoot_kernels =
    List.filter_map Iced_kernels.Registry.by_name
      (match Sys.getenv_opt "ICED_BENCH_SHOOTOUT" with
      | None | Some "" -> [ "rand100x1"; "rand120x3" ]
      | Some spec -> String.split_on_char ',' spec)
  in
  let st =
    Table.create ~title:"Backend shoot-out (16x16, seeded synthetic kernels)"
      ~columns:[ "kernel"; "backend"; "ok"; "ii"; "wall ms"; "deterministic" ]
  in
  let shoot_rows =
    List.map
      (fun (k : Kernel.t) ->
        let per_backend =
          List.map
            (fun backend ->
              let name = Iced_mapper.Backend.to_string backend in
              let map_once () =
                let stats = Mapper.create_stats () in
                let req =
                  Mapper.request ~strategy:Mapper.Dvfs_aware ~backend shoot_fabric
                in
                (Mapper.map ~stats req k.dfg, stats)
              in
              let result, stats = map_once () in
              let render m = Format.asprintf "%a" Iced_mapper.Mapping.pp m in
              let ok, ii = match result with
                | Ok m -> (true, m.Iced_mapper.Mapping.ii)
                | Error _ -> (false, 0)
              in
              let deterministic =
                match result with
                | Error _ -> true  (* failures are deterministic too *)
                | Ok m -> (
                  match fst (map_once ()) with
                  | Ok m2 -> render m = render m2
                  | Error _ -> false)
              in
              Table.add_row st
                [ k.name; name; string_of_bool ok;
                  (if ok then string_of_int ii else "-");
                  Printf.sprintf "%.1f" (stats.Mapper.wall_s *. 1e3);
                  string_of_bool deterministic ];
              Printf.sprintf
                "{\"backend\":%S,\"ok\":%b,\"ii\":%d,\"wall_s\":%.6f,\
                 \"deterministic\":%b}"
                name ok ii stats.Mapper.wall_s deterministic)
            [ Iced_mapper.Backend.default; Iced_mapper.Backend.sa;
              Iced_mapper.Backend.pathfinder ]
        in
        Printf.sprintf "{\"kernel\":%S,\"fabric\":\"16x16\",\"backends\":[%s]}" k.name
          (String.concat "," per_backend))
      shoot_kernels
  in
  Table.print st;
  let json =
    Printf.sprintf
      "{\"schema\":\"iced-bench-mapper-v2\",\"router_alloc\":{\"iterations\":%d,\
       \"fresh_bytes_per_route\":%.1f,\"shared_bytes_per_route\":%.1f,\
       \"reduction_factor\":%.2f},\"kernels\":[%s],\"shootout\":[%s]}\n"
      iterations fresh_bytes shared_bytes reduction
      (String.concat "," kernel_rows)
      (String.concat "," shoot_rows)
  in
  let oc = open_out "BENCH_mapper.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_mapper.json (%d kernels)\n" (List.length kernel_rows)

(* ------------------------------------------------------------------ *)
(* Fault injection: recovery policies under a single tile fault, then  *)
(* a seeded multi-fault campaign (DESIGN.md "lib/fault").               *)

let fault_injection () =
  let module Fault = Iced_fault.Fault in
  let module Runner = Iced_stream.Runner in
  (* one dead tile in the LU pipeline's fabric, mid-stream: the
     acceptance scenario — remap and gate must keep >= 50% of the
     fault-free throughput, fail-stop reports the loss *)
  let partition, inputs = stream_setup "lu" in
  let baseline = Runner.aggregate (Runner.run partition Runner.Iced_dvfs inputs) in
  let plan = Fault.make ~seed:1 [ { Fault.at_input = 50; fault = Fault.Tile_dead 0 } ] in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Recovery policies, LU pipeline, tile 0 dead at input 50 (%d inputs)"
           (List.length inputs))
      ~columns:[ "recovery"; "completed"; "dropped"; "mttr us"; "inputs/s"; "retention" ]
  in
  List.iter
    (fun recovery ->
      let reports, stats =
        Runner.run_resilient ~faults:plan ~recovery partition Runner.Iced_dvfs inputs
      in
      let totals = Runner.aggregate reports in
      let retention =
        float_of_int stats.Runner.completed
        /. float_of_int stats.Runner.offered
        *. Float.min 1.0
             (totals.Runner.overall_throughput_per_s
             /. baseline.Runner.overall_throughput_per_s)
      in
      Table.add_row t
        [ Runner.recovery_to_string recovery;
          Printf.sprintf "%d/%d" stats.Runner.completed stats.Runner.offered;
          string_of_int stats.Runner.inputs_dropped;
          fmt stats.Runner.mttr_us;
          fmt totals.Runner.overall_throughput_per_s;
          fmt retention ])
    [ Runner.Remap; Runner.Gate_island; Runner.Raise_level; Runner.Fail_stop ];
  Table.print t;
  (* seeded campaign over all fault families *)
  let spec = { Iced_campaign.Campaign.default_spec with inputs = 100; workers = 2 } in
  match Iced_campaign.Campaign.run spec with
  | Error msg -> Printf.eprintf "campaign failed: %s\n" msg
  | Ok campaign -> print_string (Iced_campaign.Campaign.render campaign)

(* ------------------------------------------------------------------ *)
(* Serve: closed-loop load generator against an in-process daemon pool *)
(* (BENCH_serve.json; the CI smoke job parses it).                     *)
(* ICED_BENCH_SERVE_REQUESTS / _WORKERS override the defaults.         *)

let serve_bench () =
  let module Server = Iced_serve.Server in
  let module Protocol = Iced_serve.Protocol in
  let module Cache = Iced_explore.Cache in
  let module Space = Iced_explore.Space in
  let getenv_int name default =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some n when n > 0 -> n
    | _ -> default
  in
  let requests = getenv_int "ICED_BENCH_SERVE_REQUESTS" 2000 in
  let workers = getenv_int "ICED_BENCH_SERVE_WORKERS" 4 in
  let queue_depth = 256 in
  (* request mix: ~90% map draws over a small point x kernel pool, so
     most requests repeat an earlier one and exercise the dedup path;
     the rest are pings threaded between the expensive work *)
  let points =
    [ Protocol.default_point;
      { Protocol.default_point with Space.floor = Dvfs.Relax } ]
  in
  let kernel_names = List.map (fun (k : Kernel.t) -> k.name) kernels in
  let rng = Iced_util.Rng.create 2026 in
  let frames =
    List.init requests (fun i ->
        let id = Printf.sprintf "r%04d" i in
        if Iced_util.Rng.int rng 10 = 0 then
          { Protocol.id; request = Protocol.Ping; deadline_ms = None; tenant = None; qos = None }
        else
          let point = Iced_util.Rng.choose rng points in
          let kernel = Iced_util.Rng.choose rng kernel_names in
          { Protocol.id; request = Protocol.Map { point; kernel; backend = Iced_mapper.Backend.default }; deadline_ms = None; tenant = None; qos = None })
  in
  let cache = Cache.in_memory () in
  let latencies = Array.make requests 0.0 in
  let recorded = ref 0 in
  let mu = Mutex.create () in
  let advanced = Condition.create () in
  let outstanding = ref 0 in
  (* closed loop: enough concurrency to keep every worker busy without
     ever tripping admission control *)
  let window = workers * 4 in
  let respond _line ~latency_s =
    Mutex.lock mu;
    latencies.(!recorded) <- latency_s;
    incr recorded;
    decr outstanding;
    Condition.broadcast advanced;
    Mutex.unlock mu
  in
  let server =
    Server.create ~respond
      { Server.workers; queue_depth; cache; restart_budget = 8;
        default_deadline_ms = None }
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun frame ->
      Mutex.lock mu;
      while !outstanding >= window do
        Condition.wait advanced mu
      done;
      incr outstanding;
      Mutex.unlock mu;
      ignore (Server.submit server frame))
    frames;
  Server.shutdown server;
  let wall_s = Unix.gettimeofday () -. t0 in
  let n = !recorded in
  let lat = Array.sub latencies 0 n in
  Array.sort compare lat;
  let pct p =
    if n = 0 then 0.0
    else lat.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  let p50 = pct 0.5 and p99 = pct 0.99 in
  let hits = Cache.hits cache and misses = Cache.misses cache in
  let coalesced = Cache.coalesced cache in
  let hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let throughput = float_of_int n /. wall_s in
  let shed = Server.shed server in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "iced serve: %d requests, %d workers (closed loop, window %d)"
           requests workers window)
      ~columns:[ "metric"; "value" ]
  in
  List.iter
    (fun (k, v) -> Table.add_row t [ k; v ])
    [ ("responses", string_of_int n);
      ("wall s", Printf.sprintf "%.2f" wall_s);
      ("throughput rps", Printf.sprintf "%.0f" throughput);
      ("p50 ms", Printf.sprintf "%.3f" (p50 *. 1e3));
      ("p99 ms", Printf.sprintf "%.3f" (p99 *. 1e3));
      ("cache hits", string_of_int hits);
      ("cache misses", string_of_int misses);
      ("coalesced", string_of_int coalesced);
      ("dedup hit rate", Printf.sprintf "%.3f" hit_rate);
      ("shed", string_of_int shed) ];
  Table.print t;
  let json =
    Printf.sprintf
      "{\"schema\":\"iced-bench-serve-v1\",\"requests\":%d,\"responses\":%d,\
       \"workers\":%d,\"queue_depth\":%d,\"window\":%d,\"wall_s\":%.6f,\
       \"throughput_rps\":%.1f,\"p50_ms\":%.4f,\"p99_ms\":%.4f,\
       \"dedup\":{\"hits\":%d,\"misses\":%d,\"coalesced\":%d,\"hit_rate\":%.4f},\
       \"shed\":%d}\n"
      requests n workers queue_depth window wall_s throughput (p50 *. 1e3) (p99 *. 1e3)
      hits misses coalesced hit_rate shed
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_serve.json (%d responses)\n" n

(* ------------------------------------------------------------------ *)
(* Chaos: seeded fault injection against a live forked daemon          *)
(* (BENCH_chaos.json; the CI chaos-soak job parses it).                *)
(* ICED_BENCH_CHAOS_SEED / _EVENTS override the defaults.  The whole   *)
(* scenario runs twice with the same seed and the two deterministic    *)
(* summaries must match byte-for-byte.                                 *)

type chaos_summary = {
  ch_seed : int;
  ch_events : int;
  ch_errors : int;  (* crash kill=false -> internal_error barrier *)
  ch_kills : int;  (* crash kill=true  -> worker supervision *)
  ch_slows : int;  (* expired-deadline sleeps -> timeout shed *)
  ch_disconnects : int;  (* client vanishes mid-frame *)
  ch_restarts : int;  (* SIGTERM drain under in-flight load *)
  ch_corruptions : int;  (* SIGKILL + cache-byte damage + recovery *)
  ch_skipped_corruptions : int;  (* cache empty, nothing to damage *)
  ch_daemon_restarts : int;
  ch_cache_recoveries : int;
  ch_probes : int;
  ch_probes_ok : int;
}

let chaos () =
  let module Server = Iced_serve.Server in
  let module Protocol = Iced_serve.Protocol in
  let module Lineio = Iced_serve.Lineio in
  let module Cache = Iced_explore.Cache in
  let module Space = Iced_explore.Space in
  let module J = Iced_util.Json in
  let getenv_int name default =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some n when n > 0 -> n
    | _ -> default
  in
  let seed = getenv_int "ICED_BENCH_CHAOS_SEED" 7 in
  let events = getenv_int "ICED_BENCH_CHAOS_EVENTS" 500 in
  (* The daemon's stderr log is an artifact, not a repo file: keep it
     out of the working tree unless the caller asks for a path (the CI
     soak job sets ICED_BENCH_CHAOS_LOG to grep it afterwards). *)
  let daemon_log =
    match Sys.getenv_opt "ICED_BENCH_CHAOS_LOG" with
    | Some path when path <> "" -> path
    | _ ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "iced_chaos_daemon.%d.log" (Unix.getpid ()))
  in
  (try Sys.remove daemon_log with Sys_error _ -> ());
  let failf fmt = Printf.ksprintf (fun m -> failwith ("chaos: " ^ m)) fmt in
  (* -------------------------------------------------------------- *)
  (* daemon lifecycle: the daemon is a fork of this process serving  *)
  (* a Unix socket; its stderr goes to the log the CI job greps      *)
  let start_daemon ~socket_path ~cache_path =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      (try
         let log =
           Unix.openfile daemon_log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
         in
         Unix.dup2 log Unix.stderr;
         Unix.close log;
         let stop_flag = Atomic.make false in
         Sys.set_signal Sys.sigterm
           (Sys.Signal_handle (fun _ -> Atomic.set stop_flag true));
         let cache = Cache.open_file cache_path in
         let config =
           { Server.workers = 2; queue_depth = 64; cache; restart_budget = 1_000_000;
             default_deadline_ms = None }
         in
         ignore
           (Server.serve_socket ~stop:(fun () -> Atomic.get stop_flag) config socket_path);
         Cache.close cache;
         exit 0
       with e ->
         Printf.eprintf "[chaos-daemon] fatal: %s\n%!" (Printexc.to_string e);
         exit 1)
    | pid -> pid
  in
  let connect ~socket_path =
    let give_up = Unix.gettimeofday () +. 30.0 in
    let rec go () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
      | () ->
        (* a wedged daemon should fail the bench loudly, not hang it *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 120.0;
        (Lineio.reader fd, Lineio.writer fd, fd)
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
        Unix.close fd;
        if Unix.gettimeofday () > give_up then failf "daemon never came up";
        ignore (Unix.sleepf 0.01);
        go ()
    in
    go ()
  in
  let recv reader =
    match Lineio.read_line reader with
    | `Line l -> l
    | `Eof -> failf "daemon hung up mid-conversation"
    | `Stopped -> assert false
  in
  let stop_daemon ~signal ~socket_path pid =
    Unix.kill pid signal;
    (match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 when signal = Sys.sigterm -> ()
    | _, Unix.WSIGNALED s when signal = Sys.sigkill && s = Sys.sigkill -> ()
    | _, status ->
      let show = function
        | Unix.WEXITED c -> Printf.sprintf "exit %d" c
        | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
        | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
      in
      failf "daemon died wrong: %s" (show status));
    if signal = Sys.sigterm && Sys.file_exists socket_path then
      failf "socket file survived a graceful shutdown"
  in
  (* -------------------------------------------------------------- *)
  (* the scenario *)
  let run_scenario run_idx =
    let socket_path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "iced_chaos_%d_%d.sock" (Unix.getpid ()) run_idx)
    in
    let cache_path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "iced_chaos_%d_%d.cache" (Unix.getpid ()) run_idx)
    in
    (try Sys.remove cache_path with Sys_error _ -> ());
    (try Sys.remove (cache_path ^ ".bak") with Sys_error _ -> ());
    let rng = Iced_util.Rng.create seed in
    let oracle = Cache.in_memory () in
    let oracle_stats ~id:_ = "" in
    let expect frame = Server.handle ~cache:oracle ~stats:oracle_stats frame in
    let points =
      [ Protocol.default_point;
        { Protocol.default_point with Space.floor = Dvfs.Relax } ]
    in
    let kernel_names = [ "fir"; "relu"; "spmv" ] in
    let s = ref { ch_seed = seed; ch_events = events; ch_errors = 0; ch_kills = 0;
                  ch_slows = 0; ch_disconnects = 0; ch_restarts = 0; ch_corruptions = 0;
                  ch_skipped_corruptions = 0; ch_daemon_restarts = 0;
                  ch_cache_recoveries = 0; ch_probes = 0; ch_probes_ok = 0 }
    in
    let probe_lat = ref [] in
    let pid = ref (start_daemon ~socket_path ~cache_path) in
    let conn = ref (connect ~socket_path) in
    let send frame =
      let _, w, _ = !conn in
      if not (Lineio.write_line w (Protocol.encode_request frame)) then
        failf "daemon closed the socket unexpectedly"
    in
    let roundtrip frame =
      send frame;
      let r, _, _ = !conn in
      recv r
    in
    let reconnect () =
      let _, _, fd = !conn in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      conn := connect ~socket_path
    in
    let restart_daemon () =
      s := { !s with ch_daemon_restarts = !s.ch_daemon_restarts + 1 };
      pid := start_daemon ~socket_path ~cache_path;
      reconnect ()
    in
    (* after every event the daemon must answer a probe correctly;
       every 10th probe is a map checked byte-for-byte against the
       serial oracle, the rest are pings *)
    let probe k =
      let id = Printf.sprintf "p%05d" k in
      let frame =
        if k mod 10 = 5 then
          let point = Iced_util.Rng.choose rng points in
          let kernel = Iced_util.Rng.choose rng kernel_names in
          { Protocol.id; request = Protocol.Map { point; kernel; backend = Iced_mapper.Backend.default }; deadline_ms = None; tenant = None; qos = None }
        else { Protocol.id; request = Protocol.Ping; deadline_ms = None; tenant = None; qos = None }
      in
      let want = expect frame in
      let t0 = Unix.gettimeofday () in
      let got = roundtrip frame in
      probe_lat := (Unix.gettimeofday () -. t0) :: !probe_lat;
      s :=
        { !s with
          ch_probes = !s.ch_probes + 1;
          ch_probes_ok = (!s.ch_probes_ok + if got = want then 1 else 0) };
      if got <> want then
        Printf.eprintf "[chaos] probe %s diverged:\n  want %s\n  got  %s\n%!" id want got
    in
    let event k =
      let id = Printf.sprintf "e%05d" k in
      match Iced_util.Rng.int rng 100 with
      | d when d < 30 ->
        (* handler exception: the barrier answers with a fingerprint *)
        s := { !s with ch_errors = !s.ch_errors + 1 };
        let got =
          roundtrip
            { Protocol.id; request = Protocol.Crash { kill = false }; deadline_ms = None; tenant = None; qos = None }
        in
        let want =
          Protocol.response_internal_error ~id ~op:"crash"
            ~fingerprint:(Server.fingerprint Server.Chaos_failure)
        in
        if got <> want then failf "error event %s: want %s, got %s" id want got
      | d when d < 55 ->
        (* worker-domain death: supervisor answers, restarts the worker *)
        s := { !s with ch_kills = !s.ch_kills + 1 };
        let got =
          roundtrip
            { Protocol.id; request = Protocol.Crash { kill = true }; deadline_ms = None; tenant = None; qos = None }
        in
        let want =
          Protocol.response_internal_error ~id ~op:"crash"
            ~fingerprint:(Server.fingerprint Server.Worker_kill)
        in
        if got <> want then failf "kill event %s: want %s, got %s" id want got
      | d when d < 75 ->
        (* a request whose budget is already spent: deterministic shed *)
        s := { !s with ch_slows = !s.ch_slows + 1 };
        let got =
          roundtrip { Protocol.id; request = Protocol.Sleep 200; deadline_ms = Some 0; tenant = None; qos = None }
        in
        let want = Protocol.response_timeout ~id ~op:"sleep" in
        if got <> want then failf "slow event %s: want %s, got %s" id want got
      | d when d < 90 ->
        (* client vanishes mid-frame: the torn line must be discarded *)
        s := { !s with ch_disconnects = !s.ch_disconnects + 1 };
        let _, w, _ = !conn in
        ignore (Lineio.write_line w (Printf.sprintf "{\"id\":\"%s\",\"op\":\"pi" id));
        reconnect ()
      | d when d < 95 ->
        (* SIGTERM under load: accepted sleeps drain, exit 0, socket gone *)
        s := { !s with ch_restarts = !s.ch_restarts + 1 };
        let sleeps =
          List.init 3 (fun i ->
              { Protocol.id = Printf.sprintf "%s-s%d" id i;
                request = Protocol.Sleep 50; deadline_ms = None; tenant = None; qos = None })
        in
        List.iter send sleeps;
        let r, _, _ = !conn in
        let first = recv r in
        Unix.kill !pid Sys.sigterm;
        let rest = [ recv r; recv r ] in
        let got = List.sort compare (first :: rest) in
        let want =
          List.sort compare
            (List.map
               (fun (f : Protocol.frame) -> Protocol.response_sleep ~id:f.Protocol.id ~ms:50)
               sleeps)
        in
        if got <> want then
          failf "restart event %s: drained replies diverged (%s)" id (String.concat " " got);
        (match Unix.waitpid [] !pid with
        | _, Unix.WEXITED 0 -> ()
        | _, _ -> failf "restart event %s: daemon did not exit 0" id);
        if Sys.file_exists socket_path then
          failf "restart event %s: socket file survived drain" id;
        restart_daemon ()
      | _ -> (
        (* SIGKILL, then damage the cache file; the reopened daemon
           must recover the intact prefix and still answer correctly *)
        stop_daemon ~signal:Sys.sigkill ~socket_path !pid;
        let image =
          let ic = open_in_bin cache_path in
          let c = really_input_string ic (in_channel_length ic) in
          close_in ic;
          c
        in
        match Cache.wal_entries image with
        | [] ->
          s := { !s with ch_skipped_corruptions = !s.ch_skipped_corruptions + 1 };
          restart_daemon ()
        | entries ->
          s := { !s with ch_corruptions = !s.ch_corruptions + 1 };
          let off, len = List.nth entries (Iced_util.Rng.int rng (List.length entries)) in
          let pos = off + (len / 2) in
          if Iced_util.Rng.int rng 2 = 0 then
            (* torn append: the file ends mid-record *)
            Unix.truncate cache_path pos
          else begin
            (* flipped byte: the record's checksum no longer matches *)
            let b = Bytes.of_string image in
            Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
            let oc = open_out_bin cache_path in
            output_bytes oc b;
            close_out oc
          end;
          restart_daemon ();
          let health =
            roundtrip { Protocol.id; request = Protocol.Health; deadline_ms = None; tenant = None; qos = None }
          in
          let recovered =
            match J.parse health with
            | Error _ -> false
            | Ok v -> (
              match Option.bind (J.member "cache" v) (J.member "recovery") with
              | Some J.Null | None -> false
              | Some _ -> true)
          in
          if not recovered then failf "corrupt event %s: health reported no recovery" id;
          s := { !s with ch_cache_recoveries = !s.ch_cache_recoveries + 1 })
    in
    let t0 = Unix.gettimeofday () in
    for k = 0 to events - 1 do
      event k;
      probe k
    done;
    (* graceful wind-down of the last daemon generation *)
    send { Protocol.id = "bye"; request = Protocol.Shutdown; deadline_ms = None; tenant = None; qos = None };
    let r, _, fd = !conn in
    let bye = recv r in
    if bye <> Protocol.response_shutdown ~id:"bye" then failf "bad shutdown reply: %s" bye;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (match Unix.waitpid [] !pid with
    | _, Unix.WEXITED 0 -> ()
    | _, _ -> failf "final daemon did not exit 0");
    let wall_s = Unix.gettimeofday () -. t0 in
    (try Sys.remove cache_path with Sys_error _ -> ());
    (!s, wall_s, !probe_lat)
  in
  (* -------------------------------------------------------------- *)
  let summary, wall_s, lats = run_scenario 0 in
  let summary2, _, _ = run_scenario 1 in
  let deterministic = summary = summary2 in
  if not deterministic then
    Printf.eprintf "[chaos] WARNING: two same-seed runs produced different summaries\n%!";
  let availability =
    if summary.ch_probes = 0 then 1.0
    else float_of_int summary.ch_probes_ok /. float_of_int summary.ch_probes
  in
  let lat = Array.of_list lats in
  Array.sort compare lat;
  let n = Array.length lat in
  let pct p =
    if n = 0 then 0.0
    else lat.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  let t =
    Table.create
      ~title:(Printf.sprintf "iced chaos: %d events, seed %d (run twice)" events seed)
      ~columns:[ "metric"; "value" ]
  in
  List.iter
    (fun (k, v) -> Table.add_row t [ k; v ])
    [ ("handler errors", string_of_int summary.ch_errors);
      ("worker kills", string_of_int summary.ch_kills);
      ("expired deadlines", string_of_int summary.ch_slows);
      ("disconnects", string_of_int summary.ch_disconnects);
      ("drain restarts", string_of_int summary.ch_restarts);
      ("cache corruptions", string_of_int summary.ch_corruptions);
      ("daemon restarts", string_of_int summary.ch_daemon_restarts);
      ("cache recoveries", string_of_int summary.ch_cache_recoveries);
      ("probes ok", Printf.sprintf "%d/%d" summary.ch_probes_ok summary.ch_probes);
      ("availability", Printf.sprintf "%.4f" availability);
      ("probe p99 ms", Printf.sprintf "%.3f" (pct 0.99 *. 1e3));
      ("deterministic", string_of_bool deterministic) ];
  Table.print t;
  let json =
    Printf.sprintf
      "{\"schema\":\"iced-bench-chaos-v1\",\"seed\":%d,\"events\":%d,\
       \"injected\":{\"error\":%d,\"kill\":%d,\"slow\":%d,\"disconnect\":%d,\
       \"restart\":%d,\"corrupt\":%d,\"corrupt_skipped\":%d},\
       \"recoveries\":{\"worker_restarts\":%d,\"daemon_restarts\":%d,\
       \"cache_recoveries\":%d},\
       \"probes\":{\"sent\":%d,\"answered_correctly\":%d},\
       \"availability\":%.6f,\"deterministic\":%b,\
       \"timing\":{\"wall_s\":%.3f,\"probe_p50_ms\":%.4f,\"probe_p99_ms\":%.4f}}\n"
      seed events summary.ch_errors summary.ch_kills summary.ch_slows
      summary.ch_disconnects summary.ch_restarts summary.ch_corruptions
      summary.ch_skipped_corruptions summary.ch_kills summary.ch_daemon_restarts
      summary.ch_cache_recoveries summary.ch_probes summary.ch_probes_ok availability
      deterministic wall_s (pct 0.5 *. 1e3) (pct 0.99 *. 1e3)
  in
  let oc = open_out "BENCH_chaos.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_chaos.json (%d events, availability %.4f)\n" events
    availability;
  Printf.printf "daemon log: %s\n" daemon_log;
  if availability < 1.0 then failwith "chaos: availability below 1.0";
  if not deterministic then failwith "chaos: same-seed runs diverged"

(* ------------------------------------------------------------------ *)
(* Exact oracle gap report: SAT-certified minimal II per small kernel  *)
(* vs each heuristic backend's II (BENCH_exact.json; the CI exact-gap  *)
(* job parses it).  ICED_BENCH_EXACT_KERNELS filters the kernel list,  *)
(* ICED_BENCH_EXACT_BUDGET overrides the per-II conflict budget.       *)

let exact_bench () =
  let module Mapper = Iced_mapper.Mapper in
  let module Exact = Iced_mapper.Exact in
  let getenv_int name default =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some n when n > 0 -> n
    | _ -> default
  in
  let budget = getenv_int "ICED_BENCH_EXACT_BUDGET" 100_000 in
  let fabric = Cgra.iced_6x6 in
  let selected =
    match Sys.getenv_opt "ICED_BENCH_EXACT_KERNELS" with
    | None | Some "" -> kernels
    | Some spec ->
      let wanted = String.split_on_char ',' spec in
      List.filter (fun (k : Kernel.t) -> List.mem k.name wanted) kernels
  in
  let t =
    Table.create
      ~title:"Exact oracle: certified minimal II vs heuristic backends (uf1, 6x6)"
      ~columns:
        [ "kernel"; "nodes"; "verdict"; "opt ii"; "default"; "sa"; "pathfinder";
          "conflicts"; "blocks"; "wall ms" ]
  in
  let backends =
    [ Iced_mapper.Backend.default; Iced_mapper.Backend.sa;
      Iced_mapper.Backend.pathfinder ]
  in
  let bad_witness = ref [] in
  let rows =
    List.map
      (fun (k : Kernel.t) ->
        let t0 = Unix.gettimeofday () in
        let report = Exact.certify ~budget_conflicts:budget fabric k.dfg in
        let wall = Unix.gettimeofday () -. t0 in
        let verdict, opt_ii, first_undecided, feasible_at =
          match report.Exact.verdict with
          | Exact.Optimal ii -> ("optimal", Some ii, None, None)
          | Exact.Infeasible -> ("infeasible", None, None, None)
          | Exact.Unknown { first_undecided; feasible_at } ->
            ("unknown", None, Some first_undecided, feasible_at)
        in
        let witness_valid =
          match report.Exact.witness with
          | None -> false
          | Some m -> Iced_mapper.Validate.check m = Ok ()
        in
        (match opt_ii with
        | Some _ when not witness_valid -> bad_witness := k.name :: !bad_witness
        | _ -> ());
        let per_backend =
          List.map
            (fun backend ->
              let name = Iced_mapper.Backend.to_string backend in
              let req = Mapper.request ~strategy:Mapper.Dvfs_aware ~backend fabric in
              match Mapper.map req k.dfg with
              | Error _ -> (name, None)
              | Ok m -> (name, Some m.Iced_mapper.Mapping.ii))
            backends
        in
        let cell (_, ii) =
          match (ii, opt_ii) with
          | Some hii, Some oii when hii > oii ->
            Printf.sprintf "%d (+%d)" hii (hii - oii)
          | Some hii, _ -> string_of_int hii
          | None, _ -> "-"
        in
        Table.add_row t
          [ k.name;
            string_of_int (Iced_dfg.Graph.node_count k.dfg);
            verdict;
            (match opt_ii with Some ii -> string_of_int ii | None -> "-");
            cell (List.nth per_backend 0);
            cell (List.nth per_backend 1);
            cell (List.nth per_backend 2);
            string_of_int report.Exact.conflicts;
            string_of_int report.Exact.route_blocks;
            Printf.sprintf "%.1f" (wall *. 1e3) ];
        let opt_field = function Some v -> string_of_int v | None -> "null" in
        let backend_json =
          String.concat ","
            (List.map
               (fun (name, ii) ->
                 match ii with
                 | Some hii ->
                   let gap_field =
                     match opt_ii with
                     | Some oii -> Printf.sprintf ",\"gap\":%d" (hii - oii)
                     | None -> ""
                   in
                   Printf.sprintf "{\"backend\":%S,\"ok\":true,\"ii\":%d%s}" name hii
                     gap_field
                 | None -> Printf.sprintf "{\"backend\":%S,\"ok\":false}" name)
               per_backend)
        in
        Printf.sprintf
          "{\"kernel\":%S,\"nodes\":%d,\"edges\":%d,\"verdict\":%S,\
           \"optimal_ii\":%s,\"first_undecided\":%s,\"feasible_at\":%s,\
           \"start_ii\":%d,\"conflicts\":%d,\"decisions\":%d,\"propagations\":%d,\
           \"route_blocks\":%d,\"vars\":%d,\"clauses\":%d,\"witness_valid\":%b,\
           \"wall_s\":%.6f,\"backends\":[%s]}"
          k.name
          (Iced_dfg.Graph.node_count k.dfg)
          (Iced_dfg.Graph.edge_count k.dfg)
          verdict (opt_field opt_ii) (opt_field first_undecided)
          (opt_field feasible_at) report.Exact.start_ii report.Exact.conflicts
          report.Exact.decisions report.Exact.propagations report.Exact.route_blocks
          report.Exact.vars report.Exact.clauses witness_valid wall backend_json)
      selected
  in
  Table.print t;
  let json =
    Printf.sprintf
      "{\"schema\":\"iced-bench-exact-v1\",\"fabric\":\"6x6\",\
       \"budget_conflicts\":%d,\"kernels\":[%s]}\n"
      budget (String.concat "," rows)
  in
  let oc = open_out "BENCH_exact.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_exact.json (%d kernels)\n" (List.length rows);
  if !bad_witness <> [] then
    failwith
      (Printf.sprintf "exact: invalid witness for %s"
         (String.concat ", " (List.rev !bad_witness)))

(* ------------------------------------------------------------------ *)
(* tenancy: cap-sweep the multi-tenant scheduler at several fleet      *)
(* sizes (BENCH_tenancy.json; the CI tenancy-smoke job parses it).     *)
(* ICED_BENCH_TENANCY_TENANTS / _INPUTS / _SEED override the           *)
(* defaults.  The experiment is its own gate: every sweep cell must    *)
(* hold measured power under the cap with nobody starved, each sweep   *)
(* must be byte-identical across worker counts and a same-seed rerun,  *)
(* and a single-tenant shared run must reproduce Runner.run            *)
(* byte-for-byte.                                                      *)

let tenancy_bench () =
  let module Tenant = Iced_tenancy.Tenant in
  let module Scheduler = Iced_tenancy.Scheduler in
  let module Capsweep = Iced_tenancy.Capsweep in
  let module Runner = Iced_stream.Runner in
  let getenv_int name default =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some v -> v
    | None -> default
  in
  let counts =
    match Sys.getenv_opt "ICED_BENCH_TENANCY_TENANTS" with
    | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
    | None -> [ 2; 4; 8 ]
  in
  let inputs = getenv_int "ICED_BENCH_TENANCY_INPUTS" 40 in
  let seed = getenv_int "ICED_BENCH_TENANCY_SEED" 1 in
  let plan_fleet count =
    match Scheduler.plan (Tenant.synthetic_mix ~inputs ~seed ~count ()) with
    | Ok plan -> plan
    | Error msg -> failwith (Printf.sprintf "tenancy: planning %d tenants: %s" count msg)
  in
  (* gate 1: a 1-tenant shared run with no cap reproduces the solo
     runner byte-for-byte (window reports are all floats, so structural
     equality is byte equality of any rendering) *)
  let single_tenant_identical =
    let plan = plan_fleet 1 in
    let p = List.hd plan.Scheduler.placements in
    let partition = List.assoc p.Scheduler.islands p.Scheduler.partitions in
    let tenant = p.Scheduler.tenant in
    let shared =
      Runner.run_shared ~trace:false ~fabric:plan.Scheduler.spec.Scheduler.fabric
        [ { Runner.tenant = tenant.Tenant.id; partition; stream = tenant.Tenant.inputs } ]
    in
    let solo = Runner.run ~trace:false partition Runner.Iced_dvfs tenant.Tenant.inputs in
    List.assoc tenant.Tenant.id shared.Runner.tenant_reports = solo
  in
  if not single_tenant_identical then
    failwith "tenancy: single-tenant shared run diverged from Runner.run";
  let sweeps =
    List.map
      (fun count ->
        let plan = plan_fleet count in
        let s1 = Capsweep.run ~workers:1 plan in
        let j1 = Capsweep.sweep_json s1 in
        (* gate 2: byte-identical across worker counts and reruns *)
        if Capsweep.sweep_json (Capsweep.run ~workers:4 plan) <> j1 then
          failwith
            (Printf.sprintf "tenancy: %d-tenant sweep diverged across worker counts" count);
        if Capsweep.sweep_json (Capsweep.run ~workers:1 (plan_fleet count)) <> j1 then
          failwith
            (Printf.sprintf "tenancy: %d-tenant sweep diverged on a same-seed rerun" count);
        (* gate 3: the cap held and nobody starved in any cell *)
        List.iter
          (fun (r : Capsweep.row) ->
            if not r.Capsweep.cap_ok then
              failwith
                (Printf.sprintf "tenancy: cap violated (%d tenants, fraction %.2f)" count
                   r.Capsweep.fraction);
            if r.Capsweep.starved <> [] then
              failwith
                (Printf.sprintf "tenancy: starved tenants %s (%d tenants, fraction %.2f)"
                   (String.concat "," r.Capsweep.starved)
                   count r.Capsweep.fraction))
          s1.Capsweep.rows;
        Capsweep.render Format.std_formatter s1;
        Format.pp_print_newline Format.std_formatter ();
        j1)
      counts
  in
  let json =
    Printf.sprintf
      "{\"schema\":\"iced-bench-tenancy-v1\",\"inputs\":%d,\"seed\":%d,\
       \"workers_compared\":[1,4],\"deterministic\":true,\
       \"single_tenant_identical\":%b,\"sweeps\":[%s]}\n"
      inputs seed single_tenant_identical
      (String.concat "," sweeps)
  in
  let oc = open_out "BENCH_tenancy.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_tenancy.json (%d sweeps)\n" (List.length sweeps)

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("table1", table1); ("fig2", fig2); ("fig4", fig4); ("fig8", fig8); ("fig9", fig9);
    ("fig10", fig10); ("fig11", fig11); ("fig12", fig12); ("fig13", fig13);
    ("fig14", fig14); ("ablation", ablation); ("explore", explore); ("perf", perf);
    ("mapper", mapper_bench); ("fault", fault_injection); ("serve", serve_bench);
    ("chaos", chaos); ("exact", exact_bench); ("tenancy", tenancy_bench) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some fn ->
        Printf.printf "### %s ###\n%!" name;
        fn ();
        print_newline ()
      | None ->
        Printf.eprintf "unknown experiment %s (available: %s)\n" name
          (String.concat " " (List.map fst experiments)))
    requested
