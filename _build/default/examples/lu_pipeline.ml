(* Streaming LU decomposition on the ICED CGRA.

   Six kernels in four pipeline stages (init -> decompose ->
   solver0 || solver1 -> invert || determinant) process 150 sparse
   matrices.  decompose's work tracks the matrix's non-zeros while the
   triangular solvers are dimension-bound, so dense phases leave the
   solver islands idle — the DVFS Controller lowers them; DRIPS
   instead tries to reshape the partition.

   Run with:  dune exec examples/lu_pipeline.exe *)

module W = Iced_stream.Workload
module P = Iced_stream.Pipeline
module Part = Iced_stream.Partition
module R = Iced_stream.Runner

let () =
  let cgra = Iced_arch.Cgra.iced_6x6 in
  let matrices = W.ufl_matrices ~seed:7 () in
  let densities =
    List.map
      (fun (m : W.lu_matrix) -> float_of_int m.nnz /. float_of_int (m.dim * m.dim))
      matrices
  in
  Printf.printf "workload: %d matrices, density %.2f..%.2f (mean %.2f)\n"
    (List.length matrices)
    (Iced_util.Stats.minimum densities)
    (Iced_util.Stats.maximum densities)
    (Iced_util.Stats.mean densities);
  let inputs = List.map P.of_lu_matrix matrices in
  let profile =
    let step = max 1 (List.length inputs / 50) in
    List.filteri (fun i _ -> i mod step = 0) inputs
  in
  match Part.prepare cgra (P.lu ()) ~profile with
  | Error msg -> prerr_endline ("partitioning failed: " ^ msg)
  | Ok partition ->
    Printf.printf "partition:\n";
    List.iter
      (fun (label, count) ->
        Printf.printf "  %-12s %d island(s), floor %s\n" label count
          (Iced_arch.Dvfs.to_string (List.assoc label partition.Part.level_floors)))
      partition.Part.allocation;
    let iced = R.run partition R.Iced_dvfs inputs in
    let drips = R.run partition R.Drips inputs in
    let ti = R.aggregate iced and td = R.aggregate drips in
    Printf.printf "\n%-8s %14s %12s %12s\n" "policy" "matrices/s" "power mW" "per-W";
    List.iter
      (fun (name, (t : R.totals)) ->
        Printf.printf "%-8s %14.0f %12.1f %12.0f\n" name t.R.overall_throughput_per_s
          (t.R.total_energy_uj /. t.R.total_time_us *. 1000.0)
          t.R.overall_efficiency)
      [ ("drips", td); ("iced", ti) ];
    Printf.printf "\nICED / DRIPS energy-efficiency = %.2fx (paper: 1.26x)\n"
      (ti.R.overall_efficiency /. td.R.overall_efficiency);
    (* per-window efficiency ratio: the Figure 13 series *)
    Printf.printf "\nper-window efficiency ratio (ICED/DRIPS):\n  ";
    List.iter2
      (fun (a : R.window_report) (b : R.window_report) ->
        Printf.printf "%.2f " (a.R.efficiency /. b.R.efficiency))
      iced drips;
    print_newline ()
