(* Quickstart: build a kernel DFG with the public API, map it onto the
   6x6 ICED prototype, assign island DVFS levels, check the schedule
   functionally, and read out the utilization/power metrics.

   Run with:  dune exec examples/quickstart.exe *)

open Iced_arch
open Iced_dfg
open Iced_mapper

let () =
  (* 1. Describe the loop body as a dataflow graph.  This is a dot
     product with a predicated induction chain — the same structure the
     paper's Figure 1 kernel has.  Edges with ~distance:1 are
     loop-carried. *)
  let g = Graph.empty in
  let g, i = Graph.add_node ~label:"i" g Op.Phi in
  let g, one = Graph.add_node ~label:"one" g (Op.Const 1) in
  let g, bound = Graph.add_node ~label:"n" g (Op.Const 256) in
  let g, next = Graph.add_node ~label:"i+1" g Op.Add in
  let g = Graph.add_edge g i next in
  let g = Graph.add_edge g one next in
  let g, cmp = Graph.add_node ~label:"i<n" g (Op.Cmp Op.Lt) in
  let g = Graph.add_edge g next cmp in
  let g = Graph.add_edge g bound cmp in
  let g, sel = Graph.add_node ~label:"sel" g Op.Select in
  let g = Graph.add_edge g cmp sel in
  let g = Graph.add_edge g next sel in
  let g = Graph.add_edge ~distance:1 g sel i in
  let g, ld_a = Graph.add_node ~label:"a" g Op.Load in
  let g = Graph.add_edge g i ld_a in
  let g, ld_b = Graph.add_node ~label:"b" g Op.Load in
  let g = Graph.add_edge g i ld_b in
  let g, prod = Graph.add_node ~label:"a*b" g Op.Mul in
  let g = Graph.add_edge g ld_a prod in
  let g = Graph.add_edge g ld_b prod in
  let g, acc = Graph.add_node ~label:"acc" g Op.Phi in
  let g, sum = Graph.add_node ~label:"acc+" g Op.Add in
  let g = Graph.add_edge g acc sum in
  let g = Graph.add_edge g prod sum in
  let g = Graph.add_edge ~distance:1 g sum acc in
  let g, st = Graph.add_node ~label:"out" g Op.Store in
  let g = Graph.add_edge g sum st in

  Printf.printf "DFG: %d nodes, %d edges, RecMII %d\n" (Graph.node_count g)
    (Graph.edge_count g) (Analysis.rec_mii g);

  (* 2. Map it with the DVFS-aware mapper (Algorithms 1 and 2). *)
  let cgra = Cgra.iced_6x6 in
  let mapping = Mapper.map_exn (Mapper.request cgra) g in
  Printf.printf "mapped at II = %d (%.2fx speedup vs a single-issue CPU)\n"
    mapping.Mapping.ii
    (Iced_sim.Metrics.speedup_vs_cpu mapping);

  (* 3. Assign per-island DVFS levels and validate the result. *)
  let mapping = Levels.assign mapping in
  Validate.check_exn mapping;
  Format.printf "%a" Mapping.pp mapping;
  print_newline ();
  Floorplan.print mapping;

  (* 4. Execute the mapped schedule on real data and compare against
     the golden DFG interpreter. *)
  let binding =
    {
      Iced_sim.Sim.load =
        (fun ~label ~iter ~operands:_ -> match label with "a" -> iter + 1 | _ -> 2);
      phi_init = (fun ~label:_ -> 0);
    }
  in
  let result = Iced_sim.Sim.run ~binding mapping ~iterations:10 in
  let golden = Iced_sim.Sim.interpret ~binding g ~iterations:10 in
  assert (result.Iced_sim.Sim.stores = golden);
  assert (result.Iced_sim.Sim.violations = []);
  Printf.printf "functional check passed: %d stores match the interpreter\n"
    (List.length result.Iced_sim.Sim.stores);
  (match List.rev result.Iced_sim.Sim.stores with
  | last :: _ ->
    Printf.printf "dot product after 10 iterations = %d\n" (List.hd last.operands)
  | [] -> ());

  (* 5. Metrics: utilization, average DVFS level, and chip power. *)
  let params = Iced_power.Params.default in
  let power =
    Iced_power.Model.total_power_mw params Iced_power.Model.Iced cgra
      ~tiles:(Iced_sim.Metrics.tile_states mapping)
      ~sram_activity:(Iced_sim.Metrics.sram_activity mapping)
  in
  Printf.printf "avg utilization (active tiles) = %.2f\n"
    (Iced_sim.Metrics.average_utilization mapping);
  Printf.printf "avg DVFS level (gated = 0)     = %.2f\n"
    (Iced_sim.Metrics.average_dvfs_fraction mapping);
  Printf.printf "chip power                     = %.1f mW\n" power;
  ignore st
