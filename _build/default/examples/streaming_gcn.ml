(* Streaming GCN inference on the ICED CGRA (paper Section IV-B).

   The 2-layer GCN pipeline (compress -> aggregate -> combrelu ->
   aggregate -> combine -> pooling) classifies a stream of 600
   enzyme-like graphs.  The aggregate kernels' work tracks each graph's
   edge count, so the pipeline bottleneck drifts with graph density;
   the DVFS Controller lowers whichever kernels currently have slack.

   Run with:  dune exec examples/streaming_gcn.exe *)

module W = Iced_stream.Workload
module P = Iced_stream.Pipeline
module Part = Iced_stream.Partition
module R = Iced_stream.Runner

let () =
  let cgra = Iced_arch.Cgra.iced_6x6 in
  let graphs = W.enzyme_graphs ~seed:42 () in
  Printf.printf "workload: %d graphs, mean degree %.1f (paper: 600 enzymes, 32.6)\n"
    (List.length graphs) (W.mean_degree graphs);
  let inputs = List.map P.of_gcn_graph graphs in
  let profile =
    let step = max 1 (List.length inputs / 50) in
    List.filteri (fun i _ -> i mod step = 0) inputs
  in
  let pipeline = P.gcn () in
  match Part.prepare cgra pipeline ~profile with
  | Error msg -> prerr_endline ("partitioning failed: " ^ msg)
  | Ok partition ->
    Printf.printf "partition (9 islands):\n";
    List.iter
      (fun (label, islands) ->
        Printf.printf "  %-12s -> islands [%s], II = %d, floor = %s\n" label
          (String.concat "; " (List.map string_of_int islands))
          (Part.ii_for partition label (List.length islands))
          (Iced_arch.Dvfs.to_string (List.assoc label partition.Part.level_floors)))
      partition.Part.island_ids;
    let run policy = R.run partition policy inputs in
    let static = run R.Static and drips = run R.Drips and iced = run R.Iced_dvfs in
    let table =
      Iced_util.Table.create ~title:"GCN inference over 600 graphs"
        ~columns:[ "policy"; "throughput (graphs/s)"; "avg power (mW)"; "graphs/s/W" ]
    in
    List.iter
      (fun (name, reports) ->
        let t = R.aggregate reports in
        Iced_util.Table.add_row table
          [ name;
            Printf.sprintf "%.0f" t.R.overall_throughput_per_s;
            Printf.sprintf "%.1f" (t.R.total_energy_uj /. t.R.total_time_us *. 1000.0);
            Printf.sprintf "%.0f" t.R.overall_efficiency ])
      [ ("static", static); ("drips", drips); ("iced", iced) ];
    Iced_util.Table.print table;
    let ti = R.aggregate iced and td = R.aggregate drips in
    Printf.printf "ICED / DRIPS energy-efficiency = %.2fx (paper: 1.12x)\n"
      (ti.R.overall_efficiency /. td.R.overall_efficiency);
    (* show the controller chasing the drift across a few windows *)
    Printf.printf "\nper-window DVFS levels (first 6 windows):\n";
    List.iteri
      (fun i (w : R.window_report) ->
        if i < 6 then begin
          Printf.printf "  w%-2d power %6.1f mW  levels:" w.index w.power_mw;
          List.iter
            (fun (label, level) ->
              Printf.printf " %s=%s" label (Iced_arch.Dvfs.to_string level))
            w.levels;
          print_newline ()
        end)
      iced
