examples/streaming_gcn.mli:
