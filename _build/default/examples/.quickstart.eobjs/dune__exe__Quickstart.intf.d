examples/quickstart.mli:
