examples/island_explorer.mli:
