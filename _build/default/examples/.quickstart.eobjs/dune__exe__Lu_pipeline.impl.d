examples/lu_pipeline.ml: Iced_arch Iced_stream Iced_util List Printf
