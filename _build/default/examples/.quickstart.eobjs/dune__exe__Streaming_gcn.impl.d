examples/streaming_gcn.ml: Iced_arch Iced_stream Iced_util List Printf String
