examples/quickstart.ml: Analysis Cgra Floorplan Format Graph Iced_arch Iced_dfg Iced_mapper Iced_power Iced_sim Levels List Mapper Mapping Op Printf Validate
