examples/lu_pipeline.mli:
