examples/island_explorer.ml: Array Cgra Iced Iced_arch Iced_dfg Iced_kernels Iced_mapper Iced_util List Printf String Sys
