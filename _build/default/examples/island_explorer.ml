(* Design-space exploration: how the DVFS island size and fabric size
   trade performance against energy (the paper's Figures 4 and 12).

   For a chosen kernel this sweeps fabric sizes and island shapes and
   reports the II, the average DVFS level, and the chip power for the
   full ICED flow, plus the II under committed-island mapping (the
   constraint study behind Figure 4).

   Run with:  dune exec examples/island_explorer.exe -- [kernel]   *)

open Iced_arch
module Design = Iced.Design
module Mapper = Iced_mapper.Mapper

let () =
  let kernel_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "spmv" in
  match Iced_kernels.Registry.by_name kernel_name with
  | None ->
    Printf.eprintf "unknown kernel %s; try one of: %s\n" kernel_name
      (String.concat " " (Iced_kernels.Registry.names ()))
  | Some kernel ->
    Printf.printf "exploring %s (%d nodes, RecMII %d)\n\n" kernel.name
      (Iced_dfg.Graph.node_count kernel.dfg)
      (Iced_dfg.Analysis.rec_mii kernel.dfg);
    (* fabric sweep at 2x2 islands: the Figure 12 axis *)
    let fabric_table =
      Iced_util.Table.create ~title:"fabric sweep (2x2 islands, full ICED flow)"
        ~columns:[ "fabric"; "II"; "avg util"; "avg dvfs"; "power mW" ]
    in
    List.iter
      (fun n ->
        let cgra = Cgra.make ~rows:n ~cols:n () in
        match Design.evaluate ~cgra Design.Iced kernel with
        | Error _ -> Iced_util.Table.add_row fabric_table
                       [ Printf.sprintf "%dx%d" n n; "-"; "-"; "-"; "-" ]
        | Ok e ->
          Iced_util.Table.add_row fabric_table
            [ Printf.sprintf "%dx%d" n n;
              string_of_int e.Design.ii;
              Printf.sprintf "%.2f" e.Design.avg_utilization;
              Printf.sprintf "%.2f" e.Design.avg_dvfs;
              Printf.sprintf "%.1f" e.Design.power_mw ])
      [ 4; 6; 8 ];
    Iced_util.Table.print fabric_table;
    (* island-shape sweep on an 8x8 fabric: the Figure 4 axis *)
    let island_table =
      Iced_util.Table.create
        ~title:"island sweep on 8x8 (islands committed to labeled levels)"
        ~columns:[ "island"; "committed II"; "free-flow II" ]
    in
    let base = Cgra.make ~rows:8 ~cols:8 () in
    List.iter
      (fun (r, c) ->
        let cgra = Cgra.with_island base (r, c) in
        let run commit =
          match Mapper.map (Mapper.request ~commit_islands:commit cgra) kernel.dfg with
          | Ok m -> string_of_int m.Iced_mapper.Mapping.ii
          | Error _ -> "-"
        in
        Iced_util.Table.add_row island_table
          [ Printf.sprintf "%dx%d" r c; run true; run false ])
      [ (1, 1); (2, 2); (3, 3); (4, 4) ];
    Iced_util.Table.print island_table
