(* Tests for the power/area model (Equations 2-4). *)

open Iced_arch
module Model = Iced_power.Model
module Params = Iced_power.Params

let params = Params.default
let cgra = Cgra.iced_6x6

let state level activity = { Model.level; activity }

let test_tile_power_monotone_in_level () =
  let p level = Model.tile_power_mw params (state level 0.5) in
  Alcotest.(check bool) "normal > relax" true (p Dvfs.Normal > p Dvfs.Relax);
  Alcotest.(check bool) "relax > rest" true (p Dvfs.Relax > p Dvfs.Rest);
  Alcotest.(check bool) "rest > gated" true (p Dvfs.Rest > 0.0);
  Alcotest.(check (float 1e-9)) "gated is zero" 0.0 (p Dvfs.Power_gated)

let test_tile_power_monotone_in_activity () =
  let p a = Model.tile_power_mw params (state Dvfs.Normal a) in
  Alcotest.(check bool) "more activity, more power" true (p 0.9 > p 0.1);
  Alcotest.(check bool) "idle tile still burns clock+leakage" true (p 0.0 > 0.0)

let test_tile_power_invalid_activity () =
  Alcotest.(check bool) "rejects negative" true
    (try
       ignore (Model.tile_power_mw params (state Dvfs.Normal (-0.1)));
       false
     with Invalid_argument _ -> true)

let test_eq2_voltage_frequency_scaling () =
  (* a fully dynamic comparison: relax dynamic term is v^2 f scaled *)
  let vf level = Params.voltage_scale params level *. Params.frequency_scale params level in
  Alcotest.(check (float 1e-6)) "normal scale 1" 1.0 (vf Dvfs.Normal);
  Alcotest.(check bool) "relax scale ~0.25x" true (vf Dvfs.Relax < 0.3);
  Alcotest.(check bool) "rest scale ~0.09x" true (vf Dvfs.Rest < 0.1)

let test_controller_counts () =
  Alcotest.(check int) "baseline none" 0 (Model.controller_count Model.Baseline cgra);
  Alcotest.(check int) "gated baseline none" 0 (Model.controller_count Model.Baseline_gated cgra);
  Alcotest.(check int) "per-tile 36" 36 (Model.controller_count Model.Per_tile_dvfs cgra);
  Alcotest.(check int) "iced 9" 9 (Model.controller_count Model.Iced cgra)

let test_per_tile_overhead_share () =
  (* paper: per-tile DVFS costs >30% of a tile *)
  let tile_full = Model.tile_power_mw params (state Dvfs.Normal 1.0) in
  let ratio = params.Params.per_tile_controller.power_mw /. tile_full in
  Alcotest.(check bool) "~30% power overhead" true (ratio > 0.25 && ratio < 0.4);
  let area_ratio =
    params.Params.per_tile_controller.area_mm2 /. params.Params.tile.area_mm2
  in
  Alcotest.(check bool) "~30% area overhead" true (area_ratio > 0.25 && area_ratio < 0.4)

let test_sram_power () =
  Alcotest.(check (float 1e-6)) "leakage floor" params.Params.sram.leak_mw
    (Model.sram_power_mw params ~activity:0.0);
  let max_power = Model.sram_power_mw params ~activity:1.0 in
  (* paper: up to 62.653 mW *)
  Alcotest.(check (float 0.01)) "max 62.653" 62.653 max_power

let test_area_totals () =
  let area = Model.area_mm2 params Model.Iced cgra in
  let total = List.assoc "total" area in
  let parts =
    List.fold_left
      (fun acc (name, v) -> if name = "total" then acc else acc +. v)
      0.0 area
  in
  Alcotest.(check (float 1e-9)) "total = sum of parts" parts total;
  (* paper: 6.63 mm^2 without SRAM + 0.559 SRAM *)
  Alcotest.(check bool) "near paper total" true (total > 6.5 && total < 7.8)

let test_power_breakdown_total () =
  let tiles = List.init 36 (fun _ -> state Dvfs.Normal 0.6) in
  let breakdown =
    Model.power_breakdown_mw params Model.Iced cgra ~tiles ~sram_activity:0.5
  in
  let total = List.assoc "total" breakdown in
  Alcotest.(check (float 1e-6)) "consistent with total_power_mw" total
    (Model.total_power_mw params Model.Iced cgra ~tiles ~sram_activity:0.5)

let test_energy_linear_in_cycles () =
  let tiles = List.init 36 (fun _ -> state Dvfs.Normal 0.5) in
  let e n = Model.energy_uj params Model.Iced cgra ~tiles ~sram_activity:0.2 ~cycles:n in
  Alcotest.(check (float 1e-9)) "double cycles, double energy" (2.0 *. e 1000) (e 2000)

let test_exec_time () =
  Alcotest.(check (float 1e-9)) "434 cycles at 434MHz = 1us" 1.0
    (Model.exec_time_us params ~cycles:434)

let test_sram_scaled () =
  let p2 = Params.sram_scaled params ~kbytes:64 ~banks:8 in
  Alcotest.(check (float 1e-6)) "area doubles" (2.0 *. params.Params.sram.area_mm2)
    p2.Params.sram.area_mm2;
  Alcotest.check_raises "invalid" (Invalid_argument "Params.sram_scaled: non-positive size")
    (fun () -> ignore (Params.sram_scaled params ~kbytes:0 ~banks:8))

let prop_power_nonnegative =
  QCheck.Test.make ~name:"tile power non-negative over level x activity" ~count:200
    QCheck.(pair (int_bound 3) (float_bound_inclusive 1.0))
    (fun (level_idx, activity) ->
      let level = List.nth Dvfs.all level_idx in
      Model.tile_power_mw params (state level activity) >= 0.0)

let suite =
  [
    ("tile power monotone in level", `Quick, test_tile_power_monotone_in_level);
    ("tile power monotone in activity", `Quick, test_tile_power_monotone_in_activity);
    ("tile power invalid activity", `Quick, test_tile_power_invalid_activity);
    ("Eq. 2 v^2 f scaling", `Quick, test_eq2_voltage_frequency_scaling);
    ("controller counts per design", `Quick, test_controller_counts);
    ("per-tile overhead ~30%", `Quick, test_per_tile_overhead_share);
    ("SRAM power (paper 62.653 mW)", `Quick, test_sram_power);
    ("area totals", `Quick, test_area_totals);
    ("power breakdown consistent", `Quick, test_power_breakdown_total);
    ("Eq. 4 energy linear in time", `Quick, test_energy_linear_in_cycles);
    ("exec time", `Quick, test_exec_time);
    ("sram scaling", `Quick, test_sram_scaled);
    QCheck_alcotest.to_alcotest prop_power_nonnegative;
  ]
