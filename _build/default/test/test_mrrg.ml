(* Tests for the modulo routing resource graph. *)

open Iced_arch
module Mrrg = Iced_mrrg.Mrrg

let cgra = Cgra.iced_6x6

let test_create_invalid () =
  Alcotest.check_raises "zero II" (Invalid_argument "Mrrg.create: non-positive II") (fun () ->
      ignore (Mrrg.create cgra ~ii:0));
  Alcotest.check_raises "bad tile" (Invalid_argument "Mrrg.create: unknown tile") (fun () ->
      ignore (Mrrg.create ~tiles:[ 99 ] cgra ~ii:4))

let test_reserve_conflict () =
  let m = Mrrg.create cgra ~ii:4 in
  (match Mrrg.reserve m ~tile:3 ~time:2 Mrrg.Fu (Mrrg.Op_node 7) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "first reserve failed: %s" e);
  (match Mrrg.reserve m ~tile:3 ~time:2 Mrrg.Fu (Mrrg.Op_node 8) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "conflicting reserve must fail");
  Alcotest.(check bool) "occupant visible" true
    (Mrrg.occupant m ~tile:3 ~time:2 Mrrg.Fu = Some (Mrrg.Op_node 7))

let test_modulo_wraparound () =
  let m = Mrrg.create cgra ~ii:4 in
  (match Mrrg.reserve m ~tile:5 ~time:1 Mrrg.Fu (Mrrg.Op_node 1) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reserve: %s" e);
  (* time 5 = slot 1 mod 4: same resource *)
  (match Mrrg.reserve m ~tile:5 ~time:5 Mrrg.Fu (Mrrg.Op_node 2) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "slot 1 and 5 alias at II=4");
  Alcotest.(check bool) "is_free at other slot" true (Mrrg.is_free m ~tile:5 ~time:2 Mrrg.Fu)

let test_idempotent_route () =
  let m = Mrrg.create cgra ~ii:4 in
  let who = Mrrg.Route { src = 1; dst = 2 } in
  (match Mrrg.reserve m ~tile:0 ~time:0 (Mrrg.Port Dir.East) who with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reserve: %s" e);
  (match Mrrg.reserve m ~tile:0 ~time:0 (Mrrg.Port Dir.East) who with
  | Ok () -> ()
  | Error e -> Alcotest.failf "same edge should share the wire: %s" e);
  match Mrrg.reserve m ~tile:0 ~time:0 (Mrrg.Port Dir.East) (Mrrg.Route { src = 1; dst = 3 }) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "different edge must conflict"

let test_ports_independent () =
  let m = Mrrg.create cgra ~ii:4 in
  List.iter
    (fun dir ->
      match Mrrg.reserve m ~tile:7 ~time:0 (Mrrg.Port dir) (Mrrg.Route { src = 0; dst = dir |> Dir.to_string |> String.length }) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "port %s: %s" (Dir.to_string dir) e)
    Dir.all;
  (* FU at the same slot is a separate resource *)
  match Mrrg.reserve m ~tile:7 ~time:0 Mrrg.Fu (Mrrg.Op_node 9) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fu independent of ports: %s" e

let test_release () =
  let m = Mrrg.create cgra ~ii:4 in
  ignore (Mrrg.reserve m ~tile:2 ~time:3 Mrrg.Fu (Mrrg.Op_node 1));
  Mrrg.release m ~tile:2 ~time:3 Mrrg.Fu;
  Alcotest.(check bool) "free after release" true (Mrrg.is_free m ~tile:2 ~time:3 Mrrg.Fu)

let test_busy_slots () =
  let m = Mrrg.create cgra ~ii:4 in
  ignore (Mrrg.reserve m ~tile:4 ~time:1 Mrrg.Fu (Mrrg.Op_node 1));
  ignore (Mrrg.reserve m ~tile:4 ~time:1 (Mrrg.Port Dir.North) (Mrrg.Route { src = 0; dst = 1 }));
  ignore (Mrrg.reserve m ~tile:4 ~time:3 Mrrg.Fu (Mrrg.Op_node 2));
  Alcotest.(check (list int)) "distinct busy slots" [ 1; 3 ] (Mrrg.busy_slots m ~tile:4);
  Alcotest.(check int) "busy entries" 3 (List.length (Mrrg.busy m ~tile:4));
  Alcotest.(check bool) "tile 5 idle" true (Mrrg.tile_is_idle m 5)

let test_sub_fabric () =
  let tiles = Cgra.restrict cgra ~islands:[ 0 ] in
  let m = Mrrg.create ~tiles cgra ~ii:4 in
  Alcotest.(check int) "4 allowed" 4 (List.length (Mrrg.allowed_tiles m));
  Alcotest.(check bool) "outside not allowed" false (Mrrg.allowed m 35);
  match Mrrg.reserve m ~tile:35 ~time:0 Mrrg.Fu (Mrrg.Op_node 0) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "reserve outside sub-fabric must fail"

let test_clone_independent () =
  let m = Mrrg.create cgra ~ii:4 in
  ignore (Mrrg.reserve m ~tile:1 ~time:0 Mrrg.Fu (Mrrg.Op_node 1));
  let copy = Mrrg.clone m in
  Mrrg.release copy ~tile:1 ~time:0 Mrrg.Fu;
  Alcotest.(check bool) "original untouched" false (Mrrg.is_free m ~tile:1 ~time:0 Mrrg.Fu);
  Alcotest.(check bool) "copy released" true (Mrrg.is_free copy ~tile:1 ~time:0 Mrrg.Fu)

let prop_reserve_release_roundtrip =
  QCheck.Test.make ~name:"reserve/release restores freedom" ~count:200
    QCheck.(triple (0 -- 35) (0 -- 63) (1 -- 12))
    (fun (tile, time, ii) ->
      let m = Mrrg.create cgra ~ii in
      match Mrrg.reserve m ~tile ~time Mrrg.Fu (Mrrg.Op_node 0) with
      | Error _ -> false
      | Ok () ->
        Mrrg.release m ~tile ~time Mrrg.Fu;
        Mrrg.is_free m ~tile ~time Mrrg.Fu)

let suite =
  [
    ("create invalid", `Quick, test_create_invalid);
    ("reserve conflict", `Quick, test_reserve_conflict);
    ("modulo wraparound", `Quick, test_modulo_wraparound);
    ("route sharing idempotent", `Quick, test_idempotent_route);
    ("resources independent", `Quick, test_ports_independent);
    ("release", `Quick, test_release);
    ("busy slots", `Quick, test_busy_slots);
    ("sub-fabric restriction", `Quick, test_sub_fabric);
    ("clone independence", `Quick, test_clone_independent);
    QCheck_alcotest.to_alcotest prop_reserve_release_roundtrip;
  ]
