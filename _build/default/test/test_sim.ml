(* Tests for the simulator: op semantics, interpreter/schedule
   equivalence, and static metrics. *)

open Iced_dfg
module Sim = Iced_sim.Sim
module Metrics = Iced_sim.Metrics
module Eval = Iced_sim.Eval

let cgra = Iced_arch.Cgra.iced_6x6

(* ---------------- Eval ---------------- *)

let test_eval_arithmetic () =
  Alcotest.(check int) "add" 6 (Eval.apply Op.Add [ 1; 2; 3 ]);
  Alcotest.(check int) "sub" (-1) (Eval.apply Op.Sub [ 1; 2 ]);
  Alcotest.(check int) "mul" 24 (Eval.apply Op.Mul [ 2; 3; 4 ]);
  Alcotest.(check int) "div" 3 (Eval.apply Op.Div [ 7; 2 ]);
  Alcotest.(check int) "div by zero" 0 (Eval.apply Op.Div [ 7; 0 ]);
  Alcotest.(check int) "rem" 1 (Eval.apply Op.Rem [ 7; 2 ]);
  Alcotest.(check int) "shl" 8 (Eval.apply Op.Shl [ 1; 3 ]);
  Alcotest.(check int) "shr" 2 (Eval.apply Op.Shr [ 8; 2 ]);
  Alcotest.(check int) "and" 4 (Eval.apply Op.And [ 6; 12 ]);
  Alcotest.(check int) "xor" 10 (Eval.apply Op.Xor [ 6; 12 ])

let test_eval_cmp_select () =
  Alcotest.(check int) "lt true" 1 (Eval.apply (Op.Cmp Op.Lt) [ 1; 2 ]);
  Alcotest.(check int) "unary gt vs 0" 0 (Eval.apply (Op.Cmp Op.Gt) [ -3 ]);
  Alcotest.(check int) "select ternary" 7 (Eval.apply Op.Select [ 1; 7; 9 ]);
  Alcotest.(check int) "select else" 9 (Eval.apply Op.Select [ 0; 7; 9 ]);
  Alcotest.(check int) "select binary default 0" 0 (Eval.apply Op.Select [ 0; 7 ])

let test_eval_const_gep_route () =
  Alcotest.(check int) "const" 5 (Eval.apply (Op.Const 5) []);
  Alcotest.(check int) "gep sums" 12 (Eval.apply Op.Gep [ 10; 2 ]);
  Alcotest.(check int) "route identity" 3 (Eval.apply Op.Route [ 3 ])

let test_eval_invalid () =
  List.iter
    (fun op ->
      Alcotest.(check bool) (Op.to_string op ^ " rejected") true
        (try
           ignore (Eval.apply op [ 1 ]);
           false
         with Invalid_argument _ -> true))
    [ Op.Phi; Op.Load; Op.Store ]

(* ---------------- Interpreter ---------------- *)

let test_interpret_invalid_iterations () =
  let fir = Option.get (Iced_kernels.Registry.by_name "fir") in
  Alcotest.check_raises "zero iterations"
    (Invalid_argument "Sim.interpret: non-positive iterations") (fun () ->
      ignore (Sim.interpret fir.dfg ~iterations:0))

let test_interpret_predication () =
  (* a consumer of a carried value is invalid on iteration 0 and its
     store is suppressed *)
  let g = Graph.empty in
  let g, ld = Graph.add_node ~label:"x" g Op.Load in
  let g, dly = Graph.add_node ~label:"dly" g Op.Route in
  let g = Graph.add_edge ~distance:1 g ld dly in
  let g, st = Graph.add_node ~label:"out" g Op.Store in
  let g = Graph.add_edge g dly st in
  let binding =
    { Sim.load = (fun ~label:_ ~iter ~operands:_ -> iter + 10); phi_init = (fun ~label:_ -> 0) }
  in
  let stores = Sim.interpret ~binding g ~iterations:4 in
  (* iteration 0 invalid; iterations 1..3 forward x[i-1] *)
  Alcotest.(check int) "3 valid stores" 3 (List.length stores);
  List.iteri
    (fun idx (ev : Sim.store_event) ->
      Alcotest.(check int) "delayed value" (idx + 10) (List.hd ev.operands))
    stores

(* ---------------- Schedule simulation ---------------- *)

let run_equiv (k : Iced_kernels.Kernel.t) strategy =
  let req = Iced_mapper.Mapper.request ~strategy cgra in
  let m = Iced_mapper.Mapper.map_exn req k.dfg in
  let m = Iced_mapper.Levels.assign m in
  let result = Sim.run ~binding:k.binding m ~iterations:15 in
  let golden = Sim.interpret ~binding:k.binding k.dfg ~iterations:15 in
  Alcotest.(check (list string))
    (k.name ^ " no timing violations")
    [] result.Sim.violations;
  Alcotest.(check bool)
    (k.name ^ " stores match the golden interpreter")
    true
    (result.Sim.stores = golden);
  Alcotest.(check int)
    (k.name ^ " executed all instances")
    (Graph.node_count k.dfg * 15)
    result.Sim.executed

let test_run_matches_interpret_all_kernels () =
  List.iter
    (fun k -> run_equiv k Iced_mapper.Mapper.Dvfs_aware)
    Iced_kernels.Registry.standalone

let test_run_matches_interpret_conventional () =
  List.iter
    (fun k -> run_equiv k Iced_mapper.Mapper.Conventional)
    Iced_kernels.Registry.standalone

let test_run_unrolled_kernels () =
  List.iter
    (fun name ->
      let k = Option.get (Iced_kernels.Registry.by_name name) in
      let g2 = Iced_kernels.Kernel.dfg_at k ~factor:2 in
      let m = Iced_mapper.Mapper.map_exn (Iced_mapper.Mapper.request cgra) g2 in
      let result = Sim.run ~binding:k.binding m ~iterations:10 in
      let golden = Sim.interpret ~binding:k.binding g2 ~iterations:10 in
      Alcotest.(check bool) (name ^ " uf2 equivalence") true (result.Sim.stores = golden))
    [ "fir"; "relu"; "histogram" ]

(* ---------------- Metrics ---------------- *)

let mapping () =
  let fir = Option.get (Iced_kernels.Registry.by_name "fir") in
  Iced_mapper.Levels.assign
    (Iced_mapper.Mapper.map_exn (Iced_mapper.Mapper.request cgra) fir.dfg)

let test_metrics_utilization_bounds () =
  let m = mapping () in
  List.iter
    (fun (tm : Metrics.tile_metrics) ->
      if tm.utilization < 0.0 || tm.utilization > 1.0 then
        Alcotest.failf "utilization out of range: %f" tm.utilization)
    (Metrics.per_tile m);
  let avg = Metrics.average_utilization m in
  Alcotest.(check bool) "avg in (0,1]" true (avg > 0.0 && avg <= 1.0)

let test_metrics_dvfs_fraction () =
  let m = mapping () in
  let avg = Metrics.average_dvfs_fraction m in
  Alcotest.(check bool) "avg level in [0,1]" true (avg >= 0.0 && avg <= 1.0);
  (* fir is tiny: most of the fabric must be gated, pulling the mean
     far below the all-normal value *)
  Alcotest.(check bool) "well below 1 for a small kernel" true (avg < 0.5)

let test_metrics_gated_excluded_from_utilization () =
  let m = mapping () in
  let active =
    List.filter
      (fun (tm : Metrics.tile_metrics) -> Iced_arch.Dvfs.is_active tm.level)
      (Metrics.per_tile m)
  in
  let expected = Iced_util.Stats.mean (List.map (fun tm -> tm.Metrics.utilization) active) in
  Alcotest.(check (float 1e-9)) "matches active-only mean" expected
    (Metrics.average_utilization m)

let test_metrics_total_cycles () =
  let m = mapping () in
  let one = Metrics.total_cycles m ~iterations:1 in
  let two = Metrics.total_cycles m ~iterations:2 in
  Alcotest.(check int) "steady state adds II per iteration" m.Iced_mapper.Mapping.ii
    (two - one);
  Alcotest.(check int) "depth baseline" (Metrics.schedule_depth m) one;
  Alcotest.check_raises "zero iterations"
    (Invalid_argument "Metrics.total_cycles: non-positive iterations") (fun () ->
      ignore (Metrics.total_cycles m ~iterations:0))

let test_metrics_speedup () =
  let m = mapping () in
  Alcotest.(check (float 1e-9)) "nodes / II"
    (float_of_int (Graph.node_count m.Iced_mapper.Mapping.dfg)
    /. float_of_int m.Iced_mapper.Mapping.ii)
    (Metrics.speedup_vs_cpu m)

let test_metrics_sram_activity () =
  let m = mapping () in
  let a = Metrics.sram_activity m in
  Alcotest.(check bool) "in (0,1]" true (a > 0.0 && a <= 1.0)

(* ---------------- Trace ---------------- *)

let test_trace_events () =
  let m = mapping () in
  let events = Iced_sim.Trace.record m ~iterations:3 in
  (* every placement contributes one execute event per iteration *)
  let executes =
    List.filter
      (fun (e : Iced_sim.Trace.event) ->
        match e.activity with `Execute _ -> true | `Route _ -> false)
      events
  in
  Alcotest.(check int) "executes = nodes x iterations"
    (Graph.node_count m.Iced_mapper.Mapping.dfg * 3)
    (List.length executes);
  (* cycle-ordered *)
  let rec ordered = function
    | (a : Iced_sim.Trace.event) :: (b :: _ as rest) -> a.cycle <= b.cycle && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by cycle" true (ordered events);
  Alcotest.check_raises "bad iterations"
    (Invalid_argument "Trace.record: non-positive iterations") (fun () ->
      ignore (Iced_sim.Trace.record m ~iterations:0))

let test_trace_histogram () =
  let m = mapping () in
  let hist = Iced_sim.Trace.busy_histogram m ~iterations:5 in
  List.iter
    (fun (tile, count) ->
      if count <= 0 then Alcotest.failf "tile %d has %d busy cycles" tile count)
    hist;
  (* only tiles with events appear *)
  Alcotest.(check int) "tiles with activity"
    (List.length (Iced_mapper.Mapping.used_tiles m))
    (List.length hist)

let test_trace_vcd () =
  let m = mapping () in
  let vcd = Iced_sim.Trace.to_vcd m ~iterations:2 in
  List.iter
    (fun needle ->
      let rec scan i =
        i + String.length needle <= String.length vcd
        && (String.sub vcd i (String.length needle) = needle || scan (i + 1))
      in
      if not (scan 0) then Alcotest.failf "VCD missing %s" needle)
    [ "$timescale"; "$enddefinitions"; "$var wire 1 ! clk"; "#0" ]

let test_buffer_occupancy_all_kernels () =
  (* the prototype tile's register file holds a handful of values; no
     kernel mapping may exceed a plausible capacity *)
  List.iter
    (fun (k : Iced_kernels.Kernel.t) ->
      let m =
        Iced_mapper.Levels.assign
          (Iced_mapper.Mapper.map_exn (Iced_mapper.Mapper.request cgra) k.dfg)
      in
      let peak = Metrics.max_buffer_occupancy m in
      if peak > 16 then Alcotest.failf "%s: buffer pressure %d exceeds 16" k.name peak;
      List.iter
        (fun (_, slot, live) ->
          if slot < 0 || slot >= m.Iced_mapper.Mapping.ii then Alcotest.fail "slot range";
          if live <= 0 then Alcotest.fail "non-positive occupancy")
        (Metrics.buffer_occupancy m))
    Iced_kernels.Registry.standalone

let test_buffer_occupancy_counts_waiting_value () =
  (* x fans out to a join that also waits for a two-op chain: the x
     value must sit in buffers while the chain computes *)
  let g = Graph.empty in
  let g, ld = Graph.add_node ~label:"x" g Op.Load in
  let g, a1 = Graph.add_node ~label:"a1" g Op.Add in
  let g, a2 = Graph.add_node ~label:"a2" g Op.Add in
  let g, join = Graph.add_node ~label:"join" g Op.Add in
  let g = Graph.add_edge g ld a1 in
  let g = Graph.add_edge g a1 a2 in
  let g = Graph.add_edge g a2 join in
  let g = Graph.add_edge g ld join in
  let g, st = Graph.add_node ~label:"out" g Op.Store in
  let g = Graph.add_edge g join st in
  let m = Iced_mapper.Mapper.map_exn (Iced_mapper.Mapper.request cgra) g in
  Alcotest.(check bool) "some residency" true (Metrics.max_buffer_occupancy m >= 1)

let suite =
  [
    ("eval arithmetic", `Quick, test_eval_arithmetic);
    ("eval compare/select", `Quick, test_eval_cmp_select);
    ("eval const/gep/route", `Quick, test_eval_const_gep_route);
    ("eval rejects phi/load/store", `Quick, test_eval_invalid);
    ("interpret invalid iterations", `Quick, test_interpret_invalid_iterations);
    ("interpret predicated warm-up", `Quick, test_interpret_predication);
    ("run = interpret (iced, 10 kernels)", `Slow, test_run_matches_interpret_all_kernels);
    ("run = interpret (conventional)", `Slow, test_run_matches_interpret_conventional);
    ("run = interpret (unrolled)", `Slow, test_run_unrolled_kernels);
    ("metrics utilization bounds", `Quick, test_metrics_utilization_bounds);
    ("metrics dvfs fraction", `Quick, test_metrics_dvfs_fraction);
    ("metrics gated excluded", `Quick, test_metrics_gated_excluded_from_utilization);
    ("metrics total cycles", `Quick, test_metrics_total_cycles);
    ("metrics speedup", `Quick, test_metrics_speedup);
    ("metrics sram activity", `Quick, test_metrics_sram_activity);
    ("trace events", `Quick, test_trace_events);
    ("trace busy histogram", `Quick, test_trace_histogram);
    ("trace vcd export", `Quick, test_trace_vcd);
    ("buffer occupancy bounded (10 kernels)", `Slow, test_buffer_occupancy_all_kernels);
    ("buffer occupancy counts waiting values", `Quick, test_buffer_occupancy_counts_waiting_value);
  ]
