(* Tests for the top-level design-point facade (lib/core) — the same
   entry points the benchmark harness and examples use. *)

module Design = Iced.Design
module Kernel = Iced_kernels.Kernel

let fir = Option.get (Iced_kernels.Registry.by_name "fir")

let test_points_enumeration () =
  Alcotest.(check int) "four design points" 4 (List.length Design.all_points);
  Alcotest.(check int) "distinct names" 4
    (List.length (List.sort_uniq compare (List.map Design.point_to_string Design.all_points)))

let test_evaluate_all_points () =
  List.iter
    (fun point ->
      match Design.evaluate point fir with
      | Error msg -> Alcotest.failf "%s: %s" (Design.point_to_string point) msg
      | Ok e ->
        Alcotest.(check string) "kernel name" "fir" e.Design.kernel;
        Alcotest.(check bool) "II positive" true (e.Design.ii >= 4);
        Alcotest.(check bool) "power positive" true (e.Design.power_mw > 0.0);
        Alcotest.(check bool) "utilization bounded" true
          (e.Design.avg_utilization >= 0.0 && e.Design.avg_utilization <= 1.0))
    Design.all_points

let test_same_performance_across_points () =
  (* the headline claim: no performance loss for 2x2 islands *)
  let ii point = (Design.evaluate_exn point fir).Design.ii in
  let baseline = ii Design.Baseline in
  List.iter
    (fun point ->
      Alcotest.(check int)
        (Design.point_to_string point ^ " matches baseline II")
        baseline (ii point))
    Design.all_points

let test_headline_power_order () =
  (* paper Figure 11 shape at uf2, averaged over the kernel suite:
     per-tile > baseline > baseline+pg ~ iced, with iced lowest *)
  let mean point =
    Iced_util.Stats.mean
      (List.filter_map
         (fun k ->
           match Design.evaluate ~unroll:2 point k with
           | Ok e -> Some e.Design.power_mw
           | Error _ -> None)
         Iced_kernels.Registry.standalone)
  in
  let baseline = mean Design.Baseline in
  let per_tile = mean Design.Per_tile in
  let iced = mean Design.Iced in
  Alcotest.(check bool) "per-tile pays its controllers" true (per_tile > baseline);
  Alcotest.(check bool) "iced is the most efficient" true
    (iced < baseline && iced < per_tile)

let test_headline_utilization_gain () =
  (* paper: 0.33 -> 0.76 (2.3x) at uf1; we require at least 1.5x *)
  let mean point =
    Iced_util.Stats.mean
      (List.filter_map
         (fun k ->
           match Design.evaluate point k with
           | Ok e -> Some e.Design.avg_utilization
           | Error _ -> None)
         Iced_kernels.Registry.standalone)
  in
  let gain = mean Design.Iced /. mean Design.Baseline in
  Alcotest.(check bool)
    (Printf.sprintf "utilization gain %.2fx >= 1.5x" gain)
    true (gain >= 1.5)

let test_functional_check () =
  let e = Design.evaluate_exn Design.Iced fir in
  match Design.functional_check fir e.Design.mapping with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "functional check: %s" msg

let test_unroll_evaluation () =
  let e = Design.evaluate_exn ~unroll:2 Design.Iced fir in
  Alcotest.(check int) "records the factor" 2 e.Design.unroll

let suite =
  [
    ("design points", `Quick, test_points_enumeration);
    ("evaluate all points", `Quick, test_evaluate_all_points);
    ("no performance loss across points", `Quick, test_same_performance_across_points);
    ("figure 11 power ordering", `Slow, test_headline_power_order);
    ("figure 9 utilization gain", `Slow, test_headline_utilization_gain);
    ("functional check end to end", `Quick, test_functional_check);
    ("unroll factor recorded", `Quick, test_unroll_evaluation);
  ]
