test/test_mrrg.ml: Alcotest Cgra Dir Iced_arch Iced_mrrg List QCheck QCheck_alcotest String
