test/test_iced.ml: Alcotest Test_arch Test_design Test_dfg Test_kernels Test_mapper Test_mrrg Test_power Test_sim Test_stream Test_util
