test/test_iced.mli:
