test/test_sim.ml: Alcotest Graph Iced_arch Iced_dfg Iced_kernels Iced_mapper Iced_sim Iced_util List Op Option String
