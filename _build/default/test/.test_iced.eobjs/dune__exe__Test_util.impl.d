test/test_util.ml: Alcotest Float Gen Heap Iced_util List QCheck QCheck_alcotest Rng Stats String Table
