test/test_stream.ml: Alcotest Cgra Dvfs Iced_arch Iced_kernels Iced_stream Lazy List
