test/test_kernels.ml: Alcotest Iced_dfg Iced_kernels Iced_sim Kernel List Option Printf Registry
