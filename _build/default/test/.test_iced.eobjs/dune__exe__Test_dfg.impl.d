test/test_dfg.ml: Alcotest Analysis Dot Graph Iced_dfg Iced_util List Op Option QCheck QCheck_alcotest String Transform
