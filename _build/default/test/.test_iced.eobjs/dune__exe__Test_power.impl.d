test/test_power.ml: Alcotest Cgra Dvfs Iced_arch Iced_power List QCheck QCheck_alcotest
