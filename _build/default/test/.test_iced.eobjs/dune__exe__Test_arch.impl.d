test/test_arch.ml: Alcotest Cgra Dir Dvfs Iced_arch List QCheck QCheck_alcotest
