test/test_design.ml: Alcotest Iced Iced_kernels Iced_util List Option Printf
