(* Tests for Iced_dfg: graph structure, analyses, and transforms. *)

open Iced_dfg

(* A minimal accumulator loop: phi -> add -> phi (carried), add <- load. *)
let acc_loop () =
  let g = Graph.empty in
  let g, phi = Graph.add_node ~label:"phi" g Op.Phi in
  let g, ld = Graph.add_node ~label:"ld" g Op.Load in
  let g, add = Graph.add_node ~label:"add" g Op.Add in
  let g = Graph.add_edge g phi add in
  let g = Graph.add_edge g ld add in
  let g = Graph.add_edge ~distance:1 g add phi in
  (g, phi, ld, add)

(* ---------------- Graph ---------------- *)

let test_graph_basics () =
  let g, phi, ld, add = acc_loop () in
  Alcotest.(check int) "nodes" 3 (Graph.node_count g);
  Alcotest.(check int) "edges" 3 (Graph.edge_count g);
  Alcotest.(check bool) "mem" true (Graph.mem_node g phi);
  Alcotest.(check int) "preds of add" 2 (List.length (Graph.predecessors g add));
  Alcotest.(check int) "intra preds of phi" 0 (List.length (Graph.intra_predecessors g phi));
  Alcotest.(check (list int)) "intra succ of ld" [ add ] (Graph.intra_successors g ld)

let test_graph_duplicate_edge () =
  let g, phi, _, add = acc_loop () in
  let before = Graph.edge_count g in
  let g = Graph.add_edge g phi add in
  Alcotest.(check int) "dedup" before (Graph.edge_count g)

let test_graph_remove_node () =
  let g, _, ld, add = acc_loop () in
  let g = Graph.remove_node g ld in
  Alcotest.(check int) "nodes" 2 (Graph.node_count g);
  Alcotest.(check bool) "no dangling edges" true
    (List.for_all (fun (e : Graph.edge) -> e.src <> ld && e.dst <> ld) (Graph.edges g));
  Alcotest.(check int) "add lost a pred" 1 (List.length (Graph.predecessors g add))

let test_graph_invalid_edges () =
  let g, phi, _, _ = acc_loop () in
  Alcotest.check_raises "unknown dst" (Invalid_argument "Graph.add_edge: unknown dst")
    (fun () -> ignore (Graph.add_edge g phi 999));
  Alcotest.check_raises "negative distance"
    (Invalid_argument "Graph.add_edge: negative distance") (fun () ->
      ignore (Graph.add_edge ~distance:(-1) g phi phi))

let test_graph_validate_ok () =
  let g, _, _, _ = acc_loop () in
  match Graph.validate g with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "expected valid: %s" msg

let test_graph_validate_cyclic () =
  let g = Graph.empty in
  let g, a = Graph.add_node g Op.Add in
  let g, b = Graph.add_node g Op.Add in
  let g = Graph.add_edge g a b in
  let g = Graph.add_edge g b a in
  match Graph.validate g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "intra cycle must be rejected"

let test_graph_topological () =
  let g, phi, ld, add = acc_loop () in
  match Graph.intra_topological g with
  | None -> Alcotest.fail "expected order"
  | Some order ->
    let pos x = Option.get (List.find_index (fun y -> y = x) order) in
    Alcotest.(check bool) "phi before add" true (pos phi < pos add);
    Alcotest.(check bool) "ld before add" true (pos ld < pos add)

(* ---------------- Analysis ---------------- *)

let test_rec_mii () =
  let g, _, _, _ = acc_loop () in
  Alcotest.(check int) "acc cycle len 2" 2 (Analysis.rec_mii g)

let test_rec_mii_distance () =
  (* a length-4 cycle with distance 2 only needs II 2 *)
  let g = Graph.empty in
  let g, a = Graph.add_node g Op.Phi in
  let g, b = Graph.add_node g Op.Add in
  let g, c = Graph.add_node g Op.Add in
  let g, d = Graph.add_node g Op.Add in
  let g = Graph.add_edge g a b in
  let g = Graph.add_edge g b c in
  let g = Graph.add_edge g c d in
  let g = Graph.add_edge ~distance:2 g d a in
  Alcotest.(check int) "ceil(4/2)" 2 (Analysis.rec_mii g)

let test_rec_mii_acyclic () =
  let g = Graph.empty in
  let g, a = Graph.add_node g Op.Load in
  let g, b = Graph.add_node g Op.Add in
  let g = Graph.add_edge g a b in
  Alcotest.(check int) "acyclic = 1" 1 (Analysis.rec_mii g);
  Alcotest.(check int) "no cycles" 0 (List.length (Analysis.recurrence_cycles g))

let test_res_mii () =
  let g, _, _, _ = acc_loop () in
  Alcotest.(check int) "3 nodes 2 tiles" 2 (Analysis.res_mii g ~tiles:2);
  Alcotest.(check int) "3 nodes 16 tiles" 1 (Analysis.res_mii g ~tiles:16)

let test_critical_nodes () =
  let g, phi, ld, add = acc_loop () in
  let critical = Analysis.critical_nodes g in
  Alcotest.(check bool) "phi critical" true (List.mem phi critical);
  Alcotest.(check bool) "add critical" true (List.mem add critical);
  Alcotest.(check bool) "load not critical" false (List.mem ld critical)

let test_secondary_cycles () =
  (* long cycle of 4 + short cycle of 2: short is <= half -> secondary *)
  let g = Graph.empty in
  let g, a = Graph.add_node g Op.Phi in
  let g, b = Graph.add_node g Op.Add in
  let g, c = Graph.add_node g Op.Add in
  let g, d = Graph.add_node g Op.Add in
  let g = Graph.add_edge g a b in
  let g = Graph.add_edge g b c in
  let g = Graph.add_edge g c d in
  let g = Graph.add_edge ~distance:1 g d a in
  let g, p2 = Graph.add_node g Op.Phi in
  let g, q2 = Graph.add_node g Op.Add in
  let g = Graph.add_edge g p2 q2 in
  let g = Graph.add_edge ~distance:1 g q2 p2 in
  let secondary = Analysis.secondary_cycle_nodes g in
  Alcotest.(check bool) "p2 secondary" true (List.mem p2 secondary);
  Alcotest.(check bool) "a not secondary" false (List.mem a secondary)

let test_asap_alap () =
  let g, phi, ld, add = acc_loop () in
  let asap = Analysis.asap g and alap = Analysis.alap g in
  Alcotest.(check int) "asap phi" 0 (List.assoc phi asap);
  Alcotest.(check int) "asap add" 1 (List.assoc add asap);
  Alcotest.(check int) "alap ld" 0 (List.assoc ld alap);
  Alcotest.(check int) "depth" 2 (Analysis.depth g);
  List.iter
    (fun (id, a) ->
      if List.assoc id alap < a then Alcotest.failf "alap < asap for n%d" id)
    asap

(* ---------------- Transform ---------------- *)

let unroll2 ?(shared = []) ?(serial = []) g =
  Transform.unroll g ~spec:{ Transform.factor = 2; shared; serial_phis = serial }

let test_unroll_identity () =
  let g, _, _, _ = acc_loop () in
  let g1 = Transform.unroll g ~spec:{ Transform.factor = 1; shared = []; serial_phis = [] } in
  Alcotest.(check int) "factor 1 keeps nodes" (Graph.node_count g) (Graph.node_count g1)

let test_unroll_parallel_counts () =
  let g, _, _, _ = acc_loop () in
  (* parallel phi duplication: every node doubled *)
  let g2 = unroll2 g in
  Alcotest.(check int) "nodes doubled" 6 (Graph.node_count g2);
  Alcotest.(check int) "RecMII flat" 2 (Analysis.rec_mii g2)

let test_unroll_serial_counts () =
  let g, phi, _, _ = acc_loop () in
  let g2 = unroll2 ~serial:[ phi ] g in
  (* serial: phi elided once -> 2*3 - 1 nodes, cycle length 2*2-1 = 3 *)
  Alcotest.(check int) "nodes" 5 (Graph.node_count g2);
  Alcotest.(check int) "RecMII grows" 3 (Analysis.rec_mii g2)

let test_unroll_shared () =
  let g, phi, ld, _ = acc_loop () in
  let g2 = unroll2 ~shared:[ ld ] g in
  Alcotest.(check int) "shared load once" 5 (Graph.node_count g2);
  ignore phi

let test_unroll_validates () =
  let g, _, _, _ = acc_loop () in
  match Graph.validate (unroll2 g) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "unrolled graph invalid: %s" msg

let test_unroll_bad_factor () =
  let g, _, _, _ = acc_loop () in
  Alcotest.check_raises "factor 0" (Invalid_argument "Transform.unroll: factor < 1")
    (fun () ->
      ignore (Transform.unroll g ~spec:{ Transform.factor = 0; shared = []; serial_phis = [] }))

let test_dce () =
  let g = Graph.empty in
  let g, ld = Graph.add_node g Op.Load in
  let g, dead = Graph.add_node g Op.Add in
  let g, st = Graph.add_node g Op.Store in
  let g = Graph.add_edge g ld st in
  let g = Graph.add_edge g ld dead in
  let g' = Transform.dead_code_eliminate g ~keep:[] in
  Alcotest.(check bool) "store kept" true (Graph.mem_node g' st);
  Alcotest.(check bool) "load kept (feeds store)" true (Graph.mem_node g' ld);
  Alcotest.(check bool) "dead removed" false (Graph.mem_node g' dead)

let test_dot_export () =
  let g, _, _, _ = acc_loop () in
  let dot = Dot.to_string g in
  Alcotest.(check bool) "digraph" true (String.length dot > 20);
  let contains_dashed =
    let needle = "style=dashed" in
    let rec scan i =
      i + String.length needle <= String.length dot
      && (String.sub dot i (String.length needle) = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "has dashed carried edge" true contains_dashed

(* Random DAG + accumulator property: unrolled graphs always validate
   and RecMII never decreases. *)
let random_loop_gen =
  QCheck.Gen.(3 -- 12 >>= fun n -> small_nat >>= fun seed -> return (n, seed))

let build_random_loop (n, seed) =
  let rng = Iced_util.Rng.create seed in
  let g = Graph.empty in
  let g, phi = Graph.add_node g Op.Phi in
  let g, nodes =
    List.fold_left
      (fun (g, acc) _ ->
        let op = Iced_util.Rng.choose rng [ Op.Add; Op.Mul; Op.Sub; Op.Xor ] in
        let g, id = Graph.add_node g op in
        (* connect to a random earlier node to stay a DAG *)
        let src = Iced_util.Rng.choose rng (phi :: acc) in
        let g = Graph.add_edge g src id in
        (g, id :: acc))
      (g, []) (List.init n (fun i -> i))
  in
  let last = List.hd nodes in
  let g = Graph.add_edge ~distance:1 g last phi in
  (g, phi)

let prop_unroll_preserves_validity =
  QCheck.Test.make ~name:"unroll of random loop validates, RecMII monotone" ~count:100
    (QCheck.make random_loop_gen)
    (fun input ->
      let g, phi = build_random_loop input in
      match Graph.validate g with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let base = Analysis.rec_mii g in
        let parallel = unroll2 g in
        let serial = unroll2 ~serial:[ phi ] g in
        Graph.validate parallel = Ok ()
        && Graph.validate serial = Ok ()
        && Analysis.rec_mii parallel >= 1
        && Analysis.rec_mii serial >= base)

let suite =
  [
    ("graph basics", `Quick, test_graph_basics);
    ("graph duplicate edge dedup", `Quick, test_graph_duplicate_edge);
    ("graph remove node", `Quick, test_graph_remove_node);
    ("graph invalid edges", `Quick, test_graph_invalid_edges);
    ("graph validate ok", `Quick, test_graph_validate_ok);
    ("graph validate cyclic", `Quick, test_graph_validate_cyclic);
    ("graph topological order", `Quick, test_graph_topological);
    ("recurrence MII", `Quick, test_rec_mii);
    ("recurrence MII with distance", `Quick, test_rec_mii_distance);
    ("recurrence MII acyclic", `Quick, test_rec_mii_acyclic);
    ("resource MII", `Quick, test_res_mii);
    ("critical nodes", `Quick, test_critical_nodes);
    ("secondary cycles", `Quick, test_secondary_cycles);
    ("asap/alap/depth", `Quick, test_asap_alap);
    ("unroll factor 1 identity", `Quick, test_unroll_identity);
    ("unroll parallel counts", `Quick, test_unroll_parallel_counts);
    ("unroll serial counts", `Quick, test_unroll_serial_counts);
    ("unroll shared nodes", `Quick, test_unroll_shared);
    ("unroll validates", `Quick, test_unroll_validates);
    ("unroll bad factor", `Quick, test_unroll_bad_factor);
    ("dead code elimination", `Quick, test_dce);
    ("dot export", `Quick, test_dot_export);
    QCheck_alcotest.to_alcotest prop_unroll_preserves_validity;
  ]
