(** Benchmark kernels: the Table I workloads.

    Each kernel carries a hand-built DFG for unroll factor 1 (matching
    the paper's published node/edge/RecMII statistics), an unroll
    specification from which the factor-2 variant is derived with
    {!Iced_dfg.Transform.unroll}, the paper's published statistics for
    both factors (so tests can pin them), and a data binding giving the
    DFG functional semantics against synthetic inputs. *)

open Iced_dfg

type domain = Embedded | Machine_learning | Hpc | Gcn | Lu

type table_stats = {
  nodes1 : int;
  edges1 : int;
  rec_mii1 : int;
  nodes2 : int;
  edges2 : int;
  rec_mii2 : int;
}
(** The six statistics columns of Table I. *)

type t = {
  name : string;
  domain : domain;
  data : string;  (** Table I "Data" column, e.g. "1024" or "128^2" *)
  dfg : Graph.t;
  unroll_shared : int list;
      (** nodes instantiated once when unrolling (induction variables,
          constants, shared address math) *)
  serial_phis : int list;
      (** phis whose recurrence stays serial under unrolling, growing
          RecMII (spmv/gemm-style non-reassociable dependences); other
          phis split into parallel per-copy recurrences *)
  table : table_stats;
  binding : Iced_sim.Sim.binding;
  iterations : int;  (** loop trip count implied by the data size *)
}

val domain_to_string : domain -> string

val dfg_at : t -> factor:int -> Graph.t
(** [factor] 1 or 2: the DFG actually mapped.  @raise Invalid_argument
    otherwise. *)

val stats : Graph.t -> int * int * int
(** (nodes, edges, RecMII) of a DFG. *)

val make :
  name:string ->
  domain:domain ->
  data:string ->
  dfg:Graph.t ->
  ?unroll_shared:int list ->
  ?serial_phis:int list ->
  table:table_stats ->
  ?binding:Iced_sim.Sim.binding ->
  iterations:int ->
  unit ->
  t
(** Smart constructor; defaults: no shared nodes, no serial phis,
    zero binding. *)
