open Iced_dfg

type induction = { phi : int; next : int; cmp : int; sel : int; step : int; bound : int }

let op ?label kind ~inputs g =
  let g, id = Graph.add_node ?label g kind in
  let g = List.fold_left (fun g src -> Graph.add_edge g src id) g inputs in
  (g, id)

let induction ?(step = 1) ~bound g =
  let g, phi = Graph.add_node ~label:"i" g Op.Phi in
  let g, step_node = Graph.add_node ~label:"step" g (Op.Const step) in
  let g, bound_node = Graph.add_node ~label:"bound" g (Op.Const bound) in
  let g, next = op ~label:"i.next" Op.Add ~inputs:[ phi; step_node ] g in
  let g, cmp = op ~label:"i.cmp" (Op.Cmp Op.Lt) ~inputs:[ next; bound_node ] g in
  let g, sel = op ~label:"i.sel" Op.Select ~inputs:[ cmp; next ] g in
  let g = Graph.add_edge ~distance:1 g sel phi in
  (g, { phi; next; cmp; sel; step = step_node; bound = bound_node })

type accumulator = { phi : int; add : int }

let accumulator ?(op = Op.Add) ~input g =
  let g, phi = Graph.add_node ~label:"acc" g Op.Phi in
  let g, add = Graph.add_node ~label:"acc.next" g op in
  let g = Graph.add_edge g phi add in
  let g = Graph.add_edge g input add in
  let g = Graph.add_edge ~distance:1 g add phi in
  (g, { phi; add })

let load ?label ~addr g =
  let g, id = Graph.add_node ?label g Op.Load in
  let g = List.fold_left (fun g src -> Graph.add_edge g src id) g addr in
  (g, id)

let store ?label ~inputs g =
  let g, id = Graph.add_node ?label g Op.Store in
  let g = List.fold_left (fun g src -> Graph.add_edge g src id) g inputs in
  (g, id)

let chain g ~from steps =
  List.fold_left
    (fun (g, prev) (kind, extra) -> op kind ~inputs:(prev :: extra) g)
    (g, from) steps

type predicated_accumulator = { phi : int; gate : int; add : int; commit : int }

let predicated_accumulator ?(op_kind = Op.Add) ~pred ~input g =
  let g, phi = Graph.add_node ~label:"pacc" g Op.Phi in
  let g, gate = op ~label:"pacc.gate" Op.Select ~inputs:[ pred; phi ] g in
  let g, add = op ~label:"pacc.step" op_kind ~inputs:[ gate; input ] g in
  let g, commit = op ~label:"pacc.commit" Op.Select ~inputs:[ pred; add ] g in
  let g = Graph.add_edge ~distance:1 g commit phi in
  (g, { phi; gate; add; commit })
