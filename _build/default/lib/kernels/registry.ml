let standalone = Embedded.all @ Ml_kernels.all @ Hpc.all

let gcn = Gcn.all

let lu = Lu.all

let all = standalone @ gcn @ lu

let by_name name = List.find_opt (fun (k : Kernel.t) -> k.name = name) all

let names () = List.map (fun (k : Kernel.t) -> k.name) all
