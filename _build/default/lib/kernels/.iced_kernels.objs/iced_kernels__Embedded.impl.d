lib/kernels/embedded.ml: Builders Graph Iced_dfg Iced_sim Kernel Op
