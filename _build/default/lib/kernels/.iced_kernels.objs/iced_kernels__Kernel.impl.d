lib/kernels/kernel.ml: Analysis Graph Iced_dfg Iced_sim Printf Transform
