lib/kernels/ml_kernels.ml: Builders Embedded Graph Iced_dfg Iced_sim Kernel Op
