lib/kernels/registry.ml: Embedded Gcn Hpc Kernel List Lu Ml_kernels
