lib/kernels/kernel.mli: Graph Iced_dfg Iced_sim
