lib/kernels/gcn.ml: Builders Embedded Graph Iced_dfg Kernel Op
