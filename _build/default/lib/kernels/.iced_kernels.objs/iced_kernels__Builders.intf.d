lib/kernels/builders.mli: Graph Iced_dfg Op
