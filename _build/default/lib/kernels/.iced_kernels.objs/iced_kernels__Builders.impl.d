lib/kernels/builders.ml: Graph Iced_dfg List Op
