lib/kernels/lu.ml: Builders Embedded Graph Iced_dfg Kernel Op
