lib/kernels/hpc.ml: Builders Embedded Graph Iced_dfg Iced_sim Kernel Op
