(* HPC kernels (PolyBench / Parboil): histogram, mvt, gemm.

   gemm's k-loop accumulation is kept serial under unrolling (the
   paper reports RecMII 4 -> 7); histogram and mvt re-associate. *)

open Iced_dfg
open Builders

let table = Embedded.table

(* count[x[i] >> shift & mask]++ : indirect load-modify-store. *)
let histogram =
  let g = Graph.empty in
  let g, ind = induction ~bound:2048 g in
  let g, c_shift = Graph.add_node ~label:"shift" g (Op.Const 4) in
  let g, c_mask = Graph.add_node ~label:"mask" g (Op.Const 63) in
  let g, ld_x = load ~label:"x" ~addr:[ ind.phi ] g in
  let g, shr = op ~label:"shr" Op.Shr ~inputs:[ ld_x; c_shift ] g in
  let g, bin = op ~label:"bin" Op.And ~inputs:[ shr; c_mask ] g in
  let g, gep_cnt = op ~label:"gep.cnt" Op.Gep ~inputs:[ bin ] g in
  let g, ld_cnt = load ~label:"count" ~addr:[ gep_cnt ] g in
  let g, inc = op ~label:"inc" Op.Add ~inputs:[ ld_cnt; ind.step ] g in
  let g, _st = store ~label:"count" ~inputs:[ inc ] g in
  let binding =
    {
      Iced_sim.Sim.load =
        (fun ~label ~iter ~operands ->
          let addr = match operands with a :: _ -> a | [] -> iter in
          match label with
          | "x" -> (iter * 131) mod 1021
          | "count" -> addr mod 7
          | _ -> 0);
      phi_init = (fun ~label:_ -> 0);
    }
  in
  Kernel.make ~name:"histogram" ~domain:Kernel.Hpc ~data:"2048"
    ~dfg:g
    ~unroll_shared:[ ind.phi; ind.step; ind.bound; ind.next; c_shift; c_mask; ld_x ]
    ~table:(table ~n1:15 ~e1:17 ~r1:4 ~n2:23 ~e2:26 ~r2:4)
    ~binding ~iterations:2048 ()

(* Matrix-vector product and transpose: y += A[i][j]*x[j] and
   xt += A[i][j]*y2[i], sharing the A element. *)
let mvt =
  let g = Graph.empty in
  let g, ind = induction ~bound:128 g in
  let g, c_n = Graph.add_node ~label:"n" g (Op.Const 128) in
  let g, gep_a = op ~label:"gep.a" Op.Gep ~inputs:[ ind.phi ] g in
  let g, ld_a = load ~label:"a" ~addr:[ gep_a ] g in
  let g, ld_x = load ~label:"x" ~addr:[ ind.phi ] g in
  let g, prod1 = op ~label:"prod1" Op.Mul ~inputs:[ ld_a; ld_x ] g in
  let g, acc1 = accumulator ~input:prod1 g in
  let g, _st1 = store ~label:"y" ~inputs:[ acc1.add; ind.phi; gep_a ] g in
  let g, idx2 = op ~label:"idx.t" Op.Add ~inputs:[ ind.phi; c_n ] g in
  let g, ld_y2 = load ~label:"y2" ~addr:[ idx2 ] g in
  let g, prod2 = op ~label:"prod2" Op.Mul ~inputs:[ ld_a; ld_y2 ] g in
  let g, acc2 = accumulator ~input:prod2 g in
  let g, _st2 = store ~label:"xt" ~inputs:[ acc2.add; ind.phi; idx2 ] g in
  let binding =
    {
      Iced_sim.Sim.load =
        (fun ~label ~iter ~operands ->
          let addr = match operands with a :: _ -> a | [] -> iter in
          match label with
          | "a" -> ((addr * 19) mod 29) - 14
          | "x" -> (iter mod 11) - 5
          | "y2" -> (addr mod 13) - 6
          | _ -> 0);
      phi_init = (fun ~label:_ -> 0);
    }
  in
  Kernel.make ~name:"mvt" ~domain:Kernel.Hpc ~data:"128^2"
    ~dfg:g
    ~unroll_shared:[ ind.step; ind.bound; c_n ]
    ~table:(table ~n1:20 ~e1:29 ~r1:4 ~n2:37 ~e2:54 ~r2:4)
    ~binding ~iterations:128 ()

(* C[i][j] += A[i][k] * B[k][j]: the k-loop with a serial predicated
   accumulator. *)
let gemm =
  let g = Graph.empty in
  let g, ind = induction ~bound:128 g in
  let g, c_n = Graph.add_node ~label:"n" g (Op.Const 128) in
  let g, idx_b = op ~label:"idx.b" Op.Mul ~inputs:[ ind.phi; c_n ] g in
  let g, gep_a = op ~label:"gep.a" Op.Gep ~inputs:[ ind.phi ] g in
  let g, ld_a = load ~label:"a" ~addr:[ gep_a ] g in
  let g, ld_b = load ~label:"b" ~addr:[ idx_b ] g in
  let g, prod = op ~label:"prod" Op.Mul ~inputs:[ ld_a; ld_b ] g in
  let g, pacc = predicated_accumulator ~pred:ind.cmp ~input:prod g in
  let g, _st = store ~label:"c" ~inputs:[ pacc.commit; ind.phi; idx_b ] g in
  let binding =
    {
      Iced_sim.Sim.load =
        (fun ~label ~iter ~operands ->
          let addr = match operands with a :: _ -> a | [] -> iter in
          match label with
          | "a" -> ((addr * 7) mod 19) - 9
          | "b" -> ((addr * 3) mod 23) - 11
          | _ -> 0);
      phi_init = (fun ~label:_ -> 0);
    }
  in
  Kernel.make ~name:"gemm" ~domain:Kernel.Hpc ~data:"128^2"
    ~dfg:g
    ~unroll_shared:
      [ ind.phi; ind.step; ind.bound; ind.next; ind.cmp; ind.sel; c_n; idx_b; gep_a; ld_a ]
    ~serial_phis:[ pacc.phi ]
    ~table:(table ~n1:17 ~e1:24 ~r1:4 ~n2:23 ~e2:37 ~r2:7)
    ~binding ~iterations:128 ()

let all = [ histogram; mvt; gemm ]
