open Iced_dfg

type domain = Embedded | Machine_learning | Hpc | Gcn | Lu

type table_stats = {
  nodes1 : int;
  edges1 : int;
  rec_mii1 : int;
  nodes2 : int;
  edges2 : int;
  rec_mii2 : int;
}

type t = {
  name : string;
  domain : domain;
  data : string;
  dfg : Graph.t;
  unroll_shared : int list;
  serial_phis : int list;
  table : table_stats;
  binding : Iced_sim.Sim.binding;
  iterations : int;
}

let domain_to_string = function
  | Embedded -> "embedded"
  | Machine_learning -> "ml"
  | Hpc -> "hpc"
  | Gcn -> "gcn"
  | Lu -> "lu"

let dfg_at k ~factor =
  match factor with
  | 1 -> k.dfg
  | 2 ->
    Transform.unroll k.dfg
      ~spec:{ Transform.factor = 2; shared = k.unroll_shared; serial_phis = k.serial_phis }
  | _ -> invalid_arg "Kernel.dfg_at: only unroll factors 1 and 2 are modeled"

let stats g = (Graph.node_count g, Graph.edge_count g, Analysis.rec_mii g)

let make ~name ~domain ~data ~dfg ?(unroll_shared = []) ?(serial_phis = []) ~table
    ?(binding = Iced_sim.Sim.zero_binding) ~iterations () =
  (match Graph.validate dfg with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Kernel.make %s: %s" name msg));
  { name; domain; data; dfg; unroll_shared; serial_phis; table; binding; iterations }
