(** Combinators shared by the kernel builders.

    Every Table I kernel has RecMII 4 or more coming from a loop-carried
    recurrence; the most common source is the predicated induction
    chain (phi -> i+step -> compare -> select -> phi), which partial
    predication produces when control flow is converted to dataflow.
    Accumulators contribute a shorter phi -> add cycle. *)

open Iced_dfg

type induction = {
  phi : int;  (** current index i *)
  next : int;  (** i + step *)
  cmp : int;  (** i + step < bound *)
  sel : int;  (** predicated next index *)
  step : int;  (** Const step *)
  bound : int;  (** Const bound *)
}

val induction : ?step:int -> bound:int -> Graph.t -> Graph.t * induction
(** 6 nodes / 7 edges; the length-4 recurrence cycle
    phi -> next -> cmp -> sel -> phi gives RecMII 4.  [step] defaults
    to 1. *)

type accumulator = { phi : int; add : int }

val accumulator : ?op:Op.t -> input:int -> Graph.t -> Graph.t * accumulator
(** 2 nodes / 3 edges; a length-2 recurrence (labeled [relax] by
    Algorithm 1 since 2 <= 4/2).  [op] defaults to [Add]. *)

val load : ?label:string -> addr:int list -> Graph.t -> Graph.t * int
(** A [Load] whose address inputs are [addr] (edge order preserved). *)

val store : ?label:string -> inputs:int list -> Graph.t -> Graph.t * int

val op : ?label:string -> Op.t -> inputs:int list -> Graph.t -> Graph.t * int
(** Generic operation node fed by [inputs] in order. *)

val chain : Graph.t -> from:int -> (Op.t * int list) list -> Graph.t * int
(** Fold a linear chain: each element (op, extra_inputs) consumes the
    previous value as first operand.  Returns the last node. *)

type predicated_accumulator = {
  phi : int;
  gate : int;  (** Select(pred, phi): value kept while predicated on *)
  add : int;  (** gate op input *)
  commit : int;  (** Select(pred, add): predicated update *)
}

val predicated_accumulator :
  ?op_kind:Op.t -> pred:int -> input:int -> Graph.t -> Graph.t * predicated_accumulator
(** The length-4 serial recurrence phi -> gate -> step -> commit -> phi
    (4 nodes / 7 edges) that partial predication builds for a guarded
    accumulation; marking its phi serial in the unroll spec reproduces
    the RecMII 4 -> 7 growth of spmv/gemm.  [op_kind] defaults to
    [Add]. *)
