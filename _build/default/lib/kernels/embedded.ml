(* Embedded-domain DSP kernels (UTDSP): fir, latnrm, fft, dtw.

   Each builder constructs the partial-predication DFG of the kernel's
   inner loop.  Structure and statistics (nodes/edges/RecMII at unroll
   factors 1 and 2) follow Table I of the paper; the RecMII-4 recurrence
   is the predicated induction chain produced when control flow is
   converted to dataflow, with accumulators/state recurrences forming
   the shorter secondary cycles. *)

open Iced_dfg
open Builders

let table ~n1 ~e1 ~r1 ~n2 ~e2 ~r2 =
  {
    Kernel.nodes1 = n1;
    edges1 = e1;
    rec_mii1 = r1;
    nodes2 = n2;
    edges2 = e2;
    rec_mii2 = r2;
  }

(* y[i] = sum_j c[j] * x[i-j], flattened: acc += c[i] * x[i]. *)
let fir =
  let g = Graph.empty in
  let g, ind = induction ~bound:64 g in
  let g, ld_x = load ~label:"x" ~addr:[ ind.phi ] g in
  let g, ld_c = load ~label:"c" ~addr:[ ind.phi ] g in
  let g, mul = op ~label:"prod" Op.Mul ~inputs:[ ld_x; ld_c ] g in
  let g, acc = accumulator ~input:mul g in
  let g, _st = store ~label:"y" ~inputs:[ acc.add; ind.phi ] g in
  let binding =
    {
      Iced_sim.Sim.load =
        (fun ~label ~iter ~operands:_ ->
          match label with
          | "x" -> (3 * iter) + 1
          | "c" -> (iter mod 7) - 3
          | _ -> 0);
      phi_init = (fun ~label:_ -> 0);
    }
  in
  Kernel.make ~name:"fir" ~domain:Kernel.Embedded ~data:"64"
    ~dfg:g
    ~unroll_shared:[ ind.phi; ind.step; ind.bound; ind.next ]
    ~table:(table ~n1:12 ~e1:16 ~r1:4 ~n2:20 ~e2:26 ~r2:4)
    ~binding ~iterations:64 ()

(* Normalized lattice filter: one stage of the lattice recurrence
   state' = state * k[i] + x[i]. *)
let latnrm =
  let g = Graph.empty in
  let g, ind = induction ~bound:32 g in
  let g, ld_x = load ~label:"x" ~addr:[ ind.phi ] g in
  let g, ld_k = load ~label:"k" ~addr:[ ind.phi ] g in
  let g, state = Graph.add_node ~label:"state" g Op.Phi in
  let g, mul = op ~label:"state.k" Op.Mul ~inputs:[ state; ld_k ] g in
  let g, add = op ~label:"state.next" Op.Add ~inputs:[ mul; ld_x ] g in
  let g = Graph.add_edge ~distance:1 g add state in
  let g, _st = store ~label:"out" ~inputs:[ add; ind.phi ] g in
  let binding =
    {
      Iced_sim.Sim.load =
        (fun ~label ~iter ~operands:_ ->
          match label with "x" -> iter + 1 | "k" -> if iter mod 2 = 0 then 1 else -1 | _ -> 0);
      phi_init = (fun ~label:_ -> 0);
    }
  in
  Kernel.make ~name:"latnrm" ~domain:Kernel.Embedded ~data:"32"
    ~dfg:g
    ~unroll_shared:[ ind.phi; ind.step; ind.bound; ind.next; ld_k ]
    ~table:(table ~n1:12 ~e1:16 ~r1:4 ~n2:19 ~e2:25 ~r2:4)
    ~binding ~iterations:32 ()

(* Radix-2 FFT butterfly with strided index arithmetic and a complex
   twiddle multiply. *)
let fft =
  let g = Graph.empty in
  let g, ind = induction ~bound:512 g in
  let g, c_mask = Graph.add_node ~label:"mask" g (Op.Const 15) in
  let g, c_s = Graph.add_node ~label:"logstride" g (Op.Const 4) in
  let g, c_half = Graph.add_node ~label:"half" g (Op.Const 512) in
  (* index math: j = i & mask; k = i >> s; base = k << s; a = base + j *)
  let g, j = op ~label:"j" Op.And ~inputs:[ ind.phi; c_mask ] g in
  let g, k = op ~label:"k" Op.Shr ~inputs:[ ind.phi; c_s ] g in
  let g, base = op ~label:"base" Op.Shl ~inputs:[ k; c_s ] g in
  let g, idx_a = op ~label:"idx.a" Op.Add ~inputs:[ base; j ] g in
  let g, idx_b = op ~label:"idx.b" Op.Add ~inputs:[ idx_a; c_half ] g in
  let g, tw = op ~label:"idx.w" Op.Shl ~inputs:[ j; c_s ] g in
  (* loads, three of them through explicit geps *)
  let g, gep_ar = op ~label:"gep.ar" Op.Gep ~inputs:[ idx_a ] g in
  let g, ar = load ~label:"ar" ~addr:[ gep_ar ] g in
  let g, ai = load ~label:"ai" ~addr:[ idx_a ] g in
  let g, gep_br = op ~label:"gep.br" Op.Gep ~inputs:[ idx_b ] g in
  let g, br = load ~label:"br" ~addr:[ gep_br ] g in
  let g, bi = load ~label:"bi" ~addr:[ idx_b ] g in
  let g, gep_wr = op ~label:"gep.wr" Op.Gep ~inputs:[ tw ] g in
  let g, wr = load ~label:"wr" ~addr:[ gep_wr ] g in
  let g, wi = load ~label:"wi" ~addr:[ tw ] g in
  (* complex twiddle: t = b * w *)
  let g, m1 = op ~label:"m1" Op.Mul ~inputs:[ br; wr ] g in
  let g, m2 = op ~label:"m2" Op.Mul ~inputs:[ bi; wi ] g in
  let g, m3 = op ~label:"m3" Op.Mul ~inputs:[ br; wi ] g in
  let g, m4 = op ~label:"m4" Op.Mul ~inputs:[ bi; wr ] g in
  let g, tr = op ~label:"tr" Op.Sub ~inputs:[ m1; m2 ] g in
  let g, ti = op ~label:"ti" Op.Add ~inputs:[ m3; m4 ] g in
  (* butterfly outputs *)
  let g, o1 = op ~label:"o1" Op.Add ~inputs:[ ar; tr ] g in
  let g, o2 = op ~label:"o2" Op.Add ~inputs:[ ai; ti ] g in
  let g, o3 = op ~label:"o3" Op.Sub ~inputs:[ ar; tr ] g in
  let g, o4 = op ~label:"o4" Op.Sub ~inputs:[ ai; ti ] g in
  (* stores through per-store geps *)
  let g, gep1 = op ~label:"gep.s1" Op.Gep ~inputs:[ idx_a ] g in
  let g, _s1 = store ~label:"xr" ~inputs:[ o1; gep1 ] g in
  let g, gep2 = op ~label:"gep.s2" Op.Gep ~inputs:[ idx_a ] g in
  let g, _s2 = store ~label:"xi" ~inputs:[ o2; gep2 ] g in
  let g, gep3 = op ~label:"gep.s3" Op.Gep ~inputs:[ idx_b ] g in
  let g, _s3 = store ~label:"yr" ~inputs:[ o3; gep3 ] g in
  let g, gep4 = op ~label:"gep.s4" Op.Gep ~inputs:[ idx_b ] g in
  let g, _s4 = store ~label:"yi" ~inputs:[ o4; gep4 ] g in
  let binding =
    {
      Iced_sim.Sim.load =
        (fun ~label ~iter ~operands ->
          let addr = match operands with a :: _ -> a | [] -> iter in
          match label with
          | "ar" -> addr + 1
          | "ai" -> addr + 2
          | "br" -> addr + 3
          | "bi" -> addr + 5
          | "wr" -> (addr mod 13) - 6
          | "wi" -> (addr mod 11) - 5
          | _ -> 0);
      phi_init = (fun ~label:_ -> 0);
    }
  in
  Kernel.make ~name:"fft" ~domain:Kernel.Embedded ~data:"1024"
    ~dfg:g
    ~unroll_shared:
      [ ind.phi; ind.step; ind.bound; ind.next; c_mask; c_s; c_half; j; k; base; idx_a; idx_b; tw ]
    ~table:(table ~n1:42 ~e1:60 ~r1:4 ~n2:71 ~e2:100 ~r2:4)
    ~binding ~iterations:512 ()

(* Dynamic time warping: cell cost = |x - y| + min(up, diag, left),
   with the left neighbour loop-carried. *)
let dtw =
  let g = Graph.empty in
  let g, ind = induction ~bound:128 g in
  let g, c_zero = Graph.add_node ~label:"zero" g (Op.Const 0) in
  let g, c_n = Graph.add_node ~label:"rowlen" g (Op.Const 128) in
  (* previous-row indices *)
  let g, idx_up = op ~label:"idx.up" Op.Sub ~inputs:[ ind.phi; c_n ] g in
  let g, idx_diag = op ~label:"idx.diag" Op.Sub ~inputs:[ idx_up; ind.step ] g in
  (* loads (through geps) *)
  let g, gep_x = op ~label:"gep.x" Op.Gep ~inputs:[ ind.phi ] g in
  let g, ld_x = load ~label:"x" ~addr:[ gep_x ] g in
  let g, gep_y = op ~label:"gep.y" Op.Gep ~inputs:[ ind.phi ] g in
  let g, ld_y = load ~label:"y" ~addr:[ gep_y ] g in
  let g, gep_up = op ~label:"gep.up" Op.Gep ~inputs:[ idx_up ] g in
  let g, ld_up = load ~label:"up" ~addr:[ gep_up ] g in
  let g, gep_diag = op ~label:"gep.diag" Op.Gep ~inputs:[ idx_diag ] g in
  let g, ld_diag = load ~label:"diag" ~addr:[ gep_diag ] g in
  (* |x - y| *)
  let g, diff = op ~label:"diff" Op.Sub ~inputs:[ ld_x; ld_y ] g in
  let g, is_neg = op ~label:"isneg" (Op.Cmp Op.Lt) ~inputs:[ diff ] g in
  let g, neg = op ~label:"neg" Op.Sub ~inputs:[ c_zero; diff ] g in
  let g, abs = op ~label:"abs" Op.Select ~inputs:[ is_neg; neg; diff ] g in
  (* min(up, diag, left) with left loop-carried *)
  let g, left = Graph.add_node ~label:"left" g Op.Phi in
  let g, cmp1 = op ~label:"cmp1" (Op.Cmp Op.Lt) ~inputs:[ ld_up; ld_diag ] g in
  let g, min1 = op ~label:"min1" Op.Select ~inputs:[ cmp1; ld_up; ld_diag ] g in
  let g, cmp2 = op ~label:"cmp2" (Op.Cmp Op.Lt) ~inputs:[ min1; left ] g in
  let g, min2 = op ~label:"min2" Op.Select ~inputs:[ cmp2; min1; left ] g in
  let g, cost = op ~label:"cost" Op.Add ~inputs:[ abs; min2 ] g in
  let g = Graph.add_edge ~distance:1 g cost left in
  let g, _st = store ~label:"cost" ~inputs:[ cost; ind.phi ] g in
  (* backtracking direction, stored alongside the cost *)
  let g, dir1 = op ~label:"dir1" Op.Select ~inputs:[ cmp1; ind.step; c_n ] g in
  let g, dir2 = op ~label:"dir2" Op.Select ~inputs:[ cmp2; dir1 ] g in
  let g, _st2 = store ~label:"dir" ~inputs:[ dir2; ind.phi ] g in
  let binding =
    {
      Iced_sim.Sim.load =
        (fun ~label ~iter ~operands ->
          let addr = match operands with a :: _ -> a | [] -> iter in
          match label with
          | "x" -> (iter * 5) mod 97
          | "y" -> (iter * 7) mod 89
          | "up" -> (addr * 3) mod 61
          | "diag" -> (addr * 2) mod 53
          | _ -> 0);
      phi_init = (fun ~label:_ -> 0);
    }
  in
  Kernel.make ~name:"dtw" ~domain:Kernel.Embedded ~data:"128^2"
    ~dfg:g
    ~unroll_shared:
      [
        ind.phi; ind.step; ind.bound; ind.next; c_zero; c_n; idx_up; idx_diag; gep_x; ld_x;
        gep_up; ld_up; gep_diag;
      ]
    ~table:(table ~n1:32 ~e1:49 ~r1:4 ~n2:51 ~e2:84 ~r2:4)
    ~binding ~iterations:128 ()

let all = [ fir; latnrm; fft; dtw ]
