(* Machine-learning kernels: spmv, conv, relu.

   spmv's accumulation over the CSR row is a non-reassociable serial
   recurrence (row boundaries are data-dependent), so its predicated
   accumulator phi is marked serial and RecMII grows from 4 to 7 under
   unrolling, exactly as Table I reports.  conv and relu re-associate. *)

open Iced_dfg
open Builders

let table = Embedded.table

(* y[row] += val[j] * x[col[j]], CSR inner loop with a data-dependent
   row-boundary reset. *)
let spmv =
  let g = Graph.empty in
  let g, ind = induction ~bound:512 g in
  let g, c_zero = Graph.add_node ~label:"zero" g (Op.Const 0) in
  let g, ld_col = load ~label:"col" ~addr:[ ind.phi ] g in
  let g, ld_val = load ~label:"val" ~addr:[ ind.phi ] g in
  let g, gep_x = op ~label:"gep.x" Op.Gep ~inputs:[ ld_col ] g in
  let g, ld_x = load ~label:"x" ~addr:[ gep_x ] g in
  let g, prod = op ~label:"prod" Op.Mul ~inputs:[ ld_val; ld_x ] g in
  let g, ld_row = load ~label:"rowid" ~addr:[ ind.phi ] g in
  let g, is_new = op ~label:"isnew" (Op.Cmp Op.Ne) ~inputs:[ ld_row ] g in
  (* serial predicated accumulation with row reset *)
  let g, phi_acc = Graph.add_node ~label:"acc" g Op.Phi in
  let g, s1 = op ~label:"acc.keep" Op.Select ~inputs:[ is_new; c_zero; phi_acc ] g in
  let g, add = op ~label:"acc.step" Op.Add ~inputs:[ s1; prod ] g in
  let g, s2 = op ~label:"acc.commit" Op.Select ~inputs:[ is_new; add ] g in
  let g = Graph.add_edge ~distance:1 g s2 phi_acc in
  let g, _st = store ~label:"y" ~inputs:[ s2 ] g in
  let binding =
    {
      Iced_sim.Sim.load =
        (fun ~label ~iter ~operands ->
          let addr = match operands with a :: _ -> a | [] -> iter in
          match label with
          | "col" -> (iter * 13) mod 512
          | "val" -> (iter mod 9) + 1
          | "x" -> (addr mod 17) - 8
          | "rowid" -> iter / 8
          | _ -> 0);
      phi_init = (fun ~label:_ -> 0);
    }
  in
  Kernel.make ~name:"spmv" ~domain:Kernel.Machine_learning ~data:"512"
    ~dfg:g ~serial_phis:[ phi_acc ]
    ~table:(table ~n1:19 ~e1:24 ~r1:4 ~n2:37 ~e2:50 ~r2:7)
    ~binding ~iterations:512 ()

(* acc += img[i + w] * weight[i]: 2D convolution window walk. *)
let conv =
  let g = Graph.empty in
  let g, ind = induction ~bound:1024 g in
  let g, c_w = Graph.add_node ~label:"width" g (Op.Const 32) in
  let g, c_base = Graph.add_node ~label:"imgbase" g (Op.Const 4096) in
  let g, idx_img = op ~label:"idx.img" Op.Add ~inputs:[ ind.phi; c_w ] g in
  let g, gep_img = op ~label:"gep.img" Op.Gep ~inputs:[ idx_img; c_base ] g in
  let g, ld_img = load ~label:"img" ~addr:[ gep_img ] g in
  let g, gep_w = op ~label:"gep.w" Op.Gep ~inputs:[ ind.phi; c_base ] g in
  let g, ld_w = load ~label:"w" ~addr:[ gep_w ] g in
  let g, prod = op ~label:"prod" Op.Mul ~inputs:[ ld_img; ld_w ] g in
  let g, acc = accumulator ~input:prod g in
  let g, _st = store ~label:"out" ~inputs:[ acc.add; ind.phi; idx_img ] g in
  let binding =
    {
      Iced_sim.Sim.load =
        (fun ~label ~iter ~operands ->
          let addr = match operands with a :: _ -> a | [] -> iter in
          match label with
          | "img" -> (addr mod 23) - 11
          | "w" -> (iter mod 5) - 2
          | _ -> 0);
      phi_init = (fun ~label:_ -> 0);
    }
  in
  Kernel.make ~name:"conv" ~domain:Kernel.Machine_learning ~data:"32^2"
    ~dfg:g
    ~unroll_shared:
      [ ind.phi; ind.step; ind.bound; ind.next; c_w; c_base; idx_img; gep_img; gep_w; ld_w ]
    ~table:(table ~n1:17 ~e1:23 ~r1:4 ~n2:24 ~e2:34 ~r2:4)
    ~binding ~iterations:1024 ()

(* y[i] = max(x[i], 0), plus a predicated count of active lanes —
   the paper keeps relu standalone to exercise control flow. *)
let relu =
  let g = Graph.empty in
  let g, ind = induction ~bound:1024 g in
  let g, c_zero = Graph.add_node ~label:"zero" g (Op.Const 0) in
  let g, gep_x = op ~label:"gep.x" Op.Gep ~inputs:[ ind.phi ] g in
  let g, ld_x = load ~label:"x" ~addr:[ gep_x ] g in
  let g, is_pos = op ~label:"ispos" (Op.Cmp Op.Gt) ~inputs:[ ld_x ] g in
  let g, sel = op ~label:"max0" Op.Select ~inputs:[ is_pos; ld_x; c_zero ] g in
  let g, cnt = accumulator ~input:is_pos g in
  let g, _st = store ~label:"y" ~inputs:[ sel; ind.phi; cnt.add ] g in
  let binding =
    {
      Iced_sim.Sim.load =
        (fun ~label ~iter ~operands:_ ->
          match label with "x" -> ((iter * 37) mod 41) - 20 | _ -> 0);
      phi_init = (fun ~label:_ -> 0);
    }
  in
  Kernel.make ~name:"relu" ~domain:Kernel.Machine_learning ~data:"1024"
    ~dfg:g
    ~unroll_shared:[ ind.phi; ind.step; ind.bound; ind.next; c_zero ]
    ~table:(table ~n1:14 ~e1:19 ~r1:4 ~n2:23 ~e2:32 ~r2:4)
    ~binding ~iterations:1024 ()

let all = [ spmv; conv; relu ]
