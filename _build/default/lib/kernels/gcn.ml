(* The five unique kernels of the 2-layer GCN streaming application
   (Table I): compress, aggregate (instantiated twice in the pipeline),
   combine, combrelu, and pooling.

   All five carry a serial data-dependent recurrence (sparse row
   accumulation or running max), so their RecMII grows from 4 to 7
   under unrolling, as Table I reports.  Their per-input execution time
   varies with the input graph's edge count, which is what makes the
   GCN pipeline imbalanced (paper Section II-B). *)

open Iced_dfg
open Builders

let table = Embedded.table

(* CSR compression of the input feature matrix: gather non-zeros,
   count them, and write the compacted stream. *)
let compress =
  let g = Graph.empty in
  let g, ind = induction ~bound:256 g in
  let g, c_base = Graph.add_node ~label:"base" g (Op.Const 1024) in
  let g, idx = op ~label:"idx" Op.Add ~inputs:[ ind.phi; c_base ] g in
  let g, gep_ptr = op ~label:"gep.ptr" Op.Gep ~inputs:[ ind.phi ] g in
  let g, ld_ptr = load ~label:"ptr" ~addr:[ gep_ptr ] g in
  let g, gep_idx = op ~label:"gep.idx" Op.Gep ~inputs:[ ld_ptr ] g in
  let g, ld_idx = load ~label:"colidx" ~addr:[ gep_idx ] g in
  let g, gep_f = op ~label:"gep.f" Op.Gep ~inputs:[ ld_idx ] g in
  let g, ld_f = load ~label:"feat" ~addr:[ gep_f ] g in
  let g, nz = op ~label:"nz" (Op.Cmp Op.Ne) ~inputs:[ ld_f ] g in
  let g, gated = op ~label:"gated" Op.Select ~inputs:[ nz; ld_f ] g in
  let g, pacc = predicated_accumulator ~pred:nz ~input:gated g in
  let g, _cnt = accumulator ~input:nz g in
  let g, _st = store ~label:"packed" ~inputs:[ pacc.commit; idx ] g in
  let g, _st2 = store ~label:"colout" ~inputs:[ ld_idx; ind.phi ] g in
  Kernel.make ~name:"compress" ~domain:Kernel.Gcn ~data:"ENZYME graphs"
    ~dfg:g
    ~unroll_shared:[ c_base ]
    ~serial_phis:[ pacc.phi ]
    ~table:(table ~n1:24 ~e1:32 ~r1:4 ~n2:46 ~e2:65 ~r2:7)
    ~iterations:256 ()

(* agg[v] = sum over neighbours u of A[v,u] * feat[u] / deg[v]:
   sparse matrix times dense feature, normalized. *)
let aggregate =
  let g = Graph.empty in
  let g, ind = induction ~bound:256 g in
  let g, gep_ptr = op ~label:"gep.ptr" Op.Gep ~inputs:[ ind.phi ] g in
  let g, ld_ptr = load ~label:"ptr" ~addr:[ gep_ptr ] g in
  let g, gep_col = op ~label:"gep.col" Op.Gep ~inputs:[ ld_ptr ] g in
  let g, ld_col = load ~label:"col" ~addr:[ gep_col ] g in
  let g, gep_val = op ~label:"gep.val" Op.Gep ~inputs:[ ld_ptr ] g in
  let g, ld_val = load ~label:"val" ~addr:[ gep_val ] g in
  let g, gep_f = op ~label:"gep.f" Op.Gep ~inputs:[ ld_col ] g in
  let g, gep_ff = op ~label:"gep.ff" Op.Gep ~inputs:[ gep_f ] g in
  let g, ld_f = load ~label:"feat" ~addr:[ gep_ff ] g in
  let g, prod = op ~label:"prod" Op.Mul ~inputs:[ ld_val; ld_f ] g in
  let g, nz = op ~label:"nz" (Op.Cmp Op.Ne) ~inputs:[ ld_val ] g in
  let g, gated = op ~label:"gated" Op.Select ~inputs:[ nz; prod ] g in
  let g, pacc = predicated_accumulator ~pred:nz ~input:gated g in
  let g, gep_deg = op ~label:"gep.deg" Op.Gep ~inputs:[ ind.phi ] g in
  let g, ld_deg = load ~label:"deg" ~addr:[ gep_deg ] g in
  let g, scale = op ~label:"scale" Op.Gep ~inputs:[ pacc.commit ] g in
  let g, norm = op ~label:"norm" Op.Div ~inputs:[ scale; ld_deg ] g in
  let g, _st = store ~label:"agg" ~inputs:[ norm ] g in
  Kernel.make ~name:"aggregate" ~domain:Kernel.Gcn ~data:"ENZYME graphs"
    ~dfg:g
    ~serial_phis:[ pacc.phi ]
    ~table:(table ~n1:27 ~e1:34 ~r1:4 ~n2:53 ~e2:69 ~r2:7)
    ~iterations:256 ()

(* h[v][j] = bias[j] + sum_k W[k][j] * agg[v][k]: dense combine over
   two output features per iteration. *)
let combine_body g =
  let g, ind = induction ~bound:256 g in
  let g, c_dim = Graph.add_node ~label:"dim" g (Op.Const 64) in
  let g, row = op ~label:"row" Op.Mul ~inputs:[ ind.phi; c_dim ] g in
  let g, gep_w = op ~label:"gep.w" Op.Gep ~inputs:[ row ] g in
  let g, ld_w = load ~label:"w" ~addr:[ gep_w ] g in
  let g, gep_a = op ~label:"gep.a" Op.Gep ~inputs:[ ind.phi ] g in
  let g, ld_a = load ~label:"agg" ~addr:[ gep_a ] g in
  let g, prod = op ~label:"prod" Op.Mul ~inputs:[ ld_w; ld_a ] g in
  let g, pacc = predicated_accumulator ~pred:ind.cmp ~input:prod g in
  let g, ld_b = load ~label:"bias" ~addr:[ ind.phi ] g in
  let g, sum = op ~label:"sum" Op.Add ~inputs:[ pacc.commit; ld_b ] g in
  let g, idx2 = op ~label:"idx2" Op.Gep ~inputs:[ row ] g in
  let g, ld_w2 = load ~label:"w2" ~addr:[ idx2 ] g in
  let g, prod2 = op ~label:"prod2" Op.Mul ~inputs:[ ld_w2; ld_a ] g in
  let g, acc2 = accumulator ~input:prod2 g in
  (g, ind, pacc, sum, acc2, row)

let combine =
  let g = Graph.empty in
  let g, ind, pacc, sum, acc2, _row = combine_body g in
  let g, _st = store ~label:"h" ~inputs:[ sum; ind.phi ] g in
  let g, _st2 = store ~label:"h2" ~inputs:[ acc2.add ] g in
  Kernel.make ~name:"combine" ~domain:Kernel.Gcn ~data:"ENZYME graphs"
    ~dfg:g
    ~serial_phis:[ pacc.phi ]
    ~table:(table ~n1:26 ~e1:35 ~r1:4 ~n2:51 ~e2:71 ~r2:7)
    ~iterations:256 ()

(* combine fused with relu on both output features. *)
let combrelu =
  let g = Graph.empty in
  let g, ind, pacc, sum, acc2, row = combine_body g in
  let g, is_pos = op ~label:"ispos" (Op.Cmp Op.Gt) ~inputs:[ sum ] g in
  let g, relu = op ~label:"relu" Op.Select ~inputs:[ is_pos; sum ] g in
  let g, is_pos2 = op ~label:"ispos2" (Op.Cmp Op.Gt) ~inputs:[ acc2.add ] g in
  let g, relu2 = op ~label:"relu2" Op.Select ~inputs:[ is_pos2; acc2.add ] g in
  let g, _st = store ~label:"h" ~inputs:[ relu; ind.phi; row ] g in
  let g, _st2 = store ~label:"h2" ~inputs:[ relu2 ] g in
  Kernel.make ~name:"combrelu" ~domain:Kernel.Gcn ~data:"ENZYME graphs"
    ~dfg:g
    ~serial_phis:[ pacc.phi ]
    ~table:(table ~n1:30 ~e1:42 ~r1:4 ~n2:59 ~e2:85 ~r2:7)
    ~iterations:256 ()

(* Global max-pooling over node features, with an argmax side output.
   The running max is a serial recurrence. *)
let pooling =
  let g = Graph.empty in
  let g, ind = induction ~bound:256 g in
  let g, c_base = Graph.add_node ~label:"base" g (Op.Const 2048) in
  let g, gep_f = op ~label:"gep.f" Op.Gep ~inputs:[ ind.phi; c_base ] g in
  let g, ld_f = load ~label:"feat" ~addr:[ gep_f ] g in
  let g, phi_max = Graph.add_node ~label:"max" g Op.Phi in
  let g, is_gt = op ~label:"isgt" (Op.Cmp Op.Gt) ~inputs:[ ld_f; phi_max ] g in
  let g, sel = op ~label:"newmax" Op.Select ~inputs:[ is_gt; ld_f ] g in
  let g, commit = op ~label:"commit" Op.Select ~inputs:[ ind.cmp; sel ] g in
  let g = Graph.add_edge ~distance:1 g commit phi_max in
  let g, _st = store ~label:"pooled" ~inputs:[ commit ] g in
  let g, arg = op ~label:"arg" Op.Select ~inputs:[ is_gt; ind.phi ] g in
  let g, _st2 = store ~label:"argmax" ~inputs:[ arg ] g in
  Kernel.make ~name:"pooling" ~domain:Kernel.Gcn ~data:"ENZYME graphs"
    ~dfg:g
    ~serial_phis:[ phi_max ]
    ~table:(table ~n1:16 ~e1:21 ~r1:4 ~n2:31 ~e2:43 ~r2:7)
    ~iterations:256 ()

let all = [ compress; aggregate; combine; combrelu; pooling ]
