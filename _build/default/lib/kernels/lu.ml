(* The six kernels of the synthesized LU-decomposition streaming
   application (Table I): init, decompose, solver0, solver1, invert,
   determinant.

   The triangular solvers carry long serial recurrences (RecMII 8 and
   12 at unroll 1, 15 and 23 unrolled); determinant's predicated pivot
   product is a length-7 serial cycle; init and decompose carry the
   standard length-4 predicated accumulation; invert is fully
   re-associable. *)

open Iced_dfg
open Builders

let table = Embedded.table

(* Row initialization with a predicated running sum. *)
let init =
  let g = Graph.empty in
  let g, ind = induction ~bound:100 g in
  let g, ld = load ~label:"a" ~addr:[ ind.phi ] g in
  let g, pacc = predicated_accumulator ~pred:ind.cmp ~input:ld g in
  Kernel.make ~name:"init" ~domain:Kernel.Lu ~data:"UFL matrices"
    ~dfg:g
    ~serial_phis:[ pacc.phi ]
    ~table:(table ~n1:11 ~e1:15 ~r1:4 ~n2:21 ~e2:32 ~r2:7)
    ~iterations:100 ()

(* a[i][j] -= a[i][k] * a[k][j], predicated on the pivot column. *)
let decompose =
  let g = Graph.empty in
  let g, ind = induction ~bound:100 g in
  let g, c_n = Graph.add_node ~label:"n" g (Op.Const 100) in
  let g, ld_a = load ~label:"aik" ~addr:[ ind.phi; c_n ] g in
  let g, ld_b = load ~label:"akj" ~addr:[ ind.phi; c_n ] g in
  let g, prod = op ~label:"prod" Op.Mul ~inputs:[ ld_a; ld_b ] g in
  let g, phi_a = Graph.add_node ~label:"aij" g Op.Phi in
  let g, s1 = op ~label:"keep" Op.Select ~inputs:[ ind.cmp; phi_a; c_n ] g in
  let g, sub = op ~label:"update" Op.Sub ~inputs:[ s1; prod ] g in
  let g, s2 = op ~label:"commit" Op.Select ~inputs:[ ind.cmp; sub; phi_a ] g in
  let g = Graph.add_edge ~distance:1 g s2 phi_a in
  let g, _st = store ~label:"aout" ~inputs:[ s2; ind.phi; c_n ] g in
  Kernel.make ~name:"decompose" ~domain:Kernel.Lu ~data:"UFL matrices"
    ~dfg:g
    ~unroll_shared:[ c_n; ld_b ]
    ~serial_phis:[ phi_a ]
    ~table:(table ~n1:15 ~e1:25 ~r1:4 ~n2:27 ~e2:50 ~r2:7)
    ~iterations:100 ()

(* Forward substitution: a length-8 serial recurrence through gate,
   multiply, subtract, divide, add, multiply, and commit. *)
let solver0 =
  let g = Graph.empty in
  let g, ind = induction ~bound:100 g in
  let g, c_n = Graph.add_node ~label:"n" g (Op.Const 100) in
  let g, row = op ~label:"row" Op.Mul ~inputs:[ ind.phi; c_n ] g in
  let g, gep1 = op ~label:"gep.l" Op.Gep ~inputs:[ row ] g in
  let g, ld1 = load ~label:"l" ~addr:[ gep1 ] g in
  let g, gep_b = op ~label:"gep.b" Op.Gep ~inputs:[ ind.phi ] g in
  let g, ld_b = load ~label:"b" ~addr:[ gep_b ] g in
  let g, gep_d = op ~label:"gep.d" Op.Gep ~inputs:[ row ] g in
  let g, ld_d = load ~label:"diag" ~addr:[ gep_d ] g in
  let g, gep2 = op ~label:"gep.u" Op.Gep ~inputs:[ row ] g in
  let g, ld2 = load ~label:"u" ~addr:[ gep2 ] g in
  let g, phi_s = Graph.add_node ~label:"x" g Op.Phi in
  let g, g1 = op ~label:"gate" Op.Select ~inputs:[ ind.cmp; phi_s ] g in
  let g, m1 = op ~label:"m1" Op.Mul ~inputs:[ g1; ld1 ] g in
  let g, sb = op ~label:"sb" Op.Sub ~inputs:[ m1; ld_b ] g in
  let g, dv = op ~label:"dv" Op.Div ~inputs:[ sb; ld_d ] g in
  let g, a2 = op ~label:"a2" Op.Add ~inputs:[ dv; ld2 ] g in
  let g, m2 = op ~label:"m2" Op.Mul ~inputs:[ a2; ld1 ] g in
  let g, cm = op ~label:"commit" Op.Select ~inputs:[ ind.cmp; m2 ] g in
  let g = Graph.add_edge ~distance:1 g cm phi_s in
  let g, _st = store ~label:"x" ~inputs:[ cm; ind.phi ] g in
  (* residual lane *)
  let g, ld3 = load ~label:"r" ~addr:[ row; gep1 ] g in
  let g, m3 = op ~label:"m3" Op.Mul ~inputs:[ ld3; dv ] g in
  let g, acc3 = accumulator ~input:m3 g in
  let g, _st2 = store ~label:"res" ~inputs:[ acc3.add; ind.phi ] g in
  let g, is_z = op ~label:"isz" (Op.Cmp Op.Ne) ~inputs:[ ld_d ] g in
  let g, safe = op ~label:"safe" Op.Select ~inputs:[ is_z; dv ] g in
  let g, _st3 = store ~label:"xsafe" ~inputs:[ safe; row; dv ] g in
  Kernel.make ~name:"solver0" ~domain:Kernel.Lu ~data:"UFL matrices"
    ~dfg:g
    ~serial_phis:[ phi_s ]
    ~table:(table ~n1:33 ~e1:49 ~r1:8 ~n2:65 ~e2:98 ~r2:15)
    ~iterations:100 ()

(* Backward substitution: a length-12 serial recurrence. *)
let solver1 =
  let g = Graph.empty in
  let g, ind = induction ~bound:100 g in
  let g, c_n = Graph.add_node ~label:"n" g (Op.Const 100) in
  let g, row = op ~label:"row" Op.Mul ~inputs:[ ind.phi; c_n ] g in
  let g, gep1 = op ~label:"gep.u" Op.Gep ~inputs:[ row ] g in
  let g, ld1 = load ~label:"u" ~addr:[ gep1 ] g in
  let g, gep_b = op ~label:"gep.b" Op.Gep ~inputs:[ ind.phi ] g in
  let g, ld_b = load ~label:"b" ~addr:[ gep_b ] g in
  let g, gep_d = op ~label:"gep.d" Op.Gep ~inputs:[ row ] g in
  let g, ld_d = load ~label:"diag" ~addr:[ gep_d ] g in
  let g, gep2 = op ~label:"gep.l" Op.Gep ~inputs:[ row ] g in
  let g, ld2 = load ~label:"l" ~addr:[ gep2; c_n ] g in
  let g, phi_s = Graph.add_node ~label:"x" g Op.Phi in
  let g, g1 = op ~label:"gate" Op.Select ~inputs:[ ind.cmp; phi_s ] g in
  let g, m1 = op ~label:"m1" Op.Mul ~inputs:[ g1; ld1 ] g in
  let g, s1 = op ~label:"s1" Op.Sub ~inputs:[ m1; ld_b ] g in
  let g, d1 = op ~label:"d1" Op.Div ~inputs:[ s1; ld_d ] g in
  let g, a1 = op ~label:"a1" Op.Add ~inputs:[ d1; ld2 ] g in
  let g, m2 = op ~label:"m2" Op.Mul ~inputs:[ a1; ld1 ] g in
  let g, s2b = op ~label:"s2" Op.Sub ~inputs:[ m2; ld_b ] g in
  let g, a2 = op ~label:"a2" Op.Add ~inputs:[ s2b; ld2 ] g in
  let g, m3 = op ~label:"m3" Op.Mul ~inputs:[ a2; ld_d ] g in
  let g, x1 = op ~label:"x1" Op.Xor ~inputs:[ m3; ld1 ] g in
  let g, cm = op ~label:"commit" Op.Select ~inputs:[ ind.cmp; x1 ] g in
  let g = Graph.add_edge ~distance:1 g cm phi_s in
  let g, _st = store ~label:"x" ~inputs:[ cm; ind.phi ] g in
  (* residual lane *)
  let g, ld3 = load ~label:"r" ~addr:[ row ] g in
  let g, m4 = op ~label:"m4" Op.Mul ~inputs:[ ld3; d1 ] g in
  let g, acc3 = accumulator ~input:m4 g in
  let g, is_z = op ~label:"isz" (Op.Cmp Op.Ne) ~inputs:[ ld_d; row ] g in
  let g, _st2 = store ~label:"res" ~inputs:[ acc3.add; ind.phi; is_z ] g in
  Kernel.make ~name:"solver1" ~domain:Kernel.Lu ~data:"UFL matrices"
    ~dfg:g
    ~serial_phis:[ phi_s ]
    ~table:(table ~n1:35 ~e1:54 ~r1:12 ~n2:69 ~e2:108 ~r2:23)
    ~iterations:100 ()

(* Reciprocal of the diagonal with a zero guard; fully parallel. *)
let invert =
  let g = Graph.empty in
  let g, ind = induction ~bound:100 g in
  let g, c_one = Graph.add_node ~label:"one" g (Op.Const 1) in
  let g, ld_a = load ~label:"diag" ~addr:[ ind.phi ] g in
  let g, quot = op ~label:"recip" Op.Div ~inputs:[ c_one; ld_a ] g in
  let g, is_z = op ~label:"isz" (Op.Cmp Op.Ne) ~inputs:[ ld_a; c_one ] g in
  let g, safe = op ~label:"safe" Op.Select ~inputs:[ is_z; quot; c_one ] g in
  let g, acc = accumulator ~input:safe g in
  let g = Graph.add_edge g quot acc.add in
  let g, _st = store ~label:"inv" ~inputs:[ safe; ind.phi; acc.add ] g in
  Kernel.make ~name:"invert" ~domain:Kernel.Lu ~data:"UFL matrices"
    ~dfg:g
    ~unroll_shared:[ c_one; ld_a; quot; is_z ]
    ~table:(table ~n1:14 ~e1:22 ~r1:4 ~n2:24 ~e2:37 ~r2:4)
    ~iterations:100 ()

(* Predicated product of pivots: a length-7 serial recurrence. *)
let determinant =
  let g = Graph.empty in
  let g, ind = induction ~bound:100 g in
  let g, gep = op ~label:"gep.a" Op.Gep ~inputs:[ ind.phi ] g in
  let g, ld_a = load ~label:"a" ~addr:[ gep ] g in
  let g, ld_b = load ~label:"b" ~addr:[ ind.phi; gep ] g in
  let g, ld_c = load ~label:"c" ~addr:[ ind.phi ] g in
  let g, phi_d = Graph.add_node ~label:"det" g Op.Phi in
  let g, g1 = op ~label:"gate" Op.Select ~inputs:[ ind.cmp; phi_d ] g in
  let g, m1 = op ~label:"m1" Op.Mul ~inputs:[ g1; ld_a ] g in
  let g, a1 = op ~label:"a1" Op.Add ~inputs:[ m1; ld_b ] g in
  let g, m2 = op ~label:"m2" Op.Mul ~inputs:[ a1; ld_c ] g in
  let g, x1 = op ~label:"x1" Op.Xor ~inputs:[ m2; ld_a ] g in
  let g, cm = op ~label:"commit" Op.Select ~inputs:[ ind.cmp; x1 ] g in
  let g = Graph.add_edge ~distance:1 g cm phi_d in
  let g, _st = store ~label:"det" ~inputs:[ cm; ind.phi ] g in
  let g, _st2 = store ~label:"trace" ~inputs:[ m1; m2; a1; x1; ind.phi ] g in
  let g, _st3 = store ~label:"pivots" ~inputs:[ g1; cm; ld_b; ind.phi ] g in
  Kernel.make ~name:"determinant" ~domain:Kernel.Lu ~data:"UFL matrices"
    ~dfg:g
    ~unroll_shared:[ gep ]
    ~serial_phis:[ phi_d ]
    ~table:(table ~n1:20 ~e1:36 ~r1:7 ~n2:38 ~e2:71 ~r2:13)
    ~iterations:100 ()

let all = [ init; decompose; solver0; solver1; invert; determinant ]
