(** CGRA fabric geometry: a [rows] x [cols] mesh of tiles clustered into
    DVFS islands.

    Tiles are numbered row-major from 0 at the north-west corner.  Every
    tile holds single-cycle FUs, a register file, configuration memory,
    and a crossbar to its four mesh neighbours; tiles in column 0
    additionally own a port into the data scratchpad (SPM), so [Load]
    and [Store] operations must map there (paper Figure 1: "only the
    leftmost tiles are connected to the scratchpad memory").

    Islands tile the mesh in [island_rows] x [island_cols] blocks,
    numbered row-major over the island grid.  When the island shape does
    not divide the mesh (e.g. 3x3 islands on an 8x8 CGRA), edge islands
    are smaller — the "irregular island shape" case the paper notes in
    Figure 4.  An island size of 1x1 models the per-tile DVFS baseline
    (UE-CGRA style); an island equal to the whole fabric models global
    DVFS. *)

type t = private {
  rows : int;
  cols : int;
  island_rows : int;
  island_cols : int;
  spm_banks : int;
  spm_kbytes : int;
}

val make : ?island:int * int -> ?spm_banks:int -> ?spm_kbytes:int -> rows:int -> cols:int -> unit -> t
(** Build a fabric.  [island] defaults to [(2, 2)] (the ICED
    prototype); [spm_banks] to 8; [spm_kbytes] to 32.
    @raise Invalid_argument on non-positive dimensions or island larger
    than the fabric. *)

val iced_6x6 : t
(** The paper's prototype: 6x6 tiles, nine 2x2 islands, 32 KB / 8-bank
    SPM. *)

val per_tile : t -> t
(** Same fabric with 1x1 islands (the per-tile DVFS baseline). *)

val with_island : t -> int * int -> t
(** Same fabric with a different island shape. *)

val tile_count : t -> int

val tile_id : t -> row:int -> col:int -> int
(** @raise Invalid_argument when out of bounds. *)

val position : t -> int -> int * int
(** (row, col) of a tile id.  @raise Invalid_argument when out of
    bounds. *)

val in_bounds : t -> row:int -> col:int -> bool

val neighbor : t -> int -> Dir.t -> int option
(** Mesh neighbour in a direction, or [None] at the fabric edge. *)

val neighbors : t -> int -> (Dir.t * int) list

val has_memory_port : t -> int -> bool
(** Column-0 tiles reach the SPM. *)

val memory_tiles : t -> int list

val manhattan : t -> int -> int -> int
(** Hop distance between two tiles. *)

val island_count : t -> int

val island_of : t -> int -> int
(** Island id of a tile. *)

val island_tiles : t -> int -> int list
(** Tiles of an island, in increasing id order.
    @raise Invalid_argument on an unknown island. *)

val islands : t -> int list
(** All island ids. *)

val same_island : t -> int -> int -> bool

val restrict : t -> islands:int list -> int list
(** Tiles belonging to the given islands — the sub-fabric a streaming
    kernel is confined to. *)

val pp : Format.formatter -> t -> unit
