lib/arch/cgra.ml: Dir Format List Option
