lib/arch/dir.mli: Format
