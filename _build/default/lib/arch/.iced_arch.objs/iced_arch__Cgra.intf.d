lib/arch/cgra.mli: Dir Format
