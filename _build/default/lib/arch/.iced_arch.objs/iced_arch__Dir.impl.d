lib/arch/dir.ml: Format Int
