lib/arch/dvfs.mli: Format
