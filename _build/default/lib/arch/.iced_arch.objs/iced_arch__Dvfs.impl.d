lib/arch/dvfs.ml: Format Int
