(** DVFS operating levels of an ICED voltage island.

    The prototype supports three active levels plus power-gating
    (paper Section V-A):

    - [Normal]: 0.70 V, 434 MHz (nominal)
    - [Relax] : 0.50 V, 217 MHz (half of normal)
    - [Rest]  : 0.42 V, 108.5 MHz (a quarter of normal)
    - [Power_gated]: island is off

    Frequencies satisfy Eq. 1 of the paper:
    f_normal = 2 * f_relax = 4 * f_rest. *)

type level = Power_gated | Rest | Relax | Normal

val all : level list
(** Slowest (gated) to fastest. *)

val active : level list
(** [Rest; Relax; Normal]. *)

val is_active : level -> bool

val multiplier : level -> int
(** Clock-period multiplier relative to [Normal]: 1, 2, or 4.
    @raise Invalid_argument on [Power_gated]. *)

val of_multiplier : int -> level option
(** Inverse of [multiplier] on 1/2/4. *)

val frequency_mhz : level -> float
(** 434.0 / 217.0 / 108.5 / 0.0. *)

val voltage : level -> float
(** 0.70 / 0.50 / 0.42 / 0.0. *)

val fraction : level -> float
(** The "average DVFS level" weight of Figures 10 and 12: normal 1.0,
    relax 0.5, rest 0.25, power-gated 0.0. *)

val faster : level -> level -> bool
(** [faster a b] iff [a] runs at a strictly higher frequency. *)

val at_most : level -> level -> bool
(** [at_most a b]: level [a] is no faster than [b] — the mapper's
    constraint that a node labeled [a] may use an island assigned [b]
    only when [a <= b] in speed (Algorithm 2, line 17). *)

val step_up : level -> level
(** One level faster, saturating at [Normal].  Power-gated islands wake
    to [Rest]. *)

val step_down : ?floor:level -> level -> level
(** One level slower, saturating at [floor] (default [Rest]; streaming
    mode never gates an allocated island). *)

val to_string : level -> string
val pp : Format.formatter -> level -> unit
val compare : level -> level -> int
(** Orders by speed: [Power_gated] < [Rest] < [Relax] < [Normal]. *)
