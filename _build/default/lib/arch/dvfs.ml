type level = Power_gated | Rest | Relax | Normal

let all = [ Power_gated; Rest; Relax; Normal ]
let active = [ Rest; Relax; Normal ]

let is_active = function Power_gated -> false | Rest | Relax | Normal -> true

let multiplier = function
  | Normal -> 1
  | Relax -> 2
  | Rest -> 4
  | Power_gated -> invalid_arg "Dvfs.multiplier: power-gated island has no clock"

let of_multiplier = function 1 -> Some Normal | 2 -> Some Relax | 4 -> Some Rest | _ -> None

let frequency_mhz = function
  | Normal -> 434.0
  | Relax -> 217.0
  | Rest -> 108.5
  | Power_gated -> 0.0

let voltage = function
  | Normal -> 0.70
  | Relax -> 0.50
  | Rest -> 0.42
  | Power_gated -> 0.0

let fraction = function Normal -> 1.0 | Relax -> 0.5 | Rest -> 0.25 | Power_gated -> 0.0

let rank = function Power_gated -> 0 | Rest -> 1 | Relax -> 2 | Normal -> 3

let compare a b = Int.compare (rank a) (rank b)

let faster a b = rank a > rank b

let at_most a b = rank a <= rank b

let step_up = function
  | Power_gated -> Rest
  | Rest -> Relax
  | Relax -> Normal
  | Normal -> Normal

let step_down ?(floor = Rest) level =
  let lowered =
    match level with
    | Normal -> Relax
    | Relax -> Rest
    | Rest -> Rest
    | Power_gated -> Power_gated
  in
  if rank lowered < rank floor then floor else lowered

let to_string = function
  | Power_gated -> "power-gated"
  | Rest -> "rest"
  | Relax -> "relax"
  | Normal -> "normal"

let pp fmt level = Format.pp_print_string fmt (to_string level)
