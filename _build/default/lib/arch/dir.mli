(** Mesh directions of the CGRA interconnect. *)

type t = North | South | East | West

val all : t list

val opposite : t -> t

val offset : t -> int * int
(** (row delta, col delta); North decreases the row index. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
