type t = {
  rows : int;
  cols : int;
  island_rows : int;
  island_cols : int;
  spm_banks : int;
  spm_kbytes : int;
}

let make ?(island = (2, 2)) ?(spm_banks = 8) ?(spm_kbytes = 32) ~rows ~cols () =
  let island_rows, island_cols = island in
  if rows <= 0 || cols <= 0 then invalid_arg "Cgra.make: non-positive fabric size";
  if island_rows <= 0 || island_cols <= 0 then invalid_arg "Cgra.make: non-positive island size";
  if island_rows > rows || island_cols > cols then
    invalid_arg "Cgra.make: island larger than fabric";
  if spm_banks <= 0 || spm_kbytes <= 0 then invalid_arg "Cgra.make: non-positive SPM size";
  { rows; cols; island_rows; island_cols; spm_banks; spm_kbytes }

let iced_6x6 = make ~rows:6 ~cols:6 ()

let per_tile t = { t with island_rows = 1; island_cols = 1 }

let with_island t (island_rows, island_cols) =
  make ~island:(island_rows, island_cols) ~spm_banks:t.spm_banks ~spm_kbytes:t.spm_kbytes
    ~rows:t.rows ~cols:t.cols ()

let tile_count t = t.rows * t.cols

let in_bounds t ~row ~col = row >= 0 && row < t.rows && col >= 0 && col < t.cols

let tile_id t ~row ~col =
  if not (in_bounds t ~row ~col) then invalid_arg "Cgra.tile_id: out of bounds";
  (row * t.cols) + col

let position t id =
  if id < 0 || id >= tile_count t then invalid_arg "Cgra.position: out of bounds";
  (id / t.cols, id mod t.cols)

let neighbor t id dir =
  let row, col = position t id in
  let dr, dc = Dir.offset dir in
  let row = row + dr and col = col + dc in
  if in_bounds t ~row ~col then Some (tile_id t ~row ~col) else None

let neighbors t id =
  List.filter_map (fun dir -> Option.map (fun n -> (dir, n)) (neighbor t id dir)) Dir.all

let has_memory_port t id =
  let _, col = position t id in
  col = 0

let memory_tiles t = List.init t.rows (fun row -> tile_id t ~row ~col:0)

let manhattan t a b =
  let ra, ca = position t a and rb, cb = position t b in
  abs (ra - rb) + abs (ca - cb)

let island_grid_cols t = (t.cols + t.island_cols - 1) / t.island_cols
let island_grid_rows t = (t.rows + t.island_rows - 1) / t.island_rows

let island_count t = island_grid_rows t * island_grid_cols t

let island_of t id =
  let row, col = position t id in
  ((row / t.island_rows) * island_grid_cols t) + (col / t.island_cols)

let islands t = List.init (island_count t) (fun i -> i)

let island_tiles t island =
  if island < 0 || island >= island_count t then invalid_arg "Cgra.island_tiles: unknown island";
  List.filter (fun id -> island_of t id = island) (List.init (tile_count t) (fun i -> i))

let same_island t a b = island_of t a = island_of t b

let restrict t ~islands:wanted =
  List.filter (fun id -> List.mem (island_of t id) wanted) (List.init (tile_count t) (fun i -> i))

let pp fmt t =
  Format.fprintf fmt "%dx%d CGRA, %dx%d islands (%d), %d KB SPM / %d banks" t.rows t.cols
    t.island_rows t.island_cols (island_count t) t.spm_kbytes t.spm_banks
