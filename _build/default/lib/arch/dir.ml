type t = North | South | East | West

let all = [ North; South; East; West ]

let opposite = function North -> South | South -> North | East -> West | West -> East

let offset = function North -> (-1, 0) | South -> (1, 0) | East -> (0, 1) | West -> (0, -1)

let to_string = function North -> "N" | South -> "S" | East -> "E" | West -> "W"

let pp fmt d = Format.pp_print_string fmt (to_string d)

let compare a b =
  let rank = function North -> 0 | South -> 1 | East -> 2 | West -> 3 in
  Int.compare (rank a) (rank b)
