(** DFG transforms applied before mapping: loop unrolling and dead-code
    elimination.

    Unrolling models what the paper's LLVM front-end does to the loop
    body.  Two behaviours are supported, because Table I shows both:

    - {b re-associated reductions}: accumulator recurrences through
      associative operations are split into [factor] parallel partial
      accumulators, so RecMII does not grow (fir, latnrm, conv, ...);
    - {b serial recurrences}: non-reassociable loop-carried chains are
      unrolled by SSA renaming — the [Phi] of every copy but the first
      is elided and its consumers take the previous copy's producer
      directly, so a cycle of length L and distance 1 becomes a cycle of
      length [factor]*L - ([factor]-1) (spmv and gemm: 4 -> 7). *)

type spec = {
  factor : int;  (** unroll factor; 1 = identity *)
  shared : int list;
      (** node ids instantiated once rather than per copy: induction
          variables, loop-invariant address math, constants *)
  serial_phis : int list;
      (** phis whose recurrence must stay serial (non-reassociable
          loop-carried dependences): their copies beyond the first are
          elided by SSA renaming, chaining the cycle through every
          copy.  All other phis are duplicated into independent
          per-copy recurrences (re-associated reductions / wavefront
          parallelism), keeping RecMII flat. *)
}

val unroll : Graph.t -> spec:spec -> Graph.t
(** Unroll the loop body.  @raise Invalid_argument if [factor < 1] or
    the graph fails [Graph.validate]. *)

val dead_code_eliminate : Graph.t -> keep:int list -> Graph.t
(** Remove nodes from which no node in [keep] (nor any [Store]) is
    reachable through any edge. *)
