(** The dataflow graph (DFG) of an application kernel.

    Nodes are operations; edges are data dependencies.  An edge carries
    an iteration [distance]: 0 for an intra-iteration dependence, d > 0
    for a loop-carried dependence consumed d iterations later.  Control
    flow has already been converted to dataflow via partial predication
    (paper Section IV), so predicates appear as ordinary [Select]/[Cmp]
    data inputs.

    The intra-iteration (distance-0) subgraph must be acyclic; every
    cycle of the full graph therefore crosses at least one loop-carried
    edge and contributes to the recurrence-constrained minimum
    initiation interval (RecMII). *)

type node = { id : int; op : Op.t; label : string }

type edge = { src : int; dst : int; distance : int }

type t

val empty : t

val add_node : ?label:string -> t -> Op.t -> t * int
(** Allocate a fresh node; returns the graph and the node id. *)

val add_edge : ?distance:int -> t -> int -> int -> t
(** [add_edge g src dst] adds a dependence.  Duplicate edges (same
    endpoints and distance) are ignored.  @raise Invalid_argument if an
    endpoint does not exist or [distance < 0]. *)

val remove_node : t -> int -> t
(** Remove a node and all incident edges.  Unknown ids are ignored. *)

val node_count : t -> int
val edge_count : t -> int

val nodes : t -> node list
(** In increasing id order. *)

val edges : t -> edge list

val node : t -> int -> node
(** @raise Not_found on unknown id. *)

val mem_node : t -> int -> bool

val successors : t -> int -> edge list
(** All outgoing edges (any distance). *)

val predecessors : t -> int -> edge list
(** All incoming edges (any distance). *)

val intra_successors : t -> int -> int list
(** Distance-0 successors only. *)

val intra_predecessors : t -> int -> int list

val map_ids : t -> f:(int -> int) -> t
(** Renumber nodes with an injective function; used by transforms. *)

val node_ids : t -> int list

val intra_topological : t -> int list option
(** Topological order of the distance-0 subgraph (Kahn), or [None] if
    that subgraph is cyclic. *)

val validate : t -> (unit, string) result
(** Check structural invariants: edges reference live nodes, the
    distance-0 subgraph is acyclic, [Phi] nodes have at least one
    loop-carried input once they have any input. *)

val pp : Format.formatter -> t -> unit
(** Compact human-readable dump (one line per node with fan-out). *)
