type spec = { factor : int; shared : int list; serial_phis : int list }

(* Instance bookkeeping for unrolling.  Instance (old_id, k) is the k-th
   copy of node [old_id]; shared nodes collapse every k to copy 0, and
   (in serial mode) phi copies k > 0 are elided entirely, their value
   being forwarded from the carried producer of the previous copy. *)

let unroll g ~spec =
  if spec.factor < 1 then invalid_arg "Transform.unroll: factor < 1";
  (match Graph.validate g with
  | Error msg -> invalid_arg ("Transform.unroll: invalid input graph: " ^ msg)
  | Ok () -> ());
  if spec.factor = 1 then g
  else begin
    let f = spec.factor in
    let is_shared id = List.mem id spec.shared in
    let is_phi id = (Graph.node g id).op = Op.Phi in
    (* A serial phi is elided (SSA renaming chains the copies, growing
       the recurrence); any other phi keeps one copy per unrolled body,
       forming [f] independent (re-associated / wavefront-parallel)
       recurrences. *)
    let elide_phi id = List.mem id spec.serial_phis && is_phi id && not (is_shared id) in
    let carried_input id =
      List.find_opt (fun (e : Graph.edge) -> e.distance > 0) (Graph.predecessors g id)
    in
    (* Allocate instances. *)
    let instance = Hashtbl.create 64 in
    let out = ref Graph.empty in
    let alloc old_id k =
      let n = Graph.node g old_id in
      let label = if f = 1 || (is_shared old_id) then n.label else Printf.sprintf "%s.%d" n.label k in
      let g', id = Graph.add_node ~label !out n.op in
      out := g';
      Hashtbl.replace instance (old_id, k) id
    in
    List.iter
      (fun old_id ->
        if is_shared old_id then alloc old_id 0
        else if elide_phi old_id then alloc old_id 0
        else
          for k = 0 to f - 1 do
            alloc old_id k
          done)
      (Graph.node_ids g);
    (* Resolve the producer instance for old node [id] at copy offset
       [k] (which may be negative, i.e. a previous unrolled iteration).
       Returns (new_id, extra_distance in unrolled iterations).  Elided
       phis forward to their carried input recursively. *)
    let rec resolve id k fuel =
      if fuel = 0 then
        (* Pathological chain of elided phis: fall back to the retained
           copy-0 instance with a one-iteration distance. *)
        (Hashtbl.find instance (id, 0), 1)
      else begin
        let block = if k >= 0 then 0 else -((-k + f - 1) / f) in
        let k_in_block = k - (block * f) in
        let extra = -block in
        if is_shared id then (Hashtbl.find instance (id, 0), extra)
        else if elide_phi id && k_in_block > 0 then
          match carried_input id with
          | None -> (Hashtbl.find instance (id, 0), extra)
          | Some e ->
            let producer, inner_extra = resolve e.src (k - e.distance) (fuel - 1) in
            (producer, inner_extra)
        else (Hashtbl.find instance (id, k_in_block), extra)
      end
    in
    (* Re-create edges. *)
    List.iter
      (fun (e : Graph.edge) ->
        let consumer_copies =
          if is_shared e.dst || elide_phi e.dst then [ 0 ] else List.init f (fun k -> k)
        in
        List.iter
          (fun k ->
            let dst_inst = Hashtbl.find instance (e.dst, k) in
            if
              e.distance > 0 && is_phi e.dst
              && not (is_shared e.dst)
              && not (List.mem e.dst spec.serial_phis)
            then begin
              (* Parallel accumulators: each copy closes its own cycle
                 with the original distance. *)
              let src_inst, extra = resolve e.src k 8 in
              out := Graph.add_edge ~distance:(e.distance + extra) !out src_inst dst_inst
            end
            else begin
              let src_inst, extra = resolve e.src (k - e.distance) 8 in
              let distance = extra in
              (* Shared consumers (e.g. a reduction store) read the last
                 copy's producer; copies beyond 0 were skipped above, so
                 read from copy f-1 for carried inputs and every copy
                 for intra inputs. *)
              if is_shared e.dst && e.distance = 0 then
                for k' = 0 to f - 1 do
                  let src_inst, extra = resolve e.src k' 8 in
                  ignore extra;
                  out := Graph.add_edge ~distance:0 !out src_inst dst_inst
                done
              else out := Graph.add_edge ~distance !out src_inst dst_inst
            end)
          consumer_copies)
      (Graph.edges g);
    !out
  end

let dead_code_eliminate g ~keep =
  let roots =
    keep
    @ List.filter_map
        (fun (n : Graph.node) -> if n.op = Op.Store then Some n.id else None)
        (Graph.nodes g)
  in
  let live = Hashtbl.create 64 in
  let rec mark id =
    if not (Hashtbl.mem live id) then begin
      Hashtbl.add live id ();
      List.iter (fun (e : Graph.edge) -> mark e.src) (Graph.predecessors g id)
    end
  in
  List.iter (fun id -> if Graph.mem_node g id then mark id) roots;
  List.fold_left
    (fun acc id -> if Hashtbl.mem live id then acc else Graph.remove_node acc id)
    g (Graph.node_ids g)
