lib/dfg/analysis.mli: Graph
