lib/dfg/dot.ml: Analysis Buffer Fun Graph List Op Printf
