lib/dfg/analysis.ml: Graph Hashtbl List Op
