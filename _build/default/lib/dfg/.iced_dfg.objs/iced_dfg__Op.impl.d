lib/dfg/op.ml: Format Printf
