lib/dfg/transform.ml: Graph Hashtbl List Op Printf
