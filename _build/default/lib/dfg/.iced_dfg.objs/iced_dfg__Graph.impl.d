lib/dfg/graph.ml: Format Hashtbl Int List Map Op Printf String
