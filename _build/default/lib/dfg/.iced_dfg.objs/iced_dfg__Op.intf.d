lib/dfg/op.mli: Format
