(** DFG analyses used by the mapper: recurrence cycles, minimum
    initiation intervals, schedule levels, and critical nodes. *)

type cycle = {
  members : int list;  (** node ids along the cycle, in traversal order *)
  length : int;  (** total latency around the cycle *)
  distance : int;  (** total loop-carried distance around the cycle *)
}

val recurrence_cycles : ?max_cycles:int -> Graph.t -> cycle list
(** Enumerate elementary cycles of the DFG.  Every cycle crosses at
    least one loop-carried edge (the intra-iteration subgraph is
    acyclic).  Enumeration is capped at [max_cycles] (default 4096) to
    bound pathological graphs; the kernels in this repository are far
    below the cap. *)

val cycle_mii : cycle -> int
(** ceil(length / distance): the II lower bound this cycle imposes. *)

val rec_mii : Graph.t -> int
(** Recurrence-constrained minimum II: max over recurrence cycles of
    [cycle_mii], at least 1. *)

val res_mii : Graph.t -> tiles:int -> int
(** Resource-constrained minimum II: ceil(#nodes / #tiles), at least 1.
    @raise Invalid_argument if [tiles <= 0]. *)

val min_ii : Graph.t -> tiles:int -> int
(** max(RecMII, ResMII). *)

val critical_nodes : Graph.t -> int list
(** Nodes on a recurrence cycle whose [cycle_mii] equals the RecMII —
    the nodes Algorithm 1 pins at the [normal] DVFS level and that the
    mapper must not slow down. *)

val secondary_cycle_nodes : Graph.t -> int list
(** Nodes on recurrence cycles of length at most half the longest
    cycle's length (and not critical) — labeled [relax] by
    Algorithm 1. *)

val asap : Graph.t -> (int * int) list
(** ASAP level per node over the distance-0 subgraph (sources at 0).
    @raise Invalid_argument if the intra subgraph is cyclic. *)

val alap : Graph.t -> (int * int) list
(** ALAP level per node (same depth scale as [asap]). *)

val depth : Graph.t -> int
(** Longest distance-0 path length in nodes (ASAP max + 1); 0 for the
    empty graph. *)
