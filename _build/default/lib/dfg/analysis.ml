type cycle = { members : int list; length : int; distance : int }

(* Elementary-cycle enumeration.  We run a DFS from each node s,
   restricted to nodes with id >= s (so each cycle is found exactly once,
   rooted at its smallest id), tracking the on-stack set.  The DFGs in
   this repository are small (< 150 nodes) and have few cycles, so the
   classic Johnson blocking machinery is unnecessary; a global cap keeps
   adversarial inputs (property tests) bounded. *)
let recurrence_cycles ?(max_cycles = 4096) g =
  let found = ref [] in
  let count = ref 0 in
  let latency id = Op.latency (Graph.node g id).op in
  let explore root =
    let on_stack = Hashtbl.create 16 in
    let rec dfs id path_rev length distance =
      if !count >= max_cycles then ()
      else
        List.iter
          (fun (e : Graph.edge) ->
            let next = e.dst in
            if next = root then begin
              let total_distance = distance + e.distance in
              if total_distance > 0 && !count < max_cycles then begin
                incr count;
                found :=
                  { members = List.rev path_rev; length; distance = total_distance } :: !found
              end
            end
            else if next > root && not (Hashtbl.mem on_stack next) then begin
              Hashtbl.add on_stack next ();
              dfs next (next :: path_rev) (length + latency next) (distance + e.distance);
              Hashtbl.remove on_stack next
            end)
          (Graph.successors g id)
    in
    Hashtbl.add on_stack root ();
    dfs root [ root ] (latency root) 0;
    Hashtbl.remove on_stack root
  in
  List.iter explore (Graph.node_ids g);
  List.rev !found

let cycle_mii c =
  if c.distance <= 0 then invalid_arg "Analysis.cycle_mii: zero-distance cycle";
  (c.length + c.distance - 1) / c.distance

let rec_mii g =
  List.fold_left (fun acc c -> max acc (cycle_mii c)) 1 (recurrence_cycles g)

let res_mii g ~tiles =
  if tiles <= 0 then invalid_arg "Analysis.res_mii: tiles must be positive";
  max 1 ((Graph.node_count g + tiles - 1) / tiles)

let min_ii g ~tiles = max (rec_mii g) (res_mii g ~tiles)

let dedup ids = List.sort_uniq compare ids

let critical_nodes g =
  let cycles = recurrence_cycles g in
  let mii = List.fold_left (fun acc c -> max acc (cycle_mii c)) 1 cycles in
  cycles
  |> List.filter (fun c -> cycle_mii c = mii)
  |> List.concat_map (fun c -> c.members)
  |> dedup

let secondary_cycle_nodes g =
  let cycles = recurrence_cycles g in
  match cycles with
  | [] -> []
  | _ ->
    let longest = List.fold_left (fun acc c -> max acc c.length) 0 cycles in
    let critical = critical_nodes g in
    cycles
    |> List.filter (fun c -> c.length * 2 <= longest)
    |> List.concat_map (fun c -> c.members)
    |> List.filter (fun id -> not (List.mem id critical))
    |> dedup

let asap g =
  match Graph.intra_topological g with
  | None -> invalid_arg "Analysis.asap: cyclic intra subgraph"
  | Some order ->
    let level = Hashtbl.create 64 in
    List.iter
      (fun id ->
        let preds = Graph.intra_predecessors g id in
        let lvl =
          List.fold_left (fun acc p -> max acc (Hashtbl.find level p + 1)) 0 preds
        in
        Hashtbl.replace level id lvl)
      order;
    List.map (fun id -> (id, Hashtbl.find level id)) (Graph.node_ids g)

let depth g =
  match asap g with
  | [] -> 0
  | levels -> 1 + List.fold_left (fun acc (_, l) -> max acc l) 0 levels

let alap g =
  match Graph.intra_topological g with
  | None -> invalid_arg "Analysis.alap: cyclic intra subgraph"
  | Some order ->
    let max_level = depth g - 1 in
    let level = Hashtbl.create 64 in
    List.iter
      (fun id ->
        let succs = Graph.intra_successors g id in
        let lvl =
          List.fold_left (fun acc s -> min acc (Hashtbl.find level s - 1)) max_level succs
        in
        Hashtbl.replace level id lvl)
      (List.rev order);
    List.map (fun id -> (id, Hashtbl.find level id)) (Graph.node_ids g)
