(** Graphviz export of DFGs, for debugging mappings and documenting
    kernels.  Loop-carried edges are dashed and annotated with their
    distance; critical (RecMII) nodes are highlighted. *)

val to_string : ?name:string -> Graph.t -> string
(** Render as a [digraph].  [name] defaults to "dfg". *)

val write_file : path:string -> Graph.t -> unit
(** Write [to_string] output to [path]. *)
