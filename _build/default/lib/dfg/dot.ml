let to_string ?(name = "dfg") g =
  let buf = Buffer.create 1024 in
  let critical = Analysis.critical_nodes g in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun (n : Graph.node) ->
      let color = if List.mem n.id critical then ", style=filled, fillcolor=palegreen" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\n%s\"%s];\n" n.id n.label (Op.to_string n.op) color))
    (Graph.nodes g);
  List.iter
    (fun (e : Graph.edge) ->
      if e.distance = 0 then
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" e.src e.dst)
      else
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [style=dashed, label=\"d=%d\"];\n" e.src e.dst
             e.distance))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ~path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))
