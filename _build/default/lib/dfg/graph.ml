module Int_map = Map.Make (Int)

type node = { id : int; op : Op.t; label : string }

type edge = { src : int; dst : int; distance : int }

type t = {
  nodes : node Int_map.t;
  succ : edge list Int_map.t; (* keyed by src, edges in insertion order *)
  pred : edge list Int_map.t; (* keyed by dst *)
  next_id : int;
}

let empty = { nodes = Int_map.empty; succ = Int_map.empty; pred = Int_map.empty; next_id = 0 }

let add_node ?label g op =
  let id = g.next_id in
  let label = match label with Some l -> l | None -> Printf.sprintf "n%d" id in
  let node = { id; op; label } in
  ({ g with nodes = Int_map.add id node g.nodes; next_id = id + 1 }, id)

let mem_node g id = Int_map.mem id g.nodes

let edges_of map id = match Int_map.find_opt id map with Some es -> es | None -> []

let successors g id = edges_of g.succ id
let predecessors g id = edges_of g.pred id

let mem_edge g e =
  List.exists (fun e' -> e'.dst = e.dst && e'.distance = e.distance) (successors g e.src)

let add_edge ?(distance = 0) g src dst =
  if distance < 0 then invalid_arg "Graph.add_edge: negative distance";
  if not (mem_node g src) then invalid_arg "Graph.add_edge: unknown src";
  if not (mem_node g dst) then invalid_arg "Graph.add_edge: unknown dst";
  let e = { src; dst; distance } in
  if mem_edge g e then g
  else
    {
      g with
      succ = Int_map.add src (edges_of g.succ src @ [ e ]) g.succ;
      pred = Int_map.add dst (edges_of g.pred dst @ [ e ]) g.pred;
    }

let remove_node g id =
  if not (mem_node g id) then g
  else
    let drop edges = List.filter (fun e -> e.src <> id && e.dst <> id) edges in
    {
      g with
      nodes = Int_map.remove id g.nodes;
      succ = Int_map.map drop (Int_map.remove id g.succ);
      pred = Int_map.map drop (Int_map.remove id g.pred);
    }

let node_count g = Int_map.cardinal g.nodes

let edges g =
  Int_map.fold (fun _ es acc -> acc @ es) g.succ []

let edge_count g = List.length (edges g)

let nodes g = List.map snd (Int_map.bindings g.nodes)

let node_ids g = List.map fst (Int_map.bindings g.nodes)

let node g id =
  match Int_map.find_opt id g.nodes with Some n -> n | None -> raise Not_found

let intra_successors g id =
  List.filter_map (fun e -> if e.distance = 0 then Some e.dst else None) (successors g id)

let intra_predecessors g id =
  List.filter_map (fun e -> if e.distance = 0 then Some e.src else None) (predecessors g id)

let map_ids g ~f =
  let remap_edge e = { e with src = f e.src; dst = f e.dst } in
  let remap_node n = { n with id = f n.id } in
  let nodes =
    Int_map.fold (fun id n acc -> Int_map.add (f id) (remap_node n) acc) g.nodes Int_map.empty
  in
  let remap_edges key_of map =
    Int_map.fold
      (fun _ es acc ->
        List.fold_left
          (fun acc e ->
            let e = remap_edge e in
            let key = key_of e in
            let existing = match Int_map.find_opt key acc with Some l -> l | None -> [] in
            Int_map.add key (existing @ [ e ]) acc)
          acc es)
      map Int_map.empty
  in
  let next_id = Int_map.fold (fun id _ acc -> max acc (id + 1)) nodes 0 in
  {
    nodes;
    succ = remap_edges (fun e -> e.src) g.succ;
    pred = remap_edges (fun e -> e.dst) g.pred;
    next_id;
  }

(* Kahn's algorithm restricted to distance-0 edges; returns None when the
   intra-iteration subgraph contains a cycle. *)
let intra_topological g =
  let in_degree = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_degree id 0) (node_ids g);
  List.iter
    (fun (e : edge) ->
      if e.distance = 0 then
        Hashtbl.replace in_degree e.dst (Hashtbl.find in_degree e.dst + 1))
    (edges g);
  let ready =
    List.filter (fun id -> Hashtbl.find in_degree id = 0) (node_ids g)
  in
  let rec drain ready acc count =
    match ready with
    | [] -> (List.rev acc, count)
    | id :: rest ->
      let new_ready =
        List.fold_left
          (fun ready succ_id ->
            let d = Hashtbl.find in_degree succ_id - 1 in
            Hashtbl.replace in_degree succ_id d;
            if d = 0 then succ_id :: ready else ready)
          rest (intra_successors g id)
      in
      drain new_ready (id :: acc) (count + 1)
  in
  let order, count = drain ready [] 0 in
  if count = node_count g then Some order else None

let validate g =
  let check_edges () =
    List.fold_left
      (fun acc (e : edge) ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          if not (mem_node g e.src) then Error (Printf.sprintf "edge src %d missing" e.src)
          else if not (mem_node g e.dst) then
            Error (Printf.sprintf "edge dst %d missing" e.dst)
          else Ok ())
      (Ok ()) (edges g)
  in
  match check_edges () with
  | Error _ as err -> err
  | Ok () -> (
    match intra_topological g with
    | None -> Error "intra-iteration subgraph is cyclic"
    | Some _ ->
      let phi_ok n =
        n.op <> Op.Phi
        || predecessors g n.id = []
        || List.exists (fun e -> e.distance > 0) (predecessors g n.id)
      in
      (match List.find_opt (fun n -> not (phi_ok n)) (nodes g) with
      | Some n -> Error (Printf.sprintf "phi node %d has inputs but no loop-carried input" n.id)
      | None -> Ok ()))

let pp fmt g =
  let pp_node n =
    let outs =
      List.map
        (fun e ->
          if e.distance = 0 then string_of_int e.dst
          else Printf.sprintf "%d[d=%d]" e.dst e.distance)
        (successors g n.id)
    in
    Format.fprintf fmt "%s: %s -> {%s}@." n.label (Op.to_string n.op) (String.concat ", " outs)
  in
  Format.fprintf fmt "dfg (%d nodes, %d edges)@." (node_count g) (edge_count g);
  List.iter pp_node (nodes g)
