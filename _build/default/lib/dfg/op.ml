type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Cmp of cmp
  | Select
  | Phi
  | Load
  | Store
  | Const of int
  | Gep
  | Route

let needs_memory = function Load | Store -> true | _ -> false

let is_associative = function Add | Mul | And | Or | Xor -> true | _ -> false

let latency _ = 1

let cmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Cmp c -> "cmp." ^ cmp_to_string c
  | Select -> "select"
  | Phi -> "phi"
  | Load -> "load"
  | Store -> "store"
  | Const n -> Printf.sprintf "const(%d)" n
  | Gep -> "gep"
  | Route -> "route"

let pp fmt op = Format.pp_print_string fmt (to_string op)

let all_basic =
  [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Cmp Lt; Select; Phi; Load; Store; Gep ]
