(** Operation set of the ICED dataflow graph.

    Each DFG node carries one operation, corresponding to one LLVM
    instruction in the paper's toolchain.  ICED targets single-cycle
    functional units, so every operation has unit latency at the tile's
    local clock; DVFS stretches the local clock, not the op latency. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Cmp of cmp
  | Select  (** partial predication: select between two inputs by a predicate *)
  | Phi  (** loop-header merge of initial and loop-carried value *)
  | Load  (** scratchpad read: must map to an SPM-connected tile *)
  | Store  (** scratchpad write: must map to an SPM-connected tile *)
  | Const of int  (** literal operand materialization *)
  | Gep  (** address computation *)
  | Route  (** pure data movement inserted by the router *)

val needs_memory : t -> bool
(** [true] for operations that must sit on a tile with a scratchpad
    port (Load/Store). *)

val is_associative : t -> bool
(** Whether a reduction through this operation may be re-associated by
    the unroller into parallel partial results (Add/Mul/And/Or/Xor). *)

val latency : t -> int
(** Latency in tile-local cycles.  Always 1 in the ICED prototype. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val all_basic : t list
(** The non-parameterized opcodes, for random DFG generation in
    property tests. *)
