(** Cycle-by-cycle execution traces of a mapped kernel, with VCD
    export.

    [record] replays the modulo schedule for a number of iterations and
    emits one event per executed operation and per route hop, in cycle
    order — the equivalent of the waveforms the paper's PyMTL3
    simulation produces.  [to_vcd] writes an IEEE 1364 value-change
    dump with one wire per tile (the label of the node executing there,
    or the routing activity), which any waveform viewer (GTKWave etc.)
    can open. *)

open Iced_mapper

type event = {
  cycle : int;  (** absolute base-clock cycle *)
  tile : int;
  activity : [ `Execute of string * int | `Route of int * int ];
      (** [`Execute (label, iteration)] of a DFG node on the tile's FU,
          or [`Route (src, dst)] for a hop leaving the tile *)
}

val record : Mapping.t -> iterations:int -> event list
(** All events of [iterations] loop iterations, cycle-ordered.
    @raise Invalid_argument if [iterations <= 0]. *)

val busy_histogram : Mapping.t -> iterations:int -> (int * int) list
(** (tile, busy-cycle count) over the traced window, for quick
    utilization inspection; agrees with {!Metrics} in steady state. *)

val to_vcd : Mapping.t -> iterations:int -> string
(** The trace as a VCD document (one string-valued wire per tile plus a
    clock). *)

val write_vcd : path:string -> Mapping.t -> iterations:int -> unit
