lib/sim/sim.ml: Eval Graph Hashtbl Iced_dfg Iced_mapper List Metrics Op Printf
