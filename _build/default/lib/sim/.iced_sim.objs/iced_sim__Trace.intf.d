lib/sim/trace.mli: Iced_mapper Mapping
