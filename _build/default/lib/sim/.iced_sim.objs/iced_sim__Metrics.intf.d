lib/sim/metrics.mli: Dvfs Iced_arch Iced_mapper Iced_power Mapping
