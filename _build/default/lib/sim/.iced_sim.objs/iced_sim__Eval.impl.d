lib/sim/eval.ml: Iced_dfg List Op Printf
