lib/sim/metrics.ml: Cgra Dvfs Graph Hashtbl Iced_arch Iced_dfg Iced_mapper Iced_power Iced_util List Mapping Op Option
