lib/sim/trace.ml: Buffer Char Fun Graph Hashtbl Iced_dfg Iced_mapper List Mapping Option Printf String
