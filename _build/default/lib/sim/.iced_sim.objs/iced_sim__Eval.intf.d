lib/sim/eval.mli: Iced_dfg Op
