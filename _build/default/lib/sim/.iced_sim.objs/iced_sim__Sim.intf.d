lib/sim/sim.mli: Graph Iced_dfg Iced_mapper
