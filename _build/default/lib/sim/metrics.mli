(** Static metrics of a mapped kernel: utilization, average DVFS level,
    memory activity, cycle counts — the quantities Figures 2, 9, 10 and
    12 plot.

    Utilization follows the paper: it counts both FU and crossbar
    occupancy and is "computed at each island according to its
    frequency" — a tile at period multiplier m with k busy base-clock
    slots per II has k * m of its II local slots occupied, i.e.
    utilization k * m / II.  The average excludes power-gated tiles
    (whose work was consolidated elsewhere); the average {e DVFS level}
    by contrast counts gated tiles as 0 %, exactly as Figure 10's
    caption prescribes. *)

open Iced_arch
open Iced_mapper

type tile_metrics = {
  tile : int;
  level : Dvfs.level;
  busy_slots : int;  (** distinct busy base-clock slots per II *)
  utilization : float;  (** busy_slots * multiplier / II, in [0,1]; 0 when gated *)
}

val per_tile : Mapping.t -> tile_metrics list
(** One entry per tile of the fabric (or of the sub-fabric for a
    partition mapping). *)

val average_utilization : Mapping.t -> float
(** Mean utilization over non-power-gated tiles of the (sub-)fabric. *)

val average_dvfs_fraction : Mapping.t -> float
(** Mean of {!Dvfs.fraction} over every tile (gated = 0), Figure 10's
    metric. *)

val tile_states : Mapping.t -> Iced_power.Model.tile_state list
(** Per-tile (level, activity) for the power model; activity equals
    utilization. *)

val sram_activity : Mapping.t -> float
(** Memory operations per cycle per SPM bank, capped at 1. *)

val schedule_depth : Mapping.t -> int
(** Latest scheduled event time + 1 (pipeline-fill depth). *)

val total_cycles : Mapping.t -> iterations:int -> int
(** Base-clock cycles to run [iterations] loop iterations:
    (iterations - 1) * II + schedule depth, with DVFS pipeline-fill
    stretch on slowed tiles already subsumed by the predication model
    (extra invalid warm-up iterations, not extra steady-state cycles).
    @raise Invalid_argument if [iterations <= 0]. *)

val speedup_vs_cpu : Mapping.t -> float
(** nodes / II — the paper's Figure 1 speedup metric over a
    single-issue in-order CPU. *)

val buffer_occupancy : Mapping.t -> (int * int * int) list
(** Steady-state bypass-buffer pressure: for every (tile, modulo slot)
    with live values, how many values are resident — a value occupies
    its producer's (or an intermediate hop's) buffers from the cycle it
    arrives until the cycle it departs or is consumed, and intervals
    longer than the II overlap themselves.  Constants are excluded
    (they live in the configuration memory). *)

val max_buffer_occupancy : Mapping.t -> int
(** Maximum over tiles and slots of {!buffer_occupancy}; compare
    against the tile's register-file capacity. *)
