(** Cycle-level simulation of a mapped kernel.

    Two entry points share one functional semantics:

    - {!interpret} executes the DFG directly, iteration by iteration —
      the golden model;
    - {!run} executes the {e mapped} schedule in global time order,
      checking as it goes that every operand was produced by an earlier
      cycle (a dynamic re-verification of the modulo schedule's
      dependences, including loop-carried ones), and accounting busy
      cycles.

    A mapping is functionally correct when [run] reports no timing
    violations and produces exactly [interpret]'s store trace.

    Data-dependent predication (paper Figure 1: "the first n8 is
    executed at cycle1 but its output is invalid") is modeled with
    option values: an operand reaching before its producing iteration
    exists is invalid, and invalid stores are suppressed. *)

open Iced_dfg

type binding = {
  load : label:string -> iter:int -> operands:int list -> int;
      (** semantic of a [Load] node: [label] is the node's label,
          [operands] its evaluated address inputs (empty if none) *)
  phi_init : label:string -> int;
      (** initial value of a [Phi] for iterations before its carried
          input exists *)
}

val zero_binding : binding
(** Loads return 0, phis start at 0. *)

type store_event = { label : string; iter : int; operands : int list }

type result = {
  iterations : int;
  cycles : int;  (** total base-clock cycles, from {!Metrics.total_cycles} *)
  stores : store_event list;  (** valid stores, in (iter, label) order *)
  executed : int;  (** op instances executed *)
  violations : string list;
      (** operands consumed before production — empty for any mapping
          accepted by {!Iced_mapper.Validate} *)
}

val interpret : ?binding:binding -> Graph.t -> iterations:int -> store_event list
(** Golden DFG interpreter.  @raise Invalid_argument on a graph that
    fails validation or non-positive [iterations]. *)

val run : ?binding:binding -> Iced_mapper.Mapping.t -> iterations:int -> result
(** Simulate the mapped schedule. *)
