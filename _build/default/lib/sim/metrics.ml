open Iced_arch
open Iced_dfg
open Iced_mapper

type tile_metrics = { tile : int; level : Dvfs.level; busy_slots : int; utilization : float }

let per_tile (m : Mapping.t) =
  List.map
    (fun tile ->
      let level = Mapping.level_of_tile m tile in
      let busy = List.length (Mapping.busy_slots_of_tile m tile) in
      let utilization =
        if not (Dvfs.is_active level) then 0.0
        else
          min 1.0
            (float_of_int (busy * Dvfs.multiplier level) /. float_of_int m.Mapping.ii)
      in
      { tile; level; busy_slots = busy; utilization })
    m.Mapping.tiles

let average_utilization m =
  let active =
    per_tile m |> List.filter (fun tm -> Dvfs.is_active tm.level)
  in
  match active with
  | [] -> 0.0
  | tiles -> Iced_util.Stats.mean (List.map (fun tm -> tm.utilization) tiles)

let average_dvfs_fraction m =
  per_tile m |> List.map (fun tm -> Dvfs.fraction tm.level) |> Iced_util.Stats.mean

let tile_states m =
  per_tile m
  |> List.map (fun tm -> { Iced_power.Model.level = tm.level; activity = tm.utilization })

let sram_activity (m : Mapping.t) =
  let mem_nodes =
    Graph.nodes m.Mapping.dfg
    |> List.filter (fun (n : Graph.node) -> Op.needs_memory n.op)
    |> List.length
  in
  let banks = m.Mapping.cgra.Cgra.spm_banks in
  min 1.0 (float_of_int mem_nodes /. float_of_int (m.Mapping.ii * banks))

let schedule_depth (m : Mapping.t) =
  let latest_placement =
    List.fold_left (fun acc (_, (_, time)) -> max acc time) (-1) m.Mapping.placements
  in
  let latest_hop =
    List.fold_left
      (fun acc (r : Mapping.route) ->
        List.fold_left (fun acc (h : Mapping.hop) -> max acc h.time) acc r.hops)
      latest_placement m.Mapping.routes
  in
  latest_hop + 1

let total_cycles m ~iterations =
  if iterations <= 0 then invalid_arg "Metrics.total_cycles: non-positive iterations";
  ((iterations - 1) * m.Mapping.ii) + schedule_depth m

let speedup_vs_cpu (m : Mapping.t) =
  float_of_int (Graph.node_count m.Mapping.dfg) /. float_of_int m.Mapping.ii

(* Residency intervals [from, to) in absolute cycles: where a value
   sits in some tile's bypass buffers.  The value of edge e exists from
   the end of the producer's cycle until its consumer reads it
   (consume time = dst time + distance * II for iteration-0 values). *)
let residency_intervals (m : Mapping.t) =
  let ii = m.Mapping.ii in
  List.concat_map
    (fun (e : Graph.edge) ->
      match (Graph.node m.Mapping.dfg e.src).op with
      | Op.Const _ -> []
      | _ -> (
        match
          ( List.assoc_opt e.src m.Mapping.placements,
            List.assoc_opt e.dst m.Mapping.placements )
        with
        | Some (src_tile, src_time), Some (_, dst_time) -> (
          let consume = dst_time + (e.distance * ii) in
          match Mapping.route_of_edge m e with
          | None | Some { hops = []; _ } ->
            if consume > src_time + 1 then [ (src_tile, src_time + 1, consume) ] else []
          | Some { hops; _ } ->
            let first = List.hd hops in
            let at_src =
              if first.time > src_time + 1 then [ (src_tile, src_time + 1, first.time) ]
              else []
            in
            (* between consecutive hops the value waits at the
               intermediate tile; after the last hop it waits at the
               consumer *)
            let rec walk acc = function
              | (h : Mapping.hop) :: (next : Mapping.hop) :: rest ->
                let tile =
                  Option.value ~default:h.tile
                    (Iced_arch.Cgra.neighbor m.Mapping.cgra h.tile h.dir)
                in
                let acc =
                  if next.time > h.time + 1 then (tile, h.time + 1, next.time) :: acc
                  else acc
                in
                walk acc (next :: rest)
              | [ (last : Mapping.hop) ] ->
                let tile =
                  Option.value ~default:last.tile
                    (Iced_arch.Cgra.neighbor m.Mapping.cgra last.tile last.dir)
                in
                if consume > last.time + 1 then (tile, last.time + 1, consume) :: acc
                else acc
              | [] -> acc
            in
            at_src @ walk [] hops)
        | _ -> []))
    (Graph.edges m.Mapping.dfg)

let buffer_occupancy (m : Mapping.t) =
  let ii = m.Mapping.ii in
  let table = Hashtbl.create 64 in
  List.iter
    (fun (tile, from_time, to_time) ->
      (* steady state: each absolute cycle lands on slot mod II; a
         window longer than II covers some slots several times *)
      let span = to_time - from_time in
      let full = span / ii and rem = span mod ii in
      for slot = 0 to ii - 1 do
        (* offset of this slot from the window start, in [0, ii) *)
        let offset = (((slot - from_time) mod ii) + ii) mod ii in
        let count = full + if offset < rem then 1 else 0 in
        if count > 0 then
          Hashtbl.replace table (tile, slot)
            (count + Option.value ~default:0 (Hashtbl.find_opt table (tile, slot)))
      done)
    (residency_intervals m);
  Hashtbl.fold (fun (tile, slot) live acc -> (tile, slot, live) :: acc) table []
  |> List.sort compare

let max_buffer_occupancy m =
  List.fold_left (fun acc (_, _, live) -> max acc live) 0 (buffer_occupancy m)
