open Iced_dfg

type binding = {
  load : label:string -> iter:int -> operands:int list -> int;
  phi_init : label:string -> int;
}

let zero_binding =
  { load = (fun ~label:_ ~iter:_ ~operands:_ -> 0); phi_init = (fun ~label:_ -> 0) }

type store_event = { label : string; iter : int; operands : int list }

type result = {
  iterations : int;
  cycles : int;
  stores : store_event list;
  executed : int;
  violations : string list;
}

(* Shared evaluation of one (node, iter) instance given a lookup for
   already-computed instances.  Returns [None] for predicated-invalid
   values (an operand from a negative iteration). *)
let eval_instance binding g lookup node_id iter =
  let node = Graph.node g node_id in
  let preds = Graph.predecessors g node_id in
  let operand (e : Graph.edge) =
    (* Constants are iteration-invariant and always available. *)
    match (Graph.node g e.src).op with
    | Op.Const k -> Some k
    | _ -> lookup e.src (iter - e.distance)
  in
  match node.op with
  | Op.Phi -> (
    let carried = List.filter (fun (e : Graph.edge) -> e.distance > 0) preds in
    let initial = List.filter (fun (e : Graph.edge) -> e.distance = 0) preds in
    match carried with
    | c :: _ when iter >= c.distance -> operand c
    | _ -> (
      match initial with
      | e :: _ -> lookup e.src iter
      | [] -> Some (binding.phi_init ~label:node.label)))
  | Op.Load ->
    let operands = List.map operand preds in
    if List.exists (fun v -> v = None) operands then None
    else
      Some
        (binding.load ~label:node.label ~iter
           ~operands:(List.filter_map (fun v -> v) operands))
  | Op.Store ->
    (* value recorded separately; a store produces nothing *)
    Some 0
  | op ->
    let operands = List.map operand preds in
    if List.exists (fun v -> v = None) operands then None
    else Some (Eval.apply op (List.filter_map (fun v -> v) operands))

let store_of binding g lookup node_id iter =
  ignore binding;
  let node = Graph.node g node_id in
  if node.op <> Op.Store then None
  else begin
    let operands =
      List.map
        (fun (e : Graph.edge) ->
          match (Graph.node g e.src).op with
          | Op.Const k -> Some k
          | _ -> lookup e.src (iter - e.distance))
        (Graph.predecessors g node_id)
    in
    if List.exists (fun v -> v = None) operands then None
    else Some { label = node.label; iter; operands = List.filter_map (fun v -> v) operands }
  end

let interpret ?(binding = zero_binding) g ~iterations =
  (match Graph.validate g with
  | Error msg -> invalid_arg ("Sim.interpret: " ^ msg)
  | Ok () -> ());
  if iterations <= 0 then invalid_arg "Sim.interpret: non-positive iterations";
  let memo : (int * int, int option) Hashtbl.t = Hashtbl.create 1024 in
  let rec lookup node iter =
    if iter < 0 then None
    else
      match Hashtbl.find_opt memo (node, iter) with
      | Some v -> v
      | None ->
        (* Cycles always pass through carried edges with distance >= 1,
           so recursion on (node, iter) terminates: intra edges strictly
           decrease topological position, carried edges decrease iter. *)
        let v = eval_instance binding g lookup node iter in
        Hashtbl.replace memo (node, iter) v;
        v
  in
  let stores = ref [] in
  for iter = 0 to iterations - 1 do
    List.iter
      (fun (n : Graph.node) ->
        if n.op = Op.Store then
          match store_of binding g lookup n.id iter with
          | Some event -> stores := event :: !stores
          | None -> ())
      (Graph.nodes g)
  done;
  List.sort compare (List.rev !stores)

let run ?(binding = zero_binding) (m : Iced_mapper.Mapping.t) ~iterations =
  if iterations <= 0 then invalid_arg "Sim.run: non-positive iterations";
  let g = m.Iced_mapper.Mapping.dfg in
  let ii = m.Iced_mapper.Mapping.ii in
  (* All op instances in execution order. *)
  let instances =
    List.concat_map
      (fun (node, (_tile, time)) ->
        List.init iterations (fun iter -> (time + (iter * ii), node, iter)))
      m.Iced_mapper.Mapping.placements
    |> List.sort compare
  in
  let memo : (int * int, int option) Hashtbl.t = Hashtbl.create 1024 in
  let violations = ref [] in
  let executed = ref 0 in
  let stores = ref [] in
  let lookup node iter =
    if iter < 0 then None
    else
      match Hashtbl.find_opt memo (node, iter) with
      | Some v -> v
      | None ->
        (* Producer instance has not executed yet: schedule bug. *)
        violations :=
          Printf.sprintf "operand n%d@@iter%d consumed before production" node iter
          :: !violations;
        None
  in
  List.iter
    (fun (_time, node, iter) ->
      incr executed;
      let v = eval_instance binding g lookup node iter in
      Hashtbl.replace memo (node, iter) v;
      if (Graph.node g node).op = Op.Store then
        match store_of binding g lookup node iter with
        | Some event -> stores := event :: !stores
        | None -> ())
    instances;
  {
    iterations;
    cycles = Metrics.total_cycles m ~iterations;
    stores = List.sort compare (List.rev !stores);
    executed = !executed;
    violations = List.rev !violations;
  }
