(** Functional semantics of DFG operations, used by the simulator to
    execute mapped kernels on real data and compare against golden
    reference implementations. *)

open Iced_dfg

val apply : Op.t -> int list -> int
(** [apply op operands] evaluates a non-memory, non-phi operation.
    Operand order follows the DFG's edge insertion order.  Comparisons
    yield 0/1 (unary form compares against 0); [Select] takes
    [predicate; if_true; if_false] ([if_false] defaults to an immediate
    0 in the binary form); division
    and remainder by zero yield 0 (predicated-off lanes may feed
    garbage); [Route] and single-operand passthroughs are identity.
    @raise Invalid_argument for [Phi]/[Load]/[Store] (handled by the
    simulator) or arity mismatch. *)
