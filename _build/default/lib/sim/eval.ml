open Iced_dfg

let arity_fail op n =
  invalid_arg (Printf.sprintf "Eval.apply: %s with %d operands" (Op.to_string op) n)

let binary op operands f =
  match operands with [ a; b ] -> f a b | _ -> arity_fail op (List.length operands)

let bool_of b = if b then 1 else 0

let apply op operands =
  match op with
  | Op.Add -> List.fold_left ( + ) 0 operands
  | Op.Mul -> List.fold_left ( * ) 1 operands
  | Op.And -> ( match operands with [] -> arity_fail op 0 | x :: rest -> List.fold_left ( land ) x rest)
  | Op.Or -> ( match operands with [] -> arity_fail op 0 | x :: rest -> List.fold_left ( lor ) x rest)
  | Op.Xor -> ( match operands with [] -> arity_fail op 0 | x :: rest -> List.fold_left ( lxor ) x rest)
  | Op.Sub -> binary op operands ( - )
  | Op.Div -> binary op operands (fun a b -> if b = 0 then 0 else a / b)
  | Op.Rem -> binary op operands (fun a b -> if b = 0 then 0 else a mod b)
  | Op.Shl -> binary op operands (fun a b -> a lsl (b land 63))
  | Op.Shr -> binary op operands (fun a b -> a asr (b land 63))
  | Op.Cmp c ->
    let compare a b =
      bool_of
        (match c with
        | Op.Eq -> a = b
        | Op.Ne -> a <> b
        | Op.Lt -> a < b
        | Op.Le -> a <= b
        | Op.Gt -> a > b
        | Op.Ge -> a >= b)
    in
    (* Unary form compares against an immediate zero. *)
    (match operands with
    | [ a ] -> compare a 0
    | [ a; b ] -> compare a b
    | n -> arity_fail op (List.length n))
  | Op.Select -> (
    (* Binary form has an immediate-zero else-operand. *)
    match operands with
    | [ predicate; if_true ] -> if predicate <> 0 then if_true else 0
    | [ predicate; if_true; if_false ] -> if predicate <> 0 then if_true else if_false
    | n -> arity_fail op (List.length n))
  | Op.Const k ->
    if operands <> [] then arity_fail op (List.length operands);
    k
  | Op.Gep -> List.fold_left ( + ) 0 operands
  | Op.Route -> (
    match operands with [ x ] -> x | n -> arity_fail op (List.length n))
  | Op.Phi | Op.Load | Op.Store -> invalid_arg ("Eval.apply: " ^ Op.to_string op)
