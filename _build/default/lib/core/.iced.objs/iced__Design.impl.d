lib/core/design.ml: Cgra Iced_arch Iced_kernels Iced_mapper Iced_power Iced_sim Levels List Mapper Mapping Printf String Validate
