lib/core/design.mli: Cgra Iced_arch Iced_kernels Iced_mapper Iced_power Mapping
