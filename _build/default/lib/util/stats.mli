(** Summary statistics over float samples, used by the benchmark
    harness and the streaming evaluation. *)

val mean : float list -> float
(** Arithmetic mean.  Returns [nan] on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive samples.  Returns [nan] on the empty
    list.  @raise Invalid_argument if any sample is non-positive. *)

val stddev : float list -> float
(** Population standard deviation.  Returns [nan] on the empty list. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p samples] with [p] in [\[0,100\]], linear
    interpolation between order statistics.  Returns [nan] on []. *)

val total : float list -> float
(** Sum. *)

val ratio_series : float list -> float list -> float list
(** Element-wise [a /. b]; @raise Invalid_argument on length
    mismatch. *)
