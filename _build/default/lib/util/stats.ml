let total samples = List.fold_left ( +. ) 0.0 samples

let mean = function
  | [] -> nan
  | samples -> total samples /. float_of_int (List.length samples)

let geomean = function
  | [] -> nan
  | samples ->
    let log_sum =
      List.fold_left
        (fun acc sample ->
          if sample <= 0.0 then invalid_arg "Stats.geomean: non-positive sample";
          acc +. log sample)
        0.0 samples
    in
    exp (log_sum /. float_of_int (List.length samples))

let stddev = function
  | [] -> nan
  | samples ->
    let mu = mean samples in
    let var = mean (List.map (fun sample -> (sample -. mu) ** 2.0) samples) in
    sqrt var

let minimum = function [] -> nan | samples -> List.fold_left min infinity samples
let maximum = function [] -> nan | samples -> List.fold_left max neg_infinity samples

let percentile p = function
  | [] -> nan
  | samples ->
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0,100]";
    let sorted = List.sort compare samples in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then arr.(lo)
    else
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)

let ratio_series numerators denominators =
  if List.length numerators <> List.length denominators then
    invalid_arg "Stats.ratio_series: length mismatch";
  List.map2 ( /. ) numerators denominators
