(** Deterministic splittable pseudo-random number generator.

    Every experiment in this repository is seeded explicitly so that
    benchmark tables are reproducible run-to-run.  The implementation is
    a 64-bit SplitMix64 generator: tiny, fast, and of adequate quality
    for workload synthesis (it is not used for cryptography). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds
    produce equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Splitting lets sub-experiments draw from disjoint streams without
    coordinating how many values each consumes. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)].  [bound]
    must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws a uniform integer in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] draws a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val choose : t -> 'a list -> 'a
(** Uniform draw from a non-empty list.  @raise Invalid_argument on []. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)

val geometric : t -> float -> int
(** [geometric t p] draws from a geometric distribution with success
    probability [p] (number of failures before first success).  Used to
    synthesize heavy-ish-tailed graph degree distributions. *)
