lib/util/stats.mli:
