lib/util/rng.mli:
