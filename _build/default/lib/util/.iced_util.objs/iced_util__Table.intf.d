lib/util/table.mli:
