lib/util/heap.mli:
