type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let fmt_float value =
  if Float.is_nan value then "-"
  else if Float.is_integer value && Float.abs value < 1e15 then
    Printf.sprintf "%.0f" value
  else Printf.sprintf "%.3f" value

let add_float_row t label values = add_row t (label :: List.map fmt_float values)

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let arity = List.length t.columns in
  let widths = Array.make arity 0 in
  let record_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter record_widths all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let rule =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let body = List.map line rows in
  String.concat "\n"
    (("== " ^ t.title ^ " ==") :: rule :: line t.columns :: rule :: (body @ [ rule ]))

let print t =
  print_string (render t);
  print_newline ();
  print_newline ()
