(** Minimal mutable binary min-heap keyed by integer priority, used by
    the mapper's Dijkstra router. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> int -> 'a -> unit
(** [push h priority payload]. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-priority entry. *)

val is_empty : 'a t -> bool

val size : 'a t -> int
