type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_raw t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's native int non-negatively *)
  let raw = Int64.to_int (Int64.shift_right_logical (next_raw t) 2) in
  raw mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_raw t) 11) in
  bound *. (raw /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_raw t) 1L = 1L

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | items -> List.nth items (int t (List.length items))

let shuffle t items =
  let arr = Array.of_list items in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p out of (0,1]";
  let rec draw failures =
    if failures > 10_000 then failures
    else if float t 1.0 < p then failures
    else draw (failures + 1)
  in
  draw 0
