(** ASCII table rendering for the benchmark harness.

    The harness prints each paper table/figure as an aligned text table;
    this module owns the layout so every experiment renders uniformly. *)

type t

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] starts an empty table with the given
    header row. *)

val add_row : t -> string list -> unit
(** Append a row.  @raise Invalid_argument if the arity differs from
    the header. *)

val add_float_row : t -> string -> float list -> unit
(** [add_float_row t label values] appends [label] followed by each
    value formatted with 3 significant decimals. *)

val render : t -> string
(** Render with box-drawing rules and a title line. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val fmt_float : float -> string
(** Shared float formatting (3 decimals, [nan] printed as "-"). *)
