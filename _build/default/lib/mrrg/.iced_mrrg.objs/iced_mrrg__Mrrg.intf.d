lib/mrrg/mrrg.mli: Cgra Dir Format Iced_arch
