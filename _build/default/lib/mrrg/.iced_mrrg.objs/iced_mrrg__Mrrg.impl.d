lib/mrrg/mrrg.ml: Array Cgra Dir Format Hashtbl Iced_arch List Printf
