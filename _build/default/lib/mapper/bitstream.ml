open Iced_arch
open Iced_dfg

type operand_source = Register | Port of Dir.t

type output_select = From_fu | From_port of Dir.t | From_register

type slot = {
  fu : (Op.t * operand_source list) option;
  outputs : (Dir.t * output_select) list;
}

type tile_config = { tile : int; slots : slot array }

(* Where does the value of [e] enter [dst_tile]?  Through the final
   hop's port, or from the local register file when produced (or
   buffered) on the same tile. *)
let entry_port (m : Mapping.t) (e : Graph.edge) ~dst_tile ~consume_time =
  match Mapping.route_of_edge m e with
  | None | Some { hops = []; _ } -> Register
  | Some { hops; _ } -> (
    let last = List.nth hops (List.length hops - 1) in
    match Cgra.neighbor m.Mapping.cgra last.tile last.dir with
    | Some tile when tile = dst_tile ->
      (* direct hand-off only when it lands the cycle before use;
         otherwise it sat in a bypass buffer *)
      if last.time = consume_time - 1 then Port (Dir.opposite last.dir) else Register
    | _ -> Register)

let fu_config (m : Mapping.t) node tile time =
  let op = (Graph.node m.Mapping.dfg node).op in
  let sources =
    List.map
      (fun (e : Graph.edge) ->
        match (Graph.node m.Mapping.dfg e.src).op with
        | Op.Const _ -> Register (* materialized locally *)
        | _ -> entry_port m e ~dst_tile:tile ~consume_time:time)
      (Graph.predecessors m.Mapping.dfg node)
  in
  (op, sources)

(* Output-port select for a hop leaving [tile] at [time] carrying
   edge [e]. *)
let output_select (m : Mapping.t) (e : Graph.edge) ~tile ~time =
  (* produced locally the cycle before? *)
  let produced_here =
    match List.assoc_opt e.src m.Mapping.placements with
    | Some (src_tile, src_time) -> src_tile = tile && time = src_time + 1
    | None -> false
  in
  if produced_here then From_fu
  else
    match Mapping.route_of_edge m e with
    | None | Some { hops = []; _ } -> From_register
    | Some { hops; _ } -> (
      (* the hop arriving at [tile] just before [time] feeds straight
         through; anything older was buffered *)
      let incoming =
        List.find_opt
          (fun (h : Mapping.hop) ->
            match Cgra.neighbor m.Mapping.cgra h.tile h.dir with
            | Some t -> t = tile && h.time = time - 1
            | None -> false)
          hops
      in
      match incoming with
      | Some h -> From_port (Dir.opposite h.dir)
      | None -> From_register)

let generate (m : Mapping.t) =
  let ii = m.Mapping.ii in
  List.filter_map
    (fun tile ->
      let slots = Array.make ii { fu = None; outputs = [] } in
      List.iter
        (fun (time, what) ->
          let s = time mod ii in
          match what with
          | `Fu node ->
            slots.(s) <- { (slots.(s)) with fu = Some (fu_config m node tile time) }
          | `Hop (e : Graph.edge) -> (
            (* recover the hop's direction from the routes *)
            match Mapping.route_of_edge m e with
            | None -> ()
            | Some r -> (
              match
                List.find_opt
                  (fun (h : Mapping.hop) -> h.tile = tile && h.time = time)
                  r.hops
              with
              | None -> ()
              | Some h ->
                let select = output_select m e ~tile ~time in
                slots.(s) <-
                  { (slots.(s)) with outputs = (h.dir, select) :: slots.(s).outputs })))
        (Mapping.events_of_tile m tile);
      if Array.for_all (fun s -> s.fu = None && s.outputs = []) slots then None
      else Some { tile; slots })
    (List.init (Cgra.tile_count m.Mapping.cgra) (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Word layout (64 bits):
     [ 0..7 ]  opcode (0 = idle)
     [ 8..15]  operand sources, 2 bits each x up to 4 operands
               (0 = none, 1 = register, 2.. = port N/S/E/W + 2)
     [16..31]  output selects, 4 bits per direction (N,S,E,W)
               (0 = off, 1 = fu, 2 = register, 3.. = from-port + 3)
     [32..47]  Const immediate low bits (when opcode is Const)        *)

let opcode_code = function
  | Op.Add -> 1 | Op.Sub -> 2 | Op.Mul -> 3 | Op.Div -> 4 | Op.Rem -> 5
  | Op.And -> 6 | Op.Or -> 7 | Op.Xor -> 8 | Op.Shl -> 9 | Op.Shr -> 10
  | Op.Cmp Op.Eq -> 11 | Op.Cmp Op.Ne -> 12 | Op.Cmp Op.Lt -> 13
  | Op.Cmp Op.Le -> 14 | Op.Cmp Op.Gt -> 15 | Op.Cmp Op.Ge -> 16
  | Op.Select -> 17 | Op.Phi -> 18 | Op.Load -> 19 | Op.Store -> 20
  | Op.Gep -> 21 | Op.Route -> 22 | Op.Const _ -> 23

let opcode_of_code = function
  | 1 -> Some Op.Add | 2 -> Some Op.Sub | 3 -> Some Op.Mul | 4 -> Some Op.Div
  | 5 -> Some Op.Rem | 6 -> Some Op.And | 7 -> Some Op.Or | 8 -> Some Op.Xor
  | 9 -> Some Op.Shl | 10 -> Some Op.Shr | 11 -> Some (Op.Cmp Op.Eq)
  | 12 -> Some (Op.Cmp Op.Ne) | 13 -> Some (Op.Cmp Op.Lt) | 14 -> Some (Op.Cmp Op.Le)
  | 15 -> Some (Op.Cmp Op.Gt) | 16 -> Some (Op.Cmp Op.Ge) | 17 -> Some Op.Select
  | 18 -> Some Op.Phi | 19 -> Some Op.Load | 20 -> Some Op.Store | 21 -> Some Op.Gep
  | 22 -> Some Op.Route | 23 -> Some (Op.Const 0) | _ -> None

let dir_code = function Dir.North -> 0 | Dir.South -> 1 | Dir.East -> 2 | Dir.West -> 3
let dir_of_code = function
  | 0 -> Dir.North | 1 -> Dir.South | 2 -> Dir.East | _ -> Dir.West

let source_code = function Register -> 1 | Port d -> 2 + dir_code d

let source_of_code = function
  | 1 -> Some Register
  | c when c >= 2 && c <= 5 -> Some (Port (dir_of_code (c - 2)))
  | _ -> None

let select_code = function
  | From_fu -> 1
  | From_register -> 2
  | From_port d -> 3 + dir_code d

let select_of_code = function
  | 1 -> Some From_fu
  | 2 -> Some From_register
  | c when c >= 3 && c <= 6 -> Some (From_port (dir_of_code (c - 3)))
  | _ -> None

let encode_slot slot =
  let ( |< ) v n = Int64.shift_left (Int64.of_int v) n in
  let word = ref 0L in
  (match slot.fu with
  | None -> ()
  | Some (op, sources) ->
    word := Int64.logor !word (opcode_code op |< 0);
    List.iteri
      (fun i src ->
        if i < 4 then word := Int64.logor !word (source_code src |< (8 + (2 * i))))
      sources;
    (match op with
    | Op.Const k -> word := Int64.logor !word ((k land 0xFFFF) |< 32)
    | _ -> ()));
  List.iter
    (fun (dir, select) ->
      word := Int64.logor !word (select_code select |< (16 + (4 * dir_code dir))))
    slot.outputs;
  !word

let decode_slot word =
  if word = 0L then None
  else begin
    let field off width =
      Int64.to_int (Int64.logand (Int64.shift_right_logical word off) (Int64.of_int ((1 lsl width) - 1)))
    in
    let fu =
      match opcode_of_code (field 0 8) with
      | None -> None
      | Some op ->
        let op = match op with Op.Const _ -> Op.Const (field 32 16) | other -> other in
        let sources =
          List.filter_map (fun i -> source_of_code (field (8 + (2 * i)) 2)) [ 0; 1; 2; 3 ]
        in
        Some (op, sources)
    in
    let outputs =
      List.filter_map
        (fun dir ->
          match select_of_code (field (16 + (4 * dir_code dir)) 4) with
          | Some select -> Some (dir, select)
          | None -> None)
        Dir.all
    in
    Some { fu; outputs }
  end

let words config = Array.to_list (Array.map encode_slot config.slots)

let total_bits (m : Mapping.t) = 64 * m.Mapping.ii * List.length (generate m)

let pp fmt config =
  Format.fprintf fmt "tile %d:@." config.tile;
  Array.iteri
    (fun s (slot : slot) ->
      let fu =
        match slot.fu with
        | None -> "-"
        | Some (op, sources) ->
          Printf.sprintf "%s(%s)" (Op.to_string op)
            (String.concat ","
               (List.map
                  (function
                    | Register -> "reg"
                    | Port d -> "in." ^ Dir.to_string d)
                  sources))
      in
      let outs =
        String.concat " "
          (List.map
             (fun (dir, select) ->
               Printf.sprintf "out.%s<-%s" (Dir.to_string dir)
                 (match select with
                 | From_fu -> "fu"
                 | From_register -> "reg"
                 | From_port d -> "in." ^ Dir.to_string d))
             slot.outputs)
      in
      Format.fprintf fmt "  slot %d: fu=%s %s@." s fu outs)
    config.slots
