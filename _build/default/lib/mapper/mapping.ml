open Iced_arch
open Iced_dfg

type hop = { tile : int; dir : Dir.t; time : int }

type route = { edge : Graph.edge; hops : hop list }

type t = {
  dfg : Graph.t;
  cgra : Cgra.t;
  ii : int;
  tiles : int list;
  memory_tiles : int list;
  placements : (int * (int * int)) list;
  routes : route list;
  labels : (int * Dvfs.level) list;
  island_levels : (int * Dvfs.level) list;
}

let placement t node =
  match List.assoc_opt node t.placements with
  | Some p -> p
  | None -> raise Not_found

let tile_of_node t node = fst (placement t node)
let time_of_node t node = snd (placement t node)

let label t node =
  match List.assoc_opt node t.labels with Some l -> l | None -> Dvfs.Normal

let level_of_island t island =
  match List.assoc_opt island t.island_levels with Some l -> l | None -> Dvfs.Normal

let level_of_tile t tile = level_of_island t (Cgra.island_of t.cgra tile)

let with_levels t island_levels = { t with island_levels }

let route_of_edge t (edge : Graph.edge) =
  List.find_opt
    (fun r -> r.edge.src = edge.src && r.edge.dst = edge.dst && r.edge.distance = edge.distance)
    t.routes

let nodes_on_tile t tile =
  List.filter_map (fun (node, (tl, _)) -> if tl = tile then Some node else None) t.placements
  |> List.sort compare

let events_of_tile t tile =
  let fu =
    List.filter_map
      (fun (node, (tl, time)) -> if tl = tile then Some (time, `Fu node) else None)
      t.placements
  in
  let hops =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun h -> if h.tile = tile then Some (h.time, `Hop r.edge) else None)
          r.hops)
      t.routes
  in
  List.sort compare (fu @ hops)

let busy_slots_of_tile t tile =
  events_of_tile t tile |> List.map (fun (time, _) -> time mod t.ii) |> List.sort_uniq compare

let used_tiles t =
  List.init (Cgra.tile_count t.cgra) (fun i -> i)
  |> List.filter (fun tile -> events_of_tile t tile <> [])

let to_mrrg t =
  let mrrg = Iced_mrrg.Mrrg.create ~tiles:t.tiles t.cgra ~ii:t.ii in
  let reserve_all =
    let reserve_placement acc (node, (tile, time)) =
      match acc with
      | Error _ -> acc
      | Ok () ->
        Iced_mrrg.Mrrg.reserve mrrg ~tile ~time Iced_mrrg.Mrrg.Fu (Iced_mrrg.Mrrg.Op_node node)
    in
    let reserve_route acc (r : route) =
      List.fold_left
        (fun acc (h : hop) ->
          match acc with
          | Error _ -> acc
          | Ok () ->
            Iced_mrrg.Mrrg.reserve mrrg ~tile:h.tile ~time:h.time
              (Iced_mrrg.Mrrg.Port h.dir)
              (Iced_mrrg.Mrrg.Route { src = r.edge.src; dst = r.edge.dst }))
        acc r.hops
    in
    let after_placements = List.fold_left reserve_placement (Ok ()) t.placements in
    List.fold_left reserve_route after_placements t.routes
  in
  match reserve_all with Ok () -> Ok mrrg | Error msg -> Error msg

let pp fmt t =
  Format.fprintf fmt "mapping: II=%d on %a@." t.ii Cgra.pp t.cgra;
  List.iter
    (fun tile ->
      let events = events_of_tile t tile in
      if events <> [] then begin
        let describe (time, what) =
          match what with
          | `Fu node -> Printf.sprintf "c%d:%s" time (Graph.node t.dfg node).label
          | `Hop (e : Graph.edge) -> Printf.sprintf "c%d:route(n%d->n%d)" time e.src e.dst
        in
        Format.fprintf fmt "  tile %2d [%s] %s@." tile
          (Dvfs.to_string (level_of_tile t tile))
          (String.concat " " (List.map describe events))
      end)
    (List.init (Cgra.tile_count t.cgra) (fun i -> i));
  Format.fprintf fmt "  islands:";
  List.iter
    (fun (island, level) -> Format.fprintf fmt " %d=%s" island (Dvfs.to_string level))
    (List.sort compare t.island_levels);
  Format.fprintf fmt "@."
