(** Configuration-memory generation: the per-tile control words a
    mapped kernel programs into the fabric.

    Each tile's configuration memory holds one control word per modulo
    slot (paper Section III: "a configuration memory containing the
    control signals", loaded through the DMA).  A word selects the FU
    opcode and its operand sources, and programs the crossbar's output
    ports.  This module reconstructs those words from a {!Mapping} —
    operand sources are recovered from the routes (the final hop into
    the consuming tile) — serializes them into 64-bit words, and can
    decode them back (tested as a round-trip).

    The island DVFS levels are {e not} part of the per-tile stream:
    they live in the DVFS Controller's mapTable. *)

open Iced_arch
open Iced_dfg

type operand_source =
  | Register  (** produced earlier on this tile (or waited in a buffer) *)
  | Port of Dir.t  (** arrives through the named input port this cycle *)

type output_select =
  | From_fu  (** the FU result computed in the previous slot *)
  | From_port of Dir.t  (** forward the value arriving on an input port *)
  | From_register  (** a buffered value *)

type slot = {
  fu : (Op.t * operand_source list) option;
      (** the operation issued at this slot, with one source per
          operand (DFG edge order) *)
  outputs : (Dir.t * output_select) list;
      (** programmed crossbar output ports *)
}

type tile_config = { tile : int; slots : slot array  (** length = II *) }

val generate : Mapping.t -> tile_config list
(** Configurations for every tile with activity, tile-ordered. *)

val encode_slot : slot -> int64
(** Pack one slot into a control word (field layout in the
    implementation; lossy only for [Const] immediates, which encode
    their low bits). *)

val decode_slot : int64 -> slot option
(** Inverse of [encode_slot] up to opcode identity ([Const] payloads
    are truncated); [None] for an all-zero (idle) word. *)

val words : tile_config -> int64 list
(** The tile's config-memory image, one word per slot. *)

val total_bits : Mapping.t -> int
(** Size of the whole fabric's configuration, in bits — II * 64 per
    active tile (compare: the prototype's per-tile config memory). *)

val pp : Format.formatter -> tile_config -> unit
