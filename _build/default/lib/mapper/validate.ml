open Iced_arch
open Iced_dfg

let check mapping =
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun msg -> problems := msg :: !problems) fmt in
  let { Mapping.dfg; cgra; ii; tiles; memory_tiles; placements; _ } = mapping in
  if ii <= 0 then fail "non-positive II %d" ii;
  (match Graph.validate dfg with
  | Ok () -> ()
  | Error msg -> fail "invalid DFG: %s" msg);
  (* Placement completeness and tile constraints *)
  List.iter
    (fun id ->
      match List.assoc_opt id placements with
      | None -> fail "node n%d not placed" id
      | Some (tile, time) ->
        if not (List.mem tile tiles) then fail "node n%d on disallowed tile %d" id tile;
        if time < 0 then fail "node n%d scheduled at negative time %d" id time;
        let op = (Graph.node dfg id).op in
        if Op.needs_memory op && not (List.mem tile memory_tiles) then
          fail "memory op n%d on tile %d without SPM port" id tile)
    (Graph.node_ids dfg);
  let placed_ids = List.map fst placements in
  if List.length placed_ids <> List.length (List.sort_uniq compare placed_ids) then
    fail "duplicate placements";
  List.iter
    (fun id -> if not (Graph.mem_node dfg id) then fail "placement of unknown node n%d" id)
    placed_ids;
  (* Resource conflicts *)
  (match Mapping.to_mrrg mapping with
  | Ok _ -> ()
  | Error msg -> fail "resource conflict: %s" msg);
  (* Dependences and route integrity *)
  let check_edge (e : Graph.edge) =
    match (List.assoc_opt e.src placements, List.assoc_opt e.dst placements) with
    | None, _ | _, None -> () (* reported above *)
    | Some (src_tile, src_time), Some (dst_tile, dst_time) -> (
      (* Edges from Const nodes are iteration-invariant: the consumer
         may read a copy produced in an earlier iteration, so they get
         extra modulo slack (mirrored by the mapper and simulator). *)
      let slack =
        match (Graph.node dfg e.src).op with
        | Op.Const _ -> (e.distance + 2) * ii
        | _ -> e.distance * ii
      in
      let deadline = dst_time + slack - 1 in
      match Mapping.route_of_edge mapping e with
      | None ->
        if src_tile <> dst_tile then
          fail "edge n%d->n%d spans tiles %d->%d without a route" e.src e.dst src_tile dst_tile
        else if deadline < src_time then
          fail "edge n%d->n%d: consumer at t=%d too early for producer at t=%d" e.src e.dst
            dst_time src_time
      | Some r ->
        (match r.hops with
        | [] ->
          if src_tile <> dst_tile then
            fail "edge n%d->n%d has an empty route across tiles" e.src e.dst;
          if deadline < src_time then
            fail "edge n%d->n%d: consumer too early (hopless)" e.src e.dst
        | (first : Mapping.hop) :: rest ->
          if first.tile <> src_tile then
            fail "edge n%d->n%d: route starts at tile %d, producer on %d" e.src e.dst first.tile
              src_tile;
          if first.time < src_time + 1 then
            fail "edge n%d->n%d: first hop at t=%d before producer result (t=%d)" e.src e.dst
              first.time src_time;
          (* [tile]/[time]: where the value sits and when it arrived *)
          let rec walk tile time = function
            | [] ->
              if tile <> dst_tile then
                fail "edge n%d->n%d: route ends at tile %d, consumer on %d" e.src e.dst tile
                  dst_tile;
              if time > deadline then
                fail "edge n%d->n%d: arrives at t=%d after deadline t=%d" e.src e.dst time
                  deadline
            | (h : Mapping.hop) :: rest ->
              if h.tile <> tile then
                fail "edge n%d->n%d: hop from tile %d but value at tile %d" e.src e.dst h.tile
                  tile;
              if h.time <= time then fail "edge n%d->n%d: non-increasing hop times" e.src e.dst;
              (match Cgra.neighbor cgra h.tile h.dir with
              | None -> fail "edge n%d->n%d: hop off the fabric edge" e.src e.dst
              | Some next -> walk next h.time rest)
          in
          (match Cgra.neighbor cgra first.tile first.dir with
          | None -> fail "edge n%d->n%d: first hop off the fabric" e.src e.dst
          | Some next -> walk next first.time rest)))
  in
  List.iter check_edge (Graph.edges dfg);
  (* DVFS soundness *)
  if not (Levels.legal mapping mapping.Mapping.island_levels) then
    fail "island DVFS level assignment is not sound";
  match !problems with [] -> Ok () | msgs -> Error (List.rev msgs)

let check_exn mapping =
  match check mapping with
  | Ok () -> ()
  | Error msgs -> failwith (String.concat "; " msgs)
