open Iced_arch
open Iced_dfg

let cell_width = 9

let pad cell =
  let cell =
    if String.length cell > cell_width then String.sub cell 0 cell_width else cell
  in
  cell ^ String.make (cell_width - String.length cell) ' '

let cell_for (m : Mapping.t) ~cycle tile =
  let events = Mapping.events_of_tile m tile in
  let here =
    List.filter_map
      (fun (time, what) -> if time mod m.Mapping.ii = cycle then Some what else None)
      events
  in
  let fu =
    List.find_map (function `Fu node -> Some (Graph.node m.Mapping.dfg node).label | _ -> None) here
  in
  let hops = List.length (List.filter (function `Hop _ -> true | _ -> false) here) in
  match (fu, hops) with
  | Some label, 0 -> label
  | Some label, _ -> label ^ ">"
  | None, 0 -> "."
  | None, n -> String.make (min n cell_width) '>'

let cycle_grid (m : Mapping.t) ~cycle =
  if cycle < 0 || cycle >= m.Mapping.ii then invalid_arg "Floorplan.cycle_grid: bad cycle";
  let cgra = m.Mapping.cgra in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "cycle %d:\n" cycle);
  for row = 0 to cgra.Cgra.rows - 1 do
    Buffer.add_string buf "  ";
    for col = 0 to cgra.Cgra.cols - 1 do
      let tile = Cgra.tile_id cgra ~row ~col in
      Buffer.add_string buf (pad (cell_for m ~cycle tile))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let level_letter = function
  | Dvfs.Normal -> 'N'
  | Dvfs.Relax -> 'r'
  | Dvfs.Rest -> 's'
  | Dvfs.Power_gated -> '-'

let level_grid (m : Mapping.t) =
  let cgra = m.Mapping.cgra in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "DVFS map (N=normal r=relax s=rest -=gated):\n";
  for row = 0 to cgra.Cgra.rows - 1 do
    Buffer.add_string buf "  ";
    for col = 0 to cgra.Cgra.cols - 1 do
      let tile = Cgra.tile_id cgra ~row ~col in
      Buffer.add_char buf (level_letter (Mapping.level_of_tile m tile));
      Buffer.add_char buf ' '
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let render (m : Mapping.t) =
  let buf = Buffer.create 1024 in
  for cycle = 0 to m.Mapping.ii - 1 do
    Buffer.add_string buf (cycle_grid m ~cycle)
  done;
  Buffer.add_string buf (level_grid m);
  Buffer.add_string buf
    (Printf.sprintf "II=%d, %d nodes on %d tiles\n" m.Mapping.ii
       (List.length m.Mapping.placements)
       (List.length (Mapping.used_tiles m)));
  Buffer.contents buf

let print m = print_string (render m)
