lib/mapper/mapper.ml: Analysis Cgra Dvfs Graph Hashtbl Iced_arch Iced_dfg Iced_mrrg Labeling List Mapping Op Printf Router String Sys
