lib/mapper/levels.ml: Analysis Cgra Dvfs Iced_arch Iced_dfg List Mapping
