lib/mapper/bitstream.mli: Dir Format Iced_arch Iced_dfg Mapping Op
