lib/mapper/floorplan.mli: Mapping
