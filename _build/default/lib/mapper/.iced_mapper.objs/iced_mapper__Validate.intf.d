lib/mapper/validate.mli: Mapping
