lib/mapper/mapping.mli: Cgra Dir Dvfs Format Graph Iced_arch Iced_dfg Iced_mrrg
