lib/mapper/labeling.mli: Cgra Dvfs Graph Iced_arch Iced_dfg
