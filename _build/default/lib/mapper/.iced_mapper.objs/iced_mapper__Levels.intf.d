lib/mapper/levels.mli: Dvfs Iced_arch Mapping
