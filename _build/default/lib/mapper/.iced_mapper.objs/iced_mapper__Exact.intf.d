lib/mapper/exact.mli: Cgra Graph Iced_arch Iced_dfg
