lib/mapper/router.ml: Cgra Graph Hashtbl Iced_arch Iced_dfg Iced_mrrg Iced_util List Mapping Printf
