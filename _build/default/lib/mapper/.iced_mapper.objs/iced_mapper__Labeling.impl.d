lib/mapper/labeling.ml: Analysis Cgra Dvfs Graph Hashtbl Iced_arch Iced_dfg List
