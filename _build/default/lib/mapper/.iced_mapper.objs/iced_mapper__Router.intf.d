lib/mapper/router.mli: Graph Iced_dfg Iced_mrrg Mapping
