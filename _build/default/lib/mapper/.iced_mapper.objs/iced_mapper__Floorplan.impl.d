lib/mapper/floorplan.ml: Buffer Cgra Dvfs Graph Iced_arch Iced_dfg List Mapping Printf String
