lib/mapper/bitstream.ml: Array Cgra Dir Format Graph Iced_arch Iced_dfg Int64 List Mapping Op Printf String
