lib/mapper/validate.ml: Cgra Graph Iced_arch Iced_dfg Levels List Mapping Op Printf String
