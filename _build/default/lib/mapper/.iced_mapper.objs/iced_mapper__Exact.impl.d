lib/mapper/exact.ml: Analysis Cgra Graph Hashtbl Iced_arch Iced_dfg Iced_mrrg List Op Router
