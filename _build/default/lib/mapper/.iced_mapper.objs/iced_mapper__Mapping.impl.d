lib/mapper/mapping.ml: Cgra Dir Dvfs Format Graph Iced_arch Iced_dfg Iced_mrrg List Printf String
