lib/mapper/mapper.mli: Cgra Dvfs Graph Iced_arch Iced_dfg Mapping
