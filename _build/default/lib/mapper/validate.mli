(** Full mapping validation, used by tests and assertable by callers.

    Checks, independently of how the mapping was produced:
    - every DFG node is placed exactly once, on an allowed tile, with
      memory operations on SPM-connected tiles;
    - no MRRG resource is double-booked (FUs and crossbar ports);
    - every data dependence is satisfied in modulo time, including
      hop-by-hop route integrity (adjacency, strictly increasing times,
      producer-to-consumer timing with loop-carried slack);
    - the island DVFS assignment is sound per {!Levels.legal}. *)

val check : Mapping.t -> (unit, string list) result
(** [Ok ()] or the list of violations found. *)

val check_exn : Mapping.t -> unit
(** @raise Failure with the joined violations. *)
