(** Dijkstra router over the MRRG (Algorithm 2 uses Dijkstra's
    algorithm to route data between mapped operations).

    The search space is (tile, absolute time): at each step a value may
    wait in the tile's bypass buffer (free of MRRG resources, tiny cost)
    or hop to a mesh neighbour, claiming the source tile's output port
    at the hop time.  A route succeeds when the value reaches the
    destination tile no later than the consumer's read deadline. *)

open Iced_dfg

val hop_cost : int
(** Cost of one hop (waits cost 1); exposed so the mapper's placement
    cost can weigh routing against its own terms. *)

val route :
  ?extra_cost:(tile:int -> time:int -> int) ->
  ?hop_width:(int -> int) ->
  Iced_mrrg.Mrrg.t ->
  edge:Graph.edge ->
  src_tile:int ->
  src_time:int ->
  dst_tile:int ->
  deadline:int ->
  (Mapping.hop list * int, string) result
(** Find and {e reserve} a minimum-cost route for [edge] departing the
    producer tile after [src_time] (the producer's execute cycle) and
    present at [dst_tile] by the end of [deadline].  Returns the hops
    (empty when producer and consumer share a tile) and the path cost.
    On [Error] nothing is reserved. *)

val release : Iced_mrrg.Mrrg.t -> Mapping.hop list -> Graph.edge -> unit
(** Undo a successful [route]'s reservations. *)
