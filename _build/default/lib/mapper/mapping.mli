(** The result of mapping a DFG onto a CGRA: a modulo schedule.

    Times are absolute cycles of iteration 0; the value produced by
    node [n] in iteration [i] appears at time [time n + i * ii].  A
    route for edge u->v is an ordered list of hops; hop [h] occupies the
    output port of [h.tile] toward [h.dir] at slot [h.time mod ii].

    Timing convention (used consistently by the router, validator, and
    simulator):
    - an op executing at cycle [t] reads operands present at its tile at
      the {e start} of [t] and produces its result at the {e end} of [t];
    - a hop at cycle [t] moves a value that was at the source tile at
      the end of [t-1] to the destination tile at the end of [t];
    - hence a dependence u->v with distance d and hops at times
      [t1 < ... < th] requires [t1 >= time u + 1] and
      [th <= time v + d * ii - 1] (or, hopless,
      [time v + d * ii >= time u + 1]). *)

open Iced_arch
open Iced_dfg

type hop = { tile : int; dir : Dir.t; time : int }

type route = { edge : Graph.edge; hops : hop list }

type t = {
  dfg : Graph.t;
  cgra : Cgra.t;
  ii : int;
  tiles : int list;  (** sub-fabric the kernel was confined to *)
  memory_tiles : int list;  (** tiles allowed to execute Load/Store *)
  placements : (int * (int * int)) list;  (** node id -> (tile, time) *)
  routes : route list;
  labels : (int * Dvfs.level) list;  (** Algorithm 1 labels per node *)
  island_levels : (int * Dvfs.level) list;
      (** island id -> assigned level; every island of the fabric
          appears (unused islands are [Power_gated]) *)
}

val placement : t -> int -> int * int
(** (tile, time) of a node.  @raise Not_found for unplaced ids. *)

val tile_of_node : t -> int -> int
val time_of_node : t -> int -> int

val label : t -> int -> Dvfs.level
(** Algorithm 1 label of a node (defaults to [Normal] if absent). *)

val level_of_island : t -> int -> Dvfs.level
(** Assigned level of an island ([Normal] before level assignment). *)

val level_of_tile : t -> int -> Dvfs.level
(** Level of the island containing a tile. *)

val with_levels : t -> (int * Dvfs.level) list -> t

val route_of_edge : t -> Graph.edge -> route option

val nodes_on_tile : t -> int -> int list

val events_of_tile : t -> int -> (int * [ `Fu of int | `Hop of Graph.edge ]) list
(** Every scheduled event on a tile as (absolute time, what): FU
    executions of placed nodes and route hops leaving the tile.  This
    is the input to DVFS legality and utilization. *)

val busy_slots_of_tile : t -> int -> int list
(** Distinct modulo slots with activity, from [events_of_tile]. *)

val used_tiles : t -> int list
(** Tiles with at least one event. *)

val to_mrrg : t -> (Iced_mrrg.Mrrg.t, string) result
(** Rebuild the occupancy from placements and routes; [Error] reports
    the first double-booking (used by the validator). *)

val pp : Format.formatter -> t -> unit
(** Human-readable schedule: per-tile timeline plus island levels. *)
