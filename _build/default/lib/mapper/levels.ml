open Iced_arch
open Iced_dfg

(* Events of a recurrence cycle: the FU executions of its member nodes
   plus the route hops of the edges between consecutive members.  Each
   event lives on some tile; its latency under a level assignment is the
   multiplier of that tile's island. *)
let cycle_event_tiles mapping (cycle : Analysis.cycle) =
  let members = cycle.Analysis.members in
  let member_pairs =
    match members with
    | [] -> []
    | first :: _ ->
      let rec pairs = function
        | [] -> []
        | [ last ] -> [ (last, first) ]
        | a :: (b :: _ as rest) -> (a, b) :: pairs rest
      in
      pairs members
  in
  let fu_tiles =
    List.filter_map
      (fun id ->
        match List.assoc_opt id mapping.Mapping.placements with
        | Some (tile, _) -> Some tile
        | None -> None)
      members
  in
  let hop_tiles =
    List.concat_map
      (fun (src, dst) ->
        mapping.Mapping.routes
        |> List.filter (fun (r : Mapping.route) -> r.edge.src = src && r.edge.dst = dst)
        |> List.concat_map (fun (r : Mapping.route) ->
               List.map (fun (h : Mapping.hop) -> h.tile) r.hops))
      member_pairs
  in
  fu_tiles @ hop_tiles

let multiplier_of level = if Dvfs.is_active level then Dvfs.multiplier level else 0

let island_events mapping island =
  Cgra.island_tiles mapping.Mapping.cgra island
  |> List.concat_map (fun tile -> Mapping.events_of_tile mapping tile)
  |> List.map fst

let legal mapping island_levels =
  let ii = mapping.Mapping.ii in
  let level_of island =
    match List.assoc_opt island island_levels with Some l -> l | None -> Dvfs.Normal
  in
  let island_ok island =
    let times = island_events mapping island in
    match level_of island with
    | Dvfs.Power_gated -> times = []
    | Dvfs.Normal -> true
    | (Dvfs.Relax | Dvfs.Rest) as level ->
      let m = Dvfs.multiplier level in
      ii mod m = 0
      && (match times with
         | [] -> true
         | first :: rest ->
           let phase = first mod m in
           List.for_all (fun t -> t mod m = phase) rest)
  in
  let cycle_ok (cycle : Analysis.cycle) =
    let tiles = cycle_event_tiles mapping cycle in
    let effective_length =
      List.fold_left
        (fun acc tile ->
          let level = level_of (Cgra.island_of mapping.Mapping.cgra tile) in
          acc + max 1 (multiplier_of level))
        0 tiles
    in
    effective_length <= ii * cycle.Analysis.distance
  in
  List.for_all island_ok (Cgra.islands mapping.Mapping.cgra)
  && List.for_all cycle_ok (Analysis.recurrence_cycles mapping.Mapping.dfg)

let assign ?(floor = Dvfs.Rest) ?(allow_gating = true) mapping =
  let cgra = mapping.Mapping.cgra in
  let busy island = List.length (island_events mapping island) in
  let initial =
    List.map
      (fun island ->
        if island_events mapping island = [] then
          (island, if allow_gating then Dvfs.Power_gated else floor)
        else (island, Dvfs.Normal))
      (Cgra.islands cgra)
  in
  let order =
    Cgra.islands cgra
    |> List.filter (fun island -> island_events mapping island <> [])
    |> List.sort (fun a b -> compare (busy a, a) (busy b, b))
  in
  let try_levels =
    List.filter (fun level -> Dvfs.at_most floor level) [ Dvfs.Rest; Dvfs.Relax ]
  in
  let final =
    List.fold_left
      (fun levels island ->
        let candidate level = (island, level) :: List.remove_assoc island levels in
        let rec attempt = function
          | [] -> levels
          | level :: rest ->
            let trial = candidate level in
            if legal mapping trial then trial else attempt rest
        in
        attempt try_levels)
      initial order
  in
  Mapping.with_levels mapping final

let all_normal mapping =
  Mapping.with_levels mapping
    (List.map (fun island -> (island, Dvfs.Normal)) (Cgra.islands mapping.Mapping.cgra))

let normal_with_gating mapping =
  Mapping.with_levels mapping
    (List.map
       (fun island ->
         if island_events mapping island = [] then (island, Dvfs.Power_gated)
         else (island, Dvfs.Normal))
       (Cgra.islands mapping.Mapping.cgra))
