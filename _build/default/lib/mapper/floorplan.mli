(** Text rendering of a mapped schedule as per-cycle fabric snapshots —
    the view the paper's Figures 1 and 3 draw: one grid per modulo
    cycle with the operation (or routed edge) on each tile, plus a
    DVFS-level map of the islands.

    Used by the CLI (`iced map --floorplan`) and the examples to make
    mappings inspectable. *)

val cycle_grid : Mapping.t -> cycle:int -> string
(** One modulo cycle as a tile grid.  Cells show the node label
    executing on the tile's FU at that slot, ['>'] markers for route
    hops, or ['.'] when idle.  @raise Invalid_argument if [cycle] is
    outside [0, ii). *)

val level_grid : Mapping.t -> string
(** The island DVFS map: one cell per tile with the first letter of its
    level (N/r/s/-, for normal/relax/rest/power-gated) — the "last row"
    maps of the paper's Figure 3. *)

val render : Mapping.t -> string
(** All [ii] cycle grids followed by the level map and a summary
    line. *)

val print : Mapping.t -> unit
