(** Post-mapping DVFS level assignment for islands.

    Given a complete modulo schedule, decide the final level of every
    island soundly:

    - an island with no scheduled activity is power-gated;
    - an island may run at period multiplier m (2 = relax, 4 = rest)
      only if m divides the II, every scheduled event on the island
      (FU executions and route hops) falls on a single clock phase
      modulo m, and slowing the island keeps every recurrence cycle
      within its II budget (effective cycle latency, with per-event
      multipliers, at most II * distance) — so the initiation interval
      is preserved and only pipeline-fill latency grows (paper
      Section II-B);
    - otherwise it runs at [Normal].

    Because the 1x1-island configuration models the per-tile DVFS
    baseline, the same pass produces both ICED's per-island levels and
    the UE-CGRA-style per-tile levels. *)

open Iced_arch

val legal : Mapping.t -> (int * Dvfs.level) list -> bool
(** Whether a complete per-island level assignment is sound for the
    mapping (the conditions above). *)

val assign : ?floor:Dvfs.level -> ?allow_gating:bool -> Mapping.t -> Mapping.t
(** Greedily lower each island to the slowest sound level, slower
    levels first, least-busy islands first.  [floor] (default [Rest])
    bounds how low an {e active} island may go; [allow_gating]
    (default true) controls whether idle islands are power-gated
    rather than kept at [floor] (streaming kernels keep their islands
    clocked).  The result's [island_levels] covers every island. *)

val all_normal : Mapping.t -> Mapping.t
(** The no-DVFS baseline: every island at [Normal]. *)

val normal_with_gating : Mapping.t -> Mapping.t
(** The "baseline + power-gating" design point: idle islands gated,
    active islands at [Normal]. *)
