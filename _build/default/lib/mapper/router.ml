open Iced_arch
open Iced_dfg
module Mrrg = Iced_mrrg.Mrrg

let hop_cost = 100

(* State encoding for the Dijkstra visited set: (tile, time) packed into
   one int.  Horizons are small (deadline <= a few II), so time fits
   comfortably. *)
let encode ~tiles tile time = (time * tiles) + tile

let route ?(extra_cost = fun ~tile:_ ~time:_ -> 0) ?(hop_width = fun _ -> 1) mrrg ~edge
    ~src_tile ~src_time ~dst_tile ~deadline =
  let cgra = Mrrg.cgra mrrg in
  let tiles = Cgra.tile_count cgra in
  if deadline < src_time then
    Error
      (Printf.sprintf "edge n%d->n%d: deadline %d precedes producer time %d" edge.Graph.src
         edge.Graph.dst deadline src_time)
  else begin
    (* dist and parent pointers for path reconstruction *)
    let best = Hashtbl.create 64 in
    let parent = Hashtbl.create 64 in
    let frontier = Iced_util.Heap.create () in
    let start = encode ~tiles src_tile src_time in
    Hashtbl.replace best start 0;
    Iced_util.Heap.push frontier 0 (src_tile, src_time);
    let found = ref None in
    let rec search () =
      match Iced_util.Heap.pop frontier with
      | None -> ()
      | Some (cost, (tile, time)) ->
        let state = encode ~tiles tile time in
        if Hashtbl.find_opt best state <> Some cost then search () (* stale entry *)
        else if tile = dst_tile then found := Some (tile, time)
        else if time >= deadline then search ()
        else begin
          let relax next_tile next_time next_cost via =
            let next_state = encode ~tiles next_tile next_time in
            let improves =
              match Hashtbl.find_opt best next_state with
              | None -> true
              | Some existing -> next_cost < existing
            in
            if improves then begin
              Hashtbl.replace best next_state next_cost;
              Hashtbl.replace parent next_state ((tile, time), via);
              Iced_util.Heap.push frontier next_cost (next_tile, next_time)
            end
          in
          (* wait in place *)
          relax tile (time + 1) (cost + 1) None;
          (* hop to a neighbour: the output port is busy for
             hop_width(tile) slots on a slowed tile (capacity), but the
             elastic buffers hide the extra latency *)
          let width = max 1 (hop_width tile) in
          List.iter
            (fun (dir, next_tile) ->
              let free =
                Mrrg.allowed mrrg next_tile
                && List.for_all
                     (fun k -> Mrrg.is_free mrrg ~tile ~time:(time + 1 + k) (Mrrg.Port dir))
                     (List.init width (fun k -> k))
              in
              if free then
                let penalty = extra_cost ~tile ~time:(time + 1) in
                relax next_tile (time + 1) (cost + hop_cost + width + penalty) (Some dir))
            (Cgra.neighbors cgra tile);
          search ()
        end
    in
    search ();
    match !found with
    | None ->
      Error
        (Printf.sprintf "edge n%d->n%d: no route from tile %d (t=%d) to tile %d by t=%d"
           edge.Graph.src edge.Graph.dst src_tile src_time dst_tile deadline)
    | Some goal ->
      (* Reconstruct hops by walking parents back to the start. *)
      let rec walk (tile, time) acc =
        let state = encode ~tiles tile time in
        match Hashtbl.find_opt parent state with
        | None -> acc
        | Some ((prev_tile, prev_time), via) ->
          let acc =
            match via with
            | None -> acc
            | Some dir -> { Mapping.tile = prev_tile; dir; time } :: acc
          in
          walk (prev_tile, prev_time) acc
      in
      let hops = walk goal [] in
      let cost = Hashtbl.find best (encode ~tiles (fst goal) (snd goal)) in
      (* Reserve all hop ports; roll back on an (unexpected) conflict. *)
      let rec reserve done_hops = function
        | [] -> Ok ()
        | (h : Mapping.hop) :: rest -> (
          match
            Mrrg.reserve mrrg ~tile:h.tile ~time:h.time (Mrrg.Port h.dir)
              (Mrrg.Route { src = edge.Graph.src; dst = edge.Graph.dst })
          with
          | Ok () -> reserve (h :: done_hops) rest
          | Error msg ->
            List.iter
              (fun (d : Mapping.hop) -> Mrrg.release mrrg ~tile:d.tile ~time:d.time (Mrrg.Port d.dir))
              done_hops;
            Error msg)
      in
      (match reserve [] hops with Ok () -> Ok (hops, cost) | Error msg -> Error msg)
  end

let release mrrg hops _edge =
  List.iter
    (fun (h : Mapping.hop) -> Mrrg.release mrrg ~tile:h.tile ~time:h.time (Mrrg.Port h.dir))
    hops
