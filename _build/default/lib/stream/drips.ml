type t = {
  window_size : int;
  partition : Partition.t;
  mutable allocation : (string * int) list;
  exe_table : (string, float list) Hashtbl.t;
  mutable inputs_seen : int;
  mutable reshapes : int;
}

let create ?(window = 10) partition =
  if window <= 0 then invalid_arg "Drips.create: non-positive window";
  {
    window_size = window;
    partition;
    allocation = partition.Partition.allocation;
    exe_table = Hashtbl.create 16;
    inputs_seen = 0;
    reshapes = 0;
  }

let allocation t = t.allocation

let observe t ~label ~busy_time =
  let existing =
    match Hashtbl.find_opt t.exe_table label with Some l -> l | None -> []
  in
  Hashtbl.replace t.exe_table label (busy_time :: existing)

let reshape t =
  let averages =
    List.filter_map
      (fun (label, count) ->
        match Hashtbl.find_opt t.exe_table label with
        | Some (_ :: _ as samples) -> Some (label, count, Iced_util.Stats.mean samples)
        | Some [] | None -> None)
      t.allocation
  in
  match averages with
  | [] | [ _ ] -> ()
  | (l0, c0, t0) :: rest ->
    let bottleneck =
      List.fold_left
        (fun ((_, _, bt) as b) ((_, _, time) as cand) -> if time > bt then cand else b)
        (l0, c0, t0) rest
    in
    let donors =
      List.filter
        (fun (label, count, _) ->
          count > 1 && label <> (let l, _, _ = bottleneck in l))
        averages
    in
    (match donors with
    | [] -> ()
    | d0 :: ds ->
      let donor =
        List.fold_left
          (fun ((_, _, dt) as d) ((_, _, time) as cand) -> if time < dt then cand else d)
          d0 ds
      in
      let b_label, b_count, b_time = bottleneck in
      let d_label, d_count, d_time = donor in
      (* Predict both sides with the precomputed II tables; migrate only
         if the new bottleneck of the pair improves. *)
      let ii label count = Partition.ii_for t.partition label count in
      let scale label old_count new_count time =
        let old_ii = ii label old_count and new_ii = ii label new_count in
        if old_ii = max_int || new_ii = max_int || old_ii = 0 then infinity
        else time *. float_of_int new_ii /. float_of_int old_ii
      in
      let b_after = scale b_label b_count (b_count + 1) b_time in
      let d_after = scale d_label d_count (d_count - 1) d_time in
      if Float.max b_after d_after < b_time then begin
        t.allocation <-
          List.map
            (fun (label, count) ->
              if label = b_label then (label, count + 1)
              else if label = d_label then (label, count - 1)
              else (label, count))
            t.allocation;
        t.reshapes <- t.reshapes + 1
      end)

let input_done t =
  t.inputs_seen <- t.inputs_seen + 1;
  if t.inputs_seen mod t.window_size = 0 then begin
    reshape t;
    Hashtbl.reset t.exe_table
  end

let reshapes t = t.reshapes
