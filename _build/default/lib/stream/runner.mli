(** Streaming execution model: drive a partitioned pipeline over an
    input stream under one of three runtime policies and account time,
    power, and energy per observation window (Figure 13's series).

    Time model: one input costs an instance II * iterations(input)
    kernel-clock cycles, i.e. that many base-clock cycles times the
    period multiplier of its current DVFS level; a stage's time is the
    max over its parallel kernels, and the pipeline's per-input period
    is the bottleneck stage's time.  Power model: every allocated tile
    burns static power at its level continuously and dynamic power
    scaled by its mapped activity and its duty cycle (busy fraction of
    the input period); the SPM and the per-island DVFS controllers (for
    the ICED policy) are charged per {!Iced_power.Model}. *)

open Iced_arch

type policy =
  | Static  (** fixed partition, all levels at [Normal], no runtime adaptation *)
  | Iced_dvfs  (** fixed partition, per-kernel DVFS via {!Controller} *)
  | Drips  (** dynamic repartitioning via {!Drips}, no DVFS *)

val policy_to_string : policy -> string

type window_report = {
  index : int;  (** window number, 0-based *)
  inputs : int;  (** inputs consumed in this window *)
  mean_period_us : float;  (** mean per-input bottleneck period *)
  throughput_per_s : float;
  power_mw : float;  (** mean chip power over the window *)
  efficiency : float;  (** throughput per watt: inputs/s/W *)
  levels : (string * Dvfs.level) list;  (** per-kernel level at window end *)
  allocation : (string * int) list;  (** per-kernel island count at window end *)
}

val run :
  ?window:int ->
  ?params:Iced_power.Params.t ->
  Partition.t ->
  policy ->
  Pipeline.input list ->
  window_report list
(** Stream the inputs through the pipeline.  [window] defaults to the
    paper's 10 inputs. *)

type totals = {
  total_inputs : int;
  total_time_us : float;
  total_energy_uj : float;
  overall_throughput_per_s : float;
  overall_efficiency : float;  (** inputs/s/W over the whole stream *)
}

val aggregate : window_report list -> totals
(** Whole-stream totals: slow phases dominate total time and energy,
    so this is the meaningful end-to-end energy-efficiency (Figure 13's
    headline averages). *)

val mean_efficiency : window_report list -> float
(** Mean of the per-window efficiencies (the Figure 13 series). *)
