lib/stream/workload.ml: Float Iced_util List Rng Stats
