lib/stream/partition.mli: Cgra Dvfs Iced_arch Iced_mapper Mapping Pipeline
