lib/stream/runner.mli: Dvfs Iced_arch Iced_power Partition Pipeline
