lib/stream/controller.ml: Dvfs Float Hashtbl Iced_arch Iced_util List
