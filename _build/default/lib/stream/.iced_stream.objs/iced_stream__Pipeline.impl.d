lib/stream/pipeline.ml: Iced_kernels List Workload
