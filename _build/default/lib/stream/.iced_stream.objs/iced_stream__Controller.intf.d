lib/stream/controller.mli: Dvfs Iced_arch
