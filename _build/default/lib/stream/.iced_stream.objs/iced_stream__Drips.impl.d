lib/stream/drips.ml: Float Hashtbl Iced_util List Partition
