lib/stream/pipeline.mli: Iced_kernels Workload
