lib/stream/partition.ml: Cgra Dvfs Float Hashtbl Iced_arch Iced_kernels Iced_mapper Iced_util Levels List Mapper Mapping Pipeline Printf
