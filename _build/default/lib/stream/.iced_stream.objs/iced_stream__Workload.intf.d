lib/stream/workload.mli:
