lib/stream/drips.mli: Partition
