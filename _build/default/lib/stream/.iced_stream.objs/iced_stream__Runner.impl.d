lib/stream/runner.ml: Controller Drips Dvfs Float Iced_arch Iced_mapper Iced_power Iced_sim Iced_util List Partition Pipeline
