(** Streaming applications as pipelines of kernel instances.

    A pipeline is a list of stages processing a stream of inputs; the
    kernels inside one stage run in parallel on disjoint island sets.
    Each instance declares how many loop iterations one input costs it —
    constant for dense kernels, proportional to the input's non-zeros
    for the data-dependent ones, which is precisely what makes the
    bottleneck drift between inputs (paper Section II-B). *)

type input = { id : int; features : (string * int) list }
(** An input instance described by named magnitudes (e.g. "vertices",
    "edges" for a GCN graph). *)

val feature : input -> string -> int
(** @raise Not_found for unknown feature names. *)

type instance = {
  label : string;  (** unique within the pipeline, e.g. "aggregate.1" *)
  kernel : Iced_kernels.Kernel.t;
  iterations : input -> int;  (** per-input trip count *)
}

type stage = instance list

type t = { name : string; stages : stage list }

val gcn : unit -> t
(** The 2-layer GCN inference pipeline: compress -> aggregate ->
    combrelu -> aggregate -> combine -> pooling (six instances, five
    unique kernels, aggregate twice). *)

val lu : unit -> t
(** The LU application: init -> decompose -> (solver0 || solver1) ->
    (invert || determinant): six kernels in four stages. *)

val instances : t -> instance list
(** All instances, pipeline order. *)

val of_gcn_graph : Workload.gcn_graph -> input
val of_lu_matrix : Workload.lu_matrix -> input

val find : t -> string -> instance
(** @raise Not_found for unknown labels. *)
