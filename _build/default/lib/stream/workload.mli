(** Synthetic input streams for the two streaming applications.

    The paper uses the ENZYMES protein-graph dataset (600 graphs, node
    degree 2-126 with mean 32.6) for GCN inference, and 150 sparse
    matrices up to 100x100 from the UFL collection for LU.  Neither
    dataset ships here, so these generators produce streams with the
    same published shape statistics; only the per-instance size/nnz
    reach the execution-time model, so the shape is all that matters
    (see DESIGN.md, "Substitutions"). *)

type gcn_graph = {
  id : int;
  vertices : int;  (** protein graph size *)
  edges : int;  (** nnz of the adjacency: drives aggregate's runtime *)
}

val enzyme_graphs : ?count:int -> seed:int -> unit -> gcn_graph list
(** [count] defaults to 600.  Degrees are drawn so that the per-graph
    mean degree spans roughly 2..126 with a grand mean near 32.6. *)

type lu_matrix = {
  id : int;
  dim : int;  (** matrix is dim x dim, dim <= 100 *)
  nnz : int;  (** non-zeros: drives decompose/solver runtimes *)
}

val ufl_matrices : ?count:int -> seed:int -> unit -> lu_matrix list
(** [count] defaults to 150. *)

val mean_degree : gcn_graph list -> float
(** 2 * edges / vertices averaged over the stream (sanity checks). *)
