open Iced_arch
open Iced_mapper

type candidate = { islands : int; mapping : Mapping.t }

type prepared_instance = {
  instance : Pipeline.instance;
  candidates : candidate list;
}

type t = {
  cgra : Cgra.t;
  pipeline : Pipeline.t;
  prepared : prepared_instance list;
  allocation : (string * int) list;
  island_ids : (string * int list) list;
  level_floors : (string * Dvfs.level) list;
}

let candidate_for prepared count =
  List.find_opt (fun c -> c.islands = count) prepared.candidates

let ii_for t label count =
  let prepared = List.find (fun p -> p.instance.Pipeline.label = label) t.prepared in
  match candidate_for prepared count with
  | Some c -> c.mapping.Mapping.ii
  | None -> max_int

let allocated t label =
  let prepared = List.find (fun p -> p.instance.Pipeline.label = label) t.prepared in
  let count = List.assoc label t.allocation in
  match candidate_for prepared count with
  | Some c -> c
  | None -> invalid_arg ("Partition.allocated: no candidate for " ^ label)

(* Map a kernel confined to the first [count] islands (representative
   geometry: islands are homogeneous up to the SPM column, and the
   mapper treats the partition's westmost column as its SPM access
   point). *)
let map_on_islands cgra kernel ~count =
  let tiles =
    List.concat_map (fun island -> Cgra.island_tiles cgra island)
      (List.init count (fun i -> i))
  in
  let req =
    Mapper.request ~strategy:Mapper.Dvfs_aware ~tiles ~label_floor:Dvfs.Relax cgra
  in
  Mapper.map req (kernel : Iced_kernels.Kernel.t).dfg

(* All compositions of [total] into [parts] positive summands. *)
let rec compositions total parts =
  if parts <= 0 then if total = 0 then [ [] ] else []
  else if parts = 1 then if total >= 1 then [ [ total ] ] else []
  else
    List.concat_map
      (fun first ->
        List.map (fun rest -> first :: rest) (compositions (total - first) (parts - 1)))
      (List.init total (fun i -> i + 1))

let prepare ?(max_islands_per_kernel = 6) cgra pipeline ~profile =
  let instances = Pipeline.instances pipeline in
  let island_count = Cgra.island_count cgra in
  if List.length instances > island_count then
    Error
      (Printf.sprintf "pipeline has %d kernels but the fabric only %d islands"
         (List.length instances) island_count)
  else begin
    (* Share mappings across instances of the same kernel. *)
    let cache : (string * int, candidate option) Hashtbl.t = Hashtbl.create 32 in
    let candidate kernel count =
      let key = ((kernel : Iced_kernels.Kernel.t).name, count) in
      match Hashtbl.find_opt cache key with
      | Some c -> c
      | None ->
        let c =
          match map_on_islands cgra kernel ~count with
          | Ok mapping -> Some { islands = count; mapping = Levels.assign ~floor:Dvfs.Relax ~allow_gating:false mapping }
          | Error _ -> None
        in
        Hashtbl.replace cache key c;
        c
    in
    let prepared =
      List.map
        (fun (instance : Pipeline.instance) ->
          let candidates =
            List.filter_map
              (fun i -> candidate instance.kernel (i + 1))
              (List.init (min max_islands_per_kernel island_count) (fun i -> i))
          in
          { instance; candidates })
        instances
    in
    match List.find_opt (fun p -> p.candidates = []) prepared with
    | Some p ->
      Error
        (Printf.sprintf "kernel %s cannot map at any island count"
           p.instance.Pipeline.label)
    | None ->
      (* Mean profiled bottleneck time (cycles) of an allocation. *)
      let ii_of p count =
        match candidate_for p count with
        | Some c -> c.mapping.Mapping.ii
        | None -> max_int
      in
      let score counts =
        let by_instance = List.combine prepared counts in
        let total input =
          List.fold_left
            (fun acc (p, count) ->
              let ii = ii_of p count in
              if ii = max_int then infinity
              else acc +. float_of_int (ii * p.instance.Pipeline.iterations input))
            0.0 by_instance
        in
        let bottleneck input =
          List.fold_left
            (fun worst stage ->
              let stage_time =
                List.fold_left
                  (fun acc (instance : Pipeline.instance) ->
                    let p, count =
                      List.find
                        (fun (p, _) -> p.instance.Pipeline.label = instance.Pipeline.label)
                        by_instance
                    in
                    let ii = ii_of p count in
                    if ii = max_int then infinity
                    else
                      max acc (float_of_int (ii * instance.Pipeline.iterations input)))
                  0.0 stage
              in
              Float.max worst stage_time)
            0.0 pipeline.Pipeline.stages
        in
        (* bottleneck first; total time as a tiebreak so surplus
           islands go where they help rather than to whoever is last *)
        ( Iced_util.Stats.mean (List.map bottleneck profile),
          Iced_util.Stats.mean (List.map total profile) )
      in
      let all = compositions island_count (List.length instances) in
      let best =
        List.fold_left
          (fun best counts ->
            let s = score counts in
            match best with
            | Some (_, best_score) when best_score <= s -> best
            | _ -> Some (counts, s))
          None all
      in
      (match best with
      | None -> Error "no feasible allocation"
      | Some (_, (bottleneck, _)) when bottleneck = infinity ->
        Error "every allocation leaves some kernel unmappable"
      | Some (counts, _) ->
        let labels = List.map (fun (i : Pipeline.instance) -> i.Pipeline.label) instances in
        let allocation = List.combine labels counts in
        (* concrete islands handed out contiguously in pipeline order *)
        let island_ids =
          let next = ref 0 in
          List.map
            (fun (label, count) ->
              let ids = List.init count (fun i -> !next + i) in
              next := !next + count;
              (label, ids))
            allocation
        in
        (* Compile-time DVFS eligibility (the paper's normal-or-relax
           allocation): how close does each kernel's profiled time come
           to the per-input bottleneck?  A kernel whose doubled (or
           quadrupled) worst-case ratio still fits under the bottleneck
           may be lowered to Relax (or Rest) by the runtime; the rest
           are pinned at Normal, so a phase shift can never leave a
           slowed kernel throttling the pipeline. *)
        let level_floors =
          let time label input =
            let instance = Pipeline.find pipeline label in
            let count = List.assoc label allocation in
            let p =
              List.find (fun p -> p.instance.Pipeline.label = label) prepared
            in
            let ii = ii_of p count in
            float_of_int (ii * instance.Pipeline.iterations input)
          in
          let bottleneck input =
            List.fold_left
              (fun worst stage ->
                Float.max worst
                  (List.fold_left
                     (fun acc (i : Pipeline.instance) ->
                       Float.max acc (time i.Pipeline.label input))
                     0.0 stage))
              1e-9 pipeline.Pipeline.stages
          in
          List.map
            (fun (label, _) ->
              (* The median of the kernel's share of the bottleneck:
                 the runtime window guard (with its cross-window decay
                 memory) protects against transient phases, so the
                 compile-time bound only rules out kernels that are the
                 bottleneck most of the time — attempting to lower
                 those would always be reverted. *)
              let typical_ratio =
                profile
                |> List.map (fun input -> time label input /. bottleneck input)
                |> Iced_util.Stats.percentile 50.0
              in
              let floor =
                if typical_ratio >= 0.95 then Dvfs.Normal
                else if typical_ratio >= 0.55 then Dvfs.Relax
                else Dvfs.Rest
              in
              (label, floor))
            allocation
        in
        Ok { cgra; pipeline; prepared; allocation; island_ids; level_floors })
  end
