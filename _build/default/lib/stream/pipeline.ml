type input = { id : int; features : (string * int) list }

let feature input name =
  match List.assoc_opt name input.features with
  | Some v -> v
  | None -> raise Not_found

type instance = {
  label : string;
  kernel : Iced_kernels.Kernel.t;
  iterations : input -> int;
}

type stage = instance list

type t = { name : string; stages : stage list }

let kernel name =
  match Iced_kernels.Registry.by_name name with
  | Some k -> k
  | None -> invalid_arg ("Pipeline: unknown kernel " ^ name)

(* GCN feature width kept small so iteration counts stay comparable
   across stages; the *ratio* between data-dependent (edges) and fixed
   (vertices) work is what drives bottleneck drift. *)
let feature_dim = 4

let gcn () =
  let edges input = feature input "edges" in
  let vertices input = feature input "vertices" in
  {
    name = "gcn";
    stages =
      [
        [ { label = "compress"; kernel = kernel "compress";
            iterations = (fun i -> vertices i + (edges i / 2)) } ];
        [ { label = "aggregate.0"; kernel = kernel "aggregate";
            iterations = (fun i -> edges i * 2) } ];
        [ { label = "combrelu"; kernel = kernel "combrelu";
            iterations = (fun i -> vertices i * feature_dim) } ];
        [ { label = "aggregate.1"; kernel = kernel "aggregate";
            iterations = (fun i -> edges i * 2) } ];
        [ { label = "combine"; kernel = kernel "combine";
            iterations = (fun i -> vertices i * feature_dim) } ];
        [ { label = "pooling"; kernel = kernel "pooling";
            iterations = vertices } ];
      ];
  }

let lu () =
  let dim input = feature input "dim" in
  let nnz input = feature input "nnz" in
  {
    name = "lu";
    stages =
      [
        [ { label = "init"; kernel = kernel "init";
            iterations = (fun i -> dim i * 2) } ];
        (* decompose's work tracks the non-zeros (data-dependent), the
           triangular solves are mostly dimension-bound: in dense
           phases decompose bottlenecks and the solvers idle, in sparse
           phases the reverse — the drifting imbalance the runtime
           DVFS exploits *)
        [ { label = "decompose"; kernel = kernel "decompose";
            iterations = (fun i -> nnz i * 4) } ];
        [ { label = "solver0"; kernel = kernel "solver0";
            iterations = (fun i -> dim i * 4) };
          { label = "solver1"; kernel = kernel "solver1";
            iterations = (fun i -> dim i * 4) } ];
        [ { label = "invert"; kernel = kernel "invert";
            iterations = dim };
          { label = "determinant"; kernel = kernel "determinant";
            iterations = (fun i -> dim i * 2) } ];
      ];
  }

let instances t = List.concat t.stages

let of_gcn_graph (g : Workload.gcn_graph) =
  { id = g.id; features = [ ("vertices", g.vertices); ("edges", g.edges) ] }

let of_lu_matrix (m : Workload.lu_matrix) =
  { id = m.id; features = [ ("dim", m.dim); ("nnz", m.nnz) ] }

let find t label = List.find (fun i -> i.label = label) (instances t)
