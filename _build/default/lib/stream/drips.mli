(** The DRIPS baseline (Tan et al., HPCA 2022): dynamic rebalancing of
    pipelined streaming applications by {e reshaping} the partition —
    no DVFS, every tile always at nominal V/F.

    After each observation window, one island migrates from the kernel
    with the most slack (and more than its minimum share) to the
    bottleneck kernel, provided the precomputed mapping tables predict
    a throughput improvement.  This reproduces DRIPS's
    performance-first behaviour: it chases throughput, while ICED holds
    the partition fixed and chases energy. *)

type t

val create : ?window:int -> Partition.t -> t
(** Starts from the partition's profiled allocation. *)

val allocation : t -> (string * int) list
(** Current island count per instance. *)

val observe : t -> label:string -> busy_time:float -> unit

val input_done : t -> unit
(** On the window boundary, attempt one island migration. *)

val reshapes : t -> int
(** Migrations performed so far. *)
