open Iced_arch
module Model = Iced_power.Model
module Params = Iced_power.Params
module Metrics = Iced_sim.Metrics

type policy = Static | Iced_dvfs | Drips

let policy_to_string = function
  | Static -> "static"
  | Iced_dvfs -> "iced"
  | Drips -> "drips"

type window_report = {
  index : int;
  inputs : int;
  mean_period_us : float;
  throughput_per_s : float;
  power_mw : float;
  efficiency : float;
  levels : (string * Dvfs.level) list;
  allocation : (string * int) list;
}

type instance_cost = {
  label : string;
  wall_us : float;  (** execution time of this input on this kernel *)
  mapping : Iced_mapper.Mapping.t;
  level : Dvfs.level;
}

(* Per-input accounting given current allocation and levels. *)
let account (params : Params.t) (partition : Partition.t) ~allocation ~level_of input =
  let pipeline = partition.Partition.pipeline in
  let instance_cost (instance : Pipeline.instance) =
    let label = instance.Pipeline.label in
    let count = List.assoc label allocation in
    let prepared =
      List.find
        (fun (p : Partition.prepared_instance) -> p.instance.Pipeline.label = label)
        partition.Partition.prepared
    in
    let candidate =
      match Partition.candidate_for prepared count with
      | Some c -> c
      | None -> Partition.allocated partition label (* fall back to profiled count *)
    in
    let level = level_of label in
    let iters = instance.Pipeline.iterations input in
    let cycles = candidate.Partition.mapping.Iced_mapper.Mapping.ii * iters in
    let wall_us =
      float_of_int (cycles * Dvfs.multiplier level) /. params.Params.f_normal_mhz
    in
    { label; wall_us; mapping = candidate.Partition.mapping; level }
  in
  let stages = List.map (List.map instance_cost) pipeline.Pipeline.stages in
  let period_us =
    List.fold_left
      (fun acc stage ->
        Float.max acc (List.fold_left (fun a c -> Float.max a c.wall_us) 0.0 stage))
      1e-9 stages
  in
  let costs = List.concat stages in
  (* Tile power: mapped activity scaled by the kernel's duty cycle. *)
  let tiles =
    List.concat_map
      (fun cost ->
        let duty = Float.min 1.0 (cost.wall_us /. period_us) in
        Metrics.per_tile cost.mapping
        |> List.map (fun (tm : Metrics.tile_metrics) ->
               let base_activity =
                 float_of_int tm.busy_slots
                 /. float_of_int cost.mapping.Iced_mapper.Mapping.ii
               in
               { Model.level = cost.level; activity = base_activity *. duty }))
      costs
  in
  let sram_activity =
    Float.min 1.0
      (List.fold_left
         (fun acc cost ->
           let duty = Float.min 1.0 (cost.wall_us /. period_us) in
           acc +. (Metrics.sram_activity cost.mapping *. duty))
         0.0 costs)
  in
  (period_us, costs, tiles, sram_activity)

let run ?(window = 10) ?(params = Params.default) (partition : Partition.t) policy inputs =
  let labels = List.map fst partition.Partition.allocation in
  let controller =
    Controller.create ~window ~label_floors:partition.Partition.level_floors ~labels ()
  in
  let drips = Drips.create ~window partition in
  let design =
    match policy with
    | Static | Drips -> Model.Baseline
    | Iced_dvfs -> Model.Iced
  in
  let level_of label =
    match policy with
    | Static | Drips -> Dvfs.Normal
    | Iced_dvfs -> Controller.level controller label
  in
  let allocation () =
    match policy with
    | Static | Iced_dvfs -> partition.Partition.allocation
    | Drips -> Drips.allocation drips
  in
  let reports = ref [] in
  let window_periods = ref [] in
  let window_powers = ref [] in
  let flush index =
    if !window_periods <> [] then begin
      let mean_period = Iced_util.Stats.mean !window_periods in
      let power = Iced_util.Stats.mean !window_powers in
      let throughput = 1e6 /. mean_period in
      reports :=
        {
          index;
          inputs = List.length !window_periods;
          mean_period_us = mean_period;
          throughput_per_s = throughput;
          power_mw = power;
          efficiency = throughput /. (power /. 1000.0);
          levels =
            List.map (fun label -> (label, level_of label)) labels;
          allocation = allocation ();
        }
        :: !reports;
      window_periods := [];
      window_powers := []
    end
  in
  List.iteri
    (fun i input ->
      let period_us, costs, tiles, sram_activity =
        account params partition ~allocation:(allocation ()) ~level_of input
      in
      let power =
        Model.total_power_mw params design partition.Partition.cgra ~tiles ~sram_activity
      in
      window_periods := period_us :: !window_periods;
      window_powers := power :: !window_powers;
      (* feed the runtime monitors *)
      List.iter
        (fun cost ->
          match policy with
          | Iced_dvfs -> Controller.observe controller ~label:cost.label ~busy_time:cost.wall_us
          | Drips -> Drips.observe drips ~label:cost.label ~busy_time:cost.wall_us
          | Static -> ())
        costs;
      (match policy with
      | Iced_dvfs -> Controller.input_done controller
      | Drips -> Drips.input_done drips
      | Static -> ());
      if (i + 1) mod window = 0 then flush (i / window))
    inputs;
  flush (List.length inputs / window);
  List.rev !reports

type totals = {
  total_inputs : int;
  total_time_us : float;
  total_energy_uj : float;
  overall_throughput_per_s : float;
  overall_efficiency : float;
}

let aggregate reports =
  let total_inputs = List.fold_left (fun acc r -> acc + r.inputs) 0 reports in
  let total_time_us =
    List.fold_left (fun acc r -> acc +. (float_of_int r.inputs *. r.mean_period_us)) 0.0 reports
  in
  let total_energy_uj =
    List.fold_left
      (fun acc r ->
        acc +. (r.power_mw /. 1000.0 *. float_of_int r.inputs *. r.mean_period_us))
      0.0 reports
  in
  let throughput = float_of_int total_inputs /. total_time_us *. 1e6 in
  let watts = total_energy_uj /. total_time_us in
  {
    total_inputs;
    total_time_us;
    total_energy_uj;
    overall_throughput_per_s = throughput;
    overall_efficiency = throughput /. watts;
  }

let mean_efficiency reports =
  Iced_util.Stats.mean (List.map (fun r -> r.efficiency) reports)
