(** The ICED DVFS Controller (paper Section III-B).

    Maintains an [exeTable] of per-kernel execution times and a
    [mapTable] of the islands each kernel owns.  Every [window] inputs
    (the paper uses 10), it identifies the bottleneck kernel, raises
    its islands one level (toward [Normal]), and lowers the
    non-bottleneck kernels one level where doing so cannot create a new
    bottleneck (halving a kernel's frequency doubles its time, so a
    kernel is lowered only when twice its observed time still fits
    under the bottleneck with some guard band). *)

open Iced_arch

type t

val create :
  ?window:int -> ?floor:Dvfs.level -> ?label_floors:(string * Dvfs.level) list ->
  labels:string list -> unit -> t
(** [window] defaults to 10 inputs; [floor] (lowest runtime level)
    defaults to [Rest]; [label_floors] are the compiler's per-kernel
    eligibility bounds ({!Partition.t.level_floors}). *)

val window : t -> int

val level : t -> string -> Dvfs.level
(** Current level of a kernel's islands ([Normal] initially).
    @raise Not_found for unknown labels. *)

val levels : t -> (string * Dvfs.level) list

val observe : t -> label:string -> busy_time:float -> unit
(** Record one kernel's execution time for the current input (the
    termination signal updating the exeTable). *)

val input_done : t -> unit
(** Mark one input fully consumed; on the window boundary, adjust
    levels and reset the exeTable. *)

val adjustments : t -> int
(** Number of windows that triggered a level change so far. *)
