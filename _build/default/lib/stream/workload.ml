open Iced_util

type gcn_graph = { id : int; vertices : int; edges : int }

(* Streams are phase-correlated: the dataset is consumed in order, so
   consecutive inputs resemble each other (protein classes, matrix
   families).  Density follows a multiplicative random walk in
   [2, 126] with occasional jumps; this sustained drift of the
   bottleneck between windows is exactly the phenomenon the DVFS
   controller (and DRIPS's reshaping) exploits — an i.i.d. stream
   would leave no window-stable slack (paper Section II-B). *)
let walk rng ~lo ~hi ~jump current =
  let next =
    if Rng.float rng 1.0 < jump then lo +. Rng.float rng (hi -. lo)
    else current *. exp (Rng.float rng 0.12 -. 0.06)
  in
  Float.min hi (Float.max lo next)

let enzyme_graphs ?(count = 600) ~seed () =
  if count <= 0 then invalid_arg "Workload.enzyme_graphs: non-positive count";
  let rng = Rng.create (seed lxor 0x6CE) in
  let degree = ref (2.0 +. Rng.float rng 60.0) in
  let size = ref (8.0 +. Rng.float rng 60.0) in
  List.init count (fun id ->
      degree := walk rng ~lo:2.0 ~hi:126.0 ~jump:0.012 !degree;
      size := walk rng ~lo:8.0 ~hi:96.0 ~jump:0.012 !size;
      let vertices = int_of_float !size in
      let mean_degree = Float.min !degree (float_of_int (vertices - 1)) in
      let edges = max vertices (int_of_float (float_of_int vertices *. mean_degree /. 2.0)) in
      { id; vertices; edges })

type lu_matrix = { id : int; dim : int; nnz : int }

let ufl_matrices ?(count = 150) ~seed () =
  if count <= 0 then invalid_arg "Workload.ufl_matrices: non-positive count";
  let rng = Rng.create (seed lxor 0x10F) in
  let density = ref (0.02 +. Rng.float rng 0.2) in
  let size = ref (12.0 +. Rng.float rng 60.0) in
  List.init count (fun id ->
      density := walk rng ~lo:0.02 ~hi:0.4 ~jump:0.015 !density;
      size := walk rng ~lo:12.0 ~hi:100.0 ~jump:0.015 !size;
      let dim = int_of_float !size in
      let nnz = max dim (int_of_float (float_of_int (dim * dim) *. !density)) in
      { id; dim; nnz })

let mean_degree graphs =
  graphs
  |> List.map (fun g -> 2.0 *. float_of_int g.edges /. float_of_int g.vertices)
  |> Stats.mean
