lib/power/model.ml: Cgra Dvfs Float Iced_arch List Params Printf
