lib/power/model.mli: Cgra Dvfs Iced_arch Params
