lib/power/params.ml: Dvfs Iced_arch
