lib/power/params.mli: Iced_arch
