open Iced_arch

type design = Baseline | Baseline_gated | Per_tile_dvfs | Iced

type tile_state = { level : Dvfs.level; activity : float }

let design_to_string = function
  | Baseline -> "baseline"
  | Baseline_gated -> "baseline+pg"
  | Per_tile_dvfs -> "per-tile dvfs+pg"
  | Iced -> "iced"

let controller_count design cgra =
  match design with
  | Baseline | Baseline_gated -> 0
  | Per_tile_dvfs -> Cgra.tile_count cgra
  | Iced -> Cgra.island_count cgra

let check_fraction name x =
  if Float.is_nan x || x < 0.0 || x > 1.0 +. 1e-9 then
    invalid_arg (Printf.sprintf "Model: %s %.4f out of [0,1]" name x)

let tile_power_mw (p : Params.t) state =
  check_fraction "tile activity" state.activity;
  if not (Dvfs.is_active state.level) then 0.0
  else
    let vf = Params.voltage_scale p state.level *. Params.frequency_scale p state.level in
    let dynamic = (p.tile.clock_mw +. (p.tile.dyn_max_mw *. state.activity)) *. vf in
    let static = p.tile.static_mw *. Params.leakage_scale p state.level in
    dynamic +. static

let sram_power_mw (p : Params.t) ~activity =
  check_fraction "sram activity" activity;
  p.sram.leak_mw +. (p.sram.dyn_max_mw *. activity)

let overhead_power_mw (p : Params.t) design cgra =
  let per_controller =
    match design with
    | Baseline | Baseline_gated -> 0.0
    | Per_tile_dvfs -> p.per_tile_controller.power_mw
    | Iced -> p.island_controller.power_mw
  in
  float_of_int (controller_count design cgra) *. per_controller

let total_power_mw p design cgra ~tiles ~sram_activity =
  let tile_sum = List.fold_left (fun acc state -> acc +. tile_power_mw p state) 0.0 tiles in
  tile_sum +. sram_power_mw p ~activity:sram_activity +. overhead_power_mw p design cgra

let exec_time_us (p : Params.t) ~cycles =
  if cycles < 0 then invalid_arg "Model.exec_time_us: negative cycles";
  float_of_int cycles /. p.f_normal_mhz

let energy_uj p design cgra ~tiles ~sram_activity ~cycles =
  total_power_mw p design cgra ~tiles ~sram_activity /. 1000.0
  *. exec_time_us p ~cycles

let area_mm2 (p : Params.t) design cgra =
  let tiles = float_of_int (Cgra.tile_count cgra) *. p.tile.area_mm2 in
  let per_controller =
    match design with
    | Baseline | Baseline_gated -> 0.0
    | Per_tile_dvfs -> p.per_tile_controller.area_mm2
    | Iced -> p.island_controller.area_mm2
  in
  let dvfs = float_of_int (controller_count design cgra) *. per_controller in
  let sram = p.sram.area_mm2 in
  [
    ("tiles", tiles);
    ("dvfs support", dvfs);
    ("sram", sram);
    ("total", tiles +. dvfs +. sram);
  ]

let power_breakdown_mw p design cgra ~tiles ~sram_activity =
  let tile_sum = List.fold_left (fun acc state -> acc +. tile_power_mw p state) 0.0 tiles in
  let dvfs = overhead_power_mw p design cgra in
  let sram = sram_power_mw p ~activity:sram_activity in
  [
    ("tiles", tile_sum);
    ("dvfs support", dvfs);
    ("sram", sram);
    ("total", tile_sum +. dvfs +. sram);
  ]
