(** Power/area model parameters.

    The paper obtains its numbers from a placed-and-routed 6x6 ICED in
    the predictive ASAP7 FinFET library (Synopsys DC + Cadence Innovus)
    and SRAM numbers from CACTI 6.5 at 22 nm.  Neither tool exists here,
    so this module substitutes an analytical model calibrated to every
    scalar the paper publishes (see DESIGN.md, "Substitutions"):

    - 6x6 CGRA without SRAM: 6.63 mm^2, 113.95 mW average at 0.7 V /
      434 MHz (Figure 8);
    - 32 KB / 8-bank SPM: 0.559 mm^2, up to 62.653 mW (Section V-A);
    - per-tile DVFS support costs more than 30 % of a tile in both
      power and area (Sections II-B and VI);
    - V/F pairs per level as in {!Iced_arch.Dvfs}. *)

type tile = {
  clock_mw : float;
      (** always-on dynamic power at nominal V/F: clock tree,
          configuration logic — burnt every cycle the tile is clocked,
          busy or not; the main lever DVFS has over power-gating *)
  dyn_max_mw : float;
      (** additional dynamic power at nominal V/F with every local
          cycle busy (FU + crossbar + register switching) *)
  static_mw : float;  (** leakage at nominal voltage *)
  area_mm2 : float;
}

type controller = {
  power_mw : float;  (** LDO + ADPLL + DVFS control unit, always-on *)
  area_mm2 : float;
}

type sram = {
  leak_mw : float;
  dyn_max_mw : float;  (** at one access per bank per cycle *)
  area_mm2 : float;
  kbytes : int;
  banks : int;
}

type t = {
  f_normal_mhz : float;
  v_normal : float;
  tile : tile;
  island_controller : controller;
      (** one per island: sized to supply 4 tiles *)
  per_tile_controller : controller;
      (** one per tile in the UE-CGRA-style baseline *)
  sram : sram;
}

val default : t
(** ASAP7-calibrated values reproducing the paper's scalars for the
    6x6 prototype. *)

val voltage_scale : t -> Iced_arch.Dvfs.level -> float
(** (V/V_nominal)^2 — the dynamic-power voltage factor of Eq. 2. *)

val frequency_scale : t -> Iced_arch.Dvfs.level -> float
(** f/f_nominal. *)

val leakage_scale : t -> Iced_arch.Dvfs.level -> float
(** Leakage roughly tracks voltage (V/V_nominal); zero when gated. *)

val sram_scaled : t -> kbytes:int -> banks:int -> t
(** Linearly re-scale the SRAM block for a different capacity (used
    when modeling CGRAs of other sizes). *)
