open Iced_arch

type tile = { clock_mw : float; dyn_max_mw : float; static_mw : float; area_mm2 : float }

type controller = { power_mw : float; area_mm2 : float }

type sram = { leak_mw : float; dyn_max_mw : float; area_mm2 : float; kbytes : int; banks : int }

type t = {
  f_normal_mhz : float;
  v_normal : float;
  tile : tile;
  island_controller : controller;
  per_tile_controller : controller;
  sram : sram;
}

(* Calibration (see Params docstring and DESIGN.md):
   - 36 tiles at ~60 % average activity plus 9 island controllers
     reproduce Figure 8's 113.95 mW:
     36 * (0.8 + 0.6 * 1.8 + 1.3) + 9 * 0.9 = 110.7 mW
     (clock tree ~25 % of a fully-active tile's power, a typical
     post-layout share; the shared all-digital LDO+ADPLL serves four
     tiles, so it runs well under the per-tile controller's cost);
   - tile area 0.163 mm^2 * 36 + 9 island controllers * 0.085 mm^2
     = 6.63 mm^2 (Figure 8);
   - per-tile controller at 1.15 mW / 0.052 mm^2 is ~30 % of a tile's
     power (3.9 mW fully active) and ~32 % of its area, matching the
     ">30 % of a tile" overhead the paper attributes to UE-CGRA-style
     per-tile DVFS;
   - SRAM leak + dynamic max = 62.653 mW, 0.559 mm^2 (Section V-A). *)
let default =
  {
    f_normal_mhz = 434.0;
    v_normal = 0.70;
    tile = { clock_mw = 0.8; dyn_max_mw = 1.8; static_mw = 1.3; area_mm2 = 0.163 };
    island_controller = { power_mw = 0.9; area_mm2 = 0.085 };
    per_tile_controller = { power_mw = 1.15; area_mm2 = 0.052 };
    sram = { leak_mw = 14.0; dyn_max_mw = 48.653; area_mm2 = 0.559; kbytes = 32; banks = 8 };
  }

let voltage_scale t level =
  let v = Dvfs.voltage level /. t.v_normal in
  v *. v

let frequency_scale t level = Dvfs.frequency_mhz level /. t.f_normal_mhz

let leakage_scale t level =
  if Dvfs.is_active level then Dvfs.voltage level /. t.v_normal else 0.0

let sram_scaled t ~kbytes ~banks =
  if kbytes <= 0 || banks <= 0 then invalid_arg "Params.sram_scaled: non-positive size";
  let ratio = float_of_int kbytes /. float_of_int t.sram.kbytes in
  {
    t with
    sram =
      {
        leak_mw = t.sram.leak_mw *. ratio;
        dyn_max_mw = t.sram.dyn_max_mw *. ratio;
        area_mm2 = t.sram.area_mm2 *. ratio;
        kbytes;
        banks;
      };
  }
