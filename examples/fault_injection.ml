(* Fault injection and recovery on the streaming LU pipeline.

   A tile of the LU partition dies mid-stream (input 50 of 150) and a
   transient-upset process strikes one island a little later.  The four
   recovery policies react very differently:

   - remap      rebuilds the victim kernel's mapping around the dead
                tile on its own islands (Algorithm 2 with the faulted
                resources masked);
   - gate       powers the whole faulted island off and re-floorplans;
   - raise      pins upset-afflicted kernels at Normal (full voltage
                margin clears voltage-induced upsets) but cannot fix
                dead silicon;
   - fail-stop  loses the rest of the stream — the honest baseline a
                resilience claim must be measured against.

   Run with:  dune exec examples/fault_injection.exe *)

module W = Iced_stream.Workload
module P = Iced_stream.Pipeline
module Part = Iced_stream.Partition
module R = Iced_stream.Runner
module F = Iced_fault.Fault

let () =
  let cgra = Iced_arch.Cgra.iced_6x6 in
  let inputs = List.map P.of_lu_matrix (W.ufl_matrices ~seed:7 ()) in
  let profile =
    let step = max 1 (List.length inputs / 50) in
    List.filteri (fun i _ -> i mod step = 0) inputs
  in
  match Part.prepare cgra (P.lu ()) ~profile with
  | Error msg -> prerr_endline ("partitioning failed: " ^ msg)
  | Ok partition ->
    let baseline = R.aggregate (R.run partition R.Iced_dvfs inputs) in
    Printf.printf "fault-free baseline: %.0f matrices/s\n\n"
      baseline.R.overall_throughput_per_s;
    (* aim the upsets at an island the runtime will actually lower:
       voltage-induced upsets only strike below Normal, so a kernel
       pinned at its Normal floor never sees them *)
    let upset_island =
      let slowable =
        List.filter_map
          (fun (label, floor) ->
            if floor = Iced_arch.Dvfs.Rest then
              match List.assoc label partition.Part.island_ids with
              | island :: _ -> Some island
              | [] -> None
            else None)
          partition.Part.level_floors
      in
      match slowable with island :: _ -> island | [] -> 0
    in
    let plan =
      F.make ~seed:11
        [ { F.at_input = 50; fault = F.Tile_dead 0 };
          { F.at_input = 90; fault = F.Upsets { island = upset_island; rate = 1e-3 } } ]
    in
    Format.printf "%a@." F.pp_plan plan;
    Printf.printf "%-10s %10s %8s %9s %8s %11s %10s\n" "recovery" "completed"
      "dropped" "replayed" "mttr us" "matrices/s" "retention";
    List.iter
      (fun recovery ->
        let reports, stats =
          R.run_resilient ~faults:plan ~recovery partition R.Iced_dvfs inputs
        in
        let totals = R.aggregate reports in
        let retention =
          float_of_int stats.R.completed
          /. float_of_int stats.R.offered
          *. Float.min 1.0
               (totals.R.overall_throughput_per_s
               /. baseline.R.overall_throughput_per_s)
        in
        Printf.printf "%-10s %6d/%d %8d %9d %8.2f %11.0f %10.2f\n"
          (R.recovery_to_string recovery)
          stats.R.completed stats.R.offered stats.R.inputs_dropped
          stats.R.inputs_replayed stats.R.mttr_us totals.R.overall_throughput_per_s
          retention)
      [ R.Remap; R.Gate_island; R.Raise_level; R.Fail_stop ];
    (* the same physical faults under the no-recovery policy, window by
       window: the degradation the reports make visible *)
    let reports, _ =
      R.run_resilient ~faults:plan ~recovery:R.Remap partition R.Iced_dvfs inputs
    in
    Printf.printf "\nremap policy, per window (10 inputs each):\n";
    List.iter
      (fun (w : R.window_report) ->
        Printf.printf
          "  window %2d: %5.0f inputs/s%s%s\n" w.R.index w.R.throughput_per_s
          (if w.R.recovery_us > 0.0 then
             Printf.sprintf ", %.2f us recovering" w.R.recovery_us
           else "")
          (if w.R.replayed > 0 then Printf.sprintf ", %d replays" w.R.replayed else ""))
      reports
