(* Design-space exploration: sweep island granularity and DVFS level
   subsets over a few kernels, in parallel, and print the Pareto
   frontier and the best point per kernel.

   Run with:  dune exec examples/explore_sweep.exe -- [kernel ...]
   (defaults to fir, spmv, and gemm)                                  *)

module Space = Iced_explore.Space
module Sweep = Iced_explore.Sweep
module Report = Iced_explore.Report

let () =
  let kernels =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) ->
      List.map
        (fun name ->
          match Iced_kernels.Registry.by_name name with
          | Some k -> k
          | None ->
            Printf.eprintf "unknown kernel %s; try one of: %s\n" name
              (String.concat " " (Iced_kernels.Registry.names ()));
            exit 1)
        names
    | _ ->
      List.filter_map Iced_kernels.Registry.by_name [ "fir"; "spmv"; "gemm" ]
  in
  (* every island shape tiling the 6x6 prototype, crossed with the
     three DVFS level subsets and both unroll factors *)
  let spec =
    { Space.default_spec with Space.unrolls = [ 1; 2 ] }
  in
  let points = Space.enumerate spec in
  Printf.printf "sweeping %d design points over %d kernels...\n%!"
    (List.length points) (List.length kernels);
  let cache = Iced_explore.Cache.in_memory () in
  let config =
    { Sweep.default_config with
      Sweep.workers = min 4 (Domain.recommended_domain_count ()) }
  in
  let outcomes, stats = Sweep.run ~config ~cache points kernels in
  print_string (Report.render outcomes);
  Format.printf "%a@." Sweep.pp_stats stats
