(* The `iced` command-line tool: map kernels, simulate schedules, run
   streaming applications, and print the design-point report.

     iced kernels                         list the Table I workloads
     iced map fir --point iced --unroll 2 map one kernel
     iced certify fir --json              SAT-certified minimal II
     iced simulate gemm --iterations 50   functional simulation
     iced stream gcn --policy iced        streaming run
     iced report                          headline design comparison
     iced explore --workers 4             design-space sweep + Pareto report
     iced fault lu --policies remap       fault-injection campaign
     iced serve --workers 4               mapping-as-a-service daemon
     iced trace map fir --trace-out t.json  any of the above, traced

   Every subcommand's term builds a thunk (its run function takes a
   trailing unit), so the `trace` group can reuse the exact same
   argument spec and wrap the thunk in Iced_obs.Export.capture. *)

open Cmdliner
open Iced_arch
module Design = Iced.Design

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)

let kernel_conv =
  let parse s =
    match Iced_kernels.Registry.by_name s with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown kernel %s (try: %s)" s
             (String.concat " " (Iced_kernels.Registry.names ()))))
  in
  Arg.conv (parse, fun fmt (k : Iced_kernels.Kernel.t) -> Format.pp_print_string fmt k.name)

let point_conv =
  let parse s =
    match
      List.find_opt (fun p -> Design.point_to_string p = s) Design.all_points
    with
    | Some p -> Ok p
    | None -> Error (`Msg "expected one of: baseline, baseline+pg, per-tile dvfs+pg, iced")
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Design.point_to_string p))

let kernel_arg =
  Arg.(required & pos 0 (some kernel_conv) None & info [] ~docv:"KERNEL")

let point_arg =
  Arg.(value & opt point_conv Design.Iced & info [ "point" ] ~docv:"POINT"
         ~doc:"Design point: baseline, baseline+pg, 'per-tile dvfs+pg', or iced.")

let unroll_arg =
  Arg.(value & opt int 1 & info [ "unroll" ] ~docv:"N" ~doc:"Unroll factor (1 or 2).")

let backend_conv =
  let parse s =
    match Iced_mapper.Backend.of_string s with
    | Ok b -> Ok b
    | Error msg ->
      Error
        (`Msg
          (Printf.sprintf "%s (try: %s)" msg
             (String.concat " " Iced_mapper.Backend.names)))
  in
  Arg.conv (parse, fun fmt b ->
      Format.pp_print_string fmt (Iced_mapper.Backend.to_string b))

let backend_arg =
  Arg.(value & opt backend_conv Iced_mapper.Backend.default
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Placement/routing backend: default (greedy placer + incremental \
                 Dijkstra router), sa (simulated-annealing placer; accepts \
                 sa:SEED), or pathfinder (negotiated-congestion router).")

let size_arg =
  Arg.(value & opt int 6 & info [ "size" ] ~docv:"N" ~doc:"Fabric is NxN tiles.")

(* ------------------------------------------------------------------ *)
(* subcommands                                                         *)

let kernels_cmd =
  let run () =
    let t =
      Iced_util.Table.create ~title:"Table I workloads"
        ~columns:[ "kernel"; "domain"; "nodes"; "edges"; "RecMII" ]
    in
    List.iter
      (fun (k : Iced_kernels.Kernel.t) ->
        let n, e, r = Iced_kernels.Kernel.stats k.dfg in
        Iced_util.Table.add_row t
          [ k.name; Iced_kernels.Kernel.domain_to_string k.domain; string_of_int n;
            string_of_int e; string_of_int r ])
      Iced_kernels.Registry.all;
    Iced_util.Table.print t
  in
  Cmd.v (Cmd.info "kernels" ~doc:"List the benchmark kernels") Term.(const run $ const ())

(* Subcommand terms evaluate to thunks: the plain commands apply them
   immediately, the `trace` group wraps them in a capture session. *)

let dot_arg =
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
         ~doc:"Write the kernel's DFG to FILE in Graphviz format.")

let floorplan_arg =
  Arg.(value & flag & info [ "floorplan" ]
         ~doc:"Render the schedule as per-cycle fabric grids (the paper's Figure 1/3 view).")

let config_arg =
  Arg.(value & flag & info [ "config" ]
         ~doc:"Print the per-tile configuration-memory contents (control words).")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print mapper telemetry: II ladder attempts, placements tried, routing \
               expansions, per-II wall time.")

let map_json_arg =
  Arg.(value & flag & info [ "json" ]
         ~doc:"With --stats, emit the telemetry as one JSON line instead of a table.")

let print_mapper_stats ~json (kernel : Iced_kernels.Kernel.t) stats =
  if json then
    (* %S is OCaml lexical syntax, not JSON — escape properly *)
    Printf.printf "{\"kernel\":%s,\"mapper_stats\":%s}\n"
      (Iced_util.Json.quote kernel.name)
      (Iced_mapper.Mapper.stats_to_json stats)
  else begin
    let t =
      Iced_util.Table.create ~title:"mapper telemetry" ~columns:[ "counter"; "value" ]
    in
    let open Iced_mapper.Mapper in
    Iced_util.Table.add_row t [ "attempts (II x margin)"; string_of_int stats.attempts ];
    Iced_util.Table.add_row t [ "II bumps"; string_of_int stats.ii_bumps ];
    Iced_util.Table.add_row t [ "margin ladder position"; string_of_int stats.margin_position ];
    Iced_util.Table.add_row t [ "placements tried"; string_of_int stats.placements_tried ];
    Iced_util.Table.add_row t [ "route calls"; string_of_int stats.route_calls ];
    Iced_util.Table.add_row t [ "route failures"; string_of_int stats.route_failures ];
    Iced_util.Table.add_row t [ "routing expansions"; string_of_int stats.expansions ];
    Iced_util.Table.add_row t [ "SA moves accepted"; string_of_int stats.sa_moves_accepted ];
    Iced_util.Table.add_row t [ "SA moves rejected"; string_of_int stats.sa_moves_rejected ];
    Iced_util.Table.add_row t [ "SA temperature steps"; string_of_int stats.sa_temp_steps ];
    Iced_util.Table.add_row t [ "Pathfinder rounds"; string_of_int stats.pf_rounds ];
    Iced_util.Table.add_row t [ "Pathfinder overflow"; string_of_int stats.pf_overflow ];
    Iced_util.Table.add_row t [ "SAT conflicts"; string_of_int stats.sat_conflicts ];
    Iced_util.Table.add_row t [ "SAT decisions"; string_of_int stats.sat_decisions ];
    Iced_util.Table.add_row t [ "SAT propagations"; string_of_int stats.sat_propagations ];
    Iced_util.Table.add_row t
      [ "per-II wall (s)";
        String.concat " "
          (List.map
             (fun (ii, s) -> Printf.sprintf "II%d:%.3f" ii s)
             (per_ii_times stats)) ];
    Iced_util.Table.add_row t [ "total wall (s)"; Printf.sprintf "%.3f" stats.wall_s ];
    Iced_util.Table.print t
  end

let map_term =
  let run kernel point unroll size backend dot floorplan config stats json () =
    let cgra = Cgra.make ~rows:size ~cols:size () in
    (match dot with
    | Some path ->
      Iced_dfg.Dot.write_file ~path (Iced_kernels.Kernel.dfg_at kernel ~factor:unroll);
      Printf.printf "wrote %s\n" path
    | None -> ());
    let telemetry = Iced_mapper.Mapper.create_stats () in
    match Design.evaluate ~cgra ~unroll ~backend ~stats:telemetry point kernel with
    | Error msg ->
      Printf.eprintf "mapping failed: %s\n" msg;
      exit 1
    | Ok e ->
      if floorplan then Iced_mapper.Floorplan.print e.Design.mapping
      else Format.printf "%a" Iced_mapper.Mapping.pp e.Design.mapping;
      if config then begin
        List.iter
          (fun c ->
            Format.printf "%a" Iced_mapper.Bitstream.pp c;
            Printf.printf "  words:%s\n"
              (String.concat ""
                 (List.map (Printf.sprintf " %016Lx") (Iced_mapper.Bitstream.words c))))
          (Iced_mapper.Bitstream.generate e.Design.mapping);
        Printf.printf "total configuration: %d bits\n"
          (Iced_mapper.Bitstream.total_bits e.Design.mapping)
      end;
      Printf.printf "II = %d, speedup vs CPU = %.2fx\n" e.Design.ii e.Design.speedup_vs_cpu;
      Printf.printf "avg utilization = %.2f, avg DVFS level = %.2f, power = %.1f mW\n"
        e.Design.avg_utilization e.Design.avg_dvfs e.Design.power_mw;
      if stats then print_mapper_stats ~json kernel telemetry
  in
  Term.(
    const run $ kernel_arg $ point_arg $ unroll_arg $ size_arg $ backend_arg $ dot_arg
    $ floorplan_arg $ config_arg $ stats_arg $ map_json_arg)

let map_doc = "Map a kernel onto the CGRA and print the schedule"
let map_cmd = Cmd.v (Cmd.info "map" ~doc:map_doc) Term.(map_term $ const ())

(* ------------------------------------------------------------------ *)
(* certify: SAT-backed exact minimal-II oracle                         *)

let max_ii_arg =
  Arg.(value & opt int 16 & info [ "max-ii" ] ~docv:"N"
         ~doc:"Stop iterating at this II; reaching it undecided yields an \
               unknown verdict.")

let budget_conflicts_arg =
  Arg.(value & opt int 100_000 & info [ "budget-conflicts" ] ~docv:"N"
         ~doc:"CDCL conflict budget per candidate II, shared across CEGAR \
               re-solves at that II.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N"
         ~doc:"Solver decision seed.  The whole report is a deterministic \
               function of kernel, fabric, budget and seed.")

let certify_json_arg =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the report as one JSON line (wall time excluded, so the \
               output is byte-identical across runs).")

let certify_term =
  let run kernel unroll size max_ii budget seed json () =
    let cgra = Cgra.make ~rows:size ~cols:size () in
    let dfg = Iced_kernels.Kernel.dfg_at kernel ~factor:unroll in
    let module Exact = Iced_mapper.Exact in
    let report = Exact.certify ~max_ii ~budget_conflicts:budget ~seed cgra dfg in
    let outcome_str = function
      | Exact.Ii_feasible -> "feasible"
      | Exact.Ii_refuted -> "refuted"
      | Exact.Ii_budget -> "budget"
    in
    if json then begin
      let verdict_json =
        match report.Exact.verdict with
        | Exact.Optimal ii -> Printf.sprintf "{\"kind\":\"optimal\",\"ii\":%d}" ii
        | Exact.Infeasible -> "{\"kind\":\"infeasible\"}"
        | Exact.Unknown { first_undecided; feasible_at } ->
          Printf.sprintf
            "{\"kind\":\"unknown\",\"first_undecided\":%d,\"feasible_at\":%s}"
            first_undecided
            (match feasible_at with Some f -> string_of_int f | None -> "null")
      in
      let per_ii =
        String.concat ","
          (List.map
             (fun (ii, o) ->
               Printf.sprintf "{\"ii\":%d,\"outcome\":%S}" ii (outcome_str o))
             report.Exact.per_ii)
      in
      Printf.printf
        "{\"kernel\":%s,\"fabric\":\"%dx%d\",\"unroll\":%d,\"max_ii\":%d,\
         \"budget_conflicts\":%d,\"seed\":%d,\"verdict\":%s,\"start_ii\":%d,\
         \"per_ii\":[%s],\"conflicts\":%d,\"decisions\":%d,\"propagations\":%d,\
         \"restarts\":%d,\"route_blocks\":%d,\"vars\":%d,\"clauses\":%d,\
         \"witness_valid\":%b}\n"
        (Iced_util.Json.quote kernel.Iced_kernels.Kernel.name)
        size size unroll max_ii budget seed verdict_json report.Exact.start_ii
        per_ii report.Exact.conflicts report.Exact.decisions
        report.Exact.propagations report.Exact.restarts report.Exact.route_blocks
        report.Exact.vars report.Exact.clauses
        (match report.Exact.witness with
        | Some m -> Iced_mapper.Validate.check m = Ok ()
        | None -> false)
    end
    else begin
      (match report.Exact.witness with
      | Some m -> Format.printf "%a" Iced_mapper.Mapping.pp m
      | None -> ());
      (match report.Exact.verdict with
      | Exact.Optimal ii ->
        Printf.printf "verdict: optimal II = %d (every lower II refuted)\n" ii
      | Exact.Infeasible ->
        Printf.printf "verdict: infeasible up to II %d\n" report.Exact.max_ii
      | Exact.Unknown { first_undecided; feasible_at } ->
        Printf.printf "verdict: unknown — budget ran out at II %d%s\n"
          first_undecided
          (match feasible_at with
          | Some f -> Printf.sprintf "; a mapping exists at II %d" f
          | None -> ""));
      Printf.printf "per II:%s\n"
        (String.concat ""
           (List.map
              (fun (ii, o) -> Printf.sprintf " %d:%s" ii (outcome_str o))
              report.Exact.per_ii));
      Printf.printf
        "solver: %d conflicts, %d decisions, %d propagations, %d restarts, \
         %d route blocks, %d vars, %d clauses\n"
        report.Exact.conflicts report.Exact.decisions report.Exact.propagations
        report.Exact.restarts report.Exact.route_blocks report.Exact.vars
        report.Exact.clauses
    end
  in
  Term.(
    const run $ kernel_arg $ unroll_arg $ size_arg $ max_ii_arg
    $ budget_conflicts_arg $ seed_arg $ certify_json_arg)

let certify_doc = "Certify a kernel's minimal II with the SAT-backed exact oracle"

let certify_cmd =
  Cmd.v (Cmd.info "certify" ~doc:certify_doc) Term.(certify_term $ const ())

let iterations_arg =
  Arg.(value & opt int 25 & info [ "iterations" ] ~docv:"N" ~doc:"Loop iterations to run.")

let vcd_arg =
  Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE"
         ~doc:"Dump a value-change-dump waveform of the traced execution to FILE.")

let simulate_term =
  let run (kernel : Iced_kernels.Kernel.t) point unroll iterations vcd () =
    match Design.evaluate ~unroll point kernel with
    | Error msg ->
      Printf.eprintf "mapping failed: %s\n" msg;
      exit 1
    | Ok e ->
      let result =
        Iced_sim.Sim.run ~binding:kernel.binding e.Design.mapping ~iterations
      in
      let golden =
        Iced_sim.Sim.interpret ~binding:kernel.binding
          e.Design.mapping.Iced_mapper.Mapping.dfg ~iterations
      in
      Printf.printf "%d iterations in %d cycles (%d op instances)\n" iterations
        result.Iced_sim.Sim.cycles result.Iced_sim.Sim.executed;
      Printf.printf "stores: %d, timing violations: %d, matches interpreter: %b\n"
        (List.length result.Iced_sim.Sim.stores)
        (List.length result.Iced_sim.Sim.violations)
        (result.Iced_sim.Sim.stores = golden);
      (match vcd with
      | Some path ->
        Iced_sim.Trace.write_vcd ~path e.Design.mapping ~iterations:(min iterations 8);
        Printf.printf "wrote %s\n" path
      | None -> ());
      if result.Iced_sim.Sim.stores <> golden || result.Iced_sim.Sim.violations <> []
      then exit 1
  in
  Term.(const run $ kernel_arg $ point_arg $ unroll_arg $ iterations_arg $ vcd_arg)

let simulate_doc = "Execute a mapped kernel and check it functionally"
let simulate_cmd = Cmd.v (Cmd.info "simulate" ~doc:simulate_doc) Term.(simulate_term $ const ())

let app_arg =
  Arg.(required & pos 0 (some (enum [ ("gcn", `Gcn); ("lu", `Lu) ])) None
       & info [] ~docv:"APP" ~doc:"Streaming application: gcn or lu.")

let policy_arg =
  Arg.(value
       & opt (enum [ ("static", Iced_stream.Runner.Static);
                     ("iced", Iced_stream.Runner.Iced_dvfs);
                     ("drips", Iced_stream.Runner.Drips) ])
           Iced_stream.Runner.Iced_dvfs
       & info [ "policy" ] ~docv:"POLICY" ~doc:"Runtime policy: static, iced, or drips.")

let stream_term =
  let run app policy () =
    let cgra = Cgra.iced_6x6 in
    let pipeline, inputs =
      match app with
      | `Gcn ->
        ( Iced_stream.Pipeline.gcn (),
          List.map Iced_stream.Pipeline.of_gcn_graph
            (Iced_stream.Workload.enzyme_graphs ~seed:42 ()) )
      | `Lu ->
        ( Iced_stream.Pipeline.lu (),
          List.map Iced_stream.Pipeline.of_lu_matrix
            (Iced_stream.Workload.ufl_matrices ~seed:7 ()) )
    in
    let profile =
      let step = max 1 (List.length inputs / 50) in
      List.filteri (fun i _ -> i mod step = 0) inputs
    in
    match Iced_stream.Partition.prepare cgra pipeline ~profile with
    | Error msg ->
      Printf.eprintf "partitioning failed: %s\n" msg;
      exit 1
    | Ok partition ->
      let reports = Iced_stream.Runner.run partition policy inputs in
      let t =
        Iced_util.Table.create
          ~title:
            (Printf.sprintf "%s under the %s policy" pipeline.Iced_stream.Pipeline.name
               (Iced_stream.Runner.policy_to_string policy))
          ~columns:[ "window"; "inputs/s"; "power mW"; "inputs/s/W" ]
      in
      List.iter
        (fun (w : Iced_stream.Runner.window_report) ->
          Iced_util.Table.add_row t
            [ string_of_int w.index;
              Printf.sprintf "%.0f" w.throughput_per_s;
              Printf.sprintf "%.1f" w.power_mw;
              Printf.sprintf "%.0f" w.efficiency ])
        reports;
      let totals = Iced_stream.Runner.aggregate reports in
      Iced_util.Table.add_row t
        [ "OVERALL";
          Printf.sprintf "%.0f" totals.Iced_stream.Runner.overall_throughput_per_s;
          Printf.sprintf "%.1f"
            (totals.Iced_stream.Runner.total_energy_uj
            /. totals.Iced_stream.Runner.total_time_us *. 1000.0);
          Printf.sprintf "%.0f" totals.Iced_stream.Runner.overall_efficiency ];
      Iced_util.Table.print t
  in
  Term.(const run $ app_arg $ policy_arg)

let stream_doc = "Run a streaming application over its input dataset"
let stream_cmd = Cmd.v (Cmd.info "stream" ~doc:stream_doc) Term.(stream_term $ const ())

(* ------------------------------------------------------------------ *)
(* explore: design-space sweep with persistent cache + Pareto report   *)

module Explore = Iced_explore

let dims_conv =
  let parse s =
    match String.split_on_char 'x' s with
    | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some r, Some c when r > 0 && c > 0 -> Ok (r, c)
      | _ -> Error (`Msg (Printf.sprintf "bad dimensions %S (expected RxC)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad dimensions %S (expected RxC)" s))
  in
  Arg.conv (parse, fun fmt (r, c) -> Format.fprintf fmt "%dx%d" r c)

let floor_conv =
  let parse = function
    | "rest" -> Ok Dvfs.Rest
    | "relax" -> Ok Dvfs.Relax
    | "normal" -> Ok Dvfs.Normal
    | s -> Error (`Msg (Printf.sprintf "bad floor %S (rest, relax, or normal)" s))
  in
  Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (Dvfs.to_string l))

let explore_term =
  let fabrics_arg =
    Arg.(value & opt (list dims_conv) [ (6, 6) ]
         & info [ "fabrics" ] ~docv:"RxC,..." ~doc:"Fabric dimensions to sweep.")
  in
  let islands_arg =
    Arg.(value & opt (some (list dims_conv)) None
         & info [ "islands" ] ~docv:"RxC,..."
             ~doc:"Island shapes to sweep; default: every shape tiling each fabric.")
  in
  let banks_arg =
    Arg.(value & opt (list int) [ 8 ]
         & info [ "banks" ] ~docv:"N,..." ~doc:"SPM bank counts to sweep.")
  in
  let floors_arg =
    Arg.(value & opt (list floor_conv) [ Dvfs.Rest; Dvfs.Relax; Dvfs.Normal ]
         & info [ "floors" ] ~docv:"L,..."
             ~doc:"DVFS label floors to sweep (the supported level subsets): rest, \
                   relax, normal.")
  in
  let unrolls_arg =
    Arg.(value & opt (list int) [ 1 ]
         & info [ "unrolls" ] ~docv:"N,..." ~doc:"Unroll factors to sweep (1 and/or 2).")
  in
  let max_iis_arg =
    Arg.(value & opt (list int) [ 64 ]
         & info [ "max-ii" ] ~docv:"N,..." ~doc:"Mapper II caps to sweep.")
  in
  let kernels_arg =
    Arg.(value & opt (some (list kernel_conv)) None
         & info [ "kernels" ] ~docv:"K,..."
             ~doc:"Kernels to evaluate; default: the ten standalone Table I kernels.")
  in
  let sample_arg =
    Arg.(value & opt (some int) None
         & info [ "sample" ] ~docv:"N"
             ~doc:"Evaluate a deterministic N-point subsample of the space.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Sampling seed.")
  in
  let workers_arg =
    Arg.(value & opt int 1
         & info [ "workers" ] ~docv:"N" ~doc:"Evaluation domains (1 = serial).")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-(point, kernel) mapping budget; unmapped points are reported \
                   as timeouts.  Default: none.")
  in
  let cache_arg =
    Arg.(value & opt string ".explore-cache.jsonl"
         & info [ "cache" ] ~docv:"FILE" ~doc:"Persistent evaluation-cache file.")
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Do not read or write the cache file.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-(point, kernel) results as CSV.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "out-json" ] ~docv:"FILE"
             ~doc:"Write per-(point, kernel) results as JSON.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No progress line on stderr.")
  in
  let run fabrics islands banks floors unrolls max_iis kernels sample seed workers
      timeout backend cache_path no_cache csv json quiet () =
    let islands =
      match islands with
      | Some shapes -> shapes
      | None ->
        List.sort_uniq compare
          (List.concat_map (fun (r, c) -> Explore.Space.tiling_islands r c) fabrics)
    in
    let spec =
      {
        Explore.Space.fabrics;
        islands;
        spm_banks = banks;
        floors;
        unrolls;
        max_iis;
      }
    in
    let points =
      match sample with
      | Some count -> Explore.Space.sample spec ~seed ~count
      | None -> Explore.Space.enumerate spec
    in
    if points = [] then begin
      Printf.eprintf "the specified space contains no valid design point\n";
      exit 1
    end;
    let kernels =
      match kernels with Some ks -> ks | None -> Iced_kernels.Registry.standalone
    in
    let cache =
      if no_cache then Explore.Cache.in_memory ()
      else Explore.Cache.open_file cache_path
    in
    let config =
      {
        Explore.Sweep.workers;
        timeout_s = Option.value timeout ~default:infinity;
        params = Iced_power.Params.default;
        backend;
        (* a \r-progress line only makes sense on a terminal *)
        progress = (not quiet) && Unix.isatty Unix.stderr;
      }
    in
    let outcomes, stats = Explore.Sweep.run ~config ~cache points kernels in
    (* the report is a pure function of the outcomes and goes to stdout;
       run statistics (wall time, cache traffic) go to stderr so two
       sweeps of the same space stay byte-identical *)
    print_string (Explore.Report.render outcomes);
    (match csv with
    | Some path ->
      let oc = open_out path in
      output_string oc (Explore.Report.csv outcomes);
      close_out oc;
      Printf.eprintf "wrote %s\n" path
    | None -> ());
    (match json with
    | Some path ->
      let oc = open_out path in
      output_string oc (Explore.Report.json outcomes);
      close_out oc;
      Printf.eprintf "wrote %s\n" path
    | None -> ());
    Format.eprintf "[explore] %a@." Explore.Sweep.pp_stats stats;
    Explore.Cache.close cache
  in
  Term.(
    const run $ fabrics_arg $ islands_arg $ banks_arg $ floors_arg $ unrolls_arg
    $ max_iis_arg $ kernels_arg $ sample_arg $ seed_arg $ workers_arg $ timeout_arg
    $ backend_arg $ cache_arg $ no_cache_arg $ csv_arg $ json_arg $ quiet_arg)

let explore_doc = "Sweep a design space and report its Pareto frontier"
let explore_cmd = Cmd.v (Cmd.info "explore" ~doc:explore_doc) Term.(explore_term $ const ())

(* ------------------------------------------------------------------ *)
(* fault: seeded fault-injection campaign over the streaming pipeline  *)

module Campaign = Iced_campaign.Campaign
module Fault = Iced_fault.Fault

let fault_term =
  let app_conv =
    let parse s =
      match Campaign.app_of_string s with
      | Some a -> Ok a
      | None -> Error (`Msg (Printf.sprintf "bad app %S (gcn or lu)" s))
    in
    Arg.conv (parse, fun fmt a -> Format.pp_print_string fmt (Campaign.app_to_string a))
  in
  let recovery_conv =
    let parse s =
      match Iced_stream.Runner.recovery_of_string s with
      | Some r -> Ok r
      | None ->
        Error (`Msg (Printf.sprintf "bad recovery %S (remap, gate, raise, fail-stop)" s))
    in
    Arg.conv
      (parse, fun fmt r ->
        Format.pp_print_string fmt (Iced_stream.Runner.recovery_to_string r))
  in
  let kind_conv =
    let parse s =
      match Fault.class_of_string s with
      | Some k -> Ok k
      | None ->
        Error (`Msg (Printf.sprintf "bad fault kind %S (tile, link, island, upset)" s))
    in
    Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Fault.class_to_string k))
  in
  let app_arg =
    Arg.(value & pos 0 app_conv Campaign.Lu
         & info [] ~docv:"APP" ~doc:"Streaming application: gcn or lu (default lu).")
  in
  let policy_arg =
    Arg.(value
         & opt (enum [ ("static", Iced_stream.Runner.Static);
                       ("iced", Iced_stream.Runner.Iced_dvfs) ])
             Iced_stream.Runner.Iced_dvfs
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Runtime policy under fault: static or iced (drips has no fault model).")
  in
  let recoveries_arg =
    Arg.(value
         & opt (list recovery_conv)
             [ Iced_stream.Runner.Remap; Iced_stream.Runner.Gate_island;
               Iced_stream.Runner.Raise_level; Iced_stream.Runner.Fail_stop ]
         & info [ "policies"; "recoveries" ] ~docv:"R,..."
             ~doc:"Recovery policies to compare: remap, gate, raise, fail-stop.")
  in
  let kinds_arg =
    Arg.(value
         & opt (list kind_conv) [ Fault.Tile; Fault.Link; Fault.Island; Fault.Upset ]
         & info [ "kinds" ] ~docv:"K,..."
             ~doc:"Fault families the plans draw from: tile, link, island, upset.")
  in
  let seeds_arg =
    Arg.(value & opt int 4
         & info [ "seeds" ] ~docv:"N" ~doc:"Fault-plan seeds 0..N-1, one plan each.")
  in
  let faults_arg =
    Arg.(value & opt int 2
         & info [ "faults" ] ~docv:"N" ~doc:"Fault events injected per run.")
  in
  let rate_arg =
    Arg.(value & opt float 1e-3
         & info [ "rate" ] ~docv:"P"
             ~doc:"Per-cycle upset probability at the Rest level.")
  in
  let inputs_arg =
    Arg.(value & opt int 200
         & info [ "inputs" ] ~docv:"N" ~doc:"Stream length per run.")
  in
  let window_arg =
    Arg.(value & opt int 10
         & info [ "window" ] ~docv:"N" ~doc:"Runner observation window.")
  in
  let workers_arg =
    Arg.(value & opt int 1
         & info [ "workers" ] ~docv:"N"
             ~doc:"Campaign domains (1 = serial); results are identical for any N.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-cell results as CSV.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "out-json" ] ~docv:"FILE" ~doc:"Write the campaign as JSON.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No progress line on stderr.")
  in
  let run app policy recoveries kinds seeds faults rate inputs window workers csv json
      quiet () =
    if seeds <= 0 then begin
      Printf.eprintf "--seeds must be positive\n";
      exit 1
    end;
    let spec =
      {
        Campaign.app;
        policy;
        recoveries;
        kinds;
        seeds = List.init seeds Fun.id;
        faults_per_run = faults;
        upset_rate = rate;
        inputs;
        window;
        workers;
      }
    in
    let progress =
      if quiet || not (Unix.isatty Unix.stderr) then fun _ _ -> ()
      else fun finished total -> Printf.eprintf "\r[fault] %d/%d cells%!" finished total
    in
    match Campaign.run ~progress spec with
    | Error msg ->
      Printf.eprintf "campaign failed: %s\n" msg;
      exit 1
    | Ok campaign ->
      if (not quiet) && Unix.isatty Unix.stderr then Printf.eprintf "\r%!";
      (* the report is a pure function of the spec and goes to stdout *)
      print_string (Campaign.render campaign);
      (match csv with
      | Some path ->
        let oc = open_out path in
        output_string oc (Campaign.csv campaign);
        close_out oc;
        Printf.eprintf "wrote %s\n" path
      | None -> ());
      (match json with
      | Some path ->
        let oc = open_out path in
        output_string oc (Campaign.json campaign);
        close_out oc;
        Printf.eprintf "wrote %s\n" path
      | None -> ())
  in
  Term.(
    const run $ app_arg $ policy_arg $ recoveries_arg $ kinds_arg $ seeds_arg
    $ faults_arg $ rate_arg $ inputs_arg $ window_arg $ workers_arg $ csv_arg
    $ json_arg $ quiet_arg)

let fault_doc = "Run a seeded fault-injection campaign and compare recovery policies"
let fault_cmd = Cmd.v (Cmd.info "fault" ~doc:fault_doc) Term.(fault_term $ const ())

let report_term =
  let run size () =
    let cgra = Cgra.make ~rows:size ~cols:size () in
    let t =
      Iced_util.Table.create
        ~title:(Printf.sprintf "design-point comparison on %dx%d (means over 10 kernels)" size size)
        ~columns:[ "design"; "avg util"; "avg dvfs"; "power mW" ]
    in
    List.iter
      (fun point ->
        let evals =
          List.filter_map
            (fun k ->
              match Design.evaluate ~cgra point k with Ok e -> Some e | Error _ -> None)
            Iced_kernels.Registry.standalone
        in
        let mean f = Iced_util.Stats.mean (List.map f evals) in
        Iced_util.Table.add_row t
          [ Design.point_to_string point;
            Printf.sprintf "%.2f" (mean (fun e -> e.Design.avg_utilization));
            Printf.sprintf "%.2f" (mean (fun e -> e.Design.avg_dvfs));
            Printf.sprintf "%.1f" (mean (fun e -> e.Design.power_mw)) ])
      Design.all_points;
    Iced_util.Table.print t
  in
  Term.(const run $ size_arg)

let report_doc = "Compare the four design points on the kernel suite"
let report_cmd = Cmd.v (Cmd.info "report" ~doc:report_doc) Term.(report_term $ const ())

(* ------------------------------------------------------------------ *)
(* serve: the mapping-as-a-service daemon                              *)

let serve_term =
  let workers_arg =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Evaluation domains in the worker pool.")
  in
  let depth_arg =
    Arg.(value & opt int 64
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Admission-control bound: requests past this queue depth are shed \
                   with a structured overloaded reply instead of waiting.")
  in
  let cache_arg =
    Arg.(value & opt string ".serve-cache.jsonl"
         & info [ "cache" ] ~docv:"FILE"
             ~doc:"Persistent evaluation-cache file — the daemon's second tier, \
                   shared with `iced explore`'s format.")
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"In-memory cache tier only.")
  in
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix-domain socket at PATH (clients served one at a \
                   time) instead of stdin/stdout.")
  in
  let once_arg =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"No worker pool: evaluate serially on the calling domain, replying \
                   in arrival order.  The one-shot oracle the byte-identity tests \
                   compare the daemon against.")
  in
  let restart_budget_arg =
    Arg.(value & opt int 8
         & info [ "restart-budget" ] ~docv:"N"
             ~doc:"Worker-domain deaths the supervisor absorbs (restarting the \
                   worker) before retiring workers and failing queued requests.")
  in
  let default_deadline_arg =
    Arg.(value & opt (some int) None
         & info [ "default-deadline-ms" ] ~docv:"MS"
             ~doc:"Deadline applied to requests that carry no deadline_ms of their \
                   own; expired requests answer status \"timeout\".")
  in
  let fsync_arg =
    Arg.(value & flag
         & info [ "cache-fsync" ]
             ~doc:"fsync the persistent cache after every append (survives power \
                   loss, costs a disk round-trip per record).  Without it appends \
                   are flushed to the OS, which survives process death only.")
  in
  let run workers depth cache_path no_cache socket once restart_budget
      default_deadline_ms fsync () =
    let cache =
      if no_cache then Explore.Cache.in_memory ()
      else Explore.Cache.open_file ~fsync cache_path
    in
    (* SIGTERM/SIGINT request a drain: stop accepting, finish accepted
       work, flush the cache, remove the socket, exit 0.  No SA_RESTART:
       the signal must interrupt a blocked read/accept so the transport
       notices the flag. *)
    let stop_flag = Atomic.make false in
    let request_stop = Sys.Signal_handle (fun _ -> Atomic.set stop_flag true) in
    (try Sys.set_signal Sys.sigterm request_stop with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigint request_stop with Invalid_argument _ -> ());
    let stop () = Atomic.get stop_flag in
    let config =
      { Iced_serve.Server.workers; queue_depth = depth; cache; restart_budget;
        default_deadline_ms }
    in
    (match socket with
    | Some path -> ignore (Iced_serve.Server.serve_socket ~once ~stop config path)
    | None -> ignore (Iced_serve.Server.serve_channels ~once ~stop config stdin stdout));
    Explore.Cache.close cache
  in
  Term.(
    const run $ workers_arg $ depth_arg $ cache_arg $ no_cache_arg $ socket_arg
    $ once_arg $ restart_budget_arg $ default_deadline_arg $ fsync_arg)

let serve_doc = "Field map/explore/stream/fault requests as a long-lived daemon"
let serve_cmd = Cmd.v (Cmd.info "serve" ~doc:serve_doc) Term.(serve_term $ const ())

(* ------------------------------------------------------------------ *)
(* tenant: multi-tenant shared-fabric streaming under a power cap      *)

module Tenancy = Iced_tenancy

let tenancy_policy_conv =
  let parse s =
    match Tenancy.Allocator.policy_of_string s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown policy %S (expected fair-share, weighted-qos, or strict-priority)"
             s))
  in
  Arg.conv
    (parse, fun fmt p -> Format.pp_print_string fmt (Tenancy.Allocator.policy_to_string p))

let tenancy_tenants_arg =
  Arg.(value & opt int 4
       & info [ "tenants" ] ~docv:"N"
           ~doc:"Fleet size: N synthetic tenants cycling Table I kernels and QoS \
                 classes (premium/standard/batch).")

let tenancy_inputs_arg =
  Arg.(value & opt int 60
       & info [ "inputs" ] ~docv:"N" ~doc:"Inputs per tenant stream.")

let tenancy_seed_arg =
  Arg.(value & opt int 1
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"Workload seed; equal seeds give byte-identical fleets and reports.")

let tenancy_faults_arg =
  Arg.(value & opt int 0
       & info [ "faults" ] ~docv:"N"
           ~doc:"Island-regulator failures to inject across the run (cross-tenant \
                 reallocation exercises).")

let tenancy_fault_seed_arg =
  Arg.(value & opt int 7 & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Fault-event seed.")

let tenancy_json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE" ~doc:"Also write the machine-readable report to FILE.")

let tenancy_plan ~tenants ~inputs ~seed ~faults ~fault_seed =
  let fleet = Tenancy.Tenant.synthetic_mix ~inputs ~seed ~count:tenants () in
  let spec = { Tenancy.Scheduler.default_spec with faults; fault_seed } in
  match Tenancy.Scheduler.plan ~spec fleet with
  | Ok plan -> plan
  | Error msg ->
    Printf.eprintf "planning failed: %s\n" msg;
    exit 1

let tenant_run_term =
  let policy_arg =
    Arg.(value & opt tenancy_policy_conv Tenancy.Allocator.Fair_share
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Arbitration policy: fair-share, weighted-qos, or strict-priority.")
  in
  let cap_arg =
    Arg.(value & opt (some float) None
         & info [ "cap-mw" ] ~docv:"MW"
             ~doc:"Global power cap in milliwatts (no cap when omitted).")
  in
  let frac_arg =
    Arg.(value & opt (some float) None
         & info [ "cap-fraction" ] ~docv:"F"
             ~doc:"Cap as a fraction of the fleet's all-normal envelope; takes \
                   precedence over $(b,--cap-mw).")
  in
  let run tenants inputs seed policy cap frac faults fault_seed json () =
    let plan = tenancy_plan ~tenants ~inputs ~seed ~faults ~fault_seed in
    let cap_mw =
      match frac with
      | Some f -> Some (f *. Tenancy.Scheduler.max_envelope_mw plan)
      | None -> cap
    in
    let report = Tenancy.Scheduler.run ?cap_mw ~policy plan in
    Tenancy.Scheduler.render Format.std_formatter report;
    (match Tenancy.Scheduler.starved report with
    | [] -> ()
    | ids -> Printf.eprintf "STARVED tenants: %s\n" (String.concat ", " ids));
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Tenancy.Scheduler.report_json report);
        output_char oc '\n';
        close_out oc;
        Printf.eprintf "wrote %s\n" path)
      json
  in
  Term.(
    const run $ tenancy_tenants_arg $ tenancy_inputs_arg $ tenancy_seed_arg $ policy_arg
    $ cap_arg $ frac_arg $ tenancy_faults_arg $ tenancy_fault_seed_arg $ tenancy_json_arg)

let tenant_run_doc = "Stream a tenant fleet once under a power cap and report the fleet"

let tenant_sweep_term =
  let fractions_arg =
    Arg.(value & opt (list float) Tenancy.Capsweep.default_fractions
         & info [ "fractions" ] ~docv:"F,..."
             ~doc:"Cap fractions of the all-normal envelope to sweep.")
  in
  let policies_arg =
    Arg.(value & opt (list tenancy_policy_conv) [ Tenancy.Allocator.Fair_share ]
         & info [ "policies" ] ~docv:"P,..."
             ~doc:"Arbitration policies to sweep (cells are policy x fraction).")
  in
  let workers_arg =
    Arg.(value & opt int 1
         & info [ "workers" ] ~docv:"N"
             ~doc:"Sweep-cell worker domains; results are byte-identical at any count.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the sweep rows as CSV to FILE.")
  in
  let run tenants inputs seed fractions policies workers faults fault_seed json csv () =
    let plan = tenancy_plan ~tenants ~inputs ~seed ~faults ~fault_seed in
    let sweep = Tenancy.Capsweep.run ~fractions ~policies ~workers plan in
    Tenancy.Capsweep.render Format.std_formatter sweep;
    let write path contents =
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Printf.eprintf "wrote %s\n" path
    in
    Option.iter (fun path -> write path (Tenancy.Capsweep.sweep_json sweep ^ "\n")) json;
    Option.iter (fun path -> write path (Tenancy.Capsweep.sweep_csv sweep)) csv
  in
  Term.(
    const run $ tenancy_tenants_arg $ tenancy_inputs_arg $ tenancy_seed_arg
    $ fractions_arg $ policies_arg $ workers_arg $ tenancy_faults_arg
    $ tenancy_fault_seed_arg $ tenancy_json_arg $ csv_arg)

let tenant_sweep_doc = "Cap-sweep the fleet: throughput vs cap vs fairness, Pareto-annotated"

let tenant_cmd =
  Cmd.group
    (Cmd.info "tenant"
       ~doc:
         "Share one fabric across N tenant pipelines under a global power cap \
          (see docs/MULTITENANT.md)")
    [
      Cmd.v (Cmd.info "run" ~doc:tenant_run_doc) Term.(tenant_run_term $ const ());
      Cmd.v (Cmd.info "sweep" ~doc:tenant_sweep_doc) Term.(tenant_sweep_term $ const ());
    ]

(* ------------------------------------------------------------------ *)
(* trace: any subcommand above, run under the Iced_obs collector       *)

let trace_out_arg =
  Arg.(value & opt string "trace.json"
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the Chrome/Perfetto trace-event JSON to FILE (open it in \
                 ui.perfetto.dev or chrome://tracing).")

let flame_arg =
  Arg.(value & opt (some string) None
       & info [ "flame" ] ~docv:"FILE"
           ~doc:"Also write a plain-text flame summary (time per span path) to FILE.")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Also write the metrics registry (counters, gauges, histograms) as JSON \
                 to FILE.")

let traced_cmd name doc term =
  let wrap out flame_out metrics_out thunk =
    Iced_obs.Export.capture ~out ?flame_out ?metrics_out thunk;
    let dropped = Iced_obs.Trace.dropped () in
    if dropped > 0 then
      Printf.eprintf "[trace] ring overflow: %d oldest events dropped\n" dropped;
    Printf.eprintf "[trace] wrote %s\n" out
  in
  Cmd.v
    (Cmd.info name ~doc:(doc ^ " (traced)"))
    Term.(const wrap $ trace_out_arg $ flame_arg $ metrics_out_arg $ term)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Run a subcommand with the tracing collector on and export the span trace, \
          an optional flame summary, and optional metrics")
    [
      traced_cmd "map" map_doc map_term;
      traced_cmd "certify" certify_doc certify_term;
      traced_cmd "simulate" simulate_doc simulate_term;
      traced_cmd "stream" stream_doc stream_term;
      traced_cmd "report" report_doc report_term;
      traced_cmd "explore" explore_doc explore_term;
      traced_cmd "fault" fault_doc fault_term;
      traced_cmd "serve" serve_doc serve_term;
    ]

let () =
  let doc = "ICED: DVFS-aware CGRA mapping, simulation, and evaluation" in
  let info = Cmd.info "iced" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ kernels_cmd; map_cmd; certify_cmd; simulate_cmd; stream_cmd; report_cmd;
            explore_cmd; fault_cmd; serve_cmd; tenant_cmd; trace_cmd ]))
