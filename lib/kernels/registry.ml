let standalone = Embedded.all @ Ml_kernels.all @ Hpc.all

let gcn = Gcn.all

let lu = Lu.all

let all = standalone @ gcn @ lu

let by_name name =
  match List.find_opt (fun (k : Kernel.t) -> k.name = name) all with
  | Some _ as found -> found
  | None -> (
    (* rand<nodes>x<seed>: seeded synthetic kernels, built on demand *)
    match Synth.parse_name name with
    | Some (nodes, seed) -> Some (Synth.kernel ~nodes ~seed)
    | None -> None)

let names () = List.map (fun (k : Kernel.t) -> k.name) all
