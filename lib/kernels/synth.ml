(* Seeded synthetic kernels: random predicated-dataflow loop bodies
   with an exact node budget, shared by bench shoot-outs, property
   tests, and `iced explore` so every large-graph experiment draws
   from the same corpus.  Structure mirrors the Table I kernels — one
   predicated induction chain (the RecMII-4 recurrence), a body of
   binary ops / loads / accumulators over live values, and a closing
   store — so the generator stresses scale, not exotic graph shapes. *)

open Iced_dfg
open Builders
module Rng = Iced_util.Rng

let min_nodes = 8

let name ~nodes ~seed = Printf.sprintf "rand%dx%d" nodes seed

let parse_name s =
  let prefix = "rand" in
  let plen = String.length prefix in
  if String.length s <= plen || String.sub s 0 plen <> prefix then None
  else
    match String.index_from_opt s plen 'x' with
    | None -> None
    | Some i when i = plen || i = String.length s - 1 -> None
    | Some i -> (
      let digits part =
        part <> "" && String.for_all (fun c -> c >= '0' && c <= '9') part
      in
      let n_part = String.sub s plen (i - plen) in
      let s_part = String.sub s (i + 1) (String.length s - i - 1) in
      if not (digits n_part && digits s_part) then None
      else
        match (int_of_string_opt n_part, int_of_string_opt s_part) with
        | Some nodes, Some seed when nodes >= min_nodes -> Some (nodes, seed)
        | _ -> None)

let ops = [ Op.Add; Op.Sub; Op.Mul; Op.And; Op.Or; Op.Xor; Op.Shl; Op.Shr ]

let dfg ~nodes ~seed =
  if nodes < min_nodes then
    invalid_arg
      (Printf.sprintf "Synth.dfg: need at least %d nodes (induction + body + store)"
         min_nodes);
  let rng = Rng.create (0x5ea1ed + (nodes * 0x10001) + (seed * 0x3d)) in
  let g, ind = induction ~bound:(64 + Rng.int rng 64) Graph.empty in
  let pool = ref [ ind.phi; ind.next; ind.sel ] in
  let pick () = Rng.choose rng !pool in
  let g = ref g in
  let count = ref 6 in
  (* fill the body to exactly [nodes - 1], then close with the store *)
  while !count < nodes - 1 do
    let remaining = nodes - 1 - !count in
    let roll = Rng.int rng 10 in
    if roll >= 8 && remaining >= 2 then begin
      let g', acc = accumulator ~input:(pick ()) !g in
      g := g';
      count := !count + 2;
      pool := acc.Builders.add :: !pool
    end
    else if roll >= 6 then begin
      let g', id = load ~addr:[ pick () ] !g in
      g := g';
      incr count;
      pool := id :: !pool
    end
    else begin
      let a = pick () in
      let b = pick () in
      let g', id = op (Rng.choose rng ops) ~inputs:[ a; b ] !g in
      g := g';
      incr count;
      pool := id :: !pool
    end
  done;
  let g', _ = store ~inputs:[ pick (); ind.next ] !g in
  g'

let kernel ~nodes ~seed =
  let g = dfg ~nodes ~seed in
  let n1, e1, r1 = Kernel.stats g in
  let g2 = Transform.unroll g ~spec:{ Transform.factor = 2; shared = []; serial_phis = [] } in
  let n2, e2, r2 = Kernel.stats g2 in
  Kernel.make
    ~name:(name ~nodes ~seed)
    ~domain:Kernel.Hpc ~data:"synthetic" ~dfg:g
    ~table:
      { Kernel.nodes1 = n1; edges1 = e1; rec_mii1 = r1; nodes2 = n2; edges2 = e2;
        rec_mii2 = r2 }
    ~iterations:128 ()
