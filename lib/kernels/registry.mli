(** Lookup and grouping of all Table I kernels. *)

val standalone : Kernel.t list
(** The ten kernels evaluated on the whole fabric (Figures 2, 4, 9-12):
    fir, latnrm, fft, dtw, spmv, conv, relu, histogram, mvt, gemm. *)

val gcn : Kernel.t list
(** The five unique GCN kernels, in pipeline order (aggregate runs
    twice in the application; see {!Iced_stream}). *)

val lu : Kernel.t list
(** The six LU kernels. *)

val all : Kernel.t list

val by_name : string -> Kernel.t option
(** Table I kernels by name, plus the {!Synth} family: any
    [rand<nodes>x<seed>] name (nodes >= {!Synth.min_nodes}) is
    synthesized on demand, deterministically. *)

val names : unit -> string list
(** The static Table I names only (the synthetic family is unbounded
    and never enumerated). *)
