(** Seeded synthetic kernels with an exact node budget.

    [rand<nodes>x<seed>] names a deterministic random loop body shaped
    like the Table I kernels: the 6-node predicated induction chain
    (RecMII 4), a body of binary ops, loads, and accumulators drawn
    over live values, and one closing store — exactly [nodes] nodes in
    total.  {!Registry.by_name} synthesizes these on demand, so bench
    shoot-outs, property tests, and [iced explore] share one
    large-graph corpus.  Equal (nodes, seed) pairs always produce the
    same graph. *)

val min_nodes : int
(** Smallest representable budget (induction + one body op + store). *)

val name : nodes:int -> seed:int -> string
(** ["rand<nodes>x<seed>"]. *)

val parse_name : string -> (int * int) option
(** Inverse of {!name}; [None] for anything else (including budgets
    below {!min_nodes}). *)

val dfg : nodes:int -> seed:int -> Iced_dfg.Graph.t
(** The generated loop body; validates by construction.
    @raise Invalid_argument when [nodes < min_nodes]. *)

val kernel : nodes:int -> seed:int -> Kernel.t
(** The graph wrapped as a kernel (domain [Hpc], synthetic data tag,
    table stats measured from the generated graph at unroll factors 1
    and 2). *)
