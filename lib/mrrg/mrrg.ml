open Iced_arch

type resource = Fu | Port of Dir.t

type occupant = Op_node of int | Route of { src : int; dst : int }

(* Occupancy lives in flat arrays indexed by (tile, slot, resource):
   one cell per resource of the time-space unrolling.  Resource index 0
   is the FU; 1..4 are the crossbar output ports in [Dir.all] order
   (which is also the polymorphic-compare order of [resource], so
   in-order iteration reproduces the sorted listings the hashtable
   implementation produced).  Alongside the occupancy, two counter
   arrays keep the paper's utilization numerator O(1): [slot_busy]
   counts claimed resources per (tile, slot) and [tile_busy] counts
   distinct busy slots per tile. *)

let resources = 5

let dir_index = function Dir.North -> 0 | Dir.South -> 1 | Dir.East -> 2 | Dir.West -> 3

let res_index = function Fu -> 0 | Port d -> 1 + dir_index d

let res_of_index = function
  | 0 -> Fu
  | 1 -> Port Dir.North
  | 2 -> Port Dir.South
  | 3 -> Port Dir.East
  | 4 -> Port Dir.West
  | _ -> invalid_arg "Mrrg.res_of_index"

type t = {
  cgra : Cgra.t;
  ii : int;
  tiles : bool array; (* allowed sub-fabric, indexed by tile id *)
  dead : bool array; (* faulted resources: tile * resources + res *)
  occ : occupant option array; (* (tile * ii + slot) * resources + res *)
  slot_busy : int array; (* tile * ii + slot -> claimed resources *)
  tile_busy : int array; (* tile -> distinct busy slots *)
}

let create ?tiles ?(dead_links = []) cgra ~ii =
  if ii <= 0 then invalid_arg "Mrrg.create: non-positive II";
  let tile_count = Cgra.tile_count cgra in
  let allowed = Array.make tile_count (tiles = None) in
  (match tiles with
  | None -> ()
  | Some ids ->
    List.iter
      (fun id ->
        if id < 0 || id >= tile_count then invalid_arg "Mrrg.create: unknown tile";
        allowed.(id) <- true)
      ids);
  let dead = Array.make (tile_count * resources) false in
  List.iter
    (fun (tile, d) ->
      if tile < 0 || tile >= tile_count then
        invalid_arg "Mrrg.create: dead link on unknown tile";
      dead.((tile * resources) + res_index (Port d)) <- true)
    dead_links;
  {
    cgra;
    ii;
    tiles = allowed;
    dead;
    occ = Array.make (tile_count * ii * resources) None;
    slot_busy = Array.make (tile_count * ii) 0;
    tile_busy = Array.make tile_count 0;
  }

let cgra t = t.cgra
let ii t = t.ii

let allowed t tile = tile >= 0 && tile < Array.length t.tiles && t.tiles.(tile)

let allowed_tiles t =
  List.filter (allowed t) (List.init (Cgra.tile_count t.cgra) (fun i -> i))

let slot t time =
  if time < 0 then invalid_arg "Mrrg.slot: negative time";
  time mod t.ii

let cell t ~tile ~time res = (((tile * t.ii) + slot t time) * resources) + res_index res

let occupant t ~tile ~time res = t.occ.(cell t ~tile ~time res)

let link_dead t tile res = t.dead.((tile * resources) + res_index res)

let is_free t ~tile ~time res =
  (not (link_dead t tile res)) && occupant t ~tile ~time res = None

let occupant_to_string = function
  | Op_node id -> Printf.sprintf "op n%d" id
  | Route { src; dst } -> Printf.sprintf "route n%d->n%d" src dst

let reserve t ~tile ~time res who =
  if not (allowed t tile) then Error (Printf.sprintf "tile %d outside the sub-fabric" tile)
  else if link_dead t tile res then
    Error
      (Printf.sprintf "tile %d %s: dead link" tile
         (match res with Fu -> "fu" | Port d -> "port." ^ Dir.to_string d))
  else
    let i = cell t ~tile ~time res in
    match t.occ.(i) with
    | None ->
      t.occ.(i) <- Some who;
      let ts = (tile * t.ii) + slot t time in
      t.slot_busy.(ts) <- t.slot_busy.(ts) + 1;
      if t.slot_busy.(ts) = 1 then t.tile_busy.(tile) <- t.tile_busy.(tile) + 1;
      Ok ()
    | Some existing when existing = who -> Ok () (* fan-out shares the wire *)
    | Some existing ->
      Error
        (Printf.sprintf "tile %d slot %d busy with %s" tile (slot t time)
           (occupant_to_string existing))

let release t ~tile ~time res =
  let i = cell t ~tile ~time res in
  match t.occ.(i) with
  | None -> ()
  | Some _ ->
    t.occ.(i) <- None;
    let ts = (tile * t.ii) + slot t time in
    t.slot_busy.(ts) <- t.slot_busy.(ts) - 1;
    if t.slot_busy.(ts) = 0 then t.tile_busy.(tile) <- t.tile_busy.(tile) - 1

let busy t ~tile =
  let acc = ref [] in
  for s = t.ii - 1 downto 0 do
    for r = resources - 1 downto 0 do
      match t.occ.((((tile * t.ii) + s) * resources) + r) with
      | Some who -> acc := (s, res_of_index r, who) :: !acc
      | None -> ()
    done
  done;
  !acc

let busy_slots t ~tile =
  let acc = ref [] in
  for s = t.ii - 1 downto 0 do
    if t.slot_busy.((tile * t.ii) + s) > 0 then acc := s :: !acc
  done;
  !acc

let busy_slot_count t ~tile = t.tile_busy.(tile)

let tile_is_idle t tile = t.tile_busy.(tile) = 0

let phase_of t ~tiles ~modulo =
  let phase = ref (-1) in
  let broken = ref false in
  List.iter
    (fun tile ->
      if allowed t tile && not !broken then
        for s = 0 to t.ii - 1 do
          if (not !broken) && t.slot_busy.((tile * t.ii) + s) > 0 then
            let p = s mod modulo in
            if !phase = -1 then phase := p else if !phase <> p then broken := true
        done)
    tiles;
  if !broken then `Broken else if !phase = -1 then `Empty else `Phase !phase

let clone t =
  {
    t with
    occ = Array.copy t.occ;
    slot_busy = Array.copy t.slot_busy;
    tile_busy = Array.copy t.tile_busy;
  }

let resource_to_string = function Fu -> "fu" | Port d -> "port." ^ Dir.to_string d

let pp fmt t =
  Format.fprintf fmt "mrrg ii=%d@." t.ii;
  for tile = 0 to Cgra.tile_count t.cgra - 1 do
    List.iter
      (fun (s, res, who) ->
        Format.fprintf fmt "  t%d@@%d %s: %s@." tile s (resource_to_string res)
          (occupant_to_string who))
      (busy t ~tile)
  done
