open Iced_arch

type resource = Fu | Port of Dir.t

type occupant = Op_node of int | Route of { src : int; dst : int }

type key = { tile : int; slot : int; res : resource }

type t = {
  cgra : Cgra.t;
  ii : int;
  tiles : bool array; (* allowed sub-fabric, indexed by tile id *)
  dead_links : (int * Dir.t) list; (* faulted crossbar output ports *)
  table : (key, occupant) Hashtbl.t;
}

let create ?tiles ?(dead_links = []) cgra ~ii =
  if ii <= 0 then invalid_arg "Mrrg.create: non-positive II";
  let allowed = Array.make (Cgra.tile_count cgra) (tiles = None) in
  (match tiles with
  | None -> ()
  | Some ids ->
    List.iter
      (fun id ->
        if id < 0 || id >= Cgra.tile_count cgra then invalid_arg "Mrrg.create: unknown tile";
        allowed.(id) <- true)
      ids);
  List.iter
    (fun (tile, _) ->
      if tile < 0 || tile >= Cgra.tile_count cgra then
        invalid_arg "Mrrg.create: dead link on unknown tile")
    dead_links;
  { cgra; ii; tiles = allowed; dead_links; table = Hashtbl.create 256 }

let cgra t = t.cgra
let ii t = t.ii

let allowed t tile = tile >= 0 && tile < Array.length t.tiles && t.tiles.(tile)

let allowed_tiles t =
  List.filter (allowed t) (List.init (Cgra.tile_count t.cgra) (fun i -> i))

let slot t time =
  if time < 0 then invalid_arg "Mrrg.slot: negative time";
  time mod t.ii

let key t ~tile ~time res = { tile; slot = slot t time; res }

let occupant t ~tile ~time res = Hashtbl.find_opt t.table (key t ~tile ~time res)

let link_dead t tile res =
  match res with Fu -> false | Port d -> List.mem (tile, d) t.dead_links

let is_free t ~tile ~time res =
  (not (link_dead t tile res)) && occupant t ~tile ~time res = None

let occupant_to_string = function
  | Op_node id -> Printf.sprintf "op n%d" id
  | Route { src; dst } -> Printf.sprintf "route n%d->n%d" src dst

let reserve t ~tile ~time res who =
  if not (allowed t tile) then Error (Printf.sprintf "tile %d outside the sub-fabric" tile)
  else if link_dead t tile res then
    Error
      (Printf.sprintf "tile %d %s: dead link" tile
         (match res with Fu -> "fu" | Port d -> "port." ^ Dir.to_string d))
  else
    let k = key t ~tile ~time res in
    match Hashtbl.find_opt t.table k with
    | None ->
      Hashtbl.replace t.table k who;
      Ok ()
    | Some existing when existing = who -> Ok () (* fan-out shares the wire *)
    | Some existing ->
      Error
        (Printf.sprintf "tile %d slot %d busy with %s" tile k.slot (occupant_to_string existing))

let release t ~tile ~time res = Hashtbl.remove t.table (key t ~tile ~time res)

let busy t ~tile =
  Hashtbl.fold
    (fun k who acc -> if k.tile = tile then (k.slot, k.res, who) :: acc else acc)
    t.table []
  |> List.sort compare

let busy_slots t ~tile =
  busy t ~tile |> List.map (fun (s, _, _) -> s) |> List.sort_uniq compare

let tile_is_idle t tile = busy t ~tile = []

let clone t = { t with table = Hashtbl.copy t.table }

let resource_to_string = function Fu -> "fu" | Port d -> "port." ^ Dir.to_string d

let pp fmt t =
  Format.fprintf fmt "mrrg ii=%d@." t.ii;
  let entries =
    Hashtbl.fold (fun k who acc -> (k, who) :: acc) t.table []
    |> List.sort (fun (a, _) (b, _) -> compare (a.tile, a.slot, a.res) (b.tile, b.slot, b.res))
  in
  List.iter
    (fun (k, who) ->
      Format.fprintf fmt "  t%d@@%d %s: %s@." k.tile k.slot (resource_to_string k.res)
        (occupant_to_string who))
    entries
