(** Modulo Routing Resource Graph (MRRG).

    A time-space unrolling of the CGRA over one initiation interval:
    each tile contributes, per modulo time slot, one functional-unit
    resource and one output port per mesh direction.  A modulo schedule
    is valid iff no resource is claimed twice (Mei et al., the MRRG
    formulation the paper builds on).

    Times handed to this module are absolute schedule cycles; occupancy
    is recorded at [time mod ii].  The structure is mutable — the mapper
    claims and releases resources while searching — and cheap to rebuild
    when the II is bumped (Algorithm 2, line 26). *)

open Iced_arch

type resource =
  | Fu  (** the tile's functional unit *)
  | Port of Dir.t  (** crossbar output port toward a neighbour *)

type occupant =
  | Op_node of int  (** DFG node id computing on the FU *)
  | Route of { src : int; dst : int }
      (** data of DFG edge src->dst passing through (consumes a port,
          and counts as crossbar activity for utilization) *)

type t

val create : ?tiles:int list -> ?dead_links:(int * Dir.t) list -> Cgra.t -> ii:int -> t
(** Fresh, empty MRRG.  [tiles] restricts placement and routing to a
    sub-fabric (streaming partitions); defaults to every tile.
    [dead_links] masks faulted crossbar output ports: the named (tile,
    direction) ports are never free and can never be reserved, so the
    router plans around them (the fault-injection subsystem's resource
    masking).
    @raise Invalid_argument if [ii <= 0], [tiles] contains an unknown
    id, or a dead link names an unknown tile. *)

val cgra : t -> Cgra.t
val ii : t -> int

val allowed : t -> int -> bool
(** Whether a tile belongs to the sub-fabric. *)

val allowed_tiles : t -> int list

val slot : t -> int -> int
(** [time mod ii] (time may be any non-negative absolute cycle). *)

val occupant : t -> tile:int -> time:int -> resource -> occupant option

val is_free : t -> tile:int -> time:int -> resource -> bool

val reserve : t -> tile:int -> time:int -> resource -> occupant -> (unit, string) result
(** Claim a resource; reports the holder on conflict.  Reserving a
    route on a port already routing the {e same} DFG edge succeeds
    idempotently (a value fanning out shares its wire). *)

val release : t -> tile:int -> time:int -> resource -> unit

val busy : t -> tile:int -> (int * resource * occupant) list
(** Every claimed (slot, resource, occupant) on a tile, slot-ordered. *)

val busy_slots : t -> tile:int -> int list
(** Distinct modulo slots with any activity on the tile (FU or
    crossbar) — the paper's utilization numerator. *)

val busy_slot_count : t -> tile:int -> int
(** [List.length (busy_slots t ~tile)] in O(1) — the placer's packing
    and capacity terms poll this once per candidate. *)

val phase_of :
  t -> tiles:int list -> modulo:int -> [ `Broken | `Empty | `Phase of int ]
(** The clock phase (mod [modulo]) every busy slot across [tiles]
    agrees on: [`Empty] when no tile has activity, [`Phase p] when all
    busy slots fall on phase [p], [`Broken] on disagreement.
    Disallowed tiles are skipped.  Allocation-free — the DVFS-aware
    placer's phase-alignment query, per island. *)

val tile_is_idle : t -> int -> bool

val clone : t -> t
(** Deep copy of the occupancy (for what-if placement trials). *)

val pp : Format.formatter -> t -> unit
(** Occupancy dump: one line per busy resource. *)
