(** Seeded, deterministic fault models for the ICED fabric.

    ICED's whole premise is running islands near threshold (0.42 V
    Rest), where real silicon sees hard defects, regulator failures,
    and voltage-dependent transient timing upsets.  This module gives
    the reproduction a vocabulary for those faults and a deterministic
    way to schedule them against a streaming run:

    - a {b fault} is one of four kinds: a dead tile (permanent FU +
      crossbar failure), a broken crossbar output port, a whole-island
      regulator failure, or a transient timing-upset process on an
      island whose per-cycle rate rises as the island's DVFS level
      drops toward [Rest];
    - a {b plan} schedules fault injections at stream-input indices
      (input [k]'s events fire just before input [k] is consumed);
    - everything is derived from explicit integer seeds, so a fault
      campaign is reproducible run-to-run and byte-identical across
      worker counts (no wall-clock, no global RNG).

    The consumers are {!Iced_mrrg.Mrrg} / {!Iced_mapper.Mapper} (which
    accept masked tiles and links and remap around them) and
    [Iced_stream.Runner] (which applies a recovery policy when a plan
    fires mid-stream). *)

open Iced_arch

type kind =
  | Tile_dead of int  (** permanent tile failure: FU and crossbar gone *)
  | Link_broken of { tile : int; dir : Dir.t }
      (** one crossbar output port stuck; the tile otherwise works *)
  | Island_down of int  (** regulator failure: the whole island is off *)
  | Upsets of { island : int; rate : float }
      (** transient timing upsets on an island; [rate] is the
          per-kernel-cycle upset probability at [Rest] (see
          {!upset_rate}) *)

type kind_class = Tile | Link | Island | Upset
(** The four fault families, for selecting what a campaign injects. *)

type event = { at_input : int; fault : kind }
(** Injection scheduled just before stream input [at_input]. *)

type plan = { seed : int; events : event list }
(** [seed] also feeds the upset draws during execution, so two plans
    with equal events but different seeds upset different inputs. *)

val none : plan
(** The empty plan: a fault-aware run under [none] must be
    byte-identical to a plain run. *)

val make : ?seed:int -> event list -> plan
(** Build a plan ([seed] defaults to 0); events are sorted by
    [at_input].  @raise Invalid_argument on a negative input index. *)

val is_empty : plan -> bool

val events_at : plan -> int -> kind list
(** Faults injected just before input [i] is consumed. *)

val permanent : kind -> bool
(** Tile, link, and regulator faults are permanent; upsets are not. *)

val class_of : kind -> kind_class

val island_of : Cgra.t -> kind -> int
(** The island a fault lands on. *)

val class_to_string : kind_class -> string
val class_of_string : string -> kind_class option
val kind_to_string : kind -> string
val pp_plan : Format.formatter -> plan -> unit

(* ------------------------------------------------------------------ *)
(* random plans *)

val random_events :
  seed:int ->
  cgra:Cgra.t ->
  inputs:int ->
  ?rate:float ->
  kinds:kind_class list ->
  count:int ->
  unit ->
  event list
(** [count] faults drawn uniformly over the requested [kinds], each
    landing on a uniform tile/link/island of [cgra] at a uniform input
    index in [\[1, inputs - 1\]].  [rate] (default 1e-3) parameterizes
    generated [Upsets].  Equal seeds give equal event lists.
    @raise Invalid_argument if [kinds] is empty, [inputs < 2], or
    [count < 0]. *)

val random_plan :
  seed:int ->
  cgra:Cgra.t ->
  inputs:int ->
  ?rate:float ->
  kinds:kind_class list ->
  count:int ->
  unit ->
  plan

(* ------------------------------------------------------------------ *)
(* the upset process *)

val upset_rate : rate:float -> Dvfs.level -> float
(** Per-cycle upset probability of an upset-afflicted island at a
    level: [rate] at [Rest], [rate /. 16.] at [Relax] (each 80 mV of
    extra supply margin suppresses upsets by 4x), and [0.] at [Normal]
    or when gated — full voltage margin clears voltage-induced upsets,
    which is exactly what the [Raise_level] recovery policy exploits. *)

val upset_probability : rate:float -> cycles:int -> float
(** [1 - (1 - rate)^cycles]: the probability at least one upset
    corrupts an input that keeps the island busy for [cycles] kernel
    cycles.  Clamped to [\[0, 1\]]. *)

val upset_draw : seed:int -> input:int -> salt:string -> float
(** Deterministic uniform draw in [\[0, 1)] for "did input [input] of
    kernel [salt] hit an upset?".  A pure function of its arguments —
    independent of worker count, evaluation order, and policy — so the
    same physical upsets strike no matter how the run recovers. *)
