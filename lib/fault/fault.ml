open Iced_arch

type kind =
  | Tile_dead of int
  | Link_broken of { tile : int; dir : Dir.t }
  | Island_down of int
  | Upsets of { island : int; rate : float }

type kind_class = Tile | Link | Island | Upset

type event = { at_input : int; fault : kind }

type plan = { seed : int; events : event list }

let none = { seed = 0; events = [] }

let make ?(seed = 0) events =
  List.iter
    (fun e -> if e.at_input < 0 then invalid_arg "Fault.make: negative input index")
    events;
  { seed; events = List.stable_sort (fun a b -> compare a.at_input b.at_input) events }

let is_empty plan = plan.events = []

let events_at plan i =
  List.filter_map (fun e -> if e.at_input = i then Some e.fault else None) plan.events

let permanent = function
  | Tile_dead _ | Link_broken _ | Island_down _ -> true
  | Upsets _ -> false

let class_of = function
  | Tile_dead _ -> Tile
  | Link_broken _ -> Link
  | Island_down _ -> Island
  | Upsets _ -> Upset

let island_of cgra = function
  | Tile_dead tile | Link_broken { tile; _ } -> Cgra.island_of cgra tile
  | Island_down island | Upsets { island; _ } -> island

let class_to_string = function
  | Tile -> "tile"
  | Link -> "link"
  | Island -> "island"
  | Upset -> "upset"

let class_of_string = function
  | "tile" -> Some Tile
  | "link" -> Some Link
  | "island" -> Some Island
  | "upset" -> Some Upset
  | _ -> None

let kind_to_string = function
  | Tile_dead t -> Printf.sprintf "tile %d dead" t
  | Link_broken { tile; dir } ->
    Printf.sprintf "link t%d.%s broken" tile (Dir.to_string dir)
  | Island_down i -> Printf.sprintf "island %d regulator down" i
  | Upsets { island; rate } -> Printf.sprintf "island %d upsets (rate %g)" island rate

let pp_plan fmt plan =
  Format.fprintf fmt "plan seed=%d@." plan.seed;
  List.iter
    (fun e -> Format.fprintf fmt "  @input %d: %s@." e.at_input (kind_to_string e.fault))
    plan.events

(* ------------------------------------------------------------------ *)
(* random plans *)

let random_events ~seed ~cgra ~inputs ?(rate = 1e-3) ~kinds ~count () =
  if kinds = [] then invalid_arg "Fault.random_events: empty kind list";
  if inputs < 2 then invalid_arg "Fault.random_events: need at least 2 inputs";
  if count < 0 then invalid_arg "Fault.random_events: negative count";
  let rng = Iced_util.Rng.create seed in
  let tile_count = Cgra.tile_count cgra in
  let island_count = Cgra.island_count cgra in
  List.init count (fun _ ->
      let cls = Iced_util.Rng.choose rng kinds in
      let at_input = Iced_util.Rng.int_in rng 1 (inputs - 1) in
      let fault =
        match cls with
        | Tile -> Tile_dead (Iced_util.Rng.int rng tile_count)
        | Link ->
          (* only ports with a neighbour carry traffic; a broken edge
             port would never be exercised *)
          let tile = Iced_util.Rng.int rng tile_count in
          let dir, _ = Iced_util.Rng.choose rng (Cgra.neighbors cgra tile) in
          Link_broken { tile; dir }
        | Island -> Island_down (Iced_util.Rng.int rng island_count)
        | Upset -> Upsets { island = Iced_util.Rng.int rng island_count; rate }
      in
      { at_input; fault })
  |> make ~seed
  |> fun plan -> plan.events

let random_plan ~seed ~cgra ~inputs ?rate ~kinds ~count () =
  make ~seed (random_events ~seed ~cgra ~inputs ?rate ~kinds ~count ())

(* ------------------------------------------------------------------ *)
(* the upset process *)

let upset_rate ~rate level =
  match level with
  | Dvfs.Rest -> rate
  | Dvfs.Relax -> rate /. 16.0
  | Dvfs.Normal | Dvfs.Power_gated -> 0.0

let upset_probability ~rate ~cycles =
  if rate <= 0.0 || cycles <= 0 then 0.0
  else if rate >= 1.0 then 1.0
  else 1.0 -. ((1.0 -. rate) ** float_of_int cycles)

(* FNV-1a over the salt, folded with seed and input: a stable, explicit
   hash (not [Hashtbl.hash]) so upset draws are reproducible across
   runs, builds, and domains. *)
let upset_draw ~seed ~input ~salt =
  let h = Iced_util.Fnv.hash_string salt in
  let h = Iced_util.Fnv.int h seed in
  let h = Iced_util.Fnv.int h input in
  let rng = Iced_util.Rng.create (Int64.to_int h) in
  Iced_util.Rng.float rng 1.0
