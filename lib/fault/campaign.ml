open Iced_arch
module Fault = Iced_fault.Fault
module Runner = Iced_stream.Runner
module Partition = Iced_stream.Partition
module Pipeline = Iced_stream.Pipeline
module Workload = Iced_stream.Workload
module Table = Iced_util.Table

type app = Gcn | Lu

let app_to_string = function Gcn -> "gcn" | Lu -> "lu"

let app_of_string = function
  | "gcn" -> Some Gcn
  | "lu" -> Some Lu
  | _ -> None

type spec = {
  app : app;
  policy : Runner.policy;
  recoveries : Runner.recovery list;
  kinds : Fault.kind_class list;
  seeds : int list;
  faults_per_run : int;
  upset_rate : float;
  inputs : int;
  window : int;
  workers : int;
}

let default_spec =
  {
    app = Lu;
    policy = Runner.Iced_dvfs;
    recoveries = [ Runner.Remap; Runner.Gate_island; Runner.Raise_level; Runner.Fail_stop ];
    kinds = [ Fault.Tile; Fault.Link; Fault.Island; Fault.Upset ];
    seeds = [ 0; 1; 2; 3 ];
    faults_per_run = 2;
    upset_rate = 1e-3;
    inputs = 200;
    window = 10;
    workers = 1;
  }

type run_result = {
  seed : int;
  recovery : Runner.recovery;
  plan : Fault.plan;
  stats : Runner.fault_stats;
  totals : Runner.totals;
  retention : float;
  survived : bool;
  error : string option;
}

type t = { spec : spec; baseline : Runner.totals; runs : run_result list }

(* Deterministic dataset: the same generator seeds the CLI's [stream]
   subcommand uses, truncated or cycled to the requested length. *)
let setup app ~inputs =
  let pipeline, dataset =
    match app with
    | Gcn ->
      ( Pipeline.gcn (),
        List.map Pipeline.of_gcn_graph
          (Workload.enzyme_graphs ~count:inputs ~seed:42 ()) )
    | Lu ->
      ( Pipeline.lu (),
        List.map Pipeline.of_lu_matrix (Workload.ufl_matrices ~count:inputs ~seed:7 ())
      )
  in
  let dataset = List.filteri (fun i _ -> i < inputs) dataset in
  (pipeline, dataset)

let validate spec =
  if spec.policy = Runner.Drips then Error "the DRIPS baseline has no fault model"
  else if spec.recoveries = [] then Error "no recovery policies selected"
  else if spec.kinds = [] then Error "no fault kinds selected"
  else if spec.seeds = [] then Error "no seeds given"
  else if spec.inputs < 2 then Error "need at least 2 inputs"
  else if spec.faults_per_run < 0 then Error "negative fault count"
  else Ok ()

let retention_of ~(baseline : Runner.totals) (stats : Runner.fault_stats)
    (totals : Runner.totals) =
  let completion =
    if stats.Runner.offered = 0 then 0.0
    else float_of_int stats.Runner.completed /. float_of_int stats.Runner.offered
  in
  let speed =
    if baseline.Runner.overall_throughput_per_s > 0.0 then
      Float.min 1.0
        (totals.Runner.overall_throughput_per_s
        /. baseline.Runner.overall_throughput_per_s)
    else 0.0
  in
  completion *. speed

let cell_untraced spec ~cgra ~partition ~baseline ~inputs (seed, recovery) =
  let plan =
    Fault.random_plan ~seed ~cgra ~inputs:spec.inputs ~rate:spec.upset_rate
      ~kinds:spec.kinds ~count:spec.faults_per_run ()
  in
  match
    Runner.run_resilient ~window:spec.window ~faults:plan ~recovery partition spec.policy
      inputs
  with
  | exception e ->
    {
      seed;
      recovery;
      plan;
      stats = Runner.no_faults;
      totals = Runner.aggregate [];
      retention = 0.0;
      survived = false;
      error = Some (Printexc.to_string e);
    }
  | reports, stats ->
    let totals = Runner.aggregate reports in
    let retention = retention_of ~baseline stats totals in
    {
      seed;
      recovery;
      plan;
      stats;
      totals;
      retention;
      survived = retention >= 0.5;
      error = None;
    }

let run ?(progress = fun _ _ -> ()) spec =
  match validate spec with
  | Error e -> Error e
  | Ok () -> (
    let cgra = Cgra.iced_6x6 in
    let pipeline, inputs = setup spec.app ~inputs:spec.inputs in
    let profile =
      let step = max 1 (List.length inputs / 50) in
      List.filteri (fun i _ -> i mod step = 0) inputs
    in
    match Partition.prepare cgra pipeline ~profile with
    | Error e -> Error ("partitioning failed: " ^ e)
    | Ok partition ->
      let baseline =
        Runner.aggregate (Runner.run ~window:spec.window partition spec.policy inputs)
      in
      let jobs =
        List.concat_map
          (fun seed -> List.map (fun recovery -> (seed, recovery)) spec.recoveries)
          spec.seeds
        |> Array.of_list
      in
      let total = Array.length jobs in
      let cell (seed, recovery) =
        if not (Iced_obs.Trace.enabled ()) then
          cell_untraced spec ~cgra ~partition ~baseline ~inputs (seed, recovery)
        else
          Iced_obs.Trace.with_span
            ~args:
              [
                ("seed", Iced_obs.Trace.Int seed);
                ("recovery", Iced_obs.Trace.Str (Runner.recovery_to_string recovery));
              ]
            ~cat:"campaign" ~name:"cell"
            (fun () ->
              let r = cell_untraced spec ~cgra ~partition ~baseline ~inputs (seed, recovery) in
              Iced_obs.Trace.span_arg "retention" (Iced_obs.Trace.Float r.retention);
              Iced_obs.Trace.span_arg "survived" (Iced_obs.Trace.Bool r.survived);
              r)
      in
      let finished = ref 0 in
      let on_item _ =
        incr finished;
        progress !finished total
      in
      let runs = Iced_explore.Pool.map ~workers:spec.workers ~on_item cell jobs in
      Ok { spec; baseline; runs = Array.to_list runs })

(* ------------------------------------------------------------------ *)
(* reporting *)

let plan_summary plan =
  if Fault.is_empty plan then "-"
  else
    String.concat "; "
      (List.map
         (fun (e : Fault.event) ->
           Printf.sprintf "@%d %s" e.Fault.at_input (Fault.kind_to_string e.Fault.fault))
         plan.Fault.events)

let table t =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "fault campaign: %s / %s" (app_to_string t.spec.app)
           (Runner.policy_to_string t.spec.policy))
      ~columns:
        [ "seed"; "recovery"; "injected"; "recovered"; "dropped"; "replayed";
          "mttr us"; "retention"; "verdict" ]
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [ string_of_int r.seed;
          Runner.recovery_to_string r.recovery;
          string_of_int r.stats.Runner.injected;
          string_of_int r.stats.Runner.recoveries;
          string_of_int r.stats.Runner.inputs_dropped;
          string_of_int r.stats.Runner.inputs_replayed;
          Printf.sprintf "%.2f" r.stats.Runner.mttr_us;
          Printf.sprintf "%.3f" r.retention;
          (match r.error with
          | Some _ -> "error"
          | None -> if r.survived then "survived" else "lost") ])
    t.runs;
  tbl

let summary_table t =
  let tbl =
    Table.create ~title:"survival by recovery policy"
      ~columns:[ "recovery"; "cells"; "survival"; "mean retention"; "mean mttr us" ]
  in
  List.iter
    (fun recovery ->
      let cells = List.filter (fun r -> r.recovery = recovery) t.runs in
      let n = List.length cells in
      if n > 0 then begin
        let survived = List.length (List.filter (fun r -> r.survived) cells) in
        let mean f = Iced_util.Stats.mean (List.map f cells) in
        Table.add_row tbl
          [ Runner.recovery_to_string recovery;
            string_of_int n;
            Printf.sprintf "%d/%d" survived n;
            Printf.sprintf "%.3f" (mean (fun r -> r.retention));
            Printf.sprintf "%.2f" (mean (fun r -> r.stats.Runner.mttr_us)) ]
      end)
    t.spec.recoveries;
  tbl

let csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "app,policy,seed,recovery,injected,recoveries,remaps,islands_gated,levels_raised,\
     dropped,replayed,recovery_us,mttr_us,offered,completed,throughput_per_s,\
     efficiency,retention,survived,error\n";
  List.iter
    (fun r ->
      let s = r.stats in
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%d,%s,%d,%d,%d,%d,%d,%d,%d,%.6g,%.6g,%d,%d,%.6g,%.6g,%.6g,%b,%s\n"
           (app_to_string t.spec.app)
           (Runner.policy_to_string t.spec.policy)
           r.seed
           (Runner.recovery_to_string r.recovery)
           s.Runner.injected s.Runner.recoveries s.Runner.remaps s.Runner.islands_gated
           s.Runner.levels_raised s.Runner.inputs_dropped s.Runner.inputs_replayed
           s.Runner.recovery_time_us s.Runner.mttr_us s.Runner.offered s.Runner.completed
           r.totals.Runner.overall_throughput_per_s r.totals.Runner.overall_efficiency
           r.retention r.survived
           (match r.error with Some e -> String.map (fun c -> if c = ',' then ';' else c) e | None -> "")))
    t.runs;
  Buffer.contents b

let json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"app\": \"%s\",\n  \"policy\": \"%s\",\n  \"inputs\": %d,\n  \
        \"faults_per_run\": %d,\n  \"upset_rate\": %.6g,\n  \
        \"baseline_throughput_per_s\": %.6g,\n  \"runs\": ["
       (app_to_string t.spec.app)
       (Runner.policy_to_string t.spec.policy)
       t.spec.inputs t.spec.faults_per_run t.spec.upset_rate
       t.baseline.Runner.overall_throughput_per_s);
  let first = ref true in
  List.iter
    (fun r ->
      if not !first then Buffer.add_string b ",";
      first := false;
      let s = r.stats in
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"seed\":%d,\"recovery\":\"%s\",\"plan\":\"%s\",\"injected\":%d,\
            \"recoveries\":%d,\"remaps\":%d,\"islands_gated\":%d,\"levels_raised\":%d,\
            \"dropped\":%d,\"replayed\":%d,\"recovery_us\":%.6g,\"mttr_us\":%.6g,\
            \"offered\":%d,\"completed\":%d,\"throughput_per_s\":%.6g,\
            \"retention\":%.6g,\"survived\":%b}"
           r.seed
           (Runner.recovery_to_string r.recovery)
           (plan_summary r.plan) s.Runner.injected s.Runner.recoveries s.Runner.remaps
           s.Runner.islands_gated s.Runner.levels_raised s.Runner.inputs_dropped
           s.Runner.inputs_replayed s.Runner.recovery_time_us s.Runner.mttr_us
           s.Runner.offered s.Runner.completed
           r.totals.Runner.overall_throughput_per_s r.retention r.survived))
    t.runs;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let render t =
  Table.render (table t) ^ "\n\n" ^ Table.render (summary_table t) ^ "\n"
