(** Domain-parallel fault-injection campaigns over the streaming
    pipeline.

    A campaign crosses a set of fault-plan seeds with a set of recovery
    policies, runs every (seed, policy) cell through
    [Iced_stream.Runner.run_resilient] on {!Iced_explore.Pool}'s domain
    pool, and reports throughput retention against the fault-free
    baseline.  Every cell is a pure function of the spec, results land
    in job order, and the fault model draws from explicit seeds — so
    the CSV/JSON output is byte-identical across worker counts. *)

module Fault = Iced_fault.Fault

type app = Gcn | Lu

val app_to_string : app -> string
val app_of_string : string -> app option

type spec = {
  app : app;
  policy : Iced_stream.Runner.policy;  (** [Static] or [Iced_dvfs] only *)
  recoveries : Iced_stream.Runner.recovery list;
  kinds : Fault.kind_class list;  (** fault families the plans draw from *)
  seeds : int list;  (** one fault plan per seed *)
  faults_per_run : int;  (** events per plan *)
  upset_rate : float;  (** per-cycle upset probability at [Rest] *)
  inputs : int;  (** stream length (dataset truncated/cycled to this) *)
  window : int;  (** runner observation window *)
  workers : int;  (** domain-pool width; results do not depend on it *)
}

val default_spec : spec
(** LU pipeline, [Iced_dvfs], all four recovery policies, all four
    fault families, seeds 0..3, 2 faults per run, rate 1e-3, 200
    inputs, window 10, 1 worker. *)

type run_result = {
  seed : int;
  recovery : Iced_stream.Runner.recovery;
  plan : Fault.plan;
  stats : Iced_stream.Runner.fault_stats;
  totals : Iced_stream.Runner.totals;
  retention : float;
      (** completed fraction times faulted/baseline throughput ratio:
          1.0 = the faults cost nothing, 0.0 = the stream was lost *)
  survived : bool;  (** [retention >= 0.5] *)
  error : string option;  (** an escaped exception, if the cell crashed *)
}

type t = {
  spec : spec;
  baseline : Iced_stream.Runner.totals;  (** fault-free reference run *)
  runs : run_result list;  (** seed-major, then recovery, in spec order *)
}

val run : ?progress:(int -> int -> unit) -> spec -> (t, string) result
(** Execute the campaign: prepare the partition once, run the
    fault-free baseline, then map the (seed, recovery) cells over the
    domain pool.  [progress done_ total] is called as cells finish.
    Errors: an unpartitionable app, a [Drips] policy, or an empty
    seed/recovery/kind list. *)

val table : t -> Iced_util.Table.t
(** One row per (seed, recovery) cell. *)

val summary_table : t -> Iced_util.Table.t
(** Per recovery policy: cells, survival rate, mean retention, mean
    MTTR. *)

val csv : t -> string
(** One row per cell, header included; byte-identical across worker
    counts. *)

val json : t -> string
(** JSON object with the spec, the baseline, and one entry per cell. *)

val render : t -> string
(** Human-readable report: the cell table, then the policy summary. *)
