module J = Iced_util.Json
module Space = Iced_explore.Space
module Outcome = Iced_explore.Outcome
module Runner = Iced_stream.Runner
module Campaign = Iced_campaign.Campaign

type app = Campaign.app

type request =
  | Ping
  | Sleep of int
  | Map of { point : Space.point; kernel : string; backend : Iced_mapper.Backend.t }
  | Explore of { spec : Space.spec; kernels : string list }
  | Stream of { app : app; policy : Runner.policy; inputs : int }
  | Fault of { app : app; seeds : int; faults : int; inputs : int; window : int }
  | Stats
  | Health
  | Crash of { kill : bool }
  | Shutdown

type frame = {
  id : string;
  request : request;
  deadline_ms : int option;
  tenant : string option;
  qos : string option;
}

type decode_error =
  | Malformed of J.error
  | Invalid of { id : string; reason : string }

let op_to_string = function
  | Ping -> "ping"
  | Sleep _ -> "sleep"
  | Map _ -> "map"
  | Explore _ -> "explore"
  | Stream _ -> "stream"
  | Fault _ -> "fault"
  | Stats -> "stats"
  | Health -> "health"
  | Crash _ -> "crash"
  | Shutdown -> "shutdown"

let default_point =
  {
    Space.rows = 6;
    cols = 6;
    island_rows = 2;
    island_cols = 2;
    spm_banks = 8;
    floor = Iced_arch.Dvfs.Rest;
    unroll = 1;
    max_ii = 64;
  }

(* ------------------------------------------------------------------ *)
(* field converters                                                    *)

let floor_to_string = function
  | Iced_arch.Dvfs.Rest -> "rest"
  | Iced_arch.Dvfs.Relax -> "relax"
  | Iced_arch.Dvfs.Normal -> "normal"
  | Iced_arch.Dvfs.Power_gated -> "gated"

let floor_of_string = function
  | "rest" -> Some Iced_arch.Dvfs.Rest
  | "relax" -> Some Iced_arch.Dvfs.Relax
  | "normal" -> Some Iced_arch.Dvfs.Normal
  | _ -> None

let policy_of_string = function
  | "static" -> Some Runner.Static
  | "iced" -> Some Runner.Iced_dvfs
  | "drips" -> Some Runner.Drips
  | _ -> None

let dims_to_string (r, c) = Printf.sprintf "%dx%d" r c

let dims_of_string s =
  match String.split_on_char 'x' s with
  | [ a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some r, Some c when r > 0 && c > 0 -> Some (r, c)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* decoding                                                            *)

exception Bad of string

let decode line =
  match J.parse line with
  | Error e -> Error (Malformed e)
  | Ok doc -> (
    let id =
      match J.member "id" doc with
      | None -> Ok ""
      | Some v -> (
        match J.get_string v with
        | Some s -> Ok s
        | None -> Error "id must be a string")
    in
    match id with
    | Error reason -> Error (Invalid { id = ""; reason })
    | Ok id -> (
      let fail reason = raise (Bad reason) in
      let str_field ?default name =
        match (J.member name doc, default) with
        | None, Some d -> d
        | None, None -> fail (Printf.sprintf "missing field %S" name)
        | Some v, _ -> (
          match J.get_string v with
          | Some s -> s
          | None -> fail (Printf.sprintf "field %S must be a string" name))
      in
      let int_field ?default name =
        match (J.member name doc, default) with
        | None, Some d -> d
        | None, None -> fail (Printf.sprintf "missing field %S" name)
        | Some v, _ -> (
          match J.get_int v with
          | Some i -> i
          | None -> fail (Printf.sprintf "field %S must be an integer" name))
      in
      (* a JSON array of strings, each run through [conv] *)
      let list_field ~conv ~what ?default name =
        match (J.member name doc, default) with
        | None, Some d -> d
        | None, None -> fail (Printf.sprintf "missing field %S" name)
        | Some v, _ -> (
          match J.get_list v with
          | None -> fail (Printf.sprintf "field %S must be an array" name)
          | Some items ->
            List.map
              (fun item ->
                match Option.bind (J.get_string item) conv with
                | Some x -> x
                | None -> fail (Printf.sprintf "field %S: expected %s" name what))
              items)
      in
      let int_list_field ?default name =
        match (J.member name doc, default) with
        | None, Some d -> d
        | None, None -> fail (Printf.sprintf "missing field %S" name)
        | Some v, _ -> (
          match J.get_list v with
          | None -> fail (Printf.sprintf "field %S must be an array" name)
          | Some items ->
            List.map
              (fun item ->
                match J.get_int item with
                | Some i -> i
                | None -> fail (Printf.sprintf "field %S: expected an integer" name))
              items)
      in
      let bool_field ~default name =
        match J.member name doc with
        | None -> default
        | Some v -> (
          match J.get_bool v with
          | Some b -> b
          | None -> fail (Printf.sprintf "field %S must be a boolean" name))
      in
      let app_field ?default name =
        match Campaign.app_of_string (str_field ?default name) with
        | Some a -> a
        | None -> fail (Printf.sprintf "field %S must be \"gcn\" or \"lu\"" name)
      in
      let deadline () =
        match J.member "deadline_ms" doc with
        | None -> None
        | Some v -> (
          match J.get_int v with
          | Some ms when ms >= 0 -> Some ms
          | Some _ -> fail "field \"deadline_ms\" must be >= 0"
          | None -> fail "field \"deadline_ms\" must be an integer")
      in
      let tenant () =
        match J.member "tenant" doc with
        | None -> None
        | Some v -> (
          match J.get_string v with
          | Some "" -> fail "field \"tenant\" must be non-empty"
          | Some s -> Some s
          | None -> fail "field \"tenant\" must be a string")
      in
      let qos () =
        match J.member "qos" doc with
        | None -> None
        | Some v -> (
          match Option.map Iced_tenancy.Qos.of_string (J.get_string v) with
          | Some (Some c) -> Some (Iced_tenancy.Qos.to_string c)
          | Some None | None ->
            fail "field \"qos\" must be \"batch\", \"standard\", or \"premium\"")
      in
      match
        let deadline_ms = deadline () in
        let tenant = tenant () in
        let qos = qos () in
        let request =
          match J.member "op" doc with
        | None -> fail "missing field \"op\""
        | Some v -> (
          match J.get_string v with
          | None -> fail "field \"op\" must be a string"
          | Some "ping" -> Ping
          | Some "sleep" ->
            let ms = int_field "ms" in
            if ms < 0 then fail "field \"ms\" must be >= 0";
            Sleep ms
          | Some "map" ->
            let kernel = str_field "kernel" in
            let point_s = str_field ~default:(Space.to_string default_point) "point" in
            let backend =
              match Iced_mapper.Backend.of_string (str_field ~default:"default" "backend") with
              | Ok b -> b
              | Error msg -> fail (Printf.sprintf "field \"backend\": %s" msg)
            in
            (match Space.of_string point_s with
            | Some point when Space.is_valid point -> Map { point; kernel; backend }
            | _ -> fail (Printf.sprintf "bad design point %S" point_s))
          | Some "explore" ->
            let fabrics =
              list_field ~conv:dims_of_string ~what:"dimensions \"RxC\""
                ~default:[ (6, 6) ] "fabrics"
            in
            let islands =
              list_field ~conv:dims_of_string ~what:"dimensions \"RxC\""
                ~default:
                  (List.sort_uniq compare
                     (List.concat_map
                        (fun (r, c) -> Space.tiling_islands r c)
                        fabrics))
                "islands"
            in
            let spec =
              {
                Space.fabrics;
                islands;
                spm_banks = int_list_field ~default:[ 8 ] "banks";
                floors =
                  list_field ~conv:floor_of_string
                    ~what:"\"rest\", \"relax\", or \"normal\""
                    ~default:[ Iced_arch.Dvfs.Rest ] "floors";
                unrolls = int_list_field ~default:[ 1 ] "unrolls";
                max_iis = int_list_field ~default:[ 64 ] "max_iis";
              }
            in
            Explore
              { spec; kernels = list_field ~conv:Option.some ~what:"a string"
                                  ~default:[] "kernels" }
          | Some "stream" ->
            let app = app_field "app" in
            let policy =
              match policy_of_string (str_field ~default:"iced" "policy") with
              | Some p -> p
              | None -> fail "field \"policy\" must be \"static\", \"iced\", or \"drips\""
            in
            let inputs = int_field ~default:0 "inputs" in
            if inputs < 0 then fail "field \"inputs\" must be >= 0";
            Stream { app; policy; inputs }
          | Some "fault" ->
            let app = app_field ~default:"lu" "app" in
            let seeds = int_field ~default:4 "seeds" in
            let faults = int_field ~default:2 "faults" in
            let inputs = int_field ~default:200 "inputs" in
            let window = int_field ~default:10 "window" in
            if seeds <= 0 then fail "field \"seeds\" must be > 0";
            if faults < 0 then fail "field \"faults\" must be >= 0";
            if inputs <= 0 then fail "field \"inputs\" must be > 0";
            if window <= 0 then fail "field \"window\" must be > 0";
            Fault { app; seeds; faults; inputs; window }
          | Some "stats" -> Stats
          | Some "health" -> Health
          | Some "crash" -> Crash { kill = bool_field ~default:false "kill" }
          | Some "shutdown" -> Shutdown
          | Some op -> fail (Printf.sprintf "unknown op %S" op))
        in
        { id; request; deadline_ms; tenant; qos }
      with
      | frame -> Ok frame
      | exception Bad reason -> Error (Invalid { id; reason })))

(* ------------------------------------------------------------------ *)
(* encoding                                                            *)

let str_list l = "[" ^ String.concat "," (List.map J.quote l) ^ "]"
let int_list l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

let encode_request { id; request; deadline_ms; tenant; qos } =
  (* absent tenant/qos encode to nothing, so frames predating the
     fields encode byte-identically (same pattern as "backend") *)
  let common op =
    Printf.sprintf "\"id\":%s,\"op\":\"%s\"%s%s%s" (J.quote id) op
      (match deadline_ms with
      | None -> ""
      | Some ms -> Printf.sprintf ",\"deadline_ms\":%d" ms)
      (match tenant with
      | None -> ""
      | Some t -> ",\"tenant\":" ^ J.quote t)
      (match qos with
      | None -> ""
      | Some q -> ",\"qos\":" ^ J.quote q)
  in
  match request with
  | Ping -> Printf.sprintf "{%s}" (common "ping")
  | Sleep ms -> Printf.sprintf "{%s,\"ms\":%d}" (common "sleep") ms
  | Map { point; kernel; backend } ->
    (* the default backend is left implicit so frames predating the
       field encode byte-identically *)
    Printf.sprintf "{%s,\"point\":%s,\"kernel\":%s%s}" (common "map")
      (J.quote (Space.to_string point))
      (J.quote kernel)
      (if Iced_mapper.Backend.is_default backend then ""
       else ",\"backend\":" ^ J.quote (Iced_mapper.Backend.to_string backend))
  | Explore { spec; kernels } ->
    Printf.sprintf
      "{%s,\"fabrics\":%s,\"islands\":%s,\"banks\":%s,\"floors\":%s,\"unrolls\":%s,\
       \"max_iis\":%s%s}"
      (common "explore")
      (str_list (List.map dims_to_string spec.Space.fabrics))
      (str_list (List.map dims_to_string spec.Space.islands))
      (int_list spec.Space.spm_banks)
      (str_list (List.map floor_to_string spec.Space.floors))
      (int_list spec.Space.unrolls)
      (int_list spec.Space.max_iis)
      (if kernels = [] then "" else ",\"kernels\":" ^ str_list kernels)
  | Stream { app; policy; inputs } ->
    Printf.sprintf "{%s,\"app\":\"%s\",\"policy\":\"%s\",\"inputs\":%d}"
      (common "stream") (Campaign.app_to_string app)
      (Runner.policy_to_string policy) inputs
  | Fault { app; seeds; faults; inputs; window } ->
    Printf.sprintf
      "{%s,\"app\":\"%s\",\"seeds\":%d,\"faults\":%d,\"inputs\":%d,\"window\":%d}"
      (common "fault") (Campaign.app_to_string app) seeds faults inputs window
  | Stats -> Printf.sprintf "{%s}" (common "stats")
  | Health -> Printf.sprintf "{%s}" (common "health")
  | Crash { kill } ->
    Printf.sprintf "{%s%s}" (common "crash") (if kill then ",\"kill\":true" else "")
  | Shutdown -> Printf.sprintf "{%s}" (common "shutdown")

(* ------------------------------------------------------------------ *)
(* responses                                                           *)

(* [%.17g]: float_of_string round-trips exactly, so a measurement read
   back from the persistent cache renders byte-identically to the
   fresh evaluation that produced it *)
let num17 f =
  match Float.classify_float f with
  | Float.FP_infinite -> if f > 0.0 then "\"inf\"" else "\"-inf\""
  | Float.FP_nan -> "\"nan\""
  | _ -> Printf.sprintf "%.17g" f

let head ~id ~status op = Printf.sprintf "\"id\":%s,\"status\":\"%s\",\"op\":\"%s\"" (J.quote id) status op

let response_ping ~id = Printf.sprintf "{%s}" (head ~id ~status:"ok" "ping")
let response_sleep ~id ~ms = Printf.sprintf "{%s,\"ms\":%d}" (head ~id ~status:"ok" "sleep") ms

let response_map ~id ~point ~kernel status =
  let where =
    Printf.sprintf "\"point\":%s,\"kernel\":%s" (J.quote (Space.to_string point)) (J.quote kernel)
  in
  match status with
  | Outcome.Mapped m ->
    Printf.sprintf
      "{%s,%s,\"ii\":%d,\"util\":%s,\"dvfs\":%s,\"power_mw\":%s,\"throughput_mips\":%s,\
       \"energy_nj\":%s,\"edp\":%s}"
      (head ~id ~status:"ok" "map") where m.Outcome.ii (num17 m.Outcome.utilization)
      (num17 m.Outcome.dvfs) (num17 m.Outcome.power_mw)
      (num17 m.Outcome.throughput_mips) (num17 m.Outcome.energy_nj)
      (num17 m.Outcome.edp)
  | Outcome.Failed msg ->
    Printf.sprintf "{%s,%s,\"msg\":%s}" (head ~id ~status:"unmapped" "map") where (J.quote msg)
  | Outcome.Timed_out ->
    Printf.sprintf "{%s,%s}" (head ~id ~status:"timeout" "map") where

let response_explore ~id ~frontier outcomes =
  let on_frontier (s : Outcome.summary) =
    List.exists (fun (f : Outcome.summary) -> f.Outcome.point = s.Outcome.point) frontier
  in
  let pairs =
    List.fold_left (fun acc (r : Outcome.point_result) -> acc + List.length r.Outcome.per_kernel) 0 outcomes
  in
  let summaries =
    List.map
      (fun r ->
        let s = Outcome.summarize r in
        Printf.sprintf
          "{\"point\":%s,\"mapped\":%d,\"total\":%d,\"geo_thpt_mips\":%s,\
           \"mean_energy_nj\":%s,\"mean_edp\":%s,\"mean_power_mw\":%s,\"pareto\":%b}"
          (J.quote (Space.to_string s.Outcome.point))
          s.Outcome.mapped s.Outcome.total
          (num17 s.Outcome.geo_throughput_mips)
          (num17 s.Outcome.mean_energy_nj) (num17 s.Outcome.mean_edp)
          (num17 s.Outcome.mean_power_mw) (on_frontier s))
      outcomes
  in
  Printf.sprintf "{%s,\"points\":%d,\"pairs\":%d,\"summaries\":[%s]}"
    (head ~id ~status:"ok" "explore")
    (List.length outcomes) pairs (String.concat "," summaries)

let response_stream ~id ~app ~policy ~windows (t : Runner.totals) =
  Printf.sprintf
    "{%s,\"app\":\"%s\",\"policy\":\"%s\",\"windows\":%d,\"inputs\":%d,\
     \"throughput_per_s\":%s,\"power_mw\":%s,\"efficiency\":%s}"
    (head ~id ~status:"ok" "stream")
    (Campaign.app_to_string app) (Runner.policy_to_string policy) windows
    t.Runner.total_inputs
    (num17 t.Runner.overall_throughput_per_s)
    (num17 (t.Runner.total_energy_uj /. t.Runner.total_time_us *. 1000.0))
    (num17 t.Runner.overall_efficiency)

let response_fault ~id (c : Campaign.t) =
  let mean l = match l with [] -> nan | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  let policies =
    List.map
      (fun recovery ->
        let cells =
          List.filter (fun (r : Campaign.run_result) -> r.Campaign.recovery = recovery) c.Campaign.runs
        in
        let survived = List.length (List.filter (fun (r : Campaign.run_result) -> r.Campaign.survived) cells) in
        Printf.sprintf
          "{\"recovery\":\"%s\",\"cells\":%d,\"survival\":%s,\"mean_retention\":%s,\
           \"mean_mttr_us\":%s}"
          (Runner.recovery_to_string recovery)
          (List.length cells)
          (num17 (float_of_int survived /. float_of_int (max 1 (List.length cells))))
          (num17 (mean (List.map (fun (r : Campaign.run_result) -> r.Campaign.retention) cells)))
          (num17
             (mean
                (List.map
                   (fun (r : Campaign.run_result) -> r.Campaign.stats.Runner.mttr_us)
                   cells))))
      c.Campaign.spec.Campaign.recoveries
  in
  Printf.sprintf "{%s,\"app\":\"%s\",\"cells\":%d,\"policies\":[%s]}"
    (head ~id ~status:"ok" "fault")
    (Campaign.app_to_string c.Campaign.spec.Campaign.app)
    (List.length c.Campaign.runs)
    (String.concat "," policies)

let response_shutdown ~id = Printf.sprintf "{%s}" (head ~id ~status:"ok" "shutdown")

let response_timeout ~id ~op = Printf.sprintf "{%s}" (head ~id ~status:"timeout" op)

let response_internal_error ~id ~op ~fingerprint =
  Printf.sprintf "{%s,\"fingerprint\":%s}"
    (head ~id ~status:"internal_error" op)
    (J.quote fingerprint)

let response_error ~id msg =
  Printf.sprintf "{\"id\":%s,\"status\":\"error\",\"error\":%s}" (J.quote id) (J.quote msg)

let response_overloaded ~id ~depth =
  Printf.sprintf "{\"id\":%s,\"status\":\"overloaded\",\"queue_depth\":%d}" (J.quote id) depth

let response_invalid = function
  | Malformed e ->
    Printf.sprintf "{\"status\":\"invalid\",\"error\":%s}"
      (J.quote ("parse error: " ^ J.error_to_string e))
  | Invalid { id; reason } ->
    Printf.sprintf "{\"id\":%s,\"status\":\"invalid\",\"error\":%s}" (J.quote id) (J.quote reason)
