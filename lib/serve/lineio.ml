(* EINTR-robust line IO over raw file descriptors.

   The daemon's transports cannot use [in_channel]/[out_channel]
   directly: a signal landing mid-[read] with a no-SA_RESTART handler
   (the daemon's SIGTERM/SIGINT drain handlers are exactly that) turns
   into [Unix_error (EINTR, _, _)], which buffered channels surface as
   a fatal [Sys_error].  Here every syscall is wrapped in a retry loop
   that re-checks a [stop] predicate first, so a signal interrupts the
   wait without killing the process. *)

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pending : Buffer.t;  (* bytes read but not yet returned *)
  mutable at_eof : bool;
}

let reader fd = { fd; buf = Bytes.create 8192; pending = Buffer.create 256; at_eof = false }

let never_stop () = false

(* index of '\n' in [pending], if any *)
let newline_index b =
  let s = Buffer.contents b in
  String.index_opt s '\n' |> Option.map (fun i -> (s, i))

let take_line r s i =
  let line = String.sub s 0 i in
  let rest = String.sub s (i + 1) (String.length s - i - 1) in
  Buffer.clear r.pending;
  Buffer.add_string r.pending rest;
  (* a protocol line never contains '\r'; tolerate CRLF clients *)
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  `Line line

let read_line ?(stop = never_stop) r =
  let rec refill () =
    if stop () then `Stopped
    else
      match newline_index r.pending with
      | Some (s, i) -> take_line r s i
      | None ->
        if r.at_eof then `Eof
        else begin
          match Unix.read r.fd r.buf 0 (Bytes.length r.buf) with
          | 0 ->
            r.at_eof <- true;
            (* a partial unterminated line at EOF is a torn frame:
               discard it rather than decode half a request *)
            `Eof
          | n ->
            Buffer.add_subbytes r.pending r.buf 0 n;
            refill ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            r.at_eof <- true;
            `Eof
        end
  in
  refill ()

type writer = { wfd : Unix.file_descr; mutable broken : bool }

let writer fd = { wfd = fd; broken = false }
let writer_broken w = w.broken

let write_line w line =
  if w.broken then false
  else begin
    let data = Bytes.of_string (line ^ "\n") in
    let len = Bytes.length data in
    let rec push off =
      if off >= len then true
      else
        match Unix.write w.wfd data off (len - off) with
        | n -> push (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
          (* client went away: remember, and let the caller keep
             serving (replies to a dead client are just dropped) *)
          w.broken <- true;
          false
    in
    push 0
  end
