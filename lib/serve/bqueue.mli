(** Bounded multi-producer/multi-consumer queue — the daemon's request
    queue and admission-control valve.

    Any domain may push or pop.  [try_push] never blocks: past the
    capacity it returns [false], which the server turns into a
    structured [overloaded] reply (shedding at the door instead of
    letting latency grow without bound).  [pop] blocks until an item
    arrives or the queue is closed and drained, so worker domains
    need no polling loop and exit cleanly at shutdown. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** Enqueue if the queue holds fewer than [capacity] items and is not
    closed; [false] otherwise (the item is shed). *)

val pop : 'a t -> 'a option
(** Dequeue, blocking while the queue is empty and open.  [None] once
    the queue is closed {e and} drained — the consumer's exit signal.
    Items pushed before [close] are always delivered. *)

val close : 'a t -> unit
(** Refuse further pushes and wake every blocked consumer.
    Idempotent. *)

val length : 'a t -> int
(** Current occupancy (a racy snapshot, for gauges and shed replies). *)
