module J = Iced_util.Json
module Cache = Iced_explore.Cache
module Space = Iced_explore.Space
module Outcome = Iced_explore.Outcome
module Sweep = Iced_explore.Sweep
module Report = Iced_explore.Report
module Registry = Iced_kernels.Registry
module Runner = Iced_stream.Runner
module Campaign = Iced_campaign.Campaign
module Metrics = Iced_obs.Metrics
module Trace = Iced_obs.Trace

type config = { workers : int; queue_depth : int; cache : Cache.t }

let default_config () = { workers = 2; queue_depth = 64; cache = Cache.in_memory () }

(* ------------------------------------------------------------------ *)
(* request handlers                                                    *)

let params = Iced_power.Params.default

let handle_map ~cache ~id ~point ~kernel =
  match Registry.by_name kernel with
  | None -> Protocol.response_error ~id (Printf.sprintf "unknown kernel %S" kernel)
  | Some k ->
    let status =
      Cache.find_or_store cache ~key:(Cache.key point k) (fun () ->
          Outcome.evaluate_kernel ~params point k)
    in
    Protocol.response_map ~id ~point ~kernel status

let handle_explore ~cache ~id ~spec ~kernels =
  let resolved =
    match kernels with
    | [] -> Ok Registry.standalone
    | names ->
      List.fold_left
        (fun acc name ->
          match (acc, Registry.by_name name) with
          | Error _, _ -> acc
          | Ok _, None -> Error name
          | Ok ks, Some k -> Ok (k :: ks))
        (Ok []) names
      |> Result.map List.rev
  in
  match resolved with
  | Error name -> Protocol.response_error ~id (Printf.sprintf "unknown kernel %S" name)
  | Ok ks -> (
    match Space.enumerate spec with
    | [] -> Protocol.response_error ~id "the space enumerates to no valid points"
    | points ->
      (* workers = 1: the daemon's own pool is the parallelism; nesting
         a sweep pool inside a worker domain would oversubscribe *)
      let outcomes, _stats = Sweep.run ~config:Sweep.default_config ~cache points ks in
      Protocol.response_explore ~id ~frontier:(Report.frontier_summaries outcomes) outcomes)

let take n l = if n <= 0 then l else List.filteri (fun i _ -> i < n) l

let handle_stream ~id ~app ~policy ~inputs =
  let cgra = Iced_arch.Cgra.iced_6x6 in
  let pipeline, all =
    match (app : Campaign.app) with
    | Campaign.Gcn ->
      ( Iced_stream.Pipeline.gcn (),
        List.map Iced_stream.Pipeline.of_gcn_graph
          (Iced_stream.Workload.enzyme_graphs ~seed:42 ()) )
    | Campaign.Lu ->
      ( Iced_stream.Pipeline.lu (),
        List.map Iced_stream.Pipeline.of_lu_matrix
          (Iced_stream.Workload.ufl_matrices ~seed:7 ()) )
  in
  let stream = take inputs all in
  let profile =
    let step = max 1 (List.length stream / 50) in
    List.filteri (fun i _ -> i mod step = 0) stream
  in
  match Iced_stream.Partition.prepare cgra pipeline ~profile with
  | Error msg -> Protocol.response_error ~id ("partitioning failed: " ^ msg)
  | Ok partition ->
    let reports = Runner.run partition policy stream in
    Protocol.response_stream ~id ~app ~policy ~windows:(List.length reports)
      (Runner.aggregate reports)

let handle_fault ~id ~app ~seeds ~faults ~inputs ~window =
  let spec =
    {
      Campaign.default_spec with
      Campaign.app;
      seeds = List.init seeds Fun.id;
      faults_per_run = faults;
      inputs;
      window;
      workers = 1;
    }
  in
  match Campaign.run spec with
  | Error msg -> Protocol.response_error ~id ("campaign failed: " ^ msg)
  | Ok c -> Protocol.response_fault ~id c

let dispatch ~cache ~stats (frame : Protocol.frame) =
  let id = frame.Protocol.id in
  match frame.Protocol.request with
  | Protocol.Ping -> Protocol.response_ping ~id
  | Protocol.Sleep ms ->
    Unix.sleepf (float_of_int ms /. 1000.0);
    Protocol.response_sleep ~id ~ms
  | Protocol.Map { point; kernel } -> handle_map ~cache ~id ~point ~kernel
  | Protocol.Explore { spec; kernels } -> handle_explore ~cache ~id ~spec ~kernels
  | Protocol.Stream { app; policy; inputs } -> handle_stream ~id ~app ~policy ~inputs
  | Protocol.Fault { app; seeds; faults; inputs; window } ->
    handle_fault ~id ~app ~seeds ~faults ~inputs ~window
  | Protocol.Stats -> stats ~id
  | Protocol.Shutdown -> Protocol.response_shutdown ~id

let handle ~cache ~stats (frame : Protocol.frame) =
  let op = Protocol.op_to_string frame.Protocol.request in
  match
    Trace.with_span
      ~args:[ ("id", Trace.Str frame.Protocol.id) ]
      ~cat:"serve" ~name:op
      (fun () -> dispatch ~cache ~stats frame)
  with
  | line -> line
  | exception e ->
    Protocol.response_error ~id:frame.Protocol.id
      ("internal error: " ^ Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* the stats reply                                                     *)

let stats_line ~id ~workers ~queue_depth ~queue_length ~pending ~served ~shed cache =
  let hits = Cache.hits cache and misses = Cache.misses cache in
  let hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let latency =
    match Metrics.histogram_stats "serve.latency_s" with
    | None -> "null"
    | Some (count, sum, _, _) ->
      let q p =
        match Metrics.quantile "serve.latency_s" p with
        | Some v -> J.number v
        | None -> "null"
      in
      Printf.sprintf "{\"count\":%d,\"mean_s\":%s,\"p50_s\":%s,\"p99_s\":%s}" count
        (J.number (sum /. float_of_int count))
        (q 0.5) (q 0.99)
  in
  Printf.sprintf
    "{\"id\":%s,\"status\":\"ok\",\"op\":\"stats\",\"workers\":%d,\"queue_depth\":%d,\
     \"queue_length\":%d,\"pending\":%d,\"served\":%d,\"shed\":%d,\
     \"cache\":{\"size\":%d,\"hits\":%d,\"misses\":%d,\"coalesced\":%d,\"hit_rate\":%s},\
     \"latency\":%s}"
    (J.quote id) workers queue_depth queue_length pending served shed (Cache.size cache)
    hits misses (Cache.coalesced cache) (J.number hit_rate) latency

(* ------------------------------------------------------------------ *)
(* the pool                                                            *)

type item = { frame : Protocol.frame; submitted : float }

type t = {
  config : config;
  queue : item Bqueue.t;
  respond : string -> latency_s:float -> unit;
  respond_mu : Mutex.t;
  state_mu : Mutex.t;
  idle : Condition.t;  (* signalled when [pending] returns to 0 *)
  mutable pending : int;  (* accepted, response not yet emitted *)
  mutable served_n : int;
  mutable shed_n : int;
  mutable domains : unit Domain.t list;
}

let emit t line ~latency_s =
  Mutex.lock t.respond_mu;
  (match t.respond line ~latency_s with
  | () -> Mutex.unlock t.respond_mu
  | exception e ->
    Mutex.unlock t.respond_mu;
    raise e);
  Mutex.lock t.state_mu;
  t.served_n <- t.served_n + 1;
  Mutex.unlock t.state_mu

let pool_stats t ~id =
  Mutex.lock t.state_mu;
  let served = t.served_n and shed = t.shed_n and pending = t.pending in
  Mutex.unlock t.state_mu;
  stats_line ~id ~workers:t.config.workers ~queue_depth:t.config.queue_depth
    ~queue_length:(Bqueue.length t.queue) ~pending ~served ~shed t.config.cache

let mark_done t =
  Mutex.lock t.state_mu;
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.idle;
  Mutex.unlock t.state_mu

let rec worker_loop t =
  match Bqueue.pop t.queue with
  | None -> ()
  | Some { frame; submitted } ->
    Metrics.gauge "serve.queue_depth" (float_of_int (Bqueue.length t.queue));
    let line = handle ~cache:t.config.cache ~stats:(pool_stats t) frame in
    let latency_s = Unix.gettimeofday () -. submitted in
    Metrics.observe "serve.latency_s" latency_s;
    Metrics.observe
      ("serve.latency." ^ Protocol.op_to_string frame.Protocol.request)
      latency_s;
    emit t line ~latency_s;
    mark_done t;
    worker_loop t

let create ?(respond = fun _line ~latency_s:_ -> ()) config =
  if config.workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  if config.queue_depth < 1 then invalid_arg "Server.create: queue_depth must be >= 1";
  let t =
    {
      config;
      queue = Bqueue.create ~capacity:config.queue_depth;
      respond;
      respond_mu = Mutex.create ();
      state_mu = Mutex.create ();
      idle = Condition.create ();
      pending = 0;
      served_n = 0;
      shed_n = 0;
      domains = [];
    }
  in
  t.domains <- List.init config.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t (frame : Protocol.frame) =
  Metrics.incr "serve.requests";
  Metrics.incr ("serve.req." ^ Protocol.op_to_string frame.Protocol.request);
  Mutex.lock t.state_mu;
  t.pending <- t.pending + 1;
  Mutex.unlock t.state_mu;
  if Bqueue.try_push t.queue { frame; submitted = Unix.gettimeofday () } then begin
    Metrics.gauge "serve.queue_depth" (float_of_int (Bqueue.length t.queue));
    true
  end
  else begin
    let depth = Bqueue.length t.queue in
    Mutex.lock t.state_mu;
    t.pending <- t.pending - 1;
    t.shed_n <- t.shed_n + 1;
    if t.pending = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.state_mu;
    Metrics.incr "serve.shed";
    emit t (Protocol.response_overloaded ~id:frame.Protocol.id ~depth) ~latency_s:0.0;
    false
  end

let submit_line t line =
  match Protocol.decode line with
  | Error e ->
    Metrics.incr "serve.invalid";
    emit t (Protocol.response_invalid e) ~latency_s:0.0;
    `Invalid
  | Ok frame ->
    if not (submit t frame) then `Rejected
    else if frame.Protocol.request = Protocol.Shutdown then `Shutdown
    else `Submitted

let drain t =
  Mutex.lock t.state_mu;
  while t.pending > 0 do
    Condition.wait t.idle t.state_mu
  done;
  Mutex.unlock t.state_mu

let shutdown t =
  drain t;
  Bqueue.close t.queue;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds

let served t =
  Mutex.lock t.state_mu;
  let n = t.served_n in
  Mutex.unlock t.state_mu;
  n

let shed t =
  Mutex.lock t.state_mu;
  let n = t.shed_n in
  Mutex.unlock t.state_mu;
  n

let queue_length t = Bqueue.length t.queue

(* ------------------------------------------------------------------ *)
(* transports                                                          *)

type stop_reason = Eof | Requested

let is_blank line = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') line

let serve_once config ic oc =
  let write line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let served = ref 0 in
  let stats ~id =
    stats_line ~id ~workers:0 ~queue_depth:0 ~queue_length:0 ~pending:0
      ~served:!served ~shed:0 config.cache
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> Eof
    | line when is_blank line -> loop ()
    | line -> (
      match Protocol.decode line with
      | Error e ->
        write (Protocol.response_invalid e);
        incr served;
        loop ()
      | Ok frame ->
        write (handle ~cache:config.cache ~stats frame);
        incr served;
        if frame.Protocol.request = Protocol.Shutdown then Requested else loop ())
  in
  loop ()

let serve_channels ?(once = false) config ic oc =
  if once then serve_once config ic oc
  else begin
    let t =
      create config ~respond:(fun line ~latency_s:_ ->
          output_string oc line;
          output_char oc '\n';
          flush oc)
    in
    let rec loop () =
      match input_line ic with
      | exception End_of_file -> Eof
      | line when is_blank line -> loop ()
      | line -> ( match submit_line t line with `Shutdown -> Requested | _ -> loop ())
    in
    let reason = loop () in
    shutdown t;
    reason
  end

let serve_socket ?once config path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let reason =
          Fun.protect
            ~finally:(fun () ->
              (try flush oc with Sys_error _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> serve_channels ?once config ic oc)
        in
        match reason with Requested -> () | Eof -> accept_loop ()
      in
      accept_loop ())
