module J = Iced_util.Json
module Fnv = Iced_util.Fnv
module Cache = Iced_explore.Cache
module Space = Iced_explore.Space
module Outcome = Iced_explore.Outcome
module Sweep = Iced_explore.Sweep
module Report = Iced_explore.Report
module Registry = Iced_kernels.Registry
module Runner = Iced_stream.Runner
module Campaign = Iced_campaign.Campaign
module Metrics = Iced_obs.Metrics
module Trace = Iced_obs.Trace

type config = {
  workers : int;
  queue_depth : int;
  cache : Cache.t;
  restart_budget : int;
  default_deadline_ms : int option;
}

let default_config () =
  {
    workers = 2;
    queue_depth = 64;
    cache = Cache.in_memory ();
    restart_budget = 8;
    default_deadline_ms = None;
  }

exception Chaos_failure
exception Worker_kill

let fingerprint e = Fnv.to_hex (Fnv.hash_string (Printexc.to_string e))

(* EINTR-robust absolute-time sleep: the drain signal handlers install
   without SA_RESTART, so [sleepf] can return early with EINTR — retry
   until the target, never surface the interrupt *)
let rec sleep_until target =
  let now = Unix.gettimeofday () in
  if now < target then begin
    (try Unix.sleepf (target -. now)
     with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    sleep_until target
  end

(* ------------------------------------------------------------------ *)
(* request handlers                                                    *)

let params = Iced_power.Params.default

let handle_map ~cache ~cancel ~id ~point ~kernel ~backend =
  match Registry.by_name kernel with
  | None -> Protocol.response_error ~id (Printf.sprintf "unknown kernel %S" kernel)
  | Some k ->
    let key = Cache.key ~backend:(Iced_mapper.Backend.to_string backend) point k in
    let status =
      Cache.find_or_store cache ~key (fun () ->
          Outcome.evaluate_kernel ~cancel ~backend ~params point k)
    in
    (match status with
    | Outcome.Timed_out -> Metrics.incr "serve.deadline_expired"
    | _ -> ());
    Protocol.response_map ~id ~point ~kernel status

let handle_explore ~cache ~id ~spec ~kernels =
  let resolved =
    match kernels with
    | [] -> Ok Registry.standalone
    | names ->
      List.fold_left
        (fun acc name ->
          match (acc, Registry.by_name name) with
          | Error _, _ -> acc
          | Ok _, None -> Error name
          | Ok ks, Some k -> Ok (k :: ks))
        (Ok []) names
      |> Result.map List.rev
  in
  match resolved with
  | Error name -> Protocol.response_error ~id (Printf.sprintf "unknown kernel %S" name)
  | Ok ks -> (
    match Space.enumerate spec with
    | [] -> Protocol.response_error ~id "the space enumerates to no valid points"
    | points ->
      (* workers = 1: the daemon's own pool is the parallelism; nesting
         a sweep pool inside a worker domain would oversubscribe *)
      let outcomes, _stats = Sweep.run ~config:Sweep.default_config ~cache points ks in
      Protocol.response_explore ~id ~frontier:(Report.frontier_summaries outcomes) outcomes)

let take n l = if n <= 0 then l else List.filteri (fun i _ -> i < n) l

let handle_stream ~id ~app ~policy ~inputs =
  let cgra = Iced_arch.Cgra.iced_6x6 in
  let pipeline, all =
    match (app : Campaign.app) with
    | Campaign.Gcn ->
      ( Iced_stream.Pipeline.gcn (),
        List.map Iced_stream.Pipeline.of_gcn_graph
          (Iced_stream.Workload.enzyme_graphs ~seed:42 ()) )
    | Campaign.Lu ->
      ( Iced_stream.Pipeline.lu (),
        List.map Iced_stream.Pipeline.of_lu_matrix
          (Iced_stream.Workload.ufl_matrices ~seed:7 ()) )
  in
  let stream = take inputs all in
  let profile =
    let step = max 1 (List.length stream / 50) in
    List.filteri (fun i _ -> i mod step = 0) stream
  in
  match Iced_stream.Partition.prepare cgra pipeline ~profile with
  | Error msg -> Protocol.response_error ~id ("partitioning failed: " ^ msg)
  | Ok partition ->
    let reports = Runner.run partition policy stream in
    Protocol.response_stream ~id ~app ~policy ~windows:(List.length reports)
      (Runner.aggregate reports)

let handle_fault ~id ~app ~seeds ~faults ~inputs ~window =
  let spec =
    {
      Campaign.default_spec with
      Campaign.app;
      seeds = List.init seeds Fun.id;
      faults_per_run = faults;
      inputs;
      window;
      workers = 1;
    }
  in
  match Campaign.run spec with
  | Error msg -> Protocol.response_error ~id ("campaign failed: " ^ msg)
  | Ok c -> Protocol.response_fault ~id c

(* ------------------------------------------------------------------ *)
(* the stats / health replies                                          *)

let failures_json () =
  let c name = Option.value ~default:0 (Metrics.counter_value name) in
  Printf.sprintf
    "{\"internal_errors\":%d,\"worker_restarts\":%d,\"deadline_expired\":%d,\
     \"cache_recoveries\":%d}"
    (c "serve.internal_errors") (c "serve.worker_restarts")
    (c "serve.deadline_expired") (c "cache.recoveries")

(* per-tenant SLO series are discovered from the metrics registry (any
   histogram under the prefix exists because some request carried that
   tenant id), so the daemon never maintains a tenant table of its own *)
let tenant_prefix = "serve.latency.tenant."

let tenants_json () =
  let series name =
    match Metrics.histogram_stats name with
    | None -> "null"
    | Some (count, sum, _, _) ->
      let q p =
        match Metrics.quantile name p with
        | Some v -> J.number v
        | None -> "null"
      in
      Printf.sprintf "{\"count\":%d,\"mean_s\":%s,\"p50_s\":%s,\"p99_s\":%s}" count
        (J.number (sum /. float_of_int count))
        (q 0.5) (q 0.99)
  in
  Metrics.histogram_names ~prefix:tenant_prefix ()
  |> List.map (fun name ->
         let tenant =
           String.sub name (String.length tenant_prefix)
             (String.length name - String.length tenant_prefix)
         in
         let requests =
           Option.value ~default:0 (Metrics.counter_value ("serve.req.tenant." ^ tenant))
         in
         Printf.sprintf "{\"tenant\":%s,\"requests\":%d,\"latency\":%s}" (J.quote tenant)
           requests (series name))
  |> String.concat ","
  |> Printf.sprintf "[%s]"

let observe_tenant (frame : Protocol.frame) latency_s =
  (match frame.Protocol.tenant with
  | None -> ()
  | Some tenant ->
    Metrics.incr ("serve.req.tenant." ^ tenant);
    Metrics.observe (tenant_prefix ^ tenant) latency_s);
  match frame.Protocol.qos with
  | None -> ()
  | Some qos -> Metrics.observe ("serve.latency.qos." ^ qos) latency_s

let stats_line ~id ~workers ~queue_depth ~queue_length ~pending ~served ~shed cache =
  let hits = Cache.hits cache and misses = Cache.misses cache in
  let hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let latency =
    match Metrics.histogram_stats "serve.latency_s" with
    | None -> "null"
    | Some (count, sum, _, _) ->
      let q p =
        match Metrics.quantile "serve.latency_s" p with
        | Some v -> J.number v
        | None -> "null"
      in
      Printf.sprintf "{\"count\":%d,\"mean_s\":%s,\"p50_s\":%s,\"p99_s\":%s}" count
        (J.number (sum /. float_of_int count))
        (q 0.5) (q 0.99)
  in
  Printf.sprintf
    "{\"id\":%s,\"status\":\"ok\",\"op\":\"stats\",\"workers\":%d,\"queue_depth\":%d,\
     \"queue_length\":%d,\"pending\":%d,\"served\":%d,\"shed\":%d,\
     \"cache\":{\"size\":%d,\"hits\":%d,\"misses\":%d,\"coalesced\":%d,\"hit_rate\":%s},\
     \"latency\":%s,\"tenants\":%s,\"failures\":%s}"
    (J.quote id) workers queue_depth queue_length pending served shed (Cache.size cache)
    hits misses (Cache.coalesced cache) (J.number hit_rate) latency (tenants_json ())
    (failures_json ())

let cache_health_json cache =
  let tier, path =
    match Cache.path cache with
    | Some p -> ("persistent", J.quote p)
    | None -> ("memory", "null")
  in
  let recovery =
    match Cache.recovery cache with
    | None -> "null"
    | Some r ->
      Printf.sprintf
        "{\"kept_records\":%d,\"dropped_bytes\":%d,\"renamed_bak\":%b}"
        r.Cache.kept_records r.Cache.dropped_bytes r.Cache.renamed_bak
  in
  Printf.sprintf "{\"tier\":\"%s\",\"path\":%s,\"entries\":%d,\"recovery\":%s}" tier path
    (Cache.size cache) recovery

let health_line ~id ~workers ~alive ~restarts ~restart_budget ~queue_depth ~queue_length
    cache =
  (* a pool with zero live workers cannot make progress; the serial
     once-mode path (workers = 0) is its own worker *)
  let healthy = workers = 0 || alive > 0 in
  Printf.sprintf
    "{\"id\":%s,\"status\":\"ok\",\"op\":\"health\",\"healthy\":%b,\
     \"workers\":{\"total\":%d,\"alive\":%d,\"restarts\":%d,\"restart_budget\":%d},\
     \"queue\":{\"length\":%d,\"depth\":%d},\"cache\":%s}"
    (J.quote id) healthy workers alive restarts restart_budget queue_length queue_depth
    (cache_health_json cache)

(* ------------------------------------------------------------------ *)
(* the exception barrier                                               *)

let dispatch ~cache ~stats ~health ~start ~deadline_at (frame : Protocol.frame) =
  let id = frame.Protocol.id in
  let expired () =
    match deadline_at with
    | Some d -> Unix.gettimeofday () >= d
    | None -> false
  in
  match frame.Protocol.request with
  | Protocol.Ping -> Protocol.response_ping ~id
  | Protocol.Sleep ms -> (
    let finish = start +. (float_of_int ms /. 1000.0) in
    match deadline_at with
    | Some d when d <= finish ->
      (* the deadline lands first: wait it out, then time out — the
         reply bytes match a queue-expired sleep exactly *)
      sleep_until d;
      Metrics.incr "serve.deadline_expired";
      Protocol.response_timeout ~id ~op:"sleep"
    | _ ->
      sleep_until finish;
      Protocol.response_sleep ~id ~ms)
  | Protocol.Map { point; kernel; backend } ->
    handle_map ~cache ~cancel:expired ~id ~point ~kernel ~backend
  | Protocol.Explore { spec; kernels } -> handle_explore ~cache ~id ~spec ~kernels
  | Protocol.Stream { app; policy; inputs } -> handle_stream ~id ~app ~policy ~inputs
  | Protocol.Fault { app; seeds; faults; inputs; window } ->
    handle_fault ~id ~app ~seeds ~faults ~inputs ~window
  | Protocol.Stats -> stats ~id
  | Protocol.Health -> health ~id
  | Protocol.Crash { kill } -> if kill then raise Worker_kill else raise Chaos_failure
  | Protocol.Shutdown -> Protocol.response_shutdown ~id

let internal_error_line ~id ~op e =
  Metrics.incr "serve.internal_errors";
  Printf.eprintf "[serve] internal error handling op %s (id %s): %s\n%!" op
    (if id = "" then "<anon>" else id)
    (Printexc.to_string e);
  Protocol.response_internal_error ~id ~op ~fingerprint:(fingerprint e)

let handle ?(catch_kill = true) ?deadline_at ?health ~cache ~stats
    (frame : Protocol.frame) =
  let op = Protocol.op_to_string frame.Protocol.request in
  let id = frame.Protocol.id in
  let start = Unix.gettimeofday () in
  let deadline_at =
    match deadline_at with
    | Some _ as d -> d
    | None ->
      Option.map (fun ms -> start +. (float_of_int ms /. 1000.0)) frame.Protocol.deadline_ms
  in
  let health =
    match health with
    | Some h -> h
    | None ->
      fun ~id ->
        health_line ~id ~workers:0 ~alive:0 ~restarts:0 ~restart_budget:0 ~queue_depth:0
          ~queue_length:0 cache
  in
  let expired_now () =
    match deadline_at with
    | Some d -> start >= d
    | None -> false
  in
  (* shed-on-expiry: queue wait already consumed the whole budget, so
     answer timeout without touching the handler at all *)
  if expired_now () then begin
    Metrics.incr "serve.deadline_expired";
    match frame.Protocol.request with
    | Protocol.Map { point; kernel; backend = _ } ->
      Protocol.response_map ~id ~point ~kernel Outcome.Timed_out
    | _ -> Protocol.response_timeout ~id ~op
  end
  else
    match
      Trace.with_span
        ~args:[ ("id", Trace.Str id) ]
        ~cat:"serve" ~name:op
        (fun () -> dispatch ~cache ~stats ~health ~start ~deadline_at frame)
    with
    | line -> line
    | exception Worker_kill when not catch_kill ->
      (* pool mode: let the kill escape the barrier so it takes out the
         worker domain and exercises supervision *)
      raise Worker_kill
    | exception e -> internal_error_line ~id ~op e

(* ------------------------------------------------------------------ *)
(* the pool                                                            *)

type item = { frame : Protocol.frame; submitted : float; deadline_at : float option }

type t = {
  config : config;
  queue : item Bqueue.t;
  respond : string -> latency_s:float -> unit;
  respond_mu : Mutex.t;
  state_mu : Mutex.t;
  idle : Condition.t;  (* signalled when [pending] returns to 0 *)
  mutable pending : int;  (* accepted, response not yet emitted *)
  mutable served_n : int;
  mutable shed_n : int;
  mutable alive_n : int;  (* worker domains still in their loop *)
  mutable restarts_n : int;  (* kills absorbed by the supervisor *)
  mutable domains : unit Domain.t list;
}

let emit t line ~latency_s =
  Mutex.lock t.respond_mu;
  (match t.respond line ~latency_s with
  | () -> Mutex.unlock t.respond_mu
  | exception e ->
    Mutex.unlock t.respond_mu;
    raise e);
  Mutex.lock t.state_mu;
  t.served_n <- t.served_n + 1;
  Mutex.unlock t.state_mu

let pool_stats t ~id =
  Mutex.lock t.state_mu;
  let served = t.served_n and shed = t.shed_n and pending = t.pending in
  Mutex.unlock t.state_mu;
  stats_line ~id ~workers:t.config.workers ~queue_depth:t.config.queue_depth
    ~queue_length:(Bqueue.length t.queue) ~pending ~served ~shed t.config.cache

let pool_health t ~id =
  Mutex.lock t.state_mu;
  let alive = t.alive_n and restarts = t.restarts_n in
  Mutex.unlock t.state_mu;
  health_line ~id ~workers:t.config.workers ~alive ~restarts
    ~restart_budget:t.config.restart_budget ~queue_depth:t.config.queue_depth
    ~queue_length:(Bqueue.length t.queue) t.config.cache

let mark_done t =
  Mutex.lock t.state_mu;
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.idle;
  Mutex.unlock t.state_mu

(* every worker over budget: nothing will pop the queue again, so shut
   the door (future submits shed) and fail whatever is already queued
   rather than letting clients wait forever *)
let fail_pending t =
  Bqueue.close t.queue;
  let rec drain () =
    match Bqueue.pop t.queue with
    | None -> ()
    | Some { frame; submitted; deadline_at = _ } ->
      let id = frame.Protocol.id in
      let op = Protocol.op_to_string frame.Protocol.request in
      let line = internal_error_line ~id ~op Worker_kill in
      emit t line ~latency_s:(Unix.gettimeofday () -. submitted);
      mark_done t;
      drain ()
  in
  drain ()

let process_item t { frame; submitted; deadline_at } =
  Metrics.gauge "serve.queue_depth" (float_of_int (Bqueue.length t.queue));
  let line =
    handle ~catch_kill:false ?deadline_at ~cache:t.config.cache ~stats:(pool_stats t)
      ~health:(pool_health t) frame
  in
  let latency_s = Unix.gettimeofday () -. submitted in
  Metrics.observe "serve.latency_s" latency_s;
  Metrics.observe
    ("serve.latency." ^ Protocol.op_to_string frame.Protocol.request)
    latency_s;
  observe_tenant frame latency_s;
  emit t line ~latency_s;
  mark_done t

(* a request killed this worker: answer on its behalf, then decide
   whether the restart budget covers spinning the worker back up *)
let supervise_kill t item e =
  let id = item.frame.Protocol.id in
  let op = Protocol.op_to_string item.frame.Protocol.request in
  let line = internal_error_line ~id ~op e in
  emit t line ~latency_s:(Unix.gettimeofday () -. item.submitted);
  Mutex.lock t.state_mu;
  t.restarts_n <- t.restarts_n + 1;
  let restarts = t.restarts_n in
  let budget_left = restarts <= t.config.restart_budget in
  let last_alive =
    if budget_left then false
    else begin
      t.alive_n <- t.alive_n - 1;
      t.alive_n = 0
    end
  in
  Mutex.unlock t.state_mu;
  Metrics.incr "serve.worker_restarts";
  if budget_left then
    Printf.eprintf "[serve] worker killed by op %s (id %s); restarted (%d/%d)\n%!" op
      (if id = "" then "<anon>" else id)
      restarts t.config.restart_budget
  else
    Printf.eprintf "[serve] worker killed by op %s (id %s); restart budget exhausted\n%!"
      op
      (if id = "" then "<anon>" else id);
  (* settle the supervisor state — including closing the door when the
     last worker retires — before waking drainers *)
  if last_alive then Bqueue.close t.queue;
  mark_done t;
  if last_alive then fail_pending t;
  budget_left

let rec worker_loop t =
  match Bqueue.pop t.queue with
  | None -> ()
  | Some item ->
    let keep_going =
      match process_item t item with
      | () -> true
      | exception e -> supervise_kill t item e
    in
    if keep_going then worker_loop t

let create ?(respond = fun _line ~latency_s:_ -> ()) config =
  if config.workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  if config.queue_depth < 1 then invalid_arg "Server.create: queue_depth must be >= 1";
  if config.restart_budget < 0 then
    invalid_arg "Server.create: restart_budget must be >= 0";
  let t =
    {
      config;
      queue = Bqueue.create ~capacity:config.queue_depth;
      respond;
      respond_mu = Mutex.create ();
      state_mu = Mutex.create ();
      idle = Condition.create ();
      pending = 0;
      served_n = 0;
      shed_n = 0;
      alive_n = config.workers;
      restarts_n = 0;
      domains = [];
    }
  in
  t.domains <- List.init config.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t (frame : Protocol.frame) =
  Metrics.incr "serve.requests";
  Metrics.incr ("serve.req." ^ Protocol.op_to_string frame.Protocol.request);
  Mutex.lock t.state_mu;
  t.pending <- t.pending + 1;
  Mutex.unlock t.state_mu;
  let submitted = Unix.gettimeofday () in
  let deadline_at =
    match frame.Protocol.deadline_ms with
    | Some ms -> Some (submitted +. (float_of_int ms /. 1000.0))
    | None ->
      Option.map
        (fun ms -> submitted +. (float_of_int ms /. 1000.0))
        t.config.default_deadline_ms
  in
  if Bqueue.try_push t.queue { frame; submitted; deadline_at } then begin
    Metrics.gauge "serve.queue_depth" (float_of_int (Bqueue.length t.queue));
    true
  end
  else begin
    let depth = Bqueue.length t.queue in
    Mutex.lock t.state_mu;
    t.pending <- t.pending - 1;
    t.shed_n <- t.shed_n + 1;
    if t.pending = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.state_mu;
    Metrics.incr "serve.shed";
    emit t (Protocol.response_overloaded ~id:frame.Protocol.id ~depth) ~latency_s:0.0;
    false
  end

let submit_line t line =
  match Protocol.decode line with
  | Error e ->
    Metrics.incr "serve.invalid";
    emit t (Protocol.response_invalid e) ~latency_s:0.0;
    `Invalid
  | Ok frame ->
    if not (submit t frame) then `Rejected
    else if frame.Protocol.request = Protocol.Shutdown then `Shutdown
    else `Submitted

let drain t =
  Mutex.lock t.state_mu;
  while t.pending > 0 do
    Condition.wait t.idle t.state_mu
  done;
  Mutex.unlock t.state_mu

let shutdown t =
  drain t;
  Bqueue.close t.queue;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds

let served t =
  Mutex.lock t.state_mu;
  let n = t.served_n in
  Mutex.unlock t.state_mu;
  n

let shed t =
  Mutex.lock t.state_mu;
  let n = t.shed_n in
  Mutex.unlock t.state_mu;
  n

let alive t =
  Mutex.lock t.state_mu;
  let n = t.alive_n in
  Mutex.unlock t.state_mu;
  n

let restarts t =
  Mutex.lock t.state_mu;
  let n = t.restarts_n in
  Mutex.unlock t.state_mu;
  n

let queue_length t = Bqueue.length t.queue

(* ------------------------------------------------------------------ *)
(* transports                                                          *)

type stop_reason = Eof | Requested | Stopped

let is_blank line = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') line

let never_stop () = false

let serve_fds_once ~stop config reader writer =
  let served = ref 0 in
  let stats ~id =
    stats_line ~id ~workers:0 ~queue_depth:0 ~queue_length:0 ~pending:0 ~served:!served
      ~shed:0 config.cache
  in
  let write line = ignore (Lineio.write_line writer line) in
  let rec loop () =
    match Lineio.read_line ~stop reader with
    | `Eof -> Eof
    | `Stopped -> Stopped
    | `Line line when is_blank line -> loop ()
    | `Line line -> (
      match Protocol.decode line with
      | Error e ->
        write (Protocol.response_invalid e);
        incr served;
        loop ()
      | Ok frame ->
        let deadline_at =
          match (frame.Protocol.deadline_ms, config.default_deadline_ms) with
          | None, Some ms -> Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.0))
          | _ -> None  (* an explicit deadline_ms is derived inside [handle] *)
        in
        write (handle ?deadline_at ~cache:config.cache ~stats frame);
        incr served;
        if frame.Protocol.request = Protocol.Shutdown then Requested else loop ())
  in
  loop ()

let serve_fds_pool ~stop config reader writer =
  let t =
    create config ~respond:(fun line ~latency_s:_ ->
        ignore (Lineio.write_line writer line))
  in
  let rec loop () =
    match Lineio.read_line ~stop reader with
    | `Eof -> Eof
    | `Stopped -> Stopped
    | `Line line when is_blank line -> loop ()
    | `Line line -> ( match submit_line t line with `Shutdown -> Requested | _ -> loop ())
  in
  let reason = loop () in
  (* even when stopped by a signal: drain accepted work, then stop —
     nothing already admitted is dropped or failed *)
  shutdown t;
  reason

let serve_fds ?(once = false) ?(stop = never_stop) config infd outfd =
  let reader = Lineio.reader infd in
  let writer = Lineio.writer outfd in
  if once then serve_fds_once ~stop config reader writer
  else serve_fds_pool ~stop config reader writer

let serve_channels ?(once = false) ?stop config ic oc =
  (* the fd transport bypasses channel buffering; flush anything a
     caller already queued on [oc] so ordering is preserved *)
  flush oc;
  serve_fds ~once ?stop config (Unix.descr_of_in_channel ic) (Unix.descr_of_out_channel oc)

(* abnormal-exit guard: one registration per path, lives for the whole
   process — a second serve of the same path reuses it *)
let unlink_guards : (string, unit) Hashtbl.t = Hashtbl.create 4
let unlink_guards_mu = Mutex.create ()

let guard_unlink path =
  Mutex.lock unlink_guards_mu;
  if not (Hashtbl.mem unlink_guards path) then begin
    Hashtbl.replace unlink_guards path ();
    at_exit (fun () -> try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  end;
  Mutex.unlock unlink_guards_mu

let serve_socket ?once ?(stop = never_stop) config path =
  (* a client vanishing mid-reply must not kill the daemon with an
     unhandled SIGPIPE; writes then fail with EPIPE, which Lineio eats *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  guard_unlink path;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        if stop () then Stopped
        else
          match Unix.accept sock with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | fd, _ ->
            let reason =
              Fun.protect
                ~finally:(fun () ->
                  try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () -> serve_fds ?once ~stop config fd fd)
            in
            (match reason with
            | Requested -> Requested
            | Stopped -> Stopped
            | Eof -> accept_loop ())
      in
      accept_loop ())
