type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
  }

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
    Mutex.unlock t.mu;
    v
  | exception e ->
    Mutex.unlock t.mu;
    raise e

let try_push t x =
  locked t (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  Mutex.lock t.mu;
  while Queue.is_empty t.items && not t.closed do
    Condition.wait t.nonempty t.mu
  done;
  let item = if Queue.is_empty t.items then None else Some (Queue.pop t.items) in
  Mutex.unlock t.mu;
  item

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = locked t (fun () -> Queue.length t.items)
