(** EINTR-robust line IO over raw file descriptors — the daemon's
    transport primitive.

    Buffered channels turn a signal-interrupted [read(2)] into a fatal
    [Sys_error]; these wrappers instead retry [EINTR] (after
    re-checking an optional [stop] predicate, so the drain handlers'
    no-SA_RESTART signals can break a blocked reader out of its wait)
    and degrade peer-disconnect errors ([ECONNRESET]/[EPIPE]) into
    end-of-stream instead of exceptions. *)

type reader

val reader : Unix.file_descr -> reader

val read_line : ?stop:(unit -> bool) -> reader -> [ `Line of string | `Eof | `Stopped ]
(** Next newline-terminated line (terminator removed, a trailing [\r]
    tolerated).  [`Eof] on end-of-stream or peer reset — an
    unterminated final partial line is a torn frame and is discarded,
    never returned.  [`Stopped] as soon as [stop ()] holds (checked
    before every blocking read; combine with a signal handler to
    interrupt the wait). *)

type writer

val writer : Unix.file_descr -> writer

val write_line : writer -> string -> bool
(** Write [line ^ "\n"], retrying partial writes and [EINTR].  [false]
    when the peer is gone ([EPIPE]/[ECONNRESET]); the writer is then
    {e broken} and every later write is a silent no-op — the server
    keeps draining work for a vanished client without dying on
    SIGPIPE-adjacent errors. *)

val writer_broken : writer -> bool
