(** The `iced serve` daemon: a long-lived mapping-as-a-service worker
    pool behind the line-delimited JSON protocol of {!Protocol}.

    Architecture: a reader (the transport loop, or the bench's load
    generator) decodes frames and {!submit}s them into a bounded
    {!Bqueue}; [workers] OCaml 5 domains pop, evaluate through the
    shared {!Iced_explore.Cache} (so identical in-flight requests
    coalesce onto one evaluation and repeats hit the cache), and emit
    response lines through a serialized [respond] callback.  Admission
    control is shedding: a full queue turns the request into an
    immediate [overloaded] reply instead of unbounded latency.

    SLO accounting rides on {!Iced_obs}: every request runs in a
    ["serve"]/op span, the queue depth is a gauge, per-request wall
    time lands in the ["serve.latency_s"] histogram (plus a per-op
    one), and shed/served/dedup counters are readable through the
    protocol's [stats] request.

    Responses are deterministic (see {!Protocol}), so a daemon of any
    worker count emits byte-identical lines to {!handle} called
    serially — the ordering, not the bytes, is what concurrency
    changes. *)

type config = {
  workers : int;  (** evaluation domains, >= 1 *)
  queue_depth : int;  (** admission-control bound, >= 1 *)
  cache : Iced_explore.Cache.t;
      (** shared two-tier result store — pass {!Iced_explore.Cache.open_file}
          for a persistent tier that survives restarts *)
}

val default_config : unit -> config
(** 2 workers, queue depth 64, a fresh in-memory cache. *)

val handle :
  cache:Iced_explore.Cache.t -> stats:(id:string -> string) -> Protocol.frame -> string
(** Evaluate one frame to its response line, synchronously on the
    calling domain — the one-shot execution path ([iced serve --once])
    and the byte-identity oracle for the pool.  [stats] renders the
    [stats] reply (the daemon injects live queue counters; a one-shot
    context has none). *)

(** {2 The pool} *)

type t

val create : ?respond:(string -> latency_s:float -> unit) -> config -> t
(** Spawn the worker domains.  [respond] receives every response line
    exactly once, serialized under an internal lock, from whichever
    domain finished the request; [latency_s] is submit-to-respond wall
    time (0 for shed requests).  Default: discard. *)

val submit : t -> Protocol.frame -> bool
(** Enqueue a request ([false]: the queue was full or closed — the
    [overloaded] reply has already been emitted through [respond]). *)

val submit_line : t -> string -> [ `Submitted | `Invalid | `Rejected | `Shutdown ]
(** Decode then {!submit} one raw request line.  [`Invalid] frames get
    their error reply emitted immediately; [`Shutdown] means the frame
    was accepted and the transport should stop reading. *)

val drain : t -> unit
(** Block until every accepted request has been responded to. *)

val shutdown : t -> unit
(** {!drain}, close the queue, and join the worker domains — no stuck
    domains, no lost responses.  Safe to call twice. *)

val served : t -> int
(** Responses emitted so far (including error/overloaded replies). *)

val shed : t -> int
(** Requests refused by admission control so far. *)

val queue_length : t -> int

(** {2 Transports} *)

type stop_reason =
  | Eof  (** the client closed its end *)
  | Requested  (** a [shutdown] frame was served *)

val serve_channels :
  ?once:bool -> config -> in_channel -> out_channel -> stop_reason
(** Serve one client: read request lines from [ic] until EOF or a
    [shutdown] frame, write response lines to [oc] (flushed per line),
    then drain and stop the pool.  Blank lines are ignored.  [once]
    skips the pool entirely and evaluates serially in arrival order on
    the calling domain — same bytes, deterministic interleaving. *)

val serve_socket : ?once:bool -> config -> string -> unit
(** Listen on a Unix-domain socket at [path] (an existing socket file
    is replaced) and serve clients sequentially, each with
    {!serve_channels}, until one sends [shutdown].  The socket file is
    removed on exit. *)
