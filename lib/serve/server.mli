(** The `iced serve` daemon: a long-lived mapping-as-a-service worker
    pool behind the line-delimited JSON protocol of {!Protocol}.

    Architecture: a reader (the transport loop, or the bench's load
    generator) decodes frames and {!submit}s them into a bounded
    {!Bqueue}; [workers] OCaml 5 domains pop, evaluate through the
    shared {!Iced_explore.Cache} (so identical in-flight requests
    coalesce onto one evaluation and repeats hit the cache), and emit
    response lines through a serialized [respond] callback.  Admission
    control is shedding: a full queue turns the request into an
    immediate [overloaded] reply instead of unbounded latency.

    {b Resilience.}  Every request runs inside an exception barrier:
    a handler that raises yields a structured [internal_error] reply
    carrying a stable FNV-1a fingerprint of the exception (the raw
    message stays on the daemon's stderr), never a dead connection.  A
    request that kills its worker domain outright (see
    {!Protocol.Crash}) is answered the same way by a supervisor, which
    then restarts the worker — up to [restart_budget] restarts, after
    which remaining workers retire and queued work is failed loudly
    rather than hung.  Per-request deadlines ([deadline_ms], or the
    pool-wide [default_deadline_ms]) are enforced cooperatively: queue
    wait counts against the budget, an already-expired request is
    answered [timeout] without running, and in-flight [map]
    evaluations poll a cancel knob.  The [health] op reports worker
    liveness, restart spend, queue occupancy, and cache tier status.

    SLO accounting rides on {!Iced_obs}: every request runs in a
    ["serve"]/op span, the queue depth is a gauge, per-request wall
    time lands in the ["serve.latency_s"] histogram (plus a per-op
    one), and shed/served/dedup counters — plus failure counters
    ([serve.internal_errors], [serve.worker_restarts],
    [serve.deadline_expired], [cache.recoveries]) — are readable
    through the protocol's [stats] request.

    Responses are deterministic (see {!Protocol}), so a daemon of any
    worker count emits byte-identical lines to {!handle} called
    serially — the ordering, not the bytes, is what concurrency
    changes.  This includes failure replies: a deliberately-expired
    deadline or an injected crash renders the same bytes in one-shot
    and pool modes. *)

type config = {
  workers : int;  (** evaluation domains, >= 1 *)
  queue_depth : int;  (** admission-control bound, >= 1 *)
  cache : Iced_explore.Cache.t;
      (** shared two-tier result store — pass {!Iced_explore.Cache.open_file}
          for a persistent tier that survives restarts *)
  restart_budget : int;
      (** worker-domain deaths the supervisor absorbs before retiring
          workers (>= 0) *)
  default_deadline_ms : int option;
      (** deadline applied to frames that carry none; [None] = no
          implicit deadline *)
}

val default_config : unit -> config
(** 2 workers, queue depth 64, a fresh in-memory cache, restart budget
    8, no default deadline. *)

exception Chaos_failure
(** What a [crash] request with [kill = false] raises — an ordinary
    handler failure, absorbed by the exception barrier. *)

exception Worker_kill
(** What a [crash] request with [kill = true] raises — escapes the
    barrier in pool mode and takes the worker domain down, exercising
    the supervisor. *)

val fingerprint : exn -> string
(** The stable 16-hex-digit FNV-1a an [internal_error] reply carries
    for this exception. *)

val handle :
  ?catch_kill:bool ->
  ?deadline_at:float ->
  ?health:(id:string -> string) ->
  cache:Iced_explore.Cache.t ->
  stats:(id:string -> string) ->
  Protocol.frame ->
  string
(** Evaluate one frame to its response line, synchronously on the
    calling domain — the one-shot execution path ([iced serve --once])
    and the byte-identity oracle for the pool.  [stats]/[health]
    render those replies (the daemon injects live pool counters; a
    one-shot context reports a static snapshot).  [deadline_at] is the
    absolute expiry ([Unix.gettimeofday] clock); when absent, it is
    derived from the frame's own [deadline_ms] at call time.
    [catch_kill] (default [true]) also converts {!Worker_kill} into an
    [internal_error] reply; the pool passes [false] so the kill
    reaches its supervisor instead. *)

(** {2 The pool} *)

type t

val create : ?respond:(string -> latency_s:float -> unit) -> config -> t
(** Spawn the worker domains.  [respond] receives every response line
    exactly once, serialized under an internal lock, from whichever
    domain finished the request; [latency_s] is submit-to-respond wall
    time (0 for shed requests).  Default: discard. *)

val submit : t -> Protocol.frame -> bool
(** Enqueue a request ([false]: the queue was full or closed — the
    [overloaded] reply has already been emitted through [respond]).
    The frame's deadline (or the config default) starts counting
    here: queue wait is part of the budget. *)

val submit_line : t -> string -> [ `Submitted | `Invalid | `Rejected | `Shutdown ]
(** Decode then {!submit} one raw request line.  [`Invalid] frames get
    their error reply emitted immediately; [`Shutdown] means the frame
    was accepted and the transport should stop reading. *)

val drain : t -> unit
(** Block until every accepted request has been responded to. *)

val shutdown : t -> unit
(** {!drain}, close the queue, and join the worker domains — no stuck
    domains, no lost responses.  Safe to call twice. *)

val served : t -> int
(** Responses emitted so far (including error/overloaded replies). *)

val shed : t -> int
(** Requests refused by admission control so far. *)

val alive : t -> int
(** Worker domains still serving (drops only when a kill lands past
    the restart budget). *)

val restarts : t -> int
(** Worker kills absorbed by the supervisor so far. *)

val queue_length : t -> int

(** {2 Transports}

    All transports retry [EINTR] (see {!Lineio}) and poll [stop]
    before every blocking read/accept, so a signal handler that sets a
    flag interrupts the daemon without killing it; accepted in-flight
    work is still drained before the transport returns [Stopped]. *)

type stop_reason =
  | Eof  (** the client closed its end *)
  | Requested  (** a [shutdown] frame was served *)
  | Stopped  (** the [stop] predicate fired (SIGTERM/SIGINT drain) *)

val serve_fds :
  ?once:bool ->
  ?stop:(unit -> bool) ->
  config ->
  Unix.file_descr ->
  Unix.file_descr ->
  stop_reason
(** Serve one client over raw descriptors: read request lines from the
    first until EOF, a [shutdown] frame, or [stop ()]; write response
    lines to the second; then drain and stop the pool.  Blank lines
    are ignored; a torn final line (no terminator) is discarded.
    [once] skips the pool entirely and evaluates serially in arrival
    order on the calling domain — same bytes, deterministic
    interleaving. *)

val serve_channels :
  ?once:bool -> ?stop:(unit -> bool) -> config -> in_channel -> out_channel -> stop_reason
(** {!serve_fds} on the channels' underlying descriptors (the CLI's
    stdin/stdout path).  Bypasses channel buffering: don't interleave
    with reads from [ic]. *)

val serve_socket : ?once:bool -> ?stop:(unit -> bool) -> config -> string -> stop_reason
(** Listen on a Unix-domain socket at [path] (an existing socket file
    is replaced) and serve clients sequentially, each with
    {!serve_fds}, until one sends [shutdown] or [stop ()] holds.
    SIGPIPE is ignored for the process (a vanished client becomes a
    dropped reply, not a death).  The socket file is removed on exit —
    including abnormal exit, via an [at_exit] guard. *)
