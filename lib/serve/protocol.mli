(** The `iced serve` wire protocol: line-delimited JSON frames.

    One request per line on the way in, one response per line on the
    way out; a client correlates them by the [id] it chose (responses
    may arrive out of submission order — the daemon's worker pool
    completes cheap requests while expensive ones are still mapping).
    Every payload is a single flat-ish JSON object, decoded with the
    strict {!Iced_util.Json} parser, so a malformed or truncated frame
    is rejected with a positioned error instead of being guessed at.

    Result payloads are deterministic: floats are rendered at [%.17g]
    (exact round-trip precision, matching the evaluation cache's
    persistent tier), so the same request yields byte-identical
    response lines whether it was computed fresh, served from cache,
    handled by the one-shot CLI, or by a daemon of any worker count.
    Only [stats] replies — snapshots of live SLO instruments — are
    exempt from that guarantee.

    See docs/SERVING.md for the full request/response reference. *)

type app = Iced_campaign.Campaign.app

type request =
  | Ping  (** liveness check *)
  | Sleep of int  (** hold a worker for N ms — load/backpressure testing *)
  | Map of {
      point : Iced_explore.Space.point;
      kernel : string;
      backend : Iced_mapper.Backend.t;
    }
      (** evaluate one kernel at one design point; deduplicated and
          cached by the shared {!Iced_explore.Cache}.  [backend]
          (wire field ["backend"], default ["default"], strictly
          validated) selects the mapper's placement/routing pair;
          non-default backends get their own cache entries *)
  | Explore of { spec : Iced_explore.Space.spec; kernels : string list }
      (** run a sweep over a declarative space ([kernels = []] means
          the standalone Table I set); shares the daemon's cache *)
  | Stream of { app : app; policy : Iced_stream.Runner.policy; inputs : int }
      (** run a streaming application over its dataset ([inputs = 0]
          means the whole dataset) and return aggregate totals *)
  | Fault of { app : app; seeds : int; faults : int; inputs : int; window : int }
      (** run a seeded fault campaign (all recovery policies and fault
          families) and return per-policy survival/retention *)
  | Stats  (** SLO snapshot: queue depth, latency quantiles, dedup counters *)
  | Health
      (** liveness/readiness probe: worker aliveness and restart
          budget, queue occupancy, cache tier + recovery status *)
  | Crash of { kill : bool }
      (** deliberately raise inside the handler — the chaos harness's
          fault-injection hook.  [kill = false] exercises the
          exception barrier (a structured [internal_error] reply);
          [kill = true] kills the worker domain itself, exercising
          supervision/restart.  Never cached, never useful to real
          clients. *)
  | Shutdown  (** acknowledge, then stop accepting requests *)

type frame = {
  id : string;
  request : request;
  deadline_ms : int option;
  tenant : string option;
  qos : string option;
}
(** [id] is the client's correlation token (possibly [""]); it is
    echoed verbatim in the response.  [deadline_ms], when present, is
    the client's end-to-end budget: queue wait counts against it, an
    expired request is answered [status "timeout"] without (or
    mid-)evaluation.  [deadline_ms = Some 0] is already expired —
    deterministic timeout, handy for tests.

    [tenant] (wire field ["tenant"], any non-empty string) and [qos]
    (wire field ["qos"], one of {!Iced_tenancy.Qos.all}, strictly
    validated and stored canonicalised) attribute the request to a
    multi-tenant client for per-tenant SLO accounting in the [stats]
    reply — see docs/MULTITENANT.md.  They never change what is
    computed or how responses render, and the evaluation cache is
    shared across tenants, so identical requests from different
    tenants still deduplicate.  Both fields are left implicit when
    absent, so pre-tenancy frames encode byte-identically. *)

type decode_error =
  | Malformed of Iced_util.Json.error
      (** not a JSON document at all: truncated frame, trailing
          garbage, raw control bytes, bad escapes *)
  | Invalid of { id : string; reason : string }
      (** parseable JSON that is not a valid request: missing/unknown
          [op], wrong field types, out-of-range values *)

val op_to_string : request -> string
(** The request's [op] tag: ["ping"], ["map"], ["explore"], ... *)

val decode : string -> (frame, decode_error) result
(** Decode one request line. *)

val encode_request : frame -> string
(** Canonical encoding of a frame — [decode (encode_request f)] is
    [Ok f].  The load generator and the round-trip tests use it;
    hand-written client lines may of course order fields freely. *)

val default_point : Iced_explore.Space.point
(** The point a [map] request evaluates when it names none: the
    paper's 6x6 prototype, 2x2 islands, 8 banks, floor [rest],
    unroll 1, II cap 64. *)

(** {2 Response rendering}

    Responses are built directly as strings (the repository's JSON
    emitters are all [Printf]-style); each helper returns one complete
    line without the trailing newline. *)

val response_ping : id:string -> string
val response_sleep : id:string -> ms:int -> string

val response_map :
  id:string ->
  point:Iced_explore.Space.point ->
  kernel:string ->
  Iced_explore.Outcome.status ->
  string
(** [status "ok"] with the measurement fields, [status "unmapped"]
    with the mapper's message, or [status "timeout"]. *)

val response_explore :
  id:string ->
  frontier:Iced_explore.Outcome.summary list ->
  Iced_explore.Outcome.point_result list ->
  string
(** Per-point summaries in sweep order, each flagged with its Pareto
    membership. *)

val response_stream :
  id:string ->
  app:app ->
  policy:Iced_stream.Runner.policy ->
  windows:int ->
  Iced_stream.Runner.totals ->
  string

val response_fault : id:string -> Iced_campaign.Campaign.t -> string
(** Per-recovery-policy aggregates over the campaign's cells. *)

val response_shutdown : id:string -> string

val response_timeout : id:string -> op:string -> string
(** [status "timeout"]: the request's [deadline_ms] expired (in queue
    or mid-evaluation) before a result was produced.  [map] timeouts
    use {!response_map} with [Timed_out] instead, which carries the
    point/kernel echo. *)

val response_internal_error : id:string -> op:string -> fingerprint:string -> string
(** [status "internal_error"]: the handler raised.  [fingerprint] is a
    stable 16-hex-digit FNV-1a of the exception rendering — enough to
    correlate repeats and grep server logs, never the raw
    message/backtrace (which stays on the daemon's stderr). *)

val response_error : id:string -> string -> string
(** [status "error"]: a well-formed request the handler rejected
    (unknown kernel, empty space, unpartitionable app...). *)

val response_overloaded : id:string -> depth:int -> string
(** [status "overloaded"]: admission control shed this request because
    the queue held [depth] items. *)

val response_invalid : decode_error -> string
(** [status "invalid"]: the frame never made it to a handler. *)
