type record = Outcome.status

type t = {
  table : (string, record) Hashtbl.t;
  file : out_channel option;
  path : string option;
  mutable hits : int;
  mutable misses : int;
}

let version = 1

(* ------------------------------------------------------------------ *)
(* keys                                                                *)

let key (p : Space.point) (kernel : Iced_kernels.Kernel.t) =
  let nodes, edges, rec_mii =
    Iced_kernels.Kernel.stats (Iced_kernels.Kernel.dfg_at kernel ~factor:p.Space.unroll)
  in
  Printf.sprintf "%s|%s|%d,%d,%d" (Space.to_string p) kernel.Iced_kernels.Kernel.name
    nodes edges rec_mii

let content_hash s = Iced_util.Fnv.(to_hex (hash_string s))

(* ------------------------------------------------------------------ *)
(* the flat-JSON subset the store emits                                *)

let escape = Iced_util.Json.escape

let record_to_line key (r : record) =
  let common = Printf.sprintf "\"v\":%d,\"h\":\"%s\",\"k\":\"%s\"" version (content_hash key) (escape key) in
  match r with
  | Outcome.Mapped m ->
    Printf.sprintf
      "{%s,\"s\":\"ok\",\"kernel\":\"%s\",\"ii\":%d,\"util\":%.17g,\"dvfs\":%.17g,\"power\":%.17g,\"thpt\":%.17g,\"energy\":%.17g,\"edp\":%.17g}"
      common (escape m.Outcome.kernel) m.Outcome.ii m.Outcome.utilization m.Outcome.dvfs
      m.Outcome.power_mw m.Outcome.throughput_mips m.Outcome.energy_nj m.Outcome.edp
  | Outcome.Failed msg -> Printf.sprintf "{%s,\"s\":\"fail\",\"msg\":\"%s\"}" common (escape msg)
  | Outcome.Timed_out -> Printf.sprintf "{%s,\"s\":\"timeout\"}" common

type field = S of string | F of float

(* Parse one flat object of string/number fields; [None] on any
   malformed input (the loader skips such lines). *)
let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do advance () done
  in
  let expect c = if peek () = Some c then (advance (); true) else false in
  let parse_string () =
    if not (expect '"') then None
    else begin
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> None
        | Some '"' -> advance (); Some (Buffer.contents b)
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'u' when !pos + 4 < n ->
            (match int_of_string_opt ("0x" ^ String.sub line (!pos + 1) 4) with
            | Some code when code < 256 ->
              Buffer.add_char b (Char.chr code);
              pos := !pos + 5;
              go ()
            | _ -> None)
          | _ -> None)
        | Some c -> Buffer.add_char b c; advance (); go ()
      in
      go ()
    end
  in
  let parse_number () =
    let start = !pos in
    let numeric c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when numeric c -> true | _ -> false) do advance () done;
    if !pos = start then None
    else float_of_string_opt (String.sub line start (!pos - start))
  in
  skip_ws ();
  if not (expect '{') then None
  else begin
    let rec fields acc =
      skip_ws ();
      match parse_string () with
      | None -> None
      | Some name -> (
        skip_ws ();
        if not (expect ':') then None
        else begin
          skip_ws ();
          let value =
            match peek () with
            | Some '"' -> Option.map (fun s -> S s) (parse_string ())
            | _ -> Option.map (fun f -> F f) (parse_number ())
          in
          match value with
          | None -> None
          | Some v -> (
            let acc = (name, v) :: acc in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields acc
            | Some '}' -> advance (); Some (List.rev acc)
            | _ -> None)
        end)
    in
    fields []
  end

let record_of_fields fields =
  let str name = match List.assoc_opt name fields with Some (S s) -> Some s | _ -> None in
  let num name = match List.assoc_opt name fields with Some (F f) -> Some f | _ -> None in
  match (num "v", str "k", str "s") with
  | Some v, Some key, Some status when int_of_float v = version -> (
    match status with
    | "ok" -> (
      match
        (str "kernel", num "ii", num "util", num "dvfs", num "power", num "thpt",
         num "energy", num "edp")
      with
      | Some kernel, Some ii, Some util, Some dvfs, Some power, Some thpt, Some energy,
        Some edp ->
        Some
          ( key,
            Outcome.Mapped
              {
                Outcome.kernel;
                ii = int_of_float ii;
                utilization = util;
                dvfs;
                power_mw = power;
                throughput_mips = thpt;
                energy_nj = energy;
                edp;
              } )
      | _ -> None)
    | "fail" -> Option.map (fun msg -> (key, Outcome.Failed msg)) (str "msg")
    | "timeout" -> Some (key, Outcome.Timed_out)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* store                                                               *)

let header = Printf.sprintf "{\"iced_explore_cache\":%d}" version

let in_memory () =
  { table = Hashtbl.create 64; file = None; path = None; hits = 0; misses = 0 }

let load_lines path table =
  let ic = open_in path in
  let ok = ref false in
  (match input_line ic with
  | first when first = header ->
    ok := true;
    (try
       while true do
         let line = input_line ic in
         match Option.bind (parse_line line) record_of_fields with
         | Some (key, record) -> Hashtbl.replace table key record
         | None -> ()
       done
     with End_of_file -> ())
  | _ -> ()
  | exception End_of_file -> ());
  close_in ic;
  !ok

let open_file path =
  let table = Hashtbl.create 64 in
  let compatible = if Sys.file_exists path then load_lines path table else false in
  let file =
    if compatible then open_out_gen [ Open_append; Open_creat ] 0o644 path
    else begin
      (* absent, foreign, or older-version file: start a fresh store *)
      Hashtbl.reset table;
      let oc = open_out path in
      output_string oc (header ^ "\n");
      flush oc;
      oc
    end
  in
  { table; file = Some file; path = Some path; hits = 0; misses = 0 }

let close t = match t.file with Some oc -> close_out oc | None -> ()

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some r ->
    t.hits <- t.hits + 1;
    Some r
  | None ->
    t.misses <- t.misses + 1;
    None

let store t ~key status =
  match status with
  | Outcome.Timed_out -> ()
  | _ ->
    Hashtbl.replace t.table key status;
    (match t.file with
    | Some oc ->
      output_string oc (record_to_line key status ^ "\n");
      flush oc
    | None -> ())

let size t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let path t = t.path
