type record = Outcome.status

(* One mutex guards the whole store: the in-memory tier, the hit/miss
   accounting, and the append channel of the persistent tier.  The
   condition variable serves [find_or_store]: a domain that finds its
   key in flight on another domain parks here until the evaluator
   broadcasts. *)
type t = {
  table : (string, record) Hashtbl.t;
  in_flight : (string, unit) Hashtbl.t;
  mu : Mutex.t;
  changed : Condition.t;
  file : out_channel option;
  path : string option;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
}

let version = 1

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
    Mutex.unlock t.mu;
    v
  | exception e ->
    Mutex.unlock t.mu;
    raise e

(* ------------------------------------------------------------------ *)
(* keys                                                                *)

let key (p : Space.point) (kernel : Iced_kernels.Kernel.t) =
  let nodes, edges, rec_mii =
    Iced_kernels.Kernel.stats (Iced_kernels.Kernel.dfg_at kernel ~factor:p.Space.unroll)
  in
  Printf.sprintf "%s|%s|%d,%d,%d" (Space.to_string p) kernel.Iced_kernels.Kernel.name
    nodes edges rec_mii

let content_hash s = Iced_util.Fnv.(to_hex (hash_string s))

(* ------------------------------------------------------------------ *)
(* the flat-JSON subset the store emits                                *)

let escape = Iced_util.Json.escape

let record_to_line key (r : record) =
  let common = Printf.sprintf "\"v\":%d,\"h\":\"%s\",\"k\":\"%s\"" version (content_hash key) (escape key) in
  match r with
  | Outcome.Mapped m ->
    Printf.sprintf
      "{%s,\"s\":\"ok\",\"kernel\":\"%s\",\"ii\":%d,\"util\":%.17g,\"dvfs\":%.17g,\"power\":%.17g,\"thpt\":%.17g,\"energy\":%.17g,\"edp\":%.17g}"
      common (escape m.Outcome.kernel) m.Outcome.ii m.Outcome.utilization m.Outcome.dvfs
      m.Outcome.power_mw m.Outcome.throughput_mips m.Outcome.energy_nj m.Outcome.edp
  | Outcome.Failed msg -> Printf.sprintf "{%s,\"s\":\"fail\",\"msg\":\"%s\"}" common (escape msg)
  | Outcome.Timed_out -> Printf.sprintf "{%s,\"s\":\"timeout\"}" common

(* Decode one stored line back to a (key, record); [None] on any
   malformed input (the loader skips such lines, e.g. a truncated
   final line after a crash, so a damaged store degrades to misses). *)
let record_of_line line =
  let module J = Iced_util.Json in
  match J.parse line with
  | Error _ -> None
  | Ok v -> (
    let str name = Option.bind (J.member name v) J.get_string in
    let num name = Option.bind (J.member name v) J.get_number in
    let int name = Option.bind (J.member name v) J.get_int in
    match (int "v", str "k", str "s") with
    | Some v, Some key, Some status when v = version -> (
      match status with
      | "ok" -> (
        match
          (str "kernel", int "ii", num "util", num "dvfs", num "power", num "thpt",
           num "energy", num "edp")
        with
        | Some kernel, Some ii, Some util, Some dvfs, Some power, Some thpt,
          Some energy, Some edp ->
          Some
            ( key,
              Outcome.Mapped
                {
                  Outcome.kernel;
                  ii;
                  utilization = util;
                  dvfs;
                  power_mw = power;
                  throughput_mips = thpt;
                  energy_nj = energy;
                  edp;
                } )
        | _ -> None)
      | "fail" -> Option.map (fun msg -> (key, Outcome.Failed msg)) (str "msg")
      | "timeout" -> Some (key, Outcome.Timed_out)
      | _ -> None)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* store                                                               *)

let header = Printf.sprintf "{\"iced_explore_cache\":%d}" version

let make ~file ~path table =
  {
    table;
    in_flight = Hashtbl.create 8;
    mu = Mutex.create ();
    changed = Condition.create ();
    file;
    path;
    hits = 0;
    misses = 0;
    coalesced = 0;
  }

let in_memory () = make ~file:None ~path:None (Hashtbl.create 64)

let load_lines path table =
  let ic = open_in path in
  let ok = ref false in
  (match input_line ic with
  | first when first = header ->
    ok := true;
    (try
       while true do
         let line = input_line ic in
         match record_of_line line with
         | Some (key, record) -> Hashtbl.replace table key record
         | None -> ()
       done
     with End_of_file -> ())
  | _ -> ()
  | exception End_of_file -> ());
  close_in ic;
  !ok

let open_file path =
  let table = Hashtbl.create 64 in
  let compatible = if Sys.file_exists path then load_lines path table else false in
  let file =
    if compatible then open_out_gen [ Open_append; Open_creat ] 0o644 path
    else begin
      (* absent, foreign, or older-version file: start a fresh store *)
      Hashtbl.reset table;
      let oc = open_out path in
      output_string oc (header ^ "\n");
      flush oc;
      oc
    end
  in
  make ~file:(Some file) ~path:(Some path) table

let close t = locked t (fun () -> match t.file with Some oc -> close_out oc | None -> ())

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some r ->
        t.hits <- t.hits + 1;
        Some r
      | None ->
        t.misses <- t.misses + 1;
        None)

(* caller holds [t.mu] *)
let store_locked t ~key status =
  match status with
  | Outcome.Timed_out -> ()
  | _ ->
    Hashtbl.replace t.table key status;
    (match t.file with
    | Some oc ->
      output_string oc (record_to_line key status ^ "\n");
      flush oc
    | None -> ())

let store t ~key status = locked t (fun () -> store_locked t ~key status)

let find_or_store t ~key evaluate =
  Mutex.lock t.mu;
  let rec resolve () =
    match Hashtbl.find_opt t.table key with
    | Some r ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.mu;
      r
    | None ->
      if Hashtbl.mem t.in_flight key then begin
        (* another domain is evaluating this key right now: park until
           it stores (or gives up), then re-check — one evaluation
           serves every coalesced caller *)
        t.coalesced <- t.coalesced + 1;
        Condition.wait t.changed t.mu;
        resolve ()
      end
      else begin
        Hashtbl.replace t.in_flight key ();
        t.misses <- t.misses + 1;
        Mutex.unlock t.mu;
        let finish () =
          Hashtbl.remove t.in_flight key;
          Condition.broadcast t.changed
        in
        match evaluate () with
        | r ->
          Mutex.lock t.mu;
          store_locked t ~key r;
          finish ();
          Mutex.unlock t.mu;
          r
        | exception e ->
          Mutex.lock t.mu;
          finish ();
          Mutex.unlock t.mu;
          raise e
      end
  in
  resolve ()

let size t = locked t (fun () -> Hashtbl.length t.table)
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let coalesced t = locked t (fun () -> t.coalesced)
let path t = t.path
