type record = Outcome.status

type recovery = {
  kept_records : int;  (* intact frames replayed from the prefix *)
  dropped_bytes : int;  (* bytes cut (or set aside) past the valid prefix *)
  renamed_bak : bool;  (* the whole file was foreign/old and moved to .bak *)
}

(* One mutex guards the whole store: the in-memory tier, the hit/miss
   accounting, and the append channel of the persistent tier.  The
   condition variable serves [find_or_store]: a domain that finds its
   key in flight on another domain parks here until the evaluator
   broadcasts. *)
type t = {
  table : (string, record) Hashtbl.t;
  in_flight : (string, unit) Hashtbl.t;
  mu : Mutex.t;
  changed : Condition.t;
  file : out_channel option;
  path : string option;
  fsync : bool;
  recovery : recovery option;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
}

let version = 2

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
    Mutex.unlock t.mu;
    v
  | exception e ->
    Mutex.unlock t.mu;
    raise e

(* ------------------------------------------------------------------ *)
(* keys                                                                *)

let key ?(backend = "default") (p : Space.point) (kernel : Iced_kernels.Kernel.t) =
  let nodes, edges, rec_mii =
    Iced_kernels.Kernel.stats (Iced_kernels.Kernel.dfg_at kernel ~factor:p.Space.unroll)
  in
  let base =
    Printf.sprintf "%s|%s|%d,%d,%d" (Space.to_string p) kernel.Iced_kernels.Kernel.name
      nodes edges rec_mii
  in
  (* the default backend's keys stay byte-identical to every store
     written before backends existed; only non-default runs fork *)
  if backend = "default" then base else base ^ "|" ^ backend

let content_hash s = Iced_util.Fnv.(to_hex (hash_string s))

(* ------------------------------------------------------------------ *)
(* the flat-JSON subset the store emits                                *)

let escape = Iced_util.Json.escape

let record_to_line key (r : record) =
  let common = Printf.sprintf "\"v\":%d,\"h\":\"%s\",\"k\":\"%s\"" version (content_hash key) (escape key) in
  match r with
  | Outcome.Mapped m ->
    Printf.sprintf
      "{%s,\"s\":\"ok\",\"kernel\":\"%s\",\"ii\":%d,\"util\":%.17g,\"dvfs\":%.17g,\"power\":%.17g,\"thpt\":%.17g,\"energy\":%.17g,\"edp\":%.17g}"
      common (escape m.Outcome.kernel) m.Outcome.ii m.Outcome.utilization m.Outcome.dvfs
      m.Outcome.power_mw m.Outcome.throughput_mips m.Outcome.energy_nj m.Outcome.edp
  | Outcome.Failed msg -> Printf.sprintf "{%s,\"s\":\"fail\",\"msg\":\"%s\"}" common (escape msg)
  | Outcome.Timed_out -> Printf.sprintf "{%s,\"s\":\"timeout\"}" common

(* Decode one stored payload back to a (key, record); [None] on any
   malformed input.  A checksummed frame whose payload fails here was
   written intentionally but by an unknown future writer — the loader
   skips the entry and keeps scanning (the frame itself is intact). *)
let record_of_line line =
  let module J = Iced_util.Json in
  match J.parse line with
  | Error _ -> None
  | Ok v -> (
    let str name = Option.bind (J.member name v) J.get_string in
    let num name = Option.bind (J.member name v) J.get_number in
    let int name = Option.bind (J.member name v) J.get_int in
    match (int "v", str "k", str "s") with
    | Some v, Some key, Some status when v = version -> (
      match status with
      | "ok" -> (
        match
          (str "kernel", int "ii", num "util", num "dvfs", num "power", num "thpt",
           num "energy", num "edp")
        with
        | Some kernel, Some ii, Some util, Some dvfs, Some power, Some thpt,
          Some energy, Some edp ->
          Some
            ( key,
              Outcome.Mapped
                {
                  Outcome.kernel;
                  ii;
                  utilization = util;
                  dvfs;
                  power_mw = power;
                  throughput_mips = thpt;
                  energy_nj = energy;
                  edp;
                } )
        | _ -> None)
      | "fail" -> Option.map (fun msg -> (key, Outcome.Failed msg)) (str "msg")
      | "timeout" -> Some (key, Outcome.Timed_out)
      | _ -> None)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* the write-ahead framing                                             *)
(*                                                                     *)
(* Each appended record is wrapped                                     *)
(*                                                                     *)
(*   LLLLLLLL:HHHHHHHHHHHHHHHH:<payload>\n                             *)
(*                                                                     *)
(* where L is the payload byte length (8 hex digits) and H the FNV-1a  *)
(* of the payload (16 hex digits).  A crash — including kill -9 — can  *)
(* only tear the record being appended: the torn tail fails the        *)
(* length, newline, or checksum check, the loader truncates there, and *)
(* every frame before it is replayed intact.                           *)

let header = Printf.sprintf "{\"iced_explore_cache\":%d}" version
let header_line = header ^ "\n"

let frame payload =
  Printf.sprintf "%08x:%s:%s\n" (String.length payload) (content_hash payload) payload

let frame_record ~key status = frame (record_to_line key status)

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let hex_span s off len =
  let ok = ref true in
  for i = off to off + len - 1 do
    if not (is_hex s.[i]) then ok := false
  done;
  !ok

(* Scan the region after the header for intact frames.  Returns the
   (payload offset, payload length) of each, in order, and the byte
   offset where scanning stopped — the end of the valid prefix. *)
let scan_frames s start =
  let len = String.length s in
  let rec go off acc =
    if off = len then (List.rev acc, off)
    else if off + 26 > len then (List.rev acc, off)
    else if s.[off + 8] <> ':' || s.[off + 25] <> ':' then (List.rev acc, off)
    else if not (hex_span s off 8 && hex_span s (off + 9) 16) then (List.rev acc, off)
    else
      let plen = int_of_string ("0x" ^ String.sub s off 8) in
      let payload_off = off + 26 in
      if payload_off + plen + 1 > len then (List.rev acc, off)
      else if s.[payload_off + plen] <> '\n' then (List.rev acc, off)
      else
        let payload = String.sub s payload_off plen in
        if content_hash payload <> String.sub s (off + 9) 16 then (List.rev acc, off)
        else go (payload_off + plen + 1) ((payload_off, plen) :: acc)
  in
  go start []

let wal_entries s =
  let hlen = String.length header_line in
  if String.length s < hlen || String.sub s 0 hlen <> header_line then []
  else fst (scan_frames s hlen)

(* ------------------------------------------------------------------ *)
(* store                                                               *)

let make ?recovery ~fsync ~file ~path table =
  {
    table;
    in_flight = Hashtbl.create 8;
    mu = Mutex.create ();
    changed = Condition.create ();
    file;
    path;
    fsync;
    recovery;
    hits = 0;
    misses = 0;
    coalesced = 0;
  }

let in_memory () = make ~fsync:false ~file:None ~path:None (Hashtbl.create 64)

let sync oc = Unix.fsync (Unix.descr_of_out_channel oc)

let read_all path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let fresh_file ~fsync path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  output_string oc header_line;
  flush oc;
  if fsync then sync oc;
  oc

let open_file ?(fsync = false) path =
  let table = Hashtbl.create 64 in
  let recovery = ref None in
  let file =
    if not (Sys.file_exists path) then fresh_file ~fsync path
    else begin
      let s = read_all path in
      let total = String.length s in
      let hlen = String.length header_line in
      if total = 0 then fresh_file ~fsync path
      else if total < hlen || String.sub s 0 hlen <> header_line then begin
        (* foreign or older-version store: preserve it, then restart *)
        recovery := Some { kept_records = 0; dropped_bytes = total; renamed_bak = true };
        (try Sys.rename path (path ^ ".bak") with Sys_error _ -> ());
        fresh_file ~fsync path
      end
      else begin
        let frames, valid_end = scan_frames s hlen in
        List.iter
          (fun (off, len) ->
            match record_of_line (String.sub s off len) with
            | Some (key, record) -> Hashtbl.replace table key record
            | None -> ())
          frames;
        if valid_end < total then begin
          recovery :=
            Some
              {
                kept_records = List.length frames;
                dropped_bytes = total - valid_end;
                renamed_bak = false;
              };
          Unix.truncate path valid_end
        end;
        open_out_gen [ Open_wronly; Open_append ] 0o644 path
      end
    end
  in
  (match !recovery with
  | None -> ()
  | Some r ->
    Iced_obs.Metrics.incr "cache.recoveries";
    Iced_obs.Metrics.incr ~by:r.dropped_bytes "cache.recovered_bytes_dropped";
    Printf.eprintf
      "[cache] recovered %s: kept %d record%s, %s %d trailing byte%s\n%!" path
      r.kept_records
      (if r.kept_records = 1 then "" else "s")
      (if r.renamed_bak then "set aside (as .bak)" else "truncated")
      r.dropped_bytes
      (if r.dropped_bytes = 1 then "" else "s"))
  ;
  make ?recovery:!recovery ~fsync ~file:(Some file) ~path:(Some path) table

let close t =
  locked t (fun () ->
      match t.file with
      | Some oc ->
        flush oc;
        if t.fsync then sync oc;
        close_out oc
      | None -> ())

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some r ->
        t.hits <- t.hits + 1;
        Some r
      | None ->
        t.misses <- t.misses + 1;
        None)

(* caller holds [t.mu] *)
let store_locked t ~key status =
  match status with
  | Outcome.Timed_out -> ()
  | _ ->
    Hashtbl.replace t.table key status;
    (match t.file with
    | Some oc ->
      output_string oc (frame_record ~key status);
      flush oc;
      if t.fsync then sync oc
    | None -> ())

let store t ~key status = locked t (fun () -> store_locked t ~key status)

let find_or_store t ~key evaluate =
  Mutex.lock t.mu;
  let rec resolve () =
    match Hashtbl.find_opt t.table key with
    | Some r ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.mu;
      r
    | None ->
      if Hashtbl.mem t.in_flight key then begin
        (* another domain is evaluating this key right now: park until
           it stores (or gives up), then re-check — one evaluation
           serves every coalesced caller *)
        t.coalesced <- t.coalesced + 1;
        Condition.wait t.changed t.mu;
        resolve ()
      end
      else begin
        Hashtbl.replace t.in_flight key ();
        t.misses <- t.misses + 1;
        Mutex.unlock t.mu;
        let finish () =
          Hashtbl.remove t.in_flight key;
          Condition.broadcast t.changed
        in
        match evaluate () with
        | r ->
          Mutex.lock t.mu;
          store_locked t ~key r;
          finish ();
          Mutex.unlock t.mu;
          r
        | exception e ->
          Mutex.lock t.mu;
          finish ();
          Mutex.unlock t.mu;
          raise e
      end
  in
  resolve ()

let size t = locked t (fun () -> Hashtbl.length t.table)
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let coalesced t = locked t (fun () -> t.coalesced)
let path t = t.path
let recovery t = t.recovery
