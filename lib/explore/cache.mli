(** Shared two-tier evaluation cache: results memoized by a content
    hash of (architecture point, kernel identity, mapper knobs), in an
    in-memory table backed by an append-only persistent file.

    The persistent tier is one JSON-lines file: a version header
    followed by one flat JSON object per cached (point, kernel)
    evaluation.  New results are appended and flushed as they arrive,
    so an interrupted sweep resumes where it stopped; a re-run of the
    same space does no fresh mapping at all.  Records from an older
    format version (and unparseable lines, e.g. a truncated final line
    after a crash) are skipped on load, never propagated.

    Every operation is safe to call from any domain: one store is
    shared between the sweep driver's worker pool and the serving
    daemon's worker pool (a mutex guards the table, the statistics, and
    the append channel).  {!find_or_store} additionally coalesces
    concurrent evaluations of one key — the first caller computes,
    every other caller parks and reuses the result — which is the
    daemon's request-deduplication primitive.

    Keys embed everything the result depends on — the canonical point
    id (fabric, island, banks, floor, unroll, II cap), the kernel name,
    and the unrolled DFG's (nodes, edges, RecMII) signature — so a
    kernel edit invalidates its entries.  [Timed_out] statuses are
    never stored: a timeout reflects the run's budget, not the
    design point's content. *)

type t

val version : int
(** Current on-disk format version. *)

val in_memory : unit -> t
(** A cache with no backing file (bench/test/daemon-default use). *)

val open_file : string -> t
(** Open or create a backing file, loading every current-version
    record.  A file with a different header version is truncated and
    rewritten at {!version}. *)

val close : t -> unit
(** Flush and close the backing file (no-op for {!in_memory}). *)

val key : Space.point -> Iced_kernels.Kernel.t -> string
(** Canonical cache key of one (point, kernel) evaluation. *)

val content_hash : string -> string
(** 64-bit FNV-1a of a key, as 16 hex digits — the record's short id. *)

val find : t -> string -> Outcome.status option
(** Lookup by key; counts a hit or a miss. *)

val store : t -> key:string -> Outcome.status -> unit
(** Insert and (when file-backed) append + flush.  [Timed_out] is
    ignored. *)

val find_or_store : t -> key:string -> (unit -> Outcome.status) -> Outcome.status
(** Atomic lookup-or-evaluate.  A present key returns immediately (a
    hit).  An absent key runs [evaluate] on the calling domain and
    stores the result (a miss) — unless another domain is already
    evaluating the same key, in which case the call parks until that
    evaluation lands and returns its result (counted in {!coalesced}
    and, on wake, as a hit).  [evaluate] runs outside the store's lock,
    so long evaluations of distinct keys proceed in parallel.  A
    [Timed_out] result (never stored) and a raised exception both
    release the key; parked callers then retry the evaluation
    themselves. *)

val size : t -> int
val hits : t -> int
val misses : t -> int

val coalesced : t -> int
(** How many {!find_or_store} calls parked behind an in-flight
    evaluation of their key instead of computing or missing. *)

val path : t -> string option
