(** Shared two-tier evaluation cache: results memoized by a content
    hash of (architecture point, kernel identity, mapper knobs), in an
    in-memory table backed by an append-only persistent file.

    The persistent tier is a write-ahead log: a version header line
    followed by one framed record per cached (point, kernel)
    evaluation.  Each record is wrapped as

    {v LLLLLLLL:HHHHHHHHHHHHHHHH:<flat JSON payload>\n v}

    — an 8-hex-digit payload length, a 16-hex-digit FNV-1a checksum of
    the payload, the payload, a newline.  New results are appended and
    flushed as they arrive (and optionally fsynced, see {!open_file}),
    so an interrupted sweep resumes where it stopped; a re-run of the
    same space does no fresh mapping at all.

    {b Crash safety.}  A crash — including [kill -9] mid-append — can
    only tear the record being written.  On the next {!open_file} the
    loader scans the file front to back, replays every intact frame,
    and truncates the file at the first torn or corrupt one, so at
    most the in-flight record is lost and the surviving prefix
    round-trips byte-identically.  A file whose header belongs to a
    different format version (or to some other program entirely) is
    set aside as [<path>.bak] before a fresh store is started, never
    silently destroyed.  Recoveries are reported through {!recovery},
    counted in the [cache.recoveries] metric, and logged to stderr.

    Every operation is safe to call from any domain: one store is
    shared between the sweep driver's worker pool and the serving
    daemon's worker pool (a mutex guards the table, the statistics, and
    the append channel).  {!find_or_store} additionally coalesces
    concurrent evaluations of one key — the first caller computes,
    every other caller parks and reuses the result — which is the
    daemon's request-deduplication primitive.

    Keys embed everything the result depends on — the canonical point
    id (fabric, island, banks, floor, unroll, II cap), the kernel name,
    and the unrolled DFG's (nodes, edges, RecMII) signature — so a
    kernel edit invalidates its entries.  [Timed_out] statuses are
    never stored: a timeout reflects the run's budget, not the
    design point's content. *)

type t

val version : int
(** Current on-disk format version. *)

type recovery = {
  kept_records : int;  (** intact frames replayed from the prefix *)
  dropped_bytes : int;  (** bytes truncated (or set aside) past the valid prefix *)
  renamed_bak : bool;  (** the whole file was foreign/old and moved to [.bak] *)
}
(** What {!open_file} had to repair, when it had to repair anything. *)

val in_memory : unit -> t
(** A cache with no backing file (bench/test/daemon-default use). *)

val open_file : ?fsync:bool -> string -> t
(** Open or create a backing file, replaying every intact
    current-version record (see the crash-safety notes above).  With
    [~fsync:true] every append is pushed to stable storage with
    [fsync(2)] before {!store} returns — survives power loss, costs a
    disk round-trip per record; the default only [flush]es to the OS,
    which survives process death ([kill -9]) but not kernel death. *)

val close : t -> unit
(** Flush and close the backing file (no-op for {!in_memory}). *)

val recovery : t -> recovery option
(** [Some _] when the last {!open_file} found damage and repaired it;
    [None] for a clean open or an {!in_memory} store. *)

val key : ?backend:string -> Space.point -> Iced_kernels.Kernel.t -> string
(** Canonical cache key of one (point, kernel) evaluation.  [backend]
    (canonical {!Iced_mapper.Backend.to_string} name, default
    ["default"]) is appended only when non-default, so pre-existing
    stores keep their keys byte-for-byte. *)

val content_hash : string -> string
(** 64-bit FNV-1a of a key, as 16 hex digits — the record's short id. *)

val frame_record : key:string -> Outcome.status -> string
(** The exact bytes {!store} appends for one record (length prefix,
    checksum, payload, newline).  Exposed so crash tests and the chaos
    harness can compute record boundaries without reimplementing the
    framing. *)

val wal_entries : string -> (int * int) list
(** [(payload offset, payload length)] of every intact frame in a raw
    file image (header included), in file order — the valid prefix a
    recovery scan would keep.  Empty when the header itself is
    missing or foreign. *)

val find : t -> string -> Outcome.status option
(** Lookup by key; counts a hit or a miss. *)

val store : t -> key:string -> Outcome.status -> unit
(** Insert and (when file-backed) append + flush.  [Timed_out] is
    ignored. *)

val find_or_store : t -> key:string -> (unit -> Outcome.status) -> Outcome.status
(** Atomic lookup-or-evaluate.  A present key returns immediately (a
    hit).  An absent key runs [evaluate] on the calling domain and
    stores the result (a miss) — unless another domain is already
    evaluating the same key, in which case the call parks until that
    evaluation lands and returns its result (counted in {!coalesced}
    and, on wake, as a hit).  [evaluate] runs outside the store's lock,
    so long evaluations of distinct keys proceed in parallel.  A
    [Timed_out] result (never stored) and a raised exception both
    release the key; parked callers then retry the evaluation
    themselves. *)

val size : t -> int
val hits : t -> int
val misses : t -> int

val coalesced : t -> int
(** How many {!find_or_store} calls parked behind an in-flight
    evaluation of their key instead of computing or missing. *)

val path : t -> string option
