let map ~workers ?on_item f items =
  let n = Array.length items in
  let notify =
    match on_item with
    | None -> fun _ -> ()
    | Some g ->
      let mutex = Mutex.create () in
      fun i ->
        Mutex.lock mutex;
        Fun.protect ~finally:(fun () -> Mutex.unlock mutex) (fun () -> g i)
  in
  if workers <= 1 || n <= 1 then
    Array.mapi
      (fun i x ->
        let y = f x in
        notify i;
        y)
      items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f items.(i));
          notify i;
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (min workers n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    Array.map
      (function Some r -> r | None -> assert false (* every index was drained *))
      results
  end
