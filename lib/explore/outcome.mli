(** Evaluation results of one design point, and their reduction to the
    objectives the Pareto analysis ranks: throughput, energy per
    iteration, and energy-delay product.

    Time is counted at the base (normal-level) clock: one mapped loop
    iteration takes II base cycles in steady state and covers [unroll]
    source iterations, so throughput is [f_normal * unroll / II] source
    iterations per second.  Energy per source iteration is the mapped
    fabric's average power integrated over that time, and EDP is their
    product — the three axes the paper's energy/performance arguments
    trade. *)

type measurement = {
  kernel : string;
  ii : int;
  utilization : float;
  dvfs : float;
  power_mw : float;
  throughput_mips : float;  (** million source iterations per second *)
  energy_nj : float;  (** nanojoules per source iteration *)
  edp : float;  (** energy_nj * iteration time in us *)
}

type status =
  | Mapped of measurement
  | Failed of string  (** mapper or validator rejected the point *)
  | Timed_out  (** the sweep's per-point budget expired *)

type point_result = {
  point : Space.point;
  per_kernel : (string * status) list;  (** in kernel order *)
}

type summary = {
  point : Space.point;
  mapped : int;  (** kernels that mapped *)
  total : int;
  geo_throughput_mips : float;  (** geomean over mapped kernels; nan if none *)
  mean_energy_nj : float;
  mean_edp : float;
  mean_power_mw : float;
}

val measure :
  params:Iced_power.Params.t -> Iced.Design.evaluation -> measurement
(** Derive the objective metrics from a design-point evaluation. *)

val evaluate_kernel :
  ?cancel:(unit -> bool) ->
  ?backend:Iced_mapper.Backend.t ->
  ?stats:Iced_mapper.Mapper.stats ->
  params:Iced_power.Params.t -> Space.point -> Iced_kernels.Kernel.t -> status
(** Map one kernel on one point ([Iced.Design.Iced] flow on the
    point's fabric, floor, and II cap) and measure it.  [cancel] is the
    sweep's per-point timeout hook: when it fires mid-search the status
    is [Timed_out].  [backend] (default {!Iced_mapper.Backend.default})
    selects the mapper's placement/routing pair; [stats] receives the
    mapper's telemetry. *)

val summarize : point_result -> summary

val status_to_string : status -> string
