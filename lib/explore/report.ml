module Table = Iced_util.Table

let fmt = Table.fmt_float

let summaries outcomes = List.map Outcome.summarize outcomes

let frontier_summaries outcomes =
  let frontier =
    Pareto.frontier ~objectives:Pareto.throughput_energy_edp (summaries outcomes)
  in
  List.sort
    (fun (a : Outcome.summary) (b : Outcome.summary) ->
      compare
        (-.a.geo_throughput_mips, a.mean_energy_nj, Space.to_string a.point)
        (-.b.geo_throughput_mips, b.mean_energy_nj, Space.to_string b.point))
    frontier

let frontier_table ?(title = "Pareto frontier over (throughput, energy, EDP)") outcomes =
  let t =
    Table.create ~title
      ~columns:
        [ "point"; "mapped"; "geo thpt Mi/s"; "mean energy nJ"; "mean EDP nJ*us";
          "mean power mW" ]
  in
  List.iter
    (fun (s : Outcome.summary) ->
      Table.add_row t
        [ Space.to_string s.point;
          Printf.sprintf "%d/%d" s.mapped s.total;
          fmt s.geo_throughput_mips; fmt s.mean_energy_nj; fmt s.mean_edp;
          fmt s.mean_power_mw ])
    (frontier_summaries outcomes);
  t

let best_per_kernel_table ?(title = "best point per kernel (minimum EDP)") outcomes =
  let t =
    Table.create ~title
      ~columns:[ "kernel"; "point"; "II"; "thpt Mi/s"; "energy nJ"; "EDP nJ*us" ]
  in
  let kernel_names =
    match outcomes with
    | [] -> []
    | (r : Outcome.point_result) :: _ -> List.map fst r.per_kernel
  in
  List.iter
    (fun kernel ->
      let best =
        List.fold_left
          (fun acc (r : Outcome.point_result) ->
            match List.assoc_opt kernel r.per_kernel with
            | Some (Outcome.Mapped m) -> (
              match acc with
              | Some (_, best) when best.Outcome.edp <= m.Outcome.edp -> acc
              | _ -> Some (r.point, m))
            | _ -> acc)
          None outcomes
      in
      match best with
      | None -> Table.add_row t [ kernel; "-"; "-"; "-"; "-"; "-" ]
      | Some (point, m) ->
        Table.add_row t
          [ kernel; Space.to_string point; string_of_int m.Outcome.ii;
            fmt m.Outcome.throughput_mips; fmt m.Outcome.energy_nj; fmt m.Outcome.edp ])
    kernel_names;
  t

(* ------------------------------------------------------------------ *)
(* export                                                              *)

let status_cells = function
  | Outcome.Mapped m ->
    ( "ok",
      [ string_of_int m.Outcome.ii;
        Printf.sprintf "%.6g" m.Outcome.utilization;
        Printf.sprintf "%.6g" m.Outcome.dvfs;
        Printf.sprintf "%.6g" m.Outcome.power_mw;
        Printf.sprintf "%.6g" m.Outcome.throughput_mips;
        Printf.sprintf "%.6g" m.Outcome.energy_nj;
        Printf.sprintf "%.6g" m.Outcome.edp ] )
  | Outcome.Failed _ -> ("failed", [ ""; ""; ""; ""; ""; ""; "" ])
  | Outcome.Timed_out -> ("timeout", [ ""; ""; ""; ""; ""; ""; "" ])

let csv outcomes =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "point,kernel,status,ii,utilization,avg_dvfs,power_mw,throughput_mips,energy_nj,edp\n";
  List.iter
    (fun (r : Outcome.point_result) ->
      List.iter
        (fun (kernel, status) ->
          let s, cells = status_cells status in
          Buffer.add_string b
            (String.concat "," (Space.to_string r.point :: kernel :: s :: cells));
          Buffer.add_char b '\n')
        r.per_kernel)
    outcomes;
  Buffer.contents b

let json outcomes =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  let first = ref true in
  List.iter
    (fun (r : Outcome.point_result) ->
      List.iter
        (fun (kernel, status) ->
          if not !first then Buffer.add_string b ",";
          first := false;
          Buffer.add_string b
            (Printf.sprintf "\n  {\"point\":\"%s\",\"kernel\":\"%s\""
               (Space.to_string r.point) kernel);
          (match status with
          | Outcome.Mapped m ->
            Buffer.add_string b
              (Printf.sprintf
                 ",\"status\":\"ok\",\"ii\":%d,\"utilization\":%.6g,\"avg_dvfs\":%.6g,\"power_mw\":%.6g,\"throughput_mips\":%.6g,\"energy_nj\":%.6g,\"edp\":%.6g"
                 m.Outcome.ii m.Outcome.utilization m.Outcome.dvfs m.Outcome.power_mw
                 m.Outcome.throughput_mips m.Outcome.energy_nj m.Outcome.edp)
          | Outcome.Failed _ -> Buffer.add_string b ",\"status\":\"failed\""
          | Outcome.Timed_out -> Buffer.add_string b ",\"status\":\"timeout\"");
          Buffer.add_string b "}")
        r.per_kernel)
    outcomes;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let render outcomes =
  Table.render (frontier_table outcomes)
  ^ "\n\n"
  ^ Table.render (best_per_kernel_table outcomes)
  ^ "\n"
