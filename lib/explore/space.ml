open Iced_arch

type point = {
  rows : int;
  cols : int;
  island_rows : int;
  island_cols : int;
  spm_banks : int;
  floor : Dvfs.level;
  unroll : int;
  max_ii : int;
}

type spec = {
  fabrics : (int * int) list;
  islands : (int * int) list;
  spm_banks : int list;
  floors : Dvfs.level list;
  unrolls : int list;
  max_iis : int list;
}

let tiling_islands n m =
  List.concat_map
    (fun r ->
      if n mod r <> 0 then []
      else List.filter_map (fun c -> if m mod c = 0 then Some (r, c) else None)
             (List.init m (fun i -> i + 1)))
    (List.init n (fun i -> i + 1))

let default_spec =
  {
    fabrics = [ (6, 6) ];
    islands = tiling_islands 6 6;
    spm_banks = [ 8 ];
    floors = Dvfs.active;
    unrolls = [ 1 ];
    max_iis = [ 64 ];
  }

let is_valid p =
  p.rows > 0 && p.cols > 0 && p.island_rows > 0 && p.island_cols > 0
  && p.rows mod p.island_rows = 0
  && p.cols mod p.island_cols = 0
  && p.spm_banks >= 1
  && (p.unroll = 1 || p.unroll = 2)
  && p.max_ii >= 1
  && Dvfs.is_active p.floor

let enumerate spec =
  (* nested right-to-left so the output is lexicographic in
     (fabric, island, banks, floor, unroll, max_ii) *)
  List.concat_map
    (fun (rows, cols) ->
      List.concat_map
        (fun (island_rows, island_cols) ->
          List.concat_map
            (fun spm_banks ->
              List.concat_map
                (fun floor ->
                  List.concat_map
                    (fun unroll ->
                      List.filter_map
                        (fun max_ii ->
                          let p =
                            { rows; cols; island_rows; island_cols; spm_banks;
                              floor; unroll; max_ii }
                          in
                          if is_valid p then Some p else None)
                        spec.max_iis)
                    spec.unrolls)
                spec.floors)
            spec.spm_banks)
        spec.islands)
    spec.fabrics

let sample spec ~seed ~count =
  let all = enumerate spec in
  let n = List.length all in
  if n <= count then all
  else begin
    (* draw [count] distinct indices, then keep canonical order *)
    let rng = Iced_util.Rng.create seed in
    let picked = Iced_util.Rng.shuffle rng (List.init n (fun i -> i)) in
    let keep = List.sort_uniq compare (List.filteri (fun i _ -> i < count) picked) in
    List.filteri (fun i _ -> List.mem i keep) all
  end

let cgra p =
  if not (is_valid p) then invalid_arg "Space.cgra: invalid point";
  Cgra.make ~island:(p.island_rows, p.island_cols) ~spm_banks:p.spm_banks
    ~rows:p.rows ~cols:p.cols ()

let floor_to_string = function
  | Dvfs.Rest -> "rest"
  | Dvfs.Relax -> "relax"
  | Dvfs.Normal -> "normal"
  | Dvfs.Power_gated -> "gated"

let floor_of_string = function
  | "rest" -> Some Dvfs.Rest
  | "relax" -> Some Dvfs.Relax
  | "normal" -> Some Dvfs.Normal
  | _ -> None

let to_string p =
  Printf.sprintf "%dx%d/i%dx%d/b%d/%s/u%d/ii%d" p.rows p.cols p.island_rows
    p.island_cols p.spm_banks (floor_to_string p.floor) p.unroll p.max_ii

let of_string s =
  match String.split_on_char '/' s with
  | [ fabric; island; banks; floor; unroll; max_ii ] -> (
    let dims ?(prefix = "") str =
      let str =
        if prefix <> "" && String.length str > String.length prefix
           && String.sub str 0 (String.length prefix) = prefix
        then String.sub str (String.length prefix) (String.length str - String.length prefix)
        else if prefix = "" then str
        else ""
      in
      match String.split_on_char 'x' str with
      | [ a; b ] -> ( try Some (int_of_string a, int_of_string b) with _ -> None)
      | _ -> None
    in
    let tagged_int tag str =
      if String.length str > String.length tag && String.sub str 0 (String.length tag) = tag
      then
        try Some (int_of_string (String.sub str (String.length tag)
                                   (String.length str - String.length tag)))
        with _ -> None
      else None
    in
    match
      (dims fabric, dims ~prefix:"i" island, tagged_int "b" banks,
       floor_of_string floor, tagged_int "u" unroll, tagged_int "ii" max_ii)
    with
    | Some (rows, cols), Some (island_rows, island_cols), Some spm_banks,
      Some floor, Some unroll, Some max_ii ->
      let p =
        { rows; cols; island_rows; island_cols; spm_banks; floor; unroll; max_ii }
      in
      if is_valid p then Some p else None
    | _ -> None)
  | _ -> None

let pp fmt p = Format.pp_print_string fmt (to_string p)
