(** Sweep analysis and rendering: Pareto-frontier and best-per-kernel
    tables, CSV and JSON export.

    Every function is a pure function of the sweep outcomes, with all
    ordering fixed (frontier sorted fastest-first, then by canonical
    point id), so a report is byte-identical across runs and worker
    counts. *)

val frontier_summaries : Outcome.point_result list -> Outcome.summary list
(** The (throughput, energy, EDP) Pareto frontier, sorted by
    descending geomean throughput, then ascending energy, then
    canonical point id. *)

val frontier_table : ?title:string -> Outcome.point_result list -> Iced_util.Table.t

val best_per_kernel_table :
  ?title:string -> Outcome.point_result list -> Iced_util.Table.t
(** For every kernel, the point minimizing EDP (ties: first in sweep
    order), with its II / throughput / energy. *)

val csv : Outcome.point_result list -> string
(** One row per (point, kernel), header included. *)

val json : Outcome.point_result list -> string
(** A JSON array of per-(point, kernel) objects — the CSV's fields. *)

val render : Outcome.point_result list -> string
(** The full human-readable report: frontier table followed by the
    best-per-kernel table. *)
