(** Declarative design-space specification and deterministic
    enumeration.

    A {!point} is one candidate ICED architecture plus the mapper knobs
    used to evaluate it: fabric dimensions, DVFS-island dimensions, SPM
    banking, the slowest active DVFS level the labeler may use (a
    proxy for the supported level subset: [Normal] alone, down to the
    full [Rest]/[Relax]/[Normal] ladder), the unroll factor, and the
    mapper's II cap.  A {!spec} is the cross product of per-axis
    candidate lists; {!enumerate} filters it down to valid points in a
    fixed canonical order, and {!sample} draws a deterministic subset
    via {!Iced_util.Rng}. *)

open Iced_arch

type point = {
  rows : int;
  cols : int;
  island_rows : int;
  island_cols : int;
  spm_banks : int;
  floor : Dvfs.level;  (** slowest active level Algorithm 1 may label *)
  unroll : int;  (** 1 or 2 *)
  max_ii : int;  (** mapper gives up past this II *)
}

type spec = {
  fabrics : (int * int) list;
  islands : (int * int) list;
  spm_banks : int list;
  floors : Dvfs.level list;
  unrolls : int list;
  max_iis : int list;
}

val default_spec : spec
(** The paper's neighbourhood: 6x6 fabric, every island shape tiling
    it, 8 banks, all three floors, unroll 1, II cap 64. *)

val tiling_islands : int -> int -> (int * int) list
(** [tiling_islands rows cols]: every island shape that tiles a
    [rows] x [cols] fabric exactly — from 1x1 per-tile DVFS to the
    whole-fabric single island — in lexicographic order. *)

val is_valid : point -> bool
(** Island dims must be positive and tile the fabric exactly (divide
    both dimensions), [spm_banks >= 1], [unroll] 1 or 2, [max_ii >= 1],
    and the floor must be an active level. *)

val enumerate : spec -> point list
(** Cross product filtered by {!is_valid}, in a fixed lexicographic
    order — equal specs always enumerate equal lists. *)

val sample : spec -> seed:int -> count:int -> point list
(** Deterministic uniform subsample of [enumerate spec] (the whole
    enumeration when it has at most [count] points), preserving the
    canonical order. *)

val cgra : point -> Cgra.t
(** Build the fabric a point describes.
    @raise Invalid_argument on an invalid point. *)

val to_string : point -> string
(** Canonical compact id, e.g. "6x6/i2x2/b8/rest/u1/ii64" — stable
    across runs, used as the cache-key prefix and in reports. *)

val of_string : string -> point option
(** Inverse of {!to_string}. *)

val pp : Format.formatter -> point -> unit
