type config = {
  workers : int;
  timeout_s : float;
  params : Iced_power.Params.t;
  backend : Iced_mapper.Backend.t;
  progress : bool;
}

let default_config =
  {
    workers = 1;
    timeout_s = infinity;
    params = Iced_power.Params.default;
    backend = Iced_mapper.Backend.default;
    progress = false;
  }

type stats = {
  points : int;
  pairs : int;
  fresh : int;
  cached : int;
  failed : int;
  timed_out : int;
  elapsed_s : float;
}

module Obs = Iced_obs.Trace

let run_untraced ~config ?mapper_stats ~trace ~cache points kernels =
  let t0 = Unix.gettimeofday () in
  (* keys are computed once, up front: they embed the unrolled DFG's
     statistics, which are not free to recompute *)
  let backend_name = Iced_mapper.Backend.to_string config.backend in
  let keyed =
    List.map
      (fun point ->
        ( point,
          List.map
            (fun kernel -> (kernel, Cache.key ~backend:backend_name point kernel))
            kernels ))
      points
  in
  let pairs = List.concat_map (fun (point, ks) -> List.map (fun (k, key) -> (point, k, key)) ks) keyed in
  let results : (string, Outcome.status) Hashtbl.t = Hashtbl.create 64 in
  let scheduled : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let jobs =
    List.filter
      (fun (_, _, key) ->
        if Hashtbl.mem results key || Hashtbl.mem scheduled key then false
        else
          match Cache.find cache key with
          | Some status ->
            Hashtbl.replace results key status;
            false
          | None ->
            Hashtbl.replace scheduled key ();
            true)
      pairs
  in
  let jobs = Array.of_list jobs in
  let cached_pairs = List.length pairs - Array.length jobs in
  Iced_obs.Metrics.incr ~by:cached_pairs "sweep.cache.hits";
  Iced_obs.Metrics.incr ~by:(Array.length jobs) "sweep.cache.misses";
  if trace && Obs.enabled () then
    Obs.counter ~cat:"sweep" ~name:"cache"
      [
        ("hits", float_of_int cached_pairs);
        ("misses", float_of_int (Array.length jobs));
      ];
  let completed = ref 0 in
  let on_item _ =
    incr completed;
    if config.progress then
      Printf.eprintf "\r[explore] evaluated %d/%d fresh (%d cached)%!" !completed
        (Array.length jobs) cached_pairs
  in
  (* One private telemetry record per job: a pool worker only touches
     its own record, and the records are merged on the calling domain
     once the pool has drained — no cross-domain contention. *)
  let job_stats = Array.map (fun _ -> Iced_mapper.Mapper.create_stats ()) jobs in
  (* [trace] rides into the worker closure as a plain bool: DLS-based
     suppression does not inherit across domains, so each worker
     decides locally.  Traced evaluations get a ["sweep"]/["point"]
     span whose tid is the worker's domain id. *)
  let evaluate (i, (point, kernel, _key)) =
    let body () =
      let started = Unix.gettimeofday () in
      let cancel () = Unix.gettimeofday () -. started > config.timeout_s in
      Outcome.evaluate_kernel ~cancel ~backend:config.backend ~stats:job_stats.(i)
        ~params:config.params point kernel
    in
    if not trace then Obs.suppress body
    else if not (Obs.enabled ()) then body ()
    else
      Obs.with_span
        ~args:
          [
            ("point", Obs.Str (Space.to_string point));
            ("kernel", Obs.Str kernel.Iced_kernels.Kernel.name);
          ]
        ~cat:"sweep" ~name:"point"
        (fun () ->
          let r = body () in
          (match r with
          | Outcome.Mapped m -> Obs.span_arg "ii" (Obs.Int m.Outcome.ii)
          | Outcome.Failed msg -> Obs.span_arg "error" (Obs.Str msg)
          | Outcome.Timed_out -> Obs.span_arg "timeout" (Obs.Bool true));
          r)
  in
  let fresh =
    Pool.map ~workers:config.workers ~on_item evaluate
      (Array.mapi (fun i job -> (i, job)) jobs)
  in
  if config.progress && Array.length jobs > 0 then prerr_newline ();
  (match mapper_stats with
  | None -> ()
  | Some sink ->
    Array.iter (fun s -> Iced_mapper.Mapper.merge_stats ~into:sink s) job_stats);
  Array.iteri
    (fun i (_, _, key) ->
      Cache.store cache ~key fresh.(i);
      Hashtbl.replace results key fresh.(i))
    jobs;
  let outcomes =
    List.map
      (fun (point, ks) ->
        {
          Outcome.point;
          per_kernel =
            List.map
              (fun ((kernel : Iced_kernels.Kernel.t), key) ->
                (kernel.name, Hashtbl.find results key))
              ks;
        })
      keyed
  in
  let count pred =
    List.fold_left
      (fun acc (r : Outcome.point_result) ->
        acc + List.length (List.filter (fun (_, s) -> pred s) r.Outcome.per_kernel))
      0 outcomes
  in
  let stats =
    {
      points = List.length points;
      pairs = List.length pairs;
      fresh = Array.length jobs;
      cached = cached_pairs;
      failed = count (function Outcome.Failed _ -> true | _ -> false);
      timed_out = count (function Outcome.Timed_out -> true | _ -> false);
      elapsed_s = Unix.gettimeofday () -. t0;
    }
  in
  (outcomes, stats)

let run ?(config = default_config) ?mapper_stats ?(trace = true) ~cache points kernels =
  let body () = run_untraced ~config ?mapper_stats ~trace ~cache points kernels in
  if not trace then Obs.suppress body
  else if not (Obs.enabled ()) then body ()
  else
    Obs.with_span
      ~args:
        [
          ("points", Obs.Int (List.length points));
          ("kernels", Obs.Int (List.length kernels));
          ("workers", Obs.Int config.workers);
        ]
      ~cat:"sweep" ~name:"run"
      (fun () ->
        let ((_, stats) as r) = body () in
        Obs.span_arg "fresh" (Obs.Int stats.fresh);
        Obs.span_arg "cached" (Obs.Int stats.cached);
        r)

let pp_stats fmt s =
  Format.fprintf fmt
    "%d points x kernels = %d pairs: %d fresh, %d cached, %d failed, %d timed out in %.2fs"
    s.points s.pairs s.fresh s.cached s.failed s.timed_out s.elapsed_s
