(** Pareto-frontier extraction over arbitrary objective vectors.

    Objectives follow a maximize convention: negate a metric to
    minimize it.  A candidate whose objective vector contains [nan]
    (e.g. a design point where no kernel mapped) neither dominates nor
    joins the frontier. *)

val dominates : objectives:('a -> float list) -> 'a -> 'a -> bool
(** [dominates ~objectives a b]: [a] is at least as good as [b] on
    every objective and strictly better on at least one. *)

val frontier : objectives:('a -> float list) -> 'a list -> 'a list
(** Candidates not dominated by any other, in input order.  Duplicate
    objective vectors all survive (none strictly dominates the other),
    so frontier membership is deterministic. *)

val throughput_energy : Outcome.summary -> float list
(** Maximize geomean throughput, minimize mean energy — the paper's
    headline energy/performance trade. *)

val throughput_energy_edp : Outcome.summary -> float list
(** The three-axis variant, adding minimized mean EDP. *)
