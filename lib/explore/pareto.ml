let well_defined objs = List.for_all (fun v -> not (Float.is_nan v)) objs

let dominates ~objectives a b =
  let oa = objectives a and ob = objectives b in
  well_defined oa && well_defined ob
  && List.length oa = List.length ob
  && List.for_all2 (fun x y -> x >= y) oa ob
  && List.exists2 (fun x y -> x > y) oa ob

let frontier ~objectives candidates =
  List.filter
    (fun c ->
      well_defined (objectives c)
      && not (List.exists (fun other -> dominates ~objectives other c) candidates))
    candidates

let throughput_energy (s : Outcome.summary) =
  [ s.Outcome.geo_throughput_mips; -.s.Outcome.mean_energy_nj ]

let throughput_energy_edp (s : Outcome.summary) =
  [ s.Outcome.geo_throughput_mips; -.s.Outcome.mean_energy_nj; -.s.Outcome.mean_edp ]
