(** The sweep driver: evaluate a list of design points over a list of
    kernels, in parallel, through the persistent cache.

    One task is one (point, kernel) mapping.  Cache lookups happen up
    front on the calling domain; only misses reach the {!Pool}, and
    fresh results are written back (in task order, on the calling
    domain) once the pool drains — the cache file layout is therefore
    deterministic too.  Each task races a wall-clock deadline of
    [timeout_s] seconds polled by the mapper between II attempts, so a
    pathological point is recorded as [Timed_out] and the sweep moves
    on.  Timeouts are the one nondeterministic outcome (they depend on
    machine speed); leave [timeout_s] infinite when byte-identical
    reports matter more than a bounded worst case. *)

type config = {
  workers : int;  (** evaluation domains; 1 = serial *)
  timeout_s : float;  (** per-(point, kernel) budget; [infinity] = none *)
  params : Iced_power.Params.t;
  backend : Iced_mapper.Backend.t;
      (** placement/routing backend for every evaluation; part of the
          cache key, so different backends never share entries *)
  progress : bool;  (** live "evaluated k/n" line on stderr *)
}

val default_config : config
(** 1 worker, no timeout, default power params, default backend, no
    progress. *)

type stats = {
  points : int;
  pairs : int;  (** points x kernels *)
  fresh : int;  (** evaluated this run *)
  cached : int;  (** served from the cache *)
  failed : int;  (** pairs the mapper rejected *)
  timed_out : int;
  elapsed_s : float;
}

val run :
  ?config:config ->
  ?mapper_stats:Iced_mapper.Mapper.stats ->
  ?trace:bool ->
  cache:Cache.t ->
  Space.point list ->
  Iced_kernels.Kernel.t list ->
  Outcome.point_result list * stats
(** Results come back in input point order, each with kernels in input
    kernel order, regardless of [workers].  [mapper_stats] aggregates
    the mapper telemetry of every fresh evaluation (cache hits run no
    mapper and contribute nothing); workers fill private records that
    are merged after the pool drains, so the sink needs no locking.

    When the {!Iced_obs.Trace} collector is on, the sweep emits a
    ["sweep"]/["run"] span, one ["sweep"]/["point"] span per fresh
    evaluation (recorded on the evaluating worker's domain, so its
    [tid] is the domain id), and a ["sweep"]/["cache"] counter sample
    with the hit/miss split.  [trace:false] silences all of it — on
    the calling domain and on every worker — and the results are
    byte-identical either way (pinned by the determinism test). *)

val pp_stats : Format.formatter -> stats -> unit
