module Design = Iced.Design

type measurement = {
  kernel : string;
  ii : int;
  utilization : float;
  dvfs : float;
  power_mw : float;
  throughput_mips : float;
  energy_nj : float;
  edp : float;
}

type status = Mapped of measurement | Failed of string | Timed_out

type point_result = {
  point : Space.point;
  per_kernel : (string * status) list;
}

type summary = {
  point : Space.point;
  mapped : int;
  total : int;
  geo_throughput_mips : float;
  mean_energy_nj : float;
  mean_edp : float;
  mean_power_mw : float;
}

let measure ~params (e : Design.evaluation) =
  let f_mhz = params.Iced_power.Params.f_normal_mhz in
  (* normalize per *source* loop iteration so unroll factors compare
     fairly: one mapped iteration of an unroll-u kernel covers u
     source iterations *)
  let iter_us = float_of_int e.Design.ii /. f_mhz /. float_of_int e.Design.unroll in
  let energy_nj = e.Design.power_mw *. iter_us in
  {
    kernel = e.Design.kernel;
    ii = e.Design.ii;
    utilization = e.Design.avg_utilization;
    dvfs = e.Design.avg_dvfs;
    power_mw = e.Design.power_mw;
    throughput_mips = f_mhz *. float_of_int e.Design.unroll /. float_of_int e.Design.ii;
    energy_nj;
    edp = energy_nj *. iter_us;
  }

let deadline_marker = "deadline exceeded"

let is_deadline_error msg =
  let n = String.length deadline_marker in
  let rec scan i =
    i + n <= String.length msg
    && (String.sub msg i n = deadline_marker || scan (i + 1))
  in
  scan 0

let evaluate_kernel ?(cancel = fun () -> false) ?(backend = Iced_mapper.Backend.default)
    ?stats ~params (p : Space.point) kernel =
  match
    Design.evaluate ~cgra:(Space.cgra p) ~params ~unroll:p.Space.unroll
      ~label_floor:p.Space.floor ~max_ii:p.Space.max_ii ~cancel ~backend ?stats
      Design.Iced kernel
  with
  | Ok e -> Mapped (measure ~params e)
  | Error msg -> if is_deadline_error msg then Timed_out else Failed msg
  | exception Invalid_argument msg -> Failed msg

let summarize (r : point_result) =
  let measurements =
    List.filter_map (function _, Mapped m -> Some m | _ -> None) r.per_kernel
  in
  let stat f = match measurements with
    | [] -> nan
    | ms -> Iced_util.Stats.mean (List.map f ms)
  in
  {
    point = r.point;
    mapped = List.length measurements;
    total = List.length r.per_kernel;
    geo_throughput_mips =
      (match measurements with
      | [] -> nan
      | ms -> Iced_util.Stats.geomean (List.map (fun m -> m.throughput_mips) ms));
    mean_energy_nj = stat (fun m -> m.energy_nj);
    mean_edp = stat (fun m -> m.edp);
    mean_power_mw = stat (fun m -> m.power_mw);
  }

let status_to_string = function
  | Mapped m -> Printf.sprintf "ok(ii=%d)" m.ii
  | Failed msg -> "failed: " ^ msg
  | Timed_out -> "timeout"
