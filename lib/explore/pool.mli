(** Fixed-size domain pool mapping a function over an array.

    Workers are OCaml 5 [Domain]s pulling indices from one shared
    atomic counter — a task queue that self-balances like work
    stealing: a worker stuck on an expensive point does not delay the
    others, which keep draining the queue.  Results land in their
    input slot, so the output order (and everything downstream: Pareto
    analysis, reports, CSV) is independent of the worker count and of
    scheduling — a parallel sweep is byte-identical to a serial one.

    [f] must not raise (wrap fallible work in a [result]-shaped return
    value); it runs concurrently on up to [workers] domains, so it must
    not mutate shared state. *)

val map : workers:int -> ?on_item:(int -> unit) -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~workers f items] with [workers <= 1] (or fewer than two
    items) runs serially on the calling domain.  [on_item i] is called
    under a mutex right after item [i] completes — the sweep's
    progress hook. *)
