module Json = Iced_util.Json

(* Log2 bucket exponents: 2^-16 (~15 us if samples are seconds) up to
   2^47.  64 buckets total; out-of-range samples clamp to the ends. *)
let min_exp = -16
let max_exp = 47
let n_buckets = max_exp - min_exp + 1

type histogram = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let mu = Mutex.create ()
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

let reset () =
  locked (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset gauges;
      Hashtbl.reset histograms)

let incr ?(by = 1) name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c := !c + by
      | None -> Hashtbl.replace counters name (ref by))

let gauge name v =
  locked (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g := v
      | None -> Hashtbl.replace gauges name (ref v))

let bucket_of v =
  if v <= 0.0 || Float.is_nan v then 0
  else
    let e = int_of_float (Float.ceil (Float.log2 v)) in
    let e = if e < min_exp then min_exp else if e > max_exp then max_exp else e in
    e - min_exp

let observe name v =
  locked (fun () ->
      let h =
        match Hashtbl.find_opt histograms name with
        | Some h -> h
        | None ->
          let h =
            {
              buckets = Array.make n_buckets 0;
              count = 0;
              sum = 0.0;
              min_v = Float.infinity;
              max_v = Float.neg_infinity;
            }
          in
          Hashtbl.replace histograms name h;
          h
      in
      let b = bucket_of v in
      h.buckets.(b) <- h.buckets.(b) + 1;
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v)

let histogram_names ?(prefix = "") () =
  locked (fun () ->
      Hashtbl.fold
        (fun k _ acc ->
          if String.starts_with ~prefix k then k :: acc else acc)
        histograms []
      |> List.sort compare)

let counter_value name =
  locked (fun () -> Option.map (fun c -> !c) (Hashtbl.find_opt counters name))

let gauge_value name =
  locked (fun () -> Option.map (fun g -> !g) (Hashtbl.find_opt gauges name))

let histogram_stats name =
  locked (fun () ->
      Option.map
        (fun h -> (h.count, h.sum, h.min_v, h.max_v))
        (Hashtbl.find_opt histograms name))

let quantile name q =
  locked (fun () ->
      match Hashtbl.find_opt histograms name with
      | None -> None
      | Some h when h.count = 0 -> None
      | Some h ->
        let q = Float.min 1.0 (Float.max 0.0 q) in
        (* rank of the q-quantile sample, 1-based *)
        let rank =
          max 1 (int_of_float (Float.ceil (q *. float_of_int h.count)))
        in
        let rec walk i seen =
          if i >= n_buckets then h.max_v
          else
            let seen = seen + h.buckets.(i) in
            if seen >= rank then
              (* the bucket's upper edge, clamped to the observed range *)
              Float.min h.max_v (Float.max h.min_v (Float.pow 2.0 (float_of_int (i + min_exp))))
            else walk (i + 1) seen
        in
        Some (walk 0 0))

(* ------------------------------------------------------------------ *)
(* export                                                              *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let bucket_label i = Printf.sprintf "<=2^%d" (i + min_exp)

let histogram_json h =
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i n -> if n = 0 then None else Some (Printf.sprintf "%s:%d" (Json.quote (bucket_label i)) n))
         h.buckets)
    |> List.filter_map Fun.id
  in
  Printf.sprintf "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"buckets\":{%s}}" h.count
    (Json.number h.sum) (Json.number h.min_v) (Json.number h.max_v)
    (String.concat "," buckets)

let to_json () =
  locked (fun () ->
      let counters =
        sorted_bindings counters
        |> List.map (fun (k, c) -> Printf.sprintf "%s:%d" (Json.quote k) !c)
      in
      let gauges =
        sorted_bindings gauges
        |> List.map (fun (k, g) -> Printf.sprintf "%s:%s" (Json.quote k) (Json.number !g))
      in
      let histograms =
        sorted_bindings histograms
        |> List.map (fun (k, h) -> Printf.sprintf "%s:%s" (Json.quote k) (histogram_json h))
      in
      Printf.sprintf
        "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}\n"
        (String.concat "," counters)
        (String.concat "," gauges)
        (String.concat "," histograms))

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv () =
  locked (fun () ->
      let b = Buffer.create 256 in
      Buffer.add_string b "kind,name,field,value\n";
      List.iter
        (fun (k, c) -> Buffer.add_string b (Printf.sprintf "counter,%s,value,%d\n" (csv_escape k) !c))
        (sorted_bindings counters);
      List.iter
        (fun (k, g) ->
          Buffer.add_string b (Printf.sprintf "gauge,%s,value,%s\n" (csv_escape k) (Json.number !g)))
        (sorted_bindings gauges);
      List.iter
        (fun (k, h) ->
          let row field v =
            Buffer.add_string b (Printf.sprintf "histogram,%s,%s,%s\n" (csv_escape k) field v)
          in
          row "count" (string_of_int h.count);
          row "sum" (Json.number h.sum);
          row "min" (Json.number h.min_v);
          row "max" (Json.number h.max_v))
        (sorted_bindings histograms);
      Buffer.contents b)
