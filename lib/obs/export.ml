module Json = Iced_util.Json

let pid = 1

let value_json = function
  | Trace.Int i -> string_of_int i
  | Trace.Float f -> Json.number f
  | Trace.Bool b -> if b then "true" else "false"
  | Trace.Str s -> Json.quote s

let args_json args =
  match args with
  | [] -> ""
  | _ ->
    Printf.sprintf ",\"args\":{%s}"
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (Json.quote k) (value_json v)) args))

let event_json ~ph ?(extra = "") (e : Trace.event) =
  Printf.sprintf "{\"name\":%s,\"cat\":%s,\"ph\":\"%s\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d%s%s}"
    (Json.quote e.Trace.name)
    (Json.quote e.Trace.cat)
    ph e.Trace.ts_us pid e.Trace.tid extra (args_json e.Trace.args)

(* Balance the stream per tid: drop End events whose Begin was lost to
   a ring overwrite, and close still-open Begins with synthesized Ends
   at the tid's last timestamp, so consumers always see matched B/E
   pairs on every track. *)
let balanced events =
  let stacks : (int, Trace.event list ref) Hashtbl.t = Hashtbl.create 8 in
  let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.replace stacks tid s;
      s
  in
  let kept = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      Hashtbl.replace last_ts e.Trace.tid e.Trace.ts_us;
      match e.Trace.phase with
      | Trace.Begin ->
        let s = stack e.Trace.tid in
        s := e :: !s;
        kept := e :: !kept
      | Trace.End -> (
        let s = stack e.Trace.tid in
        match !s with
        | [] -> () (* orphan End: its Begin was overwritten *)
        | b :: rest ->
          s := rest;
          (* close with the Begin's identity so the pair matches even
             when the End's own slot lost its labels *)
          kept := { e with cat = b.Trace.cat; name = b.Trace.name } :: !kept)
      | Trace.Instant | Trace.Counter -> kept := e :: !kept)
    events;
  let synthesized =
    Hashtbl.fold
      (fun tid s acc ->
        let ts = match Hashtbl.find_opt last_ts tid with Some t -> t | None -> 0.0 in
        List.fold_left
          (fun acc (b : Trace.event) ->
            { b with phase = Trace.End; ts_us = ts; args = [] } :: acc)
          acc !s)
      stacks []
  in
  (* input order, synthesized Ends appended at the tail *)
  List.rev !kept @ synthesized

let trace_json events =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun (e : Trace.event) ->
      if not !first then Buffer.add_string b ",";
      first := false;
      Buffer.add_string b "\n  ";
      Buffer.add_string b
        (match e.Trace.phase with
        | Trace.Begin -> event_json ~ph:"B" e
        | Trace.End -> event_json ~ph:"E" e
        | Trace.Instant -> event_json ~ph:"i" ~extra:",\"s\":\"t\"" e
        | Trace.Counter -> event_json ~ph:"C" e))
    (balanced events);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* flame summary                                                       *)

type node = {
  mutable total_us : float;
  mutable count : int;
  children : (string, node) Hashtbl.t;
  mutable order : string list; (* child keys, first-seen order *)
}

let make_node () = { total_us = 0.0; count = 0; children = Hashtbl.create 4; order = [] }

let child parent key =
  match Hashtbl.find_opt parent.children key with
  | Some n -> n
  | None ->
    let n = make_node () in
    Hashtbl.replace parent.children key n;
    parent.order <- key :: parent.order;
    n

let flame_summary events =
  let root = make_node () in
  let stacks : (int, (node * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.replace stacks tid s;
      s
  in
  let last_ts = ref 0.0 in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.ts_us > !last_ts then last_ts := e.Trace.ts_us;
      match e.Trace.phase with
      | Trace.Begin ->
        let s = stack e.Trace.tid in
        let parent = match !s with (n, _) :: _ -> n | [] -> root in
        let key = e.Trace.cat ^ ":" ^ e.Trace.name in
        s := (child parent key, e.Trace.ts_us) :: !s
      | Trace.End -> (
        let s = stack e.Trace.tid in
        match !s with
        | [] -> ()
        | (n, t0) :: rest ->
          s := rest;
          n.total_us <- n.total_us +. (e.Trace.ts_us -. t0);
          n.count <- n.count + 1)
      | Trace.Instant | Trace.Counter -> ())
    events;
  (* close anything still open at the stream's last timestamp *)
  Hashtbl.iter
    (fun _ s ->
      List.iter
        (fun (n, t0) ->
          n.total_us <- n.total_us +. (!last_ts -. t0);
          n.count <- n.count + 1)
        !s)
    stacks;
  let b = Buffer.create 1024 in
  Buffer.add_string b "span path                                          count   total ms    self ms\n";
  let rec render depth key n =
    let children =
      List.rev_map (fun k -> (k, Hashtbl.find n.children k)) n.order
      |> List.sort (fun (_, a) (_, c) -> compare c.total_us a.total_us)
    in
    let child_total = List.fold_left (fun acc (_, c) -> acc +. c.total_us) 0.0 children in
    let self = Float.max 0.0 (n.total_us -. child_total) in
    if depth >= 0 then begin
      let label = String.make (2 * depth) ' ' ^ key in
      let label =
        if String.length label > 48 then String.sub label 0 48 else label
      in
      Buffer.add_string b
        (Printf.sprintf "%-48s %7d %10.3f %10.3f\n" label n.count (n.total_us /. 1e3)
           (self /. 1e3))
    end;
    List.iter (fun (k, c) -> render (depth + 1) k c) children
  in
  render (-1) "" root;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* files and sessions                                                  *)

let write_file ~path doc =
  let oc = open_out path in
  output_string oc doc;
  close_out oc

let capture ?out ?flame_out ?metrics_out f =
  Trace.start ();
  Metrics.reset ();
  let finish () =
    Trace.stop ();
    let evs = Trace.events () in
    (match out with Some p -> write_file ~path:p (trace_json evs) | None -> ());
    (match flame_out with Some p -> write_file ~path:p (flame_summary evs) | None -> ());
    match metrics_out with
    | Some p -> write_file ~path:p (Metrics.to_json ())
    | None -> ()
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e
