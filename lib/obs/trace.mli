(** Span-based structured tracing for the whole toolchain.

    One global collector, off by default, records {e events} — span
    begins/ends, instants, and counter samples — into per-domain
    preallocated ring buffers stamped with a monotonic clock.  The
    instrumented layers (mapper search and routing, the streaming
    runner and DVFS controller, explore sweeps, fault campaigns) emit
    through this module; {!Export} turns the merged event stream into
    Chrome/Perfetto trace-event JSON or a flame summary.

    {2 Cost discipline}

    When the collector is disabled (the default), every entry point
    reduces to one atomic load plus one domain-local read and returns
    immediately: instrumentation in hot paths is free to stay compiled
    in.  Call sites that would {e allocate} to build span arguments
    must still guard themselves with {!enabled} so the argument list is
    never constructed on the disabled path.

    {2 Concurrency}

    Recording is safe from any number of domains concurrently: each
    domain writes only its own buffer (created on its first event and
    registered with the collector).  The control surface —
    {!start}, {!stop}, {!clear}, {!events} — is {e not} concurrent with
    recording: call it from a single domain while no traced work runs.

    {2 Determinism}

    Tracing observes, never steers: no instrumented component reads the
    collector's state to make a decision, so any computation runs
    byte-identically with tracing on or off (pinned by the golden
    mapper corpus and the sweep determinism test). *)

type value =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string  (** span/instant argument payloads *)

type phase =
  | Begin  (** span opened ([ph:"B"]) *)
  | End  (** span closed ([ph:"E"]) *)
  | Instant  (** point event ([ph:"i"]) *)
  | Counter  (** counter sample ([ph:"C"]) *)

type event = {
  phase : phase;
  cat : string;  (** category (see [docs/OBSERVABILITY.md] for the taxonomy) *)
  name : string;
  ts_us : float;  (** microseconds since {!start}, non-decreasing per [tid] *)
  tid : int;  (** recording domain's id *)
  seq : int;  (** per-domain record order (tie-break for equal [ts_us]) *)
  args : (string * value) list;
}

val enabled : unit -> bool
(** Whether events are being recorded on this domain right now: the
    collector is on and the domain is not inside {!suppress}. *)

val start : unit -> unit
(** Reset all buffers, re-zero the clock, and enable recording. *)

val stop : unit -> unit
(** Disable recording; buffered events stay readable via {!events}. *)

val clear : unit -> unit
(** Drop all buffered events (and forget buffers of finished domains). *)

val set_capacity : int -> unit
(** Per-domain ring capacity in events (default [2^18]).  Applies to
    buffers created after the call; existing buffers keep their size.
    When a ring is full the oldest events are overwritten — exports
    re-balance the survivors — and {!dropped} counts the loss. *)

val dropped : unit -> int
(** Events lost to ring overwrites since the last {!start}/{!clear}. *)

val with_span : ?args:(string * value) list -> cat:string -> name:string -> (unit -> 'a) -> 'a
(** [with_span ~cat ~name f] runs [f] inside a span: a [Begin] event
    before, an [End] event after (also on exception).  Spans nest —
    the innermost open span is the target of {!span_arg}.  Disabled:
    exactly [f ()]. *)

val span_arg : string -> value -> unit
(** Attach one argument to this domain's innermost open span (e.g. a
    result computed mid-span: the II a search settled on, a window's
    bottleneck kernel).  No open span, or tracing disabled: no-op. *)

val instant : ?args:(string * value) list -> cat:string -> name:string -> unit -> unit
(** Record a point event (a fault activation, an II bump, a level move). *)

val counter : cat:string -> name:string -> (string * float) list -> unit
(** Record a counter sample: named series values at the current time
    (rendered as stacked counter tracks by Perfetto). *)

val suppress : (unit -> 'a) -> 'a
(** Run [f] with recording suppressed on this domain (nested spans and
    instants inside [f] vanish), regardless of the collector being on.
    This is what the [?trace:false] knobs on [Design.evaluate],
    [Runner.run]/[run_resilient], and [Sweep.run] use to silence one
    call inside an otherwise-traced program. *)

val events : unit -> event list
(** Merge every domain's buffer into one stream ordered by
    [(ts_us, tid, seq)].  Call only while no traced work is running. *)
