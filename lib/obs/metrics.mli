(** Process-wide metrics registry: counters, gauges, and log-scaled
    histograms, keyed by name.

    Unlike {!Trace} — a time-ordered event stream — metrics are {e
    aggregates}: one cell per name, updated from any domain, exported
    as a snapshot.  Instruments are created on first use ([incr] on an
    unknown counter creates it), so call sites need no setup.

    Updates are cheap (a mutex-guarded table lookup plus an atomic
    bump) but not free; keep them at cool points — per window, per
    sweep point, per route call — not in inner loops.

    Like tracing, metrics observe and never steer: nothing reads the
    registry to make a decision, so recording cannot perturb results. *)

val reset : unit -> unit
(** Drop every instrument.  [Export.capture] calls this on entry so a
    session's export reflects only that session. *)

(** {2 Instruments} *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to the counter named [name], creating it at
    zero first if needed.  Counters only go up. *)

val gauge : string -> float -> unit
(** Set the gauge named [name] to a value (last write wins). *)

val observe : string -> float -> unit
(** Record one sample into the histogram named [name].  Buckets are
    log2-scaled: sample [v] lands in bucket [ceil(log2 v)] clamped to
    a fixed range, so nanoseconds and minutes coexist in 64 buckets.
    Negative and zero samples land in the lowest bucket. *)

(** {2 Reading} *)

val counter_value : string -> int option
(** Current value of a counter, [None] if it was never incremented. *)

val gauge_value : string -> float option
(** Current value of a gauge, [None] if it was never set. *)

val histogram_names : ?prefix:string -> unit -> string list
(** Names of every histogram observed so far, sorted, optionally
    filtered to those starting with [prefix] — how the serving
    daemon's [stats] reply enumerates its per-tenant latency series
    without maintaining a second tenant registry. *)

val histogram_stats : string -> (int * float * float * float) option
(** [(count, sum, min, max)] of a histogram's samples, [None] if no
    sample was ever observed. *)

val quantile : string -> float -> float option
(** Estimated [q]-quantile ([q] clamped to [0, 1]) of the histogram
    named [name]: the upper edge of the log2 bucket holding the
    [ceil (q * count)]-th sample, clamped to the observed min/max —
    so the estimate is within one power of two of the true value.
    The serving daemon's [stats] reply reads its p50/p99 from here.
    [None] if no sample was ever observed. *)

(** {2 Export} *)

val to_json : unit -> string
(** The whole registry as one JSON object with [counters], [gauges],
    and [histograms] members, names sorted, each histogram rendered as
    [{count, sum, min, max, buckets: {"<=2^k": n, ...}}] (only
    non-empty buckets appear).  Deterministic given the same updates. *)

val to_csv : unit -> string
(** The registry flattened to [kind,name,field,value] CSV rows, names
    sorted — convenient for spreadsheets and quick joins across runs. *)
