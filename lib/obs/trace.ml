type value = Int of int | Float of float | Bool of bool | Str of string

type phase = Begin | End | Instant | Counter

type event = {
  phase : phase;
  cat : string;
  name : string;
  ts_us : float;
  tid : int;
  seq : int;
  args : (string * value) list;
}

(* ------------------------------------------------------------------ *)
(* per-domain ring buffer                                              *)

(* Flat parallel arrays, preallocated when the domain records its first
   event.  [pushed] counts every record ever made; slot (seq mod
   capacity) holds record [seq], so once [pushed > capacity] the oldest
   records have been overwritten (exports re-balance; [dropped] counts
   the loss).  Only the owning domain writes; the control surface reads
   after recording has quiesced. *)
type buffer = {
  tid : int;
  capacity : int;
  ev_phase : int array; (* 0=B 1=E 2=I 3=C *)
  ev_ts : float array;
  ev_cat : string array;
  ev_name : string array;
  ev_args : (string * value) list array;
  mutable pushed : int;
  mutable open_spans : int list; (* seq of open Begin events, innermost first *)
  mutable last_ts : float; (* per-domain monotonicity clamp *)
  mutable registered : bool;
}

let on = Atomic.make false
let epoch = Atomic.make 0.0
let default_capacity = Atomic.make (1 lsl 18)

let registry : buffer list ref = ref []
let registry_mu = Mutex.create ()

let suppress_key = Domain.DLS.new_key (fun () -> ref false)
let buffer_key : buffer option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let enabled () = Atomic.get on && not !(Domain.DLS.get suppress_key)

let reset_buffer b =
  b.pushed <- 0;
  b.open_spans <- [];
  b.last_ts <- 0.0

let make_buffer () =
  let capacity = max 16 (Atomic.get default_capacity) in
  {
    tid = (Domain.self () :> int);
    capacity;
    ev_phase = Array.make capacity 0;
    ev_ts = Array.make capacity 0.0;
    ev_cat = Array.make capacity "";
    ev_name = Array.make capacity "";
    ev_args = Array.make capacity [];
    pushed = 0;
    open_spans = [];
    last_ts = 0.0;
    registered = false;
  }

(* The domain's buffer, created and registered lazily.  After {!clear}
   un-registers a live domain's buffer, the next event re-registers it
   (reset), so a long-lived domain survives collector resets. *)
let my_buffer () =
  let cell = Domain.DLS.get buffer_key in
  let b =
    match !cell with
    | Some b -> b
    | None ->
      let b = make_buffer () in
      cell := Some b;
      b
  in
  if not b.registered then begin
    reset_buffer b;
    Mutex.lock registry_mu;
    registry := b :: !registry;
    b.registered <- true;
    Mutex.unlock registry_mu
  end;
  b

(* Monotonic-enough clock: wall time re-zeroed at {!start}, clamped so
   timestamps never step backwards within a domain (NTP slew, clock
   granularity).  Microseconds, the trace-event unit. *)
let now_us b =
  let t = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6 in
  let t = if t < b.last_ts then b.last_ts else t in
  b.last_ts <- t;
  t

let push b phase ~cat ~name args =
  let seq = b.pushed in
  let slot = seq mod b.capacity in
  b.ev_phase.(slot) <- phase;
  b.ev_ts.(slot) <- now_us b;
  b.ev_cat.(slot) <- cat;
  b.ev_name.(slot) <- name;
  b.ev_args.(slot) <- args;
  b.pushed <- seq + 1;
  seq

(* ------------------------------------------------------------------ *)
(* control                                                             *)

let clear () =
  Mutex.lock registry_mu;
  List.iter
    (fun b ->
      reset_buffer b;
      b.registered <- false)
    !registry;
  registry := [];
  Mutex.unlock registry_mu

let start () =
  clear ();
  Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set on true

let stop () = Atomic.set on false

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity: non-positive capacity";
  Atomic.set default_capacity n

let dropped () =
  Mutex.lock registry_mu;
  let n =
    List.fold_left (fun acc b -> acc + max 0 (b.pushed - b.capacity)) 0 !registry
  in
  Mutex.unlock registry_mu;
  n

(* ------------------------------------------------------------------ *)
(* recording                                                           *)

let begin_span ?(args = []) ~cat ~name () =
  let b = my_buffer () in
  let seq = push b 0 ~cat ~name args in
  b.open_spans <- seq :: b.open_spans

(* End events are recorded whenever a span is open — even if the
   collector was switched off mid-span — so recorded Begins stay
   balanced. *)
let end_span () =
  match !(Domain.DLS.get buffer_key) with
  | None -> ()
  | Some b -> (
    match b.open_spans with
    | [] -> ()
    | seq :: rest ->
      b.open_spans <- rest;
      let slot = seq mod b.capacity in
      (* close with the Begin's cat/name if its slot survived *)
      let cat, name =
        if b.pushed - seq <= b.capacity then (b.ev_cat.(slot), b.ev_name.(slot))
        else ("", "")
      in
      ignore (push b 1 ~cat ~name []))

let with_span ?args ~cat ~name f =
  if not (enabled ()) then f ()
  else begin
    begin_span ?args ~cat ~name ();
    match f () with
    | v ->
      end_span ();
      v
    | exception e ->
      end_span ();
      raise e
  end

let span_arg key v =
  if enabled () then begin
    match !(Domain.DLS.get buffer_key) with
    | None -> ()
    | Some b -> (
      match b.open_spans with
      | [] -> ()
      | seq :: _ ->
        (* skip if the Begin's slot has been overwritten by ring wrap *)
        if b.pushed - seq <= b.capacity then begin
          let slot = seq mod b.capacity in
          b.ev_args.(slot) <- b.ev_args.(slot) @ [ (key, v) ]
        end)
  end

let instant ?(args = []) ~cat ~name () =
  if enabled () then ignore (push (my_buffer ()) 2 ~cat ~name args)

let counter ~cat ~name series =
  if enabled () then
    ignore
      (push (my_buffer ()) 3 ~cat ~name
         (List.map (fun (k, v) -> (k, Float v)) series))

let suppress f =
  let cell = Domain.DLS.get suppress_key in
  let saved = !cell in
  cell := true;
  match f () with
  | v ->
    cell := saved;
    v
  | exception e ->
    cell := saved;
    raise e

(* ------------------------------------------------------------------ *)
(* export                                                              *)

let phase_of_int = function 0 -> Begin | 1 -> End | 2 -> Instant | _ -> Counter

let buffer_events b =
  let first = max 0 (b.pushed - b.capacity) in
  let n = b.pushed - first in
  List.init n (fun k ->
      let seq = first + k in
      let slot = seq mod b.capacity in
      {
        phase = phase_of_int b.ev_phase.(slot);
        cat = b.ev_cat.(slot);
        name = b.ev_name.(slot);
        ts_us = b.ev_ts.(slot);
        tid = b.tid;
        seq;
        args = b.ev_args.(slot);
      })

let events () =
  Mutex.lock registry_mu;
  let buffers = !registry in
  Mutex.unlock registry_mu;
  List.concat_map buffer_events buffers
  |> List.sort (fun a b -> compare (a.ts_us, a.tid, a.seq) (b.ts_us, b.tid, b.seq))
