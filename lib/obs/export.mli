(** Exporters for the {!Trace} event stream.

    Two renderings: the Chrome/Perfetto trace-event JSON format (open
    the file in {{:https://ui.perfetto.dev}ui.perfetto.dev} or
    [chrome://tracing]) and a plain-text flame summary (aggregate time
    per span path).  Both are pure functions of an event list, so they
    can run long after {!Trace.stop}. *)

val trace_json : Trace.event list -> string
(** The event stream as a complete trace-event JSON document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}].

    The emitted stream is always well-formed even when the ring buffer
    overwrote events: per [tid], [End] events with no surviving [Begin]
    are dropped and still-open [Begin]s are closed by synthesized
    [End]s at the tail, so every ["B"] has a matching ["E"] with the
    same [pid]/[tid], and timestamps are non-decreasing per track.  All
    events carry [pid] {!pid}. *)

val pid : int
(** The fixed process id stamped on every exported event (the toolchain
    is one process; domains are the [tid]s). *)

val flame_summary : Trace.event list -> string
(** Aggregate wall time by span call path, one line per path, indented
    by depth, children sorted by total time: a poor man's flame graph
    for terminals.  Instants and counters are ignored. *)

val write_file : path:string -> string -> unit
(** Write a rendered document to [path] (truncating). *)

val capture :
  ?out:string ->
  ?flame_out:string ->
  ?metrics_out:string ->
  (unit -> 'a) ->
  'a
(** [capture ~out f] runs [f] with tracing and metrics enabled, then
    writes the trace-event JSON to [out], the flame summary to
    [flame_out] (when given), and the {!Metrics} registry JSON to
    [metrics_out] (when given), and disables the collector again.
    Files are written even when [f] raises (the exception is
    re-raised).  This is the engine behind [iced trace]. *)
