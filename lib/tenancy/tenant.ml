module Pipeline = Iced_stream.Pipeline
module Registry = Iced_kernels.Registry
module Rng = Iced_util.Rng

type t = {
  id : string;
  qos : Qos.class_;
  pipeline : Pipeline.t;
  inputs : Pipeline.input list;
}

let make ~id ~qos pipeline inputs =
  if id = "" then invalid_arg "Tenant.make: empty id";
  if inputs = [] then invalid_arg "Tenant.make: empty input stream";
  { id; qos; pipeline; inputs }

(* Kernels small enough to map on a one-island (2x2) strip, so a
   synthetic mix stays feasible even when eight tenants share twelve
   islands. *)
let default_kernels =
  [ "fir"; "mvt"; "relu"; "spmv"; "dtw"; "latnrm"; "histogram"; "fft" ]

let kernel_pipeline ~id name =
  match Registry.by_name name with
  | None -> invalid_arg ("Tenant: unknown kernel " ^ name)
  | Some kernel ->
    {
      Pipeline.name = id;
      stages =
        [
          [
            {
              Pipeline.label = name;
              kernel;
              iterations = (fun input -> Pipeline.feature input "work");
            };
          ];
        ];
    }

let synthetic_inputs rng ~count ~lo ~hi =
  List.init count (fun id ->
      { Pipeline.id; features = [ ("work", Rng.int_in rng lo hi) ] })

let qos_cycle = [ Qos.Premium; Qos.Standard; Qos.Batch ]

let synthetic_mix ?(kernels = default_kernels) ?(inputs = 60) ~seed ~count () =
  if count <= 0 then invalid_arg "Tenant.synthetic_mix: non-positive count";
  if inputs <= 0 then invalid_arg "Tenant.synthetic_mix: non-positive inputs";
  if kernels = [] then invalid_arg "Tenant.synthetic_mix: empty kernel list";
  let rng = Rng.create seed in
  List.init count (fun i ->
      (* one split per tenant: a tenant's stream is independent of how
         many tenants follow it *)
      let sub = Rng.split rng in
      let name = List.nth kernels (i mod List.length kernels) in
      let qos = List.nth qos_cycle (i mod List.length qos_cycle) in
      let id = Printf.sprintf "t%d-%s" i name in
      (* phase-shifted work ranges make the bottleneck — and with it
         each controller's desired levels — drift differently per
         tenant, which is what gives the allocator real contention *)
      let lo = 8 + (8 * (i mod 4)) in
      let hi = lo + 24 + Rng.int sub 16 in
      {
        id;
        qos;
        pipeline = kernel_pipeline ~id name;
        inputs = synthetic_inputs sub ~count:inputs ~lo ~hi;
      })
