(** A fabric tenant: an independent pipeline, its input stream, and a
    {!Qos} class.

    Tenants are what the {!Scheduler} places on islands and what the
    {!Allocator} arbitrates between.  {!synthetic_mix} builds the
    seeded workloads the cap-sweep bench and the tests share:
    single-kernel pipelines over Table I kernels with phase-shifted,
    data-dependent iteration counts, so different tenants desire
    different DVFS levels at different times. *)

type t = {
  id : string;  (** unique within a fleet *)
  qos : Qos.class_;
  pipeline : Iced_stream.Pipeline.t;
  inputs : Iced_stream.Pipeline.input list;
}

val make :
  id:string -> qos:Qos.class_ -> Iced_stream.Pipeline.t ->
  Iced_stream.Pipeline.input list -> t
(** Build a tenant.  @raise Invalid_argument on an empty id or an empty
    input stream. *)

val default_kernels : string list
(** Table I kernels small enough to map on a single 2x2 island, so a
    dense mix stays feasible. *)

val synthetic_mix :
  ?kernels:string list -> ?inputs:int -> seed:int -> count:int -> unit -> t list
(** [synthetic_mix ~seed ~count ()] builds [count] tenants, cycling
    kernels from [kernels] (default {!default_kernels}) and QoS classes
    premium/standard/batch, each with [inputs] (default 60) seeded
    inputs whose work factors are drawn from per-tenant phase-shifted
    ranges.  Equal seeds give equal fleets; a tenant's stream does not
    depend on [count].
    @raise Invalid_argument on a non-positive [count] or [inputs], or
    an empty [kernels]. *)
