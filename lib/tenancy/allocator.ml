module Dvfs = Iced_arch.Dvfs
module Cgra = Iced_arch.Cgra
module Model = Iced_power.Model
module Params = Iced_power.Params
module Obs = Iced_obs.Trace

type policy = Fair_share | Weighted_qos | Strict_priority

let all_policies = [ Fair_share; Weighted_qos; Strict_priority ]

let policy_to_string = function
  | Fair_share -> "fair-share"
  | Weighted_qos -> "weighted-qos"
  | Strict_priority -> "strict-priority"

let policy_of_string = function
  | "fair-share" | "fair" -> Some Fair_share
  | "weighted-qos" | "qos" -> Some Weighted_qos
  | "strict-priority" | "priority" -> Some Strict_priority
  | _ -> None

type member = {
  id : string;
  weight : float;
  priority : int;
  mutable kernel_tiles : (string * int) list;
}

let member ~id ~qos kernel_tiles =
  { id; weight = Qos.weight qos; priority = Qos.priority qos; kernel_tiles }

type decision = {
  round : int;
  desired_mw : float;
  granted_mw : float;
  demotions : int;
  throttled : string list;
  infeasible : bool;
}

type t = {
  cap_mw : float option;
  policy : policy;
  params : Params.t;
  fabric : Cgra.t;
  mutable members : member list;
  mutable decisions : decision list;  (* reversed *)
}

let create ?cap_mw ?(params = Params.default) ~policy ~fabric members =
  (match cap_mw with
  | Some c when c <= 0.0 -> invalid_arg "Allocator.create: non-positive cap"
  | _ -> ());
  let rec dup = function
    | [] -> None
    | m :: rest -> if List.exists (fun n -> n.id = m.id) rest then Some m.id else dup rest
  in
  (match dup members with
  | Some id -> invalid_arg ("Allocator.create: duplicate member " ^ id)
  | None -> ());
  { cap_mw; policy; params; fabric; members; decisions = [] }

let cap_mw t = t.cap_mw
let policy t = t.policy
let decisions t = List.rev t.decisions

let update_tiles t ~id kernel_tiles =
  match List.find_opt (fun m -> m.id = id) t.members with
  | Some m -> m.kernel_tiles <- kernel_tiles
  | None -> invalid_arg ("Allocator.update_tiles: unknown member " ^ id)

let member_of t id = List.find_opt (fun m -> m.id = id) t.members

(* ------------------------------------------------------------------ *)
(* the power envelope *)

let tiles_envelope_mw params level tiles =
  float_of_int tiles
  *. Model.tile_power_mw params { Model.level; activity = 1.0 }

let member_envelope_mw t m levels =
  List.fold_left
    (fun acc (label, tiles) ->
      let level =
        match List.assoc_opt label levels with
        | Some l -> l
        | None -> Dvfs.Normal
      in
      acc +. tiles_envelope_mw t.params level tiles)
    0.0 m.kernel_tiles

let shared_envelope_mw t =
  Model.sram_power_mw t.params ~activity:1.0
  +. Model.overhead_power_mw t.params Model.Iced t.fabric

let envelope_mw t assignment =
  List.fold_left
    (fun acc (id, levels) ->
      match member_of t id with
      | None -> acc
      | Some m -> acc +. member_envelope_mw t m levels)
    (shared_envelope_mw t) assignment

let max_envelope_mw t =
  envelope_mw t
    (List.map
       (fun m ->
         (m.id, List.map (fun (label, _) -> (label, Dvfs.Normal)) m.kernel_tiles))
       t.members)

let floor_envelope_mw t =
  envelope_mw t
    (List.map
       (fun m ->
         (m.id, List.map (fun (label, _) -> (label, Dvfs.Rest)) m.kernel_tiles))
       t.members)

(* ------------------------------------------------------------------ *)
(* arbitration *)

(* Pick the member to demote next.  All scores are pure functions of
   allocator state, and every tie breaks on the id string, so a
   decision sequence is reproducible run-to-run and across worker
   counts. *)
let pick_victim t candidates =
  let score (m, levels) =
    match t.policy with
    | Fair_share -> member_envelope_mw t m levels
    | Weighted_qos -> member_envelope_mw t m levels /. Float.max 1e-9 m.weight
    | Strict_priority -> float_of_int (-m.priority)
  in
  match candidates with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun ((bm, bs) : member * float) ((m, _) as c) ->
          let s = score c in
          if s > bs || (s = bs && m.id < bm.id) then (m, s) else (bm, bs))
        (fst first, score first)
        rest
    in
    Some (fst best)

(* Within the victim, demote the kernel whose envelope share is
   largest among those still above [Rest] (first in kernel order on
   ties): the cheapest single step that buys the most headroom. *)
let demote_one t m levels =
  let pick =
    List.fold_left
      (fun best (label, level) ->
        if not (Dvfs.faster level Dvfs.Rest) then best
        else
          let tiles =
            match List.assoc_opt label m.kernel_tiles with
            | Some n -> n
            | None -> 0
          in
          let cost = tiles_envelope_mw t.params level tiles in
          match best with
          | Some (_, bcost) when bcost >= cost -> best
          | _ -> Some (label, cost))
      None levels
  in
  match pick with
  | None -> None
  | Some (label, _) ->
    Some
      (List.map
         (fun (l, lv) ->
           if l = label then (l, Dvfs.step_down ~floor:Dvfs.Rest lv) else (l, lv))
         levels)

let arbitrate t ~round desired =
  let granted = ref desired in
  let desired_mw = envelope_mw t desired in
  let demotions = ref 0 in
  let infeasible = ref false in
  (match t.cap_mw with
  | None -> ()
  | Some cap ->
    let rec settle () =
      if envelope_mw t !granted > cap then begin
        let candidates =
          List.filter_map
            (fun (id, levels) ->
              match member_of t id with
              | None -> None
              | Some m ->
                if List.exists (fun (_, l) -> Dvfs.faster l Dvfs.Rest) levels
                then Some (m, levels)
                else None)
            !granted
        in
        match pick_victim t candidates with
        | None ->
          (* cap exhaustion: everyone is already at the Rest floor;
             grant the floor and flag the round (see the runbook in
             docs/MULTITENANT.md) *)
          infeasible := true
        | Some victim -> (
          let levels = List.assoc victim.id !granted in
          match demote_one t victim levels with
          | None -> infeasible := true
          | Some levels' ->
            granted :=
              List.map
                (fun (id, ls) -> if id = victim.id then (id, levels') else (id, ls))
                !granted;
            incr demotions;
            settle ())
      end
    in
    settle ());
  let granted = !granted in
  let granted_mw = envelope_mw t granted in
  let throttled =
    List.filter_map
      (fun (id, ls) ->
        match List.assoc_opt id desired with
        | Some d when d <> ls -> Some id
        | _ -> None)
      granted
  in
  let d =
    {
      round;
      desired_mw;
      granted_mw;
      demotions = !demotions;
      throttled;
      infeasible = !infeasible;
    }
  in
  t.decisions <- d :: t.decisions;
  if !demotions > 0 then Iced_obs.Metrics.incr "tenancy.throttled_rounds";
  if Obs.enabled () then
    Obs.instant
      ~args:
        [
          ("round", Obs.Int round);
          ("desired_mw", Obs.Float desired_mw);
          ("granted_mw", Obs.Float granted_mw);
          ("demotions", Obs.Int !demotions);
          ("infeasible", Obs.Str (string_of_bool !infeasible));
        ]
      ~cat:"tenancy" ~name:"grant" ();
  granted
