(** Cap-sweep driver: aggregate throughput vs. power cap vs. fairness,
    Pareto-annotated, over a shared {!Scheduler.plan}.

    Caps are expressed as fractions of the plan's all-[Normal]
    envelope ({!Scheduler.max_envelope_mw}), so the same sweep
    specification scales across fleet sizes.  Cells run on
    {!Iced_explore.Pool} workers; a plan is immutable and every cell
    builds its own allocator and runner state, so a sweep is
    byte-identical across worker counts and reruns. *)

type row = {
  fraction : float;  (** cap as a fraction of the max envelope *)
  cap_mw : float;  (** the absolute cap handed to the allocator *)
  policy : Allocator.policy;
  tenants : int;
  throughput_per_s : float;  (** fleet aggregate *)
  fairness : float;  (** Jain index over tenant throughputs *)
  peak_power_mw : float;  (** max measured fabric power over all rounds *)
  cap_ok : bool;  (** every feasible round held power [<=] cap *)
  throttled_rounds : int;  (** rounds where someone was demoted *)
  infeasible_rounds : int;  (** cap-exhaustion rounds *)
  starved : string list;  (** tenants that failed to finish (must be []) *)
  evictions : int;
  pareto : bool;
      (** on the (throughput, fairness, -cap) maximization frontier *)
}

type sweep = {
  tenants : int;
  max_envelope_mw : float;
  floor_envelope_mw : float;
  rows : row list;  (** policy-major, fraction order as given *)
}

val default_fractions : float list
(** [1.0; 0.85; 0.7; 0.55; 0.45] — from uncapped down to hard
    contention, staying above the typical all-[Rest] floor. *)

val run :
  ?fractions:float list ->
  ?policies:Allocator.policy list ->
  ?workers:int ->
  ?on_item:(int -> unit) ->
  Scheduler.plan ->
  sweep
(** Run every (policy, fraction) cell ([policies] defaults to
    fair-share only, [workers] to serial; [on_item] is the progress
    hook).  @raise Invalid_argument on empty [fractions] or
    [policies]. *)

val sweep_json : sweep -> string
(** One-line JSON ([iced-tenancy-capsweep-v1]), floats [%.17g]. *)

val sweep_csv : sweep -> string

val render : Format.formatter -> sweep -> unit
(** ASCII table of the sweep (one line per row, Pareto rows
    starred), as printed by [iced tenant sweep]. *)
