(** The fabric-wide DVFS allocator: Algorithm 3 generalized to N
    tenants under a global power cap.

    Each tenant's {!Iced_stream.Controller} still runs the paper's
    per-pipeline window adjustment and produces the levels it {e
    desires}; every shared round the allocator takes all desired
    assignments and {e grants} an assignment whose worst-case power
    envelope fits under the configured cap, demoting kernels one DVFS
    step at a time according to the arbitration {!policy} until it
    fits.

    {2 Cap semantics}

    Admission is on the {b envelope}: every allocated tile priced at
    activity 1.0 at its granted level, plus the SPM at activity 1.0,
    plus the per-island controller overhead of the whole fabric.
    {!Iced_power.Model.tile_power_mw} is monotone in activity, and
    granted levels hold for the whole round (idle time included), so
    measured fabric power is provably [<= envelope <= cap] in every
    round — the cap is a guarantee, not a target that measurement may
    overshoot.  The demotion floor is [Rest] (an allocated island is
    never gated), so every tenant always progresses: fair-share cannot
    starve anyone.  When even the all-[Rest] floor exceeds the cap the
    decision is flagged {!decision.infeasible} (cap exhaustion — see
    the runbook in docs/MULTITENANT.md) and the floor is granted as
    best effort.

    Decisions are pure functions of allocator state with all ties
    broken on tenant ids, so a decision sequence is byte-reproducible
    across runs and worker counts. *)

open Iced_arch

(** How contended power is arbitrated. *)
type policy =
  | Fair_share
      (** demote the tenant with the largest envelope share first:
          equalizes absolute power consumption *)
  | Weighted_qos
      (** demote the largest envelope {e per QoS weight} first:
          premium tenants keep proportionally more of the budget *)
  | Strict_priority
      (** exhaust the lowest-priority class down to [Rest] before
          touching the next class *)

val all_policies : policy list

val policy_to_string : policy -> string
(** ["fair-share"] / ["weighted-qos"] / ["strict-priority"]. *)

val policy_of_string : string -> policy option
(** Accepts the canonical spellings plus the short forms ["fair"],
    ["qos"], ["priority"]. *)

type member = {
  id : string;
  weight : float;  (** {!Qos.weight} of the tenant's class *)
  priority : int;  (** {!Qos.priority} of the tenant's class *)
  mutable kernel_tiles : (string * int) list;
      (** tile inventory per kernel — updated by the {!Scheduler} when
          faults reallocate islands *)
}
(** One tenant as the allocator sees it. *)

val member : id:string -> qos:Qos.class_ -> (string * int) list -> member
(** Build a member from a QoS class and a kernel -> tile-count
    inventory. *)

type decision = {
  round : int;
  desired_mw : float;  (** envelope of what the controllers asked for *)
  granted_mw : float;  (** envelope of what was granted *)
  demotions : int;  (** single-level demotion steps taken *)
  throttled : string list;  (** tenants granted less than desired *)
  infeasible : bool;  (** cap exhaustion: even all-[Rest] exceeds the cap *)
}
(** The per-round decision record, in the order rounds ran. *)

type t

val create :
  ?cap_mw:float -> ?params:Iced_power.Params.t -> policy:policy ->
  fabric:Cgra.t -> member list -> t
(** An allocator for [members] sharing [fabric] under [cap_mw]
    milliwatts (no cap when omitted).  [fabric] prices the shared SPM
    and controller-overhead envelope terms.
    @raise Invalid_argument on a non-positive cap or duplicate member
    ids. *)

val cap_mw : t -> float option
(** The configured cap, if any. *)

val policy : t -> policy
(** The arbitration policy this allocator was created with. *)

val decisions : t -> decision list
(** Every decision so far, oldest first — one per {!arbitrate} call. *)

val update_tiles : t -> id:string -> (string * int) list -> unit
(** Replace a member's tile inventory (fault-triggered island
    reallocation).  @raise Invalid_argument on an unknown id. *)

val envelope_mw : t -> (string * (string * Dvfs.level) list) list -> float
(** Worst-case fabric power of a per-tenant level assignment: all
    listed members' tiles at activity 1.0 at the given levels, plus the
    shared SPM and controller-overhead terms.  Unknown ids contribute
    nothing (a drained tenant's islands are gated). *)

val max_envelope_mw : t -> float
(** The all-[Normal] envelope over every member — the natural unit for
    expressing caps as fractions ({!Capsweep}). *)

val floor_envelope_mw : t -> float
(** The all-[Rest] envelope over every member: caps below this are
    infeasible by construction. *)

val arbitrate :
  t -> round:int ->
  (string * (string * Dvfs.level) list) list ->
  (string * (string * Dvfs.level) list) list
(** One global allocation step, shaped to plug directly into
    {!Iced_stream.Runner.run_shared}'s [arbitrate] hook: takes the
    active tenants' desired levels, returns the granted assignment
    (same tenants, same kernel order), and appends a {!decision}.
    Without a cap this is the identity.  With a cap, kernels are
    demoted one DVFS step at a time — the victim tenant chosen by
    {!policy}, the victim kernel by largest envelope share — until the
    envelope fits. *)
