module Pool = Iced_explore.Pool
module Pareto = Iced_explore.Pareto

type row = {
  fraction : float;
  cap_mw : float;
  policy : Allocator.policy;
  tenants : int;
  throughput_per_s : float;
  fairness : float;
  peak_power_mw : float;
  cap_ok : bool;
  throttled_rounds : int;
  infeasible_rounds : int;
  starved : string list;
  evictions : int;
  pareto : bool;
}

type sweep = {
  tenants : int;
  max_envelope_mw : float;
  floor_envelope_mw : float;
  rows : row list;
}

let default_fractions = [ 1.0; 0.85; 0.7; 0.55; 0.45 ]

let run ?(fractions = default_fractions)
    ?(policies = [ Allocator.Fair_share ]) ?(workers = 1) ?on_item plan =
  if fractions = [] then invalid_arg "Capsweep.run: no fractions";
  if policies = [] then invalid_arg "Capsweep.run: no policies";
  let env = Scheduler.max_envelope_mw plan in
  let floor = Scheduler.floor_envelope_mw plan in
  let cells =
    List.concat_map
      (fun policy -> List.map (fun f -> (policy, f)) fractions)
      policies
    |> Array.of_list
  in
  let results =
    Pool.map ~workers ?on_item
      (fun (policy, fraction) ->
        let cap = fraction *. env in
        let r = Scheduler.run ~cap_mw:cap ~policy plan in
        {
          fraction;
          cap_mw = cap;
          policy;
          tenants = r.Scheduler.tenant_count;
          throughput_per_s = r.Scheduler.aggregate_throughput_per_s;
          fairness = r.Scheduler.fairness;
          peak_power_mw = r.Scheduler.peak_power_mw;
          cap_ok = r.Scheduler.cap_ok;
          throttled_rounds =
            List.length
              (List.filter
                 (fun rr -> rr.Scheduler.throttled <> [])
                 r.Scheduler.rounds);
          infeasible_rounds = r.Scheduler.infeasible_rounds;
          starved = Scheduler.starved r;
          evictions = r.Scheduler.evictions;
          pareto = false;
        })
      cells
  in
  let rows = Array.to_list results in
  let front =
    Pareto.frontier
      ~objectives:(fun row ->
        [ row.throughput_per_s; row.fairness; -.row.cap_mw ])
      rows
  in
  let rows = List.map (fun row -> { row with pareto = List.memq row front }) rows in
  {
    tenants = Scheduler.tenant_count plan;
    max_envelope_mw = env;
    floor_envelope_mw = floor;
    rows;
  }

(* ------------------------------------------------------------------ *)
(* rendering *)

let num x = Printf.sprintf "%.17g" x

let row_json r =
  Printf.sprintf
    "{\"fraction\":%s,\"cap_mw\":%s,\"policy\":\"%s\",\"tenants\":%d,\"throughput_per_s\":%s,\"fairness\":%s,\"peak_power_mw\":%s,\"cap_ok\":%b,\"throttled_rounds\":%d,\"infeasible_rounds\":%d,\"starved\":%d,\"evictions\":%d,\"pareto\":%b}"
    (num r.fraction) (num r.cap_mw)
    (Allocator.policy_to_string r.policy)
    r.tenants
    (num r.throughput_per_s)
    (num r.fairness) (num r.peak_power_mw) r.cap_ok r.throttled_rounds
    r.infeasible_rounds (List.length r.starved) r.evictions r.pareto

let sweep_json s =
  Printf.sprintf
    "{\"schema\":\"iced-tenancy-capsweep-v1\",\"tenants\":%d,\"max_envelope_mw\":%s,\"floor_envelope_mw\":%s,\"rows\":[%s]}"
    s.tenants (num s.max_envelope_mw) (num s.floor_envelope_mw)
    (String.concat "," (List.map row_json s.rows))

let csv_header =
  "fraction,cap_mw,policy,tenants,throughput_per_s,fairness,peak_power_mw,cap_ok,throttled_rounds,infeasible_rounds,starved,evictions,pareto"

let row_csv r =
  Printf.sprintf "%s,%s,%s,%d,%s,%s,%s,%b,%d,%d,%d,%d,%b" (num r.fraction)
    (num r.cap_mw)
    (Allocator.policy_to_string r.policy)
    r.tenants
    (num r.throughput_per_s)
    (num r.fairness) (num r.peak_power_mw) r.cap_ok r.throttled_rounds
    r.infeasible_rounds (List.length r.starved) r.evictions r.pareto

let sweep_csv s =
  String.concat "\n" (csv_header :: List.map row_csv s.rows) ^ "\n"

let render fmt s =
  Format.fprintf fmt
    "%d tenants   envelope max %.1f mW   floor %.1f mW@." s.tenants
    s.max_envelope_mw s.floor_envelope_mw;
  Format.fprintf fmt "%-16s %5s %10s %12s %8s %6s %5s %6s %7s@." "policy" "frac"
    "cap mW" "inputs/s" "fairness" "capok" "thr" "infeas" "pareto";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-16s %5.2f %10.1f %12.1f %8.4f %6b %5d %6d %7s@."
        (Allocator.policy_to_string r.policy)
        r.fraction r.cap_mw r.throughput_per_s r.fairness r.cap_ok
        r.throttled_rounds r.infeasible_rounds
        (if r.pareto then "*" else ""))
    s.rows
