(** The fabric-level tenant scheduler: carve islands across N tenant
    pipelines, stream them all through
    {!Iced_stream.Runner.run_shared}, and account the fleet.

    {2 Planning}

    {!plan} splits the fabric's islands across tenants by weighted
    largest remainder (every pipeline gets its minimum, spare islands
    go by QoS weight, ties break on tenant ids) and prepares each
    tenant's {!Iced_stream.Partition} on a vertically-stacked
    sub-fabric — one fabric-shaped island per block row, so every
    island keeps its column-0 SPM ports.  When fault injection is on,
    the smaller geometries a recovery may shrink a tenant onto are
    prepared up front, keeping reallocation decisions deterministic.
    A plan is immutable and safely shared across sweep workers;
    {!run} builds fresh mutable state per call.

    {2 Running}

    {!run} wires an {!Allocator} (the power cap) and a fault-driven
    [reconfigure] hook (cross-tenant island reallocation: shrink the
    victim, else borrow from the richest donor, else evict) into the
    shared runner, then reduces the outcome to a {!report}: per-round
    power against the cap, per-tenant throughput/energy/violation
    accounting, the Jain fairness index over tenant throughputs, and
    fleet totals.  Everything is a pure function of the plan, the
    policy, the cap, and the seeds — byte-reproducible. *)

type spec = {
  fabric : Iced_arch.Cgra.t;  (** the shared physical array *)
  window : int;  (** observation window (paper: 10 inputs) *)
  params : Iced_power.Params.t;
  faults : int;  (** island-regulator failures to inject, 0 for none *)
  fault_seed : int;  (** seeds {!Iced_fault.Fault.random_events} *)
}

val default_fabric : Iced_arch.Cgra.t
(** 12x4 tiles, twelve 2x2 islands: room for eight one-island tenants
    with spares. *)

val default_spec : spec
(** {!default_fabric}, window 10, default params, no faults. *)

type placement = {
  tenant : Tenant.t;
  min_islands : int;  (** pipeline floor: one island per instance *)
  islands : int;  (** islands actually planned (mapper-feasible) *)
  owned : int list;  (** concrete fabric island ids *)
  partitions : (int * Iced_stream.Partition.t) list;
      (** prepared partition per island count recovery may need *)
}
(** One tenant's slot in a plan. *)

type plan = { spec : spec; placements : placement list }

val tenant_count : plan -> int
(** Number of tenants the plan places. *)

val plan : ?spec:spec -> Tenant.t list -> (plan, string) result
(** Place the fleet.  Fails when the fabric has fewer islands than the
    fleet's pipeline floors, on duplicate tenant ids, or when some
    tenant cannot map at any count down to its floor. *)

val max_envelope_mw : plan -> float
(** All-[Normal] worst-case fleet envelope — the cap unit used by
    {!Capsweep} fractions. *)

val floor_envelope_mw : plan -> float
(** All-[Rest] envelope: caps below this exhaust (see
    {!Allocator.decision.infeasible}). *)

type round_row = {
  round : int;
  span_us : float;
  power_mw : float;  (** measured fabric power this round *)
  desired_mw : float;  (** envelope of the controllers' ask *)
  granted_mw : float;  (** envelope of the allocator's grant *)
  throttled : string list;  (** tenants granted less than desired *)
  infeasible : bool;  (** cap exhaustion this round *)
  reallocated : string list;  (** tenants whose islands moved this round *)
}

type tenant_summary = {
  id : string;
  qos : Qos.class_;
  islands : int;  (** final island count (faults may have moved it) *)
  offered : int;
  completed : int;
  throughput_per_s : float;  (** completed / the tenant's busy time *)
  mean_power_mw : float;
  energy_uj : float;
  throttled_rounds : int;
  evicted : bool;
}

type report = {
  policy : Allocator.policy;
  cap_mw : float option;
  tenant_count : int;
  rounds : round_row list;
  tenants : tenant_summary list;
  aggregate_throughput_per_s : float;  (** fleet inputs per second *)
  fairness : float;  (** Jain index over tenant throughputs, in (0, 1] *)
  peak_power_mw : float;
  cap_ok : bool;
      (** every feasible round held measured power [<=] cap *)
  infeasible_rounds : int;
  total_span_us : float;
  faults_injected : int;
  reallocations : int;
  evictions : int;
}

val run : ?cap_mw:float -> policy:Allocator.policy -> plan -> report
(** Stream the whole fleet under [cap_mw] milliwatts (no cap when
    omitted) arbitrated by [policy]. *)

val starved : report -> string list
(** Non-evicted tenants that did not finish their stream — must be
    empty for any completed run (the [Rest] demotion floor guarantees
    progress); a regression tripwire. *)

val report_json : report -> string
(** One-line JSON ([iced-tenancy-report-v1]), floats rendered [%.17g]
    so byte comparison implies numeric identity. *)

val render : Format.formatter -> report -> unit
(** Human-readable fleet summary table. *)
