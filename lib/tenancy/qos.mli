(** Quality-of-service classes for fabric tenants.

    A class fixes two scalars the {!Allocator} policies read: a
    {!weight} (the tenant's share of contended power under
    [Weighted_qos] and of spare islands at planning time) and a
    {!priority} rank (who is throttled last under [Strict_priority]).
    The class also travels on the serve wire protocol as the optional
    ["qos"] frame field (docs/MULTITENANT.md). *)

type class_ = Batch | Standard | Premium

val all : class_ list
(** Lowest to highest service class. *)

val weight : class_ -> float
(** Proportional-share weight: batch 1, standard 2, premium 4. *)

val priority : class_ -> int
(** Strict rank: batch 0, standard 1, premium 2 — higher is throttled
    later. *)

val to_string : class_ -> string
(** ["batch"] / ["standard"] / ["premium"] — the wire spelling. *)

val of_string : string -> class_ option
(** Inverse of {!to_string}; [None] on anything else. *)

val pp : Format.formatter -> class_ -> unit
