module Runner = Iced_stream.Runner
module Partition = Iced_stream.Partition
module Pipeline = Iced_stream.Pipeline
module Cgra = Iced_arch.Cgra
module Params = Iced_power.Params
module Fault = Iced_fault.Fault
module Bitstream = Iced_mapper.Bitstream

type spec = {
  fabric : Cgra.t;
  window : int;
  params : Params.t;
  faults : int;
  fault_seed : int;
}

let default_fabric = Cgra.make ~rows:12 ~cols:4 ()

let default_spec =
  {
    fabric = default_fabric;
    window = 10;
    params = Params.default;
    faults = 0;
    fault_seed = 7;
  }

type placement = {
  tenant : Tenant.t;
  min_islands : int;
  islands : int;
  owned : int list;
  partitions : (int * Partition.t) list;
}

type plan = { spec : spec; placements : placement list }

let tenant_count plan = List.length plan.placements

(* Every island of a tenant's sub-fabric must touch column 0 (the SPM
   ports live there), so islands stack vertically: [count] islands of
   the fabric's island shape, one per block row. *)
let sub_fabric fabric count =
  Cgra.make
    ~island:(fabric.Cgra.island_rows, fabric.Cgra.island_cols)
    ~spm_banks:fabric.Cgra.spm_banks ~spm_kbytes:fabric.Cgra.spm_kbytes
    ~rows:(fabric.Cgra.island_rows * count)
    ~cols:fabric.Cgra.island_cols ()

let profile_of (t : Tenant.t) = List.filteri (fun i _ -> i < 50) t.Tenant.inputs

let prepare_at spec (t : Tenant.t) count =
  Partition.prepare ~max_islands_per_kernel:count (sub_fabric spec.fabric count)
    t.Tenant.pipeline ~profile:(profile_of t)

let min_islands_of (t : Tenant.t) =
  max 1 (List.length (Pipeline.instances t.Tenant.pipeline))

(* Weighted largest-remainder island split: every tenant gets its
   pipeline's minimum, the spare islands go proportionally to QoS
   weight, ties on the remainder break by tenant id. *)
let shares fabric tenants =
  let total = Cgra.island_count fabric in
  let mins = List.map (fun t -> (t, min_islands_of t)) tenants in
  let need = List.fold_left (fun a (_, m) -> a + m) 0 mins in
  if need > total then
    Error
      (Printf.sprintf "fabric has %d islands but the fleet needs at least %d"
         total need)
  else begin
    let spare = total - need in
    let wsum =
      List.fold_left (fun a (t, _) -> a +. Qos.weight t.Tenant.qos) 0.0 mins
    in
    let quota =
      List.map
        (fun (t, m) ->
          let q = float_of_int spare *. Qos.weight t.Tenant.qos /. wsum in
          (t, m, int_of_float (Float.floor q), q -. Float.floor q))
        mins
    in
    let used = List.fold_left (fun a (_, _, fl, _) -> a + fl) 0 quota in
    let leftover = spare - used in
    let order =
      List.mapi (fun i (t, _, _, r) -> (i, t, r)) quota
      |> List.sort (fun (_, t1, r1) (_, t2, r2) ->
             if r1 <> r2 then compare r2 r1
             else compare t1.Tenant.id t2.Tenant.id)
    in
    let bonus =
      List.filteri (fun k _ -> k < leftover) order |> List.map (fun (i, _, _) -> i)
    in
    Ok
      (List.mapi
         (fun i (t, m, fl, _) ->
           let extra = fl + if List.mem i bonus then 1 else 0 in
           (* candidate preparation cost grows with island count: cap a
              tenant's share at six islands per pipeline instance *)
           let cap = 6 * min_islands_of t in
           (t, min (m + extra) cap))
         quota)
  end

let plan ?(spec = default_spec) tenants =
  if tenants = [] then Error "Scheduler.plan: no tenants"
  else
    let rec dup = function
      | [] -> None
      | (t : Tenant.t) :: rest ->
        if List.exists (fun (u : Tenant.t) -> u.Tenant.id = t.Tenant.id) rest
        then Some t.Tenant.id
        else dup rest
    in
    match dup tenants with
    | Some id -> Error ("Scheduler.plan: duplicate tenant id " ^ id)
    | None -> (
      match shares spec.fabric tenants with
      | Error e -> Error e
      | Ok assigned ->
        let next_island = ref 0 in
        let rec place acc = function
          | [] -> Ok (List.rev acc)
          | ((t : Tenant.t), count) :: rest -> (
            let min_islands = min_islands_of t in
            (* fall back one island at a time when the mapper cannot
               fill the assigned share; freed islands simply idle *)
            let rec settle c =
              if c < min_islands then
                Error
                  (Printf.sprintf "tenant %s: no feasible partition" t.Tenant.id)
              else
                match prepare_at spec t c with
                | Ok p -> Ok (c, p)
                | Error _ when c > min_islands -> settle (c - 1)
                | Error e -> Error (Printf.sprintf "tenant %s: %s" t.Tenant.id e)
            in
            match settle count with
            | Error e -> Error e
            | Ok (c, p) ->
              (* with faults on, recovery may shrink any tenant:
                 prepare the smaller geometries up front so
                 reallocation stays deterministic and cheap *)
              let lower =
                if spec.faults = 0 then []
                else
                  List.filter_map
                    (fun cc ->
                      match prepare_at spec t cc with
                      | Ok pp -> Some (cc, pp)
                      | Error _ -> None)
                    (List.init (c - min_islands) (fun k -> min_islands + k))
              in
              let owned = List.init c (fun k -> !next_island + k) in
              next_island := !next_island + c;
              place
                ({
                   tenant = t;
                   min_islands;
                   islands = c;
                   owned;
                   partitions = lower @ [ (c, p) ];
                 }
                :: acc)
                rest)
        in
        (match place [] assigned with
        | Ok placements -> Ok { spec; placements }
        | Error e -> Error e))

(* ------------------------------------------------------------------ *)
(* running a plan *)

type round_row = {
  round : int;
  span_us : float;
  power_mw : float;
  desired_mw : float;
  granted_mw : float;
  throttled : string list;
  infeasible : bool;
  reallocated : string list;
}

type tenant_summary = {
  id : string;
  qos : Qos.class_;
  islands : int;
  offered : int;
  completed : int;
  throughput_per_s : float;
  mean_power_mw : float;
  energy_uj : float;
  throttled_rounds : int;
  evicted : bool;
}

type report = {
  policy : Allocator.policy;
  cap_mw : float option;
  tenant_count : int;
  rounds : round_row list;
  tenants : tenant_summary list;
  aggregate_throughput_per_s : float;
  fairness : float;
  peak_power_mw : float;
  cap_ok : bool;
  infeasible_rounds : int;
  total_span_us : float;
  faults_injected : int;
  reallocations : int;
  evictions : int;
}

let tiles_of (p : Partition.t) =
  List.map
    (fun (label, count) ->
      ( label,
        List.fold_left
          (fun acc k -> acc + List.length (Cgra.island_tiles p.Partition.cgra k))
          0
          (List.init count Fun.id) ))
    p.Partition.allocation

let reconfig_penalty_us (params : Params.t) (p : Partition.t) =
  List.fold_left
    (fun acc (label, _) ->
      let bits =
        Bitstream.total_bits (Partition.allocated p label).Partition.mapping
      in
      let words = (bits + 63) / 64 in
      acc +. (float_of_int words /. params.Params.f_normal_mhz))
    0.0 p.Partition.allocation

let partition_at placement count = List.assoc_opt count placement.partitions

let jain = function
  | [] -> 1.0
  | xs ->
    let n = float_of_int (List.length xs) in
    let s = List.fold_left ( +. ) 0.0 xs in
    let s2 = List.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
    if s2 <= 0.0 then 1.0 else s *. s /. (n *. s2)

let members_of plan =
  List.map
    (fun pl ->
      Allocator.member ~id:pl.tenant.Tenant.id ~qos:pl.tenant.Tenant.qos
        (tiles_of (List.assoc pl.islands pl.partitions)))
    plan.placements

let max_envelope_mw plan =
  Allocator.max_envelope_mw
    (Allocator.create ~policy:Allocator.Fair_share ~params:plan.spec.params
       ~fabric:plan.spec.fabric (members_of plan))

let floor_envelope_mw plan =
  Allocator.floor_envelope_mw
    (Allocator.create ~policy:Allocator.Fair_share ~params:plan.spec.params
       ~fabric:plan.spec.fabric (members_of plan))

let run ?cap_mw ~policy plan =
  let spec = plan.spec in
  let params = spec.params in
  (* fresh mutable replicas per run: a plan is shared read-only across
     sweep workers *)
  let states =
    List.map
      (fun pl ->
        (pl, ref pl.owned, ref pl.islands, ref (List.assoc pl.islands pl.partitions)))
      plan.placements
  in
  let alloc =
    Allocator.create ?cap_mw ~params ~policy ~fabric:spec.fabric (members_of plan)
  in
  let est_rounds =
    List.fold_left
      (fun acc pl ->
        max acc
          ((List.length pl.tenant.Tenant.inputs + spec.window - 1) / spec.window))
      1 plan.placements
  in
  let fault_events =
    if spec.faults = 0 then []
    else
      Fault.random_events ~seed:spec.fault_seed ~cgra:spec.fabric
        ~inputs:(max 2 est_rounds) ~kinds:[ Fault.Island ] ~count:spec.faults ()
  in
  let faults_injected = ref 0 in
  let reallocations = ref 0 in
  let evicted_now = ref [] in
  let realloc_by_round = Hashtbl.create 8 in
  let note_realloc round id =
    let cur = try Hashtbl.find realloc_by_round round with Not_found -> [] in
    if not (List.mem id cur) then Hashtbl.replace realloc_by_round round (cur @ [ id ])
  in
  (* Fault-triggered island reallocation ACROSS tenants: a dead island
     shrinks its owner onto a prepared smaller partition; when the
     owner is already at its pipeline's floor it borrows an island
     from the richest donor (which shrinks instead); with no donor the
     victim is evicted.  Reconfiguration latency is charged per
     {!Bitstream} word, exactly like single-tenant recovery. *)
  let reconfigure ~round ~active =
    let dead =
      List.filter_map
        (fun (e : Fault.event) ->
          if e.Fault.at_input = round then
            match e.Fault.fault with Fault.Island_down i -> Some i | _ -> None
          else None)
        fault_events
    in
    if dead = [] then None
    else begin
      let active_ids = List.map fst active in
      let live id = List.mem id active_ids && not (List.mem id !evicted_now) in
      let swaps = ref [] in
      let evictions = ref [] in
      let swap id p =
        let penalty = reconfig_penalty_us params p in
        swaps := !swaps @ [ (id, p, penalty) ];
        Allocator.update_tiles alloc ~id (tiles_of p);
        note_realloc round id;
        incr reallocations
      in
      let evict id =
        evicted_now := id :: !evicted_now;
        evictions := !evictions @ [ id ]
      in
      List.iter
        (fun island ->
          incr faults_injected;
          let owner =
            List.find_opt
              (fun (pl, owned, _, _) ->
                List.mem island !owned && live pl.tenant.Tenant.id)
              states
          in
          match owner with
          | None -> () (* unowned or drained island: harmless *)
          | Some (vpl, vowned, vcount, vpart) -> (
            let vid = vpl.tenant.Tenant.id in
            vowned := List.filter (fun i -> i <> island) !vowned;
            let shrunk = !vcount - 1 in
            match partition_at vpl shrunk with
            | Some p when shrunk >= vpl.min_islands ->
              vcount := shrunk;
              vpart := p;
              swap vid p
            | _ -> (
              let donors =
                List.filter
                  (fun (dpl, _, dcount, _) ->
                    dpl.tenant.Tenant.id <> vid
                    && live dpl.tenant.Tenant.id
                    && !dcount > dpl.min_islands
                    && partition_at dpl (!dcount - 1) <> None)
                  states
                |> List.sort (fun (d1, _, c1, _) (d2, _, c2, _) ->
                       if !c1 <> !c2 then compare !c2 !c1
                       else compare d1.tenant.Tenant.id d2.tenant.Tenant.id)
              in
              match donors with
              | (dpl, downed, dcount, dpart) :: _ -> (
                match List.rev !downed with
                | given :: kept_rev ->
                  downed := List.rev kept_rev;
                  vowned := !vowned @ [ given ];
                  dcount := !dcount - 1;
                  let dp =
                    match partition_at dpl !dcount with
                    | Some dp -> dp
                    | None -> assert false
                  in
                  dpart := dp;
                  swap dpl.tenant.Tenant.id dp;
                  (* the victim reloads its unchanged bitstream onto
                     the borrowed island *)
                  swap vid !vpart
                | [] -> evict vid)
              | [] -> evict vid)))
        dead;
      if !swaps = [] && !evictions = [] then None
      else begin
        Iced_obs.Metrics.incr ~by:(List.length !swaps) "tenancy.reallocations";
        Some { Runner.swaps = !swaps; evictions = !evictions }
      end
    end
  in
  let streams =
    List.map
      (fun (pl, _, _, part) ->
        {
          Runner.tenant = pl.tenant.Tenant.id;
          partition = !part;
          stream = pl.tenant.Tenant.inputs;
        })
      states
  in
  let shared =
    Runner.run_shared ~window:spec.window ~params
      ~arbitrate:(Allocator.arbitrate alloc) ~reconfigure ~fabric:spec.fabric
      streams
  in
  let decisions = Allocator.decisions alloc in
  let rounds =
    List.map2
      (fun (r : Runner.shared_window) (d : Allocator.decision) ->
        {
          round = r.Runner.round;
          span_us = r.Runner.span_us;
          power_mw = r.Runner.fabric_power_mw;
          desired_mw = d.Allocator.desired_mw;
          granted_mw = d.Allocator.granted_mw;
          throttled = d.Allocator.throttled;
          infeasible = d.Allocator.infeasible;
          reallocated =
            (try Hashtbl.find realloc_by_round r.Runner.round
             with Not_found -> []);
        })
      shared.Runner.rounds decisions
  in
  let cap_ok =
    match cap_mw with
    | None -> true
    | Some cap ->
      List.for_all (fun rr -> rr.infeasible || rr.power_mw <= cap +. 1e-9) rounds
  in
  let total_span_us = List.fold_left (fun a r -> a +. r.span_us) 0.0 rounds in
  let evicted_ids = List.map fst shared.Runner.evicted in
  let tenant_summaries =
    List.map
      (fun (pl, _, count, _) ->
        let id = pl.tenant.Tenant.id in
        let reports =
          match List.assoc_opt id shared.Runner.tenant_reports with
          | Some r -> r
          | None -> []
        in
        let totals = Runner.aggregate reports in
        let busy_us, throttled_rounds =
          List.fold_left
            (fun acc (r : Runner.shared_window) ->
              List.fold_left
                (fun (b, n) (tw : Runner.tenant_window) ->
                  if tw.Runner.owner = id then
                    (b +. tw.Runner.busy_us, if tw.Runner.throttled then n + 1 else n)
                  else (b, n))
                acc r.Runner.slices)
            (0.0, 0) shared.Runner.rounds
        in
        let completed = totals.Runner.total_inputs in
        {
          id;
          qos = pl.tenant.Tenant.qos;
          islands = !count;
          offered = List.length pl.tenant.Tenant.inputs;
          completed;
          throughput_per_s =
            (if busy_us > 0.0 then float_of_int completed /. busy_us *. 1e6
             else 0.0);
          mean_power_mw =
            (if totals.Runner.total_time_us > 0.0 then
               totals.Runner.total_energy_uj /. totals.Runner.total_time_us
               *. 1000.0
             else 0.0);
          energy_uj = totals.Runner.total_energy_uj;
          throttled_rounds;
          evicted = List.mem id evicted_ids;
        })
      states
  in
  let completed_total =
    List.fold_left (fun a (s : tenant_summary) -> a + s.completed) 0 tenant_summaries
  in
  {
    policy;
    cap_mw;
    tenant_count = List.length plan.placements;
    rounds;
    tenants = tenant_summaries;
    aggregate_throughput_per_s =
      (if total_span_us > 0.0 then
         float_of_int completed_total /. total_span_us *. 1e6
       else 0.0);
    fairness =
      jain (List.map (fun (s : tenant_summary) -> s.throughput_per_s) tenant_summaries);
    peak_power_mw = shared.Runner.peak_power_mw;
    cap_ok;
    infeasible_rounds =
      List.length (List.filter (fun rr -> rr.infeasible) rounds);
    total_span_us;
    faults_injected = !faults_injected;
    reallocations = !reallocations;
    evictions = List.length evicted_ids;
  }

let starved report =
  List.filter_map
    (fun (s : tenant_summary) ->
      if (not s.evicted) && s.completed < s.offered then Some s.id else None)
    report.tenants

(* ------------------------------------------------------------------ *)
(* rendering *)

let num x = Printf.sprintf "%.17g" x

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_ids ids = "[" ^ String.concat "," (List.map json_string ids) ^ "]"

let report_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"iced-tenancy-report-v1\"";
  Buffer.add_string b
    (Printf.sprintf ",\"policy\":%s"
       (json_string (Allocator.policy_to_string r.policy)));
  Buffer.add_string b
    (match r.cap_mw with
    | None -> ",\"cap_mw\":null"
    | Some c -> Printf.sprintf ",\"cap_mw\":%s" (num c));
  Buffer.add_string b (Printf.sprintf ",\"tenants\":%d" r.tenant_count);
  Buffer.add_string b
    (Printf.sprintf ",\"aggregate_throughput_per_s\":%s"
       (num r.aggregate_throughput_per_s));
  Buffer.add_string b (Printf.sprintf ",\"fairness\":%s" (num r.fairness));
  Buffer.add_string b (Printf.sprintf ",\"peak_power_mw\":%s" (num r.peak_power_mw));
  Buffer.add_string b (Printf.sprintf ",\"cap_ok\":%b" r.cap_ok);
  Buffer.add_string b (Printf.sprintf ",\"infeasible_rounds\":%d" r.infeasible_rounds);
  Buffer.add_string b (Printf.sprintf ",\"total_span_us\":%s" (num r.total_span_us));
  Buffer.add_string b (Printf.sprintf ",\"faults_injected\":%d" r.faults_injected);
  Buffer.add_string b (Printf.sprintf ",\"reallocations\":%d" r.reallocations);
  Buffer.add_string b (Printf.sprintf ",\"evictions\":%d" r.evictions);
  Buffer.add_string b ",\"rounds\":[";
  List.iteri
    (fun i rr ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"round\":%d,\"span_us\":%s,\"power_mw\":%s,\"desired_mw\":%s,\"granted_mw\":%s,\"throttled\":%s,\"infeasible\":%b,\"reallocated\":%s}"
           rr.round (num rr.span_us) (num rr.power_mw) (num rr.desired_mw)
           (num rr.granted_mw) (json_ids rr.throttled) rr.infeasible
           (json_ids rr.reallocated)))
    r.rounds;
  Buffer.add_string b "],\"tenant_summaries\":[";
  List.iteri
    (fun i (s : tenant_summary) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\":%s,\"qos\":%s,\"islands\":%d,\"offered\":%d,\"completed\":%d,\"throughput_per_s\":%s,\"mean_power_mw\":%s,\"energy_uj\":%s,\"throttled_rounds\":%d,\"evicted\":%b}"
           (json_string s.id)
           (json_string (Qos.to_string s.qos))
           s.islands s.offered s.completed
           (num s.throughput_per_s) (num s.mean_power_mw) (num s.energy_uj)
           s.throttled_rounds s.evicted))
    r.tenants;
  Buffer.add_string b "]}";
  Buffer.contents b

let render fmt r =
  Format.fprintf fmt "policy %s   cap %s   tenants %d@."
    (Allocator.policy_to_string r.policy)
    (match r.cap_mw with None -> "none" | Some c -> Printf.sprintf "%.1f mW" c)
    r.tenant_count;
  Format.fprintf fmt
    "throughput %.1f inputs/s   fairness %.4f   peak %.1f mW   cap_ok %b@."
    r.aggregate_throughput_per_s r.fairness r.peak_power_mw r.cap_ok;
  if r.faults_injected > 0 then
    Format.fprintf fmt "faults %d   reallocations %d   evictions %d@."
      r.faults_injected r.reallocations r.evictions;
  if r.infeasible_rounds > 0 then
    Format.fprintf fmt "CAP EXHAUSTION: %d infeasible round(s)@." r.infeasible_rounds;
  Format.fprintf fmt "%-16s %-9s %3s %6s %6s %12s %10s %6s@." "tenant" "qos"
    "isl" "in" "done" "inputs/s" "power mW" "thr";
  List.iter
    (fun (s : tenant_summary) ->
      Format.fprintf fmt "%-16s %-9s %3d %6d %6d %12.1f %10.2f %6d%s@." s.id
        (Qos.to_string s.qos) s.islands s.offered s.completed s.throughput_per_s
        s.mean_power_mw s.throttled_rounds
        (if s.evicted then "  EVICTED" else ""))
    r.tenants
