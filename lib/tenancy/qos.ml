type class_ = Batch | Standard | Premium

let all = [ Batch; Standard; Premium ]

let weight = function Batch -> 1.0 | Standard -> 2.0 | Premium -> 4.0

let priority = function Batch -> 0 | Standard -> 1 | Premium -> 2

let to_string = function
  | Batch -> "batch"
  | Standard -> "standard"
  | Premium -> "premium"

let of_string = function
  | "batch" -> Some Batch
  | "standard" -> Some Standard
  | "premium" -> Some Premium
  | _ -> None

let pp fmt c = Format.pp_print_string fmt (to_string c)
