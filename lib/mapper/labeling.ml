open Iced_arch
open Iced_dfg

let capacity_slots ~tiles ~ii = List.length tiles * ii

(* Tile-time slots a node occupies when run at a level: slowing a tile
   by m makes each of its operations cover m base-clock slots. *)
let slots_of_level level = Dvfs.multiplier level

let label ?(floor = Dvfs.Rest) ?(guard = 0) g ~cgra ~tiles ~ii =
  if tiles = [] then invalid_arg "Labeling.label: empty tile set";
  if ii <= 0 then invalid_arg "Labeling.label: non-positive II";
  if guard < 0 then invalid_arg "Labeling.label: negative guard";
  (* Guard band for upset-prone fabrics: each guard step raises the
     label floor one level, keeping voltage margin between the labels
     and the level where timing upsets appear. *)
  let floor =
    let rec raise_floor level = function
      | 0 -> level
      | n -> raise_floor (Dvfs.step_up level) (n - 1)
    in
    raise_floor floor guard
  in
  let clamp level = if Dvfs.at_most level floor then floor else level in
  let critical = Analysis.critical_nodes g in
  let secondary = Analysis.secondary_cycle_nodes g in
  let labels = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace labels id Dvfs.Normal) critical;
  List.iter
    (fun id -> if not (Hashtbl.mem labels id) then Hashtbl.replace labels id (clamp Dvfs.Relax))
    secondary;
  let total_slots = capacity_slots ~tiles ~ii in
  let tiles_per_island = cgra.Cgra.island_rows * cgra.Cgra.island_cols in
  let islands_total =
    List.sort_uniq compare (List.map (Cgra.island_of cgra) tiles) |> List.length
  in
  let slots_used () =
    Hashtbl.fold (fun _ level acc -> acc + slots_of_level level) labels 0
  in
  let slots_at level =
    Hashtbl.fold
      (fun _ l acc -> if l = level then acc + slots_of_level l else acc)
      labels 0
  in
  let islands_for level =
    let slots = slots_at level in
    let island_slots = tiles_per_island * ii in
    (slots + island_slots - 1) / island_slots
  in
  (* Grey nodes, most slack first: nodes far off the critical paths are
     the best candidates for the lowest level. *)
  let slack =
    let asap = Analysis.asap g and alap = Analysis.alap g in
    fun id -> List.assoc id alap - List.assoc id asap
  in
  let grey =
    Graph.node_ids g
    |> List.filter (fun id -> not (Hashtbl.mem labels id))
    |> List.sort (fun a b -> compare (slack b, a) (slack a, b))
  in
  List.iter
    (fun id ->
      let rest_islands_available =
        islands_total - islands_for Dvfs.Normal - islands_for Dvfs.Relax
        - islands_for Dvfs.Rest
      in
      let used = slots_used () in
      let level =
        if
          Dvfs.at_most floor Dvfs.Rest && rest_islands_available > 0
          && used + slots_of_level Dvfs.Rest <= total_slots
        then Dvfs.Rest
        else if used + slots_of_level Dvfs.Relax <= total_slots then clamp Dvfs.Relax
        else Dvfs.Normal
      in
      Hashtbl.replace labels id level)
    grey;
  List.map (fun id -> (id, Hashtbl.find labels id)) (Graph.node_ids g)
