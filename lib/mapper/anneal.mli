(** Simulated-annealing placer.

    Seeds itself with a routing-blind greedy placement, then runs a
    seeded, fully deterministic move loop: relocate a uniform node to a
    uniform eligible (tile, time-window slot), accept by the Metropolis
    rule on a wirelength-plus-timing-slack cost, with a warming phase
    that multiplies the temperature until the acceptance ratio reaches
    the target and a multiplicative cooling phase after it (the
    [SAStruct]/[DefaultSAWarm]/[DefaultSACool] scheme of Mapper2.jl).
    FU occupancy, memory-tile and commit-mode constraints hold after
    every move by construction; routing is left entirely to the request
    backend's router.

    Equal {!Backend.sa_params} (same seed, budget, schedule) on the
    same attempt produce byte-identical placements; no wall-clock or
    global state is consulted.

    Telemetry: accepted/rejected moves and temperature steps go to
    [sa_moves_accepted]/[sa_moves_rejected]/[sa_temp_steps]. *)

val place : Backend.sa_params -> Engine.state -> int list -> (unit, string) result
(** Place every node of the attempt (in [order] for the greedy seed
    phase), leaving the refined placement in [state.placements] with
    FU slots reserved.  Fails only if the greedy seed placement finds
    no feasible slot for some node. *)
