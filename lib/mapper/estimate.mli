(** Expected start times for every node, computed before placement by a
    short fixed-point sweep.

    Dependent ops usually sit one routing hop apart (2 cycles
    producer-to-consumer), except within a recurrence cycle, which must
    be packed at 1 cycle per member to close within II * distance.  A
    phi is anchored after its carried producer's estimate minus the
    iteration slack d*II.  Cycles that consume values computed from
    other cycles ("rank" >= 1, e.g. spmv's accumulator fed by an
    induction-addressed load chain) additionally receive the margin as
    congestion slack — shifting a dependent cycle later opens slack
    between it and its input chain, whereas a uniform shift would not. *)

open Iced_dfg

type t

val build : Graph.t -> ii:int -> margin:int -> topo:int list -> t
(** Fixed-point sweep over [topo] (an intra-iteration topological
    order); [margin] is the congestion slack granted to dependent
    recurrence cycles — drawn from {!Cost.asap_margins}. *)

val start : t -> int -> int
(** Estimated start cycle of a node (0 when unknown), clamped
    non-negative. *)
