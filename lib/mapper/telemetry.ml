type t = {
  mutable attempts : int;
  mutable ii_bumps : int;
  mutable margin_position : int;
  mutable placements_tried : int;
  mutable route_calls : int;
  mutable route_failures : int;
  mutable expansions : int;
  mutable sa_moves_accepted : int;
  mutable sa_moves_rejected : int;
  mutable sa_temp_steps : int;
  mutable pf_rounds : int;
  mutable pf_overflow : int;
  mutable sat_conflicts : int;
  mutable sat_decisions : int;
  mutable sat_propagations : int;
  mutable per_ii_s : (int * float) list; (* descending II (latest first) *)
  mutable wall_s : float;
}

let create () =
  {
    attempts = 0;
    ii_bumps = 0;
    margin_position = 0;
    placements_tried = 0;
    route_calls = 0;
    route_failures = 0;
    expansions = 0;
    sa_moves_accepted = 0;
    sa_moves_rejected = 0;
    sa_temp_steps = 0;
    pf_rounds = 0;
    pf_overflow = 0;
    sat_conflicts = 0;
    sat_decisions = 0;
    sat_propagations = 0;
    per_ii_s = [];
    wall_s = 0.0;
  }

let reset t =
  t.attempts <- 0;
  t.ii_bumps <- 0;
  t.margin_position <- 0;
  t.placements_tried <- 0;
  t.route_calls <- 0;
  t.route_failures <- 0;
  t.expansions <- 0;
  t.sa_moves_accepted <- 0;
  t.sa_moves_rejected <- 0;
  t.sa_temp_steps <- 0;
  t.pf_rounds <- 0;
  t.pf_overflow <- 0;
  t.sat_conflicts <- 0;
  t.sat_decisions <- 0;
  t.sat_propagations <- 0;
  t.per_ii_s <- [];
  t.wall_s <- 0.0

let per_ii t = List.rev t.per_ii_s

let add_ii_time t ~ii seconds = t.per_ii_s <- (ii, seconds) :: t.per_ii_s

let merge ~into src =
  into.attempts <- into.attempts + src.attempts;
  into.ii_bumps <- into.ii_bumps + src.ii_bumps;
  into.margin_position <- max into.margin_position src.margin_position;
  into.placements_tried <- into.placements_tried + src.placements_tried;
  into.route_calls <- into.route_calls + src.route_calls;
  into.route_failures <- into.route_failures + src.route_failures;
  into.expansions <- into.expansions + src.expansions;
  into.sa_moves_accepted <- into.sa_moves_accepted + src.sa_moves_accepted;
  into.sa_moves_rejected <- into.sa_moves_rejected + src.sa_moves_rejected;
  into.sa_temp_steps <- into.sa_temp_steps + src.sa_temp_steps;
  into.pf_rounds <- into.pf_rounds + src.pf_rounds;
  into.pf_overflow <- into.pf_overflow + src.pf_overflow;
  into.sat_conflicts <- into.sat_conflicts + src.sat_conflicts;
  into.sat_decisions <- into.sat_decisions + src.sat_decisions;
  into.sat_propagations <- into.sat_propagations + src.sat_propagations;
  into.per_ii_s <- src.per_ii_s @ into.per_ii_s;
  into.wall_s <- into.wall_s +. src.wall_s

let to_json t =
  let per_ii_json =
    String.concat ","
      (List.map (fun (ii, s) -> Printf.sprintf "[%d,%.6f]" ii s) (per_ii t))
  in
  Printf.sprintf
    "{\"attempts\":%d,\"ii_bumps\":%d,\"margin_position\":%d,\"placements_tried\":%d,\"route_calls\":%d,\"route_failures\":%d,\"expansions\":%d,\"sa_moves_accepted\":%d,\"sa_moves_rejected\":%d,\"sa_temp_steps\":%d,\"pf_rounds\":%d,\"pf_overflow\":%d,\"sat_conflicts\":%d,\"sat_decisions\":%d,\"sat_propagations\":%d,\"per_ii_s\":[%s],\"wall_s\":%.6f}"
    t.attempts t.ii_bumps t.margin_position t.placements_tried t.route_calls
    t.route_failures t.expansions t.sa_moves_accepted t.sa_moves_rejected
    t.sa_temp_steps t.pf_rounds t.pf_overflow t.sat_conflicts t.sat_decisions
    t.sat_propagations per_ii_json t.wall_s

let pp fmt t =
  Format.fprintf fmt
    "attempts=%d ii_bumps=%d margin=%d placements=%d routes=%d/%d fail expansions=%d \
     sa=%d+/%d- temps=%d pf_rounds=%d pf_overflow=%d sat=%dc/%dd/%dp \
     wall=%.3fs"
    t.attempts t.ii_bumps t.margin_position t.placements_tried t.route_calls
    t.route_failures t.expansions t.sa_moves_accepted t.sa_moves_rejected
    t.sa_temp_steps t.pf_rounds t.pf_overflow t.sat_conflicts t.sat_decisions
    t.sat_propagations t.wall_s
