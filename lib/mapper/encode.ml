open Iced_arch
open Iced_dfg
module Solver = Iced_sat.Solver
module Card = Iced_sat.Card

(* Per-node variable block.  [dom] lists the allowed tiles; [x.(i)]
   chooses [dom.(i)].  The schedule window is [lo .. horizon - 1]:
   [s.(t - lo)] says "executes at absolute cycle t", [ge.(t - lo)]
   says "executes at cycle t or later" (order encoding), and
   [slot.(k)] says "executes in modulo slot k". *)
type node_vars = {
  dom : int array;
  x : int array;
  lo : int;
  s : int array;
  ge : int array;
  slot : int array;
}

type t = {
  solver : Solver.t;
  ii : int;
  horizon : int;
  order : int list;
  vars : (int, node_vars) Hashtbl.t;
}

let solver t = t.solver
let horizon t = t.horizon

let slack_of g ~ii (e : Graph.edge) =
  match (Graph.node g e.src).op with
  | Op.Const _ -> (e.distance + 2) * ii
  | _ -> e.distance * ii

(* Cap on the schedule horizon (and so on encoding size).  Kernels the
   oracle targets sit far below it; past the cap we decline to encode
   and the caller reports the II undecided rather than building a CNF
   with hundreds of thousands of clauses. *)
let max_horizon = 512

let build cgra g ~ii =
  match Graph.intra_topological g with
  | None -> Error "intra-iteration dependences form a cycle"
  | Some order ->
    let edges =
      List.sort
        (fun (a : Graph.edge) (b : Graph.edge) ->
          compare (a.src, a.dst, a.distance) (b.src, b.dst, b.distance))
        (Graph.edges g)
    in
    let diameter = cgra.Cgra.rows - 1 + (cgra.Cgra.cols - 1) in
    (* Least-solution bound: in the latency constraint graph
       (t_v - t_u >= 1 + manhattan - slack per edge) every feasible
       tile assignment admits the least schedule, whose values are
       bounded by the sum of positive edge weights — cycles all have
       non-positive weight or the instance is infeasible anyway. *)
    let hbound =
      List.fold_left
        (fun acc e -> acc + max 0 (1 + diameter - slack_of g ~ii e))
        1 edges
    in
    let horizon = max hbound (ii + diameter + 1) in
    if horizon > max_horizon then
      Error
        (Printf.sprintf "schedule horizon %d exceeds the %d cap" horizon
           max_horizon)
    else begin
      let s = Solver.create () in
      let tiles = Array.init (Cgra.tile_count cgra) (fun i -> i) in
      let memory_tiles = Array.of_list (Cgra.memory_tiles cgra) in
      (* intra-iteration ASAP lower bounds *)
      let lo_tbl = Hashtbl.create 16 in
      List.iter
        (fun n ->
          let lo =
            List.fold_left
              (fun acc (e : Graph.edge) ->
                if e.distance = 0 then
                  match Hashtbl.find_opt lo_tbl e.src with
                  | Some l -> max acc (l + 1)
                  | None -> acc
                else acc)
              0 (Graph.predecessors g n)
          in
          Hashtbl.replace lo_tbl n lo)
        order;
      let vars = Hashtbl.create 16 in
      List.iter
        (fun n ->
          let dom =
            if Op.needs_memory (Graph.node g n).op then memory_tiles
            else tiles
          in
          let lo = Hashtbl.find lo_tbl n in
          let w = max 0 (horizon - lo) in
          let x = Array.map (fun _ -> Solver.new_var s) dom in
          let sv = Array.init w (fun _ -> Solver.new_var s) in
          let ge = Array.init w (fun _ -> Solver.new_var s) in
          let slot = Array.init ii (fun _ -> Solver.new_var s) in
          Hashtbl.replace vars n { dom; x; lo; s = sv; ge; slot };
          (* one tile, one cycle *)
          Card.exactly_one s (Array.to_list (Array.map Solver.pos x));
          Card.exactly_one s (Array.to_list (Array.map Solver.pos sv));
          (* order encoding: ge is a monotone staircase anchored at lo *)
          if w > 0 then Solver.add_clause s [ Solver.pos ge.(0) ];
          for i = 0 to w - 2 do
            Solver.add_clause s [ Solver.neg ge.(i + 1); Solver.pos ge.(i) ]
          done;
          for i = 0 to w - 1 do
            if i > 0 then
              Solver.add_clause s [ Solver.neg sv.(i); Solver.pos ge.(i) ];
            if i < w - 1 then
              Solver.add_clause s [ Solver.neg sv.(i); Solver.neg ge.(i + 1) ];
            (* channel cycle -> modulo slot *)
            Solver.add_clause s
              [ Solver.neg sv.(i); Solver.pos slot.((lo + i) mod ii) ]
          done)
        order;
      (* FU exclusivity: no two nodes on one tile in one modulo slot *)
      let rec pairs = function
        | [] -> ()
        | m :: rest ->
          let mv = Hashtbl.find vars m in
          List.iter
            (fun n ->
              let nv = Hashtbl.find vars n in
              Array.iteri
                (fun mi tile ->
                  Array.iteri
                    (fun ni tile' ->
                      if tile = tile' then
                        for k = 0 to ii - 1 do
                          Solver.add_clause s
                            [
                              Solver.neg mv.x.(mi);
                              Solver.neg nv.x.(ni);
                              Solver.neg mv.slot.(k);
                              Solver.neg nv.slot.(k);
                            ]
                        done)
                    nv.dom)
                mv.dom)
            rest;
          pairs rest
      in
      pairs order;
      (* Per-edge latency: t_v >= t_u + 1 + manhattan(u, v) - slack.
         The distance enters through order-encoded bounds DGE(e, d)
         ("endpoints at manhattan >= d"), implied by each tile pair and
         appearing only negatively below, so models never overstate
         distances. *)
      List.iter
        (fun (e : Graph.edge) ->
          let uv = Hashtbl.find vars e.src and vv = Hashtbl.find vars e.dst in
          let slack = slack_of g ~ii e in
          let dge =
            if e.src = e.dst then [||]
            else Array.init diameter (fun _ -> Solver.new_var s)
            (* dge.(i) = "manhattan >= i + 1" *)
          in
          if e.src <> e.dst then begin
            for i = 1 to diameter - 1 do
              Solver.add_clause s [ Solver.neg dge.(i); Solver.pos dge.(i - 1) ]
            done;
            Array.iteri
              (fun ui a ->
                Array.iteri
                  (fun vi b ->
                    let d = Cgra.manhattan cgra a b in
                    if d >= 1 then
                      Solver.add_clause s
                        [
                          Solver.neg uv.x.(ui);
                          Solver.neg vv.x.(vi);
                          Solver.pos dge.(d - 1);
                        ])
                  vv.dom)
              uv.dom
          end;
          let emit ~d ~dge_lit =
            Array.iteri
              (fun i _ ->
                let tu = uv.lo + i in
                let bound = tu + 1 + d - slack in
                if bound > vv.lo then begin
                  let tail =
                    if bound < horizon then
                      [ Solver.pos vv.ge.(bound - vv.lo) ]
                    else []
                  in
                  Solver.add_clause s
                    (dge_lit @ (Solver.neg uv.s.(i) :: tail))
                end)
              uv.s
          in
          emit ~d:0 ~dge_lit:[];
          Array.iteri
            (fun i v -> emit ~d:(i + 1) ~dge_lit:[ Solver.neg v ])
            dge)
        edges;
      Ok { solver = s; ii; horizon; order; vars }
    end

let decode t =
  List.map
    (fun n ->
      let nv = Hashtbl.find t.vars n in
      let tile = ref (-1) and time = ref (-1) in
      Array.iteri
        (fun i v -> if Solver.value t.solver v then tile := nv.dom.(i))
        nv.x;
      Array.iteri
        (fun i v -> if !time < 0 && Solver.value t.solver v then time := nv.lo + i)
        nv.s;
      (n, (!tile, !time)))
    t.order
  |> List.sort compare

let block t placements =
  let lits =
    List.concat_map
      (fun (n, (tile, time)) ->
        let nv = Hashtbl.find t.vars n in
        let xi = ref (-1) in
        Array.iteri (fun i tl -> if tl = tile then xi := i) nv.dom;
        [ Solver.neg nv.x.(!xi); Solver.neg nv.s.(time - nv.lo) ])
      placements
  in
  Solver.add_clause t.solver lits
