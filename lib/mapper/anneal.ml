open Iced_arch
open Iced_dfg
module Obs = Iced_obs.Trace
module Rng = Iced_util.Rng
open Engine

let cost_wait = Cost.default.Cost.wait

(* Cost charged per cycle by which an edge's deadline is infeasible
   (producer + distance cannot reach the consumer in time).  Large
   enough that annealing always prefers restoring feasibility over any
   wirelength saving, so infeasible intermediate states are transient. *)
let deficit_cost = 5_000

(* Estimated cost of one dependence given explicit endpoint
   coordinates: wirelength at router prices plus wait slack (mirroring
   the terms of {!Engine.cheap_cost}), or a steep penalty per missing
   cycle when the deadline is unmeetable. *)
let edge_cost state (e : Graph.edge) ~src_tile ~src_time ~dst_tile ~dst_time =
  let dist = Cgra.manhattan state.req.cgra src_tile dst_tile in
  let slack = dst_time + edge_slack state e - (src_time + dist + 1) in
  if slack < 0 then (Router.hop_cost * dist) + (deficit_cost * -slack)
  else (Router.hop_cost * dist) + (cost_wait * slack)

(* Total cost of [node]'s incident dependences with [node] at
   [(tile, time)] and every other endpoint at its current placement. *)
let incident state node tile time =
  let coord id = if id = node then (tile, time) else Hashtbl.find state.placements id in
  let pred_cost =
    List.fold_left
      (fun acc (e : Graph.edge) ->
        let src_tile, src_time = coord e.src in
        acc + edge_cost state e ~src_tile ~src_time ~dst_tile:tile ~dst_time:time)
      0
      (Graph.predecessors state.dfg node)
  in
  List.fold_left
    (fun acc (e : Graph.edge) ->
      let dst_tile, dst_time = coord e.dst in
      acc + edge_cost state e ~src_tile:tile ~src_time:time ~dst_tile ~dst_time)
    pred_cost
    (Graph.successors state.dfg node)

let place_untraced (p : Backend.sa_params) state order =
  (* Seed the annealer with a feasible routing-blind greedy placement:
     FU slots and memory constraints are satisfied from move zero, so
     every SA move preserves them by construction. *)
  match Greedy.place_all ~route:false state order with
  | Error _ as e -> e
  | Ok () ->
    let rng = Rng.create p.seed in
    let nodes = Array.of_list (Graph.node_ids state.dfg) in
    let eligible = Hashtbl.create (Array.length nodes) in
    Array.iter
      (fun node ->
        let op = (Graph.node state.dfg node).op in
        let memory_ok tile =
          (not (Op.needs_memory op)) || List.mem tile state.memory_tiles
        in
        let tiles =
          List.filter
            (fun tile ->
              memory_ok tile
              &&
              match committed_level state tile with
              | Some level -> Dvfs.at_most (label_of state node) level
              | None -> true)
            state.tiles
        in
        Hashtbl.replace eligible node (Array.of_list tiles))
      nodes;
    let stats = state.stats in
    let accept_move delta t =
      delta <= 0 || Rng.float rng 1.0 < exp (-.float_of_int delta /. t)
    in
    (* One seeded move: relocate a uniform node to a uniform eligible
       (tile, time-window slot), Metropolis-accepted at temperature
       [t].  Returns whether the move was accepted. *)
    let attempt_move t =
      let node = nodes.(Rng.int rng (Array.length nodes)) in
      let old_tile, old_time = Hashtbl.find state.placements node in
      let tiles = Hashtbl.find eligible node in
      if Array.length tiles = 0 then false
      else begin
        let tile = tiles.(Rng.int rng (Array.length tiles)) in
        let est, lst = time_window state node tile in
        let upper = min (est + state.ii - 1) lst in
        if upper < est then false
        else begin
          let time = est + Rng.int rng (upper - est + 1) in
          if tile = old_tile && time = old_time then false
          else begin
            release_fu state old_tile old_time;
            match reserve_fu state node tile time with
            | Error _ ->
              (match reserve_fu state node old_tile old_time with
              | Ok () -> ()
              | Error msg -> failwith ("Anneal: lost home slot: " ^ msg));
              false
            | Ok () ->
              let delta =
                incident state node tile time - incident state node old_tile old_time
              in
              if accept_move delta t then begin
                Hashtbl.replace state.placements node (tile, time);
                true
              end
              else begin
                release_fu state tile time;
                (match reserve_fu state node old_tile old_time with
                | Ok () -> ()
                | Error msg -> failwith ("Anneal: lost home slot: " ^ msg));
                false
              end
          end
        end
      end
    in
    (* DefaultSAWarm / DefaultSACool: multiply the temperature up until
       a batch's acceptance ratio reaches [warm_target], then cool it
       multiplicatively until it drops below [t_min] or the move budget
       runs out. *)
    let t = ref p.t_init in
    let warming = ref true in
    let total = ref 0 in
    let stop = ref false in
    while (not !stop) && !total < p.moves do
      let accepted = ref 0 in
      let batch = min p.batch (p.moves - !total) in
      for _ = 1 to batch do
        incr total;
        if attempt_move !t then begin
          incr accepted;
          stats.Telemetry.sa_moves_accepted <- stats.Telemetry.sa_moves_accepted + 1
        end
        else stats.Telemetry.sa_moves_rejected <- stats.Telemetry.sa_moves_rejected + 1
      done;
      stats.Telemetry.sa_temp_steps <- stats.Telemetry.sa_temp_steps + 1;
      let ratio = float_of_int !accepted /. float_of_int batch in
      if !warming then begin
        if ratio >= p.warm_target || !t > 1e7 then warming := false
        else t := !t *. p.warm_mult
      end
      else begin
        t := !t *. p.cool;
        if !t < p.t_min then stop := true
      end
    done;
    Ok ()

let place p state order =
  if not (Obs.enabled ()) then place_untraced p state order
  else
    Obs.with_span
      ~args:[ ("seed", Obs.Int p.Backend.seed) ]
      ~cat:"mapper" ~name:"sa"
      (fun () ->
        let r = place_untraced p state order in
        Obs.span_arg "accepted" (Obs.Int state.stats.Telemetry.sa_moves_accepted);
        Obs.span_arg "temp_steps" (Obs.Int state.stats.Telemetry.sa_temp_steps);
        (match r with
        | Ok () -> ()
        | Error msg -> Obs.span_arg "error" (Obs.Str msg));
        r)
