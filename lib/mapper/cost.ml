open Iced_arch

type strategy = Conventional | Dvfs_aware

type knobs = {
  island_affinity : bool;
      (* prefer islands whose tentative level matches the node label;
         open islands reluctantly *)
  packing : bool; (* pull slowable nodes onto busy tiles *)
  phase_alignment : bool;
      (* keep slowed islands' events on one clock phase *)
  conventional_fallback : bool;
      (* retry an II with the conventional cost model before bumping *)
}

let all_knobs =
  {
    island_affinity = true;
    packing = true;
    phase_alignment = true;
    conventional_fallback = true;
  }

(* Cost weights.  Routing dominates; DVFS terms bias island choice; the
   pack/spread term differentiates ICED from the conventional mapper. *)
type model = {
  wait : int;
  over_provision : int;
  open_island : int;
  island_raise : int;
  pack : int;
  spread : int;
  phase : int;
  route_misphase : int;
  route_open_island : int;
}

let default =
  {
    wait = 25;
    over_provision = 150;
    open_island = 250;
    island_raise = 5000;
    pack = 12;
    spread = 100;
    phase = 400;
    route_misphase = 300;
    route_open_island = 150;
  }

(* Congestion slack added to the anchor of dependent recurrence cycles
   (see [Estimate]).  Each II is attempted with every margin before the
   II is bumped. *)
let asap_margins = [ 2; 4; 8; 16; 28 ]

(* Committed-island mappings route rest-labeled chains through distant
   slow islands, so realized times run much further behind the
   estimates: give the anchor ladder more headroom. *)
let committed_margins = [ 4; 8; 16; 32; 48 ]

let rank = function
  | Dvfs.Power_gated -> 0
  | Dvfs.Rest -> 1
  | Dvfs.Relax -> 2
  | Dvfs.Normal -> 3
