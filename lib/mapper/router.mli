(** Dijkstra router over the MRRG (Algorithm 2 uses Dijkstra's
    algorithm to route data between mapped operations).

    The search space is (tile, absolute time): at each step a value may
    wait in the tile's bypass buffer (free of MRRG resources, tiny cost)
    or hop to a mesh neighbour, claiming the source tile's output port
    at the hop time.  A route succeeds when the value reaches the
    destination tile no later than the consumer's read deadline. *)

open Iced_dfg

val hop_cost : int
(** Cost of one hop (waits cost 1); exposed so the mapper's placement
    cost can weigh routing against its own terms. *)

type scratch
(** Reusable search arena: distance, parent, and visited-stamp arrays
    plus the frontier heap, sized to tiles x horizon.  Resetting between
    calls is O(1) (an epoch bump), so routing an edge through a shared
    scratch allocates nothing on the steady path — buffers grow only
    when a call needs a larger horizon than any before it. *)

val create_scratch : unit -> scratch
(** Empty arena; buffers are sized lazily by the first route through it.
    Not thread-safe — give each domain its own. *)

val route :
  ?extra_cost:(tile:int -> time:int -> int) ->
  ?hop_width:(int -> int) ->
  ?scratch:scratch ->
  ?stats:Telemetry.t ->
  Iced_mrrg.Mrrg.t ->
  edge:Graph.edge ->
  src_tile:int ->
  src_time:int ->
  dst_tile:int ->
  deadline:int ->
  (Mapping.hop list * int, string) result
(** Find and {e reserve} a minimum-cost route for [edge] departing the
    producer tile after [src_time] (the producer's execute cycle) and
    present at [dst_tile] by the end of [deadline].  Returns the hops
    (empty when producer and consumer share a tile) and the path cost.
    On [Error] nothing is reserved.

    [scratch] reuses a search arena across calls (a private one is made
    per call otherwise).  [stats] counts the call, its heap expansions,
    and a failure if no route exists. *)

val find_path :
  ?scratch:scratch ->
  ?stats:Telemetry.t ->
  port_cost:(tile:int -> dir:Iced_arch.Dir.t -> time:int -> int option) ->
  Iced_mrrg.Mrrg.t ->
  edge:Graph.edge ->
  src_tile:int ->
  src_time:int ->
  dst_tile:int ->
  deadline:int ->
  (Mapping.hop list * int, string) result
(** Cheapest path under caller-supplied port pricing, {e without}
    reserving anything.  [port_cost ~tile ~dir ~time] prices the output
    port slot a hop out of [tile] in direction [dir] arriving at [time]
    would claim — [None] forbids it (dead link), [Some extra] is added
    to {!hop_cost}.  This is the search the Pathfinder router runs once
    per edge per negotiation round, with present/history congestion
    folded into the pricing; settled routes are reserved by the caller.
    [stats] counts the call and its expansions like {!route}. *)

val release : Iced_mrrg.Mrrg.t -> Mapping.hop list -> Graph.edge -> unit
(** Undo a successful [route]'s reservations. *)
