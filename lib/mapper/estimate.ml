open Iced_dfg

type t = (int, int) Hashtbl.t

let build dfg ~ii ~margin ~topo =
  let cycles = Analysis.recurrence_cycles dfg in
  let cycle_sets = List.map (fun c -> c.Analysis.members) cycles in
  let same_cycle a b =
    List.exists (fun members -> List.mem a members && List.mem b members) cycle_sets
  in
  let on_cycle id = List.exists (fun members -> List.mem id members) cycle_sets in
  (* rank: does a cycle transitively consume another cycle's output
     through intra edges?  Approximated by: a cycle member has an
     intra ancestor on a different cycle. *)
  let cycle_rank =
    (* per-cycle, so every member of a dependent cycle shifts by the
       same amount and the cycle's internal 1-cycle spacing holds *)
    let ancestor_on_other_cycle id =
      let visited = Hashtbl.create 32 in
      let rec walk n =
        if Hashtbl.mem visited n then false
        else begin
          Hashtbl.add visited n ();
          List.exists
            (fun (e : Graph.edge) ->
              e.distance = 0
              && ((on_cycle e.src && not (same_cycle e.src id)) || walk e.src))
            (Graph.predecessors dfg n)
        end
      in
      walk id
    in
    let dependent_cycles =
      List.filter (fun members -> List.exists ancestor_on_other_cycle members) cycle_sets
    in
    fun id -> if List.exists (fun members -> List.mem id members) dependent_cycles then 1 else 0
  in
  let est : t = Hashtbl.create 64 in
  let get id = match Hashtbl.find_opt est id with Some v -> v | None -> 0 in
  for _sweep = 1 to 3 do
    List.iter
      (fun id ->
        let bound =
          List.fold_left
            (fun acc (e : Graph.edge) ->
              let step = if same_cycle e.src id then 1 else 2 in
              let b =
                if e.distance = 0 then get e.src + step
                else get e.src + 1 - (e.distance * ii)
              in
              max acc b)
            0
            (Graph.predecessors dfg id)
        in
        Hashtbl.replace est id bound)
      topo
  done;
  List.iter
    (fun id -> Hashtbl.replace est id (get id + (margin * cycle_rank id)))
    topo;
  est

let start est id = match Hashtbl.find_opt est id with Some v -> max 0 v | None -> 0
