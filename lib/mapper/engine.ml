open Iced_arch
open Iced_dfg
module Mrrg = Iced_mrrg.Mrrg

type strategy = Cost.strategy = Conventional | Dvfs_aware

type knobs = Cost.knobs = {
  island_affinity : bool;
  packing : bool;
  phase_alignment : bool;
  conventional_fallback : bool;
}

type request = {
  cgra : Cgra.t;
  strategy : strategy;
  backend : Backend.t;
      (* which placer/router pair the search orchestrates; the default
         greedy+Dijkstra pair is pinned by the golden corpus *)
  tiles : int list option;
  memory_tiles : int list option;
  label_floor : Dvfs.level;
  label_guard : int;
      (* fault guard band: raises Algorithm 1's floor this many levels
         so upset-prone islands keep voltage margin *)
  max_ii : int;
  knobs : knobs;
  cancel : unit -> bool;
  dead_tiles : int list;
      (* permanently faulted tiles, removed from the sub-fabric before
         placement (fault-aware remapping) *)
  dead_links : (int * Dir.t) list;
      (* faulted crossbar output ports, masked in the MRRG so routing
         plans around them *)
  commit_islands : bool;
      (* Figure 4 study: pre-commit every island to a level from the
         label quota before placement.  Nodes are then steered onto
         islands of exactly their label's level (falling back to faster
         islands only when none is feasible), a slowed tile's FU
         occupies multiplier-many modulo slots per op, and routing
         through a slowed tile takes multiplier-many cycles per hop —
         the capacity/latency loss that degrades the II for islands
         larger than 2x2. *)
}

let request ?(strategy = Dvfs_aware) ?(backend = Backend.default) ?tiles ?memory_tiles
    ?(label_floor = Dvfs.Rest) ?(label_guard = 0) ?(max_ii = 64)
    ?(knobs = Cost.all_knobs) ?(cancel = fun () -> false) ?(dead_tiles = [])
    ?(dead_links = []) ?(commit_islands = false) cgra =
  { cgra; strategy; backend; tiles; memory_tiles; label_floor; label_guard; max_ii;
    knobs; cancel; dead_tiles; dead_links; commit_islands }

let weights = Cost.default
let cost_wait = weights.Cost.wait
let cost_over_provision = weights.Cost.over_provision
let cost_open_island = weights.Cost.open_island
let cost_island_raise = weights.Cost.island_raise
let cost_pack = weights.Cost.pack
let cost_spread = weights.Cost.spread
let cost_phase = weights.Cost.phase
let cost_route_misphase = weights.Cost.route_misphase
let cost_route_open_island = weights.Cost.route_open_island

let rank = Cost.rank

type state = {
  dfg : Graph.t;
  req : request;
  tiles : int list;
  memory_tiles : int list;
  ii : int;
  labels : (int * Dvfs.level) list;
  estimate : Estimate.t;
  cycle_mates : (int, int list) Hashtbl.t;
      (* members of the longest recurrence cycle through each node *)
  mrrg : Mrrg.t;
  placements : (int, int * int) Hashtbl.t; (* node -> (tile, time) *)
  mutable routes : Mapping.route list;
  island_level : (int, Dvfs.level) Hashtbl.t; (* tentative, Dvfs_aware only *)
  committed : (int, Dvfs.level) Hashtbl.t option; (* island -> level, commit mode *)
  scratch : Router.scratch; (* shared routing arena, one per mapping run *)
  stats : Telemetry.t;
}

(* Values produced by Const nodes are iteration-invariant, so the
   consumer may read the copy produced [k] iterations earlier: their
   edges behave as if they carried extra loop distance.  (The simulator
   mirrors this by reading constants directly.) *)
let edge_slack state (e : Graph.edge) =
  let base = e.distance * state.ii in
  match (Graph.node state.dfg e.src).op with
  | Op.Const _ -> base + (2 * state.ii)
  | _ -> base

let label_of state node =
  match state.req.strategy with
  | Conventional -> Dvfs.Normal
  | Dvfs_aware -> (
    match List.assoc_opt node state.labels with Some l -> l | None -> Dvfs.Normal)

let busy_count state tile = Mrrg.busy_slot_count state.mrrg ~tile

(* Tentative level of an island while mapping; [None] = not opened. *)
let tentative_level state island = Hashtbl.find_opt state.island_level island

(* Commit-mode slot width of a tile: a slowed tile's op or hop covers
   multiplier-many base-clock slots (capacity loss).  The *latency* of
   slowed tiles is hidden by the elastic (latency-insensitive) bypass
   buffers — it only deepens the pipeline — so no timing term uses the
   multiplier. *)
let tile_width state tile =
  match state.committed with
  | None -> 1
  | Some table -> (
    match Hashtbl.find_opt table (Cgra.island_of state.req.cgra tile) with
    | Some level when Dvfs.is_active level -> Dvfs.multiplier level
    | Some _ | None -> 1)

let committed_level state tile =
  match state.committed with
  | None -> None
  | Some table -> Hashtbl.find_opt table (Cgra.island_of state.req.cgra tile)

(* The clock phase (mod m) an island's existing events agree on, if
   any: [`Empty] when the island has no events yet, [`Phase p] when all
   events fall on phase [p], [`Broken] when they already disagree (the
   island cannot be slowed, so alignment no longer matters). *)
let island_phase state island m =
  Mrrg.phase_of state.mrrg ~tiles:(Cgra.island_tiles state.req.cgra island) ~modulo:m

(* Phase-misalignment penalty for scheduling an event on [tile] at
   [time], given the tile's island intends to run slowed.  Only
   meaningful when the multiplier divides the II. *)
let phase_penalty state ~weight tile time =
  match state.req.strategy with
  | Conventional -> 0
  | Dvfs_aware when not state.req.knobs.phase_alignment -> 0
  | Dvfs_aware -> (
    let island = Cgra.island_of state.req.cgra tile in
    match tentative_level state island with
    | None | Some Dvfs.Normal | Some Dvfs.Power_gated -> 0
    | Some ((Dvfs.Relax | Dvfs.Rest) as level) ->
      let m = Dvfs.multiplier level in
      if state.ii mod m <> 0 then 0
      else (
        match island_phase state island m with
        | `Empty | `Broken -> 0
        | `Phase p -> if time mod m = p then 0 else weight))

(* Router hop penalty: stay out of unopened islands (they could be
   power-gated) and respect slowed islands' phases. *)
let route_extra_cost state ~tile ~time =
  match state.req.strategy with
  | Conventional -> 0
  | Dvfs_aware -> (
    let island = Cgra.island_of state.req.cgra tile in
    match tentative_level state island with
    | None -> cost_route_open_island
    | Some _ -> phase_penalty state ~weight:cost_route_misphase tile time)

(* Start-time window of [node] if placed on [tile].

   [hard] comes from already-placed producers (a true lower bound);
   [soft] additionally honours the node's precomputed schedule estimate
   so that, e.g., a critical phi is not pinned so early that its
   carried producer can never meet the deadline; [lst] is the latest
   start admissible given already-placed consumers.  The soft bound is
   only a guess, so it yields toward [hard] whenever honouring it would
   close the window against [lst]. *)
let time_window state node tile =
  let cgra = state.req.cgra in
  let hard = ref 0 in
  let lst = ref max_int in
  List.iter
    (fun (e : Graph.edge) ->
      match Hashtbl.find_opt state.placements e.src with
      | Some (src_tile, src_time) ->
        let dist = Cgra.manhattan cgra src_tile tile in
        let bound = src_time + dist + 1 - edge_slack state e in
        if bound > !hard then hard := bound
      | None -> ())
    (Graph.predecessors state.dfg node);
  List.iter
    (fun (e : Graph.edge) ->
      match Hashtbl.find_opt state.placements e.dst with
      | None -> ()
      | Some (dst_tile, dst_time) ->
        let dist = Cgra.manhattan cgra tile dst_tile in
        let bound = dst_time + edge_slack state e - dist - 1 in
        if bound < !lst then lst := bound)
    (Graph.successors state.dfg node);
  let hard = max 0 !hard in
  let soft = max hard (Estimate.start state.estimate node) in
  let est = if !lst <> max_int && soft > !lst then max hard (min soft !lst) else soft in
  (est, !lst)

(* Cheap lower-bound cost of a candidate placement, used to order full
   routing attempts. *)
let cheap_cost state node tile time =
  let cgra = state.req.cgra in
  let route_lb = ref 0 in
  List.iter
    (fun (e : Graph.edge) ->
      match Hashtbl.find_opt state.placements e.src with
      | None -> ()
      | Some (src_tile, src_time) ->
        let dist = Cgra.manhattan cgra src_tile tile in
        route_lb := !route_lb + (Router.hop_cost * dist);
        let slack = time + edge_slack state e - (src_time + dist + 1) in
        route_lb := !route_lb + (cost_wait * max 0 slack))
    (Graph.predecessors state.dfg node);
  List.iter
    (fun (e : Graph.edge) ->
      match Hashtbl.find_opt state.placements e.dst with
      | None -> ()
      | Some (dst_tile, _) ->
        route_lb := !route_lb + (Router.hop_cost * Cgra.manhattan cgra tile dst_tile))
    (Graph.successors state.dfg node);
  (* A recurrence cycle must usually close on one tile (hops cost 2
     cycles each); opening it on a tile that cannot seat its remaining
     members forces a split and a larger II. *)
  let capacity_penalty =
    match Hashtbl.find_opt state.cycle_mates node with
    | None -> 0
    | Some mates ->
      let unplaced =
        List.length (List.filter (fun m -> not (Hashtbl.mem state.placements m)) mates)
      in
      if busy_count state tile + unplaced > state.ii then 400 else 0
  in
  let strategy_cost =
    match state.req.strategy with
    | Conventional ->
      (* The conventional mapper balances load across the fabric (the
         paper: it "might assign two dependent DFG nodes onto two tiles
         that are far away from each other as long as the II is not
         violated"), except for recurrence-cycle nodes, which must stay
         packed to close their cycles.  The scattering is what leaves
         per-tile DVFS so little to power-gate. *)
      let on_cycle = Hashtbl.mem state.cycle_mates node in
      (if on_cycle then cost_pack else cost_spread) * busy_count state tile
    | Dvfs_aware -> (
      let island = Cgra.island_of cgra tile in
      let label = label_of state node in
      (* Packing and phase alignment only matter for nodes that might
         run slowed; biasing critical (normal-labeled) nodes with them
         costs II for no DVFS benefit. *)
      let bias =
        if label = Dvfs.Normal then 0
        else
          (if state.req.knobs.packing then -cost_pack * busy_count state tile else 0)
          + phase_penalty state ~weight:cost_phase tile time
      in
      if not state.req.knobs.island_affinity then bias
      else
        match tentative_level state island with
        | None -> cost_open_island + bias
        | Some assigned ->
          if rank label <= rank assigned then
            (cost_over_provision * (rank assigned - rank label)) + bias
          else cost_island_raise + bias)
  in
  !route_lb + strategy_cost + capacity_penalty

(* Route every dependence between [node] (placed at tile/time) and its
   already-placed neighbours, reserving MRRG ports.  On failure undo all
   reservations made here and report. *)
let route_incident state node tile time =
  let routed = ref [] in
  let undo () =
    List.iter
      (fun (r : Mapping.route) -> Router.release state.mrrg r.hops r.edge)
      !routed
  in
  let route_one (e : Graph.edge) ~src_tile ~src_time ~dst_tile ~dst_time =
    let deadline = dst_time + edge_slack state e - 1 in
    if src_tile = dst_tile && deadline >= src_time then begin
      routed := { Mapping.edge = e; hops = [] } :: !routed;
      Ok ()
    end
    else
      match
        Router.route
          ~extra_cost:(fun ~tile ~time -> route_extra_cost state ~tile ~time)
          ~hop_width:(fun tile -> tile_width state tile)
          ~scratch:state.scratch ~stats:state.stats state.mrrg ~edge:e ~src_tile
          ~src_time ~dst_tile ~deadline
      with
      | Ok (hops, _) ->
        routed := { Mapping.edge = e; hops } :: !routed;
        Ok ()
      | Error msg -> Error msg
  in
  let rec process = function
    | [] -> Ok ()
    | step :: rest -> ( match step () with Ok () -> process rest | Error msg -> Error msg)
  in
  let pred_steps =
    List.filter_map
      (fun (e : Graph.edge) ->
        match Hashtbl.find_opt state.placements e.src with
        | None -> None
        | Some (src_tile, src_time) ->
          Some (fun () -> route_one e ~src_tile ~src_time ~dst_tile:tile ~dst_time:time))
      (Graph.predecessors state.dfg node)
  in
  let succ_steps =
    List.filter_map
      (fun (e : Graph.edge) ->
        match Hashtbl.find_opt state.placements e.dst with
        | None -> None
        | Some (dst_tile, dst_time) ->
          Some (fun () -> route_one e ~src_tile:tile ~src_time:time ~dst_tile ~dst_time))
      (Graph.successors state.dfg node)
  in
  match process (pred_steps @ succ_steps) with
  | Ok () -> Ok !routed
  | Error msg ->
    undo ();
    Error msg

(* --- helpers shared by the non-default backends ------------------- *)

(* Width-aware FU reservation for a node (commit mode widens slowed
   tiles); mirrors the inline claim/rollback of the greedy placer. *)
let reserve_fu state node tile time =
  let width = tile_width state tile in
  let rec claim k =
    if k = width then Ok ()
    else
      match Mrrg.reserve state.mrrg ~tile ~time:(time + k) Mrrg.Fu (Mrrg.Op_node node) with
      | Ok () -> claim (k + 1)
      | Error _ as err ->
        for undo = 0 to k - 1 do
          Mrrg.release state.mrrg ~tile ~time:(time + undo) Mrrg.Fu
        done;
        err
  in
  claim 0

let release_fu state tile time =
  for k = 0 to tile_width state tile - 1 do
    Mrrg.release state.mrrg ~tile ~time:(time + k) Mrrg.Fu
  done

(* Recompute tentative island levels from a complete placement (the
   greedy placer maintains them move-by-move; the SA placer shuffles
   nodes freely and rebuilds them once before routing). *)
let rebuild_island_levels state =
  Hashtbl.reset state.island_level;
  match state.req.strategy with
  | Conventional -> ()
  | Dvfs_aware ->
    List.iter
      (fun node ->
        match Hashtbl.find_opt state.placements node with
        | None -> ()
        | Some (tile, _) ->
          let island = Cgra.island_of state.req.cgra tile in
          let label = label_of state node in
          (match Hashtbl.find_opt state.island_level island with
          | None -> Hashtbl.replace state.island_level island label
          | Some assigned ->
            if rank label > rank assigned then
              Hashtbl.replace state.island_level island label))
      (Graph.node_ids state.dfg)

(* Every dependence of a complete placement in one deterministic order
   (ascending producer id, then the producer's successor-edge order). *)
let all_deps state =
  List.concat_map
    (fun id -> Graph.successors state.dfg id)
    (Graph.node_ids state.dfg)

(* Route a complete placement edge-by-edge with the incremental
   Dijkstra router (first-come-first-served, no negotiation).  Used
   when an SA placement is paired with the [Incremental] router. *)
let route_complete state =
  let rec go = function
    | [] -> Ok ()
    | (e : Graph.edge) :: rest -> (
      match
        (Hashtbl.find_opt state.placements e.src, Hashtbl.find_opt state.placements e.dst)
      with
      | Some (src_tile, src_time), Some (dst_tile, dst_time) -> (
        let deadline = dst_time + edge_slack state e - 1 in
        if src_tile = dst_tile && deadline >= src_time then begin
          state.routes <- { Mapping.edge = e; hops = [] } :: state.routes;
          go rest
        end
        else
          match
            Router.route
              ~extra_cost:(fun ~tile ~time -> route_extra_cost state ~tile ~time)
              ~hop_width:(fun tile -> tile_width state tile)
              ~scratch:state.scratch ~stats:state.stats state.mrrg ~edge:e ~src_tile
              ~src_time ~dst_tile ~deadline
          with
          | Ok (hops, _) ->
            state.routes <- { Mapping.edge = e; hops } :: state.routes;
            go rest
          | Error msg -> Error msg)
      | _ -> Error (Printf.sprintf "edge n%d->n%d: endpoint unplaced" e.src e.dst))
  in
  go (all_deps state)
