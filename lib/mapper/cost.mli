(** Placement cost model: the weights and ladders Algorithm 2's greedy
    search minimizes, factored out so the search code (see {!Search})
    carries no magic numbers. *)

open Iced_arch

type strategy =
  | Conventional  (** utilization-oblivious baseline: balance load *)
  | Dvfs_aware  (** ICED: pack, respect labels, keep islands closable *)

type knobs = {
  island_affinity : bool;
      (** prefer islands whose tentative level matches the node label *)
  packing : bool;  (** pull slowable nodes onto busy tiles *)
  phase_alignment : bool;
      (** keep slowed islands' events on one clock phase *)
  conventional_fallback : bool;
      (** retry an II with the conventional cost model before bumping *)
}
(** Ablation switches for the DVFS-aware cost model (the bench's
    ablation study disables them one at a time). *)

val all_knobs : knobs
(** Every feature on — the production configuration. *)

type model = {
  wait : int;  (** per slack cycle a value idles in bypass buffers *)
  over_provision : int;
      (** per level of island speed surplus over the node's label *)
  open_island : int;  (** placing onto an island nothing uses yet *)
  island_raise : int;
      (** forcing an opened island above its tentative level *)
  pack : int;  (** discount per busy slot for packable nodes *)
  spread : int;
      (** conventional load-balance pressure per busy slot *)
  phase : int;  (** placement off a slowed island's clock phase *)
  route_misphase : int;  (** route hop off a slowed island's phase *)
  route_open_island : int;  (** route hop through an unopened island *)
}
(** Placement/routing cost weights.  Routing dominates ({!Router.hop_cost}
    per hop); DVFS terms bias island choice. *)

val default : model
(** The tuned production weights. *)

val asap_margins : int list
(** Congestion-slack ladder for the schedule estimates: each II is
    attempted with every margin before the II is bumped. *)

val committed_margins : int list
(** Roomier ladder for committed-island mappings, whose rest-labeled
    chains run far behind the estimates. *)

val rank : Dvfs.level -> int
(** Total order on levels, slowest first (Power_gated = 0 .. Normal = 3). *)
