type sa_params = {
  seed : int;
  moves : int;
  batch : int;
  t_init : float;
  t_min : float;
  warm_target : float;
  warm_mult : float;
  cool : float;
}

type pf_params = {
  max_rounds : int;
  present_base : int;
  present_growth : int;
  history_weight : int;
}

type placer = Greedy | Annealing of sa_params

type router = Incremental | Negotiated of pf_params

type t = { placer : placer; router : router }

let default_sa_params =
  {
    seed = 0x51ced;
    moves = 20_000;
    batch = 64;
    t_init = 64.0;
    t_min = 0.05;
    warm_target = 0.9;
    warm_mult = 1.5;
    cool = 0.92;
  }

let default_pf_params =
  { max_rounds = 24; present_base = 60; present_growth = 2; history_weight = 40 }

let default = { placer = Greedy; router = Incremental }
let sa = { placer = Annealing default_sa_params; router = Negotiated default_pf_params }
let pathfinder = { placer = Greedy; router = Negotiated default_pf_params }

let is_default t = t = default

let to_string t =
  match (t.placer, t.router) with
  | Greedy, Incremental -> "default"
  | Greedy, Negotiated _ -> "pathfinder"
  | Annealing p, Negotiated _ ->
    if p.seed = default_sa_params.seed then "sa" else Printf.sprintf "sa:%d" p.seed
  | Annealing p, Incremental -> Printf.sprintf "sa+dijkstra:%d" p.seed

let of_string s =
  match s with
  | "default" -> Ok default
  | "pathfinder" -> Ok pathfinder
  | "sa" -> Ok sa
  | _ -> (
    let seeded prefix =
      let n = String.length prefix in
      if String.length s > n && String.sub s 0 n = prefix then begin
        (* strict non-negative decimal, so to_string stays the exact
           inverse (no "-1", "0x2a", or "1_000" aliases) *)
        let digits = String.sub s n (String.length s - n) in
        if String.for_all (fun c -> c >= '0' && c <= '9') digits then
          int_of_string_opt digits
        else None
      end
      else None
    in
    match seeded "sa:" with
    | Some seed ->
      Ok { sa with placer = Annealing { default_sa_params with seed } }
    | None -> (
      match seeded "sa+dijkstra:" with
      | Some seed ->
        Ok { placer = Annealing { default_sa_params with seed }; router = Incremental }
      | None ->
        Error
          (Printf.sprintf
             "unknown mapper backend %S (expected default, sa, sa:<seed>, or pathfinder)"
             s)))

let names = [ "default"; "sa"; "pathfinder" ]
