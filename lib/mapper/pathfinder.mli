(** Pathfinder-style negotiated-congestion router.

    Routes every dependence of a {e complete} placement through
    {!Router.find_path} with congestion priced rather than forbidden:
    in each round every edge is ripped up and rerouted against the
    round's present-sharing cost plus the history cost accumulated on
    ports that keep overflowing, the present factor growing
    geometrically until every port slot has a single tenant.  Once the
    negotiation settles, routes are committed to the MRRG — the result
    carries zero residual congestion, so it passes
    {!Validate.check}/{!Mapping.to_mrrg} like any other backend's.
    Fails when an edge has no path within its deadline at all, or when
    [max_rounds] negotiation rounds cannot clear the overflow.

    Telemetry: rounds go to [pf_rounds], summed overused slot counts to
    [pf_overflow]. *)

val route_all : Backend.pf_params -> Engine.state -> (unit, string) result
(** Route all deps of the placement in [state], appending to
    [state.routes] and reserving MRRG ports on success.  Deterministic
    for a given placement and parameter set. *)
