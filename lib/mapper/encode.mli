(** CNF encoding of modulo-scheduled place-and-route at a fixed II.

    The encoding is the {e necessary-condition relaxation} the exact
    oracle ({!Exact.certify}) refutes IIs with: every valid mapping at
    II (in the sense of {!Validate.check}) induces a satisfying
    assignment, so [Unsat] proves the II infeasible.  A model fixes a
    tile and an absolute cycle per node such that

    - every node sits on one allowed tile (memory ops on memory tiles);
    - no two nodes share a tile in the same modulo slot (FU
      exclusivity in {!Mrrg} terms);
    - every dependence [u -> v] with distance [d] satisfies
      [time v + slack >= time u + 1 + manhattan(tile u, tile v)] with
      [slack = d * ii] ([(d + 2) * ii] from [Const] producers),
      matching {!Router}'s deadline and {!Validate.check}'s per-edge
      latency rule with the Manhattan distance as the hop lower bound.

    Port capacity along routes is {e not} encoded; {!Exact} closes that
    gap by routing each decoded model with the real {!Router} and
    blocking models whose placements are not routable (CEGAR).

    Variable numbering (documented for docs/EXACT_ORACLE.md and the
    DIMACS-minded): variables are allocated node by node in
    intra-topological order — first the tile choices [X(n, tile)] over
    the node's allowed tiles, then schedule indicators [S(n, t)] for
    each cycle in the node's window, order-encoding bounds [GE(n, t)]
    ("time of n >= t") and modulo-slot indicators [SLOT(n, s)] — then
    per-edge distance bounds [DGE(e, d)] ("manhattan of e's endpoints
    >= d"), with cardinality auxiliaries interleaved where the
    exactly-one constraints are emitted. *)

open Iced_arch
open Iced_dfg

type t

val build : Cgra.t -> Graph.t -> ii:int -> (t, string) result
(** Clausify the relaxation.  [Error] only for structural reasons
    (intra-iteration cycle, or a schedule horizon beyond the size cap);
    an over-constrained instance (e.g. a memory op with no memory tile)
    builds fine and is simply unsatisfiable. *)

val solver : t -> Iced_sat.Solver.t
val horizon : t -> int
(** Exclusive upper bound on schedule times: any feasible mapping can
    be retimed (uniform shift plus per-node tightening to the least
    solution of the latency constraints) to fit below it. *)

val decode : t -> (int * (int * int)) list
(** [(node, (tile, time))] per node, sorted by node id — read directly
    after a [Sat] answer, before touching the solver again. *)

val block : t -> (int * (int * int)) list -> unit
(** Forbid exactly this placement-and-schedule (CEGAR refinement after
    a routing failure). *)
