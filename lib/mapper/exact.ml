open Iced_arch
open Iced_dfg
module Mrrg = Iced_mrrg.Mrrg
module Obs = Iced_obs.Trace
module Solver = Iced_sat.Solver

type verdict =
  | Optimal of int
  | Infeasible
  | Unknown of { first_undecided : int; feasible_at : int option }

type ii_outcome = Ii_feasible | Ii_refuted | Ii_budget

type report = {
  verdict : verdict;
  witness : Mapping.t option;
  per_ii : (int * ii_outcome) list;
  start_ii : int;
  max_ii : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  route_blocks : int;
  vars : int;
  clauses : int;
}

exception Found
exception Budget

(* Depth-first search over placements in topological order, routing
   every edge to already-placed neighbours as we go (so infeasible
   partial placements are pruned immediately). *)
let feasible cgra g ~ii ~budget =
  match Graph.intra_topological g with
  | None -> `No
  | Some order ->
    let tiles = List.init (Cgra.tile_count cgra) (fun i -> i) in
    let memory_tiles = Cgra.memory_tiles cgra in
    (* Two modulo periods plus the mesh diameter past the earliest
       start.  One period alone is not enough: a later slot in the
       same congruence class leaves more room for routing detours, so
       truncating at [est + ii - 1] falsely rules out low IIs on
       fabrics where routes contend. *)
    let horizon ~est ii =
      est + (2 * ii) - 1 + (cgra.Cgra.rows - 1) + (cgra.Cgra.cols - 1)
    in
    let mrrg = Mrrg.create cgra ~ii in
    let placements : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
    let attempts = ref 0 in
    let slack (e : Graph.edge) =
      match (Graph.node g e.src).op with
      | Op.Const _ -> (e.distance + 2) * ii
      | _ -> e.distance * ii
    in
    (* time window for [node] on [tile] given current placements;
       [anchored] records whether any placed neighbour constrained it *)
    let window node tile =
      let est = ref 0 and lst = ref max_int and anchored = ref false in
      List.iter
        (fun (e : Graph.edge) ->
          match Hashtbl.find_opt placements e.src with
          | Some (src_tile, src_time) ->
            let d = Cgra.manhattan cgra src_tile tile in
            est := max !est (src_time + d + 1 - slack e);
            anchored := true
          | None -> ())
        (Graph.predecessors g node);
      List.iter
        (fun (e : Graph.edge) ->
          match Hashtbl.find_opt placements e.dst with
          | Some (dst_tile, dst_time) ->
            let d = Cgra.manhattan cgra tile dst_tile in
            lst := min !lst (dst_time + slack e - d - 1);
            anchored := true
          | None -> ())
        (Graph.successors g node);
      (max 0 !est, !lst, !anchored)
    in
    let has_carried_pred node =
      List.exists
        (fun (e : Graph.edge) -> e.distance > 0)
        (Graph.predecessors g node)
    in
    let route_incident node tile time =
      let routed = ref [] in
      let undo () =
        List.iter (fun (hops, e) -> Router.release mrrg hops e) !routed
      in
      let one (e : Graph.edge) ~src_tile ~src_time ~dst_tile ~dst_time =
        let deadline = dst_time + slack e - 1 in
        if src_tile = dst_tile then deadline >= src_time
        else
          match Router.route mrrg ~edge:e ~src_tile ~src_time ~dst_tile ~deadline with
          | Ok (hops, _) ->
            routed := (hops, e) :: !routed;
            true
          | Error _ -> false
      in
      let ok =
        List.for_all
          (fun (e : Graph.edge) ->
            match Hashtbl.find_opt placements e.src with
            | None -> true
            | Some (src_tile, src_time) ->
              one e ~src_tile ~src_time ~dst_tile:tile ~dst_time:time)
          (Graph.predecessors g node)
        && List.for_all
             (fun (e : Graph.edge) ->
               match Hashtbl.find_opt placements e.dst with
               | None -> true
               | Some (dst_tile, dst_time) ->
                 one e ~src_tile:tile ~src_time:time ~dst_tile ~dst_time)
             (Graph.successors g node)
      in
      if ok then `Routed !routed
      else begin
        undo ();
        `Failed
      end
    in
    let rec search = function
      | [] -> raise Found
      | node :: rest ->
        let op = (Graph.node g node).op in
        let eligible =
          if Op.needs_memory op then memory_tiles else tiles
        in
        List.iter
          (fun tile ->
            let est, lst, anchored = window node tile in
            (* An unanchored node with no carried in-edge can be
               shift-normalised: moving it a whole period earlier
               keeps the same modulo resource footprint and only
               relaxes its (future) neighbours' constraints, so one
               period of start times is exhaustive.  Anchored nodes
               need the wider horizon: a later slot in the same
               congruence class buys routing-deadline headroom. *)
            let upper =
              if anchored || has_carried_pred node then
                min (horizon ~est ii) lst
              else min (est + ii - 1) lst
            in
            let rec times t =
              if t > upper then ()
              else begin
                incr attempts;
                if !attempts > budget then raise Budget;
                if Mrrg.is_free mrrg ~tile ~time:t Mrrg.Fu then begin
                  (match Mrrg.reserve mrrg ~tile ~time:t Mrrg.Fu (Mrrg.Op_node node) with
                  | Error _ -> ()
                  | Ok () ->
                    (match route_incident node tile t with
                    | `Routed routed ->
                      Hashtbl.replace placements node (tile, t);
                      search rest;
                      Hashtbl.remove placements node;
                      List.iter (fun (hops, e) -> Router.release mrrg hops e) routed
                    | `Failed -> ());
                    Mrrg.release mrrg ~tile ~time:t Mrrg.Fu)
                end;
                times (t + 1)
              end
            in
            times est)
          eligible
    in
    (try
       search order;
       `No
     with
    | Found -> `Yes
    | Budget -> `Budget)

let verdict_of ~first_undecided ~feasible_at =
  match (first_undecided, feasible_at) with
  | None, Some ii -> Optimal ii
  | None, None -> Infeasible
  | Some k, fa -> Unknown { first_undecided = k; feasible_at = fa }

let minimal_ii ?(max_ii = 16) ?(budget = 200_000) cgra g =
  match Graph.validate g with
  | Error _ -> Infeasible
  | Ok () ->
    if Graph.node_count g = 0 then Infeasible
    else begin
      let start = Analysis.min_ii g ~tiles:(Cgra.tile_count cgra) in
      let rec try_ii ii first_undecided =
        if ii > max_ii then verdict_of ~first_undecided ~feasible_at:None
        else
          match feasible cgra g ~ii ~budget with
          | `Yes ->
            (* A mapping exists at [ii], but if a lower II ran out of
               budget its infeasibility was never proven, so claiming
               optimality here would be unsound. *)
            verdict_of ~first_undecided ~feasible_at:(Some ii)
          | `No -> try_ii (ii + 1) first_undecided
          | `Budget ->
            try_ii (ii + 1)
              (match first_undecided with None -> Some ii | some -> some)
      in
      try_ii start None
    end

(* ------------------------------------------------------------------ *)
(* SAT-backed certification                                           *)
(* ------------------------------------------------------------------ *)

let slack_of g ~ii (e : Graph.edge) =
  match (Graph.node g e.src).op with
  | Op.Const _ -> (e.distance + 2) * ii
  | _ -> e.distance * ii

(* Realize a decoded placement-and-schedule as a full mapping by
   reserving FUs and routing every cross-tile edge with the real
   router (tightest deadlines first), exactly the resource model
   {!Validate.check} checks against. *)
let route_model ?stats cgra g ~ii placements =
  let mrrg = Mrrg.create cgra ~ii in
  let tbl = Hashtbl.create 16 in
  List.iter (fun (n, pt) -> Hashtbl.replace tbl n pt) placements;
  let reserve_ok =
    List.for_all
      (fun (n, (tile, time)) ->
        match Mrrg.reserve mrrg ~tile ~time Mrrg.Fu (Mrrg.Op_node n) with
        | Ok () -> true
        | Error _ -> false)
      placements
  in
  if not reserve_ok then Error "double-booked FU"
  else begin
    let edges =
      Graph.edges g
      |> List.filter_map (fun (e : Graph.edge) ->
             let src_tile, src_time = Hashtbl.find tbl e.src in
             let dst_tile, dst_time = Hashtbl.find tbl e.dst in
             if src_tile = dst_tile then None
             else
               let deadline = dst_time + slack_of g ~ii e - 1 in
               let laxity =
                 deadline - (src_time + Cgra.manhattan cgra src_tile dst_tile)
               in
               Some (laxity, e, src_tile, src_time, dst_tile, deadline))
      |> List.sort
           (fun (la, (a : Graph.edge), _, _, _, _)
                (lb, (b : Graph.edge), _, _, _, _) ->
             compare
               (la, a.src, a.dst, a.distance)
               (lb, b.src, b.dst, b.distance))
    in
    let rec route_all acc = function
      | [] -> Ok (List.rev acc)
      | (_, e, src_tile, src_time, dst_tile, deadline) :: rest -> (
        match
          Router.route ?stats mrrg ~edge:e ~src_tile ~src_time ~dst_tile
            ~deadline
        with
        | Ok (hops, _) ->
          route_all ({ Mapping.edge = e; hops } :: acc) rest
        | Error msg -> Error msg)
    in
    match route_all [] edges with
    | Error _ as e -> e
    | Ok routes ->
      let mapping =
        {
          Mapping.dfg = g;
          cgra;
          ii;
          tiles = List.init (Cgra.tile_count cgra) (fun i -> i);
          memory_tiles = Cgra.memory_tiles cgra;
          placements;
          routes;
          labels =
            List.map (fun id -> (id, Dvfs.Normal)) (Graph.node_ids g);
          island_levels =
            List.map (fun i -> (i, Dvfs.Normal)) (Cgra.islands cgra);
        }
      in
      (* The witness must stand on its own: re-check it end to end. *)
      (match Validate.check mapping with
      | Ok () -> Ok mapping
      | Error msgs ->
        Error ("witness validation: " ^ String.concat "; " msgs))
  end

type cegar = {
  mutable route_blocks : int;
  mutable vars : int;
  mutable clauses : int;
}

(* Each routing failure refines the CNF by one blocked model.  On
   kernels whose port congestion the relaxation cannot see, refuting a
   placement costs almost no conflicts, so the conflict budget alone
   would let the loop churn through tens of thousands of near-identical
   models; rounds are therefore capped separately. *)
let max_route_blocks_per_ii = 1_000

(* Decide one II: build the relaxation, then alternate solving and
   routing until a model routes, the CNF is refuted, or the conflict
   budget is spent. *)
let decide_ii ?stats cgra g ~ii ~budget ~seed (c : cegar) =
  match Encode.build cgra g ~ii with
  | Error _ ->
    (* structurally too large to encode: undecided, like a budget *)
    ( `Budget,
      {
        Solver.conflicts = 0;
        decisions = 0;
        propagations = 0;
        restarts = 0;
        learned = 0;
      } )
  | Ok enc ->
    let s = Encode.solver enc in
    let start_conflicts = (Solver.stats s).Solver.conflicts in
    let rec loop blocks =
      let spent = (Solver.stats s).Solver.conflicts - start_conflicts in
      let remaining = budget - spent in
      if remaining <= 0 || blocks >= max_route_blocks_per_ii then `Budget
      else
        match Solver.solve ~budget:remaining ~seed s with
        | Solver.Unsat -> `Refuted
        | Solver.Unknown -> `Budget
        | Solver.Sat -> (
          let placements = Encode.decode enc in
          match route_model ?stats cgra g ~ii placements with
          | Ok mapping -> `Feasible mapping
          | Error _ ->
            c.route_blocks <- c.route_blocks + 1;
            Encode.block enc placements;
            loop (blocks + 1))
    in
    let outcome = loop 0 in
    c.vars <- max c.vars (Solver.var_count s);
    c.clauses <- max c.clauses (Solver.clause_count s);
    (match stats with
    | Some (t : Telemetry.t) ->
      let st = Solver.stats s in
      t.Telemetry.sat_conflicts <-
        t.Telemetry.sat_conflicts + st.Solver.conflicts;
      t.Telemetry.sat_decisions <-
        t.Telemetry.sat_decisions + st.Solver.decisions;
      t.Telemetry.sat_propagations <-
        t.Telemetry.sat_propagations + st.Solver.propagations
    | None -> ());
    (outcome, Solver.stats s)

let certify ?(max_ii = 16) ?(budget_conflicts = 100_000) ?(seed = 0) ?stats
    cgra g =
  let t0 = Unix.gettimeofday () in
  let c = { route_blocks = 0; vars = 0; clauses = 0 } in
  let conflicts = ref 0
  and decisions = ref 0
  and propagations = ref 0
  and restarts = ref 0 in
  let start_ii =
    if Graph.node_count g = 0 then 1
    else Analysis.min_ii g ~tiles:(Cgra.tile_count cgra)
  in
  let finish ~verdict ~witness ~per_ii =
    {
      verdict;
      witness;
      per_ii = List.rev per_ii;
      start_ii;
      max_ii;
      conflicts = !conflicts;
      decisions = !decisions;
      propagations = !propagations;
      restarts = !restarts;
      route_blocks = c.route_blocks;
      vars = c.vars;
      clauses = c.clauses;
    }
  in
  let compute () =
    match Graph.validate g with
    | Error _ -> finish ~verdict:Infeasible ~witness:None ~per_ii:[]
    | Ok () ->
      if Graph.node_count g = 0 then
        finish ~verdict:Infeasible ~witness:None ~per_ii:[]
      else begin
        let rec try_ii ii first_undecided per_ii =
          if ii > max_ii then
            finish
              ~verdict:(verdict_of ~first_undecided ~feasible_at:None)
              ~witness:None ~per_ii
          else begin
            let one () =
              decide_ii ?stats cgra g ~ii ~budget:budget_conflicts ~seed c
            in
            let outcome, (st : Solver.stats) =
              if not (Obs.enabled ()) then one ()
              else
                Obs.with_span
                  ~args:[ ("ii", Obs.Int ii) ]
                  ~cat:"exact" ~name:"ii"
                  (fun () ->
                    let ((o, st) as r) = one () in
                    Obs.span_arg "conflicts" (Obs.Int st.Solver.conflicts);
                    Obs.span_arg "outcome"
                      (Obs.Str
                         (match o with
                         | `Feasible _ -> "feasible"
                         | `Refuted -> "refuted"
                         | `Budget -> "budget"));
                    r)
            in
            conflicts := !conflicts + st.Solver.conflicts;
            decisions := !decisions + st.Solver.decisions;
            propagations := !propagations + st.Solver.propagations;
            restarts := !restarts + st.Solver.restarts;
            match outcome with
            | `Feasible mapping ->
              let verdict =
                verdict_of ~first_undecided ~feasible_at:(Some ii)
              in
              let witness =
                match verdict with Optimal _ -> Some mapping | _ -> None
              in
              finish ~verdict ~witness ~per_ii:((ii, Ii_feasible) :: per_ii)
            | `Refuted ->
              try_ii (ii + 1) first_undecided ((ii, Ii_refuted) :: per_ii)
            | `Budget ->
              try_ii (ii + 1)
                (match first_undecided with None -> Some ii | some -> some)
                ((ii, Ii_budget) :: per_ii)
          end
        in
        try_ii start_ii None []
      end
  in
  let report =
    if not (Obs.enabled ()) then compute ()
    else
      Obs.with_span
        ~args:[ ("nodes", Obs.Int (Graph.node_count g)) ]
        ~cat:"exact" ~name:"certify"
        (fun () ->
          let r = compute () in
          (match r.verdict with
          | Optimal ii -> Obs.span_arg "optimal_ii" (Obs.Int ii)
          | Infeasible -> Obs.span_arg "verdict" (Obs.Str "infeasible")
          | Unknown { first_undecided; _ } ->
            Obs.span_arg "first_undecided" (Obs.Int first_undecided));
          Obs.span_arg "conflicts" (Obs.Int r.conflicts);
          r)
  in
  (match stats with
  | Some (t : Telemetry.t) ->
    t.Telemetry.wall_s <- t.Telemetry.wall_s +. (Unix.gettimeofday () -. t0)
  | None -> ());
  Iced_obs.Metrics.incr "exact.certify_runs";
  Iced_obs.Metrics.incr ~by:report.conflicts "exact.sat_conflicts";
  report
