open Iced_arch
open Iced_dfg
module Mrrg = Iced_mrrg.Mrrg

type verdict = Optimal of int | Infeasible | Unknown

exception Found
exception Budget

(* Depth-first search over placements in topological order, routing
   every edge to already-placed neighbours as we go (so infeasible
   partial placements are pruned immediately). *)
let feasible cgra g ~ii ~budget =
  match Graph.intra_topological g with
  | None -> `No
  | Some order ->
    let tiles = List.init (Cgra.tile_count cgra) (fun i -> i) in
    let memory_tiles = Cgra.memory_tiles cgra in
    (* Two modulo periods plus the mesh diameter past the earliest
       start.  One period alone is not enough: a later slot in the
       same congruence class leaves more room for routing detours, so
       truncating at [est + ii - 1] falsely rules out low IIs on
       fabrics where routes contend. *)
    let horizon ~est ii =
      est + (2 * ii) - 1 + (cgra.Cgra.rows - 1) + (cgra.Cgra.cols - 1)
    in
    let mrrg = Mrrg.create cgra ~ii in
    let placements : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
    let attempts = ref 0 in
    let slack (e : Graph.edge) =
      match (Graph.node g e.src).op with
      | Op.Const _ -> (e.distance + 2) * ii
      | _ -> e.distance * ii
    in
    (* time window for [node] on [tile] given current placements;
       [anchored] records whether any placed neighbour constrained it *)
    let window node tile =
      let est = ref 0 and lst = ref max_int and anchored = ref false in
      List.iter
        (fun (e : Graph.edge) ->
          match Hashtbl.find_opt placements e.src with
          | Some (src_tile, src_time) ->
            let d = Cgra.manhattan cgra src_tile tile in
            est := max !est (src_time + d + 1 - slack e);
            anchored := true
          | None -> ())
        (Graph.predecessors g node);
      List.iter
        (fun (e : Graph.edge) ->
          match Hashtbl.find_opt placements e.dst with
          | Some (dst_tile, dst_time) ->
            let d = Cgra.manhattan cgra tile dst_tile in
            lst := min !lst (dst_time + slack e - d - 1);
            anchored := true
          | None -> ())
        (Graph.successors g node);
      (max 0 !est, !lst, !anchored)
    in
    let has_carried_pred node =
      List.exists
        (fun (e : Graph.edge) -> e.distance > 0)
        (Graph.predecessors g node)
    in
    let route_incident node tile time =
      let routed = ref [] in
      let undo () =
        List.iter (fun (hops, e) -> Router.release mrrg hops e) !routed
      in
      let one (e : Graph.edge) ~src_tile ~src_time ~dst_tile ~dst_time =
        let deadline = dst_time + slack e - 1 in
        if src_tile = dst_tile then deadline >= src_time
        else
          match Router.route mrrg ~edge:e ~src_tile ~src_time ~dst_tile ~deadline with
          | Ok (hops, _) ->
            routed := (hops, e) :: !routed;
            true
          | Error _ -> false
      in
      let ok =
        List.for_all
          (fun (e : Graph.edge) ->
            match Hashtbl.find_opt placements e.src with
            | None -> true
            | Some (src_tile, src_time) ->
              one e ~src_tile ~src_time ~dst_tile:tile ~dst_time:time)
          (Graph.predecessors g node)
        && List.for_all
             (fun (e : Graph.edge) ->
               match Hashtbl.find_opt placements e.dst with
               | None -> true
               | Some (dst_tile, dst_time) ->
                 one e ~src_tile:tile ~src_time:time ~dst_tile ~dst_time)
             (Graph.successors g node)
      in
      if ok then `Routed !routed
      else begin
        undo ();
        `Failed
      end
    in
    let rec search = function
      | [] -> raise Found
      | node :: rest ->
        let op = (Graph.node g node).op in
        let eligible =
          if Op.needs_memory op then memory_tiles else tiles
        in
        List.iter
          (fun tile ->
            let est, lst, anchored = window node tile in
            (* An unanchored node with no carried in-edge can be
               shift-normalised: moving it a whole period earlier
               keeps the same modulo resource footprint and only
               relaxes its (future) neighbours' constraints, so one
               period of start times is exhaustive.  Anchored nodes
               need the wider horizon: a later slot in the same
               congruence class buys routing-deadline headroom. *)
            let upper =
              if anchored || has_carried_pred node then
                min (horizon ~est ii) lst
              else min (est + ii - 1) lst
            in
            let rec times t =
              if t > upper then ()
              else begin
                incr attempts;
                if !attempts > budget then raise Budget;
                if Mrrg.is_free mrrg ~tile ~time:t Mrrg.Fu then begin
                  (match Mrrg.reserve mrrg ~tile ~time:t Mrrg.Fu (Mrrg.Op_node node) with
                  | Error _ -> ()
                  | Ok () ->
                    (match route_incident node tile t with
                    | `Routed routed ->
                      Hashtbl.replace placements node (tile, t);
                      search rest;
                      Hashtbl.remove placements node;
                      List.iter (fun (hops, e) -> Router.release mrrg hops e) routed
                    | `Failed -> ());
                    Mrrg.release mrrg ~tile ~time:t Mrrg.Fu)
                end;
                times (t + 1)
              end
            in
            times est)
          eligible
    in
    (try
       search order;
       `No
     with
    | Found -> `Yes
    | Budget -> `Budget)

let minimal_ii ?(max_ii = 16) ?(budget = 200_000) cgra g =
  match Graph.validate g with
  | Error _ -> Infeasible
  | Ok () ->
    if Graph.node_count g = 0 then Infeasible
    else begin
      let start = Analysis.min_ii g ~tiles:(Cgra.tile_count cgra) in
      let rec try_ii ii hit_budget =
        if ii > max_ii then if hit_budget then Unknown else Infeasible
        else
          match feasible cgra g ~ii ~budget with
          | `Yes ->
            (* A mapping exists at [ii], but if a lower II ran out of
               budget its infeasibility was never proven, so claiming
               optimality here would be unsound. *)
            if hit_budget then Unknown else Optimal ii
          | `No -> try_ii (ii + 1) hit_budget
          | `Budget -> try_ii (ii + 1) true
      in
      try_ii start false
    end
