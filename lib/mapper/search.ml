open Iced_arch
open Iced_dfg
module Mrrg = Iced_mrrg.Mrrg
module Obs = Iced_obs.Trace

type strategy = Cost.strategy = Conventional | Dvfs_aware

type knobs = Cost.knobs = {
  island_affinity : bool;
  packing : bool;
  phase_alignment : bool;
  conventional_fallback : bool;
}

type request = {
  cgra : Cgra.t;
  strategy : strategy;
  tiles : int list option;
  memory_tiles : int list option;
  label_floor : Dvfs.level;
  label_guard : int;
      (* fault guard band: raises Algorithm 1's floor this many levels
         so upset-prone islands keep voltage margin *)
  max_ii : int;
  knobs : knobs;
  cancel : unit -> bool;
  dead_tiles : int list;
      (* permanently faulted tiles, removed from the sub-fabric before
         placement (fault-aware remapping) *)
  dead_links : (int * Dir.t) list;
      (* faulted crossbar output ports, masked in the MRRG so routing
         plans around them *)
  commit_islands : bool;
      (* Figure 4 study: pre-commit every island to a level from the
         label quota before placement.  Nodes are then steered onto
         islands of exactly their label's level (falling back to faster
         islands only when none is feasible), a slowed tile's FU
         occupies multiplier-many modulo slots per op, and routing
         through a slowed tile takes multiplier-many cycles per hop —
         the capacity/latency loss that degrades the II for islands
         larger than 2x2. *)
}

let request ?(strategy = Dvfs_aware) ?tiles ?memory_tiles ?(label_floor = Dvfs.Rest)
    ?(label_guard = 0) ?(max_ii = 64) ?(knobs = Cost.all_knobs)
    ?(cancel = fun () -> false) ?(dead_tiles = []) ?(dead_links = [])
    ?(commit_islands = false) cgra =
  { cgra; strategy; tiles; memory_tiles; label_floor; label_guard; max_ii; knobs; cancel;
    dead_tiles; dead_links; commit_islands }

let weights = Cost.default
let cost_wait = weights.Cost.wait
let cost_over_provision = weights.Cost.over_provision
let cost_open_island = weights.Cost.open_island
let cost_island_raise = weights.Cost.island_raise
let cost_pack = weights.Cost.pack
let cost_spread = weights.Cost.spread
let cost_phase = weights.Cost.phase
let cost_route_misphase = weights.Cost.route_misphase
let cost_route_open_island = weights.Cost.route_open_island

let rank = Cost.rank

type state = {
  dfg : Graph.t;
  req : request;
  tiles : int list;
  memory_tiles : int list;
  ii : int;
  labels : (int * Dvfs.level) list;
  estimate : Estimate.t;
  cycle_mates : (int, int list) Hashtbl.t;
      (* members of the longest recurrence cycle through each node *)
  mrrg : Mrrg.t;
  placements : (int, int * int) Hashtbl.t; (* node -> (tile, time) *)
  mutable routes : Mapping.route list;
  island_level : (int, Dvfs.level) Hashtbl.t; (* tentative, Dvfs_aware only *)
  committed : (int, Dvfs.level) Hashtbl.t option; (* island -> level, commit mode *)
  scratch : Router.scratch; (* shared routing arena, one per mapping run *)
  stats : Telemetry.t;
}

(* Values produced by Const nodes are iteration-invariant, so the
   consumer may read the copy produced [k] iterations earlier: their
   edges behave as if they carried extra loop distance.  (The simulator
   mirrors this by reading constants directly.) *)
let edge_slack state (e : Graph.edge) =
  let base = e.distance * state.ii in
  match (Graph.node state.dfg e.src).op with
  | Op.Const _ -> base + (2 * state.ii)
  | _ -> base

let label_of state node =
  match state.req.strategy with
  | Conventional -> Dvfs.Normal
  | Dvfs_aware -> (
    match List.assoc_opt node state.labels with Some l -> l | None -> Dvfs.Normal)

let busy_count state tile = Mrrg.busy_slot_count state.mrrg ~tile

(* Tentative level of an island while mapping; [None] = not opened. *)
let tentative_level state island = Hashtbl.find_opt state.island_level island

(* Commit-mode slot width of a tile: a slowed tile's op or hop covers
   multiplier-many base-clock slots (capacity loss).  The *latency* of
   slowed tiles is hidden by the elastic (latency-insensitive) bypass
   buffers — it only deepens the pipeline — so no timing term uses the
   multiplier. *)
let tile_width state tile =
  match state.committed with
  | None -> 1
  | Some table -> (
    match Hashtbl.find_opt table (Cgra.island_of state.req.cgra tile) with
    | Some level when Dvfs.is_active level -> Dvfs.multiplier level
    | Some _ | None -> 1)

let committed_level state tile =
  match state.committed with
  | None -> None
  | Some table -> Hashtbl.find_opt table (Cgra.island_of state.req.cgra tile)

(* The clock phase (mod m) an island's existing events agree on, if
   any: [`Empty] when the island has no events yet, [`Phase p] when all
   events fall on phase [p], [`Broken] when they already disagree (the
   island cannot be slowed, so alignment no longer matters). *)
let island_phase state island m =
  Mrrg.phase_of state.mrrg ~tiles:(Cgra.island_tiles state.req.cgra island) ~modulo:m

(* Phase-misalignment penalty for scheduling an event on [tile] at
   [time], given the tile's island intends to run slowed.  Only
   meaningful when the multiplier divides the II. *)
let phase_penalty state ~weight tile time =
  match state.req.strategy with
  | Conventional -> 0
  | Dvfs_aware when not state.req.knobs.phase_alignment -> 0
  | Dvfs_aware -> (
    let island = Cgra.island_of state.req.cgra tile in
    match tentative_level state island with
    | None | Some Dvfs.Normal | Some Dvfs.Power_gated -> 0
    | Some ((Dvfs.Relax | Dvfs.Rest) as level) ->
      let m = Dvfs.multiplier level in
      if state.ii mod m <> 0 then 0
      else (
        match island_phase state island m with
        | `Empty | `Broken -> 0
        | `Phase p -> if time mod m = p then 0 else weight))

(* Router hop penalty: stay out of unopened islands (they could be
   power-gated) and respect slowed islands' phases. *)
let route_extra_cost state ~tile ~time =
  match state.req.strategy with
  | Conventional -> 0
  | Dvfs_aware -> (
    let island = Cgra.island_of state.req.cgra tile in
    match tentative_level state island with
    | None -> cost_route_open_island
    | Some _ -> phase_penalty state ~weight:cost_route_misphase tile time)

(* Start-time window of [node] if placed on [tile].

   [hard] comes from already-placed producers (a true lower bound);
   [soft] additionally honours the node's precomputed schedule estimate
   so that, e.g., a critical phi is not pinned so early that its
   carried producer can never meet the deadline; [lst] is the latest
   start admissible given already-placed consumers.  The soft bound is
   only a guess, so it yields toward [hard] whenever honouring it would
   close the window against [lst]. *)
let time_window state node tile =
  let cgra = state.req.cgra in
  let hard = ref 0 in
  let lst = ref max_int in
  List.iter
    (fun (e : Graph.edge) ->
      match Hashtbl.find_opt state.placements e.src with
      | Some (src_tile, src_time) ->
        let dist = Cgra.manhattan cgra src_tile tile in
        let bound = src_time + dist + 1 - edge_slack state e in
        if bound > !hard then hard := bound
      | None -> ())
    (Graph.predecessors state.dfg node);
  List.iter
    (fun (e : Graph.edge) ->
      match Hashtbl.find_opt state.placements e.dst with
      | None -> ()
      | Some (dst_tile, dst_time) ->
        let dist = Cgra.manhattan cgra tile dst_tile in
        let bound = dst_time + edge_slack state e - dist - 1 in
        if bound < !lst then lst := bound)
    (Graph.successors state.dfg node);
  let hard = max 0 !hard in
  let soft = max hard (Estimate.start state.estimate node) in
  let est = if !lst <> max_int && soft > !lst then max hard (min soft !lst) else soft in
  (est, !lst)

(* Cheap lower-bound cost of a candidate placement, used to order full
   routing attempts. *)
let cheap_cost state node tile time =
  let cgra = state.req.cgra in
  let route_lb = ref 0 in
  List.iter
    (fun (e : Graph.edge) ->
      match Hashtbl.find_opt state.placements e.src with
      | None -> ()
      | Some (src_tile, src_time) ->
        let dist = Cgra.manhattan cgra src_tile tile in
        route_lb := !route_lb + (Router.hop_cost * dist);
        let slack = time + edge_slack state e - (src_time + dist + 1) in
        route_lb := !route_lb + (cost_wait * max 0 slack))
    (Graph.predecessors state.dfg node);
  List.iter
    (fun (e : Graph.edge) ->
      match Hashtbl.find_opt state.placements e.dst with
      | None -> ()
      | Some (dst_tile, _) ->
        route_lb := !route_lb + (Router.hop_cost * Cgra.manhattan cgra tile dst_tile))
    (Graph.successors state.dfg node);
  (* A recurrence cycle must usually close on one tile (hops cost 2
     cycles each); opening it on a tile that cannot seat its remaining
     members forces a split and a larger II. *)
  let capacity_penalty =
    match Hashtbl.find_opt state.cycle_mates node with
    | None -> 0
    | Some mates ->
      let unplaced =
        List.length (List.filter (fun m -> not (Hashtbl.mem state.placements m)) mates)
      in
      if busy_count state tile + unplaced > state.ii then 400 else 0
  in
  let strategy_cost =
    match state.req.strategy with
    | Conventional ->
      (* The conventional mapper balances load across the fabric (the
         paper: it "might assign two dependent DFG nodes onto two tiles
         that are far away from each other as long as the II is not
         violated"), except for recurrence-cycle nodes, which must stay
         packed to close their cycles.  The scattering is what leaves
         per-tile DVFS so little to power-gate. *)
      let on_cycle = Hashtbl.mem state.cycle_mates node in
      (if on_cycle then cost_pack else cost_spread) * busy_count state tile
    | Dvfs_aware -> (
      let island = Cgra.island_of cgra tile in
      let label = label_of state node in
      (* Packing and phase alignment only matter for nodes that might
         run slowed; biasing critical (normal-labeled) nodes with them
         costs II for no DVFS benefit. *)
      let bias =
        if label = Dvfs.Normal then 0
        else
          (if state.req.knobs.packing then -cost_pack * busy_count state tile else 0)
          + phase_penalty state ~weight:cost_phase tile time
      in
      if not state.req.knobs.island_affinity then bias
      else
        match tentative_level state island with
        | None -> cost_open_island + bias
        | Some assigned ->
          if rank label <= rank assigned then
            (cost_over_provision * (rank assigned - rank label)) + bias
          else cost_island_raise + bias)
  in
  !route_lb + strategy_cost + capacity_penalty

(* Route every dependence between [node] (placed at tile/time) and its
   already-placed neighbours, reserving MRRG ports.  On failure undo all
   reservations made here and report. *)
let route_incident state node tile time =
  let routed = ref [] in
  let undo () =
    List.iter
      (fun (r : Mapping.route) -> Router.release state.mrrg r.hops r.edge)
      !routed
  in
  let route_one (e : Graph.edge) ~src_tile ~src_time ~dst_tile ~dst_time =
    let deadline = dst_time + edge_slack state e - 1 in
    if src_tile = dst_tile && deadline >= src_time then begin
      routed := { Mapping.edge = e; hops = [] } :: !routed;
      Ok ()
    end
    else
      match
        Router.route
          ~extra_cost:(fun ~tile ~time -> route_extra_cost state ~tile ~time)
          ~hop_width:(fun tile -> tile_width state tile)
          ~scratch:state.scratch ~stats:state.stats state.mrrg ~edge:e ~src_tile
          ~src_time ~dst_tile ~deadline
      with
      | Ok (hops, _) ->
        routed := { Mapping.edge = e; hops } :: !routed;
        Ok ()
      | Error msg -> Error msg
  in
  let rec process = function
    | [] -> Ok ()
    | step :: rest -> ( match step () with Ok () -> process rest | Error msg -> Error msg)
  in
  let pred_steps =
    List.filter_map
      (fun (e : Graph.edge) ->
        match Hashtbl.find_opt state.placements e.src with
        | None -> None
        | Some (src_tile, src_time) ->
          Some (fun () -> route_one e ~src_tile ~src_time ~dst_tile:tile ~dst_time:time))
      (Graph.predecessors state.dfg node)
  in
  let succ_steps =
    List.filter_map
      (fun (e : Graph.edge) ->
        match Hashtbl.find_opt state.placements e.dst with
        | None -> None
        | Some (dst_tile, dst_time) ->
          Some (fun () -> route_one e ~src_tile:tile ~src_time:time ~dst_tile ~dst_time))
      (Graph.successors state.dfg node)
  in
  match process (pred_steps @ succ_steps) with
  | Ok () -> Ok !routed
  | Error msg ->
    undo ();
    Error msg

let place_node_untraced state node =
  let cgra = state.req.cgra in
  let op = (Graph.node state.dfg node).op in
  let memory_ok tile = (not (Op.needs_memory op)) || List.mem tile state.memory_tiles in
  (* Commit mode steers a node onto islands of exactly its label's
     level first, falling back to any island at least as fast when the
     exact set is empty or yields no feasible placement (e.g. a
     rest-labeled operand of a critical node whose deadline no distant
     rest island can meet). *)
  let fallback_tiles =
    List.filter
      (fun tile ->
        memory_ok tile
        &&
        match committed_level state tile with
        | Some level -> Dvfs.at_most (label_of state node) level
        | None -> true)
      state.tiles
  in
  let tile_sets =
    match state.committed with
    | None -> [ List.filter memory_ok state.tiles ]
    | Some _ ->
      let label = label_of state node in
      let exact =
        List.filter
          (fun tile -> memory_ok tile && committed_level state tile = Some label)
          state.tiles
      in
      if exact = [] then [ fallback_tiles ] else [ exact; fallback_tiles ]
  in
  let try_tiles eligible_tiles =
    let candidates = ref [] in
    List.iter
      (fun tile ->
        let est, lst = time_window state node tile in
        let upper = min (est + state.ii - 1) lst in
        let rec collect time =
          if time > upper then ()
          else begin
            if Mrrg.is_free state.mrrg ~tile ~time Mrrg.Fu then
              candidates := (cheap_cost state node tile time, tile, time) :: !candidates;
            collect (time + 1)
          end
        in
        collect est)
      eligible_tiles;
    let ordered = List.sort compare !candidates in
    let max_attempts = 100 in
    let describe_windows () =
      let sample =
        List.filteri (fun i _ -> i < 3) eligible_tiles
        |> List.map (fun tile ->
               let est, lst = time_window state node tile in
               Printf.sprintf "t%d:[%d,%s]" tile est
                 (if lst = max_int then "inf" else string_of_int lst))
      in
      let neighbours =
        let placed id =
          match Hashtbl.find_opt state.placements id with
          | Some (tile, time) -> Printf.sprintf "n%d@t%d,c%d" id tile time
          | None -> Printf.sprintf "n%d@?" id
        in
        let preds =
          List.map (fun (e : Graph.edge) -> placed e.src) (Graph.predecessors state.dfg node)
        in
        let succs =
          List.map (fun (e : Graph.edge) -> placed e.dst) (Graph.successors state.dfg node)
        in
        Printf.sprintf "preds[%s] succs[%s]" (String.concat " " preds)
          (String.concat " " succs)
      in
      String.concat " " sample ^ " " ^ neighbours
    in
    let rec attempt n = function
      | [] ->
        Error
          (Printf.sprintf "node n%d: no feasible placement at II=%d (windows %s)" node
             state.ii (describe_windows ()))
      | _ when n >= max_attempts ->
        Error (Printf.sprintf "node n%d: placement attempts exhausted at II=%d" node state.ii)
      | (_, tile, time) :: rest -> (
        let s = state.stats in
        s.Telemetry.placements_tried <- s.Telemetry.placements_tried + 1;
        (* in commit mode a slowed tile's op covers multiplier-many
           modulo slots *)
        let width = tile_width state tile in
        let reserve_fu () =
          let rec claim k =
            if k = width then Ok ()
            else
              match
                Mrrg.reserve state.mrrg ~tile ~time:(time + k) Mrrg.Fu (Mrrg.Op_node node)
              with
              | Ok () -> claim (k + 1)
              | Error _ as err ->
                for undo = 0 to k - 1 do
                  Mrrg.release state.mrrg ~tile ~time:(time + undo) Mrrg.Fu
                done;
                err
          in
          claim 0
        in
        let release_fu () =
          for k = 0 to width - 1 do
            Mrrg.release state.mrrg ~tile ~time:(time + k) Mrrg.Fu
          done
        in
        match reserve_fu () with
        | Error _ -> attempt (n + 1) rest
        | Ok () -> (
          match route_incident state node tile time with
          | Ok routes ->
            Hashtbl.replace state.placements node (tile, time);
            state.routes <- routes @ state.routes;
            (match state.req.strategy with
            | Conventional -> ()
            | Dvfs_aware ->
              let island = Cgra.island_of cgra tile in
              let label = label_of state node in
              (match Hashtbl.find_opt state.island_level island with
              | None -> Hashtbl.replace state.island_level island label
              | Some assigned ->
                if rank label > rank assigned then
                  Hashtbl.replace state.island_level island label));
            Ok ()
          | Error _ ->
            release_fu ();
            attempt (n + 1) rest))
    in
    attempt 0 ordered
  in
  let rec first_success last_err = function
    | [] -> Error last_err
    | tiles :: rest -> (
      match try_tiles tiles with
      | Ok () -> Ok ()
      | Error msg -> ( match rest with [] -> Error msg | _ -> first_success msg rest))
  in
  first_success "no tile sets" tile_sets

let place_node state node =
  if not (Obs.enabled ()) then place_node_untraced state node
  else
    Obs.with_span
      ~args:[ ("node", Obs.Int node) ]
      ~cat:"mapper" ~name:"place"
      (fun () ->
        match place_node_untraced state node with
        | Ok () as r -> r
        | Error msg as r ->
          Obs.span_arg "error" (Obs.Str msg);
          r)

let attempt_ii ~scratch ~stats req dfg ~tiles ~memory_tiles ~ii ~margin =
  let labels =
    match req.strategy with
    | Conventional -> List.map (fun id -> (id, Dvfs.Normal)) (Graph.node_ids dfg)
    | Dvfs_aware ->
      Labeling.label ~floor:req.label_floor ~guard:req.label_guard dfg ~cgra:req.cgra ~tiles
        ~ii
  in
  match Graph.intra_topological dfg with
  | None -> Error "cyclic intra-iteration subgraph"
  | Some topo ->
    let committed =
      if not req.commit_islands then None
      else begin
        (* island quota per level from the labels: how many islands'
           worth of tile-time each level's nodes need (a slowed node
           occupies multiplier-many slots); at least one island per
           level that has any demand, faster levels served first *)
        let islands =
          List.sort_uniq compare (List.map (Cgra.island_of req.cgra) tiles)
        in
        let island_slots =
          match islands with
          | [] -> 1
          | i :: _ -> List.length (Cgra.island_tiles req.cgra i) * ii
        in
        let demand level =
          List.fold_left
            (fun acc (_, l) -> if l = level then acc + Dvfs.multiplier level else acc)
            0 labels
        in
        let want level =
          let d = demand level in
          if d = 0 then 0 else max 1 ((d + island_slots - 1) / island_slots)
        in
        let table = Hashtbl.create 16 in
        (* Slowed islands are allocated minimally, from the end of the
           island list (away from the SPM column); everything left is
           Normal — surplus normal islands cost nothing (the critical
           path needs room, and idle ones are power-gated anyway),
           whereas a starved normal quota would fragment the critical
           cycle across islands and destroy the II. *)
        let rec take_from_end islands levels =
          match levels with
          | [] -> List.iter (fun i -> Hashtbl.replace table i Dvfs.Normal) islands
          | level :: faster ->
            let n = min (want level) (max 0 (List.length islands - 1)) in
            let cut = List.length islands - n in
            let keep = List.filteri (fun i _ -> i < cut) islands in
            let taken = List.filteri (fun i _ -> i >= cut) islands in
            List.iter (fun i -> Hashtbl.replace table i level) taken;
            take_from_end keep faster
        in
        take_from_end islands [ Dvfs.Rest; Dvfs.Relax ];
        Some table
      end
    in
    let state =
      {
        dfg;
        req;
        tiles;
        memory_tiles;
        ii;
        labels;
        estimate = Estimate.build dfg ~ii ~margin ~topo;
        cycle_mates =
          (let table = Hashtbl.create 32 in
           List.iter
             (fun (c : Analysis.cycle) ->
               List.iter
                 (fun id ->
                   match Hashtbl.find_opt table id with
                   | Some existing when List.length existing >= List.length c.members -> ()
                   | _ -> Hashtbl.replace table id c.members)
                 c.members)
             (Analysis.recurrence_cycles dfg);
           table);
        mrrg = Mrrg.create ~tiles ~dead_links:req.dead_links req.cgra ~ii;
        placements = Hashtbl.create 64;
        routes = [];
        island_level = Hashtbl.create 16;
        committed;
        scratch;
        stats;
      }
    in
    (* Placement order.  Two rules, both standard in modulo
       scheduling:
       - nodes on the tightest recurrence cycles go first (a cycle of
         length L must close within II * distance, so its members must
         grab adjacent slots before unconstrained nodes squat on them);
       - every other phi is deferred until just after its carried
         producers: its window [t_prod + 1 - d*II, t_consumer - 1] is
         then exact, with no reliance on ASAP guesses.  Consumers placed
         before such a phi see no hard bound from it (the phi's value
         arrives from a previous iteration). *)
    let critical = Analysis.critical_nodes dfg in
    let carried_producers id =
      List.filter_map
        (fun (e : Graph.edge) -> if e.distance > 0 then Some e.src else None)
        (Graph.predecessors dfg id)
    in
    let cycles = Analysis.recurrence_cycles dfg in
    let share_cycle a b =
      List.exists
        (fun (c : Analysis.cycle) -> List.mem a c.members && List.mem b c.members)
        cycles
    in
    let deferred id =
      (Graph.node dfg id).op = Op.Phi
      && carried_producers id <> []
      && (not (List.mem id critical))
      (* deferral is only safe when every consumer lies on the phi's
         own cycle: off-cycle consumers placed first would pin the phi
         from several scattered tiles at once *)
      && List.for_all
           (fun (e : Graph.edge) -> e.distance > 0 || share_cycle id e.dst)
           (Graph.successors dfg id)
    in
    let critical_first = List.filter (fun id -> List.mem id critical) topo in
    let plain_body =
      List.filter (fun id -> (not (List.mem id critical)) && not (deferred id)) topo
    in
    let insert_after_producers body phi =
      let producers =
        List.filter (fun p -> List.mem p body) (carried_producers phi)
      in
      if producers = [] then phi :: body
      else begin
        let rec go remaining = function
          | [] -> [ phi ]
          | id :: rest ->
            let remaining = List.filter (fun p -> p <> id) remaining in
            if remaining = [] then id :: phi :: rest else id :: go remaining rest
        in
        go producers body
      end
    in
    let order =
      critical_first
      @ List.fold_left insert_after_producers plain_body (List.filter deferred topo)
    in
    let rec place = function
      | [] ->
        let placements =
          Hashtbl.fold (fun node p acc -> (node, p) :: acc) state.placements []
          |> List.sort compare
        in
        Ok
          {
            Mapping.dfg;
            cgra = req.cgra;
            ii;
            tiles;
            memory_tiles;
            placements;
            routes = state.routes;
            labels;
            island_levels =
              List.map (fun island -> (island, Dvfs.Normal)) (Cgra.islands req.cgra);
          }
      | node :: rest -> (
        match place_node state node with Ok () -> place rest | Error msg -> Error msg)
    in
    place order

let run ?stats (req : request) dfg =
  let t = Telemetry.create () in
  let scratch = Router.create_scratch () in
  let t0 = Unix.gettimeofday () in
  let compute () =
    match Graph.validate dfg with
    | Error msg -> Error ("invalid DFG: " ^ msg)
    | Ok () ->
      if Graph.node_count dfg = 0 then Error "empty DFG"
      else begin
        let tiles =
          let requested =
            match req.tiles with
            | Some ts -> List.sort_uniq compare ts
            | None -> List.init (Cgra.tile_count req.cgra) (fun i -> i)
          in
          List.filter (fun t -> not (List.mem t req.dead_tiles)) requested
        in
        if tiles = [] then
          Error
            (if req.dead_tiles = [] then "empty tile set"
             else "empty tile set (every tile of the sub-fabric is faulted)")
        else begin
          let memory_tiles =
            match req.memory_tiles with
            | Some ts -> List.filter (fun t -> not (List.mem t req.dead_tiles)) ts
            | None ->
              let col_of tile = snd (Cgra.position req.cgra tile) in
              let min_col = List.fold_left (fun acc t -> min acc (col_of t)) max_int tiles in
              List.filter (fun t -> col_of t = min_col) tiles
          in
          let trace = Sys.getenv_opt "ICED_MAPPER_TRACE" <> None in
          let start_ii = Analysis.min_ii dfg ~tiles:(List.length tiles) in
          let rec search ii last_err =
            if req.cancel () then
              Error (Printf.sprintf "deadline exceeded at II=%d (last: %s)" ii last_err)
            else if ii > req.max_ii then
              Error
                (Printf.sprintf "no mapping up to II=%d (last: %s)" req.max_ii last_err)
            else begin
              let attempt_block () =
              let ii_t0 = Unix.gettimeofday () in
              let rec margins req last_err position = function
                | [] -> Error last_err
                | margin :: rest -> (
                  t.Telemetry.attempts <- t.Telemetry.attempts + 1;
                  t.Telemetry.margin_position <- position;
                  match
                    attempt_ii ~scratch ~stats:t req dfg ~tiles ~memory_tiles ~ii ~margin
                  with
                  | Ok mapping -> Ok mapping
                  | Error msg ->
                    if trace then
                      Printf.eprintf "[mapper] II=%d margin=%d failed: %s\n%!" ii margin msg;
                    margins req msg (position + 1) rest)
              in
              let attempts =
                (* The DVFS-aware cost model must never cost II (the paper
                   reports no performance loss for 2x2 islands): when its
                   biases make an II infeasible, fall back to the
                   conventional cost model at the same II — the post-pass
                   level assignment still lowers whatever aligns. *)
                match req.strategy with
                | Conventional -> [ req ]
                | Dvfs_aware when req.commit_islands || not req.knobs.conventional_fallback ->
                  (* the committed-islands study (and the fallback
                     ablation) measure precisely what the DVFS-aware cost
                     model costs: no fallback *)
                  [ req ]
                | Dvfs_aware -> [ req; { req with strategy = Conventional } ]
              in
              let rec try_attempts last_err = function
                | [] -> Error last_err
                | req :: rest -> (
                  match
                    margins req last_err 0
                      (if req.commit_islands then Cost.committed_margins
                       else Cost.asap_margins)
                  with
                  | Ok mapping -> Ok mapping
                  | Error msg -> try_attempts msg rest)
              in
              let outcome = try_attempts last_err attempts in
              Telemetry.add_ii_time t ~ii (Unix.gettimeofday () -. ii_t0);
              outcome
              in
              let outcome =
                if not (Obs.enabled ()) then attempt_block ()
                else
                  Obs.with_span
                    ~args:[ ("ii", Obs.Int ii) ]
                    ~cat:"mapper" ~name:"ii"
                    (fun () ->
                      let o = attempt_block () in
                      (match o with
                      | Ok _ -> Obs.span_arg "ok" (Obs.Bool true)
                      | Error msg -> Obs.span_arg "error" (Obs.Str msg));
                      Obs.counter ~cat:"mapper" ~name:"telemetry"
                        [
                          ("attempts", float_of_int t.Telemetry.attempts);
                          ("placements", float_of_int t.Telemetry.placements_tried);
                          ("route_calls", float_of_int t.Telemetry.route_calls);
                          ("expansions", float_of_int t.Telemetry.expansions);
                        ];
                      o)
              in
              match outcome with
              | Ok mapping -> Ok mapping
              | Error msg ->
                t.Telemetry.ii_bumps <- t.Telemetry.ii_bumps + 1;
                if Obs.enabled () then
                  Obs.instant
                    ~args:[ ("from_ii", Obs.Int ii); ("reason", Obs.Str msg) ]
                    ~cat:"mapper" ~name:"ii_bump" ();
                search (ii + 1) msg
            end
          in
          search start_ii "none"
        end
      end
  in
  let result =
    if not (Obs.enabled ()) then compute ()
    else
      Obs.with_span
        ~args:[ ("nodes", Obs.Int (Graph.node_count dfg)) ]
        ~cat:"mapper" ~name:"map"
        (fun () ->
          let r = compute () in
          (match r with
          | Ok m -> Obs.span_arg "ii" (Obs.Int m.Mapping.ii)
          | Error msg -> Obs.span_arg "error" (Obs.Str msg));
          r)
  in
  t.Telemetry.wall_s <- Unix.gettimeofday () -. t0;
  (match stats with Some sink -> Telemetry.merge ~into:sink t | None -> ());
  Iced_obs.Metrics.incr "mapper.runs";
  Iced_obs.Metrics.incr ~by:t.Telemetry.attempts "mapper.attempts";
  Iced_obs.Metrics.incr ~by:t.Telemetry.route_calls "mapper.route_calls";
  Iced_obs.Metrics.observe "mapper.wall_s" t.Telemetry.wall_s;
  result
