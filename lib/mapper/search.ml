open Iced_arch
open Iced_dfg
module Mrrg = Iced_mrrg.Mrrg
module Obs = Iced_obs.Trace

type strategy = Cost.strategy = Conventional | Dvfs_aware

type knobs = Cost.knobs = {
  island_affinity : bool;
  packing : bool;
  phase_alignment : bool;
  conventional_fallback : bool;
}

type request = Engine.request = {
  cgra : Cgra.t;
  strategy : strategy;
  backend : Backend.t;
  tiles : int list option;
  memory_tiles : int list option;
  label_floor : Dvfs.level;
  label_guard : int;
  max_ii : int;
  knobs : knobs;
  cancel : unit -> bool;
  dead_tiles : int list;
  dead_links : (int * Dir.t) list;
  commit_islands : bool;
}

let request = Engine.request

(* Run the request's placer/router pair over a prepared attempt state.
   The default pair is special: greedy placement and incremental
   routing are fused (each node's deps are routed as it is placed, and
   unroutable placements are undone candidate by candidate) — that
   exact interleaving is what the golden corpus pins.  Every other
   pair decouples the phases: place everything, rebuild the island
   bookkeeping, then route the complete placement. *)
let place_and_route (state : Engine.state) order =
  match (state.req.backend.Backend.placer, state.req.backend.Backend.router) with
  | Backend.Greedy, Backend.Incremental -> Greedy.place_all ~route:true state order
  | placer, router -> (
    let placed =
      match placer with
      | Backend.Greedy -> Greedy.place_all ~route:false state order
      | Backend.Annealing p -> Anneal.place p state order
    in
    match placed with
    | Error _ as e -> e
    | Ok () ->
      Engine.rebuild_island_levels state;
      (match router with
      | Backend.Incremental -> Engine.route_complete state
      | Backend.Negotiated p -> Pathfinder.route_all p state))

let attempt_ii ~scratch ~stats req dfg ~tiles ~memory_tiles ~ii ~margin =
  let labels =
    match req.strategy with
    | Conventional -> List.map (fun id -> (id, Dvfs.Normal)) (Graph.node_ids dfg)
    | Dvfs_aware ->
      Labeling.label ~floor:req.label_floor ~guard:req.label_guard dfg ~cgra:req.cgra ~tiles
        ~ii
  in
  match Graph.intra_topological dfg with
  | None -> Error "cyclic intra-iteration subgraph"
  | Some topo ->
    let committed =
      if not req.commit_islands then None
      else begin
        (* island quota per level from the labels: how many islands'
           worth of tile-time each level's nodes need (a slowed node
           occupies multiplier-many slots); at least one island per
           level that has any demand, faster levels served first *)
        let islands =
          List.sort_uniq compare (List.map (Cgra.island_of req.cgra) tiles)
        in
        let island_slots =
          match islands with
          | [] -> 1
          | i :: _ -> List.length (Cgra.island_tiles req.cgra i) * ii
        in
        let demand level =
          List.fold_left
            (fun acc (_, l) -> if l = level then acc + Dvfs.multiplier level else acc)
            0 labels
        in
        let want level =
          let d = demand level in
          if d = 0 then 0 else max 1 ((d + island_slots - 1) / island_slots)
        in
        let table = Hashtbl.create 16 in
        (* Slowed islands are allocated minimally, from the end of the
           island list (away from the SPM column); everything left is
           Normal — surplus normal islands cost nothing (the critical
           path needs room, and idle ones are power-gated anyway),
           whereas a starved normal quota would fragment the critical
           cycle across islands and destroy the II. *)
        let rec take_from_end islands levels =
          match levels with
          | [] -> List.iter (fun i -> Hashtbl.replace table i Dvfs.Normal) islands
          | level :: faster ->
            let n = min (want level) (max 0 (List.length islands - 1)) in
            let cut = List.length islands - n in
            let keep = List.filteri (fun i _ -> i < cut) islands in
            let taken = List.filteri (fun i _ -> i >= cut) islands in
            List.iter (fun i -> Hashtbl.replace table i level) taken;
            take_from_end keep faster
        in
        take_from_end islands [ Dvfs.Rest; Dvfs.Relax ];
        Some table
      end
    in
    let state =
      {
        Engine.dfg;
        req;
        tiles;
        memory_tiles;
        ii;
        labels;
        estimate = Estimate.build dfg ~ii ~margin ~topo;
        cycle_mates =
          (let table = Hashtbl.create 32 in
           List.iter
             (fun (c : Analysis.cycle) ->
               List.iter
                 (fun id ->
                   match Hashtbl.find_opt table id with
                   | Some existing when List.length existing >= List.length c.members -> ()
                   | _ -> Hashtbl.replace table id c.members)
                 c.members)
             (Analysis.recurrence_cycles dfg);
           table);
        mrrg = Mrrg.create ~tiles ~dead_links:req.dead_links req.cgra ~ii;
        placements = Hashtbl.create 64;
        routes = [];
        island_level = Hashtbl.create 16;
        committed;
        scratch;
        stats;
      }
    in
    (* Placement order.  Two rules, both standard in modulo
       scheduling:
       - nodes on the tightest recurrence cycles go first (a cycle of
         length L must close within II * distance, so its members must
         grab adjacent slots before unconstrained nodes squat on them);
       - every other phi is deferred until just after its carried
         producers: its window [t_prod + 1 - d*II, t_consumer - 1] is
         then exact, with no reliance on ASAP guesses.  Consumers placed
         before such a phi see no hard bound from it (the phi's value
         arrives from a previous iteration). *)
    let critical = Analysis.critical_nodes dfg in
    let carried_producers id =
      List.filter_map
        (fun (e : Graph.edge) -> if e.distance > 0 then Some e.src else None)
        (Graph.predecessors dfg id)
    in
    let cycles = Analysis.recurrence_cycles dfg in
    let share_cycle a b =
      List.exists
        (fun (c : Analysis.cycle) -> List.mem a c.members && List.mem b c.members)
        cycles
    in
    let deferred id =
      (Graph.node dfg id).op = Op.Phi
      && carried_producers id <> []
      && (not (List.mem id critical))
      (* deferral is only safe when every consumer lies on the phi's
         own cycle: off-cycle consumers placed first would pin the phi
         from several scattered tiles at once *)
      && List.for_all
           (fun (e : Graph.edge) -> e.distance > 0 || share_cycle id e.dst)
           (Graph.successors dfg id)
    in
    let critical_first = List.filter (fun id -> List.mem id critical) topo in
    let plain_body =
      List.filter (fun id -> (not (List.mem id critical)) && not (deferred id)) topo
    in
    let insert_after_producers body phi =
      let producers =
        List.filter (fun p -> List.mem p body) (carried_producers phi)
      in
      if producers = [] then phi :: body
      else begin
        let rec go remaining = function
          | [] -> [ phi ]
          | id :: rest ->
            let remaining = List.filter (fun p -> p <> id) remaining in
            if remaining = [] then id :: phi :: rest else id :: go remaining rest
        in
        go producers body
      end
    in
    let order =
      critical_first
      @ List.fold_left insert_after_producers plain_body (List.filter deferred topo)
    in
    (match place_and_route state order with
    | Error _ as e -> e
    | Ok () ->
      let placements =
        Hashtbl.fold (fun node p acc -> (node, p) :: acc) state.Engine.placements []
        |> List.sort compare
      in
      Ok
        {
          Mapping.dfg;
          cgra = req.cgra;
          ii;
          tiles;
          memory_tiles;
          placements;
          routes = state.Engine.routes;
          labels;
          island_levels =
            List.map (fun island -> (island, Dvfs.Normal)) (Cgra.islands req.cgra);
        })

let run ?stats (req : request) dfg =
  let t = Telemetry.create () in
  let scratch = Router.create_scratch () in
  let t0 = Unix.gettimeofday () in
  let compute () =
    match Graph.validate dfg with
    | Error msg -> Error ("invalid DFG: " ^ msg)
    | Ok () ->
      if Graph.node_count dfg = 0 then Error "empty DFG"
      else begin
        let tiles =
          let requested =
            match req.tiles with
            | Some ts -> List.sort_uniq compare ts
            | None -> List.init (Cgra.tile_count req.cgra) (fun i -> i)
          in
          List.filter (fun t -> not (List.mem t req.dead_tiles)) requested
        in
        if tiles = [] then
          Error
            (if req.dead_tiles = [] then "empty tile set"
             else "empty tile set (every tile of the sub-fabric is faulted)")
        else begin
          let memory_tiles =
            match req.memory_tiles with
            | Some ts -> List.filter (fun t -> not (List.mem t req.dead_tiles)) ts
            | None ->
              let col_of tile = snd (Cgra.position req.cgra tile) in
              let min_col = List.fold_left (fun acc t -> min acc (col_of t)) max_int tiles in
              List.filter (fun t -> col_of t = min_col) tiles
          in
          let trace = Sys.getenv_opt "ICED_MAPPER_TRACE" <> None in
          let start_ii = Analysis.min_ii dfg ~tiles:(List.length tiles) in
          let rec search ii last_err =
            if req.cancel () then
              Error (Printf.sprintf "deadline exceeded at II=%d (last: %s)" ii last_err)
            else if ii > req.max_ii then
              Error
                (Printf.sprintf "no mapping up to II=%d (last: %s)" req.max_ii last_err)
            else begin
              let attempt_block () =
              let ii_t0 = Unix.gettimeofday () in
              let rec margins req last_err position = function
                | [] -> Error last_err
                | margin :: rest -> (
                  t.Telemetry.attempts <- t.Telemetry.attempts + 1;
                  t.Telemetry.margin_position <- position;
                  match
                    attempt_ii ~scratch ~stats:t req dfg ~tiles ~memory_tiles ~ii ~margin
                  with
                  | Ok mapping -> Ok mapping
                  | Error msg ->
                    if trace then
                      Printf.eprintf "[mapper] II=%d margin=%d failed: %s\n%!" ii margin msg;
                    margins req msg (position + 1) rest)
              in
              let attempts =
                (* The DVFS-aware cost model must never cost II (the paper
                   reports no performance loss for 2x2 islands): when its
                   biases make an II infeasible, fall back to the
                   conventional cost model at the same II — the post-pass
                   level assignment still lowers whatever aligns. *)
                match req.strategy with
                | Conventional -> [ req ]
                | Dvfs_aware when req.commit_islands || not req.knobs.conventional_fallback ->
                  (* the committed-islands study (and the fallback
                     ablation) measure precisely what the DVFS-aware cost
                     model costs: no fallback *)
                  [ req ]
                | Dvfs_aware -> [ req; { req with strategy = Conventional } ]
              in
              let rec try_attempts last_err = function
                | [] -> Error last_err
                | req :: rest -> (
                  match
                    margins req last_err 0
                      (if req.commit_islands then Cost.committed_margins
                       else Cost.asap_margins)
                  with
                  | Ok mapping -> Ok mapping
                  | Error msg -> try_attempts msg rest)
              in
              let outcome = try_attempts last_err attempts in
              Telemetry.add_ii_time t ~ii (Unix.gettimeofday () -. ii_t0);
              outcome
              in
              let outcome =
                if not (Obs.enabled ()) then attempt_block ()
                else
                  Obs.with_span
                    ~args:[ ("ii", Obs.Int ii) ]
                    ~cat:"mapper" ~name:"ii"
                    (fun () ->
                      let o = attempt_block () in
                      (match o with
                      | Ok _ -> Obs.span_arg "ok" (Obs.Bool true)
                      | Error msg -> Obs.span_arg "error" (Obs.Str msg));
                      Obs.counter ~cat:"mapper" ~name:"telemetry"
                        [
                          ("attempts", float_of_int t.Telemetry.attempts);
                          ("placements", float_of_int t.Telemetry.placements_tried);
                          ("route_calls", float_of_int t.Telemetry.route_calls);
                          ("expansions", float_of_int t.Telemetry.expansions);
                        ];
                      o)
              in
              match outcome with
              | Ok mapping -> Ok mapping
              | Error msg ->
                t.Telemetry.ii_bumps <- t.Telemetry.ii_bumps + 1;
                if Obs.enabled () then
                  Obs.instant
                    ~args:[ ("from_ii", Obs.Int ii); ("reason", Obs.Str msg) ]
                    ~cat:"mapper" ~name:"ii_bump" ();
                search (ii + 1) msg
            end
          in
          search start_ii "none"
        end
      end
  in
  let result =
    if not (Obs.enabled ()) then compute ()
    else
      Obs.with_span
        ~args:
          [
            ("nodes", Obs.Int (Graph.node_count dfg));
            ("backend", Obs.Str (Backend.to_string req.backend));
          ]
        ~cat:"mapper" ~name:"map"
        (fun () ->
          let r = compute () in
          (match r with
          | Ok m -> Obs.span_arg "ii" (Obs.Int m.Mapping.ii)
          | Error msg -> Obs.span_arg "error" (Obs.Str msg));
          r)
  in
  t.Telemetry.wall_s <- Unix.gettimeofday () -. t0;
  (match stats with Some sink -> Telemetry.merge ~into:sink t | None -> ());
  Iced_obs.Metrics.incr "mapper.runs";
  Iced_obs.Metrics.incr ~by:t.Telemetry.attempts "mapper.attempts";
  Iced_obs.Metrics.incr ~by:t.Telemetry.route_calls "mapper.route_calls";
  Iced_obs.Metrics.observe "mapper.wall_s" t.Telemetry.wall_s;
  result
