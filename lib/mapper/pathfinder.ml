open Iced_arch
open Iced_dfg
module Mrrg = Iced_mrrg.Mrrg
module Obs = Iced_obs.Trace
open Engine

(* Port-slot resource index: ((tile * 4) + dir) * II + (time mod II).
   This is exactly the occupancy the MRRG charges a hop (the source
   tile's output port at the arrival time's modulo slot), so zero
   overflow here guarantees the final commit reserves cleanly. *)
let dir_code = function Dir.North -> 0 | Dir.South -> 1 | Dir.East -> 2 | Dir.West -> 3

exception Unroutable of string

(* Negotiated-congestion routing (Pathfinder): every dependence of a
   complete placement is routed with congestion priced, not forbidden;
   overused port slots grow present and history costs round over round
   until each slot has a single tenant, then the routes are committed
   to the MRRG. *)
let route_all (p : Backend.pf_params) state =
  let mrrg = state.mrrg in
  let ii = state.ii in
  let tiles = Cgra.tile_count state.req.cgra in
  let nres = tiles * 4 * ii in
  let usage = Array.make nres 0 in
  let history = Array.make nres 0 in
  let res ~tile ~dir ~time = (((tile * 4) + dir_code dir) * ii) + (time mod ii) in
  (* A hop list's distinct resources: fan-out of one edge shares wires,
     so the same slot crossed twice by one edge counts once (mirroring
     the MRRG's same-occupant idempotent reserve). *)
  let resources_of hops =
    List.fold_left
      (fun acc (h : Mapping.hop) ->
        let r = res ~tile:h.tile ~dir:h.dir ~time:h.time in
        if List.mem r acc then acc else r :: acc)
      [] hops
  in
  let add_usage hops = List.iter (fun r -> usage.(r) <- usage.(r) + 1) (resources_of hops) in
  let sub_usage hops = List.iter (fun r -> usage.(r) <- usage.(r) - 1) (resources_of hops) in
  let endpoints (e : Graph.edge) =
    match
      (Hashtbl.find_opt state.placements e.src, Hashtbl.find_opt state.placements e.dst)
    with
    | Some src, Some dst -> (src, dst)
    | _ -> raise (Unroutable (Printf.sprintf "edge n%d->n%d: endpoint unplaced" e.src e.dst))
  in
  let compute () =
    let trivial, routable =
      List.partition_map
        (fun (e : Graph.edge) ->
          let (src_tile, src_time), (dst_tile, dst_time) = endpoints e in
          let deadline = dst_time + edge_slack state e - 1 in
          if src_tile = dst_tile && deadline >= src_time then
            Left { Mapping.edge = e; hops = [] }
          else Right (e, src_tile, src_time, dst_tile, deadline))
        (all_deps state)
    in
    let arr = Array.of_list routable in
    let current = Array.make (Array.length arr) [] in
    let routed = Array.make (Array.length arr) false in
    let present = ref p.present_base in
    let rec negotiate round =
      if round > p.max_rounds then
        Error
          (Printf.sprintf
             "pathfinder: congestion unresolved after %d rounds at II=%d (%d overused slots)"
             p.max_rounds ii
             (Array.fold_left (fun acc u -> if u > 1 then acc + 1 else acc) 0 usage))
      else begin
        state.stats.Telemetry.pf_rounds <- state.stats.Telemetry.pf_rounds + 1;
        Array.iteri
          (fun i (e, src_tile, src_time, dst_tile, deadline) ->
            if routed.(i) then begin
              sub_usage current.(i);
              routed.(i) <- false
            end;
            let port_cost ~tile ~dir ~time =
              (* occupancy is tracked here, not in the MRRG (ports are
                 reserved only at commit), so [is_free] only rejects
                 dead links *)
              if not (Mrrg.is_free mrrg ~tile ~time (Mrrg.Port dir)) then None
              else
                let r = res ~tile ~dir ~time in
                Some
                  (route_extra_cost state ~tile ~time
                  + (p.history_weight * history.(r))
                  + (usage.(r) * !present))
            in
            match
              Router.find_path ~scratch:state.scratch ~stats:state.stats ~port_cost mrrg
                ~edge:e ~src_tile ~src_time ~dst_tile ~deadline
            with
            | Ok (hops, _) ->
              current.(i) <- hops;
              routed.(i) <- true;
              add_usage hops
            | Error msg -> raise (Unroutable msg))
          arr;
        let overflow =
          Array.fold_left (fun acc u -> if u > 1 then acc + (u - 1) else acc) 0 usage
        in
        if overflow = 0 then begin
          (* settled: commit every route to the MRRG *)
          let commit i (e, _, _, _, _) =
            List.iter
              (fun (h : Mapping.hop) ->
                match
                  Mrrg.reserve mrrg ~tile:h.tile ~time:h.time (Mrrg.Port h.dir)
                    (Mrrg.Route { src = e.Graph.src; dst = e.Graph.dst })
                with
                | Ok () -> ()
                | Error msg ->
                  raise
                    (Unroutable
                       (Printf.sprintf "pathfinder: commit conflict on edge n%d->n%d: %s"
                          e.Graph.src e.Graph.dst msg)))
              current.(i)
          in
          Array.iteri commit arr;
          let negotiated =
            Array.to_list
              (Array.mapi
                 (fun i (e, _, _, _, _) -> { Mapping.edge = e; hops = current.(i) })
                 arr)
          in
          state.routes <- trivial @ negotiated @ state.routes;
          Ok ()
        end
        else begin
          state.stats.Telemetry.pf_overflow <- state.stats.Telemetry.pf_overflow + overflow;
          Array.iteri
            (fun r u -> if u > 1 then history.(r) <- history.(r) + (u - 1))
            usage;
          present := min 1_000_000 (!present * p.present_growth);
          negotiate (round + 1)
        end
      end
    in
    try negotiate 1 with Unroutable msg -> Error msg
  in
  if not (Obs.enabled ()) then compute ()
  else
    Obs.with_span ~cat:"mapper" ~name:"pathfinder" (fun () ->
        let r = compute () in
        Obs.span_arg "rounds" (Obs.Int state.stats.Telemetry.pf_rounds);
        (match r with
        | Ok () -> Obs.span_arg "ok" (Obs.Bool true)
        | Error msg -> Obs.span_arg "error" (Obs.Str msg));
        r)
