(** The default placer: greedy topological placement over
    {!Engine.cheap_cost}-ordered candidates.

    With [route = true] this is the legacy fused pair (incident deps
    are Dijkstra-routed as each node is placed, and unroutable
    placements are undone) — the behaviour pinned byte-for-byte by the
    golden corpus.  With [route = false] it places only, reserving FU
    slots and island levels but no ports, so a whole-placement router
    backend (Pathfinder) can negotiate the wiring afterwards. *)

val place_node : route:bool -> Engine.state -> int -> (unit, string) result
(** Place one node on the cheapest feasible (tile, time) candidate. *)

val place_all : route:bool -> Engine.state -> int list -> (unit, string) result
(** Place every node of [order] in sequence; fails on the first node
    with no feasible candidate. *)
