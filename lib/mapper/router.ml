open Iced_arch
open Iced_dfg
module Mrrg = Iced_mrrg.Mrrg

let hop_cost = 100

(* State encoding for the Dijkstra visited set: (tile, time) packed into
   one int.  Horizons are small (deadline <= a few II), so time fits
   comfortably. *)
let encode ~tiles tile time = (time * tiles) + tile

let dir_code = function Dir.North -> 0 | Dir.South -> 1 | Dir.East -> 2 | Dir.West -> 3

let dir_of_code = function 0 -> Dir.North | 1 -> Dir.South | 2 -> Dir.East | _ -> Dir.West

(* Parent pointers pack the predecessor state with how we got here:
   codes 0..3 are a hop out of the predecessor's port (dir_code order),
   4 is a wait in place, and -1 marks the search root. *)
let wait_code = 4

(* One [Mrrg.Port] per direction, hoisted so the expansion loop never
   boxes a fresh constructor. *)
let port_north = Mrrg.Port Dir.North
let port_south = Mrrg.Port Dir.South
let port_east = Mrrg.Port Dir.East
let port_west = Mrrg.Port Dir.West

let port_of = function
  | Dir.North -> port_north
  | Dir.South -> port_south
  | Dir.East -> port_east
  | Dir.West -> port_west

(* The frontier is a binary min-heap over two parallel int arrays
   (priority, packed state) — the same sift discipline as
   [Iced_util.Heap] (strict [<], left child probed first), so the pop
   order for equal priorities is identical, but pushing allocates no
   tuple. *)
type scratch = {
  mutable dist : int array;
  mutable parent : int array;
  mutable stamp : int array; (* dist/parent at [s] valid iff stamp.(s) = epoch *)
  mutable epoch : int;
  mutable hprio : int array;
  mutable hstate : int array;
  mutable hsize : int;
  mutable neighbors : (Dir.t * int) list array; (* Cgra.neighbors, per tile *)
  mutable neighbors_of : Cgra.t option; (* fabric the cache was built for *)
}

let create_scratch () =
  {
    dist = [||];
    parent = [||];
    stamp = [||];
    epoch = 0;
    hprio = [||];
    hstate = [||];
    hsize = 0;
    neighbors = [||];
    neighbors_of = None;
  }

(* O(1) between-calls reset: bump the epoch so every stamp goes stale,
   and rewind the heap.  Arrays only grow (and thus allocate) when a
   route call needs more states than any previous one. *)
let prepare scratch states =
  if Array.length scratch.stamp < states then begin
    let capacity = max states (2 * Array.length scratch.stamp) in
    scratch.dist <- Array.make capacity 0;
    scratch.parent <- Array.make capacity 0;
    scratch.stamp <- Array.make capacity 0;
    scratch.epoch <- 0
  end;
  scratch.epoch <- scratch.epoch + 1;
  scratch.hsize <- 0

let heap_push sc prio state =
  if sc.hsize = Array.length sc.hprio then begin
    let capacity = max 16 (2 * Array.length sc.hprio) in
    let np = Array.make capacity 0 and ns = Array.make capacity 0 in
    Array.blit sc.hprio 0 np 0 sc.hsize;
    Array.blit sc.hstate 0 ns 0 sc.hsize;
    sc.hprio <- np;
    sc.hstate <- ns
  end;
  sc.hprio.(sc.hsize) <- prio;
  sc.hstate.(sc.hsize) <- state;
  sc.hsize <- sc.hsize + 1;
  let i = ref (sc.hsize - 1) in
  let sifting = ref true in
  while !sifting && !i > 0 do
    let parent = (!i - 1) / 2 in
    if sc.hprio.(!i) < sc.hprio.(parent) then begin
      let p = sc.hprio.(!i) and s = sc.hstate.(!i) in
      sc.hprio.(!i) <- sc.hprio.(parent);
      sc.hstate.(!i) <- sc.hstate.(parent);
      sc.hprio.(parent) <- p;
      sc.hstate.(parent) <- s;
      i := parent
    end
    else sifting := false
  done

(* Remove the root; the caller has already read it.  Mirrors
   [Iced_util.Heap.pop]'s sift-down exactly. *)
let heap_drop sc =
  sc.hsize <- sc.hsize - 1;
  if sc.hsize > 0 then begin
    sc.hprio.(0) <- sc.hprio.(sc.hsize);
    sc.hstate.(0) <- sc.hstate.(sc.hsize);
    let i = ref 0 in
    let sifting = ref true in
    while !sifting do
      let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
      let smallest = ref !i in
      if left < sc.hsize && sc.hprio.(left) < sc.hprio.(!smallest) then smallest := left;
      if right < sc.hsize && sc.hprio.(right) < sc.hprio.(!smallest) then smallest := right;
      if !smallest <> !i then begin
        let p = sc.hprio.(!i) and s = sc.hstate.(!i) in
        sc.hprio.(!i) <- sc.hprio.(!smallest);
        sc.hstate.(!i) <- sc.hstate.(!smallest);
        sc.hprio.(!smallest) <- p;
        sc.hstate.(!smallest) <- s;
        i := !smallest
      end
      else sifting := false
    done
  end

let mark sc state cost parent =
  sc.stamp.(state) <- sc.epoch;
  sc.dist.(state) <- cost;
  sc.parent.(state) <- parent

let relax sc next_state next_cost parent =
  if sc.stamp.(next_state) <> sc.epoch || next_cost < sc.dist.(next_state) then begin
    mark sc next_state next_cost parent;
    heap_push sc next_cost next_state
  end

let rec ports_free mrrg ~tile ~time port width k =
  k >= width
  || (Mrrg.is_free mrrg ~tile ~time:(time + 1 + k) port
     && ports_free mrrg ~tile ~time port width (k + 1))

(* Relax every free neighbour hop of [state]; top-level (rather than a
   closure in the pop loop) so an expansion allocates nothing. *)
let rec expand sc mrrg extra_cost ~tiles ~width ~state ~cost ~tile ~time = function
  | [] -> ()
  | (dir, next_tile) :: rest ->
    (if Mrrg.allowed mrrg next_tile && ports_free mrrg ~tile ~time (port_of dir) width 0 then
       let penalty = extra_cost ~tile ~time:(time + 1) in
       relax sc
         (encode ~tiles next_tile (time + 1))
         (cost + hop_cost + width + penalty)
         ((state * 8) + dir_code dir));
    expand sc mrrg extra_cost ~tiles ~width ~state ~cost ~tile ~time rest

let route ?(extra_cost = fun ~tile:_ ~time:_ -> 0) ?(hop_width = fun _ -> 1) ?scratch
    ?stats mrrg ~edge ~src_tile ~src_time ~dst_tile ~deadline =
  (match stats with
  | Some (s : Telemetry.t) -> s.route_calls <- s.route_calls + 1
  | None -> ());
  let compute () =
    let cgra = Mrrg.cgra mrrg in
    let tiles = Cgra.tile_count cgra in
    if deadline < src_time then
      Error
        (Printf.sprintf "edge n%d->n%d: deadline %d precedes producer time %d"
           edge.Graph.src edge.Graph.dst deadline src_time)
    else begin
      let sc = match scratch with Some sc -> sc | None -> create_scratch () in
      (* Times never exceed the deadline (expansion stops there), so
         every reachable state fits below this bound. *)
      prepare sc ((deadline + 2) * tiles);
      (match sc.neighbors_of with
      | Some c when c == cgra -> ()
      | Some _ | None ->
        sc.neighbors <- Array.init tiles (fun tile -> Cgra.neighbors cgra tile);
        sc.neighbors_of <- Some cgra);
      let start = encode ~tiles src_tile src_time in
      mark sc start 0 (-1);
      heap_push sc 0 start;
      let found = ref (-1) in
      while !found < 0 && sc.hsize > 0 do
        let cost = sc.hprio.(0) in
        let state = sc.hstate.(0) in
        heap_drop sc;
        if sc.stamp.(state) = sc.epoch && sc.dist.(state) = cost then begin
          (* a live entry, not a stale duplicate *)
          (match stats with
          | Some (s : Telemetry.t) -> s.expansions <- s.expansions + 1
          | None -> ());
          let tile = state mod tiles in
          let time = state / tiles in
          if tile = dst_tile then found := state
          else if time < deadline then begin
            (* wait in place *)
            relax sc (state + tiles) (cost + 1) ((state * 8) + wait_code);
            (* hop to a neighbour: the output port is busy for
               hop_width(tile) slots on a slowed tile (capacity), but the
               elastic buffers hide the extra latency *)
            let width = max 1 (hop_width tile) in
            expand sc mrrg extra_cost ~tiles ~width ~state ~cost ~tile ~time
              sc.neighbors.(tile)
          end
        end
      done;
      if !found < 0 then
        Error
          (Printf.sprintf "edge n%d->n%d: no route from tile %d (t=%d) to tile %d by t=%d"
             edge.Graph.src edge.Graph.dst src_tile src_time dst_tile deadline)
      else begin
        (* Reconstruct hops by walking parents back to the start. *)
        let rec walk state acc =
          let packed = sc.parent.(state) in
          if packed < 0 then acc
          else begin
            let prev_state = packed / 8 in
            let code = packed mod 8 in
            let acc =
              if code = wait_code then acc
              else
                {
                  Mapping.tile = prev_state mod tiles;
                  dir = dir_of_code code;
                  time = state / tiles;
                }
                :: acc
            in
            walk prev_state acc
          end
        in
        let hops = walk !found [] in
        let cost = sc.dist.(!found) in
        (* Reserve all hop ports; roll back on an (unexpected) conflict. *)
        let rec reserve done_hops = function
          | [] -> Ok ()
          | (h : Mapping.hop) :: rest -> (
            match
              Mrrg.reserve mrrg ~tile:h.tile ~time:h.time (Mrrg.Port h.dir)
                (Mrrg.Route { src = edge.Graph.src; dst = edge.Graph.dst })
            with
            | Ok () -> reserve (h :: done_hops) rest
            | Error msg ->
              List.iter
                (fun (d : Mapping.hop) ->
                  Mrrg.release mrrg ~tile:d.tile ~time:d.time (Mrrg.Port d.dir))
                done_hops;
              Error msg)
        in
        match reserve [] hops with Ok () -> Ok (hops, cost) | Error msg -> Error msg
      end
    end
  in
  let result =
    if not (Iced_obs.Trace.enabled ()) then compute ()
    else
      Iced_obs.Trace.with_span
        ~args:
          [
            ( "edge",
              Iced_obs.Trace.Str
                (Printf.sprintf "n%d->n%d" edge.Graph.src edge.Graph.dst) );
          ]
        ~cat:"mapper" ~name:"route"
        (fun () ->
          match compute () with
          | Ok (_, cost) as r ->
            Iced_obs.Trace.span_arg "cost" (Iced_obs.Trace.Int cost);
            r
          | Error _ as r ->
            Iced_obs.Trace.span_arg "ok" (Iced_obs.Trace.Bool false);
            r)
  in
  (match (result, stats) with
  | Error _, Some (s : Telemetry.t) -> s.route_failures <- s.route_failures + 1
  | _ -> ());
  result

(* Congestion-cost variant of [expand] for negotiated routing: the
   caller prices each output-port slot through [port_cost] (None =
   forbidden, e.g. a dead link) instead of the router checking MRRG
   occupancy.  Nothing is reserved. *)
let rec expand_priced sc mrrg port_cost ~tiles ~state ~cost ~tile ~time = function
  | [] -> ()
  | (dir, next_tile) :: rest ->
    (if Mrrg.allowed mrrg next_tile then
       match port_cost ~tile ~dir ~time:(time + 1) with
       | None -> ()
       | Some extra ->
         relax sc
           (encode ~tiles next_tile (time + 1))
           (cost + hop_cost + extra)
           ((state * 8) + dir_code dir));
    expand_priced sc mrrg port_cost ~tiles ~state ~cost ~tile ~time rest

(* Cheapest path under a caller-supplied port pricing, without touching
   MRRG occupancy.  The Pathfinder router calls this once per edge per
   negotiation round, with present/history congestion folded into
   [port_cost]; hops are only reserved when a whole round settles. *)
let find_path ?scratch ?stats ~port_cost mrrg ~edge ~src_tile ~src_time ~dst_tile
    ~deadline =
  (match stats with
  | Some (s : Telemetry.t) -> s.route_calls <- s.route_calls + 1
  | None -> ());
  let cgra = Mrrg.cgra mrrg in
  let tiles = Cgra.tile_count cgra in
  let result =
    if deadline < src_time then
      Error
        (Printf.sprintf "edge n%d->n%d: deadline %d precedes producer time %d"
           edge.Graph.src edge.Graph.dst deadline src_time)
    else begin
      let sc = match scratch with Some sc -> sc | None -> create_scratch () in
      prepare sc ((deadline + 2) * tiles);
      (match sc.neighbors_of with
      | Some c when c == cgra -> ()
      | Some _ | None ->
        sc.neighbors <- Array.init tiles (fun tile -> Cgra.neighbors cgra tile);
        sc.neighbors_of <- Some cgra);
      let start = encode ~tiles src_tile src_time in
      mark sc start 0 (-1);
      heap_push sc 0 start;
      let found = ref (-1) in
      while !found < 0 && sc.hsize > 0 do
        let cost = sc.hprio.(0) in
        let state = sc.hstate.(0) in
        heap_drop sc;
        if sc.stamp.(state) = sc.epoch && sc.dist.(state) = cost then begin
          (match stats with
          | Some (s : Telemetry.t) -> s.expansions <- s.expansions + 1
          | None -> ());
          let tile = state mod tiles in
          let time = state / tiles in
          if tile = dst_tile then found := state
          else if time < deadline then begin
            relax sc (state + tiles) (cost + 1) ((state * 8) + wait_code);
            expand_priced sc mrrg port_cost ~tiles ~state ~cost ~tile ~time
              sc.neighbors.(tile)
          end
        end
      done;
      if !found < 0 then
        Error
          (Printf.sprintf "edge n%d->n%d: no route from tile %d (t=%d) to tile %d by t=%d"
             edge.Graph.src edge.Graph.dst src_tile src_time dst_tile deadline)
      else begin
        let rec walk state acc =
          let packed = sc.parent.(state) in
          if packed < 0 then acc
          else begin
            let prev_state = packed / 8 in
            let code = packed mod 8 in
            let acc =
              if code = wait_code then acc
              else
                {
                  Mapping.tile = prev_state mod tiles;
                  dir = dir_of_code code;
                  time = state / tiles;
                }
                :: acc
            in
            walk prev_state acc
          end
        in
        Ok (walk !found [], sc.dist.(!found))
      end
    end
  in
  (match (result, stats) with
  | Error _, Some (s : Telemetry.t) -> s.route_failures <- s.route_failures + 1
  | _ -> ());
  result

let release mrrg hops _edge =
  List.iter
    (fun (h : Mapping.hop) -> Mrrg.release mrrg ~tile:h.tile ~time:h.time (Mrrg.Port h.dir))
    hops
