(** Algorithm 2 of the paper: heuristic DVFS-aware modulo mapping.

    Starting from II = max(RecMII, ResMII), the mapper places nodes in
    topological order onto the MRRG, routing every incident dependence
    with Dijkstra as it goes, and bumps the II on failure (paper
    Algorithm 2, line 26).

    This module is the public façade over the layered engine: {!Cost}
    holds the weights and ladders, {!Estimate} the pre-placement
    schedule guesses, {!Search} the placement loop and II ladder, and
    {!Telemetry} the counters — the types below are equations onto
    those modules, so pattern-matching through either path is the same.

    Two placement-cost strategies are provided:

    - [Conventional]: the utilization-oblivious baseline — minimize
      routing cost and balance load across tiles.  This is the mapping
      the no-DVFS baseline and the per-tile DVFS design use (the paper's
      "naive per-tile mapping does not consider utilization").
    - [Dvfs_aware]: ICED's mapping — a node labeled at level L may only
      use an island whose tentatively-assigned level is at least L
      (Algorithm 2, line 17); islands are opened reluctantly; placing a
      node on an island faster than its label is penalized; dependent
      nodes pack into busy tiles so whole islands stay idle or slow. *)

open Iced_arch
open Iced_dfg

type strategy = Cost.strategy = Conventional | Dvfs_aware

type knobs = Cost.knobs = {
  island_affinity : bool;
      (** prefer islands whose tentative level matches the node label *)
  packing : bool;  (** pull slowable nodes onto busy tiles *)
  phase_alignment : bool;
      (** keep slowed islands' events on one clock phase *)
  conventional_fallback : bool;
      (** retry an II with the conventional cost model before bumping *)
}
(** Ablation switches for the DVFS-aware cost model (the bench's
    ablation study disables them one at a time). *)

val all_knobs : knobs
(** Every feature on — the production configuration. *)

type request = Search.request = {
  cgra : Cgra.t;
  strategy : strategy;
  backend : Backend.t;
      (** which placer/router pair {!Search} orchestrates (default
          {!Backend.default}, the golden-corpus-pinned greedy+Dijkstra
          pair); see {!Backend} for the [sa] and [pathfinder]
          presets *)
  tiles : int list option;  (** sub-fabric; default: the whole fabric *)
  memory_tiles : int list option;
      (** default: westmost column of the (sub-)fabric *)
  label_floor : Dvfs.level;  (** lowest label Algorithm 1 may use *)
  label_guard : int;
      (** fault guard band (default 0): raises Algorithm 1's floor
          this many levels so upset-prone islands keep voltage margin
          ({!Labeling.label}'s [guard]) *)
  max_ii : int;  (** give up past this II *)
  knobs : knobs;
  cancel : unit -> bool;
      (** polled before each II attempt; returning [true] aborts the
          search with a "deadline exceeded" error — the design-space
          sweep's per-point timeout hook, and the fault-recovery
          remap's retry budget *)
  dead_tiles : int list;
      (** permanently faulted tiles (default []): removed from the
          sub-fabric before placement, so the mapper remaps around
          them *)
  dead_links : (int * Dir.t) list;
      (** faulted crossbar output ports (default []): masked in the
          MRRG so routes plan around them *)
  commit_islands : bool;
      (** Figure 4 study: pre-commit islands to levels from the label
          quota; slowed tiles then cost multiplier-many slots per op
          and per route hop, so over-large islands degrade the II *)
}

val request : ?strategy:strategy -> ?backend:Backend.t -> ?tiles:int list ->
  ?memory_tiles:int list -> ?label_floor:Dvfs.level -> ?label_guard:int ->
  ?max_ii:int -> ?knobs:knobs -> ?cancel:(unit -> bool) -> ?dead_tiles:int list ->
  ?dead_links:(int * Dir.t) list -> ?commit_islands:bool ->
  Cgra.t -> request
(** Build a request with defaults: [Dvfs_aware], {!Backend.default},
    whole fabric, westmost-column memory, floor [Rest], no guard band,
    [max_ii] 64, no cancellation, no faulted resources. *)

type stats = Telemetry.t = {
  mutable attempts : int;  (** (II, margin, cost-model) placement attempts *)
  mutable ii_bumps : int;  (** times the II ladder moved up *)
  mutable margin_position : int;
      (** ladder index of the congestion margin in use when the search
          ended (0 = tightest) *)
  mutable placements_tried : int;  (** candidate (tile, time) reservations *)
  mutable route_calls : int;  (** Dijkstra invocations *)
  mutable route_failures : int;  (** routes that found no path in deadline *)
  mutable expansions : int;  (** Dijkstra heap pops *)
  mutable sa_moves_accepted : int;  (** annealing placer: accepted moves *)
  mutable sa_moves_rejected : int;
      (** annealing placer: rejected (or infeasible) moves *)
  mutable sa_temp_steps : int;  (** annealing placer: temperature steps *)
  mutable pf_rounds : int;  (** Pathfinder: rip-up-and-reroute rounds *)
  mutable pf_overflow : int;
      (** Pathfinder: overused port slots summed over rounds *)
  mutable sat_conflicts : int;
      (** exact oracle ({!Exact.certify}): CDCL conflicts *)
  mutable sat_decisions : int;  (** exact oracle: CDCL decisions *)
  mutable sat_propagations : int;  (** exact oracle: CDCL propagations *)
  mutable per_ii_s : (int * float) list;
      (** wall seconds per attempted II, most recent first — read it
          through {!per_ii_times} *)
  mutable wall_s : float;  (** total mapping wall seconds *)
}
(** Mapping telemetry, accumulated per {!map} call into the caller's
    sink — see {!Telemetry}. *)

val create_stats : unit -> stats
val reset_stats : stats -> unit

val merge_stats : into:stats -> stats -> unit
(** Aggregate one run's counters into a campaign-wide sink. *)

val per_ii_times : stats -> (int * float) list
(** Per-II attempt wall time in ascending attempt order. *)

val stats_to_json : stats -> string
(** One flat JSON object (the CLI's [--stats --json] payload). *)

val pp_stats : Format.formatter -> stats -> unit

val map : ?stats:stats -> request -> Graph.t -> (Mapping.t, string) result
(** Map a kernel.  The result carries Algorithm 1's labels and an
    all-[Normal] island assignment; apply {!Levels.assign} to lower the
    islands.  The result always passes {!Validate.check}.  When [stats]
    is given, the run's telemetry is merged into it. *)

val map_exn : ?stats:stats -> request -> Graph.t -> Mapping.t
(** @raise Failure when no mapping is found within [max_ii]. *)
