(** Algorithm 2 of the paper: heuristic DVFS-aware modulo mapping.

    Starting from II = max(RecMII, ResMII), the mapper places nodes in
    topological order onto the MRRG, routing every incident dependence
    with Dijkstra as it goes, and bumps the II on failure (paper
    Algorithm 2, line 26).

    Two placement-cost strategies are provided:

    - [Conventional]: the utilization-oblivious baseline — minimize
      routing cost and balance load across tiles.  This is the mapping
      the no-DVFS baseline and the per-tile DVFS design use (the paper's
      "naive per-tile mapping does not consider utilization").
    - [Dvfs_aware]: ICED's mapping — a node labeled at level L may only
      use an island whose tentatively-assigned level is at least L
      (Algorithm 2, line 17); islands are opened reluctantly; placing a
      node on an island faster than its label is penalized; dependent
      nodes pack into busy tiles so whole islands stay idle or slow. *)

open Iced_arch
open Iced_dfg

type strategy = Conventional | Dvfs_aware

type knobs = {
  island_affinity : bool;
      (** prefer islands whose tentative level matches the node label *)
  packing : bool;  (** pull slowable nodes onto busy tiles *)
  phase_alignment : bool;
      (** keep slowed islands' events on one clock phase *)
  conventional_fallback : bool;
      (** retry an II with the conventional cost model before bumping *)
}
(** Ablation switches for the DVFS-aware cost model (the bench's
    ablation study disables them one at a time). *)

val all_knobs : knobs
(** Every feature on — the production configuration. *)

type request = {
  cgra : Cgra.t;
  strategy : strategy;
  tiles : int list option;  (** sub-fabric; default: the whole fabric *)
  memory_tiles : int list option;
      (** default: westmost column of the (sub-)fabric *)
  label_floor : Dvfs.level;  (** lowest label Algorithm 1 may use *)
  label_guard : int;
      (** fault guard band (default 0): raises Algorithm 1's floor
          this many levels so upset-prone islands keep voltage margin
          ({!Labeling.label}'s [guard]) *)
  max_ii : int;  (** give up past this II *)
  knobs : knobs;
  cancel : unit -> bool;
      (** polled before each II attempt; returning [true] aborts the
          search with a "deadline exceeded" error — the design-space
          sweep's per-point timeout hook, and the fault-recovery
          remap's retry budget *)
  dead_tiles : int list;
      (** permanently faulted tiles (default []): removed from the
          sub-fabric before placement, so the mapper remaps around
          them *)
  dead_links : (int * Dir.t) list;
      (** faulted crossbar output ports (default []): masked in the
          MRRG so routes plan around them *)
  commit_islands : bool;
      (** Figure 4 study: pre-commit islands to levels from the label
          quota; slowed tiles then cost multiplier-many slots per op
          and per route hop, so over-large islands degrade the II *)
}

val request : ?strategy:strategy -> ?tiles:int list -> ?memory_tiles:int list ->
  ?label_floor:Dvfs.level -> ?label_guard:int -> ?max_ii:int -> ?knobs:knobs ->
  ?cancel:(unit -> bool) -> ?dead_tiles:int list -> ?dead_links:(int * Dir.t) list ->
  ?commit_islands:bool ->
  Cgra.t -> request
(** Build a request with defaults: [Dvfs_aware], whole fabric,
    westmost-column memory, floor [Rest], no guard band, [max_ii] 64,
    no cancellation, no faulted resources. *)

val map : request -> Graph.t -> (Mapping.t, string) result
(** Map a kernel.  The result carries Algorithm 1's labels and an
    all-[Normal] island assignment; apply {!Levels.assign} to lower the
    islands.  The result always passes {!Validate.check}. *)

val map_exn : request -> Graph.t -> Mapping.t
(** @raise Failure when no mapping is found within [max_ii]. *)
