(** Mapping telemetry: where does Algorithm 2's time go?

    One mutable record accumulates counters across a mapping run — II
    ladder attempts, placement candidates tried, router invocations and
    Dijkstra expansions, per-II wall time.  The mapper fills a fresh
    record per {!Mapper.map} call and merges it into the caller's
    optional sink, so a sink can aggregate across many mappings (a
    sweep, a fault campaign) without the hot path ever branching on an
    option. *)

type t = {
  mutable attempts : int;  (** (II, margin, cost-model) placement attempts *)
  mutable ii_bumps : int;  (** times the II ladder moved up *)
  mutable margin_position : int;
      (** ladder index of the congestion margin in use when the search
          ended (0 = tightest) *)
  mutable placements_tried : int;  (** candidate (tile, time) reservations *)
  mutable route_calls : int;  (** Dijkstra invocations *)
  mutable route_failures : int;  (** routes that found no path in deadline *)
  mutable expansions : int;  (** Dijkstra heap pops *)
  mutable sa_moves_accepted : int;  (** annealing placer: accepted moves *)
  mutable sa_moves_rejected : int;
      (** annealing placer: rejected (or infeasible) moves *)
  mutable sa_temp_steps : int;  (** annealing placer: temperature steps *)
  mutable pf_rounds : int;  (** Pathfinder: rip-up-and-reroute rounds *)
  mutable pf_overflow : int;
      (** Pathfinder: congestion-overflowed port slots summed over
          rounds (0 when every edge routed conflict-free first try) *)
  mutable sat_conflicts : int;  (** exact oracle: CDCL conflicts *)
  mutable sat_decisions : int;  (** exact oracle: CDCL decisions *)
  mutable sat_propagations : int;  (** exact oracle: CDCL propagations *)
  mutable per_ii_s : (int * float) list;
      (** wall seconds per attempted II, most recent first — read it
          through {!per_ii} *)
  mutable wall_s : float;  (** total mapping wall seconds *)
}

val create : unit -> t
(** All-zero record. *)

val reset : t -> unit

val per_ii : t -> (int * float) list
(** Per-II attempt wall time in ascending attempt order. *)

val add_ii_time : t -> ii:int -> float -> unit

val merge : into:t -> t -> unit
(** Add counters and wall times of [src] into the sink ([margin_position]
    takes the max); used to aggregate sweeps and campaigns. *)

val to_json : t -> string
(** One flat JSON object (per-II times as [[ii, seconds]] pairs). *)

val pp : Format.formatter -> t -> unit
(** One-line human-readable summary. *)
