(** Pluggable placement/routing strategies for the mapper.

    A backend names one placer and one router; {!Search} orchestrates
    whichever pair a {!Mapper.request} carries.  Three presets are
    reachable from every user surface (CLI [--backend], the serve
    protocol's map op, sweep configs):

    - [default] — greedy topological placement with as-you-go Dijkstra
      routing, the pair pinned byte-for-byte by the golden corpus;
    - [sa] — a seeded simulated-annealing placer ({!Anneal}) followed
      by the negotiated-congestion router;
    - [pathfinder] — greedy placement decoupled from routing, with a
      Pathfinder-style rip-up-and-reroute router ({!Pathfinder}).

    See [docs/MAPPER_BACKENDS.md] for the interface contract and the
    tuning knobs. *)

type sa_params = {
  seed : int;  (** move-stream seed; equal seeds give equal mappings *)
  moves : int;  (** total move budget across warming and cooling *)
  batch : int;  (** moves per temperature step *)
  t_init : float;  (** starting temperature *)
  t_min : float;  (** cooling stops below this temperature *)
  warm_target : float;
      (** warm until a batch's acceptance ratio reaches this *)
  warm_mult : float;  (** temperature multiplier per warming step *)
  cool : float;  (** temperature multiplier per cooling step *)
}
(** Simulated-annealing schedule (the [SAStruct] /[DefaultSAWarm] /
    [DefaultSACool] trio of Mapper2.jl, collapsed into one record). *)

type pf_params = {
  max_rounds : int;  (** rip-up-and-reroute rounds before giving up *)
  present_base : int;
      (** first-round cost per extra present occupant of a port slot *)
  present_growth : int;
      (** multiplicative growth of the present cost per round *)
  history_weight : int;
      (** cost per unit of accumulated congestion history *)
}
(** Negotiated-congestion schedule (Pathfinder's present/history cost
    split). *)

type placer = Greedy | Annealing of sa_params

type router = Incremental | Negotiated of pf_params
(** [Incremental] is the legacy Dijkstra router: fused with greedy
    placement when paired with {!Greedy} (routes each node's incident
    deps as it is placed), or run edge-by-edge over a finished
    placement otherwise.  [Negotiated] routes all deps of a complete
    placement, tolerating and then negotiating away congestion. *)

type t = { placer : placer; router : router }

val default_sa_params : sa_params
val default_pf_params : pf_params

val default : t
(** Greedy + incremental Dijkstra — the golden-corpus-pinned pair. *)

val sa : t
(** Annealing placer + negotiated router. *)

val pathfinder : t
(** Greedy placement (routing-blind) + negotiated router. *)

val is_default : t -> bool

val to_string : t -> string
(** Canonical name: ["default"], ["sa"], ["sa:<seed>"],
    ["pathfinder"], or ["sa+dijkstra:<seed>"].  Injective on every
    value {!of_string} can produce; used for cache keys and protocol
    frames. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string} (non-preset parameter records are not
    representable and parse back to presets with the given seed). *)

val names : string list
(** The three preset names, for CLI help and docs. *)
