open Iced_arch

type strategy = Cost.strategy = Conventional | Dvfs_aware

type knobs = Cost.knobs = {
  island_affinity : bool;
  packing : bool;
  phase_alignment : bool;
  conventional_fallback : bool;
}

let all_knobs = Cost.all_knobs

type request = Search.request = {
  cgra : Cgra.t;
  strategy : strategy;
  backend : Backend.t;
  tiles : int list option;
  memory_tiles : int list option;
  label_floor : Dvfs.level;
  label_guard : int;
  max_ii : int;
  knobs : knobs;
  cancel : unit -> bool;
  dead_tiles : int list;
  dead_links : (int * Dir.t) list;
  commit_islands : bool;
}

let request = Search.request

type stats = Telemetry.t = {
  mutable attempts : int;
  mutable ii_bumps : int;
  mutable margin_position : int;
  mutable placements_tried : int;
  mutable route_calls : int;
  mutable route_failures : int;
  mutable expansions : int;
  mutable sa_moves_accepted : int;
  mutable sa_moves_rejected : int;
  mutable sa_temp_steps : int;
  mutable pf_rounds : int;
  mutable pf_overflow : int;
  mutable sat_conflicts : int;
  mutable sat_decisions : int;
  mutable sat_propagations : int;
  mutable per_ii_s : (int * float) list;
  mutable wall_s : float;
}

let create_stats = Telemetry.create
let reset_stats = Telemetry.reset
let merge_stats = Telemetry.merge
let per_ii_times = Telemetry.per_ii
let stats_to_json = Telemetry.to_json
let pp_stats = Telemetry.pp

let map ?stats req dfg = Search.run ?stats req dfg

let map_exn ?stats req dfg =
  match map ?stats req dfg with
  | Ok m -> m
  | Error msg -> failwith ("Mapper.map: " ^ msg)
