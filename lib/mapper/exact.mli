(** Exact minimal-II oracles for small DFGs.

    The paper contrasts its two-step heuristic against ILP-based
    mapping (CGRA-ME), which finds optimal IIs but takes hours.  This
    module plays that reference role twice over:

    - {!minimal_ii} is the legacy enumerative branch-and-bound —
      depth-first placement in topological order with full routing at
      every step, within a placement-attempt budget;
    - {!certify} is the SAT-backed oracle: per candidate II it
      clausifies the {!Encode} relaxation, runs the {!Iced_sat} CDCL
      solver under a conflict budget, routes each model with the real
      {!Router} (blocking unroutable placements, CEGAR-style), and
      returns a {!Validate.check}-clean witness mapping at the first
      feasible II.  An [Unsat] answer is a proof of infeasibility at
      that II, so [Optimal] verdicts are certificates.

    Both report through the same {!verdict}: [Optimal] only when every
    lower II was refuted outright; if any lower II ran out of budget
    the answer is [Unknown] carrying the first such II, never a
    spurious [Optimal]. *)

open Iced_arch
open Iced_dfg

type verdict =
  | Optimal of int  (** the smallest feasible II, every lower II refuted *)
  | Infeasible  (** every II up to [max_ii] refuted *)
  | Unknown of { first_undecided : int; feasible_at : int option }
      (** the budget ran out at II [first_undecided] before deciding
          it; [feasible_at] is the smallest II above it where a mapping
          {e was} found (so the optimum lies in
          [[first_undecided, feasible_at]]), or [None] if the search
          also ran out of [max_ii] without finding one *)

type ii_outcome =
  | Ii_feasible  (** a mapping was found (and, for {!certify}, routed) *)
  | Ii_refuted  (** proven infeasible at this II *)
  | Ii_budget  (** undecided: the search budget ran out *)

type report = {
  verdict : verdict;
  witness : Mapping.t option;
      (** present iff [verdict = Optimal]; passes {!Validate.check} *)
  per_ii : (int * ii_outcome) list;  (** ascending II, one per attempt *)
  start_ii : int;  (** [Analysis.min_ii], where iteration began *)
  max_ii : int;
  conflicts : int;  (** CDCL conflicts, summed over all IIs *)
  decisions : int;
  propagations : int;
  restarts : int;
  route_blocks : int;
      (** models whose placements the router could not realize and
          that were blocked before re-solving (CEGAR refinements) *)
  vars : int;  (** variables of the largest encoding built *)
  clauses : int;  (** problem clauses of the largest encoding built *)
}

val minimal_ii :
  ?max_ii:int -> ?budget:int -> Cgra.t -> Graph.t -> verdict
(** Legacy branch-and-bound.  [max_ii] defaults to 16; [budget]
    (placement attempts per II) defaults to 200_000.  Intended for
    DFGs of at most ~10 nodes. *)

val certify :
  ?max_ii:int ->
  ?budget_conflicts:int ->
  ?seed:int ->
  ?stats:Telemetry.t ->
  Cgra.t ->
  Graph.t ->
  report
(** SAT-backed certification.  [max_ii] defaults to 16;
    [budget_conflicts] (CDCL conflicts per II, shared by CEGAR rounds)
    defaults to 100_000; [seed] (default 0) fixes solver phases.  The
    whole run is deterministic: same DFG, fabric, budget and seed give
    the identical report.  When [stats] is given, solver counters are
    merged into it ([sat_conflicts] and friends) along with router
    telemetry from witness construction. *)
