(** Exact (branch-and-bound) modulo mapping for small DFGs.

    The paper contrasts its two-step heuristic against ILP-based
    mapping (CGRA-ME), which finds optimal IIs but takes hours.  This
    module plays that reference role: it exhaustively searches
    placements (with full routing feasibility at every step) for the
    smallest II admitting a valid mapping, within a node budget that
    keeps the search tractable.  Tests use it to certify that the
    heuristic mapper reaches the optimal II on small kernels. *)

open Iced_arch
open Iced_dfg

type verdict =
  | Optimal of int  (** the smallest feasible II *)
  | Infeasible  (** no mapping up to [max_ii] *)
  | Unknown  (** search budget exhausted before an answer *)

val minimal_ii :
  ?max_ii:int -> ?budget:int -> Cgra.t -> Graph.t -> verdict
(** Smallest II with a complete, routed modulo mapping on the fabric.
    [max_ii] defaults to 16; [budget] (placement attempts per II)
    defaults to 200_000.  Intended for DFGs of at most ~10 nodes.
    [Optimal] is only reported when every lower II was exhaustively
    refuted; if any lower II hit the search budget the answer is
    [Unknown], never a spurious [Optimal]. *)
