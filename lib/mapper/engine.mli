(** Shared placement state and cost helpers for every mapper backend.

    One [state] is built per (II, margin, cost-model) attempt by
    {!Search} and handed to whichever placer/router pair the request's
    {!Backend.t} selects.  The helpers here are the contract between
    backends: time windows and cheap costs for ordering candidates,
    width-aware FU reservation against the MRRG occupancy arenas, and
    incident-dependence routing for the incremental router. *)

open Iced_arch
open Iced_dfg
module Mrrg = Iced_mrrg.Mrrg

type strategy = Cost.strategy = Conventional | Dvfs_aware

type knobs = Cost.knobs = {
  island_affinity : bool;
  packing : bool;
  phase_alignment : bool;
  conventional_fallback : bool;
}

type request = {
  cgra : Cgra.t;
  strategy : strategy;
  backend : Backend.t;
  tiles : int list option;
  memory_tiles : int list option;
  label_floor : Dvfs.level;
  label_guard : int;
  max_ii : int;
  knobs : knobs;
  cancel : unit -> bool;
  dead_tiles : int list;
  dead_links : (int * Dir.t) list;
  commit_islands : bool;
}
(** See {!Mapper.request} for field documentation. *)

val request : ?strategy:strategy -> ?backend:Backend.t -> ?tiles:int list ->
  ?memory_tiles:int list -> ?label_floor:Dvfs.level -> ?label_guard:int ->
  ?max_ii:int -> ?knobs:knobs -> ?cancel:(unit -> bool) -> ?dead_tiles:int list ->
  ?dead_links:(int * Dir.t) list -> ?commit_islands:bool ->
  Cgra.t -> request

type state = {
  dfg : Graph.t;
  req : request;
  tiles : int list;
  memory_tiles : int list;
  ii : int;
  labels : (int * Dvfs.level) list;
  estimate : Estimate.t;
  cycle_mates : (int, int list) Hashtbl.t;
  mrrg : Mrrg.t;
  placements : (int, int * int) Hashtbl.t;  (** node -> (tile, time) *)
  mutable routes : Mapping.route list;
  island_level : (int, Dvfs.level) Hashtbl.t;  (** tentative, Dvfs_aware only *)
  committed : (int, Dvfs.level) Hashtbl.t option;  (** island -> level, commit mode *)
  scratch : Router.scratch;
  stats : Telemetry.t;
}
(** One placement attempt's working set.  Placers mutate [placements],
    the MRRG, and [island_level]; routers append to [routes] and
    reserve MRRG ports. *)

val rank : Dvfs.level -> int
(** {!Cost.rank}, re-exported for backends' island bookkeeping. *)

val edge_slack : state -> Graph.edge -> int
(** Loop-carried slack of an edge in cycles ([distance * II], plus two
    extra iterations for iteration-invariant [Const] producers). *)

val label_of : state -> int -> Dvfs.level

val busy_count : state -> int -> int

val tentative_level : state -> int -> Dvfs.level option

val tile_width : state -> int -> int
(** Commit-mode slot width of a tile (1 outside commit mode). *)

val committed_level : state -> int -> Dvfs.level option

val phase_penalty : state -> weight:int -> int -> int -> int

val route_extra_cost : state -> tile:int -> time:int -> int
(** Per-hop routing penalty from the DVFS cost model (unopened islands,
    phase misalignment). *)

val time_window : state -> int -> int -> int * int
(** [time_window state node tile] is [(est, lst)]: the earliest sound
    start honouring placed producers and the schedule estimate, and the
    latest start admissible for placed consumers ([max_int] = none). *)

val cheap_cost : state -> int -> int -> int -> int
(** Lower-bound cost of placing [node] at [(tile, time)]; orders full
    placement attempts without touching the router. *)

val route_incident : state -> int -> int -> int ->
  (Mapping.route list, string) result
(** Route every dependence between a node just placed at [(tile, time)]
    and its already-placed neighbours, reserving MRRG ports; on failure
    every reservation made by this call is rolled back. *)

val reserve_fu : state -> int -> int -> int -> (unit, string) result
(** [reserve_fu state node tile time] claims the FU slot(s) for [node]
    (commit-mode width-aware), rolling back on conflict. *)

val release_fu : state -> int -> int -> unit
(** Release an FU claim made by {!reserve_fu} (same tile/time). *)

val rebuild_island_levels : state -> unit
(** Recompute tentative island levels from the current (complete)
    placement; idempotent, deterministic. *)

val all_deps : state -> Graph.edge list
(** Every DFG edge in one deterministic order (ascending producer id,
    then successor-edge order). *)

val route_complete : state -> (unit, string) result
(** Route a complete placement edge-by-edge with the incremental
    Dijkstra router (no congestion negotiation). *)
