(** The mapping search: the II / margin / cost-model ladder
    (Algorithm 2's loop), orchestrating whichever placer/router pair
    the request's {!Backend.t} selects over a shared {!Engine.state}
    per attempt.  Use it through the {!Mapper} façade — its [request]
    and [stats] types are equations onto {!Engine} and {!Telemetry}. *)

open Iced_arch
open Iced_dfg

type strategy = Cost.strategy = Conventional | Dvfs_aware

type knobs = Cost.knobs = {
  island_affinity : bool;
  packing : bool;
  phase_alignment : bool;
  conventional_fallback : bool;
}

type request = Engine.request = {
  cgra : Cgra.t;
  strategy : strategy;
  backend : Backend.t;
  tiles : int list option;
  memory_tiles : int list option;
  label_floor : Dvfs.level;
  label_guard : int;
  max_ii : int;
  knobs : knobs;
  cancel : unit -> bool;
  dead_tiles : int list;
  dead_links : (int * Dir.t) list;
  commit_islands : bool;
}
(** See {!Mapper.request} for field documentation. *)

val request : ?strategy:strategy -> ?backend:Backend.t -> ?tiles:int list ->
  ?memory_tiles:int list -> ?label_floor:Dvfs.level -> ?label_guard:int ->
  ?max_ii:int -> ?knobs:knobs -> ?cancel:(unit -> bool) -> ?dead_tiles:int list ->
  ?dead_links:(int * Dir.t) list -> ?commit_islands:bool ->
  Cgra.t -> request

val run : ?stats:Telemetry.t -> request -> Graph.t -> (Mapping.t, string) result
(** One full mapping search: II ladder from max(RecMII, ResMII) up to
    [max_ii], every congestion margin (and, for [Dvfs_aware], the
    conventional-fallback retry) per II.  A single routing scratch
    arena is reused across the entire search.  Telemetry is accumulated
    internally and merged into [stats] when given. *)
