(** Algorithm 1 of the paper: LabelDVFSLevel.

    Assigns each DFG node a {e preferred} DVFS level before mapping:

    - nodes on the longest recurrence cycles -> [Normal];
    - nodes on recurrence cycles at most half as long -> [Relax];
    - remaining nodes -> [Rest] while whole islands' worth of
      tile-time capacity remains for them, then [Relax] while any
      capacity remains, then [Normal] (slowing a node multiplies the
      tile-time it occupies, so over-labeling would destroy the
      mapping's feasibility — paper Section IV-A).

    Labels only guide the mapper's cost function; the post-mapping
    level assignment ({!Levels}) decides the final island levels. *)

open Iced_arch
open Iced_dfg

val label :
  ?floor:Dvfs.level ->
  ?guard:int ->
  Graph.t ->
  cgra:Cgra.t ->
  tiles:int list ->
  ii:int ->
  (int * Dvfs.level) list
(** Label every node.  [tiles] is the (sub-)fabric the kernel may use;
    [ii] the target initiation interval.  [floor] (default [Rest])
    raises the lowest label used — streaming kernels pass [Relax]
    because island levels must keep one step of downward headroom at
    runtime (paper Section IV-B).  [guard] (default 0) is the
    fault-injection guard band: each guard step raises the effective
    floor one level, so upset-prone islands (whose low-voltage levels
    see transient timing faults) are labeled with extra voltage margin.
    @raise Invalid_argument if [tiles] is empty, [ii <= 0], or
    [guard < 0]. *)

val capacity_slots : tiles:int list -> ii:int -> int
(** Total tile-time slots available per II: [length tiles * ii]. *)
