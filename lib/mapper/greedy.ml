open Iced_arch
open Iced_dfg
module Mrrg = Iced_mrrg.Mrrg
module Obs = Iced_obs.Trace
open Engine

(* [route = true] is the legacy fused pair: each node's incident deps
   are routed (and their ports reserved) the moment it is placed, and a
   placement that cannot route is undone and the next candidate tried.
   [route = false] places only (FU reservations + island bookkeeping),
   leaving every dependence for a whole-placement router backend. *)
let place_node_untraced ~route state node =
  let cgra = state.req.cgra in
  let op = (Graph.node state.dfg node).op in
  let memory_ok tile = (not (Op.needs_memory op)) || List.mem tile state.memory_tiles in
  (* Commit mode steers a node onto islands of exactly its label's
     level first, falling back to any island at least as fast when the
     exact set is empty or yields no feasible placement (e.g. a
     rest-labeled operand of a critical node whose deadline no distant
     rest island can meet). *)
  let fallback_tiles =
    List.filter
      (fun tile ->
        memory_ok tile
        &&
        match committed_level state tile with
        | Some level -> Dvfs.at_most (label_of state node) level
        | None -> true)
      state.tiles
  in
  let tile_sets =
    match state.committed with
    | None -> [ List.filter memory_ok state.tiles ]
    | Some _ ->
      let label = label_of state node in
      let exact =
        List.filter
          (fun tile -> memory_ok tile && committed_level state tile = Some label)
          state.tiles
      in
      if exact = [] then [ fallback_tiles ] else [ exact; fallback_tiles ]
  in
  let note_island tile =
    match state.req.strategy with
    | Conventional -> ()
    | Dvfs_aware -> (
      let island = Cgra.island_of cgra tile in
      let label = label_of state node in
      match Hashtbl.find_opt state.island_level island with
      | None -> Hashtbl.replace state.island_level island label
      | Some assigned ->
        if rank label > rank assigned then Hashtbl.replace state.island_level island label)
  in
  let try_tiles eligible_tiles =
    let candidates = ref [] in
    List.iter
      (fun tile ->
        let est, lst = time_window state node tile in
        let upper = min (est + state.ii - 1) lst in
        let rec collect time =
          if time > upper then ()
          else begin
            if Mrrg.is_free state.mrrg ~tile ~time Mrrg.Fu then
              candidates := (cheap_cost state node tile time, tile, time) :: !candidates;
            collect (time + 1)
          end
        in
        collect est)
      eligible_tiles;
    let ordered = List.sort compare !candidates in
    let max_attempts = 100 in
    let describe_windows () =
      let sample =
        List.filteri (fun i _ -> i < 3) eligible_tiles
        |> List.map (fun tile ->
               let est, lst = time_window state node tile in
               Printf.sprintf "t%d:[%d,%s]" tile est
                 (if lst = max_int then "inf" else string_of_int lst))
      in
      let neighbours =
        let placed id =
          match Hashtbl.find_opt state.placements id with
          | Some (tile, time) -> Printf.sprintf "n%d@t%d,c%d" id tile time
          | None -> Printf.sprintf "n%d@?" id
        in
        let preds =
          List.map (fun (e : Graph.edge) -> placed e.src) (Graph.predecessors state.dfg node)
        in
        let succs =
          List.map (fun (e : Graph.edge) -> placed e.dst) (Graph.successors state.dfg node)
        in
        Printf.sprintf "preds[%s] succs[%s]" (String.concat " " preds)
          (String.concat " " succs)
      in
      String.concat " " sample ^ " " ^ neighbours
    in
    let rec attempt n = function
      | [] ->
        Error
          (Printf.sprintf "node n%d: no feasible placement at II=%d (windows %s)" node
             state.ii (describe_windows ()))
      | _ when n >= max_attempts ->
        Error (Printf.sprintf "node n%d: placement attempts exhausted at II=%d" node state.ii)
      | (_, tile, time) :: rest -> (
        let s = state.stats in
        s.Telemetry.placements_tried <- s.Telemetry.placements_tried + 1;
        (* in commit mode a slowed tile's op covers multiplier-many
           modulo slots *)
        match reserve_fu state node tile time with
        | Error _ -> attempt (n + 1) rest
        | Ok () ->
          if not route then begin
            Hashtbl.replace state.placements node (tile, time);
            note_island tile;
            Ok ()
          end
          else (
            match route_incident state node tile time with
            | Ok routes ->
              Hashtbl.replace state.placements node (tile, time);
              state.routes <- routes @ state.routes;
              note_island tile;
              Ok ()
            | Error _ ->
              release_fu state tile time;
              attempt (n + 1) rest))
    in
    attempt 0 ordered
  in
  let rec first_success last_err = function
    | [] -> Error last_err
    | tiles :: rest -> (
      match try_tiles tiles with
      | Ok () -> Ok ()
      | Error msg -> ( match rest with [] -> Error msg | _ -> first_success msg rest))
  in
  first_success "no tile sets" tile_sets

let place_node ~route state node =
  if not (Obs.enabled ()) then place_node_untraced ~route state node
  else
    Obs.with_span
      ~args:[ ("node", Obs.Int node) ]
      ~cat:"mapper" ~name:"place"
      (fun () ->
        match place_node_untraced ~route state node with
        | Ok () as r -> r
        | Error msg as r ->
          Obs.span_arg "error" (Obs.Str msg);
          r)

let place_all ~route state order =
  let rec place = function
    | [] -> Ok ()
    | node :: rest -> (
      match place_node ~route state node with Ok () -> place rest | Error msg -> Error msg)
  in
  place order
