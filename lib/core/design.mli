(** One-call evaluation of a kernel on one of the paper's four design
    points.  This is the facade the benchmark harness, the examples,
    and the CLI share: it picks the mapping strategy, island geometry,
    level-assignment policy, and power-model overheads that define each
    design, so every figure compares exactly the same four systems.

    - {b Baseline}: conventional CGRA — utilization-oblivious mapping,
      no DVFS hardware, every tile always at nominal V/F.
    - {b Baseline_gated}: same mapping; idle islands power-gated.
    - {b Per_tile}: the "improved UE-CGRA" — conventional mapping on a
      1x1-island fabric, every tile lowered to its soundest level or
      gated, one DVFS controller per tile (>30 % of a tile in power and
      area).
    - {b Iced}: DVFS-aware mapping (Algorithms 1 and 2), per-island
      level assignment, one controller per island. *)

open Iced_arch
open Iced_mapper

type point = Baseline | Baseline_gated | Per_tile | Iced

val all_points : point list
val point_to_string : point -> string

type evaluation = {
  point : point;
  kernel : string;
  unroll : int;
  mapping : Mapping.t;
  ii : int;
  avg_utilization : float;  (** paper Figures 2 and 9 *)
  avg_dvfs : float;  (** paper Figures 10 and 12 *)
  power_mw : float;  (** paper Figure 11 *)
  speedup_vs_cpu : float;
}

val evaluate :
  ?cgra:Cgra.t ->
  ?params:Iced_power.Params.t ->
  ?unroll:int ->
  ?label_floor:Dvfs.level ->
  ?max_ii:int ->
  ?cancel:(unit -> bool) ->
  ?backend:Backend.t ->
  ?stats:Mapper.stats ->
  ?trace:bool ->
  point ->
  Iced_kernels.Kernel.t ->
  (evaluation, string) result
(** Map and evaluate a kernel ([unroll] 1 or 2, default 1) on the
    design point.  [cgra] defaults to the 6x6 ICED prototype; for
    [Per_tile] the same fabric is re-islanded 1x1.  [label_floor]
    (default [Rest]) is the slowest DVFS level Algorithm 1 may label a
    node with — restricting it models a fabric supporting fewer active
    levels; [max_ii] (default 64) bounds the mapper's II search, the
    design-space explorer's per-point work cap; [cancel] is polled
    between II attempts and aborts with a "deadline exceeded" error —
    the explorer's per-point timeout.  [backend] (default
    {!Backend.default}) selects the mapper's placement/routing pair;
    [stats] receives the mapper's telemetry for this evaluation
    (merged in).

    When the {!Iced_obs.Trace} collector is on, the evaluation runs
    inside a ["design"]/["evaluate"] span carrying the kernel name,
    design point, and unroll factor (plus the achieved II on success);
    the mapper emits its own nested spans.  [trace:false] (default
    [true]) suppresses all of them for this call without touching the
    global collector — tracing never changes the result either way. *)

val evaluate_exn :
  ?cgra:Cgra.t ->
  ?params:Iced_power.Params.t ->
  ?unroll:int ->
  ?label_floor:Dvfs.level ->
  ?max_ii:int ->
  ?cancel:(unit -> bool) ->
  ?backend:Backend.t ->
  ?stats:Mapper.stats ->
  ?trace:bool ->
  point ->
  Iced_kernels.Kernel.t ->
  evaluation
(** Same as {!evaluate} but raising on failure.
    @raise Failure when mapping fails. *)

val functional_check :
  ?iterations:int -> Iced_kernels.Kernel.t -> Mapping.t -> (unit, string) result
(** Run the mapped schedule and the golden DFG interpreter on the
    kernel's data binding and compare store traces ([iterations]
    defaults to 25). *)
