open Iced_arch
open Iced_mapper
module Metrics = Iced_sim.Metrics
module Model = Iced_power.Model

type point = Baseline | Baseline_gated | Per_tile | Iced

let all_points = [ Baseline; Baseline_gated; Per_tile; Iced ]

let point_to_string = function
  | Baseline -> "baseline"
  | Baseline_gated -> "baseline+pg"
  | Per_tile -> "per-tile dvfs+pg"
  | Iced -> "iced"

type evaluation = {
  point : point;
  kernel : string;
  unroll : int;
  mapping : Mapping.t;
  ii : int;
  avg_utilization : float;
  avg_dvfs : float;
  power_mw : float;
  speedup_vs_cpu : float;
}

let strategy_of = function
  | Baseline | Baseline_gated | Per_tile -> Mapper.Conventional
  | Iced -> Mapper.Dvfs_aware

let fabric_of cgra = function
  | Per_tile -> Cgra.per_tile cgra
  | Baseline | Baseline_gated | Iced -> cgra

let model_design = function
  | Baseline -> Model.Baseline
  | Baseline_gated -> Model.Baseline_gated
  | Per_tile -> Model.Per_tile_dvfs
  | Iced -> Model.Iced

let assign_levels point mapping =
  match point with
  | Baseline -> Levels.all_normal mapping
  | Baseline_gated -> Levels.normal_with_gating mapping
  | Per_tile | Iced -> Levels.assign mapping

module Trace = Iced_obs.Trace

let evaluate_body ~cgra ~params ~unroll ~label_floor ~max_ii ~cancel ~backend ?stats
    point kernel =
  let fabric = fabric_of cgra point in
  let dfg = Iced_kernels.Kernel.dfg_at kernel ~factor:unroll in
  let req =
    Mapper.request ~strategy:(strategy_of point) ~backend ~label_floor ~max_ii ~cancel
      fabric
  in
  match Mapper.map ?stats req dfg with
  | Error msg -> Error (Printf.sprintf "%s/%s: %s" kernel.name (point_to_string point) msg)
  | Ok mapping ->
    let mapping = assign_levels point mapping in
    (match Validate.check mapping with
    | Error msgs ->
      Error
        (Printf.sprintf "%s/%s: invalid mapping: %s" kernel.name (point_to_string point)
           (String.concat "; " msgs))
    | Ok () ->
      let tiles = Metrics.tile_states mapping in
      let power_mw =
        Model.total_power_mw params (model_design point) fabric ~tiles
          ~sram_activity:(Metrics.sram_activity mapping)
      in
      Ok
        {
          point;
          kernel = kernel.name;
          unroll;
          mapping;
          ii = mapping.Mapping.ii;
          avg_utilization = Metrics.average_utilization mapping;
          avg_dvfs = Metrics.average_dvfs_fraction mapping;
          power_mw;
          speedup_vs_cpu = Metrics.speedup_vs_cpu mapping;
        })

let evaluate ?(cgra = Cgra.iced_6x6) ?(params = Iced_power.Params.default) ?(unroll = 1)
    ?(label_floor = Dvfs.Rest) ?(max_ii = 64) ?(cancel = fun () -> false)
    ?(backend = Backend.default) ?stats ?(trace = true) point kernel =
  let body () =
    evaluate_body ~cgra ~params ~unroll ~label_floor ~max_ii ~cancel ~backend ?stats
      point kernel
  in
  let traced () =
    if not (Trace.enabled ()) then body ()
    else
      Trace.with_span
        ~args:
          [
            ("kernel", Trace.Str kernel.Iced_kernels.Kernel.name);
            ("point", Trace.Str (point_to_string point));
            ("unroll", Trace.Int unroll);
          ]
        ~cat:"design" ~name:"evaluate"
        (fun () ->
          let r = body () in
          (match r with
          | Ok e -> Trace.span_arg "ii" (Trace.Int e.ii)
          | Error msg -> Trace.span_arg "error" (Trace.Str msg));
          r)
  in
  if trace then traced () else Trace.suppress traced

let evaluate_exn ?cgra ?params ?unroll ?label_floor ?max_ii ?cancel ?backend ?stats
    ?trace point kernel =
  match
    evaluate ?cgra ?params ?unroll ?label_floor ?max_ii ?cancel ?backend ?stats ?trace
      point kernel
  with
  | Ok e -> e
  | Error msg -> failwith ("Design.evaluate: " ^ msg)

let functional_check ?(iterations = 25) (kernel : Iced_kernels.Kernel.t) mapping =
  let result = Iced_sim.Sim.run ~binding:kernel.binding mapping ~iterations in
  let golden =
    Iced_sim.Sim.interpret ~binding:kernel.binding mapping.Mapping.dfg ~iterations
  in
  if result.violations <> [] then
    Error
      (Printf.sprintf "%d timing violations (first: %s)" (List.length result.violations)
         (List.hd result.violations))
  else if result.stores <> golden then Error "store trace differs from the golden interpreter"
  else Ok ()
