(** Streaming applications as pipelines of kernel instances.

    A pipeline is a list of stages processing a stream of inputs; the
    kernels inside one stage run in parallel on disjoint island sets.
    Each instance declares how many loop iterations one input costs it —
    constant for dense kernels, proportional to the input's non-zeros
    for the data-dependent ones, which is precisely what makes the
    bottleneck drift between inputs (paper Section II-B). *)

type input = { id : int; features : (string * int) list }
(** An input instance described by named magnitudes (e.g. "vertices",
    "edges" for a GCN graph). *)

val feature : input -> string -> int
(** @raise Not_found for unknown feature names. *)

type instance = {
  label : string;  (** unique within the pipeline, e.g. "aggregate.1" *)
  kernel : Iced_kernels.Kernel.t;
  iterations : input -> int;  (** per-input trip count *)
}

type stage = instance list
(** Instances that run concurrently on disjoint island sets; an input
    leaves a stage only when every instance in it is done. *)

type t = { name : string; stages : stage list }
(** A whole streaming application: stages in dataflow order. *)

val gcn : unit -> t
(** The 2-layer GCN inference pipeline: compress -> aggregate ->
    combrelu -> aggregate -> combine -> pooling (six instances, five
    unique kernels, aggregate twice). *)

val lu : unit -> t
(** The LU application: init -> decompose -> (solver0 || solver1) ->
    (invert || determinant): six kernels in four stages. *)

val instances : t -> instance list
(** All instances, pipeline order. *)

val of_gcn_graph : Workload.gcn_graph -> input
(** Lift a synthetic GCN graph into the feature vector the {!gcn}
    pipeline's iteration functions read ("vertices", "edges"). *)

val of_lu_matrix : Workload.lu_matrix -> input
(** Lift a synthetic LU matrix into the feature vector the {!lu}
    pipeline's iteration functions read ("dim", "nnz"). *)

val find : t -> string -> instance
(** @raise Not_found for unknown labels. *)
