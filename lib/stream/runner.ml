open Iced_arch
module Model = Iced_power.Model
module Params = Iced_power.Params
module Metrics = Iced_sim.Metrics
module Fault = Iced_fault.Fault
module Obs = Iced_obs.Trace

type policy = Static | Iced_dvfs | Drips

let policy_to_string = function
  | Static -> "static"
  | Iced_dvfs -> "iced"
  | Drips -> "drips"

type recovery = Remap | Gate_island | Raise_level | Fail_stop

let recovery_to_string = function
  | Remap -> "remap"
  | Gate_island -> "gate"
  | Raise_level -> "raise"
  | Fail_stop -> "fail-stop"

let recovery_of_string = function
  | "remap" -> Some Remap
  | "gate" -> Some Gate_island
  | "raise" -> Some Raise_level
  | "fail-stop" | "failstop" -> Some Fail_stop
  | _ -> None

type window_report = {
  index : int;
  inputs : int;
  mean_period_us : float;
  throughput_per_s : float;
  power_mw : float;
  efficiency : float;
  levels : (string * Dvfs.level) list;
  allocation : (string * int) list;
  dropped : int;
  replayed : int;
  recovery_us : float;
}

type fault_stats = {
  injected : int;
  recoveries : int;
  remaps : int;
  islands_gated : int;
  levels_raised : int;
  inputs_dropped : int;
  inputs_replayed : int;
  recovery_time_us : float;
  mttr_us : float;
  offered : int;
  completed : int;
}

let no_faults =
  {
    injected = 0;
    recoveries = 0;
    remaps = 0;
    islands_gated = 0;
    levels_raised = 0;
    inputs_dropped = 0;
    inputs_replayed = 0;
    recovery_time_us = 0.0;
    mttr_us = 0.0;
    offered = 0;
    completed = 0;
  }

type instance_cost = {
  label : string;
  wall_us : float;  (** execution time of this input on this kernel *)
  cycles : int;  (** kernel-clock cycles behind [wall_us] *)
  mapping : Iced_mapper.Mapping.t;
  level : Dvfs.level;
}

(* Per-input accounting given current allocation and levels.
   [override] substitutes a fault-recovery remapping for a kernel's
   prepared candidate. *)
let account ?(override = fun _ -> None) (params : Params.t) (partition : Partition.t)
    ~allocation ~level_of input =
  let pipeline = partition.Partition.pipeline in
  let instance_cost (instance : Pipeline.instance) =
    let label = instance.Pipeline.label in
    let count =
      match List.assoc_opt label allocation with
      | Some count -> count
      | None ->
        invalid_arg
          (Printf.sprintf "Runner.account: kernel %s has no allocation entry" label)
    in
    let candidate =
      match override label with
      | Some c -> c
      | None -> (
        let prepared =
          List.find
            (fun (p : Partition.prepared_instance) -> p.instance.Pipeline.label = label)
            partition.Partition.prepared
        in
        match Partition.candidate_for prepared count with
        | Some c -> c
        | None -> Partition.allocated partition label (* fall back to profiled count *))
    in
    let level = level_of label in
    let iters = instance.Pipeline.iterations input in
    let cycles = candidate.Partition.mapping.Iced_mapper.Mapping.ii * iters in
    let wall_us =
      float_of_int (cycles * Dvfs.multiplier level) /. params.Params.f_normal_mhz
    in
    { label; wall_us; cycles; mapping = candidate.Partition.mapping; level }
  in
  let stages = List.map (List.map instance_cost) pipeline.Pipeline.stages in
  let period_us =
    List.fold_left
      (fun acc stage ->
        Float.max acc (List.fold_left (fun a c -> Float.max a c.wall_us) 0.0 stage))
      1e-9 stages
  in
  let costs = List.concat stages in
  (* Tile power: mapped activity scaled by the kernel's duty cycle. *)
  let tiles =
    List.concat_map
      (fun cost ->
        let duty = Float.min 1.0 (cost.wall_us /. period_us) in
        Metrics.per_tile cost.mapping
        |> List.map (fun (tm : Metrics.tile_metrics) ->
               let base_activity =
                 float_of_int tm.busy_slots
                 /. float_of_int cost.mapping.Iced_mapper.Mapping.ii
               in
               { Model.level = cost.level; activity = base_activity *. duty }))
      costs
  in
  let sram_activity =
    Float.min 1.0
      (List.fold_left
         (fun acc cost ->
           let duty = Float.min 1.0 (cost.wall_us /. period_us) in
           acc +. (Metrics.sram_activity cost.mapping *. duty))
         0.0 costs)
  in
  (period_us, costs, tiles, sram_activity)

(* ------------------------------------------------------------------ *)
(* fault-recovery state *)

(* Per-kernel resilient-execution state.  Mappings live in the
   partition's representative geometry (islands 0..count-1): [owned]
   tracks which concrete islands the kernel holds, and permanent
   faults — recorded in concrete coordinates — are translated into
   representative coordinates at remap time. *)
type kernel_state = {
  instance : Pipeline.instance;
  prepared : Partition.prepared_instance;
  mutable owned : int list;  (** concrete island ids *)
  mutable count : int;
  mutable override : Partition.candidate option;
  mutable faults : Fault.kind list;  (** permanent faults on this kernel *)
  mutable upset_rate : float;  (** 0.0 when the kernel's islands are clean *)
  mutable pinned : bool;  (** [Raise_level] pinned the kernel at Normal *)
}

(* Remap retry budget: the mapper polls [cancel] once per II attempt,
   so counting polls bounds the search deterministically (a wall-clock
   deadline would make campaign results depend on machine load and
   worker count). *)
let remap_poll_budget = 64

exception Recovery_failed of string

let reconfig_us (params : Params.t) (candidate : Partition.candidate) =
  (* Reconfiguration streams the bitstream in 64-bit words, one word
     per base-clock cycle. *)
  let bits = Iced_mapper.Bitstream.total_bits candidate.Partition.mapping in
  let words = (bits + 63) / 64 in
  float_of_int words /. params.Params.f_normal_mhz

let current_candidate st =
  match st.override with
  | Some c -> c
  | None -> (
    match Partition.candidate_for st.prepared st.count with
    | Some c -> c
    | None -> List.hd st.prepared.Partition.candidates)

(* Translate a concrete faulted tile into the kernel's representative
   geometry; [None] when the fault sits on an island the kernel no
   longer owns (gated away) and so cannot hurt it. *)
let representative_tile cgra st tile =
  let island = Cgra.island_of cgra tile in
  let rec position k = function
    | [] -> None
    | x :: rest -> if x = island then Some k else position (k + 1) rest
  in
  match position 0 st.owned with
  | None -> None
  | Some k -> (
    let concrete = Cgra.island_tiles cgra island in
    let rep = Cgra.island_tiles cgra k in
    let rec index i = function
      | [] -> None
      | x :: rest -> if x = tile then Some i else index (i + 1) rest
    in
    match index 0 concrete with Some p -> List.nth_opt rep p | None -> None)

(* Rebuild a kernel's mapping on its current islands with its live
   faults masked.  With a clean geometry the prepared candidate is
   reused (no mapper run, no override); otherwise Algorithm 2 remaps
   around the masked resources under a bounded II/poll budget. *)
let rebuild ?stats cgra st =
  let dead_tiles, dead_links =
    List.fold_left
      (fun (dts, dls) fault ->
        match fault with
        | Fault.Tile_dead tile -> (
          match representative_tile cgra st tile with
          | Some t -> (t :: dts, dls)
          | None -> (dts, dls))
        | Fault.Link_broken { tile; dir } -> (
          match representative_tile cgra st tile with
          | Some t -> (dts, (t, dir) :: dls)
          | None -> (dts, dls))
        | Fault.Island_down _ | Fault.Upsets _ -> (dts, dls))
      ([], []) st.faults
  in
  if dead_tiles = [] && dead_links = [] then (
    match Partition.candidate_for st.prepared st.count with
    | Some c ->
      st.override <- None;
      Ok (c, false)
    | None ->
      Error
        (Printf.sprintf "no prepared mapping for %s at %d islands"
           st.instance.Pipeline.label st.count))
  else begin
    let tiles =
      List.concat_map (fun k -> Cgra.island_tiles cgra k) (List.init st.count Fun.id)
    in
    let old_ii = (current_candidate st).Partition.mapping.Iced_mapper.Mapping.ii in
    let polls = ref 0 in
    let cancel () =
      incr polls;
      !polls > remap_poll_budget
    in
    let req =
      Iced_mapper.Mapper.request ~strategy:Iced_mapper.Mapper.Dvfs_aware ~tiles
        ~label_floor:Dvfs.Relax
        ~label_guard:(if st.upset_rate > 0.0 then 1 else 0)
        ~max_ii:(min 64 (old_ii * 4))
        ~cancel ~dead_tiles ~dead_links cgra
    in
    match
      Iced_mapper.Mapper.map ?stats req st.instance.Pipeline.kernel.Iced_kernels.Kernel.dfg
    with
    | Ok mapping ->
      let candidate =
        {
          Partition.islands = st.count;
          mapping = Iced_mapper.Levels.assign ~floor:Dvfs.Relax ~allow_gating:false mapping;
        }
      in
      st.override <- Some candidate;
      Ok (candidate, true)
    | Error e -> Error e
  end

(* ------------------------------------------------------------------ *)
(* the resilient streaming loop *)

let run_resilient_untraced ~window ~params ~faults ~recovery ?stats
    (partition : Partition.t) policy inputs =
  if policy = Drips && not (Fault.is_empty faults) then
    invalid_arg
      "Runner.run_resilient: the DRIPS baseline has no fault model; use Static or Iced_dvfs";
  let cgra = partition.Partition.cgra in
  let labels = List.map fst partition.Partition.allocation in
  let controller =
    Controller.create ~window ~label_floors:partition.Partition.level_floors ~labels ()
  in
  let drips = Drips.create ~window partition in
  let design =
    match policy with
    | Static | Drips -> Model.Baseline
    | Iced_dvfs -> Model.Iced
  in
  let states =
    List.map
      (fun (label, count) ->
        let prepared =
          List.find
            (fun (p : Partition.prepared_instance) -> p.instance.Pipeline.label = label)
            partition.Partition.prepared
        in
        ( label,
          {
            instance = prepared.Partition.instance;
            prepared;
            owned = List.assoc label partition.Partition.island_ids;
            count;
            override = None;
            faults = [];
            upset_rate = 0.0;
            pinned = false;
          } ))
      partition.Partition.allocation
  in
  let state label = List.assoc label states in
  let owner_of island =
    List.find_opt (fun (_, st) -> List.mem island st.owned) states
  in
  let base_level_of label =
    match policy with
    | Static | Drips -> Dvfs.Normal
    | Iced_dvfs -> Controller.level controller label
  in
  let level_of label =
    if (state label).pinned then Dvfs.Normal else base_level_of label
  in
  let allocation () =
    match policy with
    | Drips -> Drips.allocation drips
    | Static | Iced_dvfs -> List.map (fun (label, st) -> (label, st.count)) states
  in
  let override label = (state label).override in
  (* fault accounting *)
  let injected = ref 0 in
  let recoveries = ref 0 in
  let remaps = ref 0 in
  let islands_gated = ref 0 in
  let levels_raised = ref 0 in
  let inputs_dropped = ref 0 in
  let inputs_replayed = ref 0 in
  let recovery_time_us = ref 0.0 in
  let completed = ref 0 in
  let aborted = ref false in
  let pending_us = ref 0.0 in
  let charge candidate =
    let us = reconfig_us params candidate in
    pending_us := !pending_us +. us;
    recovery_time_us := !recovery_time_us +. us
  in
  (* Gate the victim island out of its owner's allocation: shrink the
     owner by one island when a smaller mapping exists, otherwise
     borrow an island from the richest kernel that can itself shrink.
     Raises [Recovery_failed] when neither works. *)
  let gate st victim_island =
    st.owned <- List.filter (fun i -> i <> victim_island) st.owned;
    islands_gated := !islands_gated + 1;
    let shrink () =
      if st.count <= 1 then Error "kernel is down to one island"
      else begin
        st.count <- st.count - 1;
        match rebuild ?stats cgra st with
        | Ok (c, _) -> Ok c
        | Error e ->
          st.count <- st.count + 1;
          Error e
      end
    in
    let borrow () =
      let donors =
        List.filter (fun (_, d) -> d != st && d.count > 1) states
        |> List.sort (fun (_, a) (_, b) -> compare b.count a.count)
      in
      let rec try_donors = function
        | [] -> Error "no kernel can spare an island"
        | (_, donor) :: rest -> (
          donor.count <- donor.count - 1;
          match rebuild ?stats cgra donor with
          | Error _ ->
            donor.count <- donor.count + 1;
            try_donors rest
          | Ok (donor_candidate, _) -> (
            (* hand the donor's last island to the victim *)
            match List.rev donor.owned with
            | [] ->
              donor.count <- donor.count + 1;
              try_donors rest
            | given :: kept_rev ->
              donor.owned <- List.rev kept_rev;
              st.owned <- st.owned @ [ given ];
              charge donor_candidate;
              match rebuild ?stats cgra st with
              | Ok (c, _) -> Ok c
              | Error e -> Error e))
      in
      try_donors donors
    in
    match shrink () with
    | Ok c -> c
    | Error _ -> (
      match borrow () with
      | Ok c -> c
      | Error e ->
        raise
          (Recovery_failed
             (Printf.sprintf "cannot gate island %d away from %s: %s" victim_island
                st.instance.Pipeline.label e)))
  in
  let inject fault =
    incr injected;
    let island = Fault.island_of cgra fault in
    match owner_of island with
    | None -> () (* the island was already gated away: the fault is harmless *)
    | Some (_, st) -> (
      match fault with
      | Fault.Upsets { rate; _ } -> (
        st.upset_rate <- Float.max st.upset_rate rate;
        match recovery with
        | Fail_stop -> raise (Recovery_failed "fail-stop on transient upsets")
        | Raise_level ->
          (* full voltage margin clears voltage-induced upsets; the
             ns-scale regulator switch is free *)
          if not st.pinned then begin
            st.pinned <- true;
            incr levels_raised;
            incr recoveries
          end
        | Remap | Gate_island ->
          (* endure the replays; future remaps keep a guard band *)
          ())
      | Fault.Tile_dead _ | Fault.Link_broken _ | Fault.Island_down _ -> (
        match recovery with
        | Fail_stop -> raise (Recovery_failed "fail-stop on a permanent fault")
        | Raise_level ->
          raise (Recovery_failed "voltage cannot recover a permanent fault")
        | Remap | Gate_island ->
          st.faults <- fault :: st.faults;
          let gate_it () = charge (gate st island) in
          (match (recovery, fault) with
          | Gate_island, _ | Remap, Fault.Island_down _ ->
            (* remapping inside a dead island is meaningless *)
            gate_it ()
          | Remap, _ -> (
            match rebuild ?stats cgra st with
            | Ok (c, remapped) ->
              if remapped then incr remaps;
              charge c
            | Error _ -> gate_it () (* escalate *))
          | (Fail_stop | Raise_level), _ -> assert false);
          incr recoveries))
  in
  (* run loop *)
  let reports = ref [] in
  let window_periods = ref [] in
  let window_powers = ref [] in
  let window_dropped = ref 0 in
  let window_replayed = ref 0 in
  let window_recovery = ref 0.0 in
  let flush index =
    if !window_periods <> [] || !window_dropped > 0 then begin
      let consumed = List.length !window_periods in
      let mean_period =
        if consumed = 0 then 0.0 else Iced_util.Stats.mean !window_periods
      in
      let power = if consumed = 0 then 0.0 else Iced_util.Stats.mean !window_powers in
      let throughput = if mean_period > 0.0 then 1e6 /. mean_period else 0.0 in
      reports :=
        {
          index;
          inputs = consumed;
          mean_period_us = mean_period;
          throughput_per_s = throughput;
          power_mw = power;
          efficiency = (if power > 0.0 then throughput /. (power /. 1000.0) else 0.0);
          levels = List.map (fun label -> (label, level_of label)) labels;
          allocation = allocation ();
          dropped = !window_dropped;
          replayed = !window_replayed;
          recovery_us = !window_recovery;
        }
        :: !reports;
      window_periods := [];
      window_powers := [];
      window_dropped := 0;
      window_replayed := 0;
      window_recovery := 0.0
    end
  in
  let total = List.length inputs in
  let consume i input =
    (* injections scheduled for this input fire just before it; when
       traced, each gets an activation instant plus a recovery span
       carrying the reconfiguration latency it charged (MTTR feed) *)
    List.iter
      (fun fault ->
        if not (Obs.enabled ()) then inject fault
        else begin
          Obs.instant
            ~args:
              [ ("input", Obs.Int i); ("kind", Obs.Str (Fault.kind_to_string fault)) ]
            ~cat:"fault" ~name:"activate" ();
          Obs.with_span
            ~args:[ ("recovery", Obs.Str (recovery_to_string recovery)) ]
            ~cat:"fault" ~name:"recover"
            (fun () ->
              let before = !recovery_time_us in
              inject fault;
              Obs.span_arg "recovery_us" (Obs.Float (!recovery_time_us -. before)))
        end)
      (Fault.events_at faults i);
    let period_us, costs, tiles, sram_activity =
      account ~override params partition ~allocation:(allocation ()) ~level_of input
    in
    (* recovery latency stalls the pipeline in front of this input *)
    let period_us = period_us +. !pending_us in
    window_recovery := !window_recovery +. !pending_us;
    pending_us := 0.0;
    (* transient upsets: a deterministic draw decides whether this
       input was corrupted on an upset-afflicted island; a corrupted
       input is replayed once, and a second strike loses it *)
    let period_us = ref period_us in
    let lost = ref false in
    List.iter
      (fun (label, st) ->
        if st.upset_rate > 0.0 then begin
          let level = level_of label in
          let rate = Fault.upset_rate ~rate:st.upset_rate level in
          match List.find_opt (fun c -> c.label = label) costs with
          | None -> ()
          | Some cost ->
            let p = Fault.upset_probability ~rate ~cycles:cost.cycles in
            if Fault.upset_draw ~seed:faults.Fault.seed ~input:i ~salt:label < p then begin
              incr inputs_replayed;
              incr window_replayed;
              period_us := !period_us +. cost.wall_us;
              if
                Fault.upset_draw ~seed:faults.Fault.seed ~input:i
                  ~salt:(label ^ ":retry")
                < p
              then lost := true
            end
        end)
      states;
    let period_us = !period_us in
    if !lost then begin
      incr inputs_dropped;
      incr window_dropped
    end
    else incr completed;
    let power =
      Model.total_power_mw params design partition.Partition.cgra ~tiles ~sram_activity
    in
    window_periods := period_us :: !window_periods;
    window_powers := power :: !window_powers;
    (* feed the runtime monitors *)
    List.iter
      (fun cost ->
        match policy with
        | Iced_dvfs -> Controller.observe controller ~label:cost.label ~busy_time:cost.wall_us
        | Drips -> Drips.observe drips ~label:cost.label ~busy_time:cost.wall_us
        | Static -> ())
      costs;
    (match policy with
    | Iced_dvfs -> Controller.input_done controller
    | Drips -> Drips.input_done drips
    | Static -> ())
  in
  (* One window of the stream: consume its inputs, then flush the
     report (full windows only; a trailing partial window is flushed
     once by the caller, exactly as the flat loop did).  When traced,
     the window runs inside a ["stream"]/["window"] span stamped with
     the report's input counts, the controller's bottleneck kernel,
     and the closing per-kernel levels. *)
  let consume_window w first these =
    let body () =
      List.iteri (fun j input -> consume (first + j) input) these;
      if List.length these = window then flush w
    in
    if not (Obs.enabled ()) then body ()
    else
      Obs.with_span
        ~args:[ ("window", Obs.Int w) ]
        ~cat:"stream" ~name:"window"
        (fun () ->
          body ();
          (match Controller.last_bottleneck controller with
          | Some (label, _) when policy = Iced_dvfs ->
            Obs.span_arg "bottleneck" (Obs.Str label)
          | _ -> ());
          match !reports with
          | r :: _ when r.index = w ->
            Obs.span_arg "inputs" (Obs.Int r.inputs);
            Obs.span_arg "dropped" (Obs.Int r.dropped);
            Obs.span_arg "replayed" (Obs.Int r.replayed);
            List.iter
              (fun (label, lvl) ->
                Obs.span_arg ("level:" ^ label) (Obs.Str (Dvfs.to_string lvl)))
              r.levels
          | _ -> ())
  in
  let rec split_at n l =
    if n = 0 then ([], l)
    else
      match l with
      | [] -> ([], [])
      | x :: rest ->
        let a, b = split_at (n - 1) rest in
        (x :: a, b)
  in
  (try
     let rec loop w first remaining =
       match remaining with
       | [] -> ()
       | _ ->
         let these, rest = split_at window remaining in
         consume_window w first these;
         loop (w + 1) (first + List.length these) rest
     in
     loop 0 0 inputs
   with Recovery_failed _ ->
     (* fail-stop (or an exhausted recovery): the remaining stream is
        lost; account the loss instead of hiding it *)
     aborted := true);
  if !aborted then begin
    let lost = total - !completed - !inputs_dropped in
    inputs_dropped := !inputs_dropped + lost;
    window_dropped := !window_dropped + lost
  end;
  flush (total / window);
  let stats =
    {
      injected = !injected;
      recoveries = !recoveries;
      remaps = !remaps;
      islands_gated = !islands_gated;
      levels_raised = !levels_raised;
      inputs_dropped = !inputs_dropped;
      inputs_replayed = !inputs_replayed;
      recovery_time_us = !recovery_time_us;
      mttr_us =
        (if !recoveries > 0 then !recovery_time_us /. float_of_int !recoveries else 0.0);
      offered = total;
      completed = !completed;
    }
  in
  Iced_obs.Metrics.incr "stream.runs";
  Iced_obs.Metrics.incr ~by:stats.injected "stream.faults.injected";
  Iced_obs.Metrics.incr ~by:stats.recoveries "stream.faults.recoveries";
  (List.rev !reports, stats)

let run_resilient ?(window = 10) ?(params = Params.default) ?(faults = Fault.none)
    ?(recovery = Fail_stop) ?stats ?(trace = true) partition policy inputs =
  let body () =
    run_resilient_untraced ~window ~params ~faults ~recovery ?stats partition policy
      inputs
  in
  let traced () =
    if not (Obs.enabled ()) then body ()
    else
      Obs.with_span
        ~args:
          [
            ("policy", Obs.Str (policy_to_string policy));
            ("recovery", Obs.Str (recovery_to_string recovery));
            ("inputs", Obs.Int (List.length inputs));
            ("window", Obs.Int window);
          ]
        ~cat:"stream" ~name:"run" body
  in
  if trace then traced () else Obs.suppress body

let run ?window ?params ?trace partition policy inputs =
  fst (run_resilient ?window ?params ~faults:Fault.none ?trace partition policy inputs)

type totals = {
  total_inputs : int;
  total_time_us : float;
  total_energy_uj : float;
  overall_throughput_per_s : float;
  overall_efficiency : float;
}

let aggregate reports =
  let total_inputs = List.fold_left (fun acc r -> acc + r.inputs) 0 reports in
  let total_time_us =
    List.fold_left (fun acc r -> acc +. (float_of_int r.inputs *. r.mean_period_us)) 0.0 reports
  in
  let total_energy_uj =
    List.fold_left
      (fun acc r ->
        acc +. (r.power_mw /. 1000.0 *. float_of_int r.inputs *. r.mean_period_us))
      0.0 reports
  in
  let throughput =
    if total_time_us > 0.0 then float_of_int total_inputs /. total_time_us *. 1e6 else 0.0
  in
  let watts = if total_time_us > 0.0 then total_energy_uj /. total_time_us else 0.0 in
  {
    total_inputs;
    total_time_us;
    total_energy_uj;
    overall_throughput_per_s = throughput;
    overall_efficiency = (if watts > 0.0 then throughput /. watts else 0.0);
  }

let mean_efficiency reports =
  Iced_util.Stats.mean (List.map (fun r -> r.efficiency) reports)

(* ------------------------------------------------------------------ *)
(* shared-fabric multi-tenant streaming *)

type tenant_stream = {
  tenant : string;
  partition : Partition.t;
  stream : Pipeline.input list;
}

type reassignment = {
  swaps : (string * Partition.t * float) list;
  evictions : string list;
}

type tenant_window = {
  owner : string;
  report : window_report;
  granted : (string * Dvfs.level) list;
  throttled : bool;
  busy_us : float;
}

type shared_window = {
  round : int;
  span_us : float;
  fabric_power_mw : float;
  slices : tenant_window list;
}

type shared_report = {
  rounds : shared_window list;
  tenant_reports : (string * window_report list) list;
  evicted : (string * int) list;
  peak_power_mw : float;
}

(* Per-tenant execution state.  The controller persists across rounds
   (its cross-window memory must see the tenant's whole stream, exactly
   as in a solo [run]); the partition is swappable at round boundaries
   by the [reconfigure] hook. *)
type shared_state = {
  s_id : string;
  mutable s_partition : Partition.t;
  s_controller : Controller.t;
  mutable s_remaining : Pipeline.input list;
  mutable s_chunk : int;
  s_total : int;
  mutable s_reports : window_report list;  (* reversed *)
  mutable s_pending_us : float;
  mutable s_evicted : bool;
}

let run_shared_untraced ~window ~params ~arbitrate ~reconfigure ~fabric tenants =
  if tenants = [] then invalid_arg "Runner.run_shared: no tenants";
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else dup rest
  in
  (match dup (List.map (fun t -> t.tenant) tenants) with
  | Some id -> invalid_arg ("Runner.run_shared: duplicate tenant id " ^ id)
  | None -> ());
  let states =
    List.map
      (fun t ->
        let labels = List.map fst t.partition.Partition.allocation in
        {
          s_id = t.tenant;
          s_partition = t.partition;
          s_controller =
            Controller.create ~window
              ~label_floors:t.partition.Partition.level_floors ~labels ();
          s_remaining = t.stream;
          s_chunk = 0;
          s_total = List.length t.stream;
          s_reports = [];
          s_pending_us = 0.0;
          s_evicted = false;
        })
      tenants
  in
  let rec split_at n l =
    if n = 0 then ([], l)
    else
      match l with
      | [] -> ([], [])
      | x :: rest ->
        let a, b = split_at (n - 1) rest in
        (x :: a, b)
  in
  (* One tenant's window of inputs, replicating the float-op sequence
     of the flat ICED loop exactly: same [account] call, same pending
     charge, same mean-over-pushed-periods flush, levels read after the
     window-boundary adjustment.  With an identity [arbitrate] the
     per-tenant reports are therefore byte-identical to a solo
     [run partition Iced_dvfs].  Returns the report plus the round's
     fabric-accounting integrals (tile energy and SRAM activity-time
     over the unpenalized periods). *)
  let consume_chunk st ~granted =
    Controller.impose st.s_controller granted;
    let partition = st.s_partition in
    let labels = List.map fst partition.Partition.allocation in
    let level_of label = Controller.level st.s_controller label in
    let allocation = partition.Partition.allocation in
    let these, rest = split_at window st.s_remaining in
    st.s_remaining <- rest;
    let window_periods = ref [] in
    let window_powers = ref [] in
    let window_recovery = ref 0.0 in
    let busy_us = ref 0.0 in
    let tile_mw_us = ref 0.0 in
    let sram_us = ref 0.0 in
    List.iter
      (fun input ->
        let period_us, costs, tiles, sram_activity =
          account params partition ~allocation ~level_of input
        in
        tile_mw_us :=
          !tile_mw_us
          +. period_us
             *. List.fold_left
                  (fun acc tm -> acc +. Model.tile_power_mw params tm)
                  0.0 tiles;
        sram_us := !sram_us +. (sram_activity *. period_us);
        let period_us = period_us +. st.s_pending_us in
        window_recovery := !window_recovery +. st.s_pending_us;
        st.s_pending_us <- 0.0;
        busy_us := !busy_us +. period_us;
        let power =
          Model.total_power_mw params Model.Iced partition.Partition.cgra ~tiles
            ~sram_activity
        in
        window_periods := period_us :: !window_periods;
        window_powers := power :: !window_powers;
        List.iter
          (fun cost ->
            Controller.observe st.s_controller ~label:cost.label
              ~busy_time:cost.wall_us)
          costs;
        Controller.input_done st.s_controller)
      these;
    let consumed = List.length !window_periods in
    (* trailing partial windows take the same index the flat loop's
       final flush would give them *)
    let index = if consumed = window then st.s_chunk else st.s_total / window in
    let mean_period =
      if consumed = 0 then 0.0 else Iced_util.Stats.mean !window_periods
    in
    let power = if consumed = 0 then 0.0 else Iced_util.Stats.mean !window_powers in
    let throughput = if mean_period > 0.0 then 1e6 /. mean_period else 0.0 in
    let report =
      {
        index;
        inputs = consumed;
        mean_period_us = mean_period;
        throughput_per_s = throughput;
        power_mw = power;
        efficiency = (if power > 0.0 then throughput /. (power /. 1000.0) else 0.0);
        levels = List.map (fun label -> (label, level_of label)) labels;
        allocation;
        dropped = 0;
        replayed = 0;
        recovery_us = !window_recovery;
      }
    in
    st.s_chunk <- st.s_chunk + 1;
    st.s_reports <- report :: st.s_reports;
    (report, !busy_us, !tile_mw_us, !sram_us)
  in
  let allocated_tiles (partition : Partition.t) (_label, count) =
    let cgra = partition.Partition.cgra in
    List.fold_left
      (fun acc k -> acc + List.length (Cgra.island_tiles cgra k))
      0
      (List.init count Fun.id)
  in
  let overhead_mw = Model.overhead_power_mw params Model.Iced fabric in
  let rounds = ref [] in
  let round_no = ref 0 in
  let evicted = ref [] in
  let active () =
    List.filter (fun st -> (not st.s_evicted) && st.s_remaining <> []) states
  in
  let apply_reassignment (r : reassignment) =
    List.iter
      (fun (id, p, penalty_us) ->
        match List.find_opt (fun st -> st.s_id = id) states with
        | Some st when not st.s_evicted ->
          st.s_partition <- p;
          st.s_pending_us <- st.s_pending_us +. penalty_us
        | _ -> ())
      r.swaps;
    List.iter
      (fun id ->
        match List.find_opt (fun st -> st.s_id = id) states with
        | Some st when not st.s_evicted ->
          st.s_evicted <- true;
          evicted := (id, List.length st.s_remaining) :: !evicted;
          st.s_remaining <- []
        | _ -> ())
      r.evictions
  in
  let run_round act =
    let desired =
      List.map (fun st -> (st.s_id, Controller.levels st.s_controller)) act
    in
    let granted = arbitrate ~round:!round_no desired in
    let slices =
      List.map
        (fun st ->
          let d = List.assoc st.s_id desired in
          let g =
            match List.assoc_opt st.s_id granted with Some g -> g | None -> d
          in
          let report, busy_us, tile_mw_us, sram_us = consume_chunk st ~granted:g in
          ( { owner = st.s_id; report; granted = g; throttled = g <> d; busy_us },
            (tile_mw_us, sram_us, g, st) ))
        act
    in
    let span_us =
      List.fold_left (fun acc (tw, _) -> Float.max acc tw.busy_us) 0.0 slices
    in
    (* Fabric-level power over the round: each tenant's tiles burn
       their accounted active energy over their busy time and idle
       (activity-0) power at the granted levels for the rest of the
       round; drained tenants' islands are power-gated and free.  The
       SPM and the per-island controller overhead of the whole fabric
       are charged once — never once per tenant.  Every term is
       bounded by the activity-1.0 envelope at the granted levels, so
       a cap admitted on that envelope holds here. *)
    let tile_energy =
      List.fold_left
        (fun acc (tw, (tile_mw_us, _, g, st)) ->
          let idle_us = Float.max 0.0 (span_us -. tw.busy_us) in
          let idle_mw =
            List.fold_left
              (fun acc ((label, _) as entry) ->
                let level =
                  match List.assoc_opt label g with
                  | Some l -> l
                  | None -> Dvfs.Normal
                in
                acc
                +. float_of_int (allocated_tiles st.s_partition entry)
                   *. Model.tile_power_mw params { Model.level; activity = 0.0 })
              0.0 st.s_partition.Partition.allocation
          in
          acc +. tile_mw_us +. (idle_mw *. idle_us))
        0.0 slices
    in
    let sram_int =
      List.fold_left (fun acc (_, (_, s, _, _)) -> acc +. s) 0.0 slices
    in
    let sram_activity =
      if span_us > 0.0 then Float.min 1.0 (sram_int /. span_us) else 0.0
    in
    let fabric_power_mw =
      (if span_us > 0.0 then tile_energy /. span_us else 0.0)
      +. Model.sram_power_mw params ~activity:sram_activity
      +. overhead_mw
    in
    rounds :=
      {
        round = !round_no;
        span_us;
        fabric_power_mw;
        slices = List.map fst slices;
      }
      :: !rounds;
    incr round_no
  in
  let rec loop () =
    match active () with
    | [] -> ()
    | act ->
      (match reconfigure with
      | None -> ()
      | Some f -> (
        match
          f ~round:!round_no
            ~active:(List.map (fun st -> (st.s_id, st.s_partition)) act)
        with
        | None -> ()
        | Some r -> apply_reassignment r));
      (match active () with
      | [] -> ()
      | act ->
        if not (Obs.enabled ()) then run_round act
        else
          Obs.with_span
            ~args:
              [
                ("round", Obs.Int !round_no);
                ("tenants", Obs.Int (List.length act));
              ]
            ~cat:"tenancy" ~name:"round"
            (fun () ->
              run_round act;
              match !rounds with
              | r :: _ ->
                Obs.span_arg "span_us" (Obs.Float r.span_us);
                Obs.span_arg "power_mw" (Obs.Float r.fabric_power_mw)
              | [] -> ());
        loop ())
  in
  loop ();
  let rounds = List.rev !rounds in
  Iced_obs.Metrics.incr "tenancy.runs";
  Iced_obs.Metrics.incr ~by:(List.length rounds) "tenancy.rounds";
  {
    rounds;
    tenant_reports = List.map (fun st -> (st.s_id, List.rev st.s_reports)) states;
    evicted = List.rev !evicted;
    peak_power_mw =
      List.fold_left (fun acc r -> Float.max acc r.fabric_power_mw) 0.0 rounds;
  }

let run_shared ?(window = 10) ?(params = Params.default)
    ?(arbitrate = fun ~round:_ desired -> desired) ?reconfigure ?(trace = true)
    ~fabric tenants =
  let body () =
    run_shared_untraced ~window ~params ~arbitrate ~reconfigure ~fabric tenants
  in
  let traced () =
    if not (Obs.enabled ()) then body ()
    else
      Obs.with_span
        ~args:
          [
            ("tenants", Obs.Int (List.length tenants));
            ("window", Obs.Int window);
          ]
        ~cat:"tenancy" ~name:"run_shared" body
  in
  if trace then traced () else Obs.suppress body
