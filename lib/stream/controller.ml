open Iced_arch
module Obs = Iced_obs.Trace

type t = {
  window_size : int;
  floor : Dvfs.level;
  label_floors : (string * Dvfs.level) list;
  mutable levels : (string * Dvfs.level) list;
  exe_table : (string, float list) Hashtbl.t;
  long_worst : (string, float) Hashtbl.t;
      (* decaying maximum across windows: lowering decisions must
         survive a return of the recent past, not just this window *)
  mutable inputs_seen : int;
  mutable adjustments : int;
  mutable last_bottleneck : (string * float) option;
}

(* Lowering a kernel one level doubles its time; only lower when even
   the window's worst-case doubled time fits under the bottleneck with
   this guard band (input-to-input variance would otherwise flip the
   bottleneck and cost a slow window). *)
let guard_band = 0.8

let create ?(window = 10) ?(floor = Dvfs.Rest) ?(label_floors = []) ~labels () =
  if window <= 0 then invalid_arg "Controller.create: non-positive window";
  {
    window_size = window;
    floor;
    label_floors;
    levels = List.map (fun l -> (l, Dvfs.Normal)) labels;
    exe_table = Hashtbl.create 16;
    long_worst = Hashtbl.create 16;
    inputs_seen = 0;
    adjustments = 0;
    last_bottleneck = None;
  }

let window t = t.window_size

let level t label =
  match List.assoc_opt label t.levels with Some l -> l | None -> raise Not_found

let levels t = t.levels

let observe t ~label ~busy_time =
  let existing =
    match Hashtbl.find_opt t.exe_table label with Some l -> l | None -> []
  in
  Hashtbl.replace t.exe_table label (busy_time :: existing)

let mean samples = Iced_util.Stats.mean samples

let long_worst_decay = 0.5

let adjust_body t =
  let stats =
    List.filter_map
      (fun (label, _) ->
        match Hashtbl.find_opt t.exe_table label with
        | Some (_ :: _ as samples) ->
          let worst = Iced_util.Stats.maximum samples in
          (* normalize the observation back to Normal-level time so the
             memory is level-independent *)
          let level = match List.assoc_opt label t.levels with Some l -> l | None -> Dvfs.Normal in
          let nominal = worst /. float_of_int (Dvfs.multiplier level) in
          let remembered =
            match Hashtbl.find_opt t.long_worst label with
            | Some prev -> Float.max nominal (long_worst_decay *. prev)
            | None -> nominal
          in
          Hashtbl.replace t.long_worst label remembered;
          Some (label, mean samples, Float.max worst (remembered *. float_of_int (Dvfs.multiplier level)))
        | Some [] | None -> None)
      t.levels
  in
  match stats with
  | [] -> ()
  | (first_label, first_time, _) :: rest ->
    let bottleneck_label, bottleneck_time =
      List.fold_left
        (fun (bl, bt) (l, time, _) -> if time > bt then (l, time) else (bl, bt))
        (first_label, first_time) rest
    in
    t.last_bottleneck <- Some (bottleneck_label, bottleneck_time);
    if Obs.enabled () then begin
      Obs.span_arg "bottleneck" (Obs.Str bottleneck_label);
      Obs.span_arg "bottleneck_us" (Obs.Float bottleneck_time)
    end;
    let changed = ref false in
    let new_levels =
      List.map
        (fun (label, level) ->
          let worst =
            match
              List.find_opt (fun (l, _, _) -> l = label) stats
            with
            | Some (_, _, worst) -> worst
            | None -> (
              (* Starved kernel: no samples this window.  Treating it
                 as free (worst = 0) would step it down every starved
                 window regardless of how slow it ran moments ago, then
                 cost a slow window the instant the phase returns.  Use
                 the decayed cross-window memory instead, decaying it
                 once per starved window so a kernel that stays idle is
                 still lowered eventually. *)
              match Hashtbl.find_opt t.long_worst label with
              | Some prev ->
                let decayed = long_worst_decay *. prev in
                Hashtbl.replace t.long_worst label decayed;
                decayed *. float_of_int (Dvfs.multiplier level)
              | None -> 0.0)
          in
          let next =
            if label = bottleneck_label then
              (* a slowed kernel that became the throughput limiter is
                 restored to nominal at once: every window it spends
                 below Normal while constraining the pipeline is pure
                 loss (the ns-scale regulator makes the switch itself
                 free) *)
              if level <> Dvfs.Normal then Dvfs.Normal else level
            else begin
              (* Raise a slowed kernel enough levels that its projected
                 time drops back under the bottleneck (each level
                 halves it) — the stream can jump phases abruptly, and
                 limping out of rest one window at a time would stall
                 the pipeline for two windows.  Lower only when even
                 the window's worst doubled time leaves headroom. *)
              let rec settle level worst =
                if level <> Dvfs.Normal && worst >= 0.9 *. bottleneck_time then
                  settle (Dvfs.step_up level) (worst /. 2.0)
                else level
              in
              let raised = settle level worst in
              if raised <> level then raised
              else if 2.0 *. worst <= guard_band *. bottleneck_time then
                let floor =
                  match List.assoc_opt label t.label_floors with
                  | Some f when Dvfs.faster f t.floor -> f
                  | _ -> t.floor
                in
                Dvfs.step_down ~floor level
              else level
            end
          in
          if next <> level then begin
            changed := true;
            if Obs.enabled () then
              Obs.instant
                ~args:
                  [
                    ("kernel", Obs.Str label);
                    ("from", Obs.Str (Dvfs.to_string level));
                    ("to", Obs.Str (Dvfs.to_string next));
                  ]
                ~cat:"controller" ~name:"level" ()
          end;
          (label, next))
        t.levels
    in
    if !changed then t.adjustments <- t.adjustments + 1;
    t.levels <- new_levels

(* The decision step of Algorithm 3, traced as one ["controller"]
   ["adjust"] span per window: the window index, the bottleneck kernel
   and its time land as span args; every per-kernel level move is a
   ["level"] instant. *)
let adjust t =
  if not (Obs.enabled ()) then adjust_body t
  else
    Obs.with_span
      ~args:[ ("window", Obs.Int ((t.inputs_seen / t.window_size) - 1)) ]
      ~cat:"controller" ~name:"adjust"
      (fun () -> adjust_body t)

let impose t granted =
  List.iter
    (fun (label, _) ->
      if not (List.mem_assoc label t.levels) then
        invalid_arg ("Controller.impose: unknown label " ^ label))
    granted;
  let new_levels =
    List.map
      (fun (label, level) ->
        match List.assoc_opt label granted with
        | Some g ->
          if g <> level && Obs.enabled () then
            Obs.instant
              ~args:
                [
                  ("kernel", Obs.Str label);
                  ("from", Obs.Str (Dvfs.to_string level));
                  ("to", Obs.Str (Dvfs.to_string g));
                ]
              ~cat:"controller" ~name:"impose" ()
          ;
          (label, g)
        | None -> (label, level))
      t.levels
  in
  t.levels <- new_levels

let last_bottleneck t = t.last_bottleneck

let input_done t =
  t.inputs_seen <- t.inputs_seen + 1;
  if t.inputs_seen mod t.window_size = 0 then begin
    adjust t;
    Hashtbl.reset t.exe_table
  end

let adjustments t = t.adjustments
