(** CGRA partitioning for streaming applications (paper Section IV-B).

    Kernels are mapped at island granularity: every pipeline instance
    gets at least one island, all islands are allocated, and the
    partition minimizing the profiled bottleneck stage time is chosen
    by exhaustive search over island compositions — the paper's offline
    exhaustive exploration over candidate partitions, using the first
    50 inputs as the profile.

    Streaming kernel mappings use the [Relax] label floor: island
    levels must keep downward headroom because the runtime lowers
    non-bottleneck kernels one level at a time (rest is reached only
    through runtime adjustment). *)

open Iced_arch
open Iced_mapper

type candidate = {
  islands : int;  (** island count this mapping was built for *)
  mapping : Mapping.t;  (** the mapping achieved at that count *)
}
(** One pre-compiled (island count, mapping) option for an instance. *)

type prepared_instance = {
  instance : Pipeline.instance;
  candidates : candidate list;  (** one per feasible island count *)
}
(** An instance with every mapping the allocator may pick from. *)

type t = {
  cgra : Cgra.t;
  pipeline : Pipeline.t;
  prepared : prepared_instance list;
  allocation : (string * int) list;  (** instance label -> island count *)
  island_ids : (string * int list) list;
      (** instance label -> the concrete islands it owns (the
          controller's mapTable) *)
  level_floors : (string * Dvfs.level) list;
      (** compile-time DVFS eligibility per instance (the paper's
          normal-or-relax allocation): the lowest level the runtime may
          set, derived from each kernel's profiled worst-case share of
          the bottleneck *)
}
(** A chosen partition: the prepared mappings plus the island
    allocation the exhaustive search settled on. *)

val candidate_for : prepared_instance -> int -> candidate option
(** The mapping prepared for a given island count, [None] when the
    instance could not map at that count. *)

val ii_for : t -> string -> int -> int
(** II of an instance when given [count] islands; [max_int] when no
    mapping exists at that count.  @raise Not_found on unknown label. *)

val allocated : t -> string -> candidate
(** The candidate selected by the chosen allocation. *)

val prepare :
  ?max_islands_per_kernel:int ->
  Cgra.t ->
  Pipeline.t ->
  profile:Pipeline.input list ->
  (t, string) result
(** Map every instance for every feasible island count, then pick the
    composition of all islands minimizing the mean profiled bottleneck.
    Fails when the pipeline has more instances than the fabric has
    islands, or when some instance cannot map at any count. *)
