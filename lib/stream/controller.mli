(** The ICED DVFS Controller (paper Section III-B, Algorithm 3).

    Maintains an [exeTable] of per-kernel execution times and a
    [mapTable] of the islands each kernel owns.  Every [window] inputs
    (the paper uses 10), it identifies the bottleneck kernel, raises
    its islands one level (toward [Normal]), and lowers the
    non-bottleneck kernels one level where doing so cannot create a new
    bottleneck (halving a kernel's frequency doubles its time, so a
    kernel is lowered only when twice its observed time still fits
    under the bottleneck with some guard band).

    When the {!Iced_obs.Trace} collector is on, every window-boundary
    decision runs inside a ["controller"]/["adjust"] span carrying the
    window index, bottleneck kernel, and bottleneck time, and every
    per-kernel level move is recorded as a ["controller"]/["level"]
    instant — a readable decision log of Algorithm 3.  Tracing never
    changes any decision. *)

open Iced_arch

type t
(** One controller instance, owning the level of every kernel it was
    created with. *)

val create :
  ?window:int -> ?floor:Dvfs.level -> ?label_floors:(string * Dvfs.level) list ->
  labels:string list -> unit -> t
(** Create a controller for [labels], all starting at [Normal].
    [window] defaults to 10 inputs; [floor] (lowest runtime level)
    defaults to [Rest]; [label_floors] are the compiler's per-kernel
    eligibility bounds ({!Partition.t.level_floors}).
    @raise Invalid_argument on a non-positive [window]. *)

val window : t -> int
(** The adjustment window, in inputs. *)

val level : t -> string -> Dvfs.level
(** Current level of a kernel's islands ([Normal] initially).
    @raise Not_found for unknown labels. *)

val levels : t -> (string * Dvfs.level) list
(** Current level of every kernel, in creation order. *)

val observe : t -> label:string -> busy_time:float -> unit
(** Record one kernel's execution time for the current input (the
    termination signal updating the exeTable). *)

val input_done : t -> unit
(** Mark one input fully consumed; on the window boundary, adjust
    levels and reset the exeTable. *)

val impose : t -> (string * Iced_arch.Dvfs.level) list -> unit
(** Overwrite the current level of the listed kernels with an
    externally granted assignment — the hook a fabric-wide allocator
    (see [Iced_tenancy.Allocator]) uses to throttle a tenant below what
    Algorithm 3 asked for.  Labels absent from the list keep their
    level; level order and the adjustment count are untouched, so
    imposing the controller's own {!levels} is a strict no-op.
    Subsequent {!observe} normalization uses the imposed level, keeping
    the cross-window memory consistent under throttling.
    @raise Invalid_argument if a label is unknown to this controller. *)

val adjustments : t -> int
(** Number of windows that triggered a level change so far. *)

val last_bottleneck : t -> (string * float) option
(** The bottleneck kernel and its time (µs at its current level) found
    by the most recent adjustment, [None] before the first window with
    samples.  The streaming runner stamps this onto its per-window
    trace spans. *)
