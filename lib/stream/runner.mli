(** Streaming execution model: drive a partitioned pipeline over an
    input stream under one of three runtime policies and account time,
    power, and energy per observation window (Figure 13's series).

    Time model: one input costs an instance II * iterations(input)
    kernel-clock cycles, i.e. that many base-clock cycles times the
    period multiplier of its current DVFS level; a stage's time is the
    max over its parallel kernels, and the pipeline's per-input period
    is the bottleneck stage's time.  Power model: every allocated tile
    burns static power at its level continuously and dynamic power
    scaled by its mapped activity and its duty cycle (busy fraction of
    the input period); the SPM and the per-island DVFS controllers (for
    the ICED policy) are charged per {!Iced_power.Model}.

    {2 Resilient execution}

    {!run_resilient} additionally injects an {!Iced_fault.Fault.plan}
    into the stream and applies a {!recovery} policy when a fault
    fires.  Everything stays deterministic: the plan's seed drives the
    upset draws, and remap retries are bounded by a poll budget rather
    than wall-clock time, so a fault campaign is byte-identical across
    worker counts.

    {2 Tracing}

    When the {!Iced_obs.Trace} collector is on, a run emits a
    ["stream"]/["run"] span wrapping the whole stream, one
    ["stream"]/["window"] span per observation window (stamped with the
    window index, consumed/dropped/replayed input counts, the
    controller's bottleneck kernel, and the closing per-kernel levels),
    a ["fault"]/["activate"] instant per injected fault, and a
    ["fault"]/["recover"] span per recovery action carrying the
    reconfiguration latency it charged.  Pass [trace:false] to silence
    all of it for one call; either way the reports are byte-identical
    — tracing observes, never steers. *)

open Iced_arch

type policy =
  | Static  (** fixed partition, all levels at [Normal], no runtime adaptation *)
  | Iced_dvfs  (** fixed partition, per-kernel DVFS via {!Controller} *)
  | Drips  (** dynamic repartitioning via {!Drips}, no DVFS *)

val policy_to_string : policy -> string

type recovery =
  | Remap
      (** rebuild the victim kernel's mapping around the faulted
          tile/link on its own islands (Algorithm 2 with the faulted
          resources masked); escalates to [Gate_island] when no
          mapping exists within the bounded retry budget *)
  | Gate_island
      (** power off the faulted island and re-floorplan: the victim
          shrinks to a smaller prepared mapping, or borrows an island
          from the richest kernel that can itself shrink *)
  | Raise_level
      (** pin upset-afflicted kernels at [Normal] — full voltage
          margin clears voltage-induced timing upsets; permanent
          faults abort (voltage cannot fix dead silicon) *)
  | Fail_stop  (** no recovery: the first fault loses the rest of the stream *)

val recovery_to_string : recovery -> string
val recovery_of_string : string -> recovery option

type window_report = {
  index : int;  (** window number, 0-based *)
  inputs : int;  (** inputs consumed in this window *)
  mean_period_us : float;  (** mean per-input bottleneck period *)
  throughput_per_s : float;
  power_mw : float;  (** mean chip power over the window *)
  efficiency : float;  (** throughput per watt: inputs/s/W *)
  levels : (string * Dvfs.level) list;  (** per-kernel level at window end *)
  allocation : (string * int) list;  (** per-kernel island count at window end *)
  dropped : int;  (** inputs lost in this window (faults) *)
  replayed : int;  (** inputs re-executed after a transient upset *)
  recovery_us : float;  (** recovery latency charged to this window *)
}

type fault_stats = {
  injected : int;  (** fault events that fired *)
  recoveries : int;  (** successful recovery actions *)
  remaps : int;  (** recoveries that ran the mapper *)
  islands_gated : int;  (** islands powered off by recovery *)
  levels_raised : int;  (** kernels pinned at [Normal] by [Raise_level] *)
  inputs_dropped : int;  (** inputs lost (abort remainder + double upsets) *)
  inputs_replayed : int;  (** inputs re-executed after an upset *)
  recovery_time_us : float;  (** total reconfiguration latency *)
  mttr_us : float;  (** mean time to repair: recovery time / recoveries *)
  offered : int;  (** stream length *)
  completed : int;  (** inputs that produced output *)
}

val no_faults : fault_stats
(** All-zero stats: what a fault-free run reports. *)

val run :
  ?window:int ->
  ?params:Iced_power.Params.t ->
  ?trace:bool ->
  Partition.t ->
  policy ->
  Pipeline.input list ->
  window_report list
(** Stream the inputs through the pipeline.  [window] defaults to the
    paper's 10 inputs; [trace:false] silences this run's trace spans
    (see the {e Tracing} section above).  Equivalent to
    {!run_resilient} under the empty fault plan. *)

val run_resilient :
  ?window:int ->
  ?params:Iced_power.Params.t ->
  ?faults:Iced_fault.Fault.plan ->
  ?recovery:recovery ->
  ?stats:Iced_mapper.Mapper.stats ->
  ?trace:bool ->
  Partition.t ->
  policy ->
  Pipeline.input list ->
  window_report list * fault_stats
(** Stream the inputs while injecting [faults] (default: none) and
    recovering per [recovery] (default [Fail_stop]).  A fault scheduled
    at input [k] fires just before input [k] is consumed.  Under the
    empty plan the reports are identical to {!run}'s.  [stats]
    accumulates the mapper telemetry of every recovery remap (clean
    geometries reuse prepared mappings and contribute nothing);
    [trace:false] silences this run's trace spans (see the {e Tracing}
    section above).
    @raise Invalid_argument for [Drips] with a non-empty plan (the
    DRIPS baseline has no fault model). *)

type totals = {
  total_inputs : int;
  total_time_us : float;
  total_energy_uj : float;
  overall_throughput_per_s : float;
  overall_efficiency : float;  (** inputs/s/W over the whole stream *)
}

val aggregate : window_report list -> totals
(** Whole-stream totals: slow phases dominate total time and energy,
    so this is the meaningful end-to-end energy-efficiency (Figure 13's
    headline averages). *)

val mean_efficiency : window_report list -> float
(** Mean of the per-window efficiencies (the Figure 13 series). *)
