(** Streaming execution model: drive a partitioned pipeline over an
    input stream under one of three runtime policies and account time,
    power, and energy per observation window (Figure 13's series).

    Time model: one input costs an instance II * iterations(input)
    kernel-clock cycles, i.e. that many base-clock cycles times the
    period multiplier of its current DVFS level; a stage's time is the
    max over its parallel kernels, and the pipeline's per-input period
    is the bottleneck stage's time.  Power model: every allocated tile
    burns static power at its level continuously and dynamic power
    scaled by its mapped activity and its duty cycle (busy fraction of
    the input period); the SPM and the per-island DVFS controllers (for
    the ICED policy) are charged per {!Iced_power.Model}.

    {2 Resilient execution}

    {!run_resilient} additionally injects an {!Iced_fault.Fault.plan}
    into the stream and applies a {!recovery} policy when a fault
    fires.  Everything stays deterministic: the plan's seed drives the
    upset draws, and remap retries are bounded by a poll budget rather
    than wall-clock time, so a fault campaign is byte-identical across
    worker counts.

    {2 Tracing}

    When the {!Iced_obs.Trace} collector is on, a run emits a
    ["stream"]/["run"] span wrapping the whole stream, one
    ["stream"]/["window"] span per observation window (stamped with the
    window index, consumed/dropped/replayed input counts, the
    controller's bottleneck kernel, and the closing per-kernel levels),
    a ["fault"]/["activate"] instant per injected fault, and a
    ["fault"]/["recover"] span per recovery action carrying the
    reconfiguration latency it charged.  Pass [trace:false] to silence
    all of it for one call; either way the reports are byte-identical
    — tracing observes, never steers. *)

open Iced_arch

type policy =
  | Static  (** fixed partition, all levels at [Normal], no runtime adaptation *)
  | Iced_dvfs  (** fixed partition, per-kernel DVFS via {!Controller} *)
  | Drips  (** dynamic repartitioning via {!Drips}, no DVFS *)

val policy_to_string : policy -> string

type recovery =
  | Remap
      (** rebuild the victim kernel's mapping around the faulted
          tile/link on its own islands (Algorithm 2 with the faulted
          resources masked); escalates to [Gate_island] when no
          mapping exists within the bounded retry budget *)
  | Gate_island
      (** power off the faulted island and re-floorplan: the victim
          shrinks to a smaller prepared mapping, or borrows an island
          from the richest kernel that can itself shrink *)
  | Raise_level
      (** pin upset-afflicted kernels at [Normal] — full voltage
          margin clears voltage-induced timing upsets; permanent
          faults abort (voltage cannot fix dead silicon) *)
  | Fail_stop  (** no recovery: the first fault loses the rest of the stream *)

val recovery_to_string : recovery -> string
(** ["remap"] / ["gate"] / ["raise"] / ["fail-stop"]. *)

val recovery_of_string : string -> recovery option
(** Inverse of {!recovery_to_string}; [None] on anything else. *)

type window_report = {
  index : int;  (** window number, 0-based *)
  inputs : int;  (** inputs consumed in this window *)
  mean_period_us : float;  (** mean per-input bottleneck period *)
  throughput_per_s : float;
  power_mw : float;  (** mean chip power over the window *)
  efficiency : float;  (** throughput per watt: inputs/s/W *)
  levels : (string * Dvfs.level) list;  (** per-kernel level at window end *)
  allocation : (string * int) list;  (** per-kernel island count at window end *)
  dropped : int;  (** inputs lost in this window (faults) *)
  replayed : int;  (** inputs re-executed after a transient upset *)
  recovery_us : float;  (** recovery latency charged to this window *)
}

type fault_stats = {
  injected : int;  (** fault events that fired *)
  recoveries : int;  (** successful recovery actions *)
  remaps : int;  (** recoveries that ran the mapper *)
  islands_gated : int;  (** islands powered off by recovery *)
  levels_raised : int;  (** kernels pinned at [Normal] by [Raise_level] *)
  inputs_dropped : int;  (** inputs lost (abort remainder + double upsets) *)
  inputs_replayed : int;  (** inputs re-executed after an upset *)
  recovery_time_us : float;  (** total reconfiguration latency *)
  mttr_us : float;  (** mean time to repair: recovery time / recoveries *)
  offered : int;  (** stream length *)
  completed : int;  (** inputs that produced output *)
}

val no_faults : fault_stats
(** All-zero stats: what a fault-free run reports. *)

val run :
  ?window:int ->
  ?params:Iced_power.Params.t ->
  ?trace:bool ->
  Partition.t ->
  policy ->
  Pipeline.input list ->
  window_report list
(** Stream the inputs through the pipeline.  [window] defaults to the
    paper's 10 inputs; [trace:false] silences this run's trace spans
    (see the {e Tracing} section above).  Equivalent to
    {!run_resilient} under the empty fault plan. *)

val run_resilient :
  ?window:int ->
  ?params:Iced_power.Params.t ->
  ?faults:Iced_fault.Fault.plan ->
  ?recovery:recovery ->
  ?stats:Iced_mapper.Mapper.stats ->
  ?trace:bool ->
  Partition.t ->
  policy ->
  Pipeline.input list ->
  window_report list * fault_stats
(** Stream the inputs while injecting [faults] (default: none) and
    recovering per [recovery] (default [Fail_stop]).  A fault scheduled
    at input [k] fires just before input [k] is consumed.  Under the
    empty plan the reports are identical to {!run}'s.  [stats]
    accumulates the mapper telemetry of every recovery remap (clean
    geometries reuse prepared mappings and contribute nothing);
    [trace:false] silences this run's trace spans (see the {e Tracing}
    section above).
    @raise Invalid_argument for [Drips] with a non-empty plan (the
    DRIPS baseline has no fault model). *)

(** {2 Shared-fabric multi-tenant streaming}

    {!run_shared} time-multiplexes N independent tenant pipelines on
    one fabric in rounds: each round, every live tenant consumes one
    observation window of its own stream on its own island partition
    with its own Algorithm 3 {!Controller}, and a fabric-wide
    [arbitrate] callback may throttle the per-kernel levels the
    controllers asked for (via {!Controller.impose}) before the window
    runs — the hook a power-cap allocator
    ([Iced_tenancy.Allocator]) plugs into.  The runner itself is
    allocator-agnostic and deterministic: with the default identity
    [arbitrate] and a single tenant, the tenant's
    {!shared_report.tenant_reports} entry is byte-identical to
    {!run} on the same partition and inputs. *)

type tenant_stream = {
  tenant : string;  (** unique tenant id *)
  partition : Partition.t;  (** the tenant's island partition (its sub-fabric) *)
  stream : Pipeline.input list;  (** the tenant's input stream *)
}
(** One tenant's workload: who, where, and what to stream. *)

type reassignment = {
  swaps : (string * Partition.t * float) list;
      (** per-tenant partition replacement with the reconfiguration
          latency (µs) to charge against the tenant's next input *)
  evictions : string list;
      (** tenants removed from the run; their remaining inputs are
          counted as lost in {!shared_report.evicted} *)
}
(** A round-boundary fleet change, produced by the [reconfigure] hook
    (fault-triggered island reallocation across tenants). *)

type tenant_window = {
  owner : string;  (** tenant id *)
  report : window_report;  (** the tenant's own window accounting *)
  granted : (string * Dvfs.level) list;
      (** levels the arbiter granted for this round *)
  throttled : bool;  (** granted differs from what the controller desired *)
  busy_us : float;  (** the tenant's wall time this round, penalties included *)
}
(** One tenant's slice of a shared round. *)

type shared_window = {
  round : int;  (** round number, 0-based *)
  span_us : float;  (** round wall time: the slowest tenant's busy time *)
  fabric_power_mw : float;
      (** whole-fabric mean power over the round: per-tenant active
          energy plus granted-level idle power, one SPM charge, one
          controller-overhead charge — bounded above by the
          activity-1.0 envelope at the granted levels *)
  slices : tenant_window list;  (** per-tenant slices, in tenant order *)
}
(** One round of the shared fabric. *)

type shared_report = {
  rounds : shared_window list;  (** every round, in order *)
  tenant_reports : (string * window_report list) list;
      (** per-tenant window reports, exactly what a solo {!run} of that
          tenant would return when never throttled or reconfigured *)
  evicted : (string * int) list;  (** evicted tenants and inputs lost *)
  peak_power_mw : float;  (** max {!shared_window.fabric_power_mw} *)
}
(** The outcome of a shared run. *)

val run_shared :
  ?window:int ->
  ?params:Iced_power.Params.t ->
  ?arbitrate:
    (round:int ->
    (string * (string * Dvfs.level) list) list ->
    (string * (string * Dvfs.level) list) list) ->
  ?reconfigure:
    (round:int -> active:(string * Partition.t) list -> reassignment option) ->
  ?trace:bool ->
  fabric:Cgra.t ->
  tenant_stream list ->
  shared_report
(** Stream every tenant on the shared [fabric] in round-robin windows
    (the ICED policy; [window] defaults to the paper's 10 inputs).
    Each round, [arbitrate] sees the per-tenant desired levels (from
    each tenant's controller, in tenant order) and returns the granted
    assignment — the default grants everything.  Granted levels apply
    for the whole round, idle time included; the controllers' next
    adjustment is read at the next round.  [reconfigure] runs first at
    every round boundary and may swap partitions or evict tenants (see
    {!reassignment}).  [fabric] is the physical array the tenants'
    partitions were carved from; it prices the SPM and
    controller-overhead terms of {!shared_window.fabric_power_mw}.
    Tracing ([trace], default on) emits one ["tenancy"]/["round"] span
    per round and never changes any result.
    @raise Invalid_argument on an empty or duplicate-id tenant list. *)

type totals = {
  total_inputs : int;
  total_time_us : float;
  total_energy_uj : float;
  overall_throughput_per_s : float;
  overall_efficiency : float;  (** inputs/s/W over the whole stream *)
}

val aggregate : window_report list -> totals
(** Whole-stream totals: slow phases dominate total time and energy,
    so this is the meaningful end-to-end energy-efficiency (Figure 13's
    headline averages). *)

val mean_efficiency : window_report list -> float
(** Mean of the per-window efficiencies (the Figure 13 series). *)
