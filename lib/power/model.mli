(** Power, energy, and area model — Equations 2-4 of the paper.

    P(tile)   = (C_clk + C * activity) * V(tile)^2 * f(tile) + P_static(tile)
    P_nontile = P_SRAM + sum of DVFS-controller overheads
    Energy    = (sum P(tile) + P_nontile) * ExecTime

    Activity is the fraction of the tile's {e local} clock cycles with
    FU or crossbar work — the same quantity the utilization figures
    report — so a slowed tile's dynamic power falls both through V^2*f
    and, indirectly, because its work occupies more of its (slower)
    cycles at unchanged throughput. *)

open Iced_arch

(** Which design point is being evaluated — determines the DVFS
    hardware overhead that is charged (Figure 11's four bars). *)
type design =
  | Baseline  (** conventional CGRA: no DVFS hardware at all *)
  | Baseline_gated  (** conventional CGRA with power-gating only *)
  | Per_tile_dvfs  (** UE-CGRA-style: one controller per tile *)
  | Iced  (** one controller per island *)

type tile_state = {
  level : Dvfs.level;
  activity : float;  (** busy fraction of local cycles, in [0, 1] *)
}

val design_to_string : design -> string
(** Human-readable design-point name, as printed in reports. *)

val controller_count : design -> Cgra.t -> int
(** Number of DVFS controllers the design instantiates on the given
    fabric: 0 for the baselines, one per tile for per-tile DVFS, one
    per island for ICED — the multiplier on the per-controller
    overhead terms in {!Params.controller}. *)

val tile_power_mw : Params.t -> tile_state -> float
(** Eq. 2 for one tile. *)

val sram_power_mw : Params.t -> activity:float -> float
(** SPM leakage plus access-scaled dynamic power; [activity] is memory
    operations per cycle per bank, in [0, 1]. *)

val overhead_power_mw : Params.t -> design -> Cgra.t -> float
(** Sum of DVFS-controller power for the design point. *)

val total_power_mw :
  Params.t -> design -> Cgra.t -> tiles:tile_state list -> sram_activity:float -> float
(** Eq. 3 + the tile sum: full-chip average power. *)

val exec_time_us : Params.t -> cycles:int -> float
(** Wall time of [cycles] base-clock cycles at nominal frequency. *)

val energy_uj :
  Params.t -> design -> Cgra.t -> tiles:tile_state list -> sram_activity:float ->
  cycles:int -> float
(** Eq. 4: average power times execution time, in microjoules. *)

val area_mm2 : Params.t -> design -> Cgra.t -> (string * float) list
(** Component-level area breakdown (tiles, DVFS support, SRAM) with a
    ["total"] entry, reproducing Figure 8's breakdown for [Iced] on the
    6x6 fabric. *)

val power_breakdown_mw :
  Params.t -> design -> Cgra.t -> tiles:tile_state list -> sram_activity:float ->
  (string * float) list
(** Component-level power breakdown with a ["total"] entry. *)
