(** A small, deterministic CDCL SAT solver.

    Pure OCaml, no dependencies: two-watched-literal propagation, 1-UIP
    conflict analysis with clause learning, VSIDS-style variable
    activities with exponential decay, Luby-sequence restarts, and
    phase saving.  Everything is deterministic: given the same clauses
    (added in the same order), the same [seed] and the same conflict
    budget, the solver visits the same search tree and returns the same
    model with the same statistics — the property the exact-mapping
    oracle's byte-identical [--json] output rests on.

    The solver is incremental in the simplest useful sense: after a
    [Sat] answer the caller may read the model and then [add_clause] a
    blocking clause and [solve] again (adding a clause cancels all
    decisions first, so read the model {e before} adding). *)

type t

type lit = int
(** A literal is [2 * var] (positive) or [2 * var + 1] (negated). *)

type outcome = Sat | Unsat | Unknown
(** [Unknown] means the conflict budget ran out; the solver stays
    usable (state is rewound to decision level 0). *)

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learned : int;  (** learned clauses currently retained *)
}

val create : unit -> t

val new_var : t -> int
(** Fresh variable id, consecutive from 0. *)

val var_count : t -> int
val clause_count : t -> int
(** Problem (non-learned) clauses retained after level-0 simplification. *)

val pos : int -> lit
val neg : int -> lit
val negate : lit -> lit
val var_of : lit -> int

val add_clause : t -> lit list -> unit
(** Add a clause.  Performed at decision level 0: satisfied clauses and
    tautologies are dropped, false literals removed, units propagated
    immediately.  An empty (or immediately contradictory) clause marks
    the instance unsatisfiable; later [solve] calls return [Unsat]. *)

val solve : ?budget:int -> ?seed:int -> t -> outcome
(** Search for a model.  [budget] (default unlimited) bounds the number
    of conflicts for this call; on exhaustion the answer is [Unknown].
    [seed] (default 0) fixes the initial phase of variables that have
    never been assigned; saved phases from earlier calls persist. *)

val value : t -> int -> bool
(** Model value of a variable; only meaningful right after [Sat], before
    any further [add_clause]/[solve].  Variables in no clause are
    assigned their seeded initial phase. *)

val stats : t -> stats
(** Cumulative over the solver's lifetime (all [solve] calls). *)
