(* CDCL with two watched literals, 1-UIP learning, VSIDS activities on
   an indexed max-heap (ties broken by variable index, so the search
   order is a pure function of the clause stream and the seed), phase
   saving, and Luby restarts.  No clause deletion: instances here are
   small and budgets bound the learned-clause population. *)

type lit = int
type outcome = Sat | Unsat | Unknown

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learned : int;
}

type clause = { lits : int array }
(* lits.(0) and lits.(1) are the watched literals; the array is
   reordered in place as watches move. *)

type t = {
  mutable nvars : int;
  mutable unsat : bool;
  mutable nclauses : int;
  (* per-literal: clauses in which that literal is watched *)
  mutable watches : clause list array;
  (* per-variable state *)
  mutable assign : int array;  (* -1 unassigned, 0 false, 1 true *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable phase : bool array;
  mutable phase_inited : int;  (* vars below this had their phase seeded *)
  mutable seen : Bytes.t;
  (* trail *)
  mutable trail : int array;
  mutable trail_n : int;
  mutable trail_lim : int array;
  mutable trail_lim_n : int;
  mutable qhead : int;
  (* VSIDS heap of candidate decision variables *)
  mutable heap : int array;
  mutable heap_n : int;
  mutable heap_pos : int array;
  mutable var_inc : float;
  stats : stats;
}

let pos v = 2 * v
let neg v = (2 * v) + 1
let negate l = l lxor 1
let var_of l = l lsr 1

let create () =
  {
    nvars = 0;
    unsat = false;
    nclauses = 0;
    watches = Array.make 16 [];
    assign = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 None;
    activity = Array.make 8 0.0;
    phase = Array.make 8 false;
    phase_inited = 0;
    seen = Bytes.make 8 '\000';
    trail = Array.make 8 0;
    trail_n = 0;
    trail_lim = Array.make 9 0;
    trail_lim_n = 0;
    qhead = 0;
    heap = Array.make 8 0;
    heap_n = 0;
    heap_pos = Array.make 8 (-1);
    var_inc = 1.0;
    stats =
      { conflicts = 0; decisions = 0; propagations = 0; restarts = 0; learned = 0 };
  }

let var_count t = t.nvars
let clause_count t = t.nclauses
let stats t = t.stats

let grow_int a n fill =
  let b = Array.make n fill in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_float a n =
  let b = Array.make n 0.0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_bool a n =
  let b = Array.make n false in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_reason a n =
  let b = Array.make n None in
  Array.blit a 0 b 0 (Array.length a);
  b

let ensure_capacity t v =
  let cap = Array.length t.assign in
  if v >= cap then begin
    let n = max (2 * cap) (v + 1) in
    t.assign <- grow_int t.assign n (-1);
    t.level <- grow_int t.level n 0;
    t.reason <- grow_reason t.reason n;
    t.activity <- grow_float t.activity n;
    t.phase <- grow_bool t.phase n;
    t.trail <- grow_int t.trail n 0;
    t.trail_lim <- grow_int t.trail_lim (n + 1) 0;
    t.heap <- grow_int t.heap n 0;
    t.heap_pos <- grow_int t.heap_pos n (-1);
    let s = Bytes.make n '\000' in
    Bytes.blit t.seen 0 s 0 (Bytes.length t.seen);
    t.seen <- s;
    let w = Array.make (2 * n) [] in
    Array.blit t.watches 0 w 0 (Array.length t.watches);
    t.watches <- w
  end

let new_var t =
  let v = t.nvars in
  ensure_capacity t v;
  t.nvars <- v + 1;
  v

(* 1 = true, 0 = false, -1 = unassigned, for a literal *)
let lit_value t l =
  let v = t.assign.(l lsr 1) in
  if v < 0 then -1 else v lxor (l land 1)

(* heap order: higher activity first, lower index first on ties *)
let heap_before t a b =
  t.activity.(a) > t.activity.(b)
  || (t.activity.(a) = t.activity.(b) && a < b)

let rec percolate_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    let v = t.heap.(i) and pv = t.heap.(p) in
    if heap_before t v pv then begin
      t.heap.(i) <- pv;
      t.heap_pos.(pv) <- i;
      t.heap.(p) <- v;
      t.heap_pos.(v) <- p;
      percolate_up t p
    end
  end

let rec percolate_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_n && heap_before t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_n && heap_before t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    let a = t.heap.(i) and b = t.heap.(!best) in
    t.heap.(i) <- b;
    t.heap_pos.(b) <- i;
    t.heap.(!best) <- a;
    t.heap_pos.(a) <- !best;
    percolate_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap.(t.heap_n) <- v;
    t.heap_pos.(v) <- t.heap_n;
    t.heap_n <- t.heap_n + 1;
    percolate_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_n <- t.heap_n - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_n > 0 then begin
    let last = t.heap.(t.heap_n) in
    t.heap.(0) <- last;
    t.heap_pos.(last) <- 0;
    percolate_down t 0
  end;
  v

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then percolate_up t t.heap_pos.(v)

let var_decay t = t.var_inc <- t.var_inc /. 0.95

let enqueue t l reason =
  let v = l lsr 1 in
  t.assign.(v) <- 1 - (l land 1);
  t.level.(v) <- t.trail_lim_n;
  t.reason.(v) <- reason;
  t.trail.(t.trail_n) <- l;
  t.trail_n <- t.trail_n + 1

let cancel_until t lvl =
  if t.trail_lim_n > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_n - 1 downto bound do
      let l = t.trail.(i) in
      let v = l lsr 1 in
      t.phase.(v) <- l land 1 = 0;
      t.assign.(v) <- -1;
      t.reason.(v) <- None;
      heap_insert t v
    done;
    t.trail_n <- bound;
    t.trail_lim_n <- lvl;
    t.qhead <- bound
  end

let propagate t =
  let confl = ref None in
  while !confl = None && t.qhead < t.trail_n do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    let false_lit = p lxor 1 in
    let ws = t.watches.(false_lit) in
    t.watches.(false_lit) <- [];
    let rec go = function
      | [] -> ()
      | c :: rest ->
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        let first = c.lits.(0) in
        if lit_value t first = 1 then begin
          (* satisfied by the other watch: keep watching false_lit *)
          t.watches.(false_lit) <- c :: t.watches.(false_lit);
          go rest
        end
        else begin
          let n = Array.length c.lits in
          let k = ref 2 in
          while !k < n && lit_value t c.lits.(!k) = 0 do incr k done;
          if !k < n then begin
            (* move the watch to a non-false literal *)
            c.lits.(1) <- c.lits.(!k);
            c.lits.(!k) <- false_lit;
            t.watches.(c.lits.(1)) <- c :: t.watches.(c.lits.(1));
            go rest
          end
          else begin
            t.watches.(false_lit) <- c :: t.watches.(false_lit);
            if lit_value t first = 0 then begin
              (* conflict: put the unprocessed tail back *)
              List.iter
                (fun c -> t.watches.(false_lit) <- c :: t.watches.(false_lit))
                rest;
              t.qhead <- t.trail_n;
              confl := Some c
            end
            else begin
              t.stats.propagations <- t.stats.propagations + 1;
              enqueue t first (Some c);
              go rest
            end
          end
        end
    in
    go ws
  done;
  !confl

(* 1-UIP conflict analysis.  Relies on the invariant that a reason
   clause has its propagated literal at index 0 (true for both
   propagate and learned-clause assertion). *)
let analyze t confl0 =
  let learnt = ref [] in
  let btlevel = ref 0 in
  let counter = ref 0 in
  let p = ref (-1) in
  let c = ref confl0 in
  let index = ref (t.trail_n - 1) in
  let to_clear = ref [] in
  let continue = ref true in
  while !continue do
    let lits = !c.lits in
    let start = if !p < 0 then 0 else 1 in
    for i = start to Array.length lits - 1 do
      let q = lits.(i) in
      let v = q lsr 1 in
      if Bytes.get t.seen v = '\000' && t.level.(v) > 0 then begin
        Bytes.set t.seen v '\001';
        to_clear := v :: !to_clear;
        var_bump t v;
        if t.level.(v) >= t.trail_lim_n then incr counter
        else begin
          learnt := q :: !learnt;
          if t.level.(v) > !btlevel then btlevel := t.level.(v)
        end
      end
    done;
    while Bytes.get t.seen (t.trail.(!index) lsr 1) = '\000' do
      decr index
    done;
    let pl = t.trail.(!index) in
    decr index;
    p := pl;
    Bytes.set t.seen (pl lsr 1) '\000';
    decr counter;
    if !counter = 0 then continue := false
    else
      c :=
        (match t.reason.(pl lsr 1) with
        | Some cl -> cl
        | None -> assert false)
  done;
  List.iter (fun v -> Bytes.set t.seen v '\000') !to_clear;
  (Array.of_list ((!p lxor 1) :: !learnt), !btlevel)

let attach t c =
  t.watches.(c.lits.(0)) <- c :: t.watches.(c.lits.(0));
  t.watches.(c.lits.(1)) <- c :: t.watches.(c.lits.(1))

(* Learn [arr] (asserting literal at index 0) after backtracking. *)
let record t arr =
  if Array.length arr = 1 then enqueue t arr.(0) None
  else begin
    (* watch the asserting literal and a highest-level other literal,
       so the watch invariant holds after backtracking *)
    let mi = ref 1 in
    for i = 2 to Array.length arr - 1 do
      if t.level.(arr.(i) lsr 1) > t.level.(arr.(!mi) lsr 1) then mi := i
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!mi);
    arr.(!mi) <- tmp;
    let c = { lits = arr } in
    attach t c;
    t.stats.learned <- t.stats.learned + 1;
    enqueue t arr.(0) (Some c)
  end

let add_clause t lits =
  if not t.unsat then begin
    cancel_until t 0;
    (match propagate t with
    | Some _ -> t.unsat <- true
    | None -> ());
    if not t.unsat then begin
      List.iter
        (fun l ->
          if l < 0 || l lsr 1 >= t.nvars then
            invalid_arg "Solver.add_clause: literal out of range")
        lits;
      let lits = List.sort_uniq compare lits in
      let tautology =
        List.exists (fun l -> List.mem (l lxor 1) lits) lits
      in
      let satisfied = List.exists (fun l -> lit_value t l = 1) lits in
      if not (tautology || satisfied) then begin
        match List.filter (fun l -> lit_value t l <> 0) lits with
        | [] -> t.unsat <- true
        | [ l ] ->
          enqueue t l None;
          (match propagate t with
          | Some _ -> t.unsat <- true
          | None -> ())
        | l0 :: l1 :: _ as rem ->
          let c = { lits = Array.of_list rem } in
          ignore l0;
          ignore l1;
          attach t c;
          t.nclauses <- t.nclauses + 1
      end
    end
  end

(* Luby sequence, 1-indexed: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

let restart_base = 64

(* splitmix64 of (seed, v): deterministic initial phase *)
let seeded_phase seed v =
  let z =
    ref
      (Int64.add (Int64.of_int seed)
         (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (v + 1))))
  in
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L;
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 27)) 0x94D049BB133111EBL;
  let h = Int64.logxor !z (Int64.shift_right_logical !z 31) in
  Int64.logand h 1L = 0L

let pick_branch t =
  let v = ref (-1) in
  while !v < 0 && t.heap_n > 0 do
    let cand = heap_pop t in
    if t.assign.(cand) < 0 then v := cand
  done;
  if !v < 0 then None else Some !v

let solve ?(budget = max_int) ?(seed = 0) t =
  if t.unsat then Unsat
  else begin
    for v = t.phase_inited to t.nvars - 1 do
      t.phase.(v) <- seeded_phase seed v
    done;
    t.phase_inited <- t.nvars;
    for v = 0 to t.nvars - 1 do
      if t.assign.(v) < 0 then heap_insert t v
    done;
    let conflicts0 = t.stats.conflicts in
    let restart_count = ref 1 in
    let next_restart = ref (luby 1 * restart_base) in
    let since_restart = ref 0 in
    let result = ref None in
    while !result = None do
      match propagate t with
      | Some confl ->
        t.stats.conflicts <- t.stats.conflicts + 1;
        incr since_restart;
        if t.trail_lim_n = 0 then begin
          t.unsat <- true;
          result := Some Unsat
        end
        else if t.stats.conflicts - conflicts0 >= budget then begin
          cancel_until t 0;
          result := Some Unknown
        end
        else begin
          let arr, bt = analyze t confl in
          cancel_until t bt;
          record t arr;
          var_decay t
        end
      | None ->
        if !since_restart >= !next_restart && t.trail_lim_n > 0 then begin
          t.stats.restarts <- t.stats.restarts + 1;
          incr restart_count;
          since_restart := 0;
          next_restart := luby !restart_count * restart_base;
          cancel_until t 0
        end
        else begin
          match pick_branch t with
          | None -> result := Some Sat
          | Some v ->
            t.stats.decisions <- t.stats.decisions + 1;
            t.trail_lim.(t.trail_lim_n) <- t.trail_n;
            t.trail_lim_n <- t.trail_lim_n + 1;
            enqueue t (if t.phase.(v) then pos v else neg v) None
        end
    done;
    match !result with Some r -> r | None -> assert false
  end

let value t v =
  if v < 0 || v >= t.nvars then invalid_arg "Solver.value";
  t.assign.(v) = 1
