(** Minimal DIMACS CNF reader, for tests and ad-hoc solver input. *)

val parse : string -> (Solver.t * int, string) result
(** Parse DIMACS CNF text ([c] comments, optional [p cnf V C] header,
    zero-terminated clauses).  Returns a loaded solver and the variable
    count.  DIMACS variable [i] is solver variable [i - 1]. *)
