let parse text =
  let s = Solver.create () in
  let nvars = ref 0 in
  let ensure v =
    while Solver.var_count s < v do ignore (Solver.new_var s) done;
    if v > !nvars then nvars := v
  in
  let lit_of i =
    let v = abs i in
    ensure v;
    if i > 0 then Solver.pos (v - 1) else Solver.neg (v - 1)
  in
  let error = ref None in
  let pending = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      if !error = None then
        let line = String.trim line in
        if line = "" || line.[0] = 'c' then ()
        else if line.[0] = 'p' then begin
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ "p"; "cnf"; v; _c ] -> (
            match int_of_string_opt v with
            | Some v when v >= 0 -> ensure v
            | _ -> error := Some (Printf.sprintf "bad header %S" line))
          | _ -> error := Some (Printf.sprintf "bad header %S" line)
        end
        else
          String.split_on_char ' ' line
          |> List.filter (( <> ) "")
          |> List.iter (fun tok ->
                 if !error = None then
                   match int_of_string_opt tok with
                   | None -> error := Some (Printf.sprintf "bad token %S" tok)
                   | Some 0 ->
                     Solver.add_clause s (List.rev !pending);
                     pending := []
                   | Some i -> pending := lit_of i :: !pending))
    lines;
  match !error with
  | Some e -> Error e
  | None ->
    if !pending <> [] then Error "unterminated clause"
    else Ok (s, !nvars)
