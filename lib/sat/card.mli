(** Cardinality constraints over literals, clausified onto a solver.

    Auxiliary variables are allocated with {!Solver.new_var} in a
    deterministic order, so encodings are reproducible across runs. *)

val at_most_one : Solver.t -> Solver.lit list -> unit
(** Pairwise for up to 4 literals, sequential (ladder) encoding above
    that: 3n-ish clauses and n-1 auxiliary variables instead of n². *)

val at_least_one : Solver.t -> Solver.lit list -> unit

val exactly_one : Solver.t -> Solver.lit list -> unit

val at_most_k : Solver.t -> k:int -> Solver.lit list -> unit
(** Sinz sequential-counter encoding: O(n·k) clauses and auxiliaries.
    [k = 0] degenerates to unit negations; [k >= n] adds nothing. *)
