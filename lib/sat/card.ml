let at_least_one s lits = Solver.add_clause s lits

let pairwise s lits =
  let rec go = function
    | [] -> ()
    | x :: rest ->
      List.iter
        (fun y -> Solver.add_clause s [ Solver.negate x; Solver.negate y ])
        rest;
      go rest
  in
  go lits

(* Ladder: a_i <=> "some of lits.(0..i) is true".  Three clause
   families: x_i -> a_i, a_(i-1) -> a_i, and x_i -> ~a_(i-1). *)
let ladder s lits =
  let xs = Array.of_list lits in
  let n = Array.length xs in
  let a = Array.init (n - 1) (fun _ -> Solver.new_var s) in
  for i = 0 to n - 2 do
    Solver.add_clause s [ Solver.negate xs.(i); Solver.pos a.(i) ];
    if i > 0 then begin
      Solver.add_clause s [ Solver.neg a.(i - 1); Solver.pos a.(i) ];
      Solver.add_clause s [ Solver.negate xs.(i); Solver.neg a.(i - 1) ]
    end
  done;
  if n >= 2 then
    Solver.add_clause s [ Solver.negate xs.(n - 1); Solver.neg a.(n - 2) ]

let at_most_one s lits =
  if List.length lits <= 4 then pairwise s lits else ladder s lits

let exactly_one s lits =
  at_least_one s lits;
  at_most_one s lits

(* Sinz sequential counter: r.(i).(j) = "at least j+1 of lits.(0..i)
   are true" for j < k. *)
let at_most_k s ~k lits =
  if k < 0 then invalid_arg "Card.at_most_k";
  let xs = Array.of_list lits in
  let n = Array.length xs in
  if k = 0 then Array.iter (fun x -> Solver.add_clause s [ Solver.negate x ]) xs
  else if k < n then begin
    let r = Array.init n (fun _ -> Array.init k (fun _ -> Solver.new_var s)) in
    for i = 0 to n - 1 do
      Solver.add_clause s [ Solver.negate xs.(i); Solver.pos r.(i).(0) ];
      if i > 0 then begin
        for j = 0 to k - 1 do
          Solver.add_clause s [ Solver.neg r.(i - 1).(j); Solver.pos r.(i).(j) ]
        done;
        for j = 1 to k - 1 do
          Solver.add_clause s
            [
              Solver.negate xs.(i);
              Solver.neg r.(i - 1).(j - 1);
              Solver.pos r.(i).(j);
            ]
        done;
        Solver.add_clause s [ Solver.negate xs.(i); Solver.neg r.(i - 1).(k - 1) ]
      end
    done
  end
