(** Minimal JSON string encoding: the one escaping routine every
    hand-rolled JSON emitter in the repository shares.

    The explore cache, the CLI's [--stats --json] payload, and the
    observability exporters all write flat JSON with [Printf]; each used
    to carry its own escaping (or lean on [%S], whose OCaml lexical
    escapes — ["\123"], ["\xFF"] — are not JSON).  This module is the
    single copy.  Only encoding lives here: the explore cache keeps its
    own tolerant line parser. *)

val escape : string -> string
(** Body of a JSON string literal for [s], without the surrounding
    quotes: escapes ["\""], ["\\"], newline, carriage return, tab, and
    all other control bytes below [0x20] as [\u00XX].  Every other byte
    passes through unchanged. *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes — a complete JSON
    string literal. *)

val number : float -> string
(** A finite JSON number rendering of [f] ([%.17g]-precision round-trip
    is not attempted; [%.6g] is used).  JSON has no [inf]/[nan]
    literals, so non-finite values are rendered as quoted strings
    (["\"inf\""], ["\"-inf\""], ["\"nan\""]) — lossy but parseable. *)
