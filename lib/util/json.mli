(** Minimal JSON encoding and strict decoding: the one escaping routine
    and the one parser every hand-rolled JSON endpoint in the
    repository shares.

    The explore cache, the CLI's [--stats --json] payload, and the
    observability exporters all write flat JSON with [Printf]; each used
    to carry its own escaping (or lean on [%S], whose OCaml lexical
    escapes — ["\123"], ["\xFF"] — are not JSON).  This module is the
    single copy of that escaping, and — since the serving daemon must
    decode request frames off the wire — of the inverse: a strict
    recursive-descent parser with positioned error values, promoted
    here from the obs test suite. *)

(** {1 Encoding} *)

val escape : string -> string
(** Body of a JSON string literal for [s], without the surrounding
    quotes: escapes ["\""], ["\\"], newline, carriage return, tab, and
    all other control bytes below [0x20] as [\u00XX].  Every other byte
    passes through unchanged. *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes — a complete JSON
    string literal. *)

val number : float -> string
(** A finite JSON number rendering of [f] ([%.17g]-precision round-trip
    is not attempted; [%.6g] is used).  JSON has no [inf]/[nan]
    literals, so non-finite values are rendered as quoted strings
    (["\"inf\""], ["\"-inf\""], ["\"nan\""]) — lossy but parseable. *)

(** {1 Decoding} *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list
      (** Members in document order; duplicate keys are kept as-is
          ({!member} returns the first). *)

type error = { at : int;  (** byte offset of the failure *) reason : string }
(** A positioned decode failure — the protocol layer's "malformed or
    truncated frame" evidence. *)

val error_to_string : error -> string
(** ["<reason> at byte <at>"]. *)

val parse : string -> (value, error) result
(** Parse one complete JSON document.  Strict: rejects trailing
    garbage, raw control characters inside strings, malformed or
    truncated [\u] escapes (including lone surrogates), and truncated
    documents.  String escapes are decoded for real ([\n] becomes a
    newline, [\uXXXX] is emitted as UTF-8, surrogate pairs combined).
    Numbers are read with OCaml's float parser over the maximal
    number-shaped span. *)

(** {2 Accessors}

    Shape-checking helpers so callers destructure without rewriting
    the same matches: each returns [None] on a shape mismatch. *)

val member : string -> value -> value option
(** First member named [key] of an [Obj]; [None] otherwise. *)

val get_string : value -> string option
val get_number : value -> float option

val get_int : value -> int option
(** [Num f] when [f] is integral (no fractional part, in [int] range). *)

val get_bool : value -> bool option
val get_list : value -> value list option
val get_obj : value -> (string * value) list option
