(** FNV-1a, 64-bit: the repository's one stable content hash.

    Used wherever a digest must be reproducible across runs, builds,
    and domains (unlike [Hashtbl.hash]): the explore cache's content
    keys and the fault model's deterministic upset draws.  The exact
    digests are pinned by unit tests — changing this algorithm
    invalidates persisted cache files and shifts every seeded fault
    campaign, so don't. *)

val offset_basis : int64
(** The standard FNV-1a 64-bit offset basis, [0xcbf29ce484222325]. *)

val prime : int64
(** The FNV 64-bit prime, [0x100000001b3]. *)

val byte : int64 -> char -> int64
(** Fold one byte: [(h xor c) * prime]. *)

val string : int64 -> string -> int64
(** Fold every byte of a string into the running hash. *)

val int : int64 -> int -> int64
(** Fold a native int in one step (the fault model's seed/input
    folding; not byte-by-byte). *)

val hash_string : string -> int64
(** [string offset_basis s]. *)

val to_hex : int64 -> string
(** 16-digit lowercase hex, zero-padded. *)
