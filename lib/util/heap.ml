type 'a t = { mutable data : (int * 'a) array; mutable size : int }

let create () = { data = [||]; size = 0 }

let with_capacity ~dummy n =
  { data = (if n <= 0 then [||] else Array.make n (0, dummy)); size = 0 }

let clear h = h.size <- 0

let is_empty h = h.size = 0

let size h = h.size

(* [seed] fills fresh capacity so the array stays fully initialized. *)
let ensure_capacity h seed =
  if h.size = Array.length h.data then begin
    let capacity = max 16 (2 * Array.length h.data) in
    let bigger = Array.make capacity seed in
    Array.blit h.data 0 bigger 0 h.size;
    h.data <- bigger
  end

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst h.data.(i) < fst h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && fst h.data.(left) < fst h.data.(!smallest) then smallest := left;
  if right < h.size && fst h.data.(right) < fst h.data.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h priority payload =
  ensure_capacity h (priority, payload);
  h.data.(h.size) <- (priority, payload);
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end
