let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let byte h c = Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) prime

let string h s =
  let h = ref h in
  String.iter (fun c -> h := byte !h c) s;
  !h

let int h i = Int64.mul (Int64.logxor h (Int64.of_int i)) prime

let hash_string s = string offset_basis s

let to_hex h = Printf.sprintf "%016Lx" h
