let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

let number f =
  match Float.classify_float f with
  | Float.FP_infinite -> if f > 0.0 then "\"inf\"" else "\"-inf\""
  | Float.FP_nan -> "\"nan\""
  | _ ->
    let s = Printf.sprintf "%.6g" f in
    (* "%.6g" can produce "1e+06", valid JSON; bare "." forms are not
       emitted by %g, so the string is always a JSON number *)
    s

(* ------------------------------------------------------------------ *)
(* decoding                                                            *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

type error = { at : int; reason : string }

let error_to_string e = Printf.sprintf "%s at byte %d" e.reason e.at

exception Fail of error

let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse (s : string) : (value, error) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail reason = raise (Fail { at = !pos; reason }) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_lit lit v =
    let len = String.length lit in
    if !pos + len <= n && String.sub s !pos len = lit then begin
      pos := !pos + len;
      v
    end
    else fail ("expected " ^ lit)
  in
  let hex_digit = function
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | _ -> fail "non-hex digit in \\u escape"
  in
  (* the four hex digits after a [\u]; leaves [pos] past them *)
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let code = ref 0 in
    for _ = 1 to 4 do
      code := (!code lsl 4) lor hex_digit s.[!pos];
      advance ()
    done;
    !code
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
        advance ();
        Buffer.contents b
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'u' ->
          advance ();
          let code = parse_hex4 () in
          if code >= 0xD800 && code <= 0xDBFF then begin
            (* high surrogate: a low surrogate must follow *)
            if
              not
                (!pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
            then fail "lone high surrogate";
            pos := !pos + 2;
            let low = parse_hex4 () in
            if low < 0xDC00 || low > 0xDFFF then fail "invalid low surrogate";
            add_utf8 b
              (0x10000 + (((code - 0xD800) lsl 10) lor (low - 0xDC00)))
          end
          else if code >= 0xDC00 && code <= 0xDFFF then fail "lone low surrogate"
          else add_utf8 b code
        | Some '"' -> advance (); Buffer.add_char b '"'
        | Some '\\' -> advance (); Buffer.add_char b '\\'
        | Some '/' -> advance (); Buffer.add_char b '/'
        | Some 'b' -> advance (); Buffer.add_char b '\b'
        | Some 'f' -> advance (); Buffer.add_char b '\012'
        | Some 'n' -> advance (); Buffer.add_char b '\n'
        | Some 'r' -> advance (); Buffer.add_char b '\r'
        | Some 't' -> advance (); Buffer.add_char b '\t'
        | _ -> fail "invalid escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "raw control character in string"
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    let str = String.sub s start (!pos - start) in
    match float_of_string_opt str with
    | Some f -> Num f
    | None -> fail ("malformed number " ^ str)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some '"' -> Str (parse_string ())
    | Some 't' -> parse_lit "true" (Bool true)
    | Some 'f' -> parse_lit "false" (Bool false)
    | Some 'n' -> parse_lit "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "unexpected character"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else
      let rec members acc =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ((key, v) :: acc)
        | Some '}' ->
          advance ();
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail "expected ',' or '}' in object"
      in
      members []
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Arr []
    end
    else
      let rec elems acc =
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          elems (v :: acc)
        | Some ']' ->
          advance ();
          Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']' in array"
      in
      elems []
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail e -> Error e

let member key = function Obj l -> List.assoc_opt key l | _ -> None
let get_string = function Str s -> Some s | _ -> None
let get_number = function Num f -> Some f | _ -> None

let get_int = function
  | Num f
    when Float.is_integer f
         && f >= Int.to_float min_int
         && f <= Int.to_float max_int -> Some (int_of_float f)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_list = function Arr l -> Some l | _ -> None
let get_obj = function Obj l -> Some l | _ -> None
