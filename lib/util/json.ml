let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

let number f =
  match Float.classify_float f with
  | Float.FP_infinite -> if f > 0.0 then "\"inf\"" else "\"-inf\""
  | Float.FP_nan -> "\"nan\""
  | _ ->
    let s = Printf.sprintf "%.6g" f in
    (* "%.6g" can produce "1e+06", valid JSON; bare "." forms are not
       emitted by %g, so the string is always a JSON number *)
    s
