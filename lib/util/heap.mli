(** Minimal mutable binary min-heap keyed by integer priority.

    The mapper's router uses an inlined parallel-int-array copy of this
    heap's sift discipline (strict [<] on priority, left child first);
    the property tests here pin that discipline, so keep the two in
    sync. *)

type 'a t

val create : unit -> 'a t

val with_capacity : dummy:'a -> int -> 'a t
(** Empty heap with backing storage for [n] entries preallocated (it
    still grows past [n] on demand).  [dummy] fills the unused cells —
    combined with {!clear}, this lets a hot loop reuse one heap with no
    steady-state array growth. *)

val clear : 'a t -> unit
(** Forget every entry in O(1).  The backing array is kept (and keeps
    its cells reachable until overwritten — use payloads that don't
    pin memory, e.g. ints, where that matters). *)

val push : 'a t -> int -> 'a -> unit
(** [push h priority payload]. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-priority entry. *)

val is_empty : 'a t -> bool

val size : 'a t -> int
