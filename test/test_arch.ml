(* Tests for Iced_arch: DVFS levels and CGRA geometry. *)

open Iced_arch

(* ---------------- Dvfs ---------------- *)

let test_dvfs_multipliers () =
  Alcotest.(check int) "normal" 1 (Dvfs.multiplier Dvfs.Normal);
  Alcotest.(check int) "relax" 2 (Dvfs.multiplier Dvfs.Relax);
  Alcotest.(check int) "rest" 4 (Dvfs.multiplier Dvfs.Rest);
  Alcotest.check_raises "gated"
    (Invalid_argument "Dvfs.multiplier: power-gated island has no clock") (fun () ->
      ignore (Dvfs.multiplier Dvfs.Power_gated))

let test_dvfs_frequency_relationship () =
  (* Eq. 1: f_normal = 2 f_relax = 4 f_rest *)
  Alcotest.(check (float 1e-9)) "2x relax" (Dvfs.frequency_mhz Dvfs.Normal)
    (2.0 *. Dvfs.frequency_mhz Dvfs.Relax);
  Alcotest.(check (float 1e-9)) "4x rest" (Dvfs.frequency_mhz Dvfs.Normal)
    (4.0 *. Dvfs.frequency_mhz Dvfs.Rest)

let test_dvfs_voltages () =
  Alcotest.(check (float 1e-9)) "normal V" 0.70 (Dvfs.voltage Dvfs.Normal);
  Alcotest.(check (float 1e-9)) "relax V" 0.50 (Dvfs.voltage Dvfs.Relax);
  Alcotest.(check (float 1e-9)) "rest V" 0.42 (Dvfs.voltage Dvfs.Rest)

let test_dvfs_fractions () =
  Alcotest.(check (float 1e-9)) "gated" 0.0 (Dvfs.fraction Dvfs.Power_gated);
  Alcotest.(check (float 1e-9)) "rest" 0.25 (Dvfs.fraction Dvfs.Rest);
  Alcotest.(check (float 1e-9)) "relax" 0.5 (Dvfs.fraction Dvfs.Relax);
  Alcotest.(check (float 1e-9)) "normal" 1.0 (Dvfs.fraction Dvfs.Normal)

let test_dvfs_steps () =
  Alcotest.(check bool) "up saturates" true (Dvfs.step_up Dvfs.Normal = Dvfs.Normal);
  Alcotest.(check bool) "gated wakes" true (Dvfs.step_up Dvfs.Power_gated = Dvfs.Rest);
  Alcotest.(check bool) "down floors at rest" true (Dvfs.step_down Dvfs.Rest = Dvfs.Rest);
  Alcotest.(check bool) "down with floor relax" true
    (Dvfs.step_down ~floor:Dvfs.Relax Dvfs.Relax = Dvfs.Relax);
  Alcotest.(check bool) "normal steps to relax" true (Dvfs.step_down Dvfs.Normal = Dvfs.Relax)

let test_dvfs_ordering () =
  Alcotest.(check bool) "normal fastest" true (Dvfs.faster Dvfs.Normal Dvfs.Relax);
  Alcotest.(check bool) "at_most reflexive" true (Dvfs.at_most Dvfs.Rest Dvfs.Rest);
  Alcotest.(check bool) "rest at_most normal" true (Dvfs.at_most Dvfs.Rest Dvfs.Normal);
  Alcotest.(check bool) "ordered list" true
    (List.sort Dvfs.compare [ Dvfs.Normal; Dvfs.Power_gated; Dvfs.Relax; Dvfs.Rest ]
    = [ Dvfs.Power_gated; Dvfs.Rest; Dvfs.Relax; Dvfs.Normal ])

let test_dvfs_of_multiplier () =
  List.iter
    (fun level ->
      Alcotest.(check bool)
        (Dvfs.to_string level) true
        (Dvfs.of_multiplier (Dvfs.multiplier level) = Some level))
    Dvfs.active;
  Alcotest.(check bool) "3 invalid" true (Dvfs.of_multiplier 3 = None)

let prop_of_multiplier_roundtrip =
  QCheck.Test.make ~name:"of_multiplier inverts multiplier" ~count:200
    QCheck.(int_range (-8) 16)
    (fun n ->
      match Dvfs.of_multiplier n with
      | Some level -> Dvfs.multiplier level = n
      | None -> not (List.mem n [ 1; 2; 4 ]))

let test_dvfs_step_down_never_gates () =
  (* even with the floor opened all the way to Power_gated, stepping
     an active island down saturates at Rest: gating is an explicit
     allocation decision, never a DVFS step *)
  List.iter
    (fun level ->
      Alcotest.(check bool)
        (Dvfs.to_string level ^ " stays active")
        true
        (Dvfs.is_active (Dvfs.step_down ~floor:Dvfs.Power_gated level)))
    Dvfs.active;
  Alcotest.(check bool) "gated stays gated" true
    (Dvfs.step_down ~floor:Dvfs.Power_gated Dvfs.Power_gated = Dvfs.Power_gated)

(* ---------------- Cgra ---------------- *)

let cgra = Cgra.iced_6x6

let test_cgra_prototype () =
  Alcotest.(check int) "36 tiles" 36 (Cgra.tile_count cgra);
  Alcotest.(check int) "9 islands" 9 (Cgra.island_count cgra);
  Alcotest.(check int) "8 banks" 8 cgra.Cgra.spm_banks;
  Alcotest.(check int) "32 KB" 32 cgra.Cgra.spm_kbytes

let test_cgra_invalid () =
  Alcotest.check_raises "zero rows" (Invalid_argument "Cgra.make: non-positive fabric size")
    (fun () -> ignore (Cgra.make ~rows:0 ~cols:4 ()));
  Alcotest.check_raises "island too big"
    (Invalid_argument "Cgra.make: island larger than fabric") (fun () ->
      ignore (Cgra.make ~island:(5, 5) ~rows:4 ~cols:4 ()))

let test_cgra_position_roundtrip () =
  List.iter
    (fun id ->
      let row, col = Cgra.position cgra id in
      Alcotest.(check int) "roundtrip" id (Cgra.tile_id cgra ~row ~col))
    (List.init (Cgra.tile_count cgra) (fun i -> i))

let test_cgra_neighbors_symmetric () =
  List.iter
    (fun id ->
      List.iter
        (fun (dir, n) ->
          match Cgra.neighbor cgra n (Dir.opposite dir) with
          | Some back when back = id -> ()
          | _ -> Alcotest.failf "asymmetric neighbor %d -> %d" id n)
        (Cgra.neighbors cgra id))
    (List.init (Cgra.tile_count cgra) (fun i -> i))

let test_cgra_corner_neighbors () =
  Alcotest.(check int) "corner has 2" 2 (List.length (Cgra.neighbors cgra 0));
  let center = Cgra.tile_id cgra ~row:2 ~col:2 in
  Alcotest.(check int) "center has 4" 4 (List.length (Cgra.neighbors cgra center))

let test_cgra_memory_column () =
  List.iter
    (fun id ->
      let _, col = Cgra.position cgra id in
      Alcotest.(check bool) "col 0 iff memory" (col = 0) (Cgra.has_memory_port cgra id))
    (List.init (Cgra.tile_count cgra) (fun i -> i));
  Alcotest.(check int) "6 memory tiles" 6 (List.length (Cgra.memory_tiles cgra))

let test_cgra_islands_partition () =
  (* every tile belongs to exactly one island and unions cover all *)
  let all =
    List.concat_map (fun island -> Cgra.island_tiles cgra island) (Cgra.islands cgra)
  in
  Alcotest.(check int) "cover" (Cgra.tile_count cgra) (List.length all);
  Alcotest.(check int) "no overlap" (Cgra.tile_count cgra)
    (List.length (List.sort_uniq compare all));
  List.iter
    (fun id ->
      Alcotest.(check bool) "consistent" true
        (List.mem id (Cgra.island_tiles cgra (Cgra.island_of cgra id))))
    (List.init (Cgra.tile_count cgra) (fun i -> i))

let test_cgra_island_sizes () =
  List.iter
    (fun island ->
      Alcotest.(check int) "2x2 islands" 4 (List.length (Cgra.island_tiles cgra island)))
    (Cgra.islands cgra)

let test_cgra_irregular_islands () =
  (* 3x3 islands on 8x8: edge islands are smaller *)
  let c = Cgra.make ~island:(3, 3) ~rows:8 ~cols:8 () in
  Alcotest.(check int) "9 islands" 9 (Cgra.island_count c);
  let sizes = List.map (fun i -> List.length (Cgra.island_tiles c i)) (Cgra.islands c) in
  Alcotest.(check int) "total covers" 64 (List.fold_left ( + ) 0 sizes);
  Alcotest.(check bool) "has a 9-tile island" true (List.mem 9 sizes);
  Alcotest.(check bool) "has a 4-tile corner island" true (List.mem 4 sizes)

let test_cgra_per_tile () =
  let pt = Cgra.per_tile cgra in
  Alcotest.(check int) "one island per tile" (Cgra.tile_count cgra) (Cgra.island_count pt)

let test_cgra_manhattan () =
  Alcotest.(check int) "self" 0 (Cgra.manhattan cgra 0 0);
  let a = Cgra.tile_id cgra ~row:0 ~col:0 and b = Cgra.tile_id cgra ~row:3 ~col:4 in
  Alcotest.(check int) "distance" 7 (Cgra.manhattan cgra a b);
  Alcotest.(check int) "symmetric" (Cgra.manhattan cgra a b) (Cgra.manhattan cgra b a)

let test_cgra_restrict () =
  let tiles = Cgra.restrict cgra ~islands:[ 0; 1 ] in
  Alcotest.(check int) "two islands" 8 (List.length tiles);
  List.iter
    (fun id ->
      Alcotest.(check bool) "in requested islands" true
        (List.mem (Cgra.island_of cgra id) [ 0; 1 ]))
    tiles

let prop_island_of_in_range =
  QCheck.Test.make ~name:"island_of within island_count" ~count:200
    QCheck.(pair (2 -- 9) (2 -- 9))
    (fun (rows, cols) ->
      let c = Cgra.make ~island:(2, 2) ~rows ~cols () in
      List.for_all
        (fun id ->
          let island = Cgra.island_of c id in
          island >= 0 && island < Cgra.island_count c)
        (List.init (Cgra.tile_count c) (fun i -> i)))

let suite =
  [
    ("dvfs multipliers", `Quick, test_dvfs_multipliers);
    ("dvfs frequency relationship (Eq. 1)", `Quick, test_dvfs_frequency_relationship);
    ("dvfs voltages", `Quick, test_dvfs_voltages);
    ("dvfs fractions", `Quick, test_dvfs_fractions);
    ("dvfs step up/down", `Quick, test_dvfs_steps);
    ("dvfs ordering", `Quick, test_dvfs_ordering);
    ("dvfs of_multiplier", `Quick, test_dvfs_of_multiplier);
    QCheck_alcotest.to_alcotest prop_of_multiplier_roundtrip;
    ("dvfs step_down never gates", `Quick, test_dvfs_step_down_never_gates);
    ("cgra 6x6 prototype", `Quick, test_cgra_prototype);
    ("cgra invalid configs", `Quick, test_cgra_invalid);
    ("cgra position roundtrip", `Quick, test_cgra_position_roundtrip);
    ("cgra neighbors symmetric", `Quick, test_cgra_neighbors_symmetric);
    ("cgra corner/center degree", `Quick, test_cgra_corner_neighbors);
    ("cgra memory column", `Quick, test_cgra_memory_column);
    ("cgra islands partition tiles", `Quick, test_cgra_islands_partition);
    ("cgra island sizes", `Quick, test_cgra_island_sizes);
    ("cgra irregular 3x3 islands", `Quick, test_cgra_irregular_islands);
    ("cgra per-tile variant", `Quick, test_cgra_per_tile);
    ("cgra manhattan", `Quick, test_cgra_manhattan);
    ("cgra restrict", `Quick, test_cgra_restrict);
    QCheck_alcotest.to_alcotest prop_island_of_in_range;
  ]
