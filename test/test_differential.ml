(* Differential regression for the layered mapping engine.

   test/golden/mapper_golden.txt holds one fingerprint line per corpus
   case (see Iced_testgen.Diff_gen), captured BEFORE the mapper was
   split into Cost/Estimate/Search/Telemetry and the router gained its
   flat scratch arena.  Re-mapping the same corpus must reproduce every
   line byte for byte: the refactor is contractually behaviour
   preserving.  A mismatch here means the engine's placement or routing
   decisions drifted — regenerate the golden file (gen_golden.exe) only
   when such a change is intended and reviewed. *)

let golden_path = "golden/mapper_golden.txt"

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let case_name line = match String.index_opt line '\t' with
  | Some i -> String.sub line 0 i
  | None -> line

let test_corpus_unchanged () =
  let expected = read_lines golden_path in
  let actual = Iced_testgen.Diff_gen.golden_lines () in
  Alcotest.(check int) "corpus size matches golden file" (List.length expected)
    (List.length actual);
  List.iter2
    (fun e a ->
      if not (String.equal e a) then
        Alcotest.failf "mapping drifted for %s\n  golden: %s\n  now:    %s"
          (case_name e) e a)
    expected actual

let test_corpus_has_no_failures () =
  (* The corpus is meant to exercise successful mappings; a FAIL line in
     the golden file would make the differential test vacuous for that
     case. *)
  List.iter
    (fun line ->
      match String.index_opt line '\t' with
      | Some i when String.length line > i + 5 && String.sub line (i + 1) 5 = "FAIL:" ->
        Alcotest.failf "golden corpus case %s did not map" (case_name line)
      | _ -> ())
    (read_lines golden_path)

let test_stats_populated () =
  (* The same engine entry point used by the corpus also feeds the
     telemetry sink: mapping any kernel must record at least one
     attempt, placement, and route. *)
  match Iced_kernels.Registry.by_name "fir" with
  | None -> Alcotest.fail "fir kernel missing from registry"
  | Some k ->
    let stats = Iced_mapper.Mapper.create_stats () in
    let req =
      Iced_mapper.Mapper.request ~strategy:Iced_mapper.Mapper.Dvfs_aware
        Iced_arch.Cgra.iced_6x6
    in
    (match Iced_mapper.Mapper.map ~stats req k.Iced_kernels.Kernel.dfg with
    | Error msg -> Alcotest.failf "fir failed to map: %s" msg
    | Ok _ ->
      Alcotest.(check bool) "attempts > 0" true (stats.attempts > 0);
      Alcotest.(check bool) "placements > 0" true (stats.placements_tried > 0);
      Alcotest.(check bool) "routes > 0" true (stats.route_calls > 0);
      Alcotest.(check bool) "expansions > 0" true (stats.expansions > 0);
      Alcotest.(check bool) "per-II timing recorded" true
        (Iced_mapper.Mapper.per_ii_times stats <> []);
      Alcotest.(check bool) "wall time recorded" true (stats.wall_s >= 0.0))

let certified_path = "golden/certified_ii.txt"

let test_certified_ii_fixture () =
  (* test/golden/certified_ii.txt pins the SAT oracle's certified
     minimal II per standalone kernel next to the default backend's
     heuristic II.  Re-certifying must reproduce every Optimal verdict,
     and the heuristic must still land on its recorded II — a drift on
     either side is a real change to mapping quality or to the
     encoding's semantics, not noise. *)
  let module Exact = Iced_mapper.Exact in
  let rows =
    List.filter_map
      (fun line ->
        if line = "" || line.[0] = '#' then None
        else
          match String.split_on_char '\t' line with
          | [ name; opt; dflt ] ->
            Some (name, int_of_string opt, int_of_string dflt)
          | _ -> Alcotest.failf "malformed certified_ii line: %s" line)
      (read_lines certified_path)
  in
  Alcotest.(check bool) "fixture is not empty" true (rows <> []);
  List.iter
    (fun (name, opt, dflt) ->
      match Iced_kernels.Registry.by_name name with
      | None -> Alcotest.failf "fixture kernel %s missing from registry" name
      | Some k ->
        (match Exact.certify Iced_arch.Cgra.iced_6x6 k.Iced_kernels.Kernel.dfg with
        | { Exact.verdict = Exact.Optimal ii; _ } ->
          Alcotest.(check int) (name ^ ": certified optimal II") opt ii
        | _ -> Alcotest.failf "%s: oracle no longer certifies an optimum" name);
        let req =
          Iced_mapper.Mapper.request ~strategy:Iced_mapper.Mapper.Dvfs_aware
            Iced_arch.Cgra.iced_6x6
        in
        (match Iced_mapper.Mapper.map req k.Iced_kernels.Kernel.dfg with
        | Error msg -> Alcotest.failf "%s failed to map: %s" name msg
        | Ok m ->
          Alcotest.(check int) (name ^ ": default backend II") dflt
            m.Iced_mapper.Mapping.ii))
    rows

let suite =
  [
    ("golden corpus has no FAIL cases", `Quick, test_corpus_has_no_failures);
    ("mappings unchanged vs pre-refactor golden", `Slow, test_corpus_unchanged);
    ("telemetry populated by Mapper.map", `Quick, test_stats_populated);
    ("certified minimal IIs match the fixture", `Slow, test_certified_ii_fixture);
  ]
