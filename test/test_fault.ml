(* Tests for the fault subsystem: the seeded fault model, fault-aware
   mapping (dead tiles / dead links / guard bands), resilient streaming
   execution, and campaign determinism. *)

open Iced_arch
module F = Iced_fault.Fault
module Campaign = Iced_campaign.Campaign
module P = Iced_stream.Pipeline
module Part = Iced_stream.Partition
module R = Iced_stream.Runner
module W = Iced_stream.Workload
module Mapper = Iced_mapper.Mapper
module Mapping = Iced_mapper.Mapping

let cgra = Cgra.iced_6x6

(* ---------------- the fault model ---------------- *)

let test_plan_sorted_and_validated () =
  let plan =
    F.make [ { F.at_input = 9; fault = F.Tile_dead 1 };
             { F.at_input = 2; fault = F.Island_down 0 } ]
  in
  Alcotest.(check (list int)) "sorted by input" [ 2; 9 ]
    (List.map (fun e -> e.F.at_input) plan.F.events);
  Alcotest.(check bool) "negative index rejected" true
    (try
       ignore (F.make [ { F.at_input = -1; fault = F.Tile_dead 0 } ]);
       false
     with Invalid_argument _ -> true)

let test_events_at () =
  let plan =
    F.make
      [ { F.at_input = 5; fault = F.Tile_dead 1 };
        { F.at_input = 5; fault = F.Island_down 2 };
        { F.at_input = 7; fault = F.Tile_dead 3 } ]
  in
  Alcotest.(check int) "two at 5" 2 (List.length (F.events_at plan 5));
  Alcotest.(check int) "none at 6" 0 (List.length (F.events_at plan 6));
  Alcotest.(check bool) "empty plan is empty" true (F.is_empty F.none)

let test_random_plan_deterministic () =
  let mk seed =
    F.random_plan ~seed ~cgra ~inputs:100
      ~kinds:[ F.Tile; F.Link; F.Island; F.Upset ] ~count:8 ()
  in
  Alcotest.(check bool) "same seed, same plan" true (mk 5 = mk 5);
  Alcotest.(check bool) "different seeds differ" true (mk 5 <> mk 6);
  List.iter
    (fun e ->
      if e.F.at_input < 1 || e.F.at_input > 99 then
        Alcotest.failf "event outside the stream: input %d" e.F.at_input;
      let island = F.island_of cgra e.F.fault in
      if island < 0 || island >= Cgra.island_count cgra then
        Alcotest.failf "fault outside the fabric: island %d" island)
    (mk 5).F.events

let test_fault_classes () =
  Alcotest.(check bool) "tile permanent" true (F.permanent (F.Tile_dead 0));
  Alcotest.(check bool) "island permanent" true (F.permanent (F.Island_down 0));
  Alcotest.(check bool) "upsets transient" false
    (F.permanent (F.Upsets { island = 0; rate = 0.1 }));
  List.iter
    (fun cls ->
      Alcotest.(check bool)
        (F.class_to_string cls) true
        (F.class_of_string (F.class_to_string cls) = Some cls))
    [ F.Tile; F.Link; F.Island; F.Upset ]

let test_upset_rate_tracks_level () =
  let rate = 1e-3 in
  Alcotest.(check (float 1e-12)) "full at rest" rate (F.upset_rate ~rate Dvfs.Rest);
  Alcotest.(check (float 1e-12)) "16x margin at relax" (rate /. 16.0)
    (F.upset_rate ~rate Dvfs.Relax);
  Alcotest.(check (float 1e-12)) "clean at normal" 0.0 (F.upset_rate ~rate Dvfs.Normal);
  Alcotest.(check (float 1e-12)) "gated island cannot upset" 0.0
    (F.upset_rate ~rate Dvfs.Power_gated)

let test_upset_probability_bounds () =
  Alcotest.(check (float 1e-12)) "zero rate" 0.0
    (F.upset_probability ~rate:0.0 ~cycles:1000);
  Alcotest.(check (float 1e-12)) "zero cycles" 0.0
    (F.upset_probability ~rate:0.5 ~cycles:0);
  let p = F.upset_probability ~rate:1e-3 ~cycles:500 in
  Alcotest.(check bool) "in (0, 1)" true (p > 0.0 && p < 1.0);
  Alcotest.(check bool) "more cycles, more risk" true
    (F.upset_probability ~rate:1e-3 ~cycles:1000 > p)

let test_upset_draw_pure () =
  let d = F.upset_draw ~seed:3 ~input:17 ~salt:"solver0" in
  Alcotest.(check bool) "in [0, 1)" true (d >= 0.0 && d < 1.0);
  Alcotest.(check (float 0.0)) "pure function" d
    (F.upset_draw ~seed:3 ~input:17 ~salt:"solver0");
  Alcotest.(check bool) "salt matters" true
    (d <> F.upset_draw ~seed:3 ~input:17 ~salt:"solver1");
  Alcotest.(check bool) "input matters" true
    (d <> F.upset_draw ~seed:3 ~input:18 ~salt:"solver0")

(* ---------------- fault-aware mapping ---------------- *)

let kernel () =
  match Iced_kernels.Registry.by_name "fir" with
  | Some k -> k
  | None -> Alcotest.fail "fir kernel missing"

let test_mapper_avoids_dead_tiles () =
  let k = kernel () in
  let dead = [ 0; 7 ] in
  match Mapper.map (Mapper.request ~dead_tiles:dead cgra) k.Iced_kernels.Kernel.dfg with
  | Error e -> Alcotest.failf "mapping failed around dead tiles: %s" e
  | Ok m ->
    List.iter
      (fun tile ->
        if List.mem tile dead then Alcotest.failf "placed on dead tile %d" tile)
      (Mapping.used_tiles m);
    List.iter
      (fun (r : Mapping.route) ->
        List.iter
          (fun (h : Mapping.hop) ->
            if List.mem h.Mapping.tile dead then
              Alcotest.failf "routed through dead tile %d" h.Mapping.tile)
          r.Mapping.hops)
      m.Mapping.routes

let test_mapper_avoids_dead_links () =
  let k = kernel () in
  (* kill every eastward port of the westmost column's neighbours *)
  let dead = [ (0, Dir.East); (1, Dir.South); (6, Dir.East) ] in
  match Mapper.map (Mapper.request ~dead_links:dead cgra) k.Iced_kernels.Kernel.dfg with
  | Error e -> Alcotest.failf "mapping failed around dead links: %s" e
  | Ok m ->
    List.iter
      (fun (r : Mapping.route) ->
        List.iter
          (fun (h : Mapping.hop) ->
            if List.mem (h.Mapping.tile, h.Mapping.dir) dead then
              Alcotest.failf "routed through dead link tile %d" h.Mapping.tile)
          r.Mapping.hops)
      m.Mapping.routes

let test_mapper_all_tiles_dead () =
  let k = kernel () in
  let all = List.init (Cgra.tile_count cgra) Fun.id in
  match Mapper.map (Mapper.request ~dead_tiles:all cgra) k.Iced_kernels.Kernel.dfg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mapped onto a fully-faulted fabric"

let test_label_guard_raises_floor () =
  let k = kernel () in
  let tiles = List.init (Cgra.tile_count cgra) Fun.id in
  let lowest labels =
    List.fold_left
      (fun acc (_, l) -> if Dvfs.faster acc l then l else acc)
      Dvfs.Normal labels
  in
  let base =
    Iced_mapper.Labeling.label k.Iced_kernels.Kernel.dfg ~cgra ~tiles ~ii:8
  in
  let guarded =
    Iced_mapper.Labeling.label ~guard:1 k.Iced_kernels.Kernel.dfg ~cgra ~tiles ~ii:8
  in
  Alcotest.(check bool) "guard raises the lowest label" true
    (Dvfs.faster (lowest guarded) (lowest base)
    || (lowest base = Dvfs.Normal && lowest guarded = Dvfs.Normal));
  let pinned =
    Iced_mapper.Labeling.label ~guard:3 k.Iced_kernels.Kernel.dfg ~cgra ~tiles ~ii:8
  in
  List.iter
    (fun (n, l) ->
      if l <> Dvfs.Normal then Alcotest.failf "node %d below Normal under guard 3" n)
    pinned

(* ---------------- resilient execution ---------------- *)

let lu_prepared =
  lazy
    (let inputs = List.map P.of_lu_matrix (W.ufl_matrices ~seed:7 ()) in
     let profile = List.filteri (fun i _ -> i mod 3 = 0) inputs in
     match Part.prepare cgra (P.lu ()) ~profile with
     | Ok p -> (p, inputs)
     | Error e -> failwith e)

let test_no_fault_plan_is_identity () =
  let p, inputs = Lazy.force lu_prepared in
  let short = List.filteri (fun i _ -> i < 60) inputs in
  List.iter
    (fun policy ->
      let plain = R.run p policy short in
      let resilient, stats =
        R.run_resilient ~faults:F.none ~recovery:R.Remap p policy short
      in
      Alcotest.(check bool)
        (R.policy_to_string policy ^ ": reports identical")
        true (plain = resilient);
      Alcotest.(check int) "nothing injected" 0 stats.R.injected;
      Alcotest.(check int) "all inputs completed" (List.length short) stats.R.completed)
    [ R.Static; R.Iced_dvfs; R.Drips ]

let retention ~baseline (stats : R.fault_stats) (totals : R.totals) =
  float_of_int stats.R.completed
  /. float_of_int stats.R.offered
  *. Float.min 1.0
       (totals.R.overall_throughput_per_s /. baseline.R.overall_throughput_per_s)

let test_single_tile_fault_recovery () =
  let p, inputs = Lazy.force lu_prepared in
  let baseline = R.aggregate (R.run p R.Iced_dvfs inputs) in
  let plan = F.make ~seed:1 [ { F.at_input = 50; fault = F.Tile_dead 0 } ] in
  let outcome recovery =
    let reports, stats = R.run_resilient ~faults:plan ~recovery p R.Iced_dvfs inputs in
    (stats, retention ~baseline stats (R.aggregate reports))
  in
  let remap_stats, remap_ret = outcome R.Remap in
  Alcotest.(check int) "remap completes the stream" remap_stats.R.offered
    remap_stats.R.completed;
  Alcotest.(check bool) "remap keeps >= 50% throughput" true (remap_ret >= 0.5);
  let gate_stats, gate_ret = outcome R.Gate_island in
  Alcotest.(check int) "gate completes the stream" gate_stats.R.offered
    gate_stats.R.completed;
  Alcotest.(check bool) "gate keeps >= 50% throughput" true (gate_ret >= 0.5);
  Alcotest.(check bool) "gate powered an island off" true
    (gate_stats.R.islands_gated >= 1);
  let fs_stats, fs_ret = outcome R.Fail_stop in
  Alcotest.(check bool) "fail-stop loses the tail" true
    (fs_stats.R.completed < fs_stats.R.offered);
  Alcotest.(check int) "fail-stop reports the loss"
    (fs_stats.R.offered - fs_stats.R.completed)
    fs_stats.R.inputs_dropped;
  Alcotest.(check bool) "fail-stop retention below remap" true (fs_ret < remap_ret)

let test_upsets_recovered_by_raise () =
  let p, inputs = Lazy.force lu_prepared in
  (* strike an island whose kernel the runtime lowers to Rest *)
  let island =
    let rec first = function
      | [] -> 0
      | (label, floor) :: rest ->
        if floor = Dvfs.Rest then List.hd (List.assoc label p.Part.island_ids)
        else first rest
    in
    first p.Part.level_floors
  in
  let plan =
    F.make ~seed:2 [ { F.at_input = 30; fault = F.Upsets { island; rate = 5e-3 } } ]
  in
  let _, raise_stats =
    R.run_resilient ~faults:plan ~recovery:R.Raise_level p R.Iced_dvfs inputs
  in
  Alcotest.(check int) "raise pins the kernel" 1 raise_stats.R.levels_raised;
  Alcotest.(check int) "raised run replays nothing" 0 raise_stats.R.inputs_replayed;
  Alcotest.(check int) "raised run completes" raise_stats.R.offered
    raise_stats.R.completed;
  let _, endure_stats =
    R.run_resilient ~faults:plan ~recovery:R.Remap p R.Iced_dvfs inputs
  in
  Alcotest.(check bool) "enduring the upsets costs replays" true
    (endure_stats.R.inputs_replayed > 0)

let test_drips_rejects_faults () =
  let p, inputs = Lazy.force lu_prepared in
  let plan = F.make [ { F.at_input = 1; fault = F.Tile_dead 0 } ] in
  Alcotest.(check bool) "drips has no fault model" true
    (try
       ignore (R.run_resilient ~faults:plan p R.Drips inputs);
       false
     with Invalid_argument _ -> true)

(* ---------------- campaign ---------------- *)

let small_spec workers =
  {
    Campaign.default_spec with
    Campaign.seeds = [ 0; 1 ];
    recoveries = [ R.Remap; R.Fail_stop ];
    inputs = 40;
    workers;
  }

let test_campaign_workers_deterministic () =
  let run workers =
    match Campaign.run (small_spec workers) with
    | Ok c -> (Campaign.csv c, Campaign.json c)
    | Error e -> Alcotest.failf "campaign failed: %s" e
  in
  let serial = run 1 and parallel = run 3 in
  Alcotest.(check string) "csv byte-identical across workers" (fst serial)
    (fst parallel);
  Alcotest.(check string) "json byte-identical across workers" (snd serial)
    (snd parallel)

let test_campaign_validates_spec () =
  let bad spec = match Campaign.run spec with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "drips rejected" true
    (bad { Campaign.default_spec with Campaign.policy = R.Drips });
  Alcotest.(check bool) "no seeds rejected" true
    (bad { Campaign.default_spec with Campaign.seeds = [] });
  Alcotest.(check bool) "no kinds rejected" true
    (bad { Campaign.default_spec with Campaign.kinds = [] })

let suite =
  [
    ("plan: sorted and validated", `Quick, test_plan_sorted_and_validated);
    ("plan: events_at", `Quick, test_events_at);
    ("plan: random plans deterministic", `Quick, test_random_plan_deterministic);
    ("model: fault classes", `Quick, test_fault_classes);
    ("model: upset rate tracks level", `Quick, test_upset_rate_tracks_level);
    ("model: upset probability bounds", `Quick, test_upset_probability_bounds);
    ("model: upset draw is pure", `Quick, test_upset_draw_pure);
    ("mapper: avoids dead tiles", `Slow, test_mapper_avoids_dead_tiles);
    ("mapper: avoids dead links", `Slow, test_mapper_avoids_dead_links);
    ("mapper: fully-faulted fabric fails", `Quick, test_mapper_all_tiles_dead);
    ("labeling: guard raises the floor", `Quick, test_label_guard_raises_floor);
    ("runner: empty plan is identity", `Slow, test_no_fault_plan_is_identity);
    ("runner: single tile fault recovery", `Slow, test_single_tile_fault_recovery);
    ("runner: raise clears upsets", `Slow, test_upsets_recovered_by_raise);
    ("runner: drips rejects faults", `Quick, test_drips_rejects_faults);
    ("campaign: workers deterministic", `Slow, test_campaign_workers_deterministic);
    ("campaign: spec validation", `Quick, test_campaign_validates_spec);
  ]
