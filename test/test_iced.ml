(* Aggregated alcotest entry point for the whole repository. *)

let () =
  Alcotest.run "iced"
    [
      ("util", Test_util.suite);
      ("dfg", Test_dfg.suite);
      ("arch", Test_arch.suite);
      ("mrrg", Test_mrrg.suite);
      ("sat", Test_sat.suite);
      ("mapper", Test_mapper.suite);
      ("backends", Test_backends.suite);
      ("differential", Test_differential.suite);
      ("power", Test_power.suite);
      ("kernels", Test_kernels.suite);
      ("sim", Test_sim.suite);
      ("stream", Test_stream.suite);
      ("fault", Test_fault.suite);
      ("design", Test_design.suite);
      ("explore", Test_explore.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
      ("tenancy", Test_tenancy.suite);
    ]
