(* Tests pinning every Table I statistic and checking kernel semantics
   against golden OCaml reference implementations. *)

open Iced_kernels

let all = Registry.all

let test_table1_uf1_exact () =
  List.iter
    (fun (k : Kernel.t) ->
      let n, e, r = Kernel.stats k.dfg in
      let p = k.table in
      Alcotest.(check (triple int int int))
        (k.name ^ " uf1 matches Table I")
        (p.nodes1, p.edges1, p.rec_mii1) (n, e, r))
    all

let test_table1_uf2_nodes_and_mii_exact () =
  List.iter
    (fun (k : Kernel.t) ->
      let n, _, r = Kernel.stats (Kernel.dfg_at k ~factor:2) in
      let p = k.table in
      Alcotest.(check (pair int int))
        (k.name ^ " uf2 nodes/RecMII match Table I")
        (p.nodes2, p.rec_mii2) (n, r))
    all

let test_table1_uf2_edges_close () =
  (* the generic unroller reproduces edge counts within a few edges of
     Table I (documented in EXPERIMENTS.md) *)
  List.iter
    (fun (k : Kernel.t) ->
      let _, e, _ = Kernel.stats (Kernel.dfg_at k ~factor:2) in
      let delta = abs (e - k.table.edges2) in
      if delta > 6 then
        Alcotest.failf "%s uf2 edges %d too far from paper %d" k.name e k.table.edges2)
    all

let test_all_graphs_validate () =
  List.iter
    (fun (k : Kernel.t) ->
      (match Iced_dfg.Graph.validate k.dfg with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s uf1: %s" k.name m);
      match Iced_dfg.Graph.validate (Kernel.dfg_at k ~factor:2) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s uf2: %s" k.name m)
    all

let test_registry () =
  Alcotest.(check int) "21 kernels" 21 (List.length all);
  Alcotest.(check int) "10 standalone" 10 (List.length Registry.standalone);
  Alcotest.(check int) "5 gcn" 5 (List.length Registry.gcn);
  Alcotest.(check int) "6 lu" 6 (List.length Registry.lu);
  Alcotest.(check bool) "lookup works" true (Registry.by_name "spmv" <> None);
  Alcotest.(check bool) "unknown none" true (Registry.by_name "nope" = None);
  Alcotest.(check int) "unique names" 21
    (List.length (List.sort_uniq compare (Registry.names ())))

let test_synth_registry () =
  (* rand<nodes>x<seed> names resolve through the registry without
     being enumerated in [names ()] *)
  match Registry.by_name "rand24x7" with
  | None -> Alcotest.fail "rand24x7 should resolve"
  | Some k ->
    Alcotest.(check string) "name echoes the request" "rand24x7" k.Kernel.name;
    (match Iced_dfg.Graph.validate k.Kernel.dfg with
    | Ok () -> ()
    | Error m -> Alcotest.failf "rand24x7: %s" m);
    let n, _, r = Kernel.stats k.Kernel.dfg in
    Alcotest.(check int) "node count honored" 24 n;
    Alcotest.(check bool) "cyclic (RecMII > 0)" true (r > 0);
    let k' = Option.get (Registry.by_name "rand24x7") in
    Alcotest.(check bool) "deterministic regeneration" true
      (Kernel.stats k.Kernel.dfg = Kernel.stats k'.Kernel.dfg);
    let k2 = Option.get (Registry.by_name "rand24x8") in
    Alcotest.(check bool) "seed varies the graph" true
      (Kernel.stats k.Kernel.dfg <> Kernel.stats k2.Kernel.dfg
      || Iced_dfg.Graph.node_ids k.Kernel.dfg <> Iced_dfg.Graph.node_ids k2.Kernel.dfg
      || k.Kernel.dfg <> k2.Kernel.dfg)

let test_synth_rejects_malformed () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " rejected") true (Registry.by_name name = None))
    [ "rand"; "randx"; "rand7x1"; "rand0x0"; "rand12"; "rand12x"; "randx12"; "rand12x-3";
      "rand 12x3"; "rand12x3x4" ]

let test_unroll_factor_guard () =
  let fir = Option.get (Registry.by_name "fir") in
  Alcotest.check_raises "factor 3"
    (Invalid_argument "Kernel.dfg_at: only unroll factors 1 and 2 are modeled") (fun () ->
      ignore (Kernel.dfg_at fir ~factor:3))

(* ---------------- Golden semantics ---------------- *)

let interpret (k : Kernel.t) n = Iced_sim.Sim.interpret ~binding:k.binding k.dfg ~iterations:n

(* fir: y[i] = (sum_{j<=i} x[j]*c[j], i) with x/c as in the binding *)
let test_fir_golden () =
  let k = Option.get (Registry.by_name "fir") in
  let n = 16 in
  let stores = interpret k n in
  let x i = (3 * i) + 1 and c i = (i mod 7) - 3 in
  let acc = ref 0 in
  List.iteri
    (fun i (ev : Iced_sim.Sim.store_event) ->
      acc := !acc + (x i * c i);
      Alcotest.(check string) "label" "y" ev.label;
      Alcotest.(check int) "iter" i ev.iter;
      Alcotest.(check (list int))
        (Printf.sprintf "fir store %d" i)
        [ !acc; (if i = 0 then 0 else i) ]
        ev.operands)
    stores;
  Alcotest.(check int) "one store per iteration" n (List.length stores)

(* latnrm: state' = state * k[i] + x[i] *)
let test_latnrm_golden () =
  let k = Option.get (Registry.by_name "latnrm") in
  let n = 12 in
  let stores = interpret k n in
  let x i = i + 1 and coeff i = if i mod 2 = 0 then 1 else -1 in
  let state = ref 0 in
  List.iteri
    (fun i (ev : Iced_sim.Sim.store_event) ->
      state := (!state * coeff i) + x i;
      Alcotest.(check int) "value" !state (List.hd ev.operands))
    stores

(* relu: y = max(x, 0), active-lane counter alongside *)
let test_relu_golden () =
  let k = Option.get (Registry.by_name "relu") in
  let n = 20 in
  let stores = interpret k n in
  let x i = ((i * 37) mod 41) - 20 in
  let count = ref 0 in
  List.iteri
    (fun i (ev : Iced_sim.Sim.store_event) ->
      let expected = max (x i) 0 in
      if x i > 0 then incr count;
      match ev.operands with
      | [ v; idx; cnt ] ->
        Alcotest.(check int) "max(x,0)" expected v;
        Alcotest.(check int) "index" (if i = 0 then 0 else i) idx;
        Alcotest.(check int) "active count" !count cnt
      | _ -> Alcotest.fail "relu store arity")
    stores

(* histogram: count[bin]++ with the binding's stateless count read *)
let test_histogram_golden () =
  let k = Option.get (Registry.by_name "histogram") in
  let n = 10 in
  let stores = interpret k n in
  let x i = (i * 131) mod 1021 in
  List.iteri
    (fun i (ev : Iced_sim.Sim.store_event) ->
      let bin = (x i lsr 4) land 63 in
      let expected = (bin mod 7) + 1 in
      Alcotest.(check int) "incremented count" expected (List.hd ev.operands))
    stores

(* mvt golden: two accumulators over a and x / y2 *)
let test_mvt_golden () =
  let k = Option.get (Registry.by_name "mvt") in
  let n = 8 in
  let stores = interpret k n in
  let a addr = ((addr * 19) mod 29) - 14 in
  let x i = (i mod 11) - 5 in
  let y2 addr = (addr mod 13) - 6 in
  let acc1 = ref 0 and acc2 = ref 0 in
  let ys = List.filter (fun (e : Iced_sim.Sim.store_event) -> e.label = "y") stores in
  let xts = List.filter (fun (e : Iced_sim.Sim.store_event) -> e.label = "xt") stores in
  List.iteri
    (fun i (ev : Iced_sim.Sim.store_event) ->
      acc1 := !acc1 + (a i * x i);
      Alcotest.(check int) "y accumulator" !acc1 (List.hd ev.operands))
    ys;
  List.iteri
    (fun i (ev : Iced_sim.Sim.store_event) ->
      acc2 := !acc2 + (a i * y2 (i + 128));
      Alcotest.(check int) "xt accumulator" !acc2 (List.hd ev.operands))
    xts;
  Alcotest.(check int) "both streams present" (2 * n) (List.length stores)

(* spmv: row-reset predicated accumulation *)
let test_spmv_golden () =
  let k = Option.get (Registry.by_name "spmv") in
  let n = 20 in
  let stores = interpret k n in
  let col i = (i * 13) mod 512 in
  let v i = (i mod 9) + 1 in
  let x addr = (addr mod 17) - 8 in
  let rowid i = i / 8 in
  (* faithful dataflow trace: prev = committed value of the previous
     iteration; s1 = select(is_new, 0, prev); add = s1 + prod;
     s2 = select(is_new, add) with an implicit-zero else *)
  let prev = ref 0 in
  List.iteri
    (fun i (ev : Iced_sim.Sim.store_event) ->
      let is_new = rowid i <> 0 in
      let s1 = if is_new then 0 else !prev in
      let add = s1 + (v i * x (col i)) in
      let s2 = if is_new then add else 0 in
      prev := s2;
      Alcotest.(check int) (Printf.sprintf "spmv commit %d" i) s2 (List.hd ev.operands))
    stores

(* conv: acc += img[i+32] * w[i] *)
let test_conv_golden () =
  let k = Option.get (Registry.by_name "conv") in
  let n = 12 in
  let stores = interpret k n in
  (* gep.img = (i + 32) + 4096; img addr reaches the binding *)
  let img addr = (addr mod 23) - 11 in
  let w i = (i mod 5) - 2 in
  let acc = ref 0 in
  List.iteri
    (fun i (ev : Iced_sim.Sim.store_event) ->
      acc := !acc + (img (i + 32 + 4096) * w i);
      Alcotest.(check int) (Printf.sprintf "conv acc %d" i) !acc (List.hd ev.operands))
    stores

(* gemm: serial predicated accumulator gated by the induction compare *)
let test_gemm_golden () =
  let k = Option.get (Registry.by_name "gemm") in
  let n = 10 in
  let stores = interpret k n in
  let a addr = ((addr * 7) mod 19) - 9 in
  let b addr = ((addr * 3) mod 23) - 11 in
  let prev = ref 0 in
  List.iteri
    (fun i (ev : Iced_sim.Sim.store_event) ->
      (* cmp = (i+1 < 128) = 1 for these iterations *)
      let idx = if i = 0 then 0 else i in
      let prod = a idx * b (idx * 128) in
      let committed = !prev + prod in
      prev := committed;
      Alcotest.(check int) (Printf.sprintf "gemm acc %d" i) committed (List.hd ev.operands))
    stores

(* determinism: interpret twice gives identical traces for every kernel *)
let test_all_kernels_deterministic () =
  List.iter
    (fun (k : Kernel.t) ->
      let a = interpret k 6 and b = interpret k 6 in
      if a <> b then Alcotest.failf "%s non-deterministic" k.name)
    all

let suite =
  [
    ("Table I uf1 exact (21 kernels)", `Quick, test_table1_uf1_exact);
    ("Table I uf2 nodes+RecMII exact", `Quick, test_table1_uf2_nodes_and_mii_exact);
    ("Table I uf2 edges within tolerance", `Quick, test_table1_uf2_edges_close);
    ("all kernel graphs validate", `Quick, test_all_graphs_validate);
    ("registry structure", `Quick, test_registry);
    ("synthetic kernels resolve", `Quick, test_synth_registry);
    ("synthetic kernel names validated", `Quick, test_synth_rejects_malformed);
    ("unroll factor guard", `Quick, test_unroll_factor_guard);
    ("fir golden semantics", `Quick, test_fir_golden);
    ("latnrm golden semantics", `Quick, test_latnrm_golden);
    ("relu golden semantics", `Quick, test_relu_golden);
    ("histogram golden semantics", `Quick, test_histogram_golden);
    ("mvt golden semantics", `Quick, test_mvt_golden);
    ("spmv golden semantics", `Quick, test_spmv_golden);
    ("conv golden semantics", `Quick, test_conv_golden);
    ("gemm golden semantics", `Quick, test_gemm_golden);
    ("all kernels deterministic", `Quick, test_all_kernels_deterministic);
  ]
