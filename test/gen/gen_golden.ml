(* Regenerate the mapper differential golden file:

     dune exec test/gen/gen_golden.exe > test/golden/mapper_golden.txt

   Only do this when a mapping-behaviour change is intended; the
   differential suite exists to prove refactors preserve results. *)

let () = List.iter print_endline (Iced_testgen.Diff_gen.golden_lines ())
