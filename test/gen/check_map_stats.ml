(* CLI-level check for `iced map --stats --json`: the captured stdout
   must contain one mapper-stats JSON line with the expected fields and
   non-zero attempt/expansion counters.  Exits non-zero (failing the
   dune rule) otherwise. *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let field_value json name =
  (* flat integer field: "name":123 *)
  let key = Printf.sprintf "\"%s\":" name in
  let nh = String.length json and nn = String.length key in
  let rec find i = if i + nn > nh then None else if String.sub json i nn = key then Some (i + nn) else find (i + 1) in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < nh
      && (match json.[!stop] with '0' .. '9' | '-' | '.' | 'e' | 'E' | '+' -> true | _ -> false)
    do
      incr stop
    done;
    float_of_string_opt (String.sub json start (!stop - start))

let () =
  let path = Sys.argv.(1) in
  let out = read_file path in
  let stats_line =
    List.find_opt
      (fun line -> contains ~needle:"\"mapper_stats\"" line)
      (String.split_on_char '\n' out)
  in
  match stats_line with
  | None ->
    prerr_endline "check_map_stats: no mapper_stats JSON line in CLI output";
    exit 1
  | Some line ->
    let require_positive name =
      match field_value line name with
      | Some v when v > 0.0 -> ()
      | Some v ->
        Printf.eprintf "check_map_stats: field %s not positive (%g)\n" name v;
        exit 1
      | None ->
        Printf.eprintf "check_map_stats: field %s missing\n" name;
        exit 1
    in
    let require_present name =
      if not (contains ~needle:(Printf.sprintf "\"%s\":" name) line) then begin
        Printf.eprintf "check_map_stats: field %s missing\n" name;
        exit 1
      end
    in
    require_positive "attempts";
    require_positive "placements_tried";
    require_positive "expansions";
    require_present "route_calls";
    require_present "route_failures";
    require_present "ii_bumps";
    require_present "margin_position";
    require_present "wall_s";
    print_endline "check_map_stats: ok"
