(* Shared corpus for the mapper differential tests: a deterministic set
   of (request, DFG) cases — every registry kernel plus seeded random
   DFGs on 4x4 and 6x6 fabrics — and a textual fingerprint of a mapping
   (II, placements, routes).

   The golden file under test/golden/ was generated from this module
   BEFORE the mapping engine was refactored into layers; the
   differential suite re-maps the same corpus with the current engine
   and asserts every fingerprint is unchanged.  Keep this module in
   sync with the golden file: regenerating it (gen_golden.exe) is only
   legitimate when a behaviour change is intended and reviewed. *)

open Iced_arch
open Iced_dfg
module Mapper = Iced_mapper.Mapper
module Mapping = Iced_mapper.Mapping
module Builders = Iced_kernels.Builders

(* ------------------------------------------------------------------ *)
(* random DFGs *)

(* Layered random kernels: an induction variable (giving every graph a
   recurrence), a body of binary ops / loads / accumulators drawing
   operands from already-created nodes (so the distance-0 subgraph is
   acyclic by construction), and a store sink.  Everything is driven by
   the seeded splittable RNG, so a seed pins the graph exactly. *)
let random_dfg ~seed =
  let rng = Iced_util.Rng.create (0x5eed0000 + seed) in
  let g, ind = Builders.induction ~bound:(64 + Iced_util.Rng.int rng 64) Graph.empty in
  let pool = ref [ ind.Builders.phi; ind.Builders.next; ind.Builders.sel ] in
  let pick () = Iced_util.Rng.choose rng !pool in
  let g = ref g in
  let ops = [ Op.Add; Op.Sub; Op.Mul; Op.And; Op.Or; Op.Xor; Op.Shl; Op.Shr ] in
  let n_ops = 4 + Iced_util.Rng.int rng 9 in
  for _ = 1 to n_ops do
    let roll = Iced_util.Rng.int rng 10 in
    if roll < 6 then begin
      let a = pick () in
      let b = pick () in
      let kind = Iced_util.Rng.choose rng ops in
      let g', id = Builders.op kind ~inputs:[ a; b ] !g in
      g := g';
      pool := id :: !pool
    end
    else if roll < 8 then begin
      let addr = pick () in
      let g', id = Builders.load ~addr:[ addr ] !g in
      g := g';
      pool := id :: !pool
    end
    else begin
      let input = pick () in
      let g', acc = Builders.accumulator ~input !g in
      g := g';
      pool := acc.Builders.add :: !pool
    end
  done;
  let g', _ = Builders.store ~inputs:[ pick (); ind.Builders.next ] !g in
  (match Graph.validate g' with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "random_dfg seed %d invalid: %s" seed msg));
  g'

(* ------------------------------------------------------------------ *)
(* fingerprints *)

let fingerprint (m : Mapping.t) =
  let b = Buffer.create 256 in
  Printf.bprintf b "ii=%d" m.Mapping.ii;
  List.iter
    (fun (n, (tile, time)) -> Printf.bprintf b " n%d:%d,%d" n tile time)
    m.Mapping.placements;
  let routes =
    List.sort compare
      (List.map
         (fun (r : Mapping.route) ->
           (r.edge.Graph.src, r.edge.Graph.dst, r.edge.Graph.distance, r.hops))
         m.Mapping.routes)
  in
  List.iter
    (fun (src, dst, dist, hops) ->
      Printf.bprintf b " e%d-%d.%d:" src dst dist;
      List.iter
        (fun (h : Mapping.hop) ->
          Printf.bprintf b "%d%s%d;" h.Mapping.tile
            (Dir.to_string h.Mapping.dir)
            h.Mapping.time)
        hops)
    routes;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* the corpus *)

let strategy_to_string = function
  | Mapper.Conventional -> "conv"
  | Mapper.Dvfs_aware -> "dvfs"

let cases () =
  let kernel_cases =
    List.concat_map
      (fun (k : Iced_kernels.Kernel.t) ->
        List.map
          (fun strategy ->
            ( Printf.sprintf "kernel:%s:6x6:%s" k.name (strategy_to_string strategy),
              Mapper.request ~strategy Cgra.iced_6x6,
              k.dfg ))
          [ Mapper.Dvfs_aware; Mapper.Conventional ])
      Iced_kernels.Registry.all
  in
  let committed_cases =
    List.filter_map
      (fun name ->
        match Iced_kernels.Registry.by_name name with
        | None -> None
        | Some k ->
          Some
            ( Printf.sprintf "kernel:%s:8x8:committed" k.Iced_kernels.Kernel.name,
              Mapper.request ~strategy:Mapper.Dvfs_aware ~commit_islands:true
                (Cgra.make ~rows:8 ~cols:8 ()),
              k.Iced_kernels.Kernel.dfg ))
      [ "fir"; "fft" ]
  in
  let random_cases =
    let on ~rows ~cols ~strategy seeds =
      List.map
        (fun seed ->
          ( Printf.sprintf "random:%d:%dx%d:%s" seed rows cols
              (strategy_to_string strategy),
            Mapper.request ~strategy (Cgra.make ~rows ~cols ()),
            random_dfg ~seed ))
        seeds
    in
    on ~rows:4 ~cols:4 ~strategy:Mapper.Dvfs_aware (List.init 10 Fun.id)
    @ on ~rows:4 ~cols:4 ~strategy:Mapper.Conventional (List.init 5 Fun.id)
    @ on ~rows:6 ~cols:6 ~strategy:Mapper.Dvfs_aware
        (List.init 8 (fun i -> 10 + i))
  in
  kernel_cases @ committed_cases @ random_cases

let golden_lines () =
  List.map
    (fun (name, req, dfg) ->
      match Mapper.map req dfg with
      | Ok m -> Printf.sprintf "%s\t%s" name (fingerprint m)
      | Error msg -> Printf.sprintf "%s\tFAIL:%s" name msg)
    (cases ())
